#include "nn/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(ConfusionMatrix, CountsCells) {
  ConfusionMatrix cm;
  cm.add(1, 1);  // TP
  cm.add(1, 1);
  cm.add(1, 0);  // FN
  cm.add(0, 0);  // TN
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);  // FP
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.true_negative, 3u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.total(), 7u);
}

TEST(ConfusionMatrix, MetricsMatchHandComputation) {
  ConfusionMatrix cm;
  cm.true_positive = 90;
  cm.false_positive = 10;
  cm.false_negative = 5;
  cm.true_negative = 95;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 185.0 / 200.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.9);
  EXPECT_DOUBLE_EQ(cm.recall(), 90.0 / 95.0);
  const double p = 0.9;
  const double r = 90.0 / 95.0;
  EXPECT_DOUBLE_EQ(cm.f1(), 2 * p * r / (p + r));
}

TEST(ConfusionMatrix, DegenerateCasesReturnZero) {
  ConfusionMatrix cm;
  cm.true_negative = 10;  // no positives anywhere
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_THROW(ConfusionMatrix{}.accuracy(), PreconditionError);
}

TEST(ConfusionMatrix, RejectsNonBinaryLabels) {
  ConfusionMatrix cm;
  EXPECT_THROW(cm.add(2, 0), PreconditionError);
  EXPECT_THROW(cm.add(0, -1), PreconditionError);
}

TEST(EvaluatePredictions, BuildsMatrixFromVectors) {
  const ConfusionMatrix cm =
      evaluate_predictions({1, 0, 1, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(cm.true_positive, 2u);
  EXPECT_EQ(cm.false_negative, 1u);
  EXPECT_EQ(cm.false_positive, 1u);
  EXPECT_EQ(cm.true_negative, 1u);
  EXPECT_THROW(evaluate_predictions({1}, {1, 0}), PreconditionError);
}

TEST(EvaluatePredictions, PerfectClassifier) {
  const std::vector<int> labels{1, 1, 0, 0, 1, 0};
  const ConfusionMatrix cm = evaluate_predictions(labels, labels);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

}  // namespace
}  // namespace csdml::nn
