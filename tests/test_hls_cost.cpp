#include "hls/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::hls {
namespace {

HlsCostModel model() { return HlsCostModel::ultrascale_default(); }

LoopSpec basic_loop(std::uint64_t trips) {
  LoopSpec loop;
  loop.name = "loop";
  loop.trip_count = trips;
  loop.body_ops = {LoopOp{OpKind::IntAdd, 2}};
  loop.buffer_accesses = 2;
  loop.memory_ports = 2;
  return loop;
}

TEST(OpLatency, DefaultsAreOrdered) {
  const OpLatencyTable table = OpLatencyTable::vitis_ultrascale_300mhz();
  EXPECT_EQ(table.latency(OpKind::IntAdd).count, 1u);
  EXPECT_LT(table.latency(OpKind::IntMul).count,
            table.latency(OpKind::IntDiv).count);
  EXPECT_LT(table.latency(OpKind::FloatMul).count,
            table.latency(OpKind::FloatAdd).count);
  EXPECT_GT(table.latency(OpKind::FloatExp).count,
            table.latency(OpKind::FloatMul).count);
  EXPECT_TRUE(OpLatencyTable::uses_dsp(OpKind::IntMul));
  EXPECT_FALSE(OpLatencyTable::uses_dsp(OpKind::IntDiv));
  EXPECT_STREQ(op_name(OpKind::FloatExp), "fexp");
}

TEST(CostModel, UnpipelinedLoopIsTripTimesBody) {
  LoopSpec loop = basic_loop(10);
  const LoopReport report = model().analyze_loop(loop);
  // body = 2 int adds (2 cycles) + ceil(2/2)=1 memory + 2 overhead = 5.
  EXPECT_EQ(report.cycles.count, 10u * 5u);
  EXPECT_EQ(report.achieved_ii, 0u);
  EXPECT_EQ(report.limiting_factor, "-");
}

TEST(CostModel, PipelinedLoopIsDepthPlusTrips) {
  LoopSpec loop = basic_loop(10);
  loop.pragmas.pipeline = true;
  const LoopReport report = model().analyze_loop(loop);
  // depth = 1 (int add stage) + 1 (memory) = 2; II = 1.
  EXPECT_EQ(report.achieved_ii, 1u);
  EXPECT_EQ(report.cycles.count, 2u + 9u);
  EXPECT_EQ(report.limiting_factor, "target");
}

TEST(CostModel, PortLimitedInitiationInterval) {
  LoopSpec loop = basic_loop(100);
  loop.buffer_accesses = 8;  // 8 accesses over 2 ports -> II = 4
  loop.pragmas.pipeline = true;
  const LoopReport report = model().analyze_loop(loop);
  EXPECT_EQ(report.achieved_ii, 4u);
  EXPECT_EQ(report.limiting_factor, "ports");
}

TEST(CostModel, ArrayPartitionLiftsPortLimit) {
  LoopSpec loop = basic_loop(100);
  loop.buffer_accesses = 8;
  loop.pragmas.pipeline = true;
  loop.pragmas.array_partition_complete = true;
  const LoopReport report = model().analyze_loop(loop);
  EXPECT_EQ(report.achieved_ii, 1u);
}

TEST(CostModel, RegisterBindingActsLikePartitioning) {
  LoopSpec loop = basic_loop(100);
  loop.buffer_accesses = 8;
  loop.binding = BufferBinding::Registers;
  loop.pragmas.pipeline = true;
  EXPECT_EQ(model().analyze_loop(loop).achieved_ii, 1u);
}

TEST(CostModel, CarriedDependenceBoundsII) {
  LoopSpec loop = basic_loop(50);
  loop.pragmas.pipeline = true;
  loop.pragmas.array_partition_complete = true;
  loop.carried_dependency = OpKind::FloatAdd;  // 7-cycle accumulator
  const LoopReport report = model().analyze_loop(loop);
  EXPECT_EQ(report.achieved_ii, 7u);
  EXPECT_EQ(report.limiting_factor, "dependence");
}

TEST(CostModel, UnrollDividesTripCount) {
  LoopSpec loop = basic_loop(32);
  loop.pragmas.pipeline = true;
  loop.pragmas.array_partition_complete = true;
  loop.pragmas.unroll = 4;
  const LoopReport unrolled = model().analyze_loop(loop);
  loop.pragmas.unroll = 1;
  const LoopReport rolled = model().analyze_loop(loop);
  EXPECT_LT(unrolled.cycles.count, rolled.cycles.count);
}

TEST(CostModel, UnrollWithoutPartitionHitsPorts) {
  LoopSpec loop = basic_loop(32);
  loop.pragmas.pipeline = true;
  loop.pragmas.unroll = 4;  // 2 accesses x 4 = 8 over 2 ports -> II 4
  const LoopReport report = model().analyze_loop(loop);
  EXPECT_EQ(report.achieved_ii, 4u);
}

TEST(CostModel, TargetIiIsFloor) {
  LoopSpec loop = basic_loop(10);
  loop.pragmas.pipeline = true;
  loop.pragmas.target_ii = 3;
  EXPECT_EQ(model().analyze_loop(loop).achieved_ii, 3u);
}

TEST(CostModel, LoopGuards) {
  LoopSpec loop = basic_loop(0);
  EXPECT_THROW(model().analyze_loop(loop), PreconditionError);
  loop = basic_loop(1);
  loop.pragmas.unroll = 0;
  EXPECT_THROW(model().analyze_loop(loop), PreconditionError);
}

TEST(CostModel, AxiTransferSetupPlusBeats) {
  AxiTransferSpec transfer{"t", Bytes{256}, 1.0};
  // 256 B over 64 B beats = 4 beats; setup 40.
  EXPECT_EQ(model().analyze_transfer(transfer).count, 44u);
  transfer.bytes = Bytes{1};
  EXPECT_EQ(model().analyze_transfer(transfer).count, 41u);
}

TEST(CostModel, AxiContentionStretchesBeats) {
  AxiTransferSpec transfer{"t", Bytes{640}, 2.0};  // 10 beats x 2
  EXPECT_EQ(model().analyze_transfer(transfer).count, 60u);
  transfer.contention = 0.5;
  EXPECT_THROW(model().analyze_transfer(transfer), PreconditionError);
}

TEST(CostModel, KernelSumsLoopsAndTransfers) {
  KernelSpec kernel;
  kernel.name = "k";
  kernel.loops = {basic_loop(10), basic_loop(20)};
  kernel.transfers = {{"in", Bytes{64}, 1.0}};
  const KernelReport report = model().analyze(kernel);
  EXPECT_EQ(report.compute.count, 50u + 100u);
  EXPECT_EQ(report.axi.count, 41u);
  EXPECT_EQ(report.total.count, 191u);
  EXPECT_EQ(report.loops.size(), 2u);
}

TEST(CostModel, DataflowTakesMaxStage) {
  KernelSpec kernel;
  kernel.name = "k";
  kernel.dataflow = true;
  kernel.loops = {basic_loop(10), basic_loop(20)};
  kernel.transfers = {{"in", Bytes{64}, 1.0}};
  const KernelReport report = model().analyze(kernel);
  EXPECT_EQ(report.compute.count, 100u);          // max loop, not sum
  EXPECT_EQ(report.total.count, 100u);            // axi overlapped
}

TEST(CostModel, DurationUsesKernelClock) {
  KernelSpec kernel;
  kernel.name = "k";
  kernel.loops = {basic_loop(10)};
  const KernelReport report = model().analyze(kernel);
  const Duration d = report.duration(model().clock());
  // The 300 MHz period is stored as an integer 3333 ps, so allow the
  // 0.01% truncation.
  EXPECT_NEAR(d.as_microseconds(),
              static_cast<double>(report.total.count) / 300.0,
              static_cast<double>(report.total.count) * 1e-6);
}

}  // namespace
}  // namespace csdml::hls
