#include "ransomware/motifs.hpp"

#include <gtest/gtest.h>

#include "ransomware/api_vocab.hpp"

namespace csdml::ransomware {
namespace {

const std::vector<MotifKind>& all_motifs() {
  static const std::vector<MotifKind> motifs = {
      MotifKind::DropperStartup,  MotifKind::AntiAnalysis,
      MotifKind::Recon,           MotifKind::KeyGeneration,
      MotifKind::FileDiscovery,   MotifKind::EncryptionLoop,
      MotifKind::ShadowCopyWipe,  MotifKind::RegistryPersistence,
      MotifKind::RansomNote,      MotifKind::C2Beacon,
      MotifKind::SmbPropagation,  MotifKind::ServiceTampering,
      MotifKind::SelfDelete,      MotifKind::AppStartup,
      MotifKind::ConfigLoad,      MotifKind::DocumentOpen,
      MotifKind::DocumentSave,    MotifKind::UiIdle,
      MotifKind::WebRequest,      MotifKind::ClipboardLikeUse,
      MotifKind::FileBrowse,      MotifKind::SoftwareUpdate,
      MotifKind::MediaPlayback,   MotifKind::InstallerChecksum,
      MotifKind::BackgroundSync,  MotifKind::ArchiveLoop,
      MotifKind::VolumeEncryptionLoop};
  return motifs;
}

class MotifTest : public ::testing::TestWithParam<MotifKind> {};

TEST_P(MotifTest, EmitsValidTokens) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
  std::vector<nn::TokenId> out;
  for (int i = 0; i < 50; ++i) emit_motif(GetParam(), rng, out);
  EXPECT_FALSE(out.empty());
  const auto vocab_size = static_cast<nn::TokenId>(ApiVocabulary::instance().size());
  for (const nn::TokenId token : out) {
    EXPECT_GE(token, 0);
    EXPECT_LT(token, vocab_size);
  }
}

TEST_P(MotifTest, DeterministicGivenRngState) {
  Rng rng1(7);
  Rng rng2(7);
  std::vector<nn::TokenId> a;
  std::vector<nn::TokenId> b;
  emit_motif(GetParam(), rng1, a);
  emit_motif(GetParam(), rng2, b);
  EXPECT_EQ(a, b);
}

TEST_P(MotifTest, HasAName) {
  EXPECT_NE(std::string(motif_name(GetParam())), "");
}

INSTANTIATE_TEST_SUITE_P(AllMotifs, MotifTest,
                         ::testing::ValuesIn(all_motifs()),
                         [](const auto& info) {
                           return std::string(motif_name(info.param));
                         });

TEST(Motifs, MaliciousClassification) {
  EXPECT_TRUE(is_malicious_motif(MotifKind::EncryptionLoop));
  EXPECT_TRUE(is_malicious_motif(MotifKind::SmbPropagation));
  EXPECT_TRUE(is_malicious_motif(MotifKind::RansomNote));
  EXPECT_FALSE(is_malicious_motif(MotifKind::DocumentSave));
  EXPECT_FALSE(is_malicious_motif(MotifKind::ArchiveLoop));
  EXPECT_FALSE(is_malicious_motif(MotifKind::VolumeEncryptionLoop));
}

TEST(Motifs, EncryptionLoopContainsTheSignaturePattern) {
  const auto& vocab = ApiVocabulary::instance();
  Rng rng(3);
  std::vector<nn::TokenId> out;
  for (int i = 0; i < 50; ++i) emit_motif(MotifKind::EncryptionLoop, rng, out);
  int crypt = 0;
  int write = 0;
  for (const nn::TokenId t : out) {
    const auto name = vocab.call(t).name;
    crypt += name == "CryptEncrypt" || name == "BCryptEncrypt";
    write += name == "WriteFile" || name == "NtWriteFile";
  }
  EXPECT_GT(crypt, 25);  // at least one per loop instance on average
  EXPECT_GE(write, crypt);
}

TEST(Motifs, ArchiveLoopNeverEncrypts) {
  const auto& vocab = ApiVocabulary::instance();
  Rng rng(5);
  std::vector<nn::TokenId> out;
  for (int i = 0; i < 100; ++i) emit_motif(MotifKind::ArchiveLoop, rng, out);
  for (const nn::TokenId t : out) {
    const auto name = vocab.call(t).name;
    EXPECT_NE(name, "CryptEncrypt");
    EXPECT_NE(name, "BCryptEncrypt");
  }
}

TEST(Motifs, VariabilityAcrossInstances) {
  // Repeated emissions under one stream should not all be identical —
  // variants get their diversity from these choices.
  Rng rng(11);
  std::vector<nn::TokenId> first;
  emit_motif(MotifKind::EncryptionLoop, rng, first);
  bool any_different = false;
  for (int i = 0; i < 20 && !any_different; ++i) {
    std::vector<nn::TokenId> next;
    emit_motif(MotifKind::EncryptionLoop, rng, next);
    any_different = next != first;
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace csdml::ransomware
