#include "fixed/scaled_fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace csdml::fixedpt {
namespace {

TEST(ScaledFixed, PaperScaleIsOneMillion) {
  EXPECT_EQ(kPaperScale, 1'000'000);
  EXPECT_EQ(ScaledFixed().scale(), kPaperScale);
}

TEST(ScaledFixed, ConversionRoundsToNearest) {
  EXPECT_EQ(ScaledFixed::from_double(1.2345678).raw(), 1'234'568);
  EXPECT_EQ(ScaledFixed::from_double(-1.2345672).raw(), -1'234'567);
  EXPECT_EQ(ScaledFixed::from_double(0.0000005).raw(), 1);  // ties away from zero
}

TEST(ScaledFixed, RoundTripWithinHalfQuantum) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    const ScaledFixed f = ScaledFixed::from_double(x);
    EXPECT_LE(std::abs(f.to_double() - x), f.quantum() + 1e-15);
  }
}

TEST(ScaledFixed, AdditionIsExact) {
  const auto a = ScaledFixed::from_double(1.25);
  const auto b = ScaledFixed::from_double(-0.75);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 0.5);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 2.0);
  EXPECT_DOUBLE_EQ((-a).to_double(), -1.25);
}

TEST(ScaledFixed, ProductCorrectionMatchesRealProduct) {
  // The paper's scheme: products carry scale^2 and are corrected back.
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    const double y = rng.uniform(-50.0, 50.0);
    const auto fx = ScaledFixed::from_double(x);
    const auto fy = ScaledFixed::from_double(y);
    const double got = (fx * fy).to_double();
    // Error budget: input quantisation (|y|+|x|)*q + product rounding q.
    const double budget =
        (std::abs(x) + std::abs(y) + 2.0) * (1.0 / kPaperScale);
    EXPECT_NEAR(got, x * y, budget) << x << " * " << y;
  }
}

TEST(ScaledFixed, SmallValueProductsKeepPrecision) {
  // Typical LSTM weights are small; 1e6 scaling preserves the mantissa.
  const auto a = ScaledFixed::from_double(0.003141);
  const auto b = ScaledFixed::from_double(0.002718);
  EXPECT_NEAR((a * b).to_double(), 0.003141 * 0.002718, 1e-6);
}

TEST(ScaledFixed, DivisionMatchesReal) {
  const auto a = ScaledFixed::from_double(3.0);
  const auto b = ScaledFixed::from_double(4.0);
  EXPECT_NEAR((a / b).to_double(), 0.75, 1e-6);
  EXPECT_THROW(a / ScaledFixed::from_double(0.0), PreconditionError);
}

TEST(ScaledFixed, MixedScaleOperationsThrow) {
  const auto a = ScaledFixed::from_double(1.0, 1'000);
  const auto b = ScaledFixed::from_double(1.0, 1'000'000);
  EXPECT_THROW(a + b, PreconditionError);
  EXPECT_THROW(a * b, PreconditionError);
  EXPECT_THROW(a < b, PreconditionError);
}

TEST(ScaledFixed, AlternativeScalesWork) {
  for (const std::int64_t scale : {1'000LL, 10'000LL, 100'000LL, 10'000'000LL}) {
    const auto f = ScaledFixed::from_double(0.125, scale);
    EXPECT_LE(std::abs(f.to_double() - 0.125), 0.5 / static_cast<double>(scale));
    EXPECT_EQ(f.scale(), scale);
  }
}

TEST(ScaledFixed, CoarserScaleIsLessAccurate) {
  const double x = 0.1234567;
  const double err_coarse =
      std::abs(ScaledFixed::from_double(x, 1'000).to_double() - x);
  const double err_fine =
      std::abs(ScaledFixed::from_double(x, 1'000'000).to_double() - x);
  EXPECT_GT(err_coarse, err_fine);
}

TEST(ScaledFixed, AbsAndComparisons) {
  const auto a = ScaledFixed::from_double(-2.5);
  EXPECT_DOUBLE_EQ(a.abs().to_double(), 2.5);
  EXPECT_TRUE(ScaledFixed::from_double(1.0) < ScaledFixed::from_double(2.0));
  EXPECT_EQ(ScaledFixed::from_double(1.0), ScaledFixed::from_double(1.0));
}

TEST(ScaledFixed, CompoundAssignment) {
  auto a = ScaledFixed::from_double(1.0);
  a += ScaledFixed::from_double(2.0);
  a *= ScaledFixed::from_double(3.0);
  a -= ScaledFixed::from_double(1.0);
  EXPECT_DOUBLE_EQ(a.to_double(), 8.0);
}

TEST(ScaledFixed, RejectsOutOfRangeConversion) {
  EXPECT_THROW(ScaledFixed::from_double(1e13), PreconditionError);
  EXPECT_THROW(ScaledFixed::from_double(1.0, 0), PreconditionError);
  EXPECT_THROW(ScaledFixed::from_double(1.0, -5), PreconditionError);
}

/// Parameterized accumulation property: a fixed-point dot product of n
/// terms stays within n quantums of the double result (the paper's "round
/// to closely match the original numbers").
class DotProductErrorTest : public ::testing::TestWithParam<int> {};

TEST_P(DotProductErrorTest, AccumulatedErrorScalesLinearly) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  double real = 0.0;
  ScaledFixed fixed;
  for (int i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    real += a * b;
    fixed += ScaledFixed::from_double(a) * ScaledFixed::from_double(b);
  }
  const double budget = 4.0 * static_cast<double>(n) / kPaperScale;
  EXPECT_NEAR(fixed.to_double(), real, budget);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DotProductErrorTest,
                         ::testing::Values(8, 32, 40, 128, 1024));

}  // namespace
}  // namespace csdml::fixedpt
