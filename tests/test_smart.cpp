// SMART health reporting tests.
#include <gtest/gtest.h>

#include "csd/ssd.hpp"

namespace csdml::csd {
namespace {

TEST(Smart, FreshDriveIsPristine) {
  SsdController ssd(SsdConfig{});
  const SsdController::SmartHealth health = ssd.smart();
  EXPECT_EQ(health.host_bytes_written.count, 0u);
  EXPECT_EQ(health.pages_programmed, 0u);
  EXPECT_EQ(health.blocks_erased, 0u);
  EXPECT_EQ(health.uncorrectable_reads, 0u);
  EXPECT_DOUBLE_EQ(health.media_wear_percent, 0.0);
}

TEST(Smart, CountersTrackHostActivity) {
  SsdController ssd(SsdConfig{});
  TimePoint now{};
  for (int i = 0; i < 10; ++i) {
    now = ssd.write(static_cast<std::uint64_t>(i) * 8,
                    std::vector<std::uint8_t>(16'384, 0x42), now);
  }
  ssd.read(0, 4, now);
  const auto health = ssd.smart();
  EXPECT_EQ(health.host_bytes_written.count, 10u * 16'384u);
  EXPECT_EQ(health.host_bytes_read.count, 4u * 4'096u);
  EXPECT_GE(health.pages_programmed, 10u);
  EXPECT_GT(health.media_wear_percent, 0.0);
  EXPECT_LT(health.media_wear_percent, 1.0);
}

TEST(Smart, WearGrowsLinearlyWithPrograms) {
  SsdConfig config;
  config.modelled_capacity = Bytes::mib(1);  // tiny drive: wear is visible
  config.rated_pe_cycles = 10;
  SsdController ssd(config);
  TimePoint now{};
  double previous = 0.0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      now = ssd.write(static_cast<std::uint64_t>(i) * 4,
                      std::vector<std::uint8_t>(16'384, 0x01), now);
    }
    const double wear = ssd.smart().media_wear_percent;
    EXPECT_GT(wear, previous);
    previous = wear;
  }
  EXPECT_GT(previous, 5.0);  // 40 page programs on a 64-page, 10-cycle drive
}

TEST(Smart, EccCountersSurfaceInHealth) {
  SsdConfig config;
  config.nand.raw_bit_error_rate = 1e-4;  // corrected on every read
  SsdController ssd(config);
  TimePoint now{};
  now = ssd.write(0, std::vector<std::uint8_t>(4'096, 0x07), now);
  for (int i = 0; i < 20; ++i) ssd.read(0, 1, now);
  const auto health = ssd.smart();
  EXPECT_GT(health.corrected_reads, 0u);
  EXPECT_EQ(health.uncorrectable_reads, 0u);
}

}  // namespace
}  // namespace csdml::csd
