#include "hls/power.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernels/engine.hpp"

namespace csdml::hls {
namespace {

TEST(Power, StaticFloorAndMonotonicity) {
  const PowerModel model;
  const ResourceEstimate empty;
  EXPECT_DOUBLE_EQ(model.estimate_watts(empty), model.static_watts);

  ResourceEstimate small{.luts = 10'000, .flip_flops = 20'000, .bram36 = 10,
                         .dsp = 100};
  ResourceEstimate big = small * 4;
  EXPECT_GT(model.estimate_watts(small), model.static_watts);
  EXPECT_GT(model.estimate_watts(big), model.estimate_watts(small));
}

TEST(Power, HandComputedExample) {
  PowerModel model;
  model.static_watts = 2.0;
  model.dsp_milliwatts = 1.0;
  model.bram_milliwatts = 1.0;
  model.lut_microwatts = 1.0;
  model.ff_microwatts = 1.0;
  ResourceEstimate est{.luts = 1'000'000, .flip_flops = 0, .bram36 = 1'000,
                       .dsp = 1'000};
  // 2.0 + 1 W DSP + 1 W BRAM + 1 W LUT = 5 W.
  EXPECT_NEAR(model.estimate_watts(est), 5.0, 1e-9);
}

TEST(Power, EnergyIsPowerTimesTime) {
  const PowerModel model;
  ResourceEstimate est{.luts = 100'000, .flip_flops = 100'000, .bram36 = 100,
                       .dsp = 500};
  const double watts = model.estimate_watts(est);
  EXPECT_NEAR(model.energy_joules(est, Duration::microseconds(1'000'000)),
              watts, 1e-9);  // 1 s at `watts`
  EXPECT_THROW(model.energy_joules(est, Duration::picoseconds(-1)),
               PreconditionError);
}

TEST(Power, MicrojoulesHelper) {
  EXPECT_NEAR(microjoules(2.0, Duration::microseconds(3.0)), 6.0, 1e-9);
  EXPECT_THROW(microjoules(-1.0, Duration::microseconds(1.0)),
               PreconditionError);
}

TEST(Power, DeployedDesignIsFarBelowHostPower) {
  // The paper's efficiency claim: the whole in-storage design draws watts,
  // not the tens/hundreds the host baselines burn.
  nn::LstmConfig config;
  Rng rng(3);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, config, params, kernels::EngineConfig{});
  const PowerModel model;
  const double watts = model.estimate_watts(board.fpga().placed());
  EXPECT_GT(watts, model.static_watts);
  EXPECT_LT(watts, 15.0);  // single-digit watts for a 7.4K-param design
}

}  // namespace
}  // namespace csdml::hls
