#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/metrics.hpp"

namespace csdml::nn {
namespace {

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.2, 0.1};
  const std::vector<int> labels{1, 1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 1.0);
}

TEST(Roc, InvertedScoresGiveAucZero) {
  const std::vector<double> scores{0.1, 0.2, 0.9, 0.8};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.0);
}

TEST(Roc, AllTiedScoresGiveAucHalf) {
  const std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  const std::vector<int> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(Roc, HandComputedExample) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8,0.6)=1, (0.8,0.2)=1, (0.4,0.6)=0, (0.4,0.2)=1 -> 3/4.
  const std::vector<double> scores{0.8, 0.4, 0.6, 0.2};
  const std::vector<int> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.75);
}

TEST(Roc, RandomScoresApproachHalf) {
  Rng rng(7);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 20'000; ++i) {
    scores.push_back(rng.uniform());
    labels.push_back(rng.chance(0.4) ? 1 : 0);
  }
  EXPECT_NEAR(roc_auc(scores, labels), 0.5, 0.02);
}

TEST(Roc, CurveEndpointsAndMonotonicity) {
  Rng rng(11);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.chance(0.5) ? 1 : 0;
    scores.push_back(rng.uniform() * 0.5 + label * 0.4);
    labels.push_back(label);
  }
  const std::vector<RocPoint> curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.front().true_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().false_positive_rate, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().false_positive_rate, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].true_positive_rate, curve[i - 1].true_positive_rate);
    EXPECT_GE(curve[i].false_positive_rate, curve[i - 1].false_positive_rate);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(Roc, TrapezoidAreaMatchesRankAuc) {
  // Integrating the ROC curve must agree with the rank statistic (no ties
  // in this sample, so both are exact).
  Rng rng(13);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    const int label = i % 2;
    scores.push_back(rng.normal(label == 1 ? 1.0 : 0.0, 1.0));
    labels.push_back(label);
  }
  const auto curve = roc_curve(scores, labels);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += (curve[i].false_positive_rate - curve[i - 1].false_positive_rate) *
            (curve[i].true_positive_rate + curve[i - 1].true_positive_rate) / 2.0;
  }
  EXPECT_NEAR(area, roc_auc(scores, labels), 1e-9);
}

TEST(Roc, ConfusionAtThresholdSweep) {
  const std::vector<double> scores{0.9, 0.7, 0.4, 0.2};
  const std::vector<int> labels{1, 0, 1, 0};
  const ConfusionMatrix strict = confusion_at_threshold(scores, labels, 0.8);
  EXPECT_EQ(strict.true_positive, 1u);
  EXPECT_EQ(strict.false_positive, 0u);
  const ConfusionMatrix lax = confusion_at_threshold(scores, labels, 0.3);
  EXPECT_EQ(lax.true_positive, 2u);
  EXPECT_EQ(lax.false_positive, 1u);
}

TEST(Roc, Guards) {
  EXPECT_THROW(roc_auc({}, {}), PreconditionError);
  EXPECT_THROW(roc_auc({0.5}, {1}), PreconditionError);      // one class only
  EXPECT_THROW(roc_auc({0.5, 0.6}, {1, 2}), PreconditionError);
  EXPECT_THROW(roc_auc({0.5}, {1, 0}), PreconditionError);   // size mismatch
}

}  // namespace
}  // namespace csdml::nn
