// Request-scoped tracing: span mechanics (nesting, tags, retention) and the
// end-to-end propagation contract — one TraceId from detector ingress down
// through the engine, NVMe transfers and kernel launches, surviving retries
// and the host-fallback detour.
#include "obs/span_trace.hpp"

#include <gtest/gtest.h>

#include "baselines/host_baseline.hpp"
#include "common/rng.hpp"
#include "csd/nvme.hpp"
#include "detect/detector.hpp"
#include "faults/fault_plan.hpp"
#include "kernels/engine.hpp"

namespace csdml::obs {
namespace {

const SpanRecord* find_span(const std::vector<const SpanRecord*>& spans,
                            const std::string& name) {
  for (const SpanRecord* span : spans) {
    if (span->name == name) return span;
  }
  return nullptr;
}

TEST(SpanTrace, NestingTracksCallStructure) {
  SpanTrace trace;
  const TraceId tid = trace.begin_trace();
  EXPECT_NE(tid, 0u);
  EXPECT_TRUE(trace.in_trace());

  const SpanId root = trace.begin_span("root", TimePoint{});
  const SpanId child = trace.begin_span("child", TimePoint{} + Duration::microseconds(1));
  EXPECT_EQ(trace.open_depth(), 2u);
  trace.tag(child, "k", "v");
  trace.end_span(child, TimePoint{} + Duration::microseconds(2));
  const SpanId sibling = trace.begin_span("sibling", TimePoint{} + Duration::microseconds(3));
  trace.end_span(sibling, TimePoint{} + Duration::microseconds(4));
  trace.end_span(root, TimePoint{} + Duration::microseconds(5));
  trace.end_trace();
  EXPECT_FALSE(trace.in_trace());

  const auto spans = trace.trace_spans(tid);
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* root_span = find_span(spans, "root");
  const SpanRecord* child_span = find_span(spans, "child");
  const SpanRecord* sibling_span = find_span(spans, "sibling");
  ASSERT_NE(root_span, nullptr);
  ASSERT_NE(child_span, nullptr);
  ASSERT_NE(sibling_span, nullptr);
  EXPECT_EQ(root_span->parent, 0u);
  EXPECT_EQ(child_span->parent, root_span->id);
  EXPECT_EQ(sibling_span->parent, root_span->id);
  ASSERT_NE(child_span->tag("k"), nullptr);
  EXPECT_EQ(*child_span->tag("k"), "v");
  EXPECT_EQ(child_span->tag("missing"), nullptr);
  EXPECT_EQ(child_span->duration().as_microseconds(), 1.0);
}

TEST(SpanTrace, DisabledIsANoOp) {
  SpanTrace trace;
  trace.set_enabled(false);
  EXPECT_EQ(trace.begin_trace(), 0u);
  EXPECT_EQ(trace.begin_span("x", TimePoint{}), 0u);
  trace.tag_current("k", "v");
  trace.end_span(1, TimePoint{});
  trace.end_trace();
  EXPECT_TRUE(trace.spans().empty());
  record_span(trace, "y", TimePoint{}, TimePoint{});
  EXPECT_TRUE(trace.spans().empty());
}

TEST(SpanTrace, RecordSpanOnlyInsideATrace) {
  SpanTrace trace;
  // Outside any trace: init-time work stays out of the causal record.
  record_span(trace, "init", TimePoint{}, TimePoint{});
  EXPECT_TRUE(trace.spans().empty());

  const TraceId tid = trace.begin_trace();
  const SpanId root = trace.begin_span("root", TimePoint{});
  record_span(trace, "leaf", TimePoint{}, TimePoint{} + Duration::microseconds(1));
  trace.end_span(root, TimePoint{} + Duration::microseconds(2));
  trace.end_trace();
  const SpanRecord* leaf = find_span(trace.trace_spans(tid), "leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->parent, trace.trace_spans(tid)[0]->id);
}

TEST(SpanTrace, EndTraceClosesUnwoundSpansZeroLength) {
  SpanTrace trace;
  trace.begin_trace();
  trace.begin_span("outer", TimePoint{} + Duration::microseconds(10));
  trace.begin_span("inner", TimePoint{} + Duration::microseconds(20));
  trace.end_trace();  // exception-unwind shape: nothing was end_span()ed
  EXPECT_EQ(trace.open_depth(), 0u);
  for (const SpanRecord& span : trace.spans()) {
    EXPECT_EQ(span.end.picos, span.start.picos) << span.name;
  }
}

TEST(SpanTrace, RetentionShedsOldestHalfInOneBatch) {
  SpanTrace trace;
  trace.set_retention(8);
  for (int i = 0; i < 12; ++i) {
    trace.begin_trace();
    const SpanId id = trace.begin_span("s" + std::to_string(i), TimePoint{});
    trace.end_span(id, TimePoint{});
    trace.end_trace();
    EXPECT_LE(trace.spans().size(), 8u);
  }
  // Trim fired at 9 spans (down to 4); the newest spans always survive.
  EXPECT_EQ(trace.spans().back().name, "s11");
  EXPECT_GT(trace.spans().front().trace_id, 1u);
}

struct TracedEngineFixture {
  static nn::LstmParams make_params(const nn::LstmConfig& config) {
    Rng rng(33);
    return nn::LstmParams::glorot(config, rng);
  }

  nn::LstmConfig model_config{.vocab_size = 48, .embed_dim = 4, .hidden_dim = 8};
  nn::LstmParams params = make_params(model_config);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  baselines::HostBaseline host{"host", model_config, params,
                               baselines::HostLatencyConfig{}};

  nn::Sequence sequence(std::uint64_t seed, int length = 24) const {
    Rng rng(seed);
    nn::Sequence seq;
    for (int i = 0; i < length; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, model_config.vocab_size - 1)));
    }
    return seq;
  }
};

TEST(SpanTrace, EngineOpensItsOwnTraceWhenNoneActive) {
  TracedEngineFixture f;
  kernels::CsdLstmEngine engine(f.device, f.model_config, f.params,
                                kernels::EngineConfig{.batch_threads = 1});
  (void)engine.infer(f.sequence(1));
  SpanTrace& spans = engine.span_trace();
  EXPECT_EQ(spans.trace_count(), 1u);
  const TraceId tid = spans.spans().front().trace_id;
  const auto trace = spans.trace_spans(tid);
  const SpanRecord* infer = find_span(trace, "engine.infer");
  const SpanRecord* lstm = find_span(trace, "lstm_sequence");
  const SpanRecord* gates = find_span(trace, "kernel_gates");
  ASSERT_NE(infer, nullptr);
  ASSERT_NE(lstm, nullptr);
  ASSERT_NE(gates, nullptr);
  EXPECT_EQ(infer->parent, 0u);
  EXPECT_EQ(lstm->parent, infer->id);
  EXPECT_EQ(gates->parent, lstm->id);
}

TEST(SpanTrace, TraceIdSurvivesRetriesUnderTheDetectorRoot) {
  TracedEngineFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 3}});
  faults::FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  config.max_faults = 2;  // two failed attempts, third succeeds
  faults::FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  // Threshold 0 with no debounce: every classification alerts, so the 8th
  // call hands back a Detection carrying its trace id.
  detect::StreamingDetector detector(
      engine, detect::DetectorConfig{.window_length = 8,
                                     .hop = 4,
                                     .threshold = 0.0,
                                     .consecutive_alerts = 1});
  std::optional<detect::Detection> detection;
  for (int i = 0; i < 8; ++i) {
    detection = detector.on_api_call(1, static_cast<nn::TokenId>(i % 48));
  }
  ASSERT_TRUE(detection.has_value());
  ASSERT_NE(detection->trace_id, 0u);

  const auto trace = engine.span_trace().trace_spans(detection->trace_id);
  const SpanRecord* root = find_span(trace, "detector.classify");
  const SpanRecord* infer = find_span(trace, "engine.infer");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(infer, nullptr);
  EXPECT_EQ(root->parent, 0u);
  EXPECT_EQ(infer->parent, root->id);
  // The retry storm is attributed to this classification, not lost in an
  // aggregate counter: both failed attempts ride the same trace id.
  ASSERT_NE(infer->tag("retries"), nullptr);
  EXPECT_EQ(*infer->tag("retries"), "2");
  for (const SpanRecord* span : trace) {
    EXPECT_EQ(span->trace_id, detection->trace_id) << span->name;
  }
}

TEST(SpanTrace, FallbackServeStaysInsideTheRequestTrace) {
  TracedEngineFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 1,
                                      .recovery_probe_interval = 0}});
  engine.set_fallback(&f.host);
  faults::FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  faults::FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  detect::StreamingDetector detector(
      engine, detect::DetectorConfig{.window_length = 8,
                                     .hop = 4,
                                     .threshold = 0.0,
                                     .consecutive_alerts = 1});
  std::optional<detect::Detection> detection;
  for (int i = 0; i < 8; ++i) {
    detection = detector.on_api_call(1, static_cast<nn::TokenId>(i % 48));
  }
  ASSERT_TRUE(detection.has_value());
  EXPECT_TRUE(detection->degraded);
  ASSERT_NE(detection->trace_id, 0u);

  const auto trace = engine.span_trace().trace_spans(detection->trace_id);
  const SpanRecord* root = find_span(trace, "detector.classify");
  const SpanRecord* fallback = find_span(trace, "host_fallback");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(fallback, nullptr);
  ASSERT_NE(fallback->tag("fallback"), nullptr);
  EXPECT_EQ(*fallback->tag("fallback"), "host");
  ASSERT_NE(root->tag("degraded"), nullptr);
}

TEST(SpanTrace, NvmeTransferAndKernelNestUnderOneRequest) {
  TracedEngineFixture f;
  kernels::CsdLstmEngine engine(f.device, f.model_config, f.params,
                                kernels::EngineConfig{.batch_threads = 1});
  SpanTrace& spans = engine.span_trace();
  const TraceId tid = spans.begin_trace();
  const SpanId request = spans.begin_span("request", f.device.now());

  csd::NvmeQueue queue(f.board, csd::NvmeQueueConfig{});
  csd::NvmeCommand load;
  load.opcode = csd::NvmeOpcode::FpgaP2pLoad;
  load.command_id = 7;
  load.lba = 0;
  load.block_count = 1;
  queue.submit(load, f.device.now());
  const csd::NvmeCompletion done = queue.wait_oldest();
  ASSERT_TRUE(done.success);

  (void)engine.infer(f.sequence(9));
  spans.end_span(request, f.device.now());
  spans.end_trace();

  const auto trace = spans.trace_spans(tid);
  const SpanRecord* root = find_span(trace, "request");
  const SpanRecord* nvme = find_span(trace, "nvme.fpga_p2p_load");
  const SpanRecord* p2p = find_span(trace, "p2p_read");
  const SpanRecord* infer = find_span(trace, "engine.infer");
  const SpanRecord* gates = find_span(trace, "kernel_gates");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(nvme, nullptr);
  ASSERT_NE(p2p, nullptr);
  ASSERT_NE(infer, nullptr);
  ASSERT_NE(gates, nullptr);
  // Parent/child order mirrors the datapath: the NVMe command owns its NAND
  // -> FPGA transfer; the kernel runs under the engine; both under the
  // request; everything under one trace id.
  EXPECT_EQ(nvme->parent, root->id);
  EXPECT_EQ(p2p->parent, nvme->id);
  EXPECT_EQ(infer->parent, root->id);
  // Recording order mirrors submission order: the weight load lands in the
  // record before the kernel that consumes it. (The NVMe queue keeps its
  // own per-command clock, so timestamps across the two lanes may overlap.)
  const auto position = [&trace](const SpanRecord* span) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace[i] == span) return i;
    }
    return trace.size();
  };
  EXPECT_LT(position(nvme), position(gates));
  for (const SpanRecord* span : trace) {
    EXPECT_EQ(span->trace_id, tid) << span->name;
  }
}

TEST(SpanTrace, SummaryAttributesStagesAndTaggedEvents) {
  TracedEngineFixture f;
  kernels::CsdLstmEngine engine(f.device, f.model_config, f.params,
                                kernels::EngineConfig{.batch_threads = 1});
  for (int i = 0; i < 3; ++i) (void)engine.infer(f.sequence(20 + i));
  const std::string summary = engine.span_trace().summary();
  EXPECT_NE(summary.find("3 traces"), std::string::npos);
  EXPECT_NE(summary.find("engine.infer"), std::string::npos);
  EXPECT_NE(summary.find("kernel_gates"), std::string::npos);
  EXPECT_NE(summary.find("share"), std::string::npos);
}

}  // namespace
}  // namespace csdml::obs
