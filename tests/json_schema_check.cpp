// csdml_json_check — CI gate for exported JSON artefacts.
//
//   csdml_json_check FILE [--require KEY]...
//
// Fails (exit 1) when FILE is missing, is not syntactically valid JSON, or
// lacks any of the required top-level-ish keys (presence of "KEY" as a
// quoted string anywhere in the document — enough to catch a bench binary
// silently dropping a section from BENCH_throughput.json).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "json_lint.hpp"

namespace {

int fail(const std::string& message) {
  std::cerr << "csdml_json_check: " << message << '\n';
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return fail("usage: csdml_json_check FILE [--require KEY]...");
  }
  const std::string path = argv[1];
  std::vector<std::string> required;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else {
      return fail("unknown argument '" + arg + "'");
    }
  }

  std::ifstream in(path);
  if (!in) return fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return fail("'" + path + "' is empty");
  if (!csdml::testing::JsonLint::valid(text)) {
    return fail("'" + path + "' is not valid JSON");
  }
  for (const std::string& key : required) {
    if (text.find('"' + key + '"') == std::string::npos) {
      return fail("'" + path + "' is missing required key \"" + key + "\"");
    }
  }
  std::cout << "csdml_json_check: '" << path << "' OK (" << required.size()
            << " required keys present)\n";
  return 0;
}
