#include "common/json_writer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "json_lint.hpp"

namespace csdml {
namespace {

TEST(JsonWriter, EmitsValidNestedDocument) {
  JsonWriter json;
  json.begin_object();
  json.field("bench", "throughput");
  json.key("config");
  json.begin_object();
  json.field("hidden", std::size_t{128});
  json.field("tiny", false);
  json.end_object();
  json.key("rows");
  json.begin_array();
  for (int i = 0; i < 3; ++i) {
    json.begin_object();
    json.field("index", i);
    json.field("value", 1.5 * i);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  EXPECT_TRUE(testing::JsonLint::valid(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"bench\":\"throughput\""), std::string::npos);
  EXPECT_NE(json.str().find("\"hidden\":128"), std::string::npos);
}

TEST(JsonWriter, EmptyContainersAndEscapes) {
  JsonWriter json;
  json.begin_object();
  json.key("empty_array");
  json.begin_array();
  json.end_array();
  json.key("empty_object");
  json.begin_object();
  json.end_object();
  json.field("quoted", "a \"b\"\n\tc\\d");
  json.end_object();
  EXPECT_TRUE(testing::JsonLint::valid(json.str())) << json.str();
  EXPECT_NE(json.str().find("\\\"b\\\""), std::string::npos);
  EXPECT_NE(json.str().find("\\n\\t"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.begin_object();
  json.field("nan", std::numeric_limits<double>::quiet_NaN());
  json.field("inf", std::numeric_limits<double>::infinity());
  json.field("ok", 2.5);
  json.end_object();
  EXPECT_TRUE(testing::JsonLint::valid(json.str())) << json.str();
  EXPECT_EQ(json.str(), R"({"nan":null,"inf":null,"ok":2.5})");
}

TEST(JsonWriter, ScalarArraysSeparateCorrectly) {
  JsonWriter json;
  json.begin_array();
  json.value(1);
  json.value(2.5);
  json.value("three");
  json.value(true);
  json.end_array();
  EXPECT_TRUE(testing::JsonLint::valid(json.str())) << json.str();
  EXPECT_EQ(json.str(), R"([1,2.5,"three",true])");
}

}  // namespace
}  // namespace csdml
