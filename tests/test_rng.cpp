#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace csdml {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(99);
  Rng child1 = parent.fork("dataset");
  Rng child2 = Rng(99).fork("dataset");
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next(), child2.next());

  Rng other = Rng(99).fork("latency");
  Rng dataset = Rng(99).fork("dataset");
  int same = 0;
  for (int i = 0; i < 100; ++i) same += other.next() == dataset.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDoesNotDisturbParent) {
  Rng a(5);
  Rng b(5);
  (void)a.fork("x");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-2.5, 4.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.5);
  }
  EXPECT_THROW(rng.uniform(1.0, 0.0), PreconditionError);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, UniformIntMeanIsCentred) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.uniform_int(0, 100));
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, LognormalIsPositiveWithExpectedMedian) {
  Rng rng(23);
  std::vector<double> samples;
  for (int i = 0; i < 20'001; ++i) {
    const double x = rng.lognormal(std::log(5.0), 0.5);
    EXPECT_GT(x, 0.0);
    samples.push_back(x);
  }
  std::nth_element(samples.begin(), samples.begin() + 10'000, samples.end());
  EXPECT_NEAR(samples[10'000], 5.0, 0.25);  // median = exp(mu)
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
  EXPECT_FALSE(Rng(1).chance(0.0));
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  const int n = 50'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.015);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.015);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(41);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(items);
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

}  // namespace
}  // namespace csdml
