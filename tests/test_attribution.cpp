#include "detect/attribution.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/train.hpp"
#include "ransomware/api_vocab.hpp"
#include "ransomware/dataset_builder.hpp"

namespace csdml::detect {
namespace {

/// Model trained on a tiny slice of the real corpus: enough signal that
/// crypto-loop calls carry positive attribution.
struct AttributionFixture {
  nn::LstmConfig config;
  std::unique_ptr<nn::LstmClassifier> model;
  nn::SequenceDataset data;

  AttributionFixture() {
    ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
    spec.ransomware_windows = 200;
    spec.benign_windows = 235;
    data = ransomware::build_dataset(spec).data;
    Rng rng(3);
    model = std::make_unique<nn::LstmClassifier>(config, rng);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 32;
    nn::train(*model, data, data, tc);
  }

  nn::Sequence detected_ransomware_window() const {
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.labels[i] == 1 && model->forward(data.sequences[i], nullptr) > 0.9) {
        return data.sequences[i];
      }
    }
    throw std::runtime_error("no confidently detected window");
  }
};

AttributionFixture& fixture() {
  static AttributionFixture f;
  return f;
}

TEST(Attribution, ReportsRequestedTopK) {
  const nn::Sequence window = fixture().detected_ransomware_window();
  const AttributionReport report =
      attribute_window(*fixture().model, window, {.top_k = 5});
  EXPECT_EQ(report.top_calls.size(), 5u);
  EXPECT_GT(report.probability, 0.9);
  // Sorted descending.
  for (std::size_t i = 1; i < report.top_calls.size(); ++i) {
    EXPECT_GE(report.top_calls[i - 1].contribution,
              report.top_calls[i].contribution);
  }
}

TEST(Attribution, NamesResolveAgainstVocabulary) {
  const nn::Sequence window = fixture().detected_ransomware_window();
  const AttributionReport report = attribute_window(*fixture().model, window);
  const auto& vocab = ransomware::ApiVocabulary::instance();
  for (const CallAttribution& call : report.top_calls) {
    EXPECT_EQ(call.api_name, vocab.call(call.token).name);
    EXPECT_LT(call.position, window.size());
    EXPECT_EQ(window[call.position], call.token);
  }
}

TEST(Attribution, TopCallsOnDetectedRansomwareLookMalicious) {
  // The top attribution of a confidently detected encryption window should
  // include at least one crypto or file-manipulation call.
  const nn::Sequence window = fixture().detected_ransomware_window();
  const AttributionReport report =
      attribute_window(*fixture().model, window, {.top_k = 10});
  ASSERT_FALSE(report.top_calls.empty());
  EXPECT_GT(report.top_calls.front().contribution, 0.0);
  bool plausible = false;
  const auto& vocab = ransomware::ApiVocabulary::instance();
  for (const CallAttribution& call : report.top_calls) {
    const auto category = vocab.call(call.token).category;
    plausible |= category == ransomware::ApiCategory::Crypto ||
                 category == ransomware::ApiCategory::FileSystem ||
                 category == ransomware::ApiCategory::NtFile ||
                 category == ransomware::ApiCategory::Propagation ||
                 category == ransomware::ApiCategory::Process;
  }
  EXPECT_TRUE(plausible);
}

TEST(Attribution, MaskTokenPositionsAreSkipped) {
  const auto& vocab = ransomware::ApiVocabulary::instance();
  const nn::TokenId mask = vocab.require("HeapAlloc");
  nn::Sequence window(20, mask);  // all positions are the mask itself
  const AttributionReport report = attribute_window(*fixture().model, window);
  EXPECT_TRUE(report.top_calls.empty());
}

TEST(Attribution, CustomMaskToken) {
  const nn::Sequence window = fixture().detected_ransomware_window();
  const AttributionReport report = attribute_window(
      *fixture().model, window,
      {.top_k = 3,
       .mask_token = ransomware::ApiVocabulary::instance().require("Sleep")});
  EXPECT_EQ(report.top_calls.size(), 3u);
}

TEST(Attribution, Guards) {
  EXPECT_THROW(attribute_window(*fixture().model, {}), PreconditionError);
  const nn::Sequence window = fixture().detected_ransomware_window();
  EXPECT_THROW(attribute_window(*fixture().model, window, {.top_k = 0}),
               PreconditionError);
  EXPECT_THROW(
      attribute_window(*fixture().model, window, {.mask_token = 100'000}),
      PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
