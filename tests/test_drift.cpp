#include "detect/drift.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "detect/cti.hpp"
#include "ransomware/dataset_builder.hpp"

namespace csdml::detect {
namespace {

const ransomware::BuiltDataset& corpus() {
  static const ransomware::BuiltDataset built = [] {
    ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
    spec.ransomware_windows = 200;
    spec.benign_windows = 235;
    return ransomware::build_dataset(spec);
  }();
  return built;
}

TEST(Drift, DistributionIsNormalised) {
  const CategoryDistribution dist = category_distribution(corpus().data);
  double sum = 0.0;
  for (const double v : dist) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Drift, PsiZeroForIdenticalDistributions) {
  const CategoryDistribution dist = category_distribution(corpus().data);
  EXPECT_NEAR(population_stability_index(dist, dist), 0.0, 1e-12);
}

TEST(Drift, PsiPositiveAndSymmetricOrderOfMagnitude) {
  CategoryDistribution a{};
  CategoryDistribution b{};
  a[0] = 0.8;
  a[1] = 0.2;
  b[0] = 0.2;
  b[1] = 0.8;
  const double ab = population_stability_index(a, b);
  EXPECT_GT(ab, 0.25);  // a major shift
  EXPECT_NEAR(ab, population_stability_index(b, a), 1e-9);
}

TEST(Drift, StockTrafficDoesNotAlarm) {
  const CategoryDistribution reference = category_distribution(corpus().data);
  DriftMonitor monitor(reference, DriftConfig{.window_tokens = 1'000});
  // Replay the corpus itself (same distribution).
  for (const auto& window : corpus().data.sequences) {
    for (const nn::TokenId token : window) {
      EXPECT_FALSE(monitor.observe(token));
    }
  }
  EXPECT_FALSE(monitor.drifted());
  EXPECT_GT(monitor.windows_evaluated(), 10u);
  EXPECT_LT(monitor.last_psi(), 0.1);  // "stable" band
}

TEST(Drift, NovelStrainTrafficAlarms) {
  const CategoryDistribution reference = category_distribution(corpus().data);
  DriftMonitor monitor(reference,
                       DriftConfig{.window_tokens = 1'000, .psi_threshold = 0.25,
                                   .consecutive_windows = 2});
  // Traffic dominated by the stealth strain (container encryption, no
  // registry/service/propagation activity): categories shift hard.
  const auto strain =
      make_emerging_strain(ransomware::ransomware_families()[1], 1);
  const nn::SequenceDataset traffic = windows_from_strain(strain, 120, 100, 25, 3);
  bool alarmed = false;
  for (const auto& window : traffic.sequences) {
    for (const nn::TokenId token : window) {
      alarmed |= monitor.observe(token);
    }
  }
  EXPECT_TRUE(alarmed);
  EXPECT_TRUE(monitor.drifted());
  EXPECT_GT(monitor.last_psi(), 0.25);
}

TEST(Drift, ResetClearsAlarm) {
  CategoryDistribution reference{};
  reference[0] = 1.0;
  DriftMonitor monitor(reference, DriftConfig{.window_tokens = 50,
                                              .consecutive_windows = 1});
  // Feed tokens of a very different category mix.
  const auto& vocab = ransomware::ApiVocabulary::instance();
  const nn::TokenId crypto = vocab.require("CryptEncrypt");
  for (int i = 0; i < 50; ++i) monitor.observe(crypto);
  EXPECT_TRUE(monitor.drifted());
  monitor.reset();
  EXPECT_FALSE(monitor.drifted());
}

TEST(Drift, DebounceRequiresConsecutiveWindows) {
  CategoryDistribution reference{};
  reference[0] = 1.0;
  DriftMonitor monitor(reference, DriftConfig{.window_tokens = 50,
                                              .consecutive_windows = 3});
  const auto& vocab = ransomware::ApiVocabulary::instance();
  const nn::TokenId crypto = vocab.require("CryptEncrypt");
  int fired_at_window = -1;
  for (int i = 0; i < 200; ++i) {
    if (monitor.observe(crypto)) {
      fired_at_window = static_cast<int>(monitor.windows_evaluated());
      break;
    }
  }
  EXPECT_EQ(fired_at_window, 3);
}

TEST(Drift, Guards) {
  EXPECT_THROW(category_distribution(std::vector<nn::TokenId>{}),
               PreconditionError);
  CategoryDistribution reference{};
  EXPECT_THROW(DriftMonitor(reference, DriftConfig{.window_tokens = 0}),
               PreconditionError);
  EXPECT_THROW(DriftMonitor(reference, DriftConfig{.psi_threshold = 0.0}),
               PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
