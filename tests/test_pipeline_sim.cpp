// Cross-validation: the event-driven pipeline simulation is the ground
// truth; the engine's closed-form overlap formula must match it for every
// shipped configuration.
#include <gtest/gtest.h>

#include "kernels/engine.hpp"
#include "kernels/pipeline_sim.hpp"

namespace csdml::kernels {
namespace {

const hls::HlsCostModel& model() {
  static const hls::HlsCostModel m = hls::HlsCostModel::ultrascale_default();
  return m;
}

struct SimCase {
  OptimizationLevel level;
  std::uint32_t cus;
  KernelLink link;
  std::size_t items;
};

class PipelineSimTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(PipelineSimTest, EventDrivenMatchesClosedForm) {
  const SimCase param = GetParam();
  const nn::LstmConfig config;
  const PipelineSimConfig pipeline{param.level, param.cus, param.link};
  const StageDurations stages = stage_durations(model(), config, pipeline);
  // Precondition of the closed form (holds for every shipped config):
  ASSERT_LE(stages.preprocess.picos, (stages.gates + stages.hidden).picos);

  const PipelineSimResult sim = simulate_pipeline(model(), config, pipeline,
                                                  param.items);
  const Duration closed_form =
      stages.preprocess +
      (stages.gates + stages.hidden) * static_cast<std::int64_t>(param.items);
  EXPECT_EQ(sim.total.picos, closed_form.picos);
}

TEST_P(PipelineSimTest, TraceHasOneSpanPerStagePerItem) {
  const SimCase param = GetParam();
  const nn::LstmConfig config;
  const PipelineSimResult sim = simulate_pipeline(
      model(), config, {param.level, param.cus, param.link}, param.items);
  EXPECT_EQ(sim.trace.count("preprocess"), param.items);
  EXPECT_EQ(sim.trace.count("gates"), param.items);
  EXPECT_EQ(sim.trace.count("hidden_state"), param.items);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineSimTest,
    ::testing::Values(
        SimCase{OptimizationLevel::Vanilla, 4, KernelLink::AxiMemory, 10},
        SimCase{OptimizationLevel::II, 4, KernelLink::AxiMemory, 25},
        SimCase{OptimizationLevel::FixedPoint, 4, KernelLink::AxiMemory, 100},
        SimCase{OptimizationLevel::FixedPoint, 1, KernelLink::AxiMemory, 50},
        SimCase{OptimizationLevel::FixedPoint, 4, KernelLink::Stream, 100},
        SimCase{OptimizationLevel::Vanilla, 2, KernelLink::Stream, 7},
        SimCase{OptimizationLevel::II, 4, KernelLink::AxiMemory, 1}));

TEST(PipelineSim, MatchesEngineSequenceTiming) {
  const nn::LstmConfig config;
  Rng rng(3);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  CsdLstmEngine engine(device, config, params,
                       EngineConfig{.level = OptimizationLevel::FixedPoint});
  nn::Sequence seq(100, 1);
  const Duration engine_time = engine.infer(seq).device_time;
  const PipelineSimResult sim = simulate_pipeline(
      model(), config, {OptimizationLevel::FixedPoint, 4, KernelLink::AxiMemory},
      100);
  EXPECT_EQ(engine_time.picos, sim.total.picos);
}

TEST(PipelineSim, PreprocessOverlapsSteadyStages) {
  // In the trace, preprocess[i+1] must start before hidden[i] ends —
  // the Section III-C lookahead visible event-by-event.
  const nn::LstmConfig config;
  const PipelineSimResult sim = simulate_pipeline(
      model(), config, {OptimizationLevel::Vanilla, 4, KernelLink::AxiMemory}, 5);
  std::vector<sim::Span> preprocess;
  std::vector<sim::Span> hidden;
  for (const auto& span : sim.trace.spans()) {
    if (span.name == "preprocess") preprocess.push_back(span);
    if (span.name == "hidden_state") hidden.push_back(span);
  }
  ASSERT_EQ(preprocess.size(), 5u);
  ASSERT_EQ(hidden.size(), 5u);
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    EXPECT_LT(preprocess[i + 1].start.picos, hidden[i].end.picos);
  }
}

TEST(PipelineSim, SingleItemHasNoOverlapBenefit) {
  const nn::LstmConfig config;
  const PipelineSimConfig pipeline{OptimizationLevel::FixedPoint, 4,
                                   KernelLink::AxiMemory};
  const StageDurations stages = stage_durations(model(), config, pipeline);
  const PipelineSimResult sim = simulate_pipeline(model(), config, pipeline, 1);
  EXPECT_EQ(sim.total.picos,
            (stages.preprocess + stages.gates + stages.hidden).picos);
}

TEST(PipelineSim, Guards) {
  const nn::LstmConfig config;
  EXPECT_THROW(simulate_pipeline(model(), config, {}, 0), PreconditionError);
}

}  // namespace
}  // namespace csdml::kernels
