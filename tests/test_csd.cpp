#include "csd/smartssd.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::csd {
namespace {

TEST(Nand, ReadPaysSenseAndTransfer) {
  NandArray nand(NandConfig{});
  std::vector<std::uint8_t> out;
  const TimePoint done = nand.read_page({0, 0, 0}, TimePoint{}, &out).done;
  const NandConfig& cfg = nand.config();
  const Duration expected =
      cfg.read_latency + cfg.channel_bandwidth.transfer_time(cfg.page_size);
  EXPECT_EQ((done - TimePoint{}).picos, expected.picos);
  EXPECT_EQ(out.size(), cfg.page_size.count);
}

TEST(Nand, ErasedFlashReadsOnes) {
  NandArray nand(NandConfig{});
  std::vector<std::uint8_t> out;
  nand.read_page({1, 2, 3}, TimePoint{}, &out);
  for (const std::uint8_t byte : out) EXPECT_EQ(byte, 0xFF);
}

TEST(Nand, ProgramThenReadReturnsData) {
  NandArray nand(NandConfig{});
  std::vector<std::uint8_t> data(nand.config().page_size.count, 0xAB);
  data[7] = 0x11;
  const TimePoint programmed = nand.program_page({2, 1, 5}, TimePoint{}, data);
  std::vector<std::uint8_t> out;
  nand.read_page({2, 1, 5}, programmed, &out);
  EXPECT_EQ(out, data);
}

TEST(Nand, EraseClearsWholeBlock) {
  NandConfig cfg;
  NandArray nand(cfg);
  std::vector<std::uint8_t> data(cfg.page_size.count, 0x55);
  const PageAddress a{0, 0, 10};
  const PageAddress b{0, 0, cfg.pages_per_block - 1};
  nand.program_page(a, TimePoint{}, data);
  nand.program_page(b, TimePoint{}, data);
  nand.erase_block({0, 0, 0}, TimePoint{});
  std::vector<std::uint8_t> out;
  nand.read_page(a, TimePoint{}, &out);
  EXPECT_EQ(out[0], 0xFF);
  nand.read_page(b, TimePoint{}, &out);
  EXPECT_EQ(out[0], 0xFF);
}

TEST(Nand, ChannelSerialisesTransfersButDiesOverlap) {
  NandConfig cfg;
  NandArray nand(cfg);
  // Two reads on the same channel, different dies, issued together: the
  // sense phases overlap, the channel transfers serialise.
  const TimePoint d1 = nand.read_page({0, 0, 0}, TimePoint{}, nullptr).done;
  const TimePoint d2 = nand.read_page({0, 1, 0}, TimePoint{}, nullptr).done;
  const Duration transfer = cfg.channel_bandwidth.transfer_time(cfg.page_size);
  EXPECT_EQ((d2 - d1).picos, transfer.picos);
  // Different channels: fully parallel.
  const TimePoint d3 = nand.read_page({1, 0, 0}, TimePoint{}, nullptr).done;
  EXPECT_EQ(d3.picos, d1.picos);
  EXPECT_GT(nand.total_channel_busy().picos, 0);
}

TEST(Nand, SameDieSerialisesSense) {
  NandConfig cfg;
  NandArray nand(cfg);
  const TimePoint d1 = nand.read_page({0, 0, 0}, TimePoint{}, nullptr).done;
  const TimePoint d2 = nand.read_page({0, 0, 1}, TimePoint{}, nullptr).done;
  EXPECT_GE((d2 - d1).picos, cfg.read_latency.picos);
  (void)d1;
}

TEST(Nand, ValidatesAddresses) {
  NandArray nand(NandConfig{});
  EXPECT_THROW(nand.read_page({99, 0, 0}, TimePoint{}, nullptr),
               PreconditionError);
  EXPECT_THROW(nand.read_page({0, 99, 0}, TimePoint{}, nullptr),
               PreconditionError);
}

TEST(Ssd, WriteThenReadRoundTripsData) {
  SsdController ssd(SsdConfig{});
  std::vector<std::uint8_t> payload(10'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  const TimePoint written = ssd.write(1000, payload, TimePoint{});
  const IoResult result = ssd.read(1000, 3, written);  // 3 blocks = 12 KiB
  ASSERT_GE(result.data.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(result.data[i], payload[i]) << "byte " << i;
  }
  EXPECT_GT(result.done.picos, written.picos);
}

TEST(Ssd, ReadLatencyIncludesCommandOverheadAndNand) {
  SsdConfig cfg;
  SsdController ssd(cfg);
  const IoResult result = ssd.read(0, 1, TimePoint{});
  const Duration floor = cfg.command_overhead + cfg.nand.read_latency;
  EXPECT_GT((result.done - TimePoint{}).picos, floor.picos);
}

TEST(Ssd, StripesAcrossChannels) {
  // Large reads spread pages over channels: the whole-read latency should
  // be far below page_count x single-page latency.
  SsdConfig cfg;
  SsdController ssd(cfg);
  const std::uint32_t blocks_per_page =
      static_cast<std::uint32_t>(cfg.nand.page_size.count / cfg.logical_block.count);
  const std::uint32_t pages = 8;
  const IoResult result = ssd.read(0, pages * blocks_per_page, TimePoint{});
  const IoResult single = ssd.read(0, 1, TimePoint{});
  const double ratio = static_cast<double>((result.done - TimePoint{}).picos) /
                       static_cast<double>((single.done - TimePoint{}).picos);
  EXPECT_LT(ratio, 3.0);  // parallelism, not 8x serial
  EXPECT_EQ(ssd.bytes_read().count,
            static_cast<std::uint64_t>(pages) * cfg.nand.page_size.count +
                cfg.logical_block.count);
}

TEST(Ssd, Guards) {
  SsdController ssd(SsdConfig{});
  EXPECT_THROW(ssd.read(0, 0, TimePoint{}), PreconditionError);
  EXPECT_THROW(ssd.write(0, {}, TimePoint{}), PreconditionError);
}

TEST(Pcie, TransferTimeMatchesBandwidthPlusOverhead) {
  PcieLinkConfig cfg;
  PcieLink link(cfg);
  const TimePoint done = link.transfer(Bytes{32'000}, TimePoint{});
  const Duration expected =
      cfg.per_transfer_overhead + cfg.bandwidth.transfer_time(Bytes{32'000});
  EXPECT_EQ((done - TimePoint{}).picos, expected.picos);
  EXPECT_EQ(link.bytes_moved().count, 32'000u);
}

TEST(Pcie, LinkSerialisesConcurrentTransfers) {
  PcieLink link(PcieLinkConfig{});
  const TimePoint d1 = link.transfer(Bytes::mib(1), TimePoint{});
  const TimePoint d2 = link.transfer(Bytes::mib(1), TimePoint{});
  EXPECT_GT(d2.picos, d1.picos);
  EXPECT_THROW(link.transfer(Bytes{0}, TimePoint{}), PreconditionError);
}

TEST(DdrBank, StoreLoadRoundTrip) {
  DdrBank bank(DdrBankConfig{});
  bank.store(4096, {1, 2, 3, 4});
  const auto out = bank.load(4096, 4);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  // Unwritten regions read zero.
  EXPECT_EQ(bank.load(1 << 20, 2), (std::vector<std::uint8_t>{0, 0}));
}

TEST(DdrBank, BoundsChecked) {
  DdrBankConfig cfg;
  cfg.capacity = Bytes::kib(4);
  DdrBank bank(cfg);
  EXPECT_THROW(bank.store(4096 - 1, {1, 2}), PreconditionError);
  EXPECT_THROW(bank.load(4096, 1), PreconditionError);
  EXPECT_THROW(bank.access(Bytes{0}, TimePoint{}), PreconditionError);
}

TEST(Fpga, BankCountAndPlacement) {
  FpgaConfig cfg;
  cfg.ddr_banks = 2;
  FpgaDevice fpga(cfg);
  EXPECT_EQ(fpga.bank_count(), 2u);
  EXPECT_THROW(fpga.bank(2), PreconditionError);

  hls::ResourceEstimate est{.luts = 1000, .flip_flops = 1000, .bram36 = 1, .dsp = 1};
  fpga.place("small", est);
  EXPECT_GT(fpga.utilization(), 0.0);

  hls::ResourceEstimate too_big{.luts = cfg.part.luts + 1};
  EXPECT_THROW(fpga.place("huge", too_big), ResourceError);
}

TEST(SmartSsd, P2pMovesDataIntoFpgaDram) {
  SmartSsd board{SmartSsdConfig{}};
  std::vector<std::uint8_t> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  board.ssd().write(64, payload, TimePoint{});
  const TransferResult result =
      board.p2p_read_to_fpga(64, 1, 0, 0, TimePoint{} + Duration::microseconds(500));
  EXPECT_EQ(result.bytes.count, 4096u);
  const auto in_dram = board.fpga().bank(0).load(0, 4096);
  EXPECT_EQ(in_dram, payload);
}

TEST(SmartSsd, P2pIsFasterThanHostPath) {
  // Two identical boards so resource serialisation doesn't couple the runs.
  SmartSsd p2p_board{SmartSsdConfig{}};
  SmartSsd host_board{SmartSsdConfig{}};
  std::vector<std::uint8_t> payload(64 * 1024, 0x5A);
  p2p_board.ssd().write(0, payload, TimePoint{});
  host_board.ssd().write(0, payload, TimePoint{});
  const TimePoint start = TimePoint{} + Duration::microseconds(2000);

  const TransferResult p2p = p2p_board.p2p_read_to_fpga(0, 16, 0, 0, start);
  const TransferResult host = host_board.host_read_to_fpga(0, 16, 0, 0, start);
  EXPECT_LT((p2p.done - start).picos, (host.done - start).picos);
  // The host path crosses the upstream link twice; P2P never touches it.
  EXPECT_EQ(p2p_board.pcie().upstream().bytes_moved().count, 0u);
  EXPECT_EQ(host_board.pcie().upstream().bytes_moved().count, 2u * 64 * 1024);
}

TEST(SmartSsd, HostWriteAndReadBackFpga) {
  SmartSsd board{SmartSsdConfig{}};
  const std::vector<std::uint8_t> data{9, 8, 7, 6};
  const TransferResult w = board.host_write_to_fpga(data, 1, 128, TimePoint{});
  EXPECT_GT(w.done.picos, 0);
  const IoResult r = board.host_read_from_fpga(1, 128, 4, w.done);
  EXPECT_EQ(r.data, data);
  EXPECT_GT(r.done.picos, w.done.picos);
}

TEST(SmartSsd, TraceRecordsTransfers) {
  SmartSsd board{SmartSsdConfig{}};
  board.ssd().write(0, std::vector<std::uint8_t>(4096, 1), TimePoint{});
  board.p2p_read_to_fpga(0, 1, 0, 0, TimePoint{} + Duration::microseconds(1000));
  EXPECT_EQ(board.trace().count("p2p_read"), 1u);
}

}  // namespace
}  // namespace csdml::csd
