#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "json_lint.hpp"

namespace csdml::obs {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceExport, EmptyTraceIsValidJson) {
  const sim::Trace trace;
  const std::string json = to_chrome_trace_json(trace);
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 0u);
}

TEST(TraceExport, RoundTripsSpansAsCompleteEvents) {
  sim::Trace trace;
  trace.record("kernel_preprocess", TimePoint{0}, TimePoint{2'000'000});
  trace.record("kernel_gates", TimePoint{2'000'000}, TimePoint{4'500'000});
  trace.record("kernel_gates", TimePoint{5'000'000}, TimePoint{6'000'000});

  const std::string json = to_chrome_trace_json(trace, {.pid = 3});
  ASSERT_TRUE(testing::JsonLint::valid(json)) << json;
  // One complete event per recorded span, on the exporting pid.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), trace.spans().size());
  EXPECT_EQ(count_occurrences(json, "\"pid\":3"),
            trace.spans().size() + 3u);  // + process_name + 2 thread_names
  // ts/dur are microseconds: the 2,000,000 ps preprocess span is 2 µs.
  EXPECT_NE(json.find("\"ts\":0.000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000000"), std::string::npos);
  // One tid per distinct span name, announced as thread_name metadata.
  EXPECT_EQ(count_occurrences(json, "\"thread_name\""), 2u);
  EXPECT_NE(json.find("\"kernel_preprocess\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel_gates\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(TraceExport, MultiDeviceExportKeepsPidsApart) {
  sim::Trace a;
  a.record("k", TimePoint{0}, TimePoint{10});
  sim::Trace b;
  b.record("k", TimePoint{0}, TimePoint{20});
  const std::string json = to_chrome_trace_json(
      {DeviceTrace{&a, {.pid = 0, .process_name = "smartssd0"}},
       DeviceTrace{&b, {.pid = 1, .process_name = "smartssd1"}}});
  ASSERT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"smartssd0\""), std::string::npos);
  EXPECT_NE(json.find("\"smartssd1\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_THROW(to_chrome_trace_json({DeviceTrace{nullptr, {}}}),
               PreconditionError);
}

TEST(TraceExport, EscapesSpanNames) {
  sim::Trace trace;
  trace.record("weird\"name\\here", TimePoint{0}, TimePoint{1});
  const std::string json = to_chrome_trace_json(trace);
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
}

TEST(TraceExport, WritesFile) {
  sim::Trace trace;
  trace.record("kernel_hidden_state", TimePoint{0}, TimePoint{1'000});
  const std::string path =
      (std::filesystem::temp_directory_path() / "csdml_trace_export.json")
          .string();
  write_chrome_trace_file(path, trace);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(testing::JsonLint::valid(buffer.str()));
  std::remove(path.c_str());

  EXPECT_THROW(write_chrome_trace_file("/no/such/dir/trace.json", trace),
               Error);
}

TEST(TraceExport, SummaryTableAggregatesPerName) {
  sim::Trace trace;
  trace.record("kernel_gates", TimePoint{0}, TimePoint{2'000'000});
  trace.record("kernel_gates", TimePoint{0}, TimePoint{4'000'000});
  trace.record("dma", TimePoint{0}, TimePoint{2'000'000});
  const std::string table = trace_summary(trace);
  EXPECT_NE(table.find("kernel_gates"), std::string::npos);
  EXPECT_NE(table.find("dma"), std::string::npos);
  EXPECT_NE(table.find("share"), std::string::npos);
  // kernel_gates: 2 spans, 6 of the 8 total µs = 75.0%.
  EXPECT_NE(table.find("75.0%"), std::string::npos);
  EXPECT_NE(table.find("6.000"), std::string::npos);
}

}  // namespace
}  // namespace csdml::obs
