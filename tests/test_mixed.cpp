#include "kernels/mixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/functional.hpp"

namespace csdml::kernels {
namespace {

struct MixedFixture {
  nn::LstmConfig config;
  nn::LstmParams params;
  MixedFixture() {
    Rng rng(51);
    params = nn::LstmParams::glorot(config, rng);
    for (auto& w : params.dense_w) w *= 30.0;  // confident outputs
  }
  nn::Sequence sequence(std::uint64_t seed, int length = 60) const {
    Rng rng(seed);
    nn::Sequence seq;
    for (int i = 0; i < length; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, config.vocab_size - 1)));
    }
    return seq;
  }
};

const std::vector<PrecisionPreset>& presets() {
  static const std::vector<PrecisionPreset> all = {
      PrecisionPreset::UniformQ10, PrecisionPreset::UniformQ16,
      PrecisionPreset::UniformQ24, PrecisionPreset::GatesQ16StateQ24};
  return all;
}

class PresetTest : public ::testing::TestWithParam<PrecisionPreset> {};

TEST_P(PresetTest, OutputsAreProbabilities) {
  MixedFixture f;
  const auto path = make_mixed_datapath(f.config, f.params, GetParam());
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const double p = path->infer(f.sequence(seed));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(PresetTest, TracksFloatReference) {
  MixedFixture f;
  const FloatDatapath reference(f.config, f.params);
  const auto path = make_mixed_datapath(f.config, f.params, GetParam());
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const nn::Sequence seq = f.sequence(seed);
    // The PLAN sigmoid caps achievable fidelity at ~0.02-0.08 prob error.
    EXPECT_NEAR(path->infer(seq), reference.infer(seq), 0.12) << seed;
  }
}

TEST_P(PresetTest, DeterministicAndNamed) {
  MixedFixture f;
  const auto path = make_mixed_datapath(f.config, f.params, GetParam());
  const nn::Sequence seq = f.sequence(3);
  EXPECT_DOUBLE_EQ(path->infer(seq), path->infer(seq));
  EXPECT_FALSE(path->describe().empty());
  EXPECT_NE(std::string(precision_name(GetParam())), "");
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetTest, ::testing::ValuesIn(presets()),
                         [](const auto& info) {
                           std::string name = precision_name(info.param);
                           for (char& c : name) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return name;
                         });

TEST(Mixed, WiderUniformIsAtLeastAsFaithfulToQ24) {
  // Against the widest datapath as reference, fidelity must improve (or
  // tie) with precision: err(Q10) >= err(Q16) >= err(Q24)=0.
  MixedFixture f;
  const auto q24 = make_mixed_datapath(f.config, f.params,
                                       PrecisionPreset::UniformQ24);
  const auto q16 = make_mixed_datapath(f.config, f.params,
                                       PrecisionPreset::UniformQ16);
  const auto q10 = make_mixed_datapath(f.config, f.params,
                                       PrecisionPreset::UniformQ10);
  double err16 = 0.0;
  double err10 = 0.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const nn::Sequence seq = f.sequence(seed);
    const double ref = q24->infer(seq);
    err16 += std::abs(q16->infer(seq) - ref);
    err10 += std::abs(q10->infer(seq) - ref);
  }
  EXPECT_LT(err16, err10);
}

TEST(Mixed, MixedMatchesWideUniformClosely) {
  // The design claim: Q16 gates + Q24 state ~= Q24 everywhere.
  MixedFixture f;
  const auto q24 = make_mixed_datapath(f.config, f.params,
                                       PrecisionPreset::UniformQ24);
  const auto mixed = make_mixed_datapath(f.config, f.params,
                                         PrecisionPreset::GatesQ16StateQ24);
  double worst = 0.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const nn::Sequence seq = f.sequence(seed);
    worst = std::max(worst, std::abs(mixed->infer(seq) - q24->infer(seq)));
  }
  EXPECT_LT(worst, 0.01);
}

TEST(Mixed, DspCostReflectsOperandWidths) {
  EXPECT_EQ(dsp_per_gate_mac(PrecisionPreset::UniformQ10), 1u);
  EXPECT_EQ(dsp_per_gate_mac(PrecisionPreset::UniformQ16), 1u);
  EXPECT_EQ(dsp_per_gate_mac(PrecisionPreset::GatesQ16StateQ24), 1u);
  EXPECT_EQ(dsp_per_gate_mac(PrecisionPreset::UniformQ24), 2u);
}

TEST(Mixed, DecisionsAgreeWithDecimalScheme) {
  // The mixed path and the paper's decimal 10^6 path should agree on
  // confident inputs — both approximate the same model.
  MixedFixture f;
  const FixedDatapath decimal(f.config, f.params);
  const auto mixed = make_mixed_datapath(f.config, f.params,
                                         PrecisionPreset::GatesQ16StateQ24);
  const FloatDatapath reference(f.config, f.params);
  int checked = 0;
  int agreed = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const nn::Sequence seq = f.sequence(seed);
    if (std::abs(reference.infer(seq) - 0.5) < 0.15) continue;
    ++checked;
    agreed += (decimal.infer(seq) >= 0.5) == (mixed->infer(seq) >= 0.5);
  }
  ASSERT_GT(checked, 30);
  EXPECT_GE(static_cast<double>(agreed) / checked, 0.97);
}

TEST(Mixed, EmptySequenceThrows) {
  MixedFixture f;
  const auto path =
      make_mixed_datapath(f.config, f.params, PrecisionPreset::UniformQ16);
  EXPECT_THROW(path->infer({}), PreconditionError);
}

}  // namespace
}  // namespace csdml::kernels
