// Scenario harness tests: spec round-trips, scorer arithmetic on
// hand-built verdict streams, seed determinism of the runner, and the
// attack-during-failover invariant (no pid lost across a rehash).
//
// Runner tests use the tiny model (scenario_model(true)) so this suite
// stays inside the `scenario` ctest label's time budget; full-model
// outcomes are gated separately by the golden-digest CTest entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"
#include "ransomware/sandbox.hpp"
#include "scenario/corpus.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scorer.hpp"

namespace csdml::scenario {
namespace {

// ---------------------------------------------------------------- parsing

TEST(ScenarioParse, RoundTripsEveryBuiltin) {
  for (const Scenario& original : builtin_corpus()) {
    const std::string text = serialize_scenario(original);
    const Scenario parsed = parse_scenario(text, original.name);
    EXPECT_EQ(parsed, original) << original.name;
    // Serialization is canonical: a second lap is byte-identical.
    EXPECT_EQ(serialize_scenario(parsed), text) << original.name;
  }
}

TEST(ScenarioParse, AppliesDefaultsAndComments) {
  const Scenario s = parse_scenario(
      "# a comment line\n"
      "scenario demo  # trailing comment\n"
      "benign pid=7 profile=VLC session=1 start=5 calls=200\n");
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.seed, Scenario{}.seed);
  EXPECT_EQ(s.boards, 1u);
  ASSERT_EQ(s.processes.size(), 1u);
  EXPECT_DOUBLE_EQ(s.processes[0].noise, kDefaultNoiseRate);
  EXPECT_FALSE(s.processes[0].attack);
}

TEST(ScenarioParse, SortsEventsByRound) {
  const Scenario s = parse_scenario(
      "scenario demo\n"
      "boards 2\n"
      "benign pid=1 profile=VLC session=0 start=0 calls=300\n"
      "event revive-board board=0 at=200\n"
      "event kill-board board=0 at=50\n");
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, EventSpec::Kind::KillBoard);
  EXPECT_EQ(s.events[1].kind, EventSpec::Kind::ReviveBoard);
}

TEST(ScenarioParse, RejectsMalformedText) {
  const char* benign = "benign pid=1 profile=VLC session=0 start=0 calls=100\n";
  // No `scenario <name>` line at all.
  EXPECT_THROW(parse_scenario(std::string(benign)), ParseError);
  // Bare token where key=value is required.
  EXPECT_THROW(parse_scenario("scenario x\nbenign pid\n"), ParseError);
  // Duplicate key on one line.
  EXPECT_THROW(
      parse_scenario("scenario x\n"
                     "benign pid=1 pid=2 profile=VLC session=0 start=0 "
                     "calls=100\n"),
      ParseError);
  // Unknown keyword, unknown event kind, unknown field.
  EXPECT_THROW(parse_scenario("scenario x\nfrobnicate a=1\n"), ParseError);
  EXPECT_THROW(parse_scenario("scenario x\nevent explode at=5\n"), ParseError);
  EXPECT_THROW(
      parse_scenario(std::string("scenario x\n") + benign +
                     "detector window=100 hop=25 debounce=2 threshold=0.5 "
                     "bogus=1\n"),
      ParseError);
  // Positional lines with the wrong shape.
  EXPECT_THROW(parse_scenario("scenario\n"), ParseError);
  EXPECT_THROW(parse_scenario("scenario x\nseed notanumber\n"), ParseError);
  EXPECT_THROW(parse_scenario("scenario x\nboards 1 2\n"), ParseError);
}

TEST(ScenarioParse, ValidatesSemantics) {
  const char* header = "scenario x\n";
  // Duplicate pid.
  EXPECT_THROW(
      parse_scenario(std::string(header) +
                     "benign pid=1 profile=VLC session=0 start=0 calls=100\n"
                     "benign pid=1 profile=7-Zip session=0 start=0 "
                     "calls=100\n"),
      PreconditionError);
  // Unknown benign profile / attack family.
  EXPECT_THROW(parse_scenario(std::string(header) +
                              "benign pid=1 profile=NotARealApp session=0 "
                              "start=0 calls=100\n"),
               PreconditionError);
  EXPECT_THROW(parse_scenario(std::string(header) +
                              "attack pid=1 family=NotAFamily variant=0 "
                              "start=0 calls=100\n"),
               PreconditionError);
  // Event aimed past the board range.
  EXPECT_THROW(
      parse_scenario(std::string(header) +
                     "benign pid=1 profile=VLC session=0 start=0 calls=100\n"
                     "event kill-board board=5 at=10\n"),
      PreconditionError);
}

TEST(ScenarioCorpus, TextFilesMatchBuiltins) {
  // tests/scenarios/*.scn are the serialized builtins; regenerate with
  //   csdml scenario show --name <scenario> > tests/scenarios/<scenario>.scn
  const std::filesystem::path dir{CSDML_SCENARIO_CORPUS_DIR};
  for (const Scenario& builtin : builtin_corpus()) {
    const std::filesystem::path path = dir / (builtin.name + ".scn");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_EQ(load_scenario_file(path.string()), builtin) << path;
  }
}

TEST(ScenarioCorpus, GoldenFileCoversEveryScenario) {
  const std::filesystem::path path =
      std::filesystem::path{CSDML_SCENARIO_CORPUS_DIR} / "golden_digests.txt";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::set<std::string> named;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string name, digest;
    ASSERT_TRUE(fields >> name >> digest) << line;
    EXPECT_EQ(digest.size(), 16u) << line;
    named.insert(name);
  }
  for (const Scenario& builtin : builtin_corpus()) {
    EXPECT_TRUE(named.contains(builtin.name)) << builtin.name;
  }
}

// ---------------------------------------------------------------- sandbox

TEST(ScenarioSandbox, CountsCompletedEncryptRenameMotifs) {
  const auto& vocab = ransomware::ApiVocabulary::instance();
  const nn::TokenId encrypt = vocab.require("CryptEncrypt");
  const nn::TokenId bcrypt = vocab.require("BCryptEncrypt");
  const nn::TokenId rename = vocab.require("MoveFileExW");
  const nn::TokenId replace = vocab.require("ReplaceFileW");
  const nn::TokenId other = vocab.require("ReadFile");

  using Trace = std::vector<nn::TokenId>;
  EXPECT_EQ(ransomware::count_files_encrypted(Trace{}), 0u);
  // A rename with no pending encrypt is not a lost file.
  EXPECT_EQ(ransomware::count_files_encrypted(Trace{rename, replace}), 0u);
  // encrypt → (noise) → rename completes one file.
  EXPECT_EQ(ransomware::count_files_encrypted(Trace{encrypt, other, rename}),
            1u);
  // Double encrypt before one rename is still one file.
  EXPECT_EQ(ransomware::count_files_encrypted(Trace{encrypt, bcrypt, replace}),
            1u);
  // A trailing encrypt with no rename yet has lost nothing.
  EXPECT_EQ(ransomware::count_files_encrypted(
                Trace{encrypt, rename, bcrypt, replace, encrypt}),
            2u);
}

// ----------------------------------------------------------------- scorer

/// A two-process scenario (benign pid 1, attack pid 2) and matching
/// synthetic traces/verdicts for exercising the scorer arithmetic without
/// running a fleet.
struct ScorerFixture {
  Scenario scenario;
  std::unordered_map<detect::ProcessId, std::vector<nn::TokenId>> traces;
  serve::BoardFleet::Stats fleet;

  ScorerFixture() {
    scenario = ScenarioBuilder("scorer-arith")
                   .seed(7)
                   .boards(1)
                   .detector(100, 25, 2, 0.5)
                   .benign(1, "VLC", 0, 0, 200)
                   .attack(2, "Lockbit", 0, 0, 200)
                   .budget(100, 80, 0.0)
                   .build();
    const auto& vocab = ransomware::ApiVocabulary::instance();
    const nn::TokenId encrypt = vocab.require("CryptEncrypt");
    const nn::TokenId rename = vocab.require("MoveFileExW");
    const nn::TokenId noise = vocab.require("ReadFile");
    traces[1] = std::vector<nn::TokenId>(200, noise);
    // The attack encrypts one file per two calls: prefix of n calls has
    // n/2 completed motifs.
    std::vector<nn::TokenId> attack;
    for (int i = 0; i < 100; ++i) {
      attack.push_back(encrypt);
      attack.push_back(rename);
    }
    traces[2] = attack;
  }

  serve::Verdict verdict(detect::ProcessId pid, std::uint64_t call,
                         bool alert) const {
    serve::Verdict v;
    v.process = pid;
    v.call_index = call;
    v.alert = alert;
    return v;
  }

  /// Benign quiet; attack alerts from its third window on. Sorted by
  /// (pid, call_index) as score_scenario requires.
  std::vector<serve::Verdict> detected_stream() {
    std::vector<serve::Verdict> verdicts;
    for (std::uint64_t call = 100; call <= 200; call += 25) {
      verdicts.push_back(verdict(1, call, false));
    }
    for (std::uint64_t call = 100; call <= 200; call += 25) {
      verdicts.push_back(verdict(2, call, call >= 150));
    }
    fleet_accounting(verdicts.size());
    return verdicts;
  }

  void fleet_accounting(std::size_t verdict_count) {
    fleet.totals = {};
    fleet.totals.enqueued = verdict_count;
    fleet.totals.verdicts = verdict_count;
    fleet.boards_admitted = 1;
  }
};

TEST(ScenarioScorer, ComputesLatencyFilesAndFpr) {
  ScorerFixture fix;
  const std::vector<serve::Verdict> verdicts = fix.detected_stream();
  const ScoreSummary summary =
      score_scenario(fix.scenario, verdicts, fix.traces, fix.fleet);

  EXPECT_EQ(summary.attacks, 1u);
  EXPECT_EQ(summary.benign, 1u);
  EXPECT_EQ(summary.detected, 1u);
  EXPECT_EQ(summary.false_positives, 0u);
  EXPECT_DOUBLE_EQ(summary.fpr, 0.0);
  // First alert at call 150, first classifiable point at 100 → latency 50.
  ASSERT_EQ(summary.latencies.size(), 1u);
  EXPECT_EQ(summary.latencies[0], 50u);
  // 150 calls let through at one motif per two calls.
  EXPECT_EQ(summary.files_lost, 75u);

  ASSERT_EQ(summary.processes.size(), 2u);
  EXPECT_EQ(summary.processes[0].pid, 1u);
  EXPECT_EQ(summary.processes[0].first_alert_call, kNever);
  EXPECT_EQ(summary.processes[1].first_alert_call, 150u);
  EXPECT_EQ(summary.processes[1].detection_latency, 50u);
  EXPECT_EQ(summary.processes[1].files_lost, 75u);

  const GateReport gates = evaluate_gates(fix.scenario, summary);
  EXPECT_TRUE(gates.pass());
}

TEST(ScenarioScorer, UndetectedAttackFailsGatesAndLosesEverything) {
  ScorerFixture fix;
  std::vector<serve::Verdict> verdicts;
  for (std::uint64_t call = 100; call <= 200; call += 25) {
    verdicts.push_back(fix.verdict(1, call, false));
  }
  for (std::uint64_t call = 100; call <= 200; call += 25) {
    verdicts.push_back(fix.verdict(2, call, false));
  }
  fix.fleet_accounting(verdicts.size());
  const ScoreSummary summary =
      score_scenario(fix.scenario, verdicts, fix.traces, fix.fleet);

  EXPECT_EQ(summary.detected, 0u);
  EXPECT_TRUE(summary.latencies.empty());
  // Undetected: the whole scheduled stream ran → all 100 files lost.
  EXPECT_EQ(summary.files_lost, 100u);

  const GateReport gates = evaluate_gates(fix.scenario, summary);
  EXPECT_FALSE(gates.attacks_detected);
  EXPECT_FALSE(gates.latency_within_budget);
  EXPECT_FALSE(gates.files_within_budget);
  EXPECT_FALSE(gates.pass());
}

TEST(ScenarioScorer, BenignAlertIsAFalsePositive) {
  ScorerFixture fix;
  std::vector<serve::Verdict> verdicts = fix.detected_stream();
  verdicts[2].alert = true;  // pid 1, call 150
  const ScoreSummary summary =
      score_scenario(fix.scenario, verdicts, fix.traces, fix.fleet);
  EXPECT_EQ(summary.false_positives, 1u);
  EXPECT_DOUBLE_EQ(summary.fpr, 1.0);
  EXPECT_FALSE(evaluate_gates(fix.scenario, summary).fpr_within_budget);
}

TEST(ScenarioScorer, ConservationViolationFailsGates) {
  ScorerFixture fix;
  const std::vector<serve::Verdict> verdicts = fix.detected_stream();
  fix.fleet.totals.enqueued += 1;  // one window vanished
  const ScoreSummary summary =
      score_scenario(fix.scenario, verdicts, fix.traces, fix.fleet);
  const GateReport gates = evaluate_gates(fix.scenario, summary);
  EXPECT_FALSE(gates.conservation);
  EXPECT_FALSE(gates.pass());
}

TEST(ScenarioScorer, DigestIsOrderStableAndSeedSensitive) {
  ScorerFixture fix;
  const std::vector<serve::Verdict> verdicts = fix.detected_stream();
  const ScoreSummary summary =
      score_scenario(fix.scenario, verdicts, fix.traces, fix.fleet);
  const GateReport gates = evaluate_gates(fix.scenario, summary);
  const std::uint64_t digest =
      outcome_digest(fix.scenario, verdicts, summary, gates);
  EXPECT_EQ(digest, outcome_digest(fix.scenario, verdicts, summary, gates));
  EXPECT_EQ(format_digest(digest).size(), 16u);

  Scenario reseeded = fix.scenario;
  reseeded.seed += 1;
  EXPECT_NE(outcome_digest(reseeded, verdicts, summary, gates), digest);

  // Probabilities are deliberately outside the digest (floating-point
  // formatting is not byte-stable); flipping one must not move it.
  std::vector<serve::Verdict> jittered = verdicts;
  jittered[0].probability = 0.123456;
  EXPECT_EQ(outcome_digest(fix.scenario, jittered, summary, gates), digest);
}

// ----------------------------------------------------------------- runner

Scenario small_attack_scenario() {
  return ScenarioBuilder("runner-smoke")
      .seed(501)
      .boards(1)
      .detector(100, 25, 2, 0.5)
      .benign(1, "SumatraPDF", 0, 0, 300)
      .attack(2, "Lockbit", 2, 50, 250)
      .budget(150, 80, 0.0)
      .build();
}

TEST(ScenarioRunner, SameSeedSameDigestDifferentSeedDiffers) {
  const Scenario scenario = small_attack_scenario();
  RunOptions options;
  options.tiny = true;

  const RunResult first = run_scenario(scenario, options);
  const RunResult second = run_scenario(scenario, options);
  EXPECT_EQ(first.digest, second.digest);
  ASSERT_EQ(first.verdicts.size(), second.verdicts.size());
  for (std::size_t i = 0; i < first.verdicts.size(); ++i) {
    EXPECT_EQ(first.verdicts[i].process, second.verdicts[i].process);
    EXPECT_EQ(first.verdicts[i].call_index, second.verdicts[i].call_index);
    EXPECT_EQ(first.verdicts[i].alert, second.verdicts[i].alert);
  }

  RunOptions reseeded = options;
  reseeded.seed = 502;
  EXPECT_NE(run_scenario(scenario, reseeded).digest, first.digest);
}

TEST(ScenarioRunner, VerdictStreamIsSortedAndConserved) {
  RunOptions options;
  options.tiny = true;
  const RunResult result = run_scenario(small_attack_scenario(), options);

  EXPECT_TRUE(std::is_sorted(
      result.verdicts.begin(), result.verdicts.end(),
      [](const serve::Verdict& a, const serve::Verdict& b) {
        return a.process != b.process ? a.process < b.process
                                      : a.call_index < b.call_index;
      }));
  EXPECT_TRUE(result.gates.conservation);
  EXPECT_TRUE(result.gates.nothing_shed);
  EXPECT_GT(result.summary.fleet.totals.verdicts, 0u);
}

TEST(ScenarioRunner, AttackSurvivesOwnerBoardFailover) {
  // Kill the board that owns the attack pid mid-encryption: the pid must
  // cross the rehash, keep producing verdicts, and still be caught.
  const Scenario scenario = ScenarioBuilder("runner-failover")
                                .seed(503)
                                .boards(2)
                                .detector(100, 25, 2, 0.5)
                                .benign(1, "SumatraPDF", 0, 0, 400)
                                .benign(2, "VLC", 0, 0, 400)
                                .attack(9, "Wannacry", 0, 40, 360)
                                .kill_owner(9, 180)
                                .budget(250, 120, 1.0)
                                .build();
  RunOptions options;
  options.tiny = true;
  const RunResult result = run_scenario(scenario, options);

  EXPECT_EQ(result.summary.fleet.failovers, 1u);
  EXPECT_TRUE(result.gates.conservation);
  EXPECT_TRUE(result.gates.failover_resolved);

  // No pid lost across the rehash: every process keeps verdicting after
  // the kill round, and the attack is still detected.
  for (const ProcessOutcome& outcome : result.summary.processes) {
    EXPECT_GT(outcome.verdicts, 0u) << "pid " << outcome.pid;
    const auto last = std::find_if(
        result.verdicts.rbegin(), result.verdicts.rend(),
        [&outcome](const serve::Verdict& v) {
          return v.process == outcome.pid;
        });
    ASSERT_NE(last, result.verdicts.rend());
    EXPECT_GT(last->call_index, 180u) << "pid " << outcome.pid;
  }
  EXPECT_EQ(result.summary.detected, 1u);
  const ProcessOutcome& attack = result.summary.processes.back();
  EXPECT_TRUE(attack.attack);
  EXPECT_NE(attack.first_alert_call, kNever);
}

}  // namespace
}  // namespace csdml::scenario
