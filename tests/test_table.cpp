#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-name", "2"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Every printed row has the same length (padding applied).
  std::size_t first_len = out.find('\n');
  EXPECT_NE(first_len, std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(2.15133), "2.15133");
  EXPECT_EQ(TextTable::num(1.0, 2), "1.00");
  EXPECT_EQ(TextTable::num(991.5775, 5), "991.57750");
}

TEST(TextTable, ContainsSeparatorRule) {
  TextTable table({"head"});
  table.add_row({"v"});
  EXPECT_NE(table.to_string().find("----"), std::string::npos);
}

}  // namespace
}  // namespace csdml
