#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::sim {
namespace {

TEST(Trace, AggregatesByName) {
  Trace trace;
  trace.record("kernel_gates", TimePoint{0}, TimePoint{100});
  trace.record("kernel_gates", TimePoint{200}, TimePoint{350});
  trace.record("kernel_hidden_state", TimePoint{0}, TimePoint{40});

  EXPECT_EQ(trace.total("kernel_gates").picos, 250);
  EXPECT_EQ(trace.count("kernel_gates"), 2u);
  EXPECT_EQ(trace.max("kernel_gates").picos, 150);
  EXPECT_EQ(trace.total("kernel_hidden_state").picos, 40);
  EXPECT_EQ(trace.total("missing").picos, 0);
  EXPECT_EQ(trace.count("missing"), 0u);
  EXPECT_EQ(trace.max("missing").picos, 0);
}

TEST(Trace, NamesInFirstSeenOrder) {
  Trace trace;
  trace.record("b", TimePoint{0}, TimePoint{1});
  trace.record("a", TimePoint{0}, TimePoint{1});
  trace.record("b", TimePoint{2}, TimePoint{3});
  EXPECT_EQ(trace.names(), (std::vector<std::string>{"b", "a"}));
}

TEST(Trace, RejectsInvertedSpan) {
  Trace trace;
  EXPECT_THROW(trace.record("x", TimePoint{10}, TimePoint{5}), PreconditionError);
}

TEST(Trace, ClearEmptiesSpans) {
  Trace trace;
  trace.record("x", TimePoint{0}, TimePoint{1});
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
}

}  // namespace
}  // namespace csdml::sim
