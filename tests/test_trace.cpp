#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::sim {
namespace {

TEST(Trace, AggregatesByName) {
  Trace trace;
  trace.record("kernel_gates", TimePoint{0}, TimePoint{100});
  trace.record("kernel_gates", TimePoint{200}, TimePoint{350});
  trace.record("kernel_hidden_state", TimePoint{0}, TimePoint{40});

  EXPECT_EQ(trace.total("kernel_gates").picos, 250);
  EXPECT_EQ(trace.count("kernel_gates"), 2u);
  EXPECT_EQ(trace.max("kernel_gates").picos, 150);
  EXPECT_EQ(trace.total("kernel_hidden_state").picos, 40);
  EXPECT_EQ(trace.total("missing").picos, 0);
  EXPECT_EQ(trace.count("missing"), 0u);
  EXPECT_EQ(trace.max("missing").picos, 0);
}

TEST(Trace, NamesInFirstSeenOrder) {
  Trace trace;
  trace.record("b", TimePoint{0}, TimePoint{1});
  trace.record("a", TimePoint{0}, TimePoint{1});
  trace.record("b", TimePoint{2}, TimePoint{3});
  EXPECT_EQ(trace.names(), (std::vector<std::string>{"b", "a"}));
}

TEST(Trace, RejectsInvertedSpan) {
  Trace trace;
  EXPECT_THROW(trace.record("x", TimePoint{10}, TimePoint{5}), PreconditionError);
}

TEST(Trace, ClearEmptiesSpans) {
  Trace trace;
  trace.record("x", TimePoint{0}, TimePoint{1});
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, MergeAbsorbsSpans) {
  Trace detector;
  detector.record("classification", TimePoint{0}, TimePoint{10});
  Trace engine;
  engine.record("kernel_gates", TimePoint{2}, TimePoint{5});
  engine.record("kernel_hidden_state", TimePoint{5}, TimePoint{8});

  detector.merge(engine);
  EXPECT_EQ(detector.spans().size(), 3u);
  EXPECT_EQ(detector.count("kernel_gates"), 1u);
  EXPECT_EQ(detector.total("kernel_hidden_state").picos, 3);
  // The source is untouched.
  EXPECT_EQ(engine.spans().size(), 2u);
}

TEST(Trace, MergeWithPrefixNamespacesSpans) {
  Trace detector;
  Trace engine;
  engine.record("kernel_gates", TimePoint{0}, TimePoint{4});
  detector.merge(engine, "engine/");
  EXPECT_EQ(detector.count("kernel_gates"), 0u);
  EXPECT_EQ(detector.count("engine/kernel_gates"), 1u);
  EXPECT_EQ(detector.total("engine/kernel_gates").picos, 4);
}

TEST(Trace, SelfMergeDuplicates) {
  Trace trace;
  trace.record("x", TimePoint{0}, TimePoint{1});
  trace.record("y", TimePoint{1}, TimePoint{2});
  trace.merge(trace);
  EXPECT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.count("x"), 2u);
}

TEST(Trace, FilterPrefixSelectsMatchingSpans) {
  Trace trace;
  trace.record("kernel_gates", TimePoint{0}, TimePoint{1});
  trace.record("kernel_hidden_state", TimePoint{1}, TimePoint{2});
  trace.record("dma_read", TimePoint{2}, TimePoint{3});

  const Trace kernels = trace.filter_prefix("kernel_");
  EXPECT_EQ(kernels.spans().size(), 2u);
  EXPECT_EQ(kernels.count("dma_read"), 0u);
  EXPECT_TRUE(trace.filter_prefix("nope").spans().empty());
  // Empty prefix matches everything.
  EXPECT_EQ(trace.filter_prefix("").spans().size(), 3u);
}

}  // namespace
}  // namespace csdml::sim
