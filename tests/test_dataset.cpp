#include "nn/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

SequenceDataset make_dataset(std::size_t n, std::size_t len = 4) {
  SequenceDataset ds;
  for (std::size_t i = 0; i < n; ++i) {
    Sequence seq(len);
    for (std::size_t j = 0; j < len; ++j) {
      seq[j] = static_cast<TokenId>((i * 7 + j) % 11);
    }
    ds.sequences.push_back(std::move(seq));
    ds.labels.push_back(i % 2 == 0 ? 1 : 0);
  }
  return ds;
}

TEST(Dataset, CountsAndFractions) {
  const SequenceDataset ds = make_dataset(10);
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.positives(), 5u);
  EXPECT_DOUBLE_EQ(ds.positive_fraction(), 0.5);
  EXPECT_EQ(ds.vocabulary_size(), 11);
  EXPECT_THROW(SequenceDataset{}.positive_fraction(), PreconditionError);
  EXPECT_EQ(SequenceDataset{}.vocabulary_size(), 0);
}

TEST(Dataset, ShuffleKeepsAlignmentAndContent) {
  SequenceDataset ds = make_dataset(50);
  // Tag: label 1 datasets all start with even first token by construction.
  std::multiset<int> labels_before(ds.labels.begin(), ds.labels.end());
  const std::size_t n_before = ds.size();
  Rng rng(3);
  ds.shuffle(rng);
  EXPECT_EQ(ds.size(), n_before);
  std::multiset<int> labels_after(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels_before, labels_after);
  // Alignment check: regenerate the original and confirm each (seq,label)
  // pair still co-occurs.
  const SequenceDataset original = make_dataset(50);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < original.size(); ++j) {
      if (original.sequences[j] == ds.sequences[i] &&
          original.labels[j] == ds.labels[i]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "pair " << i << " lost alignment";
  }
}

TEST(Dataset, AppendConcatenates) {
  SequenceDataset a = make_dataset(3);
  const SequenceDataset b = make_dataset(2);
  a.append(b);
  EXPECT_EQ(a.size(), 5u);
}

TEST(Dataset, SplitFractionsAndDisjointness) {
  const SequenceDataset ds = make_dataset(100);
  Rng rng(5);
  const TrainTestSplit split = split_dataset(ds, 0.2, rng);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
}

TEST(Dataset, SplitIsDeterministicForSeed) {
  const SequenceDataset ds = make_dataset(40);
  Rng rng1(9);
  Rng rng2(9);
  const TrainTestSplit s1 = split_dataset(ds, 0.25, rng1);
  const TrainTestSplit s2 = split_dataset(ds, 0.25, rng2);
  EXPECT_EQ(s1.test.sequences, s2.test.sequences);
  EXPECT_EQ(s1.train.labels, s2.train.labels);
}

TEST(Dataset, SplitGuards) {
  const SequenceDataset ds = make_dataset(10);
  Rng rng(1);
  EXPECT_THROW(split_dataset(ds, 0.0, rng), PreconditionError);
  EXPECT_THROW(split_dataset(ds, 1.0, rng), PreconditionError);
  EXPECT_THROW(split_dataset(make_dataset(1), 0.5, rng), PreconditionError);
}

TEST(Dataset, SplitAlwaysLeavesBothSidesNonEmpty) {
  const SequenceDataset ds = make_dataset(3);
  Rng rng(2);
  const TrainTestSplit split = split_dataset(ds, 0.01, rng);
  EXPECT_GE(split.test.size(), 1u);
  EXPECT_GE(split.train.size(), 1u);
}

TEST(DatasetCsv, RoundTripsThePaperLayout) {
  const std::string path = ::testing::TempDir() + "/csdml_dataset.csv";
  const SequenceDataset ds = make_dataset(12, 5);
  write_dataset_csv(ds, path);
  const SequenceDataset loaded = read_dataset_csv(path);
  EXPECT_EQ(loaded.sequences, ds.sequences);
  EXPECT_EQ(loaded.labels, ds.labels);
  std::remove(path.c_str());
}

TEST(DatasetCsv, HeaderlessFilesLoadToo) {
  const std::string path = ::testing::TempDir() + "/csdml_headerless.csv";
  {
    std::ofstream out(path);
    out << "1,2,3,1\n4,5,6,0\n";
  }
  const SequenceDataset loaded = read_dataset_csv(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.sequences[0], (Sequence{1, 2, 3}));
  EXPECT_EQ(loaded.labels[1], 0);
  std::remove(path.c_str());
}

TEST(DatasetCsv, RejectsBadContent) {
  const std::string path = ::testing::TempDir() + "/csdml_bad.csv";
  {
    std::ofstream out(path);
    out << "1,notanumber,1\n";
  }
  EXPECT_THROW(read_dataset_csv(path), ParseError);
  {
    std::ofstream out(path);
    out << "1,2,7\n";  // label must be 0/1
  }
  EXPECT_THROW(read_dataset_csv(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(DatasetCsv, RefusesRaggedOrEmptyWrites) {
  SequenceDataset ragged;
  ragged.sequences = {{1, 2}, {3}};
  ragged.labels = {0, 1};
  EXPECT_THROW(write_dataset_csv(ragged, "/tmp/x.csv"), PreconditionError);
  EXPECT_THROW(write_dataset_csv(SequenceDataset{}, "/tmp/x.csv"),
               PreconditionError);
}

}  // namespace
}  // namespace csdml::nn
