#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "json_lint.hpp"

namespace csdml::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg;
  reg.add_counter("a");
  reg.add_counter("a", 4);
  reg.add_counter("b");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counters[1].second, 1u);
}

TEST(MetricsRegistry, GaugesOverwrite) {
  MetricsRegistry reg;
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", -2.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, -2.0);
}

TEST(MetricsRegistry, HistogramSummaryStats) {
  MetricsRegistry reg;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) reg.observe("h", v);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0];
  EXPECT_EQ(h.name, "h");
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 10.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_EQ(h.buckets.size(), h.bounds.size() + 1);
}

TEST(MetricsRegistry, PercentileEdges) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  MetricsRegistry reg;
  reg.observe("one", 7.0);
  const HistogramSnapshot one = reg.snapshot().histograms[0];
  // A single observation: every percentile collapses onto it.
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.0);
}

TEST(MetricsRegistry, PercentilesOrderAndClamp) {
  MetricsRegistry reg;
  // 100 observations spread over two decades of the default buckets.
  for (int i = 1; i <= 100; ++i) reg.observe("h", static_cast<double>(i));
  const HistogramSnapshot h = reg.snapshot().histograms[0];
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min);
  EXPECT_LE(p99, h.max);
  // Bucketed estimation: p50 of uniform 1..100 lands within its bucket
  // (33..64 under power-of-two bounds), nowhere near the extremes.
  EXPECT_GT(p50, 30.0);
  EXPECT_LT(p50, 70.0);
  EXPECT_GT(p99, 64.0);
}

TEST(MetricsRegistry, CustomBoundsBindOnFirstUse) {
  MetricsRegistry reg;
  const std::vector<double> bounds{0.5, 1.0};
  reg.observe("occ", 0.25, bounds);
  reg.observe("occ", 0.75, bounds);
  reg.observe("occ", 2.0, bounds);  // overflow bucket
  const HistogramSnapshot h = reg.snapshot().histograms[0];
  EXPECT_EQ(h.bounds, bounds);
  EXPECT_EQ(h.buckets, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(MetricsRegistry, MergeAggregatesAcrossRegistries) {
  // Fleet summary percentiles merge per-board histograms rather than
  // averaging per-board percentiles: the merged snapshot must be
  // indistinguishable from one registry that saw every observation.
  MetricsRegistry board0;
  MetricsRegistry board1;
  MetricsRegistry combined;
  for (int i = 1; i <= 60; ++i) {
    board0.observe("lat", static_cast<double>(i));
    combined.observe("lat", static_cast<double>(i));
  }
  for (int i = 400; i <= 440; ++i) {
    board1.observe("lat", static_cast<double>(i));
    combined.observe("lat", static_cast<double>(i));
  }

  HistogramSnapshot merged = board0.snapshot().histograms[0];
  merged.merge(board1.snapshot().histograms[0]);
  const HistogramSnapshot oracle = combined.snapshot().histograms[0];
  EXPECT_EQ(merged.count, oracle.count);
  EXPECT_DOUBLE_EQ(merged.sum, oracle.sum);
  EXPECT_DOUBLE_EQ(merged.min, oracle.min);
  EXPECT_DOUBLE_EQ(merged.max, oracle.max);
  EXPECT_EQ(merged.buckets, oracle.buckets);
  for (const double p : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), oracle.percentile(p));
  }
  // The slow board dominates the merged tail even though the fast board
  // contributed more observations.
  EXPECT_GT(merged.percentile(0.99), 300.0);
}

TEST(MetricsRegistry, MergeEdgeCases) {
  MetricsRegistry reg;
  reg.observe("lat", 5.0);
  const HistogramSnapshot populated = reg.snapshot().histograms[0];

  // Merging into a default-constructed snapshot adopts it wholesale...
  HistogramSnapshot empty;
  empty.merge(populated);
  EXPECT_EQ(empty.count, 1u);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 5.0);

  // ...merging an empty one in is a no-op...
  HistogramSnapshot copy = populated;
  copy.merge(HistogramSnapshot{});
  EXPECT_EQ(copy.count, 1u);
  EXPECT_DOUBLE_EQ(copy.sum, populated.sum);

  // ...and mismatched bucket layouts are a hard error, not silent junk.
  MetricsRegistry other;
  other.observe("occ", 0.75, {0.5, 1.0});
  HistogramSnapshot custom = other.snapshot().histograms[0];
  EXPECT_THROW(custom.merge(populated), PreconditionError);
}

TEST(MetricsRegistry, RejectsBadBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.observe("h", 1.0, {}), PreconditionError);
  EXPECT_THROW(reg.observe("h2", 1.0, {2.0, 1.0}), PreconditionError);
}

TEST(MetricsRegistry, ConcurrentIncrementsDontLoseUpdates) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add_counter("c");
        reg.observe("h", 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].second,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MetricsRegistry, ResetEmpties) {
  MetricsRegistry reg;
  reg.add_counter("c");
  reg.set_gauge("g", 1.0);
  reg.observe("h", 1.0);
  EXPECT_FALSE(reg.snapshot().empty());
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(MetricsRegistry, TextRenderingHasPercentileColumns) {
  MetricsRegistry reg;
  reg.add_counter("detector.alerts", 3);
  reg.observe("engine.kernel.gates_us", 2.15);
  const std::string text = reg.snapshot().to_text();
  EXPECT_NE(text.find("detector.alerts"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("engine.kernel.gates_us"), std::string::npos);
}

TEST(MetricsRegistry, JsonRenderingIsValid) {
  MetricsRegistry reg;
  const std::string empty = reg.snapshot().to_json();
  EXPECT_TRUE(testing::JsonLint::valid(empty)) << empty;

  reg.add_counter(R"(weird"name\with escapes)");
  reg.set_gauge("g", -0.125);
  reg.observe("h", 3.5);
  const std::string json = reg.snapshot().to_json();
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, GlobalRegistryIsSingleton) {
  EXPECT_EQ(&registry(), &registry());
}

}  // namespace
}  // namespace csdml::obs
