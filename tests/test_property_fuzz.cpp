// Property-based fuzzing of the two data structures whose correctness the
// serving path leans on hardest:
//
//   * TokenRing — the zero-copy sliding window — against a naive
//     std::deque model, over randomized push/clear streams and capacities;
//   * InvariantScale::mul — the reciprocal-estimate fast path — against
//     ScaledFixed::mul_raw, the exact 128-bit oracle, over adversarial
//     ±2^k±1 operands that straddle the double-exact window.
//
// Both run ≥10k seeded iterations (scalable via CSDML_FUZZ_ITERS).
#include "detect/token_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "fixed/scaled_fixed.hpp"
#include "fuzz_harness.hpp"

namespace csdml {
namespace {

TEST(TokenRingProperty, MatchesDequeModelOverRandomOperations) {
  Rng rng(0xA11CE);
  const std::size_t iterations = testing::fuzz_iterations(10'000);
  std::size_t operations = 0;
  while (operations < iterations) {
    const auto capacity = static_cast<std::size_t>(rng.uniform_int(1, 9));
    detect::TokenRing ring(capacity);
    std::deque<nn::TokenId> model;
    const auto episode = static_cast<std::size_t>(rng.uniform_int(1, 64));
    for (std::size_t op = 0; op < episode; ++op, ++operations) {
      if (rng.chance(0.05)) {
        ring.clear();
        model.clear();
      } else {
        const auto token = static_cast<nn::TokenId>(rng.uniform_int(0, 1'000));
        ring.push(token);
        model.push_back(token);
        if (model.size() > capacity) model.pop_front();
      }
      ASSERT_EQ(ring.size(), model.size());
      ASSERT_EQ(ring.full(), model.size() == capacity);
      ASSERT_EQ(ring.empty(), model.empty());
      const nn::TokenSpan view = ring.view();
      ASSERT_EQ(view.size(), model.size());
      const std::vector<nn::TokenId> window(view.begin(), view.end());
      ASSERT_TRUE(std::equal(window.begin(), window.end(), model.begin()))
          << "capacity " << capacity << " after op " << op;
    }
  }
}

std::vector<std::int64_t> adversarial_operands() {
  // ±2^k, ±(2^k ± 1): the values where a reciprocal estimate is most
  // likely to land on the wrong side of a rounding boundary, spanning both
  // sides of InvariantScale's 2^52 exact window (products up to ~2^62).
  std::vector<std::int64_t> values{0, 1, -1, 2, -2};
  for (int k = 2; k <= 31; ++k) {
    const std::int64_t p = std::int64_t{1} << k;
    for (const std::int64_t v : {p - 1, p, p + 1}) {
      values.push_back(v);
      values.push_back(-v);
    }
  }
  return values;
}

TEST(InvariantScaleProperty, MulMatchesExactOracleOnAdversarialOperands) {
  const std::vector<std::int64_t> operands = adversarial_operands();
  for (const std::int64_t scale :
       {std::int64_t{1}, std::int64_t{3}, std::int64_t{1000},
        fixedpt::kPaperScale, std::int64_t{1} << 20}) {
    const fixedpt::InvariantScale inv(scale);
    for (const std::int64_t a : operands) {
      for (const std::int64_t b : operands) {
        ASSERT_EQ(inv.mul(a, b), fixedpt::ScaledFixed::mul_raw(a, b, scale))
            << "a=" << a << " b=" << b << " scale=" << scale;
      }
    }
  }
}

TEST(InvariantScaleProperty, MulMatchesExactOracleOnRandomOperands) {
  Rng rng(0xF1D0);
  const fixedpt::InvariantScale inv(fixedpt::kPaperScale);
  const std::size_t iterations = testing::fuzz_iterations(10'000);
  for (std::size_t i = 0; i < iterations; ++i) {
    // LSTM-magnitude raw values (|x| ≲ 10^3 at scale 10^6 → raw ≲ 10^9),
    // stretched another order of magnitude to cross the exact window.
    const std::int64_t a = rng.uniform_int(-10'000'000'000, 10'000'000'000);
    const std::int64_t b = rng.uniform_int(-10'000'000'000, 10'000'000'000);
    ASSERT_EQ(inv.mul(a, b),
              fixedpt::ScaledFixed::mul_raw(a, b, fixedpt::kPaperScale))
        << "a=" << a << " b=" << b;
  }
}

}  // namespace
}  // namespace csdml
