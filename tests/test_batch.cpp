// Batch-mode tests: the engine's streamed batch classification and the
// baselines' batch-throughput model.
#include <gtest/gtest.h>

#include "baselines/host_baseline.hpp"
#include "kernels/engine.hpp"

namespace csdml {
namespace {

struct BatchFixture {
  nn::LstmConfig config;
  nn::LstmParams params;
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};

  BatchFixture() {
    Rng rng(81);
    params = nn::LstmParams::glorot(config, rng);
  }

  std::vector<nn::Sequence> batch(std::size_t n, int length = 100) const {
    Rng rng(3);
    std::vector<nn::Sequence> out;
    for (std::size_t i = 0; i < n; ++i) {
      nn::Sequence seq;
      for (int j = 0; j < length; ++j) {
        seq.push_back(static_cast<nn::TokenId>(
            rng.uniform_int(0, config.vocab_size - 1)));
      }
      out.push_back(std::move(seq));
    }
    return out;
  }
};

TEST(Batch, ResultsMatchSequentialInference) {
  BatchFixture f;
  kernels::CsdLstmEngine engine(f.device, f.config, f.params,
                                kernels::EngineConfig{});
  const auto sequences = f.batch(10);
  const auto batch = engine.infer_batch(sequences);
  ASSERT_EQ(batch.probabilities.size(), 10u);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch.probabilities[i],
                     engine.infer(sequences[i]).probability);
  }
}

TEST(Batch, PaysPreprocessOnlyOnce) {
  BatchFixture f;
  kernels::CsdLstmEngine engine(f.device, f.config, f.params,
                                kernels::EngineConfig{});
  const auto timings = engine.per_item_timings();
  const auto one = engine.infer_batch(f.batch(1));
  const auto ten = engine.infer_batch(f.batch(10));
  const Duration steady = timings.gates + timings.hidden_state;
  EXPECT_NEAR((ten.device_time - one.device_time).as_microseconds(),
              steady.as_microseconds() * 900, 1e-6);
}

TEST(Batch, ThroughputIsConsistentWithDeviceTime) {
  BatchFixture f;
  kernels::CsdLstmEngine engine(f.device, f.config, f.params,
                                kernels::EngineConfig{});
  const auto result = engine.infer_batch(f.batch(20));
  const double seconds = static_cast<double>(result.device_time.picos) * 1e-12;
  EXPECT_NEAR(result.windows_per_second, 20.0 / seconds, 1e-6);
  // The fixed-point engine classifies thousands of windows per second.
  EXPECT_GT(result.windows_per_second, 1'000.0);
}

TEST(Batch, EmptyBatchThrows) {
  BatchFixture f;
  kernels::CsdLstmEngine engine(f.device, f.config, f.params,
                                kernels::EngineConfig{});
  EXPECT_THROW(engine.infer_batch({}), PreconditionError);
  EXPECT_THROW(engine.infer_batch({nn::Sequence{}}), PreconditionError);
}

TEST(Batch, HostBatchLatencyAmortizesLaunches) {
  BatchFixture f;
  const baselines::HostBaseline gpu("gpu", f.config, f.params,
                                    baselines::HostLatencyConfig::a100_gpu());
  const Duration b1 = gpu.batch_window_latency(1, 100);
  const Duration b256 = gpu.batch_window_latency(256, 100);
  // 256x the work costs far less than 256x the time...
  EXPECT_LT(b256.picos, b1.picos * 8);
  // ...so per-window latency (throughput inverse) improves with batch.
  EXPECT_LT(static_cast<double>(b256.picos) / 256.0,
            static_cast<double>(b1.picos));
  EXPECT_THROW(gpu.batch_window_latency(0, 100), PreconditionError);
}

TEST(Batch, GpuWinsRawThroughputFpgaWinsLatency) {
  // The honest systems trade-off behind Table I: the paper's claim is
  // about per-decision latency (real-time detection), not bulk throughput.
  BatchFixture f;
  kernels::CsdLstmEngine engine(f.device, f.config, f.params,
                                kernels::EngineConfig{});
  const baselines::HostBaseline gpu("gpu", f.config, f.params,
                                    baselines::HostLatencyConfig::a100_gpu());

  // Latency for ONE decision.
  const double fpga_window_us =
      engine.infer(f.batch(1).front()).device_time.as_microseconds();
  const double gpu_window_us =
      gpu.batch_window_latency(1, 100).as_microseconds();
  EXPECT_LT(fpga_window_us * 50, gpu_window_us);

  // Bulk throughput at large batch.
  const double gpu_batch_us = gpu.batch_window_latency(4096, 100).as_microseconds();
  const double gpu_windows_per_s = 4096.0 / (gpu_batch_us * 1e-6);
  const double fpga_windows_per_s =
      engine.infer_batch(f.batch(32)).windows_per_second;
  EXPECT_GT(gpu_windows_per_s, fpga_windows_per_s);
}

}  // namespace
}  // namespace csdml
