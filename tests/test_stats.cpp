#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace csdml {
namespace {

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingleGuards) {
  RunningStats stats;
  EXPECT_THROW(stats.mean(), PreconditionError);
  EXPECT_THROW(stats.min(), PreconditionError);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_THROW(stats.variance(), PreconditionError);
}

TEST(StudentT, ExactTableValues) {
  EXPECT_DOUBLE_EQ(student_t_critical(0.95, 1), 12.706);
  EXPECT_DOUBLE_EQ(student_t_critical(0.95, 9), 2.262);
  EXPECT_DOUBLE_EQ(student_t_critical(0.99, 5), 4.032);
  EXPECT_DOUBLE_EQ(student_t_critical(0.90, 30), 1.697);
}

TEST(StudentT, InterpolatedAndLimitValues) {
  const double t35 = student_t_critical(0.95, 35);
  EXPECT_GT(t35, student_t_critical(0.95, 40));
  EXPECT_LT(t35, student_t_critical(0.95, 30));
  // Very large df approaches the normal critical value.
  EXPECT_NEAR(student_t_critical(0.95, 100'000), 1.962, 0.01);
}

TEST(StudentT, RejectsUnsupportedConfidence) {
  EXPECT_THROW(student_t_critical(0.80, 10), PreconditionError);
  EXPECT_THROW(student_t_critical(0.95, 0), PreconditionError);
}

TEST(ConfidenceInterval, KnownSample) {
  // mean 10, sd 2, n 4 -> sem 1, t(0.95, 3) = 3.182.
  const std::vector<double> samples{8.0, 10.0, 10.0, 12.0};
  const ConfidenceInterval ci = confidence_interval(samples);
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  const double sem = std::sqrt(8.0 / 3.0) / 2.0;
  EXPECT_NEAR(ci.lower, 10.0 - 3.182 * sem, 1e-9);
  EXPECT_NEAR(ci.upper, 10.0 + 3.182 * sem, 1e-9);
  EXPECT_NEAR(ci.half_width(), 3.182 * sem, 1e-9);
}

TEST(ConfidenceInterval, IsSymmetricAroundMean) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const ConfidenceInterval ci = confidence_interval(samples, 0.99);
  EXPECT_NEAR(ci.mean - ci.lower, ci.upper - ci.mean, 1e-12);
}

TEST(ConfidenceInterval, NeedsTwoSamples) {
  EXPECT_THROW(confidence_interval({1.0}), PreconditionError);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  const std::vector<double> samples{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.37), 5.0);
}

TEST(Percentile, Guards) {
  EXPECT_THROW(percentile({}, 0.5), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 1.5), PreconditionError);
}

/// Property sweep: CI shrinks as confidence drops and as n grows.
class CiWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CiWidthTest, WidthShrinksWithSampleSize) {
  const std::size_t n = GetParam();
  std::vector<double> small_sample;
  std::vector<double> large_sample;
  for (std::size_t i = 0; i < n; ++i) {
    small_sample.push_back(static_cast<double>(i % 7));
  }
  for (std::size_t i = 0; i < n * 4; ++i) {
    large_sample.push_back(static_cast<double>(i % 7));
  }
  EXPECT_GT(confidence_interval(small_sample).half_width(),
            confidence_interval(large_sample).half_width());
  EXPECT_GT(confidence_interval(small_sample, 0.99).half_width(),
            confidence_interval(small_sample, 0.90).half_width());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CiWidthTest, ::testing::Values(8, 16, 32, 64));

}  // namespace
}  // namespace csdml
