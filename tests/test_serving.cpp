// Serving-pipeline unit tests: the SPSC ring, async-vs-sync verdict
// parity, backpressure shedding, hot-swap batch boundaries, and the
// deferred-classification bookkeeping on forget().
#include "serve/serving.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spsc_ring.hpp"
#include "detect/detector.hpp"
#include "detect/token_ring.hpp"
#include "faults/fault_plan.hpp"
#include "kernels/engine.hpp"
#include "obs/metrics.hpp"

namespace csdml::serve {
namespace {

nn::LstmConfig tiny_model() {
  return nn::LstmConfig{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
}

std::vector<nn::TokenId> random_stream(std::uint64_t seed, std::size_t calls,
                                       std::int32_t vocab) {
  Rng rng(seed);
  std::vector<nn::TokenId> stream;
  stream.reserve(calls);
  for (std::size_t i = 0; i < calls; ++i) {
    stream.push_back(static_cast<nn::TokenId>(rng.uniform_int(0, vocab - 1)));
  }
  return stream;
}

struct LoggedVerdict {
  std::uint64_t call_index{0};
  double probability{0.0};
  bool alert{false};
};
using VerdictLog = std::map<detect::ProcessId, std::vector<LoggedVerdict>>;

/// The synchronous oracle: detector window/hop/debounce semantics replayed
/// inline against engine.infer, every classification captured.
VerdictLog sync_replay(kernels::CsdLstmEngine& engine,
                       const detect::DetectorConfig& config,
                       const std::map<detect::ProcessId,
                                      std::vector<nn::TokenId>>& streams) {
  VerdictLog log;
  for (const auto& [pid, stream] : streams) {
    detect::TokenRing window(config.window_length);
    std::uint64_t calls_seen = 0;
    std::uint64_t since_eval = 0;
    std::size_t streak = 0;
    for (const nn::TokenId token : stream) {
      window.push(token);
      ++calls_seen;
      ++since_eval;
      if (!window.full()) continue;
      const bool first_full = calls_seen == config.window_length;
      if (!first_full && since_eval < config.hop) continue;
      since_eval = 0;
      const kernels::InferenceResult result = engine.infer(window.view());
      if (result.probability >= config.threshold) {
        ++streak;
      } else {
        streak = 0;
      }
      log[pid].push_back({calls_seen, result.probability,
                          streak >= config.consecutive_alerts});
    }
  }
  return log;
}

TEST(SpscRing, FifoAcrossWraparound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  // Several laps so head/tail wrap the mask repeatedly.
  int next_push = 0;
  int next_pop = 0;
  for (int lap = 0; lap < 5; ++lap) {
    while (ring.try_push(int{next_push})) ++next_push;
    EXPECT_EQ(ring.size(), ring.capacity());
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
    EXPECT_TRUE(ring.empty());
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_EQ(next_push, 5 * static_cast<int>(ring.capacity()));
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
}

TEST(SpscRing, RejectsWhenFullWithoutLosingItems) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
}

TEST(Serving, MatchesSynchronousReplayBitExactly) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(11);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const detect::DetectorConfig detector{.window_length = 8, .hop = 3,
                                        .consecutive_alerts = 2};
  std::map<detect::ProcessId, std::vector<nn::TokenId>> streams;
  for (detect::ProcessId pid = 1; pid <= 4; ++pid) {
    streams[pid] = random_stream(100 + pid, 60, model.vocab_size);
  }

  VerdictLog oracle;
  {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(device, model, params, {});
    oracle = sync_replay(engine, detector, streams);
  }
  ASSERT_FALSE(oracle.empty());

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params, {});
  ServeConfig config;
  config.shards = 2;
  config.detector = detector;
  std::mutex log_mutex;
  VerdictLog observed;
  ServingPipeline pipeline(engine, config, [&](const Verdict& verdict) {
    std::lock_guard<std::mutex> lock(log_mutex);
    observed[verdict.process].push_back(
        {verdict.call_index, verdict.probability, verdict.alert});
  });
  // Two ingestion threads, two processes each; per-process call order is
  // preserved because one thread owns each process.
  std::thread first([&] {
    for (std::size_t i = 0; i < 60; ++i) {
      pipeline.ingest(1, streams[1][i]);
      pipeline.ingest(2, streams[2][i]);
    }
  });
  std::thread second([&] {
    for (std::size_t i = 0; i < 60; ++i) {
      pipeline.ingest(3, streams[3][i]);
      pipeline.ingest(4, streams[4][i]);
    }
  });
  first.join();
  second.join();
  pipeline.flush();
  pipeline.stop();

  const ServingPipeline::Stats stats = pipeline.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deferred, 0u);
  EXPECT_EQ(stats.verdicts, stats.enqueued);

  ASSERT_EQ(observed.size(), oracle.size());
  for (const auto& [pid, expected] : oracle) {
    ASSERT_TRUE(observed.contains(pid)) << "pid " << pid;
    const auto& actual = observed[pid];
    ASSERT_EQ(actual.size(), expected.size()) << "pid " << pid;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].call_index, expected[i].call_index);
      // Bit-identical: the async batch path runs the same datapath.
      EXPECT_EQ(actual[i].probability, expected[i].probability);
      EXPECT_EQ(actual[i].alert, expected[i].alert);
    }
  }
}

TEST(Serving, DebouncesAlertsLikeTheDetector) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(5);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params, {});

  ServeConfig config;
  // threshold 0 → every verdict is over threshold, so alerting reduces to
  // pure debounce arithmetic: the first consecutive_alerts-1 verdicts are
  // suppressed, everything after fires.
  config.detector = detect::DetectorConfig{.window_length = 4, .hop = 1,
                                           .threshold = 0.0,
                                           .consecutive_alerts = 3};
  std::vector<LoggedVerdict> verdicts;
  ServingPipeline pipeline(engine, config, [&](const Verdict& verdict) {
    verdicts.push_back({verdict.call_index, verdict.probability,
                        verdict.alert});
  });
  const std::vector<nn::TokenId> stream =
      random_stream(3, 10, model.vocab_size);
  for (const nn::TokenId token : stream) pipeline.ingest(9, token);
  pipeline.flush();
  pipeline.stop();

  ASSERT_EQ(verdicts.size(), 7u);  // calls 4..10, hop 1
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    EXPECT_EQ(verdicts[i].call_index, i + 4);
    EXPECT_EQ(verdicts[i].alert, i >= 2) << "verdict " << i;
  }
  EXPECT_EQ(pipeline.stats().alerts, 5u);
}

TEST(Serving, ShedsToDeferralUnderBackpressureWithoutLoss) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params, {});

  ServeConfig config;
  config.shards = 1;
  config.ring_capacity = 4;
  config.coalesce_max = 4;
  config.detector = detect::DetectorConfig{.window_length = 4, .hop = 1};

  // The sink blocks every delivery until released, so the coalescer wedges
  // on its first batch, the ring fills, and further due windows must shed.
  std::mutex sink_mutex;
  std::condition_variable sink_cv;
  bool released = false;
  std::size_t delivered = 0;
  ServingPipeline pipeline(engine, config, [&](const Verdict&) {
    std::unique_lock<std::mutex> lock(sink_mutex);
    sink_cv.wait(lock, [&] { return released; });
    ++delivered;
  });

  const std::vector<nn::TokenId> stream =
      random_stream(13, 100, model.vocab_size);
  for (const nn::TokenId token : stream) pipeline.ingest(5, token);

  {
    std::lock_guard<std::mutex> lock(sink_mutex);
    released = true;
  }
  sink_cv.notify_all();
  pipeline.flush();
  pipeline.stop();

  const ServingPipeline::Stats stats = pipeline.stats();
  // 97 due windows cannot fit a 4-deep ring while the sink is wedged.
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.deferred, 0u);
  // The conservation law: everything enqueued produced a verdict.
  EXPECT_EQ(stats.verdicts, stats.enqueued);
  EXPECT_EQ(stats.enqueued + stats.shed, 97u);
  EXPECT_EQ(delivered, stats.verdicts);
}

TEST(Serving, DestructorFlushesFullRingAndInFlightBatch) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(77);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params, {});

  ServeConfig config;
  config.shards = 1;
  config.ring_capacity = 4;
  config.coalesce_max = 2;
  config.detector = detect::DetectorConfig{.window_length = 4, .hop = 1};

  // Wedge the coalescer mid-batch: the sink blocks every delivery until
  // released, so by the time we tear the pipeline down there is an
  // in-flight batch at the sink AND a full ring of undelivered requests
  // behind it. The destructor's stop() must flush all of them.
  std::mutex sink_mutex;
  std::condition_variable sink_cv;
  bool in_flight = false;
  bool released = false;
  std::size_t delivered = 0;
  auto pipeline = std::make_unique<ServingPipeline>(
      engine, config, [&](const Verdict&) {
        std::unique_lock<std::mutex> lock(sink_mutex);
        in_flight = true;
        sink_cv.notify_all();
        sink_cv.wait(lock, [&] { return released; });
        ++delivered;
      });

  const std::vector<nn::TokenId> stream =
      random_stream(23, 64, model.vocab_size);
  for (const nn::TokenId token : stream) pipeline->ingest(9, token);
  {
    std::unique_lock<std::mutex> lock(sink_mutex);
    sink_cv.wait(lock, [&] { return in_flight; });
  }

  // Ingestion is done, so `enqueued` is final; the sink is wedged, so the
  // ring behind the in-flight batch is still full (the shed counter proves
  // it overflowed).
  const ServingPipeline::Stats pre = pipeline->stats();
  EXPECT_GT(pre.shed, 0u);
  EXPECT_GT(pre.enqueued, pre.verdicts);

  // Begin destruction while the batch is still stuck at the sink, then
  // release. stop() must drain the ring and deliver every enqueued
  // request rather than dropping the backlog.
  std::thread destroyer([&] { pipeline.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> lock(sink_mutex);
    released = true;
  }
  sink_cv.notify_all();
  destroyer.join();

  EXPECT_EQ(delivered, pre.enqueued);
}

TEST(Serving, HotSwapAppliesAtBatchBoundary) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(17);
  const nn::LstmParams params_a = nn::LstmParams::glorot(model, rng);
  const nn::LstmParams params_b = nn::LstmParams::glorot(model, rng);
  const kernels::FixedDatapath oracle_a(model, params_a);
  const kernels::FixedDatapath oracle_b(model, params_b);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params_a, {});

  ServeConfig config;
  config.detector = detect::DetectorConfig{.window_length = 4, .hop = 4};
  std::vector<double> probabilities;
  ServingPipeline pipeline(engine, config, [&](const Verdict& verdict) {
    probabilities.push_back(verdict.probability);
  });

  const std::vector<nn::TokenId> stream =
      random_stream(23, 12, model.vocab_size);
  for (std::size_t i = 0; i < 8; ++i) pipeline.ingest(2, stream[i]);
  pipeline.flush();  // windows [0,4) and [4,8) classified under params_a
  engine.update_weights(params_b);
  for (std::size_t i = 8; i < 12; ++i) pipeline.ingest(2, stream[i]);
  pipeline.flush();  // window [8,12) classified under params_b
  pipeline.stop();

  ASSERT_EQ(probabilities.size(), 3u);
  const nn::Sequence w1(stream.begin(), stream.begin() + 4);
  const nn::Sequence w2(stream.begin() + 4, stream.begin() + 8);
  const nn::Sequence w3(stream.begin() + 8, stream.end());
  EXPECT_EQ(probabilities[0], oracle_a.infer(w1));
  EXPECT_EQ(probabilities[1], oracle_a.infer(w2));
  EXPECT_EQ(probabilities[2], oracle_b.infer(w3));
}

TEST(Serving, ForgetIsANoOpForUnknownProcesses) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(29);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params, {});
  ServeConfig config;
  config.detector = detect::DetectorConfig{.window_length = 4, .hop = 1};
  ServingPipeline pipeline(engine, config, [](const Verdict&) {});
  const std::uint64_t unknown_before =
      obs::registry().counter_value("serve.forget_unknown");
  pipeline.forget(404);
  EXPECT_EQ(obs::registry().counter_value("serve.forget_unknown"),
            unknown_before + 1);
  pipeline.stop();
}

TEST(Detector, ForgetCountsPendingDeferral) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(41);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);

  // Every launch fails, no fallback: the due classification defers, and
  // the process then dies with the deferral still owed.
  faults::FaultConfig fault_config;
  fault_config.seed = 1;
  fault_config.xrt_launch_failure_probability = 1.0;
  faults::FaultPlan plan(fault_config);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  board.set_fault_plan(&plan);
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model, params, {});
  detect::StreamingDetector detector(
      engine, detect::DetectorConfig{.window_length = 4, .hop = 4});

  const std::vector<nn::TokenId> stream =
      random_stream(43, 4, model.vocab_size);
  for (const nn::TokenId token : stream) {
    EXPECT_FALSE(detector.on_api_call(6, token).has_value());
  }
  EXPECT_EQ(detector.degraded_classifications(), 1u);

  const std::uint64_t pending_before =
      obs::registry().counter_value("detector.forget_pending");
  detector.forget(6);
  EXPECT_EQ(obs::registry().counter_value("detector.forget_pending"),
            pending_before + 1);

  // A process whose classification ran (healthy engine) must not count.
  csd::SmartSsd clean_board{csd::SmartSsdConfig{}};
  xrt::Device clean_device{clean_board};
  kernels::CsdLstmEngine clean_engine(clean_device, model, params, {});
  detect::StreamingDetector clean_detector(
      clean_engine, detect::DetectorConfig{.window_length = 4, .hop = 4});
  for (const nn::TokenId token : stream) clean_detector.on_api_call(8, token);
  EXPECT_EQ(clean_detector.classifications_run(), 1u);
  const std::uint64_t pending_mid =
      obs::registry().counter_value("detector.forget_pending");
  clean_detector.forget(8);
  EXPECT_EQ(obs::registry().counter_value("detector.forget_pending"),
            pending_mid);
}

}  // namespace
}  // namespace csdml::serve
