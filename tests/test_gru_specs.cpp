#include "kernels/gru_specs.hpp"

#include <gtest/gtest.h>

namespace csdml::kernels {
namespace {

const hls::HlsCostModel& model() {
  static const hls::HlsCostModel m = hls::HlsCostModel::ultrascale_default();
  return m;
}

TEST(GruSpecs, PreprocessFansOutToThreeUnits) {
  const nn::GruConfig config;
  const auto spec =
      make_gru_preprocess_spec(config, OptimizationLevel::Vanilla);
  // item fetch + 3 x_t copies.
  EXPECT_EQ(spec.transfers.size(), 4u);
  EXPECT_EQ(spec.name, "gru_preprocess");
}

TEST(GruSpecs, CandidateUnitCarriesTheResetStage) {
  const nn::GruConfig config;
  const auto plain = make_gru_gate_spec(config, OptimizationLevel::II, false);
  const auto candidate = make_gru_gate_spec(config, OptimizationLevel::II, true);
  EXPECT_EQ(candidate.loops.size(), plain.loops.size() + 1);
  EXPECT_EQ(candidate.loops.front().name, "reset_apply");
  EXPECT_GE(model().analyze(candidate).total.count,
            model().analyze(plain).total.count);
}

TEST(GruSpecs, StateKernelHasNoDivider) {
  const nn::GruConfig config;
  const auto state =
      make_gru_state_spec(config, OptimizationLevel::FixedPoint);
  for (const auto& loop : state.loops) {
    for (const auto& op : loop.body_ops) {
      EXPECT_NE(op.kind, hls::OpKind::IntDiv);
      EXPECT_NE(op.kind, hls::OpKind::FloatDiv);
    }
  }
}

class GruLevelTest : public ::testing::TestWithParam<OptimizationLevel> {};

TEST_P(GruLevelTest, GruStateIsCheaperThanLstmHiddenState) {
  const nn::GruConfig gru_config;
  const nn::LstmConfig lstm_config;
  const auto gru = model().analyze(make_gru_state_spec(gru_config, GetParam()));
  const auto lstm = model().analyze(
      make_hidden_state_spec(lstm_config, GetParam(), 4));
  EXPECT_LT(gru.total.count, lstm.total.count);
}

TEST_P(GruLevelTest, WholeGruDesignUsesFewerResourcesThanLstm) {
  const nn::GruConfig gru_config;
  const nn::LstmConfig lstm_config;
  const GruCsdEstimate gru = estimate_gru_csd(model(), gru_config, GetParam());

  hls::ResourceEstimate lstm;
  lstm += hls::estimate_resources(
      make_preprocess_spec(lstm_config, GetParam(), 4));
  lstm += hls::estimate_resources(make_gates_spec(lstm_config, GetParam())) * 4;
  lstm += hls::estimate_resources(
      make_hidden_state_spec(lstm_config, GetParam(), 4));

  EXPECT_LT(gru.resources.dsp, lstm.dsp);
  EXPECT_LT(gru.resources.luts, lstm.luts);
  EXPECT_TRUE(gru.resources.fits(hls::FpgaPart::ku15p()));
}

TEST_P(GruLevelTest, TimingsArePositiveAndOrdered) {
  const nn::GruConfig config;
  const GruCsdEstimate estimate = estimate_gru_csd(model(), config, GetParam());
  EXPECT_GT(estimate.preprocess.picos, 0);
  EXPECT_GT(estimate.gates.picos, 0);
  EXPECT_GT(estimate.state.picos, 0);
  EXPECT_EQ(estimate.total().picos,
            (estimate.preprocess + estimate.gates + estimate.state).picos);
}

INSTANTIATE_TEST_SUITE_P(Levels, GruLevelTest,
                         ::testing::Values(OptimizationLevel::Vanilla,
                                           OptimizationLevel::II,
                                           OptimizationLevel::FixedPoint),
                         [](const auto& info) {
                           std::string name = optimization_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(GruSpecs, FixedPointGatesReachAmortizedOneCycleLikeLstm) {
  const nn::GruConfig config;
  const GruCsdEstimate estimate =
      estimate_gru_csd(model(), config, OptimizationLevel::FixedPoint);
  // The slowest CU (candidate with its reset stage) still sustains II=1.
  EXPECT_NEAR(estimate.gates.as_microseconds(), 0.00333, 5e-4);
}

TEST(GruSpecs, StreamLinkDropsStateTransfers) {
  const nn::GruConfig config;
  const auto stream = make_gru_state_spec(config, OptimizationLevel::FixedPoint,
                                          KernelLink::Stream);
  ASSERT_EQ(stream.transfers.size(), 1u);
  EXPECT_EQ(stream.transfers.front().name, "prediction_out");
}

}  // namespace
}  // namespace csdml::kernels
