// Assertions on the Fig. 3 shape: what each optimization does to each
// kernel under the HLS cost model (see DESIGN.md section 4).
#include "kernels/specs.hpp"

#include <gtest/gtest.h>

#include "hls/cost_model.hpp"
#include "hls/resources.hpp"

namespace csdml::kernels {
namespace {

struct KernelMicros {
  double preprocess;
  double gates;
  double hidden;
  double total() const { return preprocess + gates + hidden; }
};

KernelMicros measure(OptimizationLevel level) {
  const nn::LstmConfig config;  // the paper's model
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const Frequency clock = model.clock();

  KernelMicros m{};
  m.preprocess = clock.duration_of(
      model.analyze(make_preprocess_spec(config, level, 4)).total)
          .as_microseconds();
  const hls::KernelReport gates = model.analyze(make_gates_spec(config, level));
  if (gates_reports_amortized_ii(level)) {
    m.gates = clock.duration_of(Cycles{gates.loops.front().achieved_ii})
                  .as_microseconds();
  } else {
    m.gates = clock.duration_of(gates.total).as_microseconds();
  }
  m.hidden = clock.duration_of(
      model.analyze(make_hidden_state_spec(config, level, 4)).total)
          .as_microseconds();
  return m;
}

TEST(Fig3, VanillaTotalMatchesPaper) {
  // Paper: ~7.153 us total for the vanilla implementation.
  EXPECT_NEAR(measure(OptimizationLevel::Vanilla).total(), 7.153, 0.72);
}

TEST(Fig3, FixedPointTotalMatchesPaper) {
  // Paper: 2.15133 us with all optimizations.
  EXPECT_NEAR(measure(OptimizationLevel::FixedPoint).total(), 2.15133, 0.22);
}

TEST(Fig3, FixedPointGatesIsOneCycle) {
  // Paper's fixed-point gates bar: 0.00333 us = exactly one 300 MHz cycle.
  EXPECT_NEAR(measure(OptimizationLevel::FixedPoint).gates, 0.00333, 2e-4);
}

TEST(Fig3, PreprocessRemainsFairlyFixed) {
  // "the execution time of kernel_preprocess remained fairly fixed"
  const double v = measure(OptimizationLevel::Vanilla).preprocess;
  const double ii = measure(OptimizationLevel::II).preprocess;
  const double fp = measure(OptimizationLevel::FixedPoint).preprocess;
  EXPECT_NEAR(v, 0.800, 0.09);
  EXPECT_NEAR(ii, 0.743, 0.08);
  EXPECT_NEAR(fp, 0.740, 0.08);
  EXPECT_LT(std::abs(v - fp) / v, 0.15);
}

TEST(Fig3, IiReducesHiddenStateByWideMargin) {
  // "II minimization reduced the execution time of kernel_hidden_state by
  // a relatively wide margin"
  const double v = measure(OptimizationLevel::Vanilla).hidden;
  const double ii = measure(OptimizationLevel::II).hidden;
  EXPECT_NEAR(v, 5.076, 0.55);
  EXPECT_NEAR(ii, 1.651, 0.18);
  EXPECT_GT(v / ii, 2.5);
}

TEST(Fig3, FixedPointDramaticallyReducesGates) {
  // "fixed-point arithmetic dramatically decreased the execution time of
  // kernel_gates"
  const double v = measure(OptimizationLevel::Vanilla).gates;
  const double fp = measure(OptimizationLevel::FixedPoint).gates;
  EXPECT_NEAR(v, 1.277, 0.14);
  EXPECT_GT(v / fp, 100.0);
}

TEST(Fig3, EachOptimizationLevelIsFasterOverall) {
  const double v = measure(OptimizationLevel::Vanilla).total();
  const double ii = measure(OptimizationLevel::II).total();
  const double fp = measure(OptimizationLevel::FixedPoint).total();
  EXPECT_GT(v, ii);
  EXPECT_GT(ii, fp);
  // The headline reduction: ~3.3x from vanilla to fully optimized.
  EXPECT_NEAR(v / fp, 7.153 / 2.15133, 0.6);
}

TEST(Specs, OptimizationNames) {
  EXPECT_STREQ(optimization_name(OptimizationLevel::Vanilla), "vanilla");
  EXPECT_STREQ(optimization_name(OptimizationLevel::II), "ii");
  EXPECT_STREQ(optimization_name(OptimizationLevel::FixedPoint), "fixed-point");
}

TEST(Specs, OnlyFixedPointReportsAmortizedGates) {
  EXPECT_FALSE(gates_reports_amortized_ii(OptimizationLevel::Vanilla));
  EXPECT_FALSE(gates_reports_amortized_ii(OptimizationLevel::II));
  EXPECT_TRUE(gates_reports_amortized_ii(OptimizationLevel::FixedPoint));
}

TEST(Specs, GatesUseDataflowPerPaper) {
  const nn::LstmConfig config;
  for (const auto level : {OptimizationLevel::Vanilla, OptimizationLevel::II,
                           OptimizationLevel::FixedPoint}) {
    EXPECT_TRUE(make_gates_spec(config, level).dataflow);
    EXPECT_FALSE(make_preprocess_spec(config, level, 4).dataflow);
    EXPECT_FALSE(make_hidden_state_spec(config, level, 4).dataflow);
  }
}

TEST(Specs, FixedPointGatesUseIntegerOps) {
  const nn::LstmConfig config;
  const hls::KernelSpec fp = make_gates_spec(config, OptimizationLevel::FixedPoint);
  for (const auto& op : fp.loops.front().body_ops) {
    EXPECT_NE(op.kind, hls::OpKind::FloatMul);
    EXPECT_NE(op.kind, hls::OpKind::FloatExp);
  }
  const hls::KernelSpec fl = make_gates_spec(config, OptimizationLevel::Vanilla);
  bool has_float = false;
  for (const auto& op : fl.loops.front().body_ops) {
    has_float |= op.kind == hls::OpKind::FloatMul;
  }
  EXPECT_TRUE(has_float);
}

TEST(Specs, PreprocessCopiesScaleWithCuCount) {
  const nn::LstmConfig config;
  const auto two = make_preprocess_spec(config, OptimizationLevel::Vanilla, 2);
  const auto four = make_preprocess_spec(config, OptimizationLevel::Vanilla, 4);
  EXPECT_EQ(four.transfers.size(), two.transfers.size() + 2);
}

TEST(Specs, WholeDesignFitsKu15p) {
  // The SmartSSD's own FPGA must be able to host the design (4 gate CUs).
  const nn::LstmConfig config;
  for (const auto level : {OptimizationLevel::Vanilla, OptimizationLevel::II,
                           OptimizationLevel::FixedPoint}) {
    hls::ResourceEstimate total;
    total += hls::estimate_resources(make_preprocess_spec(config, level, 4));
    const auto gate = hls::estimate_resources(make_gates_spec(config, level));
    total += gate * 4;
    total += hls::estimate_resources(make_hidden_state_spec(config, level, 4));
    EXPECT_TRUE(total.fits(hls::FpgaPart::ku15p()))
        << optimization_name(level) << " utilization "
        << total.utilization(hls::FpgaPart::ku15p());
  }
}

}  // namespace
}  // namespace csdml::kernels
