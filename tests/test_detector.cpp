#include "detect/detector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/train.hpp"
#include "obs/metrics.hpp"

namespace csdml::detect {
namespace {

/// Engine wrapper with a model trained just enough to separate two token
/// "languages": low tokens (benign-ish) vs high tokens (malicious-ish).
struct DetectorFixture {
  nn::LstmConfig config{.vocab_size = 20, .embed_dim = 4, .hidden_dim = 8};
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  std::unique_ptr<kernels::CsdLstmEngine> engine;

  DetectorFixture() {
    Rng rng(3);
    nn::LstmClassifier model(config, rng);
    // Quick training task: tokens < 10 -> label 0, tokens >= 10 -> label 1.
    nn::SequenceDataset train;
    Rng data_rng(5);
    for (int i = 0; i < 160; ++i) {
      const int label = i % 2;
      nn::Sequence seq;
      for (int j = 0; j < 12; ++j) {
        seq.push_back(static_cast<nn::TokenId>(
            data_rng.uniform_int(0, 9) + (label != 0 ? 10 : 0)));
      }
      train.sequences.push_back(std::move(seq));
      train.labels.push_back(label);
    }
    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    nn::train(model, train, train, tc);

    engine = std::make_unique<kernels::CsdLstmEngine>(
        device, config, model.params(),
        kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  }

  nn::TokenId benign_token(Rng& rng) const {
    return static_cast<nn::TokenId>(rng.uniform_int(0, 9));
  }
  nn::TokenId malicious_token(Rng& rng) const {
    return static_cast<nn::TokenId>(rng.uniform_int(10, 19));
  }
};

TEST(Detector, NoClassificationBeforeWindowFills) {
  DetectorFixture f;
  StreamingDetector detector(*f.engine, DetectorConfig{.window_length = 50});
  Rng rng(7);
  for (int i = 0; i < 49; ++i) {
    EXPECT_FALSE(detector.on_api_call(1, f.malicious_token(rng)).has_value());
  }
  EXPECT_EQ(detector.classifications_run(), 0u);
  // The 50th call completes the window and triggers the first inference.
  detector.on_api_call(1, f.malicious_token(rng));
  EXPECT_EQ(detector.classifications_run(), 1u);
}

TEST(Detector, DetectsMaliciousStream) {
  DetectorFixture f;
  StreamingDetector detector(
      *f.engine, DetectorConfig{.window_length = 30, .hop = 10, .threshold = 0.5});
  Rng rng(9);
  std::optional<Detection> detection;
  for (int i = 0; i < 60 && !detection.has_value(); ++i) {
    detection = detector.on_api_call(42, f.malicious_token(rng));
  }
  ASSERT_TRUE(detection.has_value());
  EXPECT_EQ(detection->process, 42u);
  EXPECT_GE(detection->probability, 0.5);
  EXPECT_GE(detection->call_index, 30u);  // cannot fire before a full window
  EXPECT_GT(detection->inference_time.picos, 0);
}

TEST(Detector, StaysQuietOnBenignStream) {
  DetectorFixture f;
  StreamingDetector detector(
      *f.engine, DetectorConfig{.window_length = 30, .hop = 5});
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(detector.on_api_call(7, f.benign_token(rng)).has_value());
  }
  EXPECT_GT(detector.classifications_run(), 10u);  // it did keep checking
}

TEST(Detector, HopThrottlesClassifications) {
  DetectorFixture f;
  StreamingDetector sparse(
      *f.engine, DetectorConfig{.window_length = 20, .hop = 20});
  StreamingDetector dense(
      *f.engine, DetectorConfig{.window_length = 20, .hop = 1});
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const nn::TokenId token = f.benign_token(rng);
    sparse.on_api_call(1, token);
    dense.on_api_call(1, token);
  }
  // dense: one per call after warmup (81); sparse: one per 20 (5).
  EXPECT_EQ(dense.classifications_run(), 81u);
  EXPECT_EQ(sparse.classifications_run(), 5u);
}

TEST(Detector, DebounceRequiresConsecutiveAlerts) {
  DetectorFixture f;
  StreamingDetector detector(
      *f.engine, DetectorConfig{.window_length = 20, .hop = 5,
                                .consecutive_alerts = 3});
  Rng rng(15);
  int detections_at = -1;
  for (int i = 0; i < 100; ++i) {
    const auto detection = detector.on_api_call(1, f.malicious_token(rng));
    if (detection.has_value()) {
      detections_at = i;
      break;
    }
  }
  ASSERT_GE(detections_at, 0);
  // Needs the window (20 calls) plus two further hops (2 x 5) to gather
  // three consecutive over-threshold classifications: earliest index 29.
  EXPECT_GE(detections_at, 29);
  EXPECT_GE(detector.classifications_run(), 3u);
}

TEST(Detector, TracksProcessesIndependently) {
  DetectorFixture f;
  StreamingDetector detector(
      *f.engine, DetectorConfig{.window_length = 30, .hop = 10});
  Rng rng(17);
  std::optional<Detection> benign_detection;
  std::optional<Detection> malicious_detection;
  for (int i = 0; i < 80; ++i) {
    const auto b = detector.on_api_call(1, f.benign_token(rng));
    if (b.has_value()) benign_detection = b;
    const auto m = detector.on_api_call(2, f.malicious_token(rng));
    if (m.has_value() && !malicious_detection.has_value()) {
      malicious_detection = m;
    }
  }
  EXPECT_FALSE(benign_detection.has_value());
  ASSERT_TRUE(malicious_detection.has_value());
  EXPECT_EQ(malicious_detection->process, 2u);
}

TEST(Detector, ForgetResetsProcessState) {
  DetectorFixture f;
  StreamingDetector detector(*f.engine, DetectorConfig{.window_length = 10});
  Rng rng(19);
  for (int i = 0; i < 9; ++i) detector.on_api_call(1, f.benign_token(rng));
  detector.forget(1);
  // Window must refill from scratch: 9 more calls trigger nothing.
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(detector.on_api_call(1, f.benign_token(rng)).has_value());
  }
  EXPECT_EQ(detector.classifications_run(), 0u);
}

TEST(Detector, ForgetFlushesPendingDebounceIntoCounters) {
  DetectorFixture f;
  obs::registry().reset();
  // consecutive_alerts = 3: a malicious stream accrues a pending streak
  // that never fires if the process dies first.
  StreamingDetector detector(
      *f.engine, DetectorConfig{.window_length = 20, .hop = 10,
                                .consecutive_alerts = 3});
  Rng rng(23);
  for (int i = 0; i < 30; ++i) detector.on_api_call(1, f.malicious_token(rng));
  detector.forget(1);
  detector.forget(1);  // unknown process: no double counting
  detector.forget(99);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  std::uint64_t forgotten = 0;
  std::uint64_t flushed = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "detector.processes_forgotten") forgotten = value;
    if (name == "detector.pending_alert_streaks_flushed") flushed = value;
  }
  EXPECT_EQ(forgotten, 1u);
  EXPECT_GE(flushed, 1u);  // the interrupted streak was preserved
  // Window occupancy of the dead process lands in the histogram.
  bool occupancy_seen = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "detector.window_occupancy") occupancy_seen = h.count == 1;
  }
  EXPECT_TRUE(occupancy_seen);
}

TEST(Detector, ClassificationCountersTrackRuns) {
  DetectorFixture f;
  obs::registry().reset();
  StreamingDetector detector(*f.engine, DetectorConfig{.window_length = 10,
                                                       .hop = 5});
  Rng rng(25);
  for (int i = 0; i < 25; ++i) detector.on_api_call(1, f.benign_token(rng));
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  std::uint64_t classifications = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "detector.classifications") classifications = value;
  }
  EXPECT_EQ(classifications, detector.classifications_run());
  EXPECT_GT(classifications, 0u);
}

TEST(Detector, AccumulatesDeviceTime) {
  DetectorFixture f;
  StreamingDetector detector(*f.engine, DetectorConfig{.window_length = 10,
                                                       .hop = 1});
  Rng rng(21);
  for (int i = 0; i < 20; ++i) detector.on_api_call(1, f.benign_token(rng));
  EXPECT_GT(detector.device_time_spent().picos, 0);
}

TEST(Detector, ForgetUnknownProcessIsWellDefinedNoOp) {
  DetectorFixture f;
  obs::registry().reset();
  StreamingDetector detector(*f.engine, DetectorConfig{.window_length = 10});
  // Forget before any call ever arrived: counted, nothing else changes.
  EXPECT_NO_THROW(detector.forget(99));
  EXPECT_EQ(obs::registry().counter_value("detector.forget_unknown"), 1u);
  EXPECT_EQ(obs::registry().counter_value("detector.processes_forgotten"), 0u);

  // The detector still works normally afterwards.
  Rng rng(27);
  for (int i = 0; i < 10; ++i) detector.on_api_call(1, f.benign_token(rng));
  EXPECT_EQ(detector.classifications_run(), 1u);
}

TEST(Detector, HopLargerThanWindowKeepsClassifying) {
  DetectorFixture f;
  // hop 25 > window 10: consecutive windows skip 15 calls entirely, but
  // classification must keep recurring every hop calls (regression: the
  // schedule used to be undefined in this configuration).
  StreamingDetector detector(
      *f.engine, DetectorConfig{.window_length = 10, .hop = 25});
  Rng rng(29);
  for (int i = 0; i < 110; ++i) detector.on_api_call(1, f.benign_token(rng));
  // First at call 10, then calls 35, 60, 85, 110.
  EXPECT_EQ(detector.classifications_run(), 5u);
}

TEST(Detector, RejectsOutOfVocabularyTokens) {
  DetectorFixture f;
  StreamingDetector detector(*f.engine, DetectorConfig{.window_length = 10});
  EXPECT_THROW(detector.on_api_call(1, f.config.vocab_size), PreconditionError);
  EXPECT_THROW(detector.on_api_call(1, -1), PreconditionError);
}

TEST(Detector, ConfigGuards) {
  DetectorFixture f;
  EXPECT_THROW(StreamingDetector(*f.engine, DetectorConfig{.window_length = 0}),
               PreconditionError);
  EXPECT_THROW(StreamingDetector(*f.engine, DetectorConfig{.hop = 0}),
               PreconditionError);
  EXPECT_THROW(
      StreamingDetector(*f.engine, DetectorConfig{.consecutive_alerts = 0}),
      PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
