#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace csdml {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 997;  // prime: not a multiple of any pool
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t, std::size_t index) {
    hits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ExecutorIdsStayInRange) {
  ThreadPool pool(3);
  ASSERT_EQ(pool.thread_count(), 3u);
  std::atomic<bool> out_of_range{false};
  pool.parallel_for(500, [&](std::size_t executor, std::size_t) {
    if (executor >= pool.thread_count()) out_of_range = true;
  });
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPool, SingleThreadPoolRunsOnCaller) {
  ThreadPool pool(1);
  ASSERT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> wrong_thread{false};
  pool.parallel_for(64, [&](std::size_t executor, std::size_t) {
    if (executor != 0 || std::this_thread::get_id() != caller) {
      wrong_thread = true;
    }
  });
  EXPECT_FALSE(wrong_thread.load());
}

TEST(ThreadPool, SmallRangesRunInlineOnCaller) {
  // Below two indices per executor the wake handshake costs more than the
  // work; the whole range must run on the caller as executor 0.
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> off_caller{false};
  std::atomic<std::size_t> done{0};
  pool.parallel_for(2 * pool.thread_count() - 1,
                    [&](std::size_t executor, std::size_t) {
                      if (executor != 0 ||
                          std::this_thread::get_id() != caller) {
                        off_caller = true;
                      }
                      done.fetch_add(1, std::memory_order_relaxed);
                    });
  EXPECT_FALSE(off_caller.load());
  EXPECT_EQ(done.load(), 2 * pool.thread_count() - 1);

  // At the threshold the workers wake again.
  std::atomic<std::size_t> wide_done{0};
  pool.parallel_for(2 * pool.thread_count(), [&](std::size_t, std::size_t) {
    wide_done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(wide_done.load(), 2 * pool.thread_count());
}

TEST(ThreadPool, InlinePathStopsAtFirstException) {
  // Inline execution keeps sequential-loop semantics: indices after the
  // throwing one never run.
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t, std::size_t index) {
                                   ran.fetch_add(1,
                                                 std::memory_order_relaxed);
                                   if (index == 1) {
                                     throw std::runtime_error("boom at 1");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 2u);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t, std::size_t index) {
                          if (index == 37) {
                            throw std::runtime_error("boom at 37");
                          }
                        }),
      std::runtime_error);
  // The failed job must not poison the pool: later jobs still complete.
  std::atomic<std::size_t> done{0};
  pool.parallel_for(100, [&](std::size_t, std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 100u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(10, [&](std::size_t, std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 500u);
}

TEST(ThreadPool, DefaultSizeUsesAtLeastOneThread) {
  ThreadPool pool;  // 0 = hardware_concurrency, floor 1
  EXPECT_GE(pool.thread_count(), 1u);
  std::atomic<std::size_t> done{0};
  pool.parallel_for(32, [&](std::size_t, std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 32u);
}

}  // namespace
}  // namespace csdml
