// Minimal strict JSON syntax checker for test assertions (the CI
// workflow additionally validates exported files with `python3 -m
// json.tool`; this keeps the same guarantee inside the gtest suite).
#pragma once

#include <cctype>
#include <string>

namespace csdml::testing {

class JsonLint {
 public:
  /// True iff `text` is exactly one syntactically valid JSON value.
  static bool valid(const std::string& text) {
    JsonLint lint(text);
    return lint.value() && (lint.skip_space(), lint.pos_ == text.size());
  }

 private:
  explicit JsonLint(const std::string& text) : text_(text) {}

  bool value() {
    skip_space();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_space();
    if (consume('}')) return true;
    while (true) {
      skip_space();
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string()) return false;
      skip_space();
      if (!consume(':') || !value()) return false;
      skip_space();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_space();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_space();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (static_cast<unsigned char>(text_[pos_]) < 0x20) return false;
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't' &&
            esc != 'u') {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* c = word; *c; ++c, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *c) return false;
    }
    return true;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_{0};
};

}  // namespace csdml::testing
