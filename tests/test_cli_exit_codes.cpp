// Exit-code contract tests across the operational commands.
//
// The contract (documented in cli.hpp): 0 success, 2 usage error
// (PreconditionError / malformed numbers), 1 runtime failure (unreadable
// or unwritable files, unhealthy verdicts, quality-gate and golden-digest
// failures). CI scripts branch on these, so the distinction between "you
// typed it wrong" (2) and "the system is unhealthy / the gate failed" (1)
// is load-bearing.
#include "host/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace csdml::host {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return CliRun{code, out.str(), err.str()};
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string write_file(const char* name, const std::string& text) {
  const std::string path = temp_path(name);
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

/// A benign-only one-process scenario small enough for the tiny model to
/// chew through in well under a second; the FPR budget of 1.0 keeps the
/// quality gates out of the way so golden-file plumbing is what's tested.
const char* kMiniScenario =
    "scenario cli-mini\n"
    "seed 77\n"
    "boards 1\n"
    "detector window=100 hop=50 debounce=2 threshold=0.5\n"
    "benign pid=1 profile=VLC session=0 start=0 calls=150\n"
    "budget latency=0 files-lost=0 fpr=1\n";

TEST(CliExitCodes, ScenarioUsageErrorsReturnTwo) {
  EXPECT_EQ(run({"scenario"}).code, 2);               // missing subcommand
  EXPECT_EQ(run({"scenario", "frob"}).code, 2);       // unknown subcommand
  EXPECT_EQ(run({"scenario", "run", "--name", "not-a-scenario"}).code, 2);
  EXPECT_EQ(run({"scenario", "run", "--name"}).code, 2);  // missing value
  EXPECT_EQ(run({"scenario", "run", "--update-golden"}).code, 2);
  EXPECT_EQ(run({"scenario", "run", "--name", "clean-benign", "--seed",
                 "notanumber"}).code, 2);
  EXPECT_EQ(run({"scenario", "show"}).code, 2);       // missing --name
  EXPECT_EQ(run({"scenario", "show", "--name", "not-a-scenario"}).code, 2);
}

TEST(CliExitCodes, ScenarioListAndShowSucceed) {
  const CliRun list = run({"scenario", "list"});
  EXPECT_EQ(list.code, 0);
  EXPECT_NE(list.out.find("clean-benign"), std::string::npos);
  EXPECT_NE(list.out.find("attack-during-failover"), std::string::npos);

  const CliRun show = run({"scenario", "show", "--name", "clean-benign"});
  EXPECT_EQ(show.code, 0);
  EXPECT_NE(show.out.find("scenario clean-benign"), std::string::npos);
  EXPECT_NE(show.out.find("budget "), std::string::npos);
}

TEST(CliExitCodes, ScenarioBadInputFilesAreFailuresNotUsage) {
  // A missing or unparseable scenario file is a broken gate (1), not a
  // typo (2): CI must not mistake a deleted corpus file for a bad flag.
  EXPECT_EQ(run({"scenario", "run", "--file", "/nonexistent/x.scn"}).code, 1);
  const std::string bad =
      write_file("csdml_cli_bad.scn", "scenario x\nfrobnicate a=1\n");
  EXPECT_EQ(run({"scenario", "run", "--file", bad}).code, 1);
  std::remove(bad.c_str());
}

TEST(CliExitCodes, ScenarioGoldenLifecycle) {
  const std::string scn = write_file("csdml_cli_mini.scn", kMiniScenario);
  const std::string golden = temp_path("csdml_cli_golden.txt");
  std::remove(golden.c_str());

  // Comparing against an absent golden file is a failure…
  EXPECT_EQ(run({"scenario", "run", "--file", scn, "--tiny", "--golden",
                 golden}).code, 1);
  // …an unwritable --update-golden target too…
  EXPECT_EQ(run({"scenario", "run", "--file", scn, "--tiny", "--golden",
                 "/nonexistent-dir/golden.txt", "--update-golden"}).code, 1);
  // …but recording and then re-verifying round-trips to success.
  EXPECT_EQ(run({"scenario", "run", "--file", scn, "--tiny", "--golden",
                 golden, "--update-golden"}).code, 0);
  const CliRun match = run(
      {"scenario", "run", "--file", scn, "--tiny", "--golden", golden});
  EXPECT_EQ(match.code, 0) << match.out;
  EXPECT_NE(match.out.find("digests match"), std::string::npos);

  // A drifted digest is a failure with a diagnostic naming the scenario.
  std::ofstream(golden, std::ios::trunc)
      << "cli-mini 0000000000000000\n";
  const CliRun drift = run(
      {"scenario", "run", "--file", scn, "--tiny", "--golden", golden});
  EXPECT_EQ(drift.code, 1);
  EXPECT_NE(drift.out.find("drifted"), std::string::npos);

  std::remove(scn.c_str());
  std::remove(golden.c_str());
}

TEST(CliExitCodes, ClassifyDistinguishesUsageFromMissingFiles) {
  EXPECT_EQ(run({"classify"}).code, 2);  // missing required flags
  EXPECT_EQ(run({"classify", "--weights", "/nonexistent/w.txt", "--dataset",
                 "/nonexistent/d.csv"}).code, 1);
}

TEST(CliExitCodes, StatsUsageErrorsAndUnwritableTrace) {
  EXPECT_EQ(run({"stats", "--level", "turbo"}).code, 2);
  EXPECT_EQ(run({"stats", "--calls", "50"}).code, 2);       // below minimum
  EXPECT_EQ(run({"stats", "--fault-rate", "1.5"}).code, 2);  // out of range
  // The unwritable trace destination fails fast (before the workload).
  EXPECT_EQ(
      run({"stats", "--trace-out", "/nonexistent-dir/trace.json"}).code, 1);
}

TEST(CliExitCodes, WatchUsageErrors) {
  EXPECT_EQ(run({"watch", "--rounds", "0"}).code, 2);
  EXPECT_EQ(run({"watch", "--interval-calls", "10"}).code, 2);
  EXPECT_EQ(run({"watch", "--fault-rate", "2"}).code, 2);
}

TEST(CliExitCodes, WatchUnhealthyVerdictExitsOne) {
  // A near-certain launch-failure rate latches the engine: the final
  // health verdict is Unhealthy and watch must say so in its exit code.
  const CliRun sick = run({"watch", "--rounds", "2", "--interval-calls",
                           "200", "--fault-rate", "0.95"});
  EXPECT_EQ(sick.code, 1) << sick.out;
  EXPECT_NE(sick.out.find("unhealthy"), std::string::npos);

  const CliRun healthy =
      run({"watch", "--rounds", "1", "--interval-calls", "200"});
  EXPECT_EQ(healthy.code, 0) << healthy.out;
}

TEST(CliExitCodes, TopUsageErrors) {
  EXPECT_EQ(run({"top", "--boards", "0"}).code, 2);
  EXPECT_EQ(run({"top", "--boards", "99"}).code, 2);
  EXPECT_EQ(run({"top", "--rounds", "0"}).code, 2);
  EXPECT_EQ(run({"top", "--interval-calls", "10"}).code, 2);
  EXPECT_EQ(run({"top", "--fault-rate", "1.5"}).code, 2);
  EXPECT_EQ(run({"top", "--level", "turbo"}).code, 2);
}

TEST(CliExitCodes, TopOnceAndJsonSucceed) {
  // --once renders the final frame only: no live-mode clear-screen
  // escapes in the output, exit 0 while conservation holds and nothing
  // critical latched.
  const CliRun text = run({"top", "--once", "--rounds", "2",
                           "--interval-calls", "100", "--boards", "2"});
  EXPECT_EQ(text.code, 0) << text.out;
  EXPECT_NE(text.out.find("time series:"), std::string::npos);
  EXPECT_NE(text.out.find("conservation ok"), std::string::npos);
  EXPECT_EQ(text.out.find("\x1b[2J"), std::string::npos);

  const CliRun json = run({"top", "--json", "--rounds", "2",
                           "--interval-calls", "100", "--boards", "2"});
  EXPECT_EQ(json.code, 0) << json.err;
  EXPECT_NE(json.out.find("\"tool\":\"top\""), std::string::npos);
  EXPECT_NE(json.out.find("\"fleet\":"), std::string::npos);
  EXPECT_NE(json.out.find("\"alerts\":"), std::string::npos);
  EXPECT_NE(json.out.find("\"tsdb\":"), std::string::npos);
  EXPECT_NE(json.out.find("\"conservation_ok\":true"), std::string::npos);
}

TEST(CliExitCodes, ServeUsageErrors) {
  EXPECT_EQ(run({"serve", "--kill-board", "banana"}).code, 2);
  EXPECT_EQ(run({"serve", "--kill-board", "0@100"}).code, 2);  // 1 board
  EXPECT_EQ(run({"serve", "--boards", "99"}).code, 2);
  EXPECT_EQ(run({"serve", "--ingest-threads", "0"}).code, 2);
}

}  // namespace
}  // namespace csdml::host
