#include "host/node.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::host {
namespace {

struct NodeFixture {
  nn::LstmConfig config;
  nn::ModelSnapshot snapshot;

  NodeFixture() {
    Rng rng(71);
    snapshot = nn::ModelSnapshot{config, nn::LstmParams::glorot(config, rng)};
  }

  std::vector<nn::Sequence> sequences(std::size_t n, int length = 50) const {
    Rng rng(5);
    std::vector<nn::Sequence> out;
    for (std::size_t i = 0; i < n; ++i) {
      nn::Sequence seq;
      for (int j = 0; j < length; ++j) {
        seq.push_back(static_cast<nn::TokenId>(
            rng.uniform_int(0, config.vocab_size - 1)));
      }
      out.push_back(std::move(seq));
    }
    return out;
  }
};

TEST(Node, ScanCoversEverySequenceOnce) {
  NodeFixture f;
  StorageNode node(f.snapshot, NodeConfig{.drive_count = 4});
  const auto work = f.sequences(37);
  const ScanReport report = node.scan(work);
  EXPECT_EQ(report.scanned, 37u);
  EXPECT_EQ(report.labels.size(), 37u);
  std::size_t per_drive_total = 0;
  for (const DriveStats& stats : report.per_drive) {
    per_drive_total += stats.scanned;
  }
  EXPECT_EQ(per_drive_total, 37u);
}

TEST(Node, LabelsMatchSingleEngineResults) {
  NodeFixture f;
  StorageNode node(f.snapshot, NodeConfig{.drive_count = 3});
  const auto work = f.sequences(12);
  const ScanReport report = node.scan(work);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine reference(device, f.snapshot, kernels::EngineConfig{});
  for (std::size_t i = 0; i < work.size(); ++i) {
    EXPECT_EQ(report.labels[i], reference.infer(work[i]).label) << i;
  }
}

TEST(Node, ScaleOutSpeedupApproachesDriveCount) {
  NodeFixture f;
  StorageNode node(f.snapshot, NodeConfig{.drive_count = 4});
  const ScanReport report = node.scan(f.sequences(64));
  EXPECT_GT(report.scale_out_speedup(), 3.5);
  EXPECT_LE(report.scale_out_speedup(), 4.01);
  EXPECT_GT(report.makespan.picos, 0);
  EXPECT_GT(report.serial_time.picos, report.makespan.picos);
}

TEST(Node, SingleDriveNodeWorks) {
  NodeFixture f;
  StorageNode node(f.snapshot, NodeConfig{.drive_count = 1});
  const ScanReport report = node.scan(f.sequences(5));
  EXPECT_EQ(report.scanned, 5u);
  EXPECT_NEAR(report.scale_out_speedup(), 1.0, 1e-9);
}

TEST(Node, FleetWeightUpdateKeepsVersionsInSync) {
  NodeFixture f;
  StorageNode node(f.snapshot, NodeConfig{.drive_count = 3});
  EXPECT_EQ(node.weight_version(), 1u);
  Rng rng(99);
  const nn::LstmParams fresh = nn::LstmParams::glorot(f.config, rng);
  node.update_all_weights(fresh);
  EXPECT_EQ(node.weight_version(), 2u);

  // Every drive serves the new model.
  const auto work = f.sequences(3);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine reference(device, f.config, fresh,
                                   kernels::EngineConfig{});
  const ScanReport report = node.scan(work);
  for (std::size_t i = 0; i < work.size(); ++i) {
    EXPECT_EQ(report.labels[i], reference.infer(work[i]).label);
  }
}

TEST(Node, Guards) {
  NodeFixture f;
  EXPECT_THROW(StorageNode(f.snapshot, NodeConfig{.drive_count = 0}),
               PreconditionError);
  StorageNode node(f.snapshot, NodeConfig{.drive_count = 2});
  EXPECT_THROW(node.scan({}), PreconditionError);
  EXPECT_THROW(node.engine(2), PreconditionError);
  EXPECT_THROW(node.board(5), PreconditionError);
}

}  // namespace
}  // namespace csdml::host
