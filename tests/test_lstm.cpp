#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(Lstm, PaperParameterCounts) {
  // The paper: 7,472 parameters (2,224 embedding + 5,248 LSTM), plus a
  // fully-connected layer with 32 weights and one bias.
  const LstmConfig config;  // defaults are the paper's configuration
  Rng rng(1);
  const LstmClassifier model(config, rng);
  EXPECT_EQ(model.params().embedding_parameter_count(), 2'224u);
  EXPECT_EQ(model.params().lstm_parameter_count(), 5'248u);
  EXPECT_EQ(model.params().embedding_parameter_count() +
                model.params().lstm_parameter_count(),
            7'472u);
  EXPECT_EQ(model.params().dense_parameter_count(), 33u);
  EXPECT_EQ(model.params().total_parameter_count(), 7'505u);
}

TEST(Lstm, ParameterPointersCoverEveryScalarOnce) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 3, .hidden_dim = 4};
  Rng rng(2);
  LstmClassifier model(config, rng);
  auto ptrs = model.mutable_params().parameter_pointers();
  EXPECT_EQ(ptrs.size(), model.params().total_parameter_count());
  std::sort(ptrs.begin(), ptrs.end());
  EXPECT_EQ(std::adjacent_find(ptrs.begin(), ptrs.end()), ptrs.end());
}

TEST(Lstm, ForwardIsDeterministic) {
  LstmConfig config;
  Rng rng(3);
  const LstmClassifier model(config, rng);
  const Sequence seq{1, 5, 9, 200, 42, 7};
  EXPECT_DOUBLE_EQ(model.forward(seq, nullptr), model.forward(seq, nullptr));
}

TEST(Lstm, OutputIsAProbability) {
  LstmConfig config;
  Rng rng(4);
  const LstmClassifier model(config, rng);
  Rng token_rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Sequence seq;
    for (int i = 0; i < 50; ++i) {
      seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
    }
    const double p = model.forward(seq, nullptr);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    EXPECT_EQ(model.predict(seq), p >= 0.5 ? 1 : 0);
  }
}

TEST(Lstm, DifferentSequencesGiveDifferentOutputs) {
  LstmConfig config;
  Rng rng(6);
  const LstmClassifier model(config, rng);
  const double p1 = model.forward(Sequence{1, 2, 3, 4, 5}, nullptr);
  const double p2 = model.forward(Sequence{200, 201, 202, 203, 204}, nullptr);
  EXPECT_NE(p1, p2);
}

TEST(Lstm, OrderSensitivity) {
  // A sequential model must distinguish permutations of the same tokens.
  LstmConfig config;
  Rng rng(7);
  const LstmClassifier model(config, rng);
  const double forward_order = model.forward(Sequence{10, 20, 30, 40, 50}, nullptr);
  const double reverse_order = model.forward(Sequence{50, 40, 30, 20, 10}, nullptr);
  EXPECT_NE(forward_order, reverse_order);
}

TEST(Lstm, CacheMatchesUncachedForward) {
  LstmConfig config;
  Rng rng(8);
  const LstmClassifier model(config, rng);
  const Sequence seq{3, 1, 4, 1, 5, 9, 2, 6};
  ForwardCache cache;
  const double with_cache = model.forward(seq, &cache);
  EXPECT_DOUBLE_EQ(with_cache, model.forward(seq, nullptr));
  EXPECT_EQ(cache.steps.size(), seq.size());
  EXPECT_DOUBLE_EQ(cache.probability, with_cache);
  // h of the final cache step feeds the dense layer reproducibly.
  double logit = model.params().dense_b;
  for (std::size_t j = 0; j < config.hidden_dim; ++j) {
    logit += model.params().dense_w[j] * cache.steps.back().h[j];
  }
  EXPECT_NEAR(logit, cache.logit, 1e-12);
}

TEST(Lstm, StepEvolvesState) {
  LstmConfig config{.vocab_size = 10, .embed_dim = 4, .hidden_dim = 6};
  Rng rng(9);
  const LstmClassifier model(config, rng);
  Vector h(6, 0.0);
  Vector c(6, 0.0);
  model.step(model.embed(3), h, c, nullptr);
  double h_norm = 0;
  for (const double v : h) h_norm += v * v;
  EXPECT_GT(h_norm, 0.0);
  const Vector h1 = h;
  model.step(model.embed(7), h, c, nullptr);
  EXPECT_NE(h, h1);
}

TEST(Lstm, CellStateIsBoundedWithSoftsign) {
  // With softsign gates in (-1,1) and i,f in (0,1): |c_t| <= |c_{t-1}| + 1.
  LstmConfig config;
  Rng rng(10);
  const LstmClassifier model(config, rng);
  ForwardCache cache;
  Sequence seq;
  Rng token_rng(11);
  for (int i = 0; i < 200; ++i) {
    seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
  }
  model.forward(seq, &cache);
  for (std::size_t t = 0; t < cache.steps.size(); ++t) {
    for (const double c : cache.steps[t].c) {
      EXPECT_LE(std::abs(c), static_cast<double>(t) + 1.0);
    }
    for (const double h : cache.steps[t].h) {
      EXPECT_LT(std::abs(h), 1.0);  // |o| < 1 and |softsign(c)| < 1
    }
  }
}

TEST(Lstm, EmbedValidation) {
  LstmConfig config{.vocab_size = 10, .embed_dim = 4, .hidden_dim = 6};
  Rng rng(12);
  const LstmClassifier model(config, rng);
  EXPECT_EQ(model.embed(0).size(), 4u);
  EXPECT_THROW(model.embed(-1), PreconditionError);
  EXPECT_THROW(model.embed(10), PreconditionError);
}

TEST(Lstm, EmptySequenceThrows) {
  LstmConfig config;
  Rng rng(13);
  const LstmClassifier model(config, rng);
  EXPECT_THROW(model.forward({}, nullptr), PreconditionError);
}

TEST(Lstm, TanhAndSoftsignConfigsDiffer) {
  Rng rng1(14);
  Rng rng2(14);
  LstmConfig soft;
  soft.activation = CellActivation::Softsign;
  LstmConfig tanh_cfg;
  tanh_cfg.activation = CellActivation::Tanh;
  const LstmClassifier m1(soft, rng1);
  const LstmClassifier m2(tanh_cfg, rng2);  // identical weights, different act
  const Sequence seq{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NE(m1.forward(seq, nullptr), m2.forward(seq, nullptr));
}

TEST(Lstm, ForgetGateBiasInitialisedToOne) {
  LstmConfig config;
  Rng rng(15);
  const LstmClassifier model(config, rng);
  for (const double b : model.params().bias[kForget]) EXPECT_DOUBLE_EQ(b, 1.0);
  for (const double b : model.params().bias[kInput]) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Lstm, ConstructionFromMismatchedParamsThrows) {
  LstmConfig small{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  LstmConfig big{.vocab_size = 7, .embed_dim = 2, .hidden_dim = 3};
  EXPECT_THROW(LstmClassifier(big, LstmParams::zeros(small)), PreconditionError);
}

TEST(Lstm, ActivationHelpers) {
  EXPECT_DOUBLE_EQ(apply_cell_activation(CellActivation::Tanh, 0.5),
                   std::tanh(0.5));
  EXPECT_DOUBLE_EQ(apply_cell_activation(CellActivation::Softsign, 1.0), 0.5);
  EXPECT_NEAR(cell_activation_derivative(CellActivation::Tanh, 0.3),
              1.0 - std::tanh(0.3) * std::tanh(0.3), 1e-12);
}

}  // namespace
}  // namespace csdml::nn
