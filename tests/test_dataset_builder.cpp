#include "ransomware/dataset_builder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::ransomware {
namespace {

TEST(SlidingWindows, CountMatchesFormula) {
  std::vector<nn::TokenId> trace(1'000);
  const auto windows = sliding_windows(trace, 100, 25);
  // floor((1000 - 100) / 25) + 1 = 37.
  EXPECT_EQ(windows.size(), 37u);
  for (const auto& w : windows) EXPECT_EQ(w.size(), 100u);
}

TEST(SlidingWindows, FirstWindowStartsAtFirstCall) {
  // "beginning with the first API call made to promote early detection"
  std::vector<nn::TokenId> trace(300);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i] = static_cast<nn::TokenId>(i);
  }
  const auto windows = sliding_windows(trace, 100, 50);
  EXPECT_EQ(windows.front().front(), 0);
  EXPECT_EQ(windows.front().back(), 99);
  EXPECT_EQ(windows[1].front(), 50);
}

TEST(SlidingWindows, ExactFitAndGuards) {
  std::vector<nn::TokenId> trace(100);
  EXPECT_EQ(sliding_windows(trace, 100, 10).size(), 1u);
  EXPECT_THROW(sliding_windows(std::vector<nn::TokenId>(99), 100, 10),
               PreconditionError);
  EXPECT_THROW(sliding_windows(trace, 0, 10), PreconditionError);
  EXPECT_THROW(sliding_windows(trace, 100, 0), PreconditionError);
}

TEST(DatasetBuilder, PaperSpecDefaults) {
  const DatasetSpec spec = DatasetSpec::paper();
  EXPECT_EQ(spec.window_length, 100u);
  EXPECT_EQ(spec.ransomware_windows, 13'340u);
  EXPECT_EQ(spec.benign_windows, 15'660u);
  // 29 K total, 46% ransomware — exactly the paper's proportions.
  EXPECT_EQ(spec.ransomware_windows + spec.benign_windows, 29'000u);
  EXPECT_NEAR(static_cast<double>(spec.ransomware_windows) / 29'000.0, 0.46,
              0.001);
}

TEST(DatasetBuilder, SmallSpecPreservesProportions) {
  const DatasetSpec small = DatasetSpec::small();
  const double fraction =
      static_cast<double>(small.ransomware_windows) /
      static_cast<double>(small.ransomware_windows + small.benign_windows);
  EXPECT_NEAR(fraction, 0.46, 0.001);
}

TEST(DatasetBuilder, BuildsExactCounts) {
  DatasetSpec spec = DatasetSpec::small();
  const BuiltDataset built = build_dataset(spec);
  EXPECT_EQ(built.data.size(), spec.ransomware_windows + spec.benign_windows);
  EXPECT_EQ(built.data.positives(), spec.ransomware_windows);
  EXPECT_NEAR(built.data.positive_fraction(), 0.46, 0.001);
  for (const auto& seq : built.data.sequences) {
    EXPECT_EQ(seq.size(), spec.window_length);
  }
}

TEST(DatasetBuilder, FamilyStatsMirrorTableTwo) {
  const BuiltDataset built = build_dataset(DatasetSpec::small());
  ASSERT_EQ(built.family_stats.size(), 10u);
  std::size_t windows = 0;
  std::uint32_t variants = 0;
  for (const auto& stats : built.family_stats) {
    EXPECT_TRUE(stats.encrypts);
    windows += stats.windows;
    variants += stats.variants;
  }
  EXPECT_EQ(windows, DatasetSpec::small().ransomware_windows);
  EXPECT_EQ(variants, 76u);
  EXPECT_EQ(built.benign_sources, benign_profiles().size());
}

TEST(DatasetBuilder, DeterministicForSeed) {
  DatasetSpec spec = DatasetSpec::small();
  spec.ransomware_windows = 200;
  spec.benign_windows = 200;
  const BuiltDataset a = build_dataset(spec);
  const BuiltDataset b = build_dataset(spec);
  EXPECT_EQ(a.data.sequences, b.data.sequences);
  EXPECT_EQ(a.data.labels, b.data.labels);
}

TEST(DatasetBuilder, SeedChangesShuffle) {
  DatasetSpec s1 = DatasetSpec::small();
  s1.ransomware_windows = 200;
  s1.benign_windows = 200;
  DatasetSpec s2 = s1;
  s2.seed = 777;
  EXPECT_NE(build_dataset(s1).data.sequences, build_dataset(s2).data.sequences);
}

TEST(DatasetBuilder, ClassesAreShuffledTogether) {
  DatasetSpec spec = DatasetSpec::small();
  spec.ransomware_windows = 300;
  spec.benign_windows = 300;
  const BuiltDataset built = build_dataset(spec);
  // Not all positives first: count label changes along the vector.
  int transitions = 0;
  for (std::size_t i = 1; i < built.data.labels.size(); ++i) {
    transitions += built.data.labels[i] != built.data.labels[i - 1];
  }
  EXPECT_GT(transitions, 50);
}

TEST(DatasetBuilder, TokensWithinVocabulary) {
  DatasetSpec spec = DatasetSpec::small();
  spec.ransomware_windows = 150;
  spec.benign_windows = 150;
  const BuiltDataset built = build_dataset(spec);
  EXPECT_LE(built.data.vocabulary_size(), 278);
  EXPECT_GT(built.data.vocabulary_size(), 100);  // uses a broad slice
}

TEST(DatasetBuilder, RejectsEmptyClasses) {
  DatasetSpec spec;
  spec.ransomware_windows = 0;
  EXPECT_THROW(build_dataset(spec), PreconditionError);
}

}  // namespace
}  // namespace csdml::ransomware
