#include "ransomware/sandbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"

namespace csdml::ransomware {
namespace {

const FamilyProfile& family(const std::string& name) {
  for (const auto& f : ransomware_families()) {
    if (f.name == name) return f;
  }
  throw std::runtime_error("no such family");
}

TEST(Sandbox, TracesMeetMinimumLength) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto trace = sandbox.ransomware_trace(family("Ryuk"), 0, 5'000);
  EXPECT_GE(trace.size(), 5'000u);
  const auto benign = sandbox.benign_trace(benign_profiles().front(), 0, 3'000);
  EXPECT_GE(benign.size(), 3'000u);
}

TEST(Sandbox, TracesAreDeterministicPerVariant) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto a = sandbox.ransomware_trace(family("Lockbit"), 2, 1'000);
  const auto b = sandbox.ransomware_trace(family("Lockbit"), 2, 1'000);
  EXPECT_EQ(a, b);
}

TEST(Sandbox, DifferentVariantsProduceDifferentTraces) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto v0 = sandbox.ransomware_trace(family("Cerber"), 0, 1'000);
  const auto v1 = sandbox.ransomware_trace(family("Cerber"), 1, 1'000);
  EXPECT_NE(v0, v1);
}

TEST(Sandbox, DifferentFamiliesProduceDifferentTraces) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  EXPECT_NE(sandbox.ransomware_trace(family("Ryuk"), 0, 1'000),
            sandbox.ransomware_trace(family("Locky"), 0, 1'000));
}

TEST(Sandbox, SeedChangesEverything) {
  SandboxConfig c1;
  c1.seed = 1;
  SandboxConfig c2;
  c2.seed = 2;
  const SandboxTraceGenerator s1(c1);
  const SandboxTraceGenerator s2(c2);
  EXPECT_NE(s1.ransomware_trace(family("Ryuk"), 0, 500),
            s2.ransomware_trace(family("Ryuk"), 0, 500));
}

TEST(Sandbox, AllTokensAreInVocabulary) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto vocab_size =
      static_cast<nn::TokenId>(ApiVocabulary::instance().size());
  for (const auto& f : ransomware_families()) {
    const auto trace = sandbox.ransomware_trace(f, 0, 600);
    for (const nn::TokenId t : trace) {
      ASSERT_GE(t, 0);
      ASSERT_LT(t, vocab_size);
    }
  }
}

TEST(Sandbox, RansomwareTracesContainEncryptionCalls) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto& vocab = ApiVocabulary::instance();
  const nn::TokenId crypt = vocab.require("CryptEncrypt");
  const nn::TokenId bcrypt = vocab.require("BCryptEncrypt");
  for (const auto& f : ransomware_families()) {
    const auto trace = sandbox.ransomware_trace(f, 0, 2'000);
    const std::size_t hits = static_cast<std::size_t>(
        std::count(trace.begin(), trace.end(), crypt) +
        std::count(trace.begin(), trace.end(), bcrypt));
    EXPECT_GT(hits, 5u) << f.name;
  }
}

TEST(Sandbox, MostBenignTracesAvoidFileEncryption) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto& vocab = ApiVocabulary::instance();
  const nn::TokenId crypt = vocab.require("CryptEncrypt");
  std::size_t tainted = 0;
  for (const auto& profile : benign_profiles()) {
    const auto trace = sandbox.benign_trace(profile, 0, 2'000);
    tainted += std::count(trace.begin(), trace.end(), crypt) > 0;
  }
  // Only the disk-encryption utility should touch CryptEncrypt.
  EXPECT_LE(tainted, 2u);
  EXPECT_GE(tainted, 1u);
}

TEST(Sandbox, BackgroundNoiseAppears) {
  SandboxConfig config;
  config.background_noise_rate = 0.3;
  const SandboxTraceGenerator sandbox(config);
  const auto& vocab = ApiVocabulary::instance();
  const nn::TokenId heap = vocab.require("HeapAlloc");
  const auto trace = sandbox.ransomware_trace(family("Ryuk"), 0, 2'000);
  EXPECT_GT(std::count(trace.begin(), trace.end(), heap), 20);
}

TEST(Sandbox, ZeroNoiseRateIsAllowed) {
  SandboxConfig config;
  config.background_noise_rate = 0.0;
  const SandboxTraceGenerator sandbox(config);
  EXPECT_GE(sandbox.ransomware_trace(family("Ryuk"), 0, 500).size(), 500u);
}

TEST(Sandbox, InvalidConfigRejected) {
  SandboxConfig config;
  config.background_noise_rate = 1.0;
  EXPECT_THROW(SandboxTraceGenerator{config}, PreconditionError);
}

TEST(Sandbox, VariantIndexValidated) {
  const SandboxTraceGenerator sandbox{SandboxConfig{}};
  const auto& ryuk = family("Ryuk");
  EXPECT_THROW(sandbox.ransomware_trace(ryuk, ryuk.variants, 500),
               PreconditionError);
}

}  // namespace
}  // namespace csdml::ransomware
