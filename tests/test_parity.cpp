// The fused table-driven datapaths exist purely for speed: every one of
// them must be indistinguishable from the seed's stage-by-stage reference
// loops. Fixed-point paths are bit-identical (integer arithmetic is exact
// under the fusion's reordering); the float path preserves the reference
// accumulation order, so it too must match to the last bit.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "csd/smartssd.hpp"
#include "kernels/engine.hpp"
#include "kernels/functional.hpp"
#include "kernels/gru_functional.hpp"
#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "xrt/runtime.hpp"

namespace csdml::kernels {
namespace {

nn::Sequence random_sequence(std::uint64_t seed, nn::TokenId vocab,
                             int length) {
  Rng rng(seed);
  nn::Sequence seq;
  for (int i = 0; i < length; ++i) {
    seq.push_back(static_cast<nn::TokenId>(rng.uniform_int(0, vocab - 1)));
  }
  return seq;
}

/// A few deliberately awkward shapes: default, odd hidden width, wide
/// embedding, single-unit corner.
std::vector<nn::LstmConfig> lstm_shapes() {
  std::vector<nn::LstmConfig> shapes(4);
  shapes[1].vocab_size = 53;
  shapes[1].embed_dim = 7;
  shapes[1].hidden_dim = 19;
  shapes[2].vocab_size = 31;
  shapes[2].embed_dim = 24;
  shapes[2].hidden_dim = 5;
  shapes[2].activation = nn::CellActivation::Tanh;
  shapes[3].vocab_size = 9;
  shapes[3].embed_dim = 1;
  shapes[3].hidden_dim = 1;
  return shapes;
}

TEST(FusedParity, InvariantScaleDividerMatchesMulRaw) {
  using fixedpt::InvariantScale;
  using fixedpt::ScaledFixed;
  for (const std::int64_t scale :
       {std::int64_t{1}, std::int64_t{3}, std::int64_t{1'000'000},
        std::int64_t{999'983}}) {
    const InvariantScale div(scale);
    Rng rng(static_cast<std::uint64_t>(scale));
    for (int trial = 0; trial < 20000; ++trial) {
      // Mix magnitudes: tiny, LSTM-typical, and past the double-exact
      // window so the wide fallback is exercised too (2^31 × 2^31 = 2^62
      // keeps the quotient in mul_raw's own domain even at scale 1).
      const std::int64_t lim =
          trial % 3 == 0 ? 100 : (trial % 3 == 1 ? 2'000'000 : (1LL << 31));
      const std::int64_t a = rng.uniform_int(-lim, lim);
      const std::int64_t b = rng.uniform_int(-lim, lim);
      ASSERT_EQ(div.mul(a, b), ScaledFixed::mul_raw(a, b, scale))
          << a << " * " << b << " / " << scale;
    }
    // Exact ties round away from zero, like round_div.
    EXPECT_EQ(div.mul(1, scale / 2 + scale % 2), 1);
    EXPECT_EQ(div.mul(-1, scale / 2 + scale % 2), -1);
  }
}

TEST(FusedParity, FloatBitIdenticalToReference) {
  std::uint64_t model_seed = 100;
  for (const nn::LstmConfig& config : lstm_shapes()) {
    Rng rng(model_seed++);
    const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
    const FloatDatapath path(config, params);
    FloatScratch scratch;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const nn::Sequence seq =
          random_sequence(seed, config.vocab_size, 40 + static_cast<int>(seed));
      const double reference = path.infer_reference(seq);
      EXPECT_DOUBLE_EQ(path.infer(seq), reference);
      // Scratch reuse across differently-sized calls must not change bits.
      EXPECT_DOUBLE_EQ(path.infer(seq, scratch), reference);
    }
  }
}

TEST(FusedParity, FixedBitIdenticalToReference) {
  std::uint64_t model_seed = 200;
  for (const nn::LstmConfig& config : lstm_shapes()) {
    Rng rng(model_seed++);
    const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
    const FixedDatapath path(config, params);
    FixedScratch scratch;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const nn::Sequence seq =
          random_sequence(seed, config.vocab_size, 40 + static_cast<int>(seed));
      const double reference = path.infer_reference(seq);
      EXPECT_DOUBLE_EQ(path.infer(seq), reference);
      EXPECT_DOUBLE_EQ(path.infer(seq, scratch), reference);
    }
  }
}

TEST(FusedParity, GruFixedBitIdenticalToReference) {
  for (std::uint64_t model_seed = 300; model_seed < 303; ++model_seed) {
    nn::GruConfig config;
    if (model_seed == 301) {
      config.vocab_size = 37;
      config.embed_dim = 5;
      config.hidden_dim = 13;
    }
    Rng rng(model_seed);
    const nn::GruParams params = nn::GruParams::glorot(config, rng);
    const FixedGruDatapath path(config, params);
    GruFixedScratch scratch;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const nn::Sequence seq =
          random_sequence(seed, config.vocab_size, 35 + static_cast<int>(seed));
      const double reference = path.infer_reference(seq);
      EXPECT_DOUBLE_EQ(path.infer(seq), reference);
      EXPECT_DOUBLE_EQ(path.infer(seq, scratch), reference);
    }
  }
}

TEST(FusedParity, EngineMatchesReferenceAtEveryOptimizationLevel) {
  nn::LstmConfig config;
  config.vocab_size = 61;
  config.embed_dim = 6;
  config.hidden_dim = 14;
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  const FloatDatapath float_ref(config, params);
  const FixedDatapath fixed_ref(config, params);

  for (const OptimizationLevel level :
       {OptimizationLevel::Vanilla, OptimizationLevel::II,
        OptimizationLevel::FixedPoint}) {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    EngineConfig engine_config;
    engine_config.level = level;
    CsdLstmEngine engine(device, config, params, engine_config);
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const nn::Sequence seq = random_sequence(seed, config.vocab_size, 50);
      const double expected = level == OptimizationLevel::FixedPoint
                                  ? fixed_ref.infer_reference(seq)
                                  : float_ref.infer_reference(seq);
      EXPECT_DOUBLE_EQ(engine.infer(seq).probability, expected)
          << "level " << static_cast<int>(level) << " seed " << seed;
    }
  }
}

TEST(FusedParity, EngineStaysBitExactAfterWeightHotSwap) {
  nn::LstmConfig config;
  config.vocab_size = 43;
  config.embed_dim = 6;
  config.hidden_dim = 11;
  Rng rng_a(11);
  Rng rng_b(22);
  const nn::LstmParams params_a = nn::LstmParams::glorot(config, rng_a);
  const nn::LstmParams params_b = nn::LstmParams::glorot(config, rng_b);
  const nn::Sequence seq = random_sequence(9, config.vocab_size, 64);

  for (const OptimizationLevel level :
       {OptimizationLevel::II, OptimizationLevel::FixedPoint}) {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    EngineConfig engine_config;
    engine_config.level = level;
    CsdLstmEngine engine(device, config, params_a, engine_config);
    const double before = engine.infer(seq).probability;

    // The CTI update path must rebuild the token table: the swapped-in
    // model has to answer exactly like an engine built from scratch on it.
    engine.update_weights(params_b);
    const double expected_b =
        level == OptimizationLevel::FixedPoint
            ? FixedDatapath(config, params_b).infer_reference(seq)
            : FloatDatapath(config, params_b).infer_reference(seq);
    EXPECT_DOUBLE_EQ(engine.infer(seq).probability, expected_b);
    EXPECT_NE(engine.infer(seq).probability, before);

    // And swapping back restores the original answer bit-for-bit.
    engine.update_weights(params_a);
    EXPECT_DOUBLE_EQ(engine.infer(seq).probability, before);
  }
}

TEST(FusedParity, BatchAgreesWithSingleStreamAcrossThreadCounts) {
  nn::LstmConfig config;
  config.vocab_size = 29;
  config.embed_dim = 5;
  config.hidden_dim = 9;
  Rng rng(31);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  std::vector<nn::Sequence> batch;
  for (std::uint64_t seed = 0; seed < 17; ++seed) {
    batch.push_back(random_sequence(seed, config.vocab_size,
                                    20 + static_cast<int>(seed % 5)));
  }

  for (const std::uint32_t threads : {1u, 4u}) {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    EngineConfig engine_config;
    engine_config.level = OptimizationLevel::FixedPoint;
    engine_config.batch_threads = threads;
    CsdLstmEngine engine(device, config, params, engine_config);
    const auto result = engine.infer_batch(batch);
    ASSERT_EQ(result.probabilities.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(result.probabilities[i],
                       engine.infer(batch[i]).probability)
          << "threads " << threads << " window " << i;
    }
  }
}

}  // namespace
}  // namespace csdml::kernels
