#include "kernels/engine.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::kernels {
namespace {

struct EngineFixture {
  nn::LstmConfig model_config;
  nn::LstmParams params;
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};

  EngineFixture() {
    Rng rng(33);
    params = nn::LstmParams::glorot(model_config, rng);
  }

  nn::Sequence sequence(std::uint64_t seed, int length = 100) const {
    Rng rng(seed);
    nn::Sequence seq;
    for (int i = 0; i < length; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, model_config.vocab_size - 1)));
    }
    return seq;
  }
};

TEST(Engine, FixedPointInferMatchesFixedDatapath) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params,
                       EngineConfig{.level = OptimizationLevel::FixedPoint});
  const FixedDatapath reference(f.model_config, f.params);
  const nn::Sequence seq = f.sequence(1);
  const InferenceResult result = engine.infer(seq);
  EXPECT_DOUBLE_EQ(result.probability, reference.infer(seq));
  EXPECT_EQ(result.label, result.probability >= 0.5 ? 1 : 0);
}

TEST(Engine, VanillaInferMatchesFloatDatapath) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params,
                       EngineConfig{.level = OptimizationLevel::Vanilla});
  const FloatDatapath reference(f.model_config, f.params);
  const nn::Sequence seq = f.sequence(2);
  EXPECT_DOUBLE_EQ(engine.infer(seq).probability, reference.infer(seq));
}

TEST(Engine, PerItemTimingsReproduceFig3Totals) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params,
                       EngineConfig{.level = OptimizationLevel::FixedPoint});
  const KernelTimings timings = engine.per_item_timings();
  EXPECT_NEAR(timings.total().as_microseconds(), 2.15133, 0.22);

  csd::SmartSsd board2{csd::SmartSsdConfig{}};
  xrt::Device device2{board2};
  CsdLstmEngine vanilla(device2, f.model_config, f.params,
                        EngineConfig{.level = OptimizationLevel::Vanilla});
  EXPECT_NEAR(vanilla.per_item_timings().total().as_microseconds(), 7.153, 0.72);
}

TEST(Engine, SequenceTimeScalesWithLengthAndOverlapsPreprocess) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params,
                       EngineConfig{.level = OptimizationLevel::FixedPoint});
  const KernelTimings per_item = engine.per_item_timings();
  const auto t10 = engine.infer(f.sequence(3, 10)).device_time;
  const auto t100 = engine.infer(f.sequence(3, 100)).device_time;
  // Steady-state slope = gates + hidden (preprocess runs one item ahead).
  const Duration steady = per_item.gates + per_item.hidden_state;
  EXPECT_NEAR((t100 - t10).as_microseconds(), steady.as_microseconds() * 90.0,
              1e-6);
  // Preprocess is exposed exactly once per sequence.
  EXPECT_NEAR(t10.as_microseconds(),
              per_item.preprocess.as_microseconds() +
                  10 * steady.as_microseconds(),
              1e-6);
}

TEST(Engine, FewerComputeUnitsAreSlower) {
  EngineFixture f;
  CsdLstmEngine four(f.device, f.model_config, f.params,
                     EngineConfig{.level = OptimizationLevel::Vanilla,
                                  .gate_cu_count = 4});
  csd::SmartSsd board1{csd::SmartSsdConfig{}};
  xrt::Device device1{board1};
  CsdLstmEngine one(device1, f.model_config, f.params,
                    EngineConfig{.level = OptimizationLevel::Vanilla,
                                 .gate_cu_count = 1});
  csd::SmartSsd board2{csd::SmartSsdConfig{}};
  xrt::Device device2{board2};
  CsdLstmEngine two(device2, f.model_config, f.params,
                    EngineConfig{.level = OptimizationLevel::Vanilla,
                                 .gate_cu_count = 2});

  const double t4 = four.per_item_timings().gates.as_microseconds();
  const double t2 = two.per_item_timings().gates.as_microseconds();
  const double t1 = one.per_item_timings().gates.as_microseconds();
  EXPECT_NEAR(t2, t4 * 2.0, 1e-9);
  EXPECT_NEAR(t1, t4 * 4.0, 1e-9);
}

TEST(Engine, CuCountDoesNotChangeResults) {
  EngineFixture f;
  CsdLstmEngine four(f.device, f.model_config, f.params,
                     EngineConfig{.level = OptimizationLevel::FixedPoint,
                                  .gate_cu_count = 4});
  csd::SmartSsd board1{csd::SmartSsdConfig{}};
  xrt::Device device1{board1};
  CsdLstmEngine one(device1, f.model_config, f.params,
                    EngineConfig{.level = OptimizationLevel::FixedPoint,
                                 .gate_cu_count = 1});
  const nn::Sequence seq = f.sequence(5);
  EXPECT_DOUBLE_EQ(four.infer(seq).probability, one.infer(seq).probability);
}

TEST(Engine, InferFromSsdP2pBeatsHostPath) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params, EngineConfig{});
  const nn::Sequence seq = f.sequence(7);
  const auto p2p = engine.infer_from_ssd(2048, 1, seq, /*p2p=*/true);

  csd::SmartSsd board2{csd::SmartSsdConfig{}};
  xrt::Device device2{board2};
  CsdLstmEngine engine2(device2, f.model_config, f.params, EngineConfig{});
  const auto host = engine2.infer_from_ssd(2048, 1, seq, /*p2p=*/false);

  EXPECT_LT(p2p.transfer_time.picos, host.transfer_time.picos);
  EXPECT_DOUBLE_EQ(p2p.inference.probability, host.inference.probability);
}

TEST(Engine, PlacesResourcesOnFpga) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params, EngineConfig{});
  EXPECT_GT(engine.fpga_utilization(), 0.0);
  EXPECT_LT(engine.fpga_utilization(), 1.0);
}

TEST(Engine, LoadsFromSnapshot) {
  EngineFixture f;
  const nn::ModelSnapshot snapshot{f.model_config, f.params};
  CsdLstmEngine engine(f.device, snapshot,
                       EngineConfig{.level = OptimizationLevel::FixedPoint});
  EXPECT_GT(engine.infer(f.sequence(9)).device_time.picos, 0);
}

TEST(Engine, RejectsBadCuCount) {
  EngineFixture f;
  EXPECT_THROW(CsdLstmEngine(f.device, f.model_config, f.params,
                             EngineConfig{.gate_cu_count = 0}),
               PreconditionError);
  EXPECT_THROW(CsdLstmEngine(f.device, f.model_config, f.params,
                             EngineConfig{.gate_cu_count = 5}),
               PreconditionError);
}

TEST(Engine, UpdateWeightsSwapsTheModelInPlace) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params,
                       EngineConfig{.level = OptimizationLevel::FixedPoint});
  const nn::Sequence seq = f.sequence(13);
  const double before = engine.infer(seq).probability;
  EXPECT_EQ(engine.weight_updates(), 1u);

  Rng rng(99);
  const nn::LstmParams fresh = nn::LstmParams::glorot(f.model_config, rng);
  const TimePoint t_before = f.device.now();
  engine.update_weights(fresh);
  EXPECT_EQ(engine.weight_updates(), 2u);
  EXPECT_GT(f.device.now().picos, t_before.picos);  // restaging costs time

  const double after = engine.infer(seq).probability;
  EXPECT_NE(before, after);
  // The new behaviour matches a fresh engine built on the new params.
  csd::SmartSsd board2{csd::SmartSsdConfig{}};
  xrt::Device device2{board2};
  CsdLstmEngine reference(device2, f.model_config, fresh,
                          EngineConfig{.level = OptimizationLevel::FixedPoint});
  EXPECT_DOUBLE_EQ(after, reference.infer(seq).probability);
}

TEST(Engine, UpdateWeightsRejectsArchitectureChange) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params, EngineConfig{});
  nn::LstmConfig other = f.model_config;
  other.hidden_dim = 16;
  Rng rng(1);
  EXPECT_THROW(engine.update_weights(nn::LstmParams::glorot(other, rng)),
               PreconditionError);
}

TEST(Engine, UpdateWeightsDoesNotReloadXclbin) {
  // The paper: compiled once, updated at the operator's discretion —
  // utilization must not grow across updates.
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params, EngineConfig{});
  const double util_before = engine.fpga_utilization();
  Rng rng(5);
  engine.update_weights(nn::LstmParams::glorot(f.model_config, rng));
  EXPECT_DOUBLE_EQ(engine.fpga_utilization(), util_before);
}

TEST(Engine, EmptySequenceThrows) {
  EngineFixture f;
  CsdLstmEngine engine(f.device, f.model_config, f.params, EngineConfig{});
  EXPECT_THROW(engine.infer({}), PreconditionError);
}

}  // namespace
}  // namespace csdml::kernels
