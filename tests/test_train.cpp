#include "nn/train.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(BceLoss, MatchesClosedForm) {
  EXPECT_NEAR(bce_loss(0.9, 1), -std::log(0.9), 1e-12);
  EXPECT_NEAR(bce_loss(0.9, 0), -std::log(0.1), 1e-12);
  EXPECT_NEAR(bce_loss(0.5, 1), std::log(2.0), 1e-12);
}

TEST(BceLoss, ClampsExtremeProbabilities) {
  EXPECT_TRUE(std::isfinite(bce_loss(0.0, 1)));
  EXPECT_TRUE(std::isfinite(bce_loss(1.0, 0)));
  EXPECT_THROW(bce_loss(0.5, 2), PreconditionError);
}

TEST(Adam, MovesParametersAgainstGradient) {
  double param = 1.0;
  double grad = 0.5;  // positive gradient -> parameter must decrease
  AdamOptimizer adam({.learning_rate = 0.1}, 1);
  adam.step({&param}, {&grad}, 1.0);
  EXPECT_LT(param, 1.0);
  EXPECT_EQ(adam.updates_applied(), 1u);
}

TEST(Adam, FirstStepSizeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(gradient).
  double param = 0.0;
  double grad = 3.0;
  AdamOptimizer adam({.learning_rate = 0.01}, 1);
  adam.step({&param}, {&grad}, 1.0);
  EXPECT_NEAR(param, -0.01, 1e-5);
}

TEST(Adam, ScaleDividesGradients) {
  double p1 = 0.0;
  double g1 = 4.0;
  AdamOptimizer a1({.learning_rate = 0.01}, 1);
  a1.step({&p1}, {&g1}, 4.0);

  double p2 = 0.0;
  double g2 = 1.0;
  AdamOptimizer a2({.learning_rate = 0.01}, 1);
  a2.step({&p2}, {&g2}, 1.0);
  EXPECT_NEAR(p1, p2, 1e-12);
}

TEST(Adam, Guards) {
  EXPECT_THROW(AdamOptimizer({}, 0), PreconditionError);
  double p = 0.0;
  double g = 0.0;
  AdamOptimizer adam({}, 1);
  EXPECT_THROW(adam.step({&p, &p}, {&g}, 1.0), PreconditionError);
  EXPECT_THROW(adam.step({&p}, {&g}, 0.0), PreconditionError);
}

/// A trivially separable task: token 0 means label 0, token 1 means 1.
SequenceDataset toy_dataset(std::size_t n, std::size_t len) {
  SequenceDataset ds;
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    Sequence seq(len, static_cast<TokenId>(label));
    // sprinkle a few neutral tokens
    for (std::size_t j = 0; j < len; j += 3) {
      seq[j] = static_cast<TokenId>(rng.uniform_int(2, 4));
    }
    ds.sequences.push_back(std::move(seq));
    ds.labels.push_back(label);
  }
  return ds;
}

TEST(Train, LearnsSeparableToyTask) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(7);
  LstmClassifier model(config, rng);
  const SequenceDataset train_set = toy_dataset(64, 12);
  const SequenceDataset test_set = toy_dataset(32, 12);

  TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 8;
  tc.learning_rate = 0.02;
  const TrainResult result = train(model, train_set, test_set, tc);
  EXPECT_GE(result.best_test_accuracy, 0.95);
  EXPECT_FALSE(result.history.empty());
  // Loss should fall substantially from the first to the last epoch.
  EXPECT_LT(result.history.back().mean_train_loss,
            result.history.front().mean_train_loss);
}

TEST(Train, HistoryRespectsEvaluateEvery) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(9);
  LstmClassifier model(config, rng);
  const SequenceDataset data = toy_dataset(8, 6);
  TrainConfig tc;
  tc.epochs = 10;
  tc.evaluate_every = 3;
  const TrainResult result = train(model, data, data, tc);
  // Epochs 3, 6, 9 plus the forced final epoch 10.
  ASSERT_EQ(result.history.size(), 4u);
  EXPECT_EQ(result.history[0].epoch, 3u);
  EXPECT_EQ(result.history.back().epoch, 10u);
}

TEST(Train, ProgressCallbackFires) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(11);
  LstmClassifier model(config, rng);
  const SequenceDataset data = toy_dataset(8, 6);
  TrainConfig tc;
  tc.epochs = 3;
  std::size_t calls = 0;
  train(model, data, data, tc, [&](const EpochRecord&) { ++calls; });
  EXPECT_EQ(calls, 3u);
}

TEST(Train, DeterministicForFixedSeeds) {
  const SequenceDataset data = toy_dataset(16, 8);
  TrainConfig tc;
  tc.epochs = 4;

  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng1(13);
  LstmClassifier m1(config, rng1);
  const TrainResult r1 = train(m1, data, data, tc);

  Rng rng2(13);
  LstmClassifier m2(config, rng2);
  const TrainResult r2 = train(m2, data, data, tc);

  ASSERT_EQ(r1.history.size(), r2.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.history[i].mean_train_loss, r2.history[i].mean_train_loss);
    EXPECT_DOUBLE_EQ(r1.history[i].test_accuracy, r2.history[i].test_accuracy);
  }
}

TEST(Train, Guards) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(15);
  LstmClassifier model(config, rng);
  const SequenceDataset data = toy_dataset(4, 4);
  TrainConfig tc;
  tc.epochs = 0;
  EXPECT_THROW(train(model, data, data, tc), PreconditionError);
  tc.epochs = 1;
  EXPECT_THROW(train(model, SequenceDataset{}, data, tc), PreconditionError);
}

TEST(Evaluate, MatchesManualPredictions) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(17);
  LstmClassifier model(config, rng);
  const SequenceDataset data = toy_dataset(10, 5);
  const ConfusionMatrix cm = evaluate(model, data);
  EXPECT_EQ(cm.total(), data.size());
  std::size_t manual_correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    manual_correct += model.predict(data.sequences[i]) == data.labels[i];
  }
  EXPECT_DOUBLE_EQ(cm.accuracy(),
                   static_cast<double>(manual_correct) /
                       static_cast<double>(data.size()));
}

}  // namespace
}  // namespace csdml::nn
