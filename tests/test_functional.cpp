#include "kernels/functional.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace csdml::kernels {
namespace {

struct Models {
  nn::LstmConfig config;
  nn::LstmParams params;
  Models() {
    Rng rng(21);
    params = nn::LstmParams::glorot(config, rng);
  }
  nn::Sequence random_sequence(std::uint64_t seed, int length = 40) const {
    Rng rng(seed);
    nn::Sequence seq;
    for (int i = 0; i < length; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, config.vocab_size - 1)));
    }
    return seq;
  }
};

TEST(FloatDatapath, MatchesOfflineModelBitForBit) {
  const Models m;
  const FloatDatapath datapath(m.config, m.params);
  const nn::LstmClassifier reference(m.config, m.params);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const nn::Sequence seq = m.random_sequence(seed);
    EXPECT_DOUBLE_EQ(datapath.infer(seq), reference.forward(seq, nullptr))
        << "seed " << seed;
  }
}

TEST(FloatDatapath, KernelDecompositionMatchesMonolith) {
  // Step through preprocess -> gates -> hidden manually and compare with
  // the classifier's own step().
  const Models m;
  const FloatDatapath datapath(m.config, m.params);
  const nn::LstmClassifier reference(m.config, m.params);

  nn::Vector h(m.config.hidden_dim, 0.0);
  nn::Vector c(m.config.hidden_dim, 0.0);
  nn::Vector h_ref(m.config.hidden_dim, 0.0);
  nn::Vector c_ref(m.config.hidden_dim, 0.0);
  for (const nn::TokenId token : m.random_sequence(3, 20)) {
    const nn::Vector x = datapath.preprocess(token);
    const GateVectors gates = datapath.gates(x, h);
    datapath.hidden_state(gates, c, h);
    reference.step(reference.embed(token), h_ref, c_ref, nullptr);
    for (std::size_t j = 0; j < h.size(); ++j) {
      EXPECT_DOUBLE_EQ(h[j], h_ref[j]);
      EXPECT_DOUBLE_EQ(c[j], c_ref[j]);
    }
  }
}

TEST(FloatDatapath, PreprocessIsEmbeddingRow) {
  const Models m;
  const FloatDatapath datapath(m.config, m.params);
  const nn::Vector x = datapath.preprocess(42);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i], m.params.embedding(42, i));
  }
  EXPECT_THROW(datapath.preprocess(-1), PreconditionError);
  EXPECT_THROW(datapath.preprocess(m.config.vocab_size), PreconditionError);
}

TEST(FixedDatapath, TracksFloatWithinQuantisationError) {
  const Models m;
  const FloatDatapath float_path(m.config, m.params);
  const FixedDatapath fixed_path(m.config, m.params);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const nn::Sequence seq = m.random_sequence(seed, 60);
    const double pf = float_path.infer(seq);
    const double px = fixed_path.infer(seq);
    // The PLAN sigmoid's 0.019 max error dominates the gap.
    EXPECT_NEAR(px, pf, 0.08) << "seed " << seed;
  }
}

TEST(FixedDatapath, DecisionsAgreeOnConfidentInputs) {
  // An untrained model keeps every logit near zero, so scale the dense
  // head up to spread the outputs away from 0.5 the way a trained model's
  // are (the integration test covers the genuinely trained case).
  Models m;
  for (auto& w : m.params.dense_w) w *= 30.0;
  const FloatDatapath float_path(m.config, m.params);
  const FixedDatapath fixed_path(m.config, m.params);
  int checked = 0;
  int agreed = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const nn::Sequence seq = m.random_sequence(seed, 60);
    const double pf = float_path.infer(seq);
    if (std::abs(pf - 0.5) < 0.1) continue;  // skip borderline inputs
    ++checked;
    agreed += (pf >= 0.5) == (fixed_path.infer(seq) >= 0.5);
  }
  ASSERT_GT(checked, 50);
  EXPECT_GE(static_cast<double>(agreed) / static_cast<double>(checked), 0.99);
}

TEST(FixedDatapath, CoarserScaleIsLessFaithful) {
  const Models m;
  const FloatDatapath float_path(m.config, m.params);
  const FixedDatapath fine(m.config, m.params, 1'000'000);
  const FixedDatapath coarse(m.config, m.params, 1'000);
  double fine_err = 0.0;
  double coarse_err = 0.0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const nn::Sequence seq = m.random_sequence(seed, 40);
    const double pf = float_path.infer(seq);
    fine_err += std::abs(fine.infer(seq) - pf);
    coarse_err += std::abs(coarse.infer(seq) - pf);
  }
  EXPECT_LT(fine_err, coarse_err);
}

TEST(FixedDatapath, GateOutputsAreValidActivations) {
  const Models m;
  const FixedDatapath fixed_path(m.config, m.params);
  FixedVector h(m.config.hidden_dim, fixedpt::ScaledFixed::from_raw(0));
  const FixedVector x = fixed_path.preprocess(7);
  const FixedGateVectors gates = fixed_path.gates(x, h);
  for (std::size_t g = 0; g < nn::kNumGates; ++g) {
    for (const auto& value : gates.act[g]) {
      const double v = value.to_double();
      if (g == nn::kCandidate) {
        EXPECT_GE(v, -1.0);
        EXPECT_LE(v, 1.0);
      } else {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

TEST(FixedDatapath, InferIsDeterministic) {
  const Models m;
  const FixedDatapath fixed_path(m.config, m.params);
  const nn::Sequence seq = m.random_sequence(11, 50);
  EXPECT_DOUBLE_EQ(fixed_path.infer(seq), fixed_path.infer(seq));
}

TEST(Datapaths, EmptySequenceThrows) {
  const Models m;
  EXPECT_THROW(FloatDatapath(m.config, m.params).infer({}), PreconditionError);
  EXPECT_THROW(FixedDatapath(m.config, m.params).infer({}), PreconditionError);
}

}  // namespace
}  // namespace csdml::kernels
