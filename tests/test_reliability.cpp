// NAND reliability / failure-injection tests (ECC model).
#include <gtest/gtest.h>

#include "csd/ssd.hpp"

namespace csdml::csd {
namespace {

TEST(Reliability, ZeroBerMeansNoEccActivity) {
  NandConfig cfg;
  cfg.raw_bit_error_rate = 0.0;
  NandArray nand(cfg);
  for (int i = 0; i < 50; ++i) {
    const auto result = nand.read_page({0, 0, static_cast<std::uint64_t>(i)},
                                       TimePoint{}, nullptr);
    EXPECT_EQ(result.raw_bit_errors, 0u);
    EXPECT_FALSE(result.uncorrectable);
  }
  EXPECT_EQ(nand.corrected_reads(), 0u);
  EXPECT_EQ(nand.uncorrectable_reads(), 0u);
}

TEST(Reliability, MidLifeBerIsFullyCorrected) {
  // 1e-5 raw BER over a 16 KiB page ~ 1.3 errors/read: routinely corrected
  // by a 40-bit LDPC budget, never uncorrectable.
  NandConfig cfg;
  cfg.raw_bit_error_rate = 1e-5;
  NandArray nand(cfg);
  std::uint32_t total_errors = 0;
  for (int i = 0; i < 300; ++i) {
    const auto result = nand.read_page({0, 0, static_cast<std::uint64_t>(i)},
                                       TimePoint{}, nullptr);
    total_errors += result.raw_bit_errors;
    EXPECT_FALSE(result.uncorrectable);
  }
  EXPECT_GT(total_errors, 100u);  // errors did occur...
  EXPECT_GT(nand.corrected_reads(), 100u);
  EXPECT_EQ(nand.uncorrectable_reads(), 0u);  // ...and ECC ate them all
}

TEST(Reliability, CorrectionAddsDecodeLatency) {
  NandConfig clean;
  clean.raw_bit_error_rate = 0.0;
  NandConfig noisy = clean;
  noisy.raw_bit_error_rate = 1e-4;  // ~13 errors/read, always correcting
  NandArray clean_nand(clean);
  NandArray noisy_nand(noisy);
  const TimePoint clean_done =
      clean_nand.read_page({0, 0, 0}, TimePoint{}, nullptr).done;
  const auto noisy_read = noisy_nand.read_page({0, 0, 0}, TimePoint{}, nullptr);
  ASSERT_GT(noisy_read.raw_bit_errors, 0u);
  EXPECT_EQ((noisy_read.done - clean_done).picos,
            noisy.ecc_correction_latency.picos);
}

TEST(Reliability, WornFlashProducesUncorrectableReads) {
  // End-of-life BER with a weak ECC budget: failures must surface.
  NandConfig cfg;
  cfg.raw_bit_error_rate = 5e-4;     // ~65 errors per 16 KiB page
  cfg.ecc_correctable_bits = 4;      // deliberately weak
  NandArray nand(cfg);
  std::uint32_t uncorrectable = 0;
  for (int i = 0; i < 200; ++i) {
    uncorrectable +=
        nand.read_page({0, 0, static_cast<std::uint64_t>(i)}, TimePoint{}, nullptr)
            .uncorrectable;
  }
  EXPECT_GT(uncorrectable, 20u);
  EXPECT_EQ(nand.uncorrectable_reads(), uncorrectable);
}

TEST(Reliability, DeterministicForSeed) {
  NandConfig cfg;
  cfg.raw_bit_error_rate = 1e-4;
  NandArray a(cfg);
  NandArray b(cfg);
  for (int i = 0; i < 50; ++i) {
    const auto ra = a.read_page({0, 0, static_cast<std::uint64_t>(i)},
                                TimePoint{}, nullptr);
    const auto rb = b.read_page({0, 0, static_cast<std::uint64_t>(i)},
                                TimePoint{}, nullptr);
    EXPECT_EQ(ra.raw_bit_errors, rb.raw_bit_errors);
  }
}

TEST(Reliability, SsdRetriesAndFlagsUncorrectable) {
  // Drive-level behaviour: a read-retry absorbs one-off failures; only a
  // persistent double failure surfaces to the caller.
  SsdConfig cfg;
  cfg.nand.raw_bit_error_rate = 3e-4;  // ~39 errors/page, ~5 per codeword
  cfg.nand.ecc_correctable_bits = 8;   // fails on the tail (~6% per codeword)
  SsdController ssd(cfg);
  std::size_t flagged = 0;
  const int kReads = 60;
  for (int i = 0; i < kReads; ++i) {
    flagged += ssd.read(static_cast<std::uint64_t>(i) * 4, 1, TimePoint{})
                   .uncorrectable;
  }
  // With per-read failure probability p, post-retry probability is ~p^2:
  // flags happen, but far less often than raw failures.
  EXPECT_GT(ssd.nand().uncorrectable_reads(), flagged);
  EXPECT_LT(flagged, static_cast<std::size_t>(kReads));
}

TEST(Reliability, HealthyDriveNeverFlags) {
  SsdConfig cfg;  // default 1e-9 BER, 40-bit ECC
  SsdController ssd(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ssd.read(static_cast<std::uint64_t>(i) * 4, 1, TimePoint{})
                     .uncorrectable);
  }
}

TEST(Reliability, ConfigValidated) {
  NandConfig cfg;
  cfg.raw_bit_error_rate = 1.5;
  EXPECT_THROW(NandArray{cfg}, PreconditionError);
  cfg.raw_bit_error_rate = -0.1;
  EXPECT_THROW(NandArray{cfg}, PreconditionError);
}

}  // namespace
}  // namespace csdml::csd
