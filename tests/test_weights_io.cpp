#include "nn/weights_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(WeightsIo, RoundTripIsExact) {
  LstmConfig config{.vocab_size = 9, .embed_dim = 3, .hidden_dim = 5,
                    .activation = CellActivation::Softsign};
  Rng rng(3);
  const LstmParams params = LstmParams::glorot(config, rng);

  std::stringstream buffer;
  save_weights(buffer, config, params);
  const ModelSnapshot loaded = load_weights(buffer);

  EXPECT_EQ(loaded.config.vocab_size, config.vocab_size);
  EXPECT_EQ(loaded.config.embed_dim, config.embed_dim);
  EXPECT_EQ(loaded.config.hidden_dim, config.hidden_dim);
  EXPECT_EQ(loaded.config.activation, config.activation);

  for (std::size_t i = 0; i < params.embedding.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.params.embedding.data()[i], params.embedding.data()[i]);
  }
  for (std::size_t g = 0; g < kNumGates; ++g) {
    for (std::size_t i = 0; i < params.w_x[g].size(); ++i) {
      EXPECT_DOUBLE_EQ(loaded.params.w_x[g].data()[i], params.w_x[g].data()[i]);
    }
    for (std::size_t i = 0; i < params.w_h[g].size(); ++i) {
      EXPECT_DOUBLE_EQ(loaded.params.w_h[g].data()[i], params.w_h[g].data()[i]);
    }
    EXPECT_EQ(loaded.params.bias[g], params.bias[g]);
  }
  EXPECT_EQ(loaded.params.dense_w, params.dense_w);
  EXPECT_DOUBLE_EQ(loaded.params.dense_b, params.dense_b);
}

TEST(WeightsIo, LoadedModelPredictsIdentically) {
  LstmConfig config;
  Rng rng(5);
  const LstmClassifier original(config, rng);

  std::stringstream buffer;
  save_weights(buffer, config, original.params());
  const ModelSnapshot snapshot = load_weights(buffer);
  const LstmClassifier restored(snapshot.config, snapshot.params);

  Rng token_rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Sequence seq;
    for (int i = 0; i < 30; ++i) {
      seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
    }
    EXPECT_DOUBLE_EQ(original.forward(seq, nullptr),
                     restored.forward(seq, nullptr));
  }
}

TEST(WeightsIo, TanhActivationRoundTrips) {
  LstmConfig config{.vocab_size = 4, .embed_dim = 2, .hidden_dim = 3,
                    .activation = CellActivation::Tanh};
  Rng rng(9);
  std::stringstream buffer;
  save_weights(buffer, config, LstmParams::glorot(config, rng));
  EXPECT_EQ(load_weights(buffer).config.activation, CellActivation::Tanh);
}

TEST(WeightsIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csdml_weights.txt";
  LstmConfig config{.vocab_size = 4, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(11);
  const LstmParams params = LstmParams::glorot(config, rng);
  save_weights_file(path, config, params);
  const ModelSnapshot loaded = load_weights_file(path);
  EXPECT_DOUBLE_EQ(loaded.params.dense_b, params.dense_b);
  std::remove(path.c_str());
}

TEST(WeightsIo, RejectsMalformedInput) {
  {
    std::stringstream buffer("not-a-weight-file");
    EXPECT_THROW(load_weights(buffer), ParseError);
  }
  {
    std::stringstream buffer("csdml-weights v999 ");
    EXPECT_THROW(load_weights(buffer), ParseError);
  }
  {
    std::stringstream buffer("csdml-weights v1 activation relu");
    EXPECT_THROW(load_weights(buffer), ParseError);
  }
  {
    // Truncated after the header.
    std::stringstream buffer("csdml-weights v1 activation softsign vocab 4 "
                             "embed 2 hidden 3 embedding 0.1 0.2");
    EXPECT_THROW(load_weights(buffer), ParseError);
  }
  EXPECT_THROW(load_weights_file("/nonexistent/weights.txt"), ParseError);
}

/// A valid small weight file as text, for corruption-based negative paths.
std::string small_weight_text() {
  LstmConfig config{.vocab_size = 4, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(17);
  std::stringstream buffer;
  save_weights(buffer, config, LstmParams::glorot(config, rng));
  return buffer.str();
}

std::string write_temp(const char* name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

TEST(WeightsIo, TruncatedFileFailsCleanly) {
  const std::string text = small_weight_text();
  // Chop the file at several depths: mid-header, mid-matrix, and just
  // before the final bias. Every cut must surface as a ParseError, never
  // a crash or a silently short model.
  for (const std::size_t keep :
       {text.size() / 8, text.size() / 2, text.size() - 4}) {
    const std::string path =
        write_temp("csdml_truncated_weights.txt", text.substr(0, keep));
    EXPECT_THROW(load_weights_file(path), ParseError) << "keep=" << keep;
    std::remove(path.c_str());
  }
}

TEST(WeightsIo, BadMagicFailsCleanly) {
  std::string text = small_weight_text();
  text.replace(0, 13, "csdml-wrights");  // same length, wrong magic
  const std::string path = write_temp("csdml_bad_magic_weights.txt", text);
  EXPECT_THROW(load_weights_file(path), ParseError);
  std::remove(path.c_str());
}

TEST(WeightsIo, DimensionMismatchFailsCleanly) {
  const std::string text = small_weight_text();
  {
    // Header claims a larger hidden dim than the payload carries: the
    // reader runs out of numbers where it expects more matrix entries.
    std::string grown = text;
    const std::size_t at = grown.find("hidden 3");
    ASSERT_NE(at, std::string::npos);
    grown.replace(at, 8, "hidden 9");
    std::stringstream buffer(grown);
    EXPECT_THROW(load_weights(buffer), ParseError);
  }
  {
    // Header claims a smaller embed dim: leftover numbers land where the
    // next section keyword belongs.
    std::string shrunk = text;
    const std::size_t at = shrunk.find("embed 2");
    ASSERT_NE(at, std::string::npos);
    shrunk.replace(at, 7, "embed 1");
    std::stringstream buffer(shrunk);
    EXPECT_THROW(load_weights(buffer), ParseError);
  }
  {
    // Zero dimensions are rejected before any allocation happens.
    std::string zeroed = text;
    const std::size_t at = zeroed.find("vocab 4");
    ASSERT_NE(at, std::string::npos);
    zeroed.replace(at, 7, "vocab 0");
    std::stringstream buffer(zeroed);
    EXPECT_THROW(load_weights(buffer), PreconditionError);
  }
}

TEST(GruWeightsIo, RoundTripIsExact) {
  GruConfig config{.vocab_size = 9, .embed_dim = 3, .hidden_dim = 5};
  Rng rng(5);
  const GruParams params = GruParams::glorot(config, rng);
  std::stringstream buffer;
  save_gru_weights(buffer, config, params);
  const GruModelSnapshot loaded = load_gru_weights(buffer);
  EXPECT_EQ(loaded.config.vocab_size, config.vocab_size);
  EXPECT_EQ(loaded.config.hidden_dim, config.hidden_dim);
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    for (std::size_t i = 0; i < params.w_h[g].size(); ++i) {
      EXPECT_DOUBLE_EQ(loaded.params.w_h[g].data()[i], params.w_h[g].data()[i]);
    }
    EXPECT_EQ(loaded.params.bias[g], params.bias[g]);
  }
  EXPECT_DOUBLE_EQ(loaded.params.dense_b, params.dense_b);
}

TEST(GruWeightsIo, RestoredModelPredictsIdentically) {
  GruConfig config;
  Rng rng(7);
  const GruClassifier original(config, rng);
  std::stringstream buffer;
  save_gru_weights(buffer, config, original.params());
  const GruModelSnapshot snapshot = load_gru_weights(buffer);
  const GruClassifier restored(snapshot.config, snapshot.params);
  Rng token_rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    Sequence seq;
    for (int i = 0; i < 30; ++i) {
      seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
    }
    EXPECT_DOUBLE_EQ(original.forward(seq, nullptr),
                     restored.forward(seq, nullptr));
  }
}

TEST(GruWeightsIo, MagicDistinguishesModelFamilies) {
  // An LSTM file must not load as a GRU and vice versa.
  LstmConfig lstm_config{.vocab_size = 4, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(11);
  std::stringstream lstm_file;
  save_weights(lstm_file, lstm_config, LstmParams::glorot(lstm_config, rng));
  EXPECT_THROW(load_gru_weights(lstm_file), ParseError);

  GruConfig gru_config{.vocab_size = 4, .embed_dim = 2, .hidden_dim = 3};
  std::stringstream gru_file;
  save_gru_weights(gru_file, gru_config, GruParams::glorot(gru_config, rng));
  EXPECT_THROW(load_weights(gru_file), ParseError);
}

TEST(GruWeightsIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csdml_gru_weights.txt";
  GruConfig config{.vocab_size = 4, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(13);
  const GruParams params = GruParams::glorot(config, rng);
  save_gru_weights_file(path, config, params);
  EXPECT_DOUBLE_EQ(load_gru_weights_file(path).params.dense_b, params.dense_b);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csdml::nn
