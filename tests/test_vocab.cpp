#include "ransomware/api_vocab.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace csdml::ransomware {
namespace {

TEST(Vocab, ExactlyPaperSized) {
  // 278 x embedding dim 8 = the paper's 2,224 embedding parameters.
  EXPECT_EQ(ApiVocabulary::instance().size(), 278u);
}

TEST(Vocab, NamesAreUnique) {
  const auto& vocab = ApiVocabulary::instance();
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    names.insert(vocab.call(static_cast<nn::TokenId>(i)).name);
  }
  EXPECT_EQ(names.size(), vocab.size());
}

TEST(Vocab, TokenLookupRoundTrips) {
  const auto& vocab = ApiVocabulary::instance();
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    const auto token = static_cast<nn::TokenId>(i);
    const auto found = vocab.token_of(vocab.call(token).name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, token);
  }
}

TEST(Vocab, UnknownNamesHandled) {
  const auto& vocab = ApiVocabulary::instance();
  EXPECT_FALSE(vocab.token_of("NotARealApiCall").has_value());
  EXPECT_THROW(vocab.require("NotARealApiCall"), PreconditionError);
  EXPECT_THROW(vocab.call(-1), PreconditionError);
  EXPECT_THROW(vocab.call(278), PreconditionError);
}

TEST(Vocab, CategoryTokensPartitionTheVocabulary) {
  const auto& vocab = ApiVocabulary::instance();
  std::size_t total = 0;
  std::set<nn::TokenId> seen;
  for (int c = 0; c <= static_cast<int>(ApiCategory::Misc); ++c) {
    const auto& tokens = vocab.category_tokens(static_cast<ApiCategory>(c));
    total += tokens.size();
    for (const nn::TokenId t : tokens) {
      EXPECT_EQ(vocab.call(t).category, static_cast<ApiCategory>(c));
      seen.insert(t);
    }
  }
  EXPECT_EQ(total, vocab.size());
  EXPECT_EQ(seen.size(), vocab.size());
}

TEST(Vocab, SignatureCallsPresent) {
  // Calls the motifs and the paper's threat model depend on.
  const auto& vocab = ApiVocabulary::instance();
  for (const char* name :
       {"CryptEncrypt", "BCryptEncrypt", "FindFirstFileW", "FindNextFileW",
        "WriteFile", "MoveFileExW", "NetShareEnum", "RegSetValueExW",
        "CreateProcessW", "IsDebuggerPresent"}) {
    EXPECT_TRUE(vocab.token_of(name).has_value()) << name;
  }
  EXPECT_EQ(vocab.call(vocab.require("CryptEncrypt")).category,
            ApiCategory::Crypto);
  EXPECT_EQ(vocab.call(vocab.require("NetShareEnum")).category,
            ApiCategory::Propagation);
}

TEST(Vocab, CategoryNamesResolve) {
  EXPECT_STREQ(category_name(ApiCategory::Crypto), "crypto");
  EXPECT_STREQ(category_name(ApiCategory::FileSystem), "filesystem");
  EXPECT_STREQ(category_name(ApiCategory::Misc), "misc");
}

}  // namespace
}  // namespace csdml::ransomware
