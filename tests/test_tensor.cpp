#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m.row(0)[1], 7.0);
  EXPECT_TRUE(Matrix().empty());
}

TEST(Matrix, FillAndScale) {
  Matrix m(2, 2, 1.0);
  m *= 3.0;
  EXPECT_DOUBLE_EQ(m(1, 1), 3.0);
  m.fill(0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
}

TEST(Matrix, AdditionRequiresSameShape) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  Matrix c(3, 2);
  EXPECT_THROW(a += c, PreconditionError);
}

TEST(Matrix, GlorotInitWithinLimit) {
  Matrix m(16, 48);
  Rng rng(3);
  m.glorot_init(rng);
  const double limit = std::sqrt(6.0 / (16 + 48));
  double min = 1e9;
  double max = -1e9;
  for (std::size_t i = 0; i < m.size(); ++i) {
    min = std::min(min, m.data()[i]);
    max = std::max(max, m.data()[i]);
  }
  EXPECT_GE(min, -limit);
  EXPECT_LE(max, limit);
  EXPECT_LT(min, 0.0);  // actually spreads over the interval
  EXPECT_GT(max, 0.0);
}

TEST(TensorOps, AccumulateVecMat) {
  // W is 2x3 (input on rows); y = x W.
  Matrix w(2, 3);
  w(0, 0) = 1;  w(0, 1) = 2;  w(0, 2) = 3;
  w(1, 0) = 4;  w(1, 1) = 5;  w(1, 2) = 6;
  const Vector x{2.0, -1.0};
  Vector y(3, 10.0);  // accumulates on top
  accumulate_vec_mat(x, w, y);
  EXPECT_DOUBLE_EQ(y[0], 10 + 2 * 1 - 4);
  EXPECT_DOUBLE_EQ(y[1], 10 + 2 * 2 - 5);
  EXPECT_DOUBLE_EQ(y[2], 10 + 2 * 3 - 6);
}

TEST(TensorOps, AccumulateOuter) {
  Matrix grad(2, 2, 1.0);
  accumulate_outer(Vector{1.0, 2.0}, Vector{3.0, 4.0}, grad);
  EXPECT_DOUBLE_EQ(grad(0, 0), 1 + 3);
  EXPECT_DOUBLE_EQ(grad(0, 1), 1 + 4);
  EXPECT_DOUBLE_EQ(grad(1, 0), 1 + 6);
  EXPECT_DOUBLE_EQ(grad(1, 1), 1 + 8);
}

TEST(TensorOps, AccumulateMatVec) {
  Matrix w(2, 3);
  w(0, 0) = 1;  w(0, 1) = 2;  w(0, 2) = 3;
  w(1, 0) = 4;  w(1, 1) = 5;  w(1, 2) = 6;
  Vector dx(2, 0.0);
  accumulate_mat_vec(w, Vector{1.0, 0.0, -1.0}, dx);
  EXPECT_DOUBLE_EQ(dx[0], 1 - 3);
  EXPECT_DOUBLE_EQ(dx[1], 4 - 6);
}

TEST(TensorOps, ShapeMismatchesThrow) {
  Matrix w(2, 3);
  Vector x3(3), x2(2), y3(3), y2(2);
  EXPECT_THROW(accumulate_vec_mat(x3, w, y3), PreconditionError);
  EXPECT_THROW(accumulate_vec_mat(x2, w, y2), PreconditionError);
  Matrix g(2, 2);
  EXPECT_THROW(accumulate_outer(x3, y2, g), PreconditionError);
  EXPECT_THROW(accumulate_mat_vec(w, y2, x2), PreconditionError);
  Vector a{1.0}, b{1.0, 2.0};
  EXPECT_THROW(add_in_place(a, b), PreconditionError);
  EXPECT_THROW(dot(a, b), PreconditionError);
}

TEST(TensorOps, DotAndAddInPlace) {
  Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  add_in_place(a, b);
  EXPECT_EQ(a, (Vector{5.0, 7.0, 9.0}));
}

TEST(TensorOps, SparseInputSkipsZeroRows) {
  // x with zeros exercises the skip path; result must still be exact.
  Matrix w(3, 2, 1.0);
  Vector y(2, 0.0);
  accumulate_vec_mat(Vector{0.0, 2.0, 0.0}, w, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

}  // namespace
}  // namespace csdml::nn
