#include "nn/gru.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(Gru, ParameterCountIsThreeQuartersOfLstmRecurrence) {
  const GruConfig config;  // vocab 278, embed 8, hidden 32
  Rng rng(1);
  const GruClassifier model(config, rng);
  // 3 gates x (8x32 + 32x32 + 32) = 3,936 = 0.75 x the LSTM's 5,248.
  EXPECT_EQ(model.params().recurrent_parameter_count(), 3'936u);
  EXPECT_EQ(model.params().total_parameter_count(), 2'224u + 3'936u + 33u);
}

TEST(Gru, ParameterPointersUnique) {
  GruConfig config{.vocab_size = 5, .embed_dim = 3, .hidden_dim = 4};
  Rng rng(2);
  GruClassifier model(config, rng);
  auto ptrs = model.mutable_params().parameter_pointers();
  EXPECT_EQ(ptrs.size(), model.params().total_parameter_count());
  std::sort(ptrs.begin(), ptrs.end());
  EXPECT_EQ(std::adjacent_find(ptrs.begin(), ptrs.end()), ptrs.end());
}

TEST(Gru, ForwardIsDeterministicProbability) {
  GruConfig config;
  Rng rng(3);
  const GruClassifier model(config, rng);
  const Sequence seq{1, 5, 200, 42, 7, 7, 3};
  const double p = model.forward(seq, nullptr);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  EXPECT_DOUBLE_EQ(p, model.forward(seq, nullptr));
  EXPECT_EQ(model.predict(seq), p >= 0.5 ? 1 : 0);
}

TEST(Gru, OrderSensitivity) {
  GruConfig config;
  Rng rng(5);
  const GruClassifier model(config, rng);
  EXPECT_NE(model.forward({10, 20, 30, 40}, nullptr),
            model.forward({40, 30, 20, 10}, nullptr));
}

TEST(Gru, StateInterpolatesBetweenPrevAndCandidate) {
  // h' = (1-z) h + z g with z in (0,1) and |g| < 1 keeps |h| < 1 forever.
  GruConfig config;
  Rng rng(7);
  const GruClassifier model(config, rng);
  Vector h(config.hidden_dim, 0.0);
  Rng token_rng(9);
  for (int t = 0; t < 2'000; ++t) {
    const auto token =
        static_cast<TokenId>(token_rng.uniform_int(0, config.vocab_size - 1));
    model.step(model.embed(token), h, nullptr);
  }
  for (const double v : h) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 1.0);
  }
}

struct GruGradCase {
  CellActivation activation;
  std::size_t length;
};

class GruGradCheck : public ::testing::TestWithParam<GruGradCase> {};

TEST_P(GruGradCheck, AnalyticMatchesNumeric) {
  const GruGradCase param = GetParam();
  GruConfig config{.vocab_size = 7, .embed_dim = 3, .hidden_dim = 4,
                   .activation = param.activation};
  Rng rng(31);
  GruClassifier model(config, rng);
  Sequence seq;
  Rng token_rng(5);
  for (std::size_t i = 0; i < param.length; ++i) {
    seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 6)));
  }

  GruGradients grads = GruParams::zeros(config);
  gru_backward(model, seq, 1, grads);

  const auto params = model.mutable_params().parameter_pointers();
  const auto analytic = grads.parameter_pointers();
  const std::size_t stride = std::max<std::size_t>(params.size() / 60, 1);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const double original = *params[i];
    *params[i] = original + eps;
    const double lp = bce_loss(model.forward(seq, nullptr), 1);
    *params[i] = original - eps;
    const double lm = bce_loss(model.forward(seq, nullptr), 1);
    *params[i] = original;
    const double numeric = (lp - lm) / (2 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(*analytic[i]), 1e-4});
    EXPECT_LT(std::abs(numeric - *analytic[i]) / denom, 2e-3)
        << "param " << i << " analytic " << *analytic[i] << " numeric " << numeric;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GruGradCheck,
    ::testing::Values(GruGradCase{CellActivation::Softsign, 1},
                      GruGradCase{CellActivation::Softsign, 8},
                      GruGradCase{CellActivation::Tanh, 8},
                      GruGradCase{CellActivation::Softsign, 15}));

TEST(Gru, LearnsToyTask) {
  GruConfig config{.vocab_size = 5, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(11);
  GruClassifier model(config, rng);
  SequenceDataset data;
  Rng data_rng(13);
  for (int i = 0; i < 80; ++i) {
    const int label = i % 2;
    Sequence seq(10, static_cast<TokenId>(label));
    for (std::size_t j = 0; j < seq.size(); j += 3) {
      seq[j] = static_cast<TokenId>(data_rng.uniform_int(2, 4));
    }
    data.sequences.push_back(std::move(seq));
    data.labels.push_back(label);
  }
  TrainConfig tc;
  tc.epochs = 12;
  tc.batch_size = 8;
  tc.learning_rate = 0.02;
  const TrainResult result = train_gru(model, data, data, tc);
  EXPECT_GE(result.best_test_accuracy, 0.95);
}

TEST(Gru, Guards) {
  GruConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(15);
  const GruClassifier model(config, rng);
  EXPECT_THROW(model.forward({}, nullptr), PreconditionError);
  EXPECT_THROW(model.embed(-1), PreconditionError);
  EXPECT_THROW(model.embed(5), PreconditionError);
}

}  // namespace
}  // namespace csdml::nn
