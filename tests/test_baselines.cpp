#include "baselines/host_baseline.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace csdml::baselines {
namespace {

struct BaselineFixture {
  nn::LstmConfig config;
  nn::LstmParams params;
  BaselineFixture() {
    Rng rng(3);
    params = nn::LstmParams::glorot(config, rng);
  }
};

TEST(Baselines, FunctionalParityWithOfflineModel) {
  BaselineFixture f;
  const HostBaseline cpu("cpu", f.config, f.params, HostLatencyConfig::xeon_cpu());
  const nn::LstmClassifier reference(f.config, f.params);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    nn::Sequence seq;
    for (int i = 0; i < 50; ++i) {
      seq.push_back(static_cast<nn::TokenId>(rng.uniform_int(0, 277)));
    }
    EXPECT_DOUBLE_EQ(cpu.infer(seq), reference.forward(seq, nullptr));
    EXPECT_EQ(cpu.predict(seq), reference.predict(seq));
  }
}

TEST(Baselines, FlopsPerItemMatchesModelSize) {
  const nn::LstmConfig config;  // embed 8, hidden 32
  // 4 gates x 40 MACs x 32 outputs x 2 + elementwise = 10,560 flops.
  EXPECT_NEAR(flops_per_item(config), 4 * 40 * 32 * 2 + 10 * 32, 1.0);
}

TEST(Baselines, LatenciesAlwaysPositive) {
  BaselineFixture f;
  const HostBaseline gpu("gpu", f.config, f.params, HostLatencyConfig::a100_gpu());
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GT(gpu.sample_item_latency(rng).picos, 0);
  }
}

TEST(Baselines, CpuMeanNearTableOne) {
  // Paper Table I: CPU 991.57750 us.
  BaselineFixture f;
  const HostBaseline cpu("cpu", f.config, f.params, HostLatencyConfig::xeon_cpu());
  Rng rng(11);
  const std::vector<double> samples = cpu.measure_item_latencies(20'000, rng);
  RunningStats stats;
  for (const double s : samples) stats.add(s);
  EXPECT_NEAR(stats.mean(), 991.6, 160.0);
}

TEST(Baselines, GpuMeanNearTableOne) {
  // Paper Table I: GPU 741.35336 us.
  BaselineFixture f;
  const HostBaseline gpu("gpu", f.config, f.params, HostLatencyConfig::a100_gpu());
  Rng rng(13);
  const std::vector<double> samples = gpu.measure_item_latencies(20'000, rng);
  RunningStats stats;
  for (const double s : samples) stats.add(s);
  EXPECT_NEAR(stats.mean(), 741.4, 120.0);
}

TEST(Baselines, GpuBeatsCpuOnAverageButBothFarAboveFpga) {
  BaselineFixture f;
  const HostBaseline cpu("cpu", f.config, f.params, HostLatencyConfig::xeon_cpu());
  const HostBaseline gpu("gpu", f.config, f.params, HostLatencyConfig::a100_gpu());
  Rng rng(17);
  RunningStats cpu_stats;
  RunningStats gpu_stats;
  for (const double s : cpu.measure_item_latencies(10'000, rng)) cpu_stats.add(s);
  for (const double s : gpu.measure_item_latencies(10'000, rng)) gpu_stats.add(s);
  EXPECT_GT(cpu_stats.mean(), gpu_stats.mean());
  // Both are hundreds of microseconds; the FPGA path is ~2.15 us.
  EXPECT_GT(gpu_stats.mean() / 2.15133, 100.0);
}

TEST(Baselines, CpuSpreadIsWiderThanGpu) {
  // Table I: the CPU CI spans ~8x, the GPU CI ~2.8x.
  BaselineFixture f;
  const HostBaseline cpu("cpu", f.config, f.params, HostLatencyConfig::xeon_cpu());
  const HostBaseline gpu("gpu", f.config, f.params, HostLatencyConfig::a100_gpu());
  Rng rng(19);
  RunningStats cpu_stats;
  RunningStats gpu_stats;
  for (const double s : cpu.measure_item_latencies(10'000, rng)) cpu_stats.add(s);
  for (const double s : gpu.measure_item_latencies(10'000, rng)) gpu_stats.add(s);
  EXPECT_GT(cpu_stats.stddev() / cpu_stats.mean(),
            gpu_stats.stddev() / gpu_stats.mean());
}

TEST(Baselines, DeterministicGivenSeed) {
  BaselineFixture f;
  const HostBaseline cpu("cpu", f.config, f.params, HostLatencyConfig::xeon_cpu());
  Rng rng1(23);
  Rng rng2(23);
  EXPECT_EQ(cpu.measure_item_latencies(100, rng1),
            cpu.measure_item_latencies(100, rng2));
}

TEST(Baselines, ConfigGuards) {
  BaselineFixture f;
  HostLatencyConfig bad = HostLatencyConfig::xeon_cpu();
  bad.ops_per_item = 0;
  EXPECT_THROW(HostBaseline("x", f.config, f.params, bad), PreconditionError);
  bad = HostLatencyConfig::xeon_cpu();
  bad.gflops = 0.0;
  EXPECT_THROW(HostBaseline("x", f.config, f.params, bad), PreconditionError);
  const HostBaseline cpu("cpu", f.config, f.params, HostLatencyConfig::xeon_cpu());
  Rng rng(1);
  EXPECT_THROW(cpu.measure_item_latencies(0, rng), PreconditionError);
}

}  // namespace
}  // namespace csdml::baselines
