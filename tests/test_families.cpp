#include "ransomware/families.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace csdml::ransomware {
namespace {

TEST(Families, TableTwoRoster) {
  // Table II of the paper: ten families with these variant counts and
  // encryption / self-propagation flags.
  const std::map<std::string, std::pair<std::uint32_t, bool>> expected = {
      {"Ryuk", {5, true}},        {"Lockbit", {6, true}},
      {"Teslacrypt", {10, false}}, {"Virlock", {11, false}},
      {"Cryptowall", {8, false}},  {"Cerber", {9, false}},
      {"Wannacry", {7, true}},     {"Locky", {6, false}},
      {"Chimera", {9, false}},     {"BadRabbit", {5, true}},
  };
  const auto& families = ransomware_families();
  ASSERT_EQ(families.size(), 10u);
  for (const auto& family : families) {
    const auto it = expected.find(family.name);
    ASSERT_NE(it, expected.end()) << family.name;
    EXPECT_EQ(family.variants, it->second.first) << family.name;
    EXPECT_EQ(family.self_propagates, it->second.second) << family.name;
    EXPECT_TRUE(family.encrypts) << family.name;  // all variants encrypt
  }
}

TEST(Families, VariantTotalMatchesTableTwo) {
  // The per-family counts in Table II sum to 76 (the text says 78; see
  // EXPERIMENTS.md for the discrepancy note).
  EXPECT_EQ(total_variant_count(), 76u);
}

TEST(Families, EveryFamilyEncryptsInItsScript) {
  for (const auto& family : ransomware_families()) {
    bool has_encryption = false;
    for (const Phase& phase : family.script) {
      has_encryption |= phase.motif == MotifKind::EncryptionLoop;
    }
    EXPECT_TRUE(has_encryption) << family.name;
  }
}

TEST(Families, PropagatorsHaveSmbPhases) {
  for (const auto& family : ransomware_families()) {
    bool has_propagation = false;
    for (const Phase& phase : family.script) {
      has_propagation |= phase.motif == MotifKind::SmbPropagation;
    }
    EXPECT_EQ(has_propagation, family.self_propagates) << family.name;
  }
}

TEST(Families, ScriptsAreWellFormed) {
  for (const auto& family : ransomware_families()) {
    EXPECT_FALSE(family.script.empty()) << family.name;
    for (const Phase& phase : family.script) {
      EXPECT_LE(phase.min_repeats, phase.max_repeats) << family.name;
    }
  }
}

TEST(Families, FamilyScriptsAreDistinct) {
  std::set<std::vector<MotifKind>> shapes;
  for (const auto& family : ransomware_families()) {
    std::vector<MotifKind> shape;
    for (const Phase& phase : family.script) shape.push_back(phase.motif);
    shapes.insert(shape);
  }
  EXPECT_EQ(shapes.size(), ransomware_families().size());
}

TEST(Benign, ThirtyAppsPlusManualSessions) {
  const auto& profiles = benign_profiles();
  std::size_t apps = 0;
  std::size_t manual = 0;
  for (const auto& profile : profiles) {
    (profile.manual_interaction ? manual : apps) += 1;
  }
  EXPECT_EQ(apps, 30u);  // "In total, 30 popular applications were collected"
  EXPECT_GE(manual, 1u);
}

TEST(Benign, ScriptsAvoidAttackMotifs) {
  // Benign profiles may use crypto-adjacent motifs (checksum, volume
  // encryption, key generation — all dual-use) but never the attack
  // motifs proper.
  for (const auto& profile : benign_profiles()) {
    for (const Phase& phase : profile.script) {
      if (phase.motif == MotifKind::KeyGeneration) continue;  // dual-use
      EXPECT_FALSE(is_malicious_motif(phase.motif))
          << profile.name << " uses " << motif_name(phase.motif);
    }
  }
}

TEST(Benign, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& profile : benign_profiles()) names.insert(profile.name);
  EXPECT_EQ(names.size(), benign_profiles().size());
}

}  // namespace
}  // namespace csdml::ransomware
