// Numerical-stability and behavioural properties of the classifier that
// matter for an always-on detector: bounded state over arbitrarily long
// streams, finite outputs, and sane sensitivity behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/functional.hpp"
#include "nn/lstm.hpp"

namespace csdml::nn {
namespace {

class LongSequenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LongSequenceTest, StateStaysBoundedAndOutputFinite) {
  LstmConfig config;
  Rng rng(3);
  const LstmClassifier model(config, rng);
  Rng token_rng(GetParam());
  Vector h(config.hidden_dim, 0.0);
  Vector c(config.hidden_dim, 0.0);
  for (std::size_t t = 0; t < GetParam(); ++t) {
    const auto token =
        static_cast<TokenId>(token_rng.uniform_int(0, config.vocab_size - 1));
    model.step(model.embed(token), h, c, nullptr);
  }
  for (const double v : h) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 1.0);  // |o|<1 and |softsign(c)|<1
  }
  for (const double v : c) {
    EXPECT_TRUE(std::isfinite(v));
    // Cell state contracts: with f<1 the geometric series is bounded by
    // 1/(1-f_max); well under 100 for trained-scale weights.
    EXPECT_LT(std::abs(v), 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, LongSequenceTest,
                         ::testing::Values(100, 1'000, 5'000));

TEST(LstmProperties, SingleTokenChangePerturbsOutput) {
  LstmConfig config;
  Rng rng(5);
  const LstmClassifier model(config, rng);
  Rng token_rng(11);
  Sequence base;
  for (int i = 0; i < 60; ++i) {
    base.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
  }
  const double p0 = model.forward(base, nullptr);
  int changed = 0;
  for (const std::size_t pos : {0ul, 30ul, 59ul}) {
    Sequence mutated = base;
    mutated[pos] = static_cast<TokenId>((mutated[pos] + 137) % 278);
    changed += model.forward(mutated, nullptr) != p0;
  }
  EXPECT_GE(changed, 2);  // the model is not ignoring its input
}

TEST(LstmProperties, RecencyDominatesForGatedMemory) {
  // Changing the final token must move the output more than changing the
  // first token (averaged over trials) — the forgetting dynamics at work.
  LstmConfig config;
  Rng rng(7);
  const LstmClassifier model(config, rng);
  Rng token_rng(13);
  double early_effect = 0.0;
  double late_effect = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    Sequence base;
    for (int i = 0; i < 80; ++i) {
      base.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
    }
    const double p0 = model.forward(base, nullptr);
    Sequence early = base;
    early[0] = static_cast<TokenId>((early[0] + 91) % 278);
    Sequence late = base;
    late[79] = static_cast<TokenId>((late[79] + 91) % 278);
    early_effect += std::abs(model.forward(early, nullptr) - p0);
    late_effect += std::abs(model.forward(late, nullptr) - p0);
  }
  EXPECT_GT(late_effect, early_effect);
}

TEST(LstmProperties, FixedPathBoundedOnLongStreams) {
  LstmConfig config;
  Rng rng(17);
  const nn::LstmParams params = LstmParams::glorot(config, rng);
  const kernels::FixedDatapath fixed(config, params);
  Rng token_rng(19);
  Sequence seq;
  for (int i = 0; i < 2'000; ++i) {
    seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 277)));
  }
  const double p = fixed.infer(seq);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(LstmProperties, RepeatedTokenConvergesToFixedPoint) {
  // Feeding one token forever drives (h, c) toward a fixed point; the
  // output probability must stabilise rather than oscillate or diverge.
  LstmConfig config;
  Rng rng(23);
  const LstmClassifier model(config, rng);
  Vector h(config.hidden_dim, 0.0);
  Vector c(config.hidden_dim, 0.0);
  Vector h_prev;
  double delta = 1.0;
  for (int t = 0; t < 500; ++t) {
    h_prev = h;
    model.step(model.embed(42), h, c, nullptr);
    if (t > 400) {
      delta = 0.0;
      for (std::size_t j = 0; j < h.size(); ++j) {
        delta = std::max(delta, std::abs(h[j] - h_prev[j]));
      }
    }
  }
  EXPECT_LT(delta, 1e-6);
}

}  // namespace
}  // namespace csdml::nn
