// Black-box flight recorder: ring wraparound, field truncation, JSON
// post-mortems, and the dump-on-unhealthy-latch integration with the
// engine's degraded-mode machinery.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/host_baseline.hpp"
#include "common/rng.hpp"
#include "detect/detector.hpp"
#include "faults/fault_plan.hpp"
#include "json_lint.hpp"
#include "kernels/engine.hpp"

namespace csdml::obs {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FlightRecorder, WraparoundKeepsTheNewestEvents) {
  FlightRecorder recorder(16);
  EXPECT_EQ(recorder.capacity(), 16u);
  for (int i = 1; i <= 40; ++i) {
    recorder.record(FlightEventKind::Fault, "test", "evt",
                    TimePoint{} + Duration::microseconds(i), 0,
                    static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(recorder.recorded(), 40u);
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 16u);
  // Oldest first; only the last capacity() events survive the wrap.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 25 + i);
    EXPECT_EQ(events[i].value, 25 + i);
  }
}

TEST(FlightRecorder, CapacityRoundsUpToAPowerOfTwoWithAFloor) {
  EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
  // Tiny requests clamp to the floor: a ring smaller than one fault burst
  // would record nothing useful.
  EXPECT_EQ(FlightRecorder(2).capacity(), 16u);
}

TEST(FlightRecorder, LongFieldsTruncateInsteadOfAllocating) {
  FlightRecorder recorder(4);
  recorder.record(FlightEventKind::Retry,
                  "component-name-far-beyond-sixteen-chars",
                  "a detail string that is certainly longer than the "
                  "forty-eight characters the slot reserves for it",
                  TimePoint{});
  const std::vector<FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  const std::string component = events[0].component;
  const std::string detail = events[0].detail;
  EXPECT_LT(component.size(), sizeof(events[0].component));
  EXPECT_LT(detail.size(), sizeof(events[0].detail));
  EXPECT_EQ(component.substr(0, 9), "component");
  EXPECT_EQ(detail.substr(0, 8), "a detail");
}

TEST(FlightRecorder, JsonPostMortemIsValidAndNamesKinds) {
  FlightRecorder recorder(16);
  recorder.record(FlightEventKind::Fault, "xrt", "launch", TimePoint{}, 3, 1);
  recorder.record(FlightEventKind::Fallback, "engine", "host", TimePoint{}, 3);
  recorder.record(FlightEventKind::UnhealthyLatch, "engine", "latched",
                  TimePoint{}, 3);
  const std::string json = recorder.to_json("unit_test");
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(json.find("\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"fallback\""), std::string::npos);
  EXPECT_NE(json.find("\"unhealthy_latch\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":3"), std::string::npos);
}

TEST(FlightRecorder, AutoDumpIsGatedOnTheEnvVar) {
  FlightRecorder recorder(8);
  recorder.record(FlightEventKind::Alert, "detector", "fired", TimePoint{});

  ::unsetenv("CSDML_FLIGHT_DUMP");
  EXPECT_FALSE(recorder.auto_dump("no_env"));

  const std::string path = temp_path("csdml_flight_auto.json");
  ::setenv("CSDML_FLIGHT_DUMP", path.c_str(), 1);
  EXPECT_TRUE(recorder.auto_dump("env_set"));
  ::unsetenv("CSDML_FLIGHT_DUMP");

  const std::string json = slurp(path);
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"env_set\""), std::string::npos);
  // The dump records itself, so the post-mortem names its own trigger.
  EXPECT_NE(json.find("\"dump\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, UnwritableDumpPathFailsSoftly) {
  FlightRecorder recorder(8);
  ::setenv("CSDML_FLIGHT_DUMP", "/nonexistent-dir/flight.json", 1);
  EXPECT_FALSE(recorder.auto_dump("nowhere"));
  ::unsetenv("CSDML_FLIGHT_DUMP");
}

TEST(FlightRecorder, UnhealthyLatchDumpsThePostMortem) {
  const std::string path = temp_path("csdml_flight_latch.json");
  std::remove(path.c_str());
  ::setenv("CSDML_FLIGHT_DUMP", path.c_str(), 1);

  nn::LstmConfig model_config{.vocab_size = 48, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(33);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  const baselines::HostBaseline host{"host", model_config, params,
                                     baselines::HostLatencyConfig{}};
  kernels::CsdLstmEngine engine(
      device, model_config, params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 1,
                                      .recovery_probe_interval = 0}});
  engine.set_fallback(&host);
  faults::FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  faults::FaultPlan plan(config);
  board.set_fault_plan(&plan);

  nn::Sequence seq;
  for (int i = 0; i < 24; ++i) seq.push_back(static_cast<nn::TokenId>(i % 48));
  EXPECT_TRUE(engine.infer(seq).degraded);
  ::unsetenv("CSDML_FLIGHT_DUMP");

  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string json = slurp(path);
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"unhealthy_latch\""), std::string::npos);
  EXPECT_NE(json.find("\"fault\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csdml::obs
