// Seeded fault-injection campaigns through every device-stack site: the
// FaultPlan determinism contract, NAND read-disturb, NVMe timeouts and
// lost completions, PCIe bit corruption, XRT launch failures, and the
// engine/detector resilience behaviour layered on top (retry + backoff,
// host fallback, recovery probes, deferred classifications).
#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "baselines/host_baseline.hpp"
#include "csd/nvme.hpp"
#include "detect/detector.hpp"
#include "fuzz_harness.hpp"
#include "kernels/engine.hpp"
#include "obs/metrics.hpp"

namespace csdml::faults {
namespace {

std::vector<bool> decisions(FaultPlan& plan, FaultKind kind, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(plan.should_inject(kind));
  return out;
}

TEST(FaultPlan, SameSeedGivesIdenticalScheduleAndDigest) {
  FaultConfig config;
  config.seed = 404;
  config.nvme_timeout_probability = 0.3;
  config.pcie_corruption_probability = 0.2;
  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 500; ++i) {
    const FaultKind kind =
        i % 2 == 0 ? FaultKind::NvmeTimeout : FaultKind::PcieCorruption;
    ASSERT_EQ(a.should_inject(kind), b.should_inject(kind)) << "decision " << i;
  }
  EXPECT_EQ(a.log().size(), b.log().size());
  EXPECT_EQ(a.log(), b.log());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_GT(a.injected(), 0u);

  FaultConfig other = config;
  other.seed = 405;
  FaultPlan c(other);
  for (int i = 0; i < 500; ++i) {
    c.should_inject(i % 2 == 0 ? FaultKind::NvmeTimeout
                               : FaultKind::PcieCorruption);
  }
  EXPECT_NE(a.digest(), c.digest());
}

TEST(FaultPlan, ResetReplaysTheExactSchedule) {
  FaultConfig config;
  config.seed = 11;
  config.xrt_launch_failure_probability = 0.4;
  FaultPlan plan(config);
  const std::vector<bool> first = decisions(plan, FaultKind::XrtLaunchFailure, 200);
  const std::uint64_t digest = plan.digest();
  plan.reset();
  EXPECT_EQ(plan.injected(), 0u);
  EXPECT_EQ(decisions(plan, FaultKind::XrtLaunchFailure, 200), first);
  EXPECT_EQ(plan.digest(), digest);
}

TEST(FaultPlan, KindsDrawFromIndependentStreams) {
  // Enabling a second fault kind must not perturb the first kind's
  // schedule: each kind forks its own stream and zero-probability kinds
  // never draw.
  FaultConfig lone;
  lone.seed = 77;
  lone.nand_read_disturb_probability = 0.25;
  FaultPlan a(lone);

  FaultConfig mixed = lone;
  mixed.pcie_corruption_probability = 0.9;
  FaultPlan b(mixed);

  std::vector<bool> a_nand;
  std::vector<bool> b_nand;
  for (int i = 0; i < 300; ++i) {
    a_nand.push_back(a.should_inject(FaultKind::NandReadDisturb));
    a.should_inject(FaultKind::PcieCorruption);  // p=0: never draws
    b_nand.push_back(b.should_inject(FaultKind::NandReadDisturb));
    b.should_inject(FaultKind::PcieCorruption);
  }
  EXPECT_EQ(a_nand, b_nand);
  EXPECT_EQ(a.injected(FaultKind::PcieCorruption), 0u);
  EXPECT_GT(b.injected(FaultKind::PcieCorruption), 0u);
}

TEST(FaultPlan, MaxFaultsCapsInjection) {
  FaultConfig config;
  config.seed = 5;
  config.nvme_timeout_probability = 1.0;
  config.max_faults = 3;
  FaultPlan plan(config);
  int injected = 0;
  for (int i = 0; i < 50; ++i) {
    if (plan.should_inject(FaultKind::NvmeTimeout)) ++injected;
  }
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(plan.injected(), 3u);
  EXPECT_EQ(plan.log().size(), 3u);
}

TEST(NandFaults, InjectedReadDisturbIsUncorrectable) {
  FaultConfig config;
  config.nand_read_disturb_probability = 1.0;
  FaultPlan plan(config);

  csd::NandArray nand{csd::NandConfig{}};
  const csd::PageAddress addr{.channel = 0, .die = 0, .page = 0};
  nand.program_page(addr, TimePoint{}, std::vector<std::uint8_t>(64, 0xAB));
  nand.set_fault_plan(&plan);
  std::vector<std::uint8_t> out;
  const csd::NandArray::ReadResult result = nand.read_page(addr, TimePoint{}, &out);
  EXPECT_TRUE(result.uncorrectable);
  EXPECT_GT(result.raw_bit_errors, nand.config().ecc_correctable_bits);
  EXPECT_EQ(nand.uncorrectable_reads(), 1u);
  EXPECT_EQ(plan.injected(FaultKind::NandReadDisturb), 1u);
}

TEST(NandFaults, SsdReadRetryAlsoFailsAtProbabilityOne) {
  FaultConfig config;
  config.nand_read_disturb_probability = 1.0;
  FaultPlan plan(config);

  csd::SsdController ssd{csd::SsdConfig{}};
  ssd.write(0, std::vector<std::uint8_t>(256, 0x5C), TimePoint{});
  ssd.set_fault_plan(&plan);
  const csd::IoResult io = ssd.read(0, 1, TimePoint{});
  EXPECT_TRUE(io.uncorrectable);
  // The controller's read-retry consumed a second injection.
  EXPECT_GE(plan.injected(FaultKind::NandReadDisturb), 2u);
  EXPECT_GE(ssd.smart().uncorrectable_reads, 2u);
}

TEST(NvmeFaults, TimeoutSkipsDeviceWorkAndCountsAsFailed) {
  FaultConfig config;
  config.nvme_timeout_probability = 1.0;
  FaultPlan plan(config);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  board.ssd().write(4, std::vector<std::uint8_t>(128, 0x11), TimePoint{});
  board.set_fault_plan(&plan);
  csd::NvmeQueue queue(board, csd::NvmeQueueConfig{});

  csd::NvmeCommand command;
  command.opcode = csd::NvmeOpcode::Read;
  command.command_id = 42;
  command.lba = 4;
  command.block_count = 1;
  const TimePoint start{};
  queue.submit(command, start);
  const csd::NvmeCompletion completion = queue.wait_oldest();
  EXPECT_FALSE(completion.success);
  EXPECT_EQ(completion.status, csd::NvmeStatus::TimedOut);
  EXPECT_EQ(completion.command_id, 42);
  EXPECT_TRUE(completion.data.empty());
  // The host-side deadline runs from doorbell ring (MMIO write done).
  EXPECT_EQ(completion.completed_at,
            start + csd::NvmeQueueConfig{}.doorbell_latency +
                csd::NvmeQueueConfig{}.command_timeout);
  EXPECT_EQ(queue.failed_count(), 1u);
  EXPECT_EQ(queue.completed_count(), 1u);
  // The injected record carries the command id, stamped without consuming
  // the detail stream.
  ASSERT_EQ(plan.log().size(), 1u);
  EXPECT_EQ(plan.log()[0].kind, FaultKind::NvmeTimeout);
  EXPECT_EQ(plan.log()[0].detail, 42u);
}

TEST(NvmeFaults, DroppedCompletionLosesDataAfterDeviceWork) {
  FaultConfig config;
  config.nvme_drop_probability = 1.0;
  FaultPlan plan(config);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  board.ssd().write(8, std::vector<std::uint8_t>(128, 0x22), TimePoint{});
  board.set_fault_plan(&plan);
  csd::NvmeQueue queue(board, csd::NvmeQueueConfig{});

  csd::NvmeCommand command;
  command.opcode = csd::NvmeOpcode::Read;
  command.command_id = 7;
  command.lba = 8;
  command.block_count = 1;
  queue.submit(command, TimePoint{});
  const csd::NvmeCompletion completion = queue.wait_oldest();
  EXPECT_FALSE(completion.success);
  EXPECT_EQ(completion.status, csd::NvmeStatus::CompletionLost);
  EXPECT_TRUE(completion.data.empty());
  EXPECT_EQ(queue.failed_count(), 1u);
}

TEST(PcieFaults, CorruptionFlipsExactlyOneBit) {
  FaultConfig config;
  config.pcie_corruption_probability = 1.0;
  config.max_faults = 1;  // only the first crossing corrupts
  FaultPlan plan(config);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  board.set_fault_plan(&plan);
  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37);
  }
  board.host_write_to_fpga(payload, 0, 0, TimePoint{});
  const csd::IoResult readback =
      board.host_read_from_fpga(0, 0, payload.size(), TimePoint{});

  ASSERT_EQ(readback.data.size(), payload.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    flipped_bits += std::popcount(
        static_cast<unsigned>(payload[i] ^ readback.data[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(plan.injected(FaultKind::PcieCorruption), 1u);
}

// ---------------------------------------------------------------------------
// Engine resilience
// ---------------------------------------------------------------------------

struct ResilienceFixture {
  static nn::LstmParams make_params(const nn::LstmConfig& config) {
    Rng rng(33);
    return nn::LstmParams::glorot(config, rng);
  }

  // Members initialise in declaration order: params before the baseline.
  nn::LstmConfig model_config{.vocab_size = 48, .embed_dim = 4, .hidden_dim = 8};
  nn::LstmParams params = make_params(model_config);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  baselines::HostBaseline host{"host", model_config, params,
                               baselines::HostLatencyConfig{}};

  nn::Sequence sequence(std::uint64_t seed, int length = 24) const {
    Rng rng(seed);
    nn::Sequence seq;
    for (int i = 0; i < length; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, model_config.vocab_size - 1)));
    }
    return seq;
  }
};

TEST(EngineResilience, RetriesThenSucceedsWithBackoffCharged) {
  ResilienceFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 3}});
  const nn::Sequence seq = f.sequence(1);
  const double expected = engine.infer(seq).probability;  // healthy run

  FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  config.max_faults = 2;  // two failed attempts, third succeeds
  FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  obs::MetricsRegistry& metrics = obs::registry();
  const std::uint64_t retries_before = metrics.counter_value("engine.retries");
  const TimePoint before = f.device.now();
  const kernels::InferenceResult result = engine.infer(seq);
  EXPECT_EQ(result.probability, expected);
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(engine.healthy());
  EXPECT_EQ(metrics.counter_value("engine.retries") - retries_before, 2u);
  // Backoff 50µs + 100µs charged to simulated device time on top of the
  // inference itself.
  EXPECT_GE((f.device.now() - before).as_microseconds(), 150.0);
}

TEST(EngineResilience, ExhaustedRetriesFallBackToHostBaseline) {
  ResilienceFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 2,
                                      .recovery_probe_interval = 0}});
  engine.set_fallback(&f.host);

  FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  const nn::Sequence seq = f.sequence(2);
  const kernels::InferenceResult result = engine.infer(seq);
  EXPECT_TRUE(result.degraded);
  EXPECT_FALSE(engine.healthy());
  EXPECT_EQ(result.probability, f.host.infer(seq));
  // Degraded serves stay degraded while probing is disabled.
  EXPECT_TRUE(engine.infer(seq).degraded);
}

TEST(EngineResilience, UnhealthyWithoutFallbackThrows) {
  ResilienceFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 1,
                                      .recovery_probe_interval = 0}});
  FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  FaultPlan plan(config);
  f.board.set_fault_plan(&plan);
  EXPECT_THROW(engine.infer(f.sequence(3)), CsdUnavailableError);
}

TEST(EngineResilience, RecoveryProbeRestoresHealth) {
  ResilienceFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 1,
                                      .recovery_probe_interval = 2}});
  engine.set_fallback(&f.host);

  FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  config.max_faults = 1;  // one failure marks unhealthy; probes then succeed
  FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  const nn::Sequence seq = f.sequence(4);
  EXPECT_TRUE(engine.infer(seq).degraded);
  EXPECT_FALSE(engine.healthy());
  // Degraded serve #1 is below the probe interval; serve #2 hits it, the
  // probe launch succeeds (the plan is exhausted) and health returns.
  EXPECT_TRUE(engine.infer(seq).degraded);
  const kernels::InferenceResult recovered = engine.infer(seq);
  EXPECT_FALSE(recovered.degraded);
  EXPECT_TRUE(engine.healthy());
}

TEST(EngineResilience, RestoreHealthClearsTheLatchImmediately) {
  ResilienceFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 1,
                                      .recovery_probe_interval = 0}});
  engine.set_fallback(&f.host);
  FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  config.max_faults = 1;
  FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  const nn::Sequence seq = f.sequence(5);
  EXPECT_TRUE(engine.infer(seq).degraded);
  engine.restore_health();
  EXPECT_TRUE(engine.healthy());
  EXPECT_FALSE(engine.infer(seq).degraded);
}

TEST(DetectorResilience, DeferredClassificationRetriesOnNextCall) {
  ResilienceFixture f;
  kernels::CsdLstmEngine engine(
      f.device, f.model_config, f.params,
      kernels::EngineConfig{.batch_threads = 1,
                            .retry = {.max_attempts = 1,
                                      .recovery_probe_interval = 0}});
  // No fallback: classifying while unhealthy throws, the detector defers.
  FaultConfig config;
  config.xrt_launch_failure_probability = 1.0;
  config.max_faults = 1;
  FaultPlan plan(config);
  f.board.set_fault_plan(&plan);

  detect::StreamingDetector detector(
      engine, detect::DetectorConfig{.window_length = 8,
                                     .hop = 4,
                                     .threshold = 0.0,
                                     .consecutive_alerts = 1});
  // Fill the window: the 8th call comes due, hits the injected launch
  // failure, and is deferred rather than dropped.
  for (int i = 0; i < 8; ++i) {
    detector.on_api_call(1, static_cast<nn::TokenId>(i % 48));
  }
  EXPECT_EQ(detector.classifications_run(), 0u);
  EXPECT_EQ(detector.degraded_classifications(), 1u);
  EXPECT_FALSE(detector.csd_healthy());

  // The plan is exhausted, so a manual restore sticks; the very next call
  // retries the deferred classification (no hop-length wait).
  engine.restore_health();
  const std::optional<detect::Detection> detection =
      detector.on_api_call(1, 9);
  ASSERT_TRUE(detection.has_value());
  EXPECT_FALSE(detection->degraded);
  EXPECT_EQ(detector.classifications_run(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptance: a full seeded campaign through the fuzz stack is reproducible
// bit for bit — identical fault schedule, identical outcomes.
// ---------------------------------------------------------------------------

TEST(FaultCampaign, SeededCampaignIsReproducible) {
  csdml::testing::FuzzConfig config;
  config.seed = 2024;
  config.faults.seed = 2024;
  config.faults.xrt_launch_failure_probability = 0.02;
  config.faults.nand_read_disturb_probability = 0.05;
  config.faults.pcie_corruption_probability = 0.05;
  config.faults.nvme_timeout_probability = 0.1;
  config.faults.nvme_drop_probability = 0.1;

  csdml::testing::FuzzStack first(config);
  const csdml::testing::FuzzOutcome a = first.run(600);
  csdml::testing::FuzzStack second(config);
  const csdml::testing::FuzzOutcome b = second.run(600);

  EXPECT_GT(a.detections, 0u);
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.parity_mismatches, 0u);
  EXPECT_EQ(a.accounting_mismatches, 0u);
  EXPECT_EQ(a.fault_digest, b.fault_digest);
  EXPECT_EQ(a.outcome_digest, b.outcome_digest);
  EXPECT_EQ(a.detections, b.detections);
  EXPECT_EQ(a.degraded_serves, b.degraded_serves);
  EXPECT_EQ(first.plan().log(), second.plan().log());
}

}  // namespace
}  // namespace csdml::faults
