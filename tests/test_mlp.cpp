#include "nn/mlp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

TEST(Mlp, FeaturizeIsNormalisedHistogram) {
  MlpConfig config{.vocab_size = 10, .hidden_dim = 4};
  Rng rng(1);
  const MlpClassifier model(config, rng);
  const Vector f = model.featurize({1, 1, 2, 9});
  EXPECT_DOUBLE_EQ(f[1], 0.5);
  EXPECT_DOUBLE_EQ(f[2], 0.25);
  EXPECT_DOUBLE_EQ(f[9], 0.25);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  double sum = 0.0;
  for (const double v : f) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Mlp, OrderBlindByConstruction) {
  MlpConfig config;
  Rng rng(3);
  const MlpClassifier model(config, rng);
  // Any permutation of the same multiset scores identically — the
  // "static snapshot" property the paper's model-selection text criticises.
  EXPECT_DOUBLE_EQ(model.forward({1, 2, 3, 4, 5}),
                   model.forward({5, 4, 3, 2, 1}));
}

TEST(Mlp, GradCheck) {
  MlpConfig config{.vocab_size = 9, .hidden_dim = 5};
  Rng rng(7);
  MlpClassifier model(config, rng);
  const Sequence seq{0, 3, 3, 8, 1, 2};
  MlpParams grads = MlpParams::zeros(config);
  model.backward(seq, 1, grads);

  const auto params = model.mutable_params().parameter_pointers();
  const auto analytic = grads.parameter_pointers();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 3) {
    const double original = *params[i];
    *params[i] = original + eps;
    const double lp = bce_loss(model.forward(seq), 1);
    *params[i] = original - eps;
    const double lm = bce_loss(model.forward(seq), 1);
    *params[i] = original;
    const double numeric = (lp - lm) / (2 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(*analytic[i]), 1e-4});
    EXPECT_LT(std::abs(numeric - *analytic[i]) / denom, 2e-3) << "param " << i;
  }
}

TEST(Mlp, LearnsFrequencySeparableTask) {
  // Classes differ in token frequencies (no ordering needed): the MLP
  // must solve this easily.
  MlpConfig config{.vocab_size = 6, .hidden_dim = 6};
  Rng rng(9);
  MlpClassifier model(config, rng);
  SequenceDataset data;
  Rng data_rng(11);
  for (int i = 0; i < 100; ++i) {
    const int label = i % 2;
    Sequence seq;
    for (int j = 0; j < 12; ++j) {
      seq.push_back(static_cast<TokenId>(
          data_rng.uniform_int(0, 2) + (label != 0 ? 3 : 0)));
    }
    data.sequences.push_back(std::move(seq));
    data.labels.push_back(label);
  }
  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 10;
  tc.learning_rate = 0.05;
  EXPECT_GE(train_mlp(model, data, data, tc).best_test_accuracy, 0.95);
}

TEST(Mlp, CannotLearnPureOrderingTask) {
  // Both classes share the exact token multiset; only the order differs.
  // The bag-of-calls model is blind to it by construction.
  MlpConfig config{.vocab_size = 4, .hidden_dim = 8};
  Rng rng(13);
  MlpClassifier model(config, rng);
  SequenceDataset data;
  for (int i = 0; i < 60; ++i) {
    // class 0: 0 1 2 3 repeated; class 1: 3 2 1 0 repeated.
    Sequence seq;
    for (int j = 0; j < 12; ++j) {
      const int phase = j % 4;
      seq.push_back(static_cast<TokenId>(i % 2 == 0 ? phase : 3 - phase));
    }
    data.sequences.push_back(std::move(seq));
    data.labels.push_back(i % 2);
  }
  TrainConfig tc;
  tc.epochs = 15;
  tc.batch_size = 10;
  const TrainResult result = train_mlp(model, data, data, tc);
  EXPECT_NEAR(result.best_test_accuracy, 0.5, 0.05);  // chance level
}

TEST(Mlp, ParameterPointersUnique) {
  MlpConfig config{.vocab_size = 7, .hidden_dim = 3};
  Rng rng(15);
  MlpClassifier model(config, rng);
  auto ptrs = model.mutable_params().parameter_pointers();
  EXPECT_EQ(ptrs.size(), model.params().total_parameter_count());
  std::sort(ptrs.begin(), ptrs.end());
  EXPECT_EQ(std::adjacent_find(ptrs.begin(), ptrs.end()), ptrs.end());
}

TEST(Mlp, Guards) {
  MlpConfig config;
  Rng rng(17);
  const MlpClassifier model(config, rng);
  EXPECT_THROW(model.featurize({}), PreconditionError);
  EXPECT_THROW(model.featurize({-1}), PreconditionError);
}

}  // namespace
}  // namespace csdml::nn
