#include "detect/mitigation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/train.hpp"

namespace csdml::detect {
namespace {

/// Same two-language toy model as the detector tests.
struct GuardFixture {
  nn::LstmConfig config{.vocab_size = 20, .embed_dim = 4, .hidden_dim = 8};
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  std::unique_ptr<kernels::CsdLstmEngine> engine;

  GuardFixture() {
    Rng rng(3);
    nn::LstmClassifier model(config, rng);
    nn::SequenceDataset train;
    Rng data_rng(5);
    for (int i = 0; i < 160; ++i) {
      const int label = i % 2;
      nn::Sequence seq;
      for (int j = 0; j < 12; ++j) {
        seq.push_back(static_cast<nn::TokenId>(
            data_rng.uniform_int(0, 9) + (label != 0 ? 10 : 0)));
      }
      train.sequences.push_back(std::move(seq));
      train.labels.push_back(label);
    }
    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    nn::train(model, train, train, tc);
    engine = std::make_unique<kernels::CsdLstmEngine>(
        device, config, model.params(), kernels::EngineConfig{});
  }
};

DetectorConfig fast_detector() {
  return DetectorConfig{.window_length = 20, .hop = 5};
}

TEST(Guard, QuarantinesRansomwareAndBlocksItsWrites) {
  GuardFixture f;
  CsdGuard guard(*f.engine, fast_detector(),
                 MitigationPolicy{.quarantine_threshold = 0.8});
  Rng rng(7);
  bool quarantined = false;
  int calls = 0;
  for (int i = 0; i < 100 && !quarantined; ++i, ++calls) {
    const MitigationAction action =
        guard.on_api_call(99, static_cast<nn::TokenId>(rng.uniform_int(10, 19)));
    quarantined = action == MitigationAction::QuarantineProcess;
  }
  ASSERT_TRUE(quarantined);
  EXPECT_TRUE(guard.is_quarantined(99));
  EXPECT_LE(calls, 60);  // prompt detection, not end-of-trace

  // Subsequent encryption writes are rejected by the drive.
  EXPECT_FALSE(guard.allow_write(99));
  EXPECT_TRUE(guard.allow_write(1));  // other processes unaffected
  EXPECT_EQ(guard.stats().writes_blocked, 1u);
  EXPECT_EQ(guard.stats().writes_allowed, 1u);
  EXPECT_GE(guard.stats().quarantines, 1u);
}

TEST(Guard, BenignProcessNeverBlocked) {
  GuardFixture f;
  CsdGuard guard(*f.engine, fast_detector(), MitigationPolicy{});
  Rng rng(9);
  for (int i = 0; i < 150; ++i) {
    guard.on_api_call(5, static_cast<nn::TokenId>(rng.uniform_int(0, 9)));
    EXPECT_TRUE(guard.allow_write(5));
  }
  EXPECT_FALSE(guard.is_quarantined(5));
  EXPECT_EQ(guard.stats().writes_blocked, 0u);
  EXPECT_EQ(guard.stats().calls_observed, 150u);
}

TEST(Guard, AlertOnlyBetweenThresholds) {
  GuardFixture f;
  // Impossible quarantine threshold: everything stays alert-only.
  CsdGuard guard(*f.engine, fast_detector(),
                 MitigationPolicy{.quarantine_threshold = 1.1,
                                  .alert_threshold = 0.5});
  Rng rng(11);
  bool alerted = false;
  for (int i = 0; i < 100; ++i) {
    const MitigationAction action =
        guard.on_api_call(3, static_cast<nn::TokenId>(rng.uniform_int(10, 19)));
    EXPECT_NE(action, MitigationAction::QuarantineProcess);
    alerted |= action == MitigationAction::AlertOnly;
  }
  EXPECT_TRUE(alerted);
  EXPECT_FALSE(guard.is_quarantined(3));
  EXPECT_GT(guard.stats().detections, 0u);
  EXPECT_EQ(guard.stats().quarantines, 0u);
}

TEST(Guard, ReleaseRestoresWrites) {
  GuardFixture f;
  CsdGuard guard(*f.engine, fast_detector(), MitigationPolicy{});
  Rng rng(13);
  for (int i = 0; i < 100 && !guard.is_quarantined(8); ++i) {
    guard.on_api_call(8, static_cast<nn::TokenId>(rng.uniform_int(10, 19)));
  }
  ASSERT_TRUE(guard.is_quarantined(8));
  guard.release(8);
  EXPECT_FALSE(guard.is_quarantined(8));
  EXPECT_TRUE(guard.allow_write(8));
}

TEST(Guard, PolicyValidated) {
  GuardFixture f;
  EXPECT_THROW(CsdGuard(*f.engine, fast_detector(),
                        MitigationPolicy{.quarantine_threshold = 0.4,
                                         .alert_threshold = 0.6}),
               PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
