#include "detect/guarded_ssd.hpp"

#include <gtest/gtest.h>

#include "nn/train.hpp"

namespace csdml::detect {
namespace {

/// Two-language toy model (low tokens benign, high tokens malicious), the
/// same scheme the detector/mitigation tests use.
struct GuardedFixture {
  nn::LstmConfig config{.vocab_size = 20, .embed_dim = 4, .hidden_dim = 8};
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  std::unique_ptr<kernels::CsdLstmEngine> engine;
  std::unique_ptr<CsdGuard> guard;
  std::unique_ptr<GuardedSsd> guarded;

  GuardedFixture() {
    Rng rng(3);
    nn::LstmClassifier model(config, rng);
    nn::SequenceDataset train;
    Rng data_rng(5);
    for (int i = 0; i < 160; ++i) {
      const int label = i % 2;
      nn::Sequence seq;
      for (int j = 0; j < 12; ++j) {
        seq.push_back(static_cast<nn::TokenId>(
            data_rng.uniform_int(0, 9) + (label != 0 ? 10 : 0)));
      }
      train.sequences.push_back(std::move(seq));
      train.labels.push_back(label);
    }
    nn::TrainConfig tc;
    tc.epochs = 10;
    tc.batch_size = 16;
    nn::train(model, train, train, tc);
    engine = std::make_unique<kernels::CsdLstmEngine>(
        device, config, model.params(), kernels::EngineConfig{});
    guard = std::make_unique<CsdGuard>(
        *engine, DetectorConfig{.window_length = 20, .hop = 5},
        MitigationPolicy{.quarantine_threshold = 0.9});
    guarded = std::make_unique<GuardedSsd>(board, *guard);
  }

  nn::TokenId benign_token(Rng& rng) const {
    return static_cast<nn::TokenId>(rng.uniform_int(0, 9));
  }
  nn::TokenId malicious_token(Rng& rng) const {
    return static_cast<nn::TokenId>(rng.uniform_int(10, 19));
  }
};

std::vector<std::uint8_t> block_of(std::uint8_t value) {
  return std::vector<std::uint8_t>(4096, value);
}

TEST(GuardedSsd, RansomwareWritesAreRolledBack) {
  GuardedFixture f;
  const ProcessId kMalware = 66;
  TimePoint now{};

  // "Victim files" on the drive before the attack.
  now = f.board.ssd().write(100, block_of(0x11), now);
  now = f.board.ssd().write(101, block_of(0x22), now);

  // Malware interleaves calls and encrypted overwrites until quarantined.
  Rng rng(7);
  bool quarantined = false;
  int overwrites = 0;
  for (int i = 0; i < 200 && !quarantined; ++i) {
    quarantined = f.guarded->on_api_call(kMalware, f.malicious_token(rng), now) ==
                  MitigationAction::QuarantineProcess;
    if (!quarantined && i % 10 == 5) {
      const auto result = f.guarded->write(
          kMalware, 100 + static_cast<std::uint64_t>(overwrites % 2),
          block_of(0xEE), now);
      ASSERT_TRUE(result.accepted);
      now = result.done;
      ++overwrites;
    }
  }
  ASSERT_TRUE(quarantined);
  ASSERT_GT(overwrites, 0);

  // Post-quarantine: writes rejected, victim data restored.
  EXPECT_FALSE(f.guarded->write(kMalware, 100, block_of(0xEE), now).accepted);
  EXPECT_EQ(f.board.ssd().read(100, 1, now).data.front(), 0x11);
  EXPECT_EQ(f.board.ssd().read(101, 1, now).data.front(), 0x22);
  EXPECT_GT(f.guarded->stats().blocks_restored, 0u);
  EXPECT_EQ(f.guarded->preserved_blocks(kMalware), 0u);
}

TEST(GuardedSsd, BenignWritesPersistAndShadowsAreDiscarded) {
  GuardedFixture f;
  const ProcessId kEditor = 7;
  TimePoint now{};
  now = f.board.ssd().write(50, block_of(0xAA), now);

  Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    f.guarded->on_api_call(kEditor, f.benign_token(rng), now);
    if (i % 20 == 10) {
      const auto result = f.guarded->write(kEditor, 50, block_of(0xBB), now);
      ASSERT_TRUE(result.accepted);
      now = result.done;
    }
  }
  EXPECT_GT(f.guarded->preserved_blocks(kEditor), 0u);
  f.guarded->resolve_benign(kEditor);
  EXPECT_EQ(f.guarded->preserved_blocks(kEditor), 0u);
  EXPECT_GT(f.guarded->stats().blocks_discarded, 0u);
  // The benign write persists — no rollback happened.
  EXPECT_EQ(f.board.ssd().read(50, 1, now).data.front(), 0xBB);
}

TEST(GuardedSsd, FirstPreImageWinsAcrossRepeatedOverwrites) {
  GuardedFixture f;
  const ProcessId kProcess = 3;
  TimePoint now{};
  now = f.board.ssd().write(10, block_of(0x01), now);

  // Three overwrites of the same block: only the original is preserved.
  for (const std::uint8_t value : {0x02, 0x03, 0x04}) {
    const auto result = f.guarded->write(kProcess, 10, block_of(value), now);
    ASSERT_TRUE(result.accepted);
    now = result.done;
  }
  EXPECT_EQ(f.guarded->preserved_blocks(kProcess), 1u);
  EXPECT_EQ(f.guarded->stats().blocks_preserved, 1u);
}

TEST(GuardedSsd, MultiBlockWritesPreserveEveryBlock) {
  GuardedFixture f;
  TimePoint now{};
  std::vector<std::uint8_t> three_blocks(3 * 4096, 0x5A);
  const auto result = f.guarded->write(1, 200, three_blocks, now);
  ASSERT_TRUE(result.accepted);
  EXPECT_TRUE(result.snapshotted);
  EXPECT_EQ(f.guarded->preserved_blocks(1), 3u);
  EXPECT_EQ(f.guarded->stats().shadow_bytes.count, 3u * 4096u);
}

TEST(GuardedSsd, EmptyWriteRejected) {
  GuardedFixture f;
  EXPECT_THROW(f.guarded->write(1, 0, {}, TimePoint{}), PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
