// Health / SLO evaluation: verdict grading from the latency tail, degraded
// serves and the unhealthy latch, plus the machine-readable renderings.
#include "obs/health.hpp"

#include <gtest/gtest.h>

#include "json_lint.hpp"

namespace csdml::obs {
namespace {

TEST(Health, EmptySnapshotIsOk) {
  MetricsRegistry reg;
  const HealthReport report = evaluate_health(reg.snapshot(), true);
  EXPECT_EQ(report.verdict, HealthVerdict::Ok);
  EXPECT_DOUBLE_EQ(report.slo_burn, 0.0);
  EXPECT_DOUBLE_EQ(report.within_slo, 1.0);
  EXPECT_TRUE(report.reasons.empty());
}

TEST(Health, VerdictNamesAreStable) {
  EXPECT_STREQ(health_verdict_name(HealthVerdict::Ok), "ok");
  EXPECT_STREQ(health_verdict_name(HealthVerdict::Degraded), "degraded");
  EXPECT_STREQ(health_verdict_name(HealthVerdict::Unhealthy), "unhealthy");
}

TEST(Health, FastTailStaysOk) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 100);
  for (int i = 0; i < 30; ++i) reg.observe("detector.inference_us", 100.0);
  const HealthReport report = evaluate_health(reg.snapshot(), true);
  EXPECT_EQ(report.verdict, HealthVerdict::Ok);
  EXPECT_DOUBLE_EQ(report.within_slo, 1.0);
  EXPECT_EQ(report.classifications, 100u);
}

TEST(Health, BurningTheErrorBudgetDegrades) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 30);
  // 2 of 30 classifications blow the 5ms budget: burn ~6.7x, below the
  // 10x unhealthy threshold.
  for (int i = 0; i < 28; ++i) reg.observe("detector.inference_us", 100.0);
  for (int i = 0; i < 2; ++i) reg.observe("detector.inference_us", 1e6);
  const HealthReport report = evaluate_health(reg.snapshot(), true);
  EXPECT_EQ(report.verdict, HealthVerdict::Degraded);
  EXPECT_GE(report.slo_burn, 1.0);
  EXPECT_LT(report.slo_burn, 10.0);
  ASSERT_EQ(report.reasons.size(), 1u);
  EXPECT_EQ(report.reasons[0], "latency_slo_burning");
}

TEST(Health, CollapsedTailIsUnhealthy) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 30);
  for (int i = 0; i < 30; ++i) reg.observe("detector.inference_us", 1e6);
  const HealthReport report = evaluate_health(reg.snapshot(), true);
  EXPECT_EQ(report.verdict, HealthVerdict::Unhealthy);
  EXPECT_GE(report.slo_burn, 10.0);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_EQ(report.reasons[0], "latency_slo_burn_critical");
}

TEST(Health, TooFewSamplesIsNoDataNotABurn) {
  MetricsRegistry reg;
  // 5 terrible samples, but below min_samples: "no data yet", not a page.
  for (int i = 0; i < 5; ++i) reg.observe("detector.inference_us", 1e6);
  const HealthReport report = evaluate_health(reg.snapshot(), true);
  EXPECT_EQ(report.verdict, HealthVerdict::Ok);
  EXPECT_DOUBLE_EQ(report.slo_burn, 0.0);
  EXPECT_GT(report.p99_latency_us, 0.0);  // the tail is still reported
}

TEST(Health, UnhealthyLatchOverridesEverything) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 100);
  const HealthReport report = evaluate_health(reg.snapshot(), false);
  EXPECT_EQ(report.verdict, HealthVerdict::Unhealthy);
  EXPECT_FALSE(report.csd_healthy);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_EQ(report.reasons[0], "csd_unhealthy_latched");
}

TEST(Health, DegradedServeBudgetExceededDegrades) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 100);
  reg.add_counter("engine.fallback_inferences", 5);  // 5% > 1% budget
  reg.add_counter("engine.marked_unhealthy", 1);
  reg.add_counter("engine.recoveries", 1);
  const HealthReport report = evaluate_health(reg.snapshot(), true);
  EXPECT_EQ(report.verdict, HealthVerdict::Degraded);
  EXPECT_EQ(report.fallback_serves, 5u);
  EXPECT_EQ(report.unhealthy_latches, 1u);
  EXPECT_EQ(report.recoveries, 1u);
  ASSERT_EQ(report.reasons.size(), 1u);
  EXPECT_EQ(report.reasons[0], "degraded_serve_budget_exceeded");
}

TEST(Health, ConfigurableSlo) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 30);
  for (int i = 0; i < 30; ++i) reg.observe("detector.inference_us", 100.0);
  SloConfig strict;
  strict.latency_slo_us = 1.0;  // nothing fits a 1us budget
  const HealthReport report = evaluate_health(reg.snapshot(), true, strict);
  EXPECT_EQ(report.verdict, HealthVerdict::Unhealthy);
  EXPECT_DOUBLE_EQ(report.within_slo, 0.0);
}

TEST(Health, RenderingsCarryTheVerdictAndReasons) {
  MetricsRegistry reg;
  reg.add_counter("detector.classifications", 100);
  reg.add_counter("engine.fallback_inferences", 5);
  const HealthReport report = evaluate_health(reg.snapshot(), false);

  const std::string text = report.to_text();
  EXPECT_NE(text.find("unhealthy"), std::string::npos);
  EXPECT_NE(text.find("csd_unhealthy_latched"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_TRUE(testing::JsonLint::valid(json)) << json;
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"unhealthy\""), std::string::npos);
  EXPECT_NE(json.find("\"csd_healthy\":false"), std::string::npos);
  EXPECT_NE(json.find("\"reasons\":["), std::string::npos);
}

}  // namespace
}  // namespace csdml::obs
