// Differential fuzzing of the full detection stack under fault schedules.
//
// Each campaign replays a seeded randomized event stream (API calls,
// process churn, SSD/NVMe traffic) through a FuzzStack and checks every
// classification against independent oracles — fused vs stage-by-stage
// reference vs host baseline — plus the no-silent-drop accounting. CI runs
// ≥1k events per campaign; CSDML_FUZZ_ITERS scales the loops up for long
// local runs without touching the code.
#include "fuzz_harness.hpp"

#include <gtest/gtest.h>

namespace csdml::testing {
namespace {

faults::FaultConfig moderate_faults(std::uint64_t seed) {
  faults::FaultConfig config;
  config.seed = seed;
  config.xrt_launch_failure_probability = 0.01;
  config.nand_read_disturb_probability = 0.05;
  config.pcie_corruption_probability = 0.05;
  config.nvme_timeout_probability = 0.10;
  config.nvme_drop_probability = 0.10;
  return config;
}

void run_campaign(kernels::OptimizationLevel level, std::uint64_t seed,
                  bool with_fallback) {
  FuzzConfig config;
  config.seed = seed;
  config.level = level;
  config.faults = moderate_faults(seed * 31 + 7);
  config.with_fallback = with_fallback;
  FuzzStack stack(config);
  const FuzzOutcome outcome = stack.run(fuzz_iterations(1200));

  EXPECT_EQ(outcome.parity_mismatches, 0u) << "seed " << seed;
  EXPECT_EQ(outcome.accounting_mismatches, 0u) << "seed " << seed;
  EXPECT_GT(outcome.detections, 0u) << "seed " << seed;
  EXPECT_GT(outcome.faults_injected, 0u) << "seed " << seed;
}

TEST(DifferentialFuzz, FixedPointCampaignsHoldParityUnderFaults) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    run_campaign(kernels::OptimizationLevel::FixedPoint, seed, true);
  }
}

TEST(DifferentialFuzz, VanillaCampaignsHoldParityUnderFaults) {
  for (const std::uint64_t seed : {44ULL, 55ULL, 66ULL}) {
    run_campaign(kernels::OptimizationLevel::Vanilla, seed, true);
  }
}

TEST(DifferentialFuzz, NoFallbackCampaignDefersInsteadOfDropping) {
  // Without a host fallback every unhealthy stretch must show up as
  // deferred classifications — the accounting check inside run() fails the
  // campaign if any due classification vanishes.
  FuzzConfig config;
  config.seed = 99;
  config.level = kernels::OptimizationLevel::FixedPoint;
  config.faults = moderate_faults(991);
  // Aggressive launch failures so retry exhaustion (three consecutive
  // failed attempts) actually occurs and unhealthy windows open up.
  config.faults.xrt_launch_failure_probability = 0.5;
  config.with_fallback = false;
  FuzzStack stack(config);
  const FuzzOutcome outcome = stack.run(fuzz_iterations(1200));

  EXPECT_EQ(outcome.parity_mismatches, 0u);
  EXPECT_EQ(outcome.accounting_mismatches, 0u);
  EXPECT_GT(outcome.deferred, 0u);
  EXPECT_EQ(outcome.degraded_serves, 0u);  // no fallback to serve them
  EXPECT_GT(outcome.detections, 0u);
}

TEST(DifferentialFuzz, FaultFreeCampaignNeverDegrades) {
  FuzzConfig config;
  config.seed = 7;
  config.faults.seed = 7;  // all probabilities zero
  FuzzStack stack(config);
  const FuzzOutcome outcome = stack.run(fuzz_iterations(1200));

  EXPECT_EQ(outcome.parity_mismatches, 0u);
  EXPECT_EQ(outcome.accounting_mismatches, 0u);
  EXPECT_EQ(outcome.faults_injected, 0u);
  EXPECT_EQ(outcome.deferred, 0u);
  EXPECT_EQ(outcome.degraded_serves, 0u);
  EXPECT_GT(outcome.detections, 0u);
}

}  // namespace
}  // namespace csdml::testing
