// Alert-engine tests: latch/clear hysteresis under a flapping metric,
// the two acceptance-criterion detections — an injected p99 latency
// regression (EWMA z-score) and an injected verdict-score distribution
// shift (PSI/KS drift) — each latching a flight-recorded alert on a
// fully deterministic injected clock, plus the critical auto-dump path.
#include "obs/anomaly.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace csdml::obs {
namespace {

/// Records one value and evaluates, advancing the injected clock one
/// collector interval per call. Returns the transitions of this tick.
std::vector<Alert> step(AlertEngine& engine, TimeSeriesStore& store,
                        const std::string& series, std::int64_t& now_us,
                        double value) {
  now_us += 100'000;
  store.record(series, now_us, value);
  return engine.evaluate(store, now_us);
}

/// Flight events whose detail matches exactly.
std::size_t count_events(const FlightRecorder& recorder,
                         const std::string& detail) {
  std::size_t n = 0;
  for (const FlightEvent& event : recorder.snapshot()) {
    if (event.kind == FlightEventKind::Alert && detail == event.detail) ++n;
  }
  return n;
}

TEST(AlertEngine, ThresholdLatchAndClearWithHysteresis) {
  registry().reset();
  FlightRecorder recorder(64);
  AlertEngine engine(&recorder);
  AlertRule rule;
  rule.id = "b0.defer.high";
  rule.series = "b0.deferred.delta";
  rule.kind = AlertRuleKind::AboveThreshold;
  rule.threshold = 100.0;
  rule.clear_threshold = 80.0;  // hysteresis band (80, 100]
  rule.min_samples = 1;
  rule.fire_for = 2;
  rule.clear_for = 3;
  rule.board = 0;
  engine.add_rule(rule);

  TimeSeriesStore store;
  std::int64_t now_us = 0;

  // One spike is not an alert (fire_for = 2).
  EXPECT_TRUE(step(engine, store, rule.series, now_us, 150.0).empty());
  EXPECT_TRUE(step(engine, store, rule.series, now_us, 50.0).empty());
  EXPECT_EQ(engine.active_count(), 0u);

  // Two consecutive violations latch exactly one fired transition.
  EXPECT_TRUE(step(engine, store, rule.series, now_us, 150.0).empty());
  const std::vector<Alert> fired =
      step(engine, store, rule.series, now_us, 150.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].active);
  EXPECT_EQ(fired[0].rule_id, rule.id);
  EXPECT_EQ(fired[0].board, 0);
  EXPECT_EQ(engine.active_count(), 1u);
  EXPECT_TRUE(engine.board_alerted(0, AlertSeverity::Warning));
  EXPECT_FALSE(engine.board_alerted(0, AlertSeverity::Critical));
  EXPECT_FALSE(engine.board_alerted(1, AlertSeverity::Warning));
  EXPECT_EQ(count_events(recorder, "b0.defer.high"), 1u);
  EXPECT_EQ(registry().counter_value("alerts.fired"), 1u);

  // 90 sits inside the hysteresis band: below the fire threshold but
  // above the clear threshold, so the latched alert holds.
  step(engine, store, rule.series, now_us, 90.0);
  EXPECT_EQ(engine.active_count(), 1u);

  // A flapping metric (clean/violating alternation) never accumulates
  // clear_for consecutive clean evals — the alert must not strobe.
  for (int i = 0; i < 6; ++i) {
    const double value = i % 2 == 0 ? 50.0 : 150.0;
    EXPECT_TRUE(step(engine, store, rule.series, now_us, value).empty());
  }
  EXPECT_EQ(engine.active_count(), 1u);
  EXPECT_EQ(registry().counter_value("alerts.fired"), 1u);  // no re-fires

  // Three consecutive clean evals clear it, once.
  step(engine, store, rule.series, now_us, 50.0);
  step(engine, store, rule.series, now_us, 50.0);
  const std::vector<Alert> cleared =
      step(engine, store, rule.series, now_us, 50.0);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].active);
  EXPECT_EQ(engine.active_count(), 0u);
  EXPECT_EQ(registry().counter_value("alerts.cleared"), 1u);
  EXPECT_EQ(count_events(recorder, "b0.defer.high:clear"), 1u);
  EXPECT_EQ(engine.alerts().front().fire_count, 1u);
}

TEST(AlertEngine, ThresholdRulesWaitOutWarmup) {
  FlightRecorder recorder(64);
  AlertEngine engine(&recorder);
  AlertRule rule;
  rule.id = "warmup";
  rule.series = "s";
  rule.threshold = 10.0;
  rule.min_samples = 4;
  rule.fire_for = 2;
  engine.add_rule(rule);

  TimeSeriesStore store;
  std::int64_t now_us = 0;
  // Violating values during warm-up accumulate no streak at all.
  for (int i = 0; i < 3; ++i) step(engine, store, "s", now_us, 500.0);
  EXPECT_EQ(engine.active_count(), 0u);
  step(engine, store, "s", now_us, 500.0);  // sample 4: first counted eval
  EXPECT_EQ(engine.active_count(), 0u);
  step(engine, store, "s", now_us, 500.0);  // second: latch
  EXPECT_EQ(engine.active_count(), 1u);
}

TEST(AlertEngine, StaleSeriesDoesNotAdvanceStreaks) {
  FlightRecorder recorder(64);
  AlertEngine engine(&recorder);
  AlertRule rule;
  rule.id = "stale";
  rule.series = "s";
  rule.threshold = 10.0;
  rule.min_samples = 1;
  rule.fire_for = 2;
  engine.add_rule(rule);

  TimeSeriesStore store;
  std::int64_t now_us = 0;
  step(engine, store, "s", now_us, 500.0);
  // Re-evaluating without a new sample must not double-count the same
  // violation (a fast evaluator against a slow sampler).
  engine.evaluate(store, now_us + 1);
  engine.evaluate(store, now_us + 2);
  EXPECT_EQ(engine.active_count(), 0u);
  step(engine, store, "s", now_us, 500.0);
  EXPECT_EQ(engine.active_count(), 1u);
}

// Acceptance criterion: an injected p99 latency regression raises a
// latched alert with a flight-recorder event, on an injected clock.
TEST(AlertEngine, InjectedP99RegressionLatchesEwmaAlert) {
  registry().reset();
  FlightRecorder recorder(64);
  AlertEngine engine(&recorder);
  AlertRule rule;
  rule.id = "b0.p99.regression";
  rule.series = "fleet.b0.p99_us";
  rule.kind = AlertRuleKind::EwmaZScore;
  rule.threshold = 6.0;
  rule.min_samples = 8;
  rule.fire_for = 2;
  rule.clear_for = 3;
  rule.severity = AlertSeverity::Warning;
  rule.board = 0;
  engine.add_rule(rule);

  TimeSeriesStore store;
  std::int64_t now_us = 0;
  // Stable baseline with deterministic jitter: p99 ~120us +- 4.
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(
        step(engine, store, rule.series, now_us, 120.0 + (i % 3) * 4.0)
            .empty())
        << "baseline tick " << i << " must not alert";
  }
  EXPECT_EQ(engine.active_count(), 0u);

  // Inject a 6x p99 step; the z-score latches after fire_for ticks.
  std::int64_t fired_at = 0;
  const std::int64_t regression_start = now_us;
  for (int i = 0; i < 8 && fired_at == 0; ++i) {
    for (const Alert& alert :
         step(engine, store, rule.series, now_us, 720.0 + (i % 3) * 4.0)) {
      if (alert.active) fired_at = alert.fired_at_us;
    }
  }
  ASSERT_NE(fired_at, 0) << "regression never latched";
  EXPECT_EQ(fired_at - regression_start, 2 * 100'000)
      << "EWMA latch latency should be exactly fire_for ticks";
  EXPECT_TRUE(engine.board_alerted(0, AlertSeverity::Warning));
  EXPECT_EQ(count_events(recorder, "b0.p99.regression"), 1u);

  // The regression itself must not pollute the baseline: it stays
  // latched for as long as the regression lasts.
  for (int i = 0; i < 32; ++i) {
    step(engine, store, rule.series, now_us, 720.0 + (i % 3) * 4.0);
  }
  EXPECT_EQ(engine.active_count(), 1u);

  // Recovery to the old baseline clears it after clear_for ticks.
  std::vector<Alert> cleared;
  for (int i = 0; i < 8 && cleared.empty(); ++i) {
    cleared = step(engine, store, rule.series, now_us, 120.0 + (i % 3) * 4.0);
  }
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].active);
  EXPECT_EQ(engine.active_count(), 0u);
}

// Acceptance criterion: an injected verdict-score distribution shift
// latches the drift alert (PSI/KS vs the calibration baseline), appends
// a flight event, and — being critical — triggers the auto-dump.
TEST(AlertEngine, InjectedScoreShiftLatchesDriftAlertAndAutoDumps) {
  registry().reset();
  const std::string dump_path =
      (std::filesystem::temp_directory_path() / "csdml_drift_dump.json")
          .string();
  std::remove(dump_path.c_str());
  ::setenv("CSDML_FLIGHT_DUMP", dump_path.c_str(), 1);

  FlightRecorder recorder(64);
  AlertEngine engine(&recorder);
  DriftConfig drift;
  drift.bins = 10;
  drift.window = 128;
  drift.min_scores = 32;
  drift.fire_for = 2;
  drift.clear_for = 3;
  engine.enable_drift(drift);
  EXPECT_TRUE(engine.drift_enabled());

  // Calibration: benign-heavy score distribution clustered low.
  for (int i = 0; i < 128; ++i) {
    engine.observe_score(0.05 + 0.02 * (i % 5));
  }
  engine.calibrate_drift();

  TimeSeriesStore store;
  std::int64_t now_us = 0;
  // In-distribution traffic: PSI ~0, no alert however long it runs.
  for (int i = 0; i < 8; ++i) {
    engine.observe_score(0.05 + 0.02 * (i % 5));
    now_us += 100'000;
    EXPECT_TRUE(engine.evaluate(store, now_us).empty());
  }
  EXPECT_LT(engine.drift_psi(), 0.05);
  EXPECT_EQ(engine.active_count(), 0u);

  // Distribution shift: scores flood toward the high end (the model
  // drifting off calibration), swamping the rolling window.
  for (int i = 0; i < 128; ++i) {
    engine.observe_score(0.85 + 0.01 * (i % 5));
  }
  EXPECT_GT(engine.drift_psi(), drift.psi_threshold);
  EXPECT_GT(engine.drift_ks(), drift.ks_threshold);

  std::vector<Alert> fired;
  for (int i = 0; i < 4 && fired.empty(); ++i) {
    now_us += 100'000;
    fired = engine.evaluate(store, now_us);
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].active);
  EXPECT_EQ(fired[0].rule_id, "model.score_drift");
  EXPECT_EQ(fired[0].severity, AlertSeverity::Critical);
  EXPECT_EQ(engine.active_count(), 1u);
  EXPECT_EQ(count_events(recorder, "model.score_drift"), 1u);
  EXPECT_EQ(registry().counter_value("alerts.fired.critical"), 1u);

  // Critical latch auto-dumped the post-mortem to CSDML_FLIGHT_DUMP.
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << "auto-dump missing at " << dump_path;
  std::string json((std::istreambuf_iterator<char>(dump)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("alert:model.score_drift"), std::string::npos);
  EXPECT_NE(json.find("flight_recorder"), std::string::npos);

  // Scores returning to calibration wash the window; the alert clears
  // after clear_for clean evaluations.
  for (int i = 0; i < 128; ++i) {
    engine.observe_score(0.05 + 0.02 * (i % 5));
  }
  std::vector<Alert> cleared;
  for (int i = 0; i < 8 && cleared.empty(); ++i) {
    now_us += 100'000;
    cleared = engine.evaluate(store, now_us);
  }
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_FALSE(cleared[0].active);
  EXPECT_EQ(engine.active_count(), 0u);

  ::unsetenv("CSDML_FLIGHT_DUMP");
  std::remove(dump_path.c_str());
}

TEST(ScoreDrift, PsiAndKsAgainstExplicitBaseline) {
  DriftConfig config;
  config.bins = 10;
  config.window = 64;
  config.min_scores = 16;
  ScoreDrift drift(config);

  std::vector<double> baseline;
  for (int i = 0; i < 64; ++i) baseline.push_back(0.1 + 0.01 * (i % 8));
  drift.set_baseline(baseline);
  EXPECT_TRUE(drift.calibrated());

  // Below min_scores both statistics read 0 (not spuriously huge).
  for (int i = 0; i < 8; ++i) drift.observe(0.9);
  EXPECT_DOUBLE_EQ(drift.psi(), 0.0);
  EXPECT_DOUBLE_EQ(drift.ks(), 0.0);

  // A fully shifted window maxes the CDF gap and blows past the PSI
  // rule of thumb.
  for (int i = 0; i < 64; ++i) drift.observe(0.9);
  EXPECT_GT(drift.psi(), 1.0);
  EXPECT_DOUBLE_EQ(drift.ks(), 1.0);

  // Matching the baseline again settles both back near zero.
  for (int i = 0; i < 64; ++i) drift.observe(0.1 + 0.01 * (i % 8));
  EXPECT_LT(drift.psi(), 0.05);
  EXPECT_LT(drift.ks(), 0.05);
}

TEST(ScoreDrift, ScoresClampedIntoUnitInterval) {
  ScoreDrift drift(DriftConfig{.bins = 4, .window = 8, .min_scores = 2});
  drift.observe(-3.0);
  drift.observe(7.0);
  drift.observe(1.0);  // exact upper edge lands in the last bin
  EXPECT_EQ(drift.observed(), 3u);
  drift.calibrate();
  EXPECT_TRUE(drift.calibrated());
  EXPECT_DOUBLE_EQ(drift.psi(), 0.0);  // window == baseline
}

TEST(AlertEngine, RateOfChangeCatchesCliffsBelowStaticLines) {
  FlightRecorder recorder(64);
  AlertEngine engine(&recorder);
  AlertRule rule;
  rule.id = "thru.cliff";
  rule.series = "thru";
  rule.kind = AlertRuleKind::RateOfChange;
  rule.threshold = 0.5;  // >50% change tick-over-tick
  rule.min_samples = 2;
  rule.fire_for = 1;
  engine.add_rule(rule);

  TimeSeriesStore store;
  std::int64_t now_us = 0;
  step(engine, store, "thru", now_us, 1000.0);
  step(engine, store, "thru", now_us, 980.0);   // -2%: fine
  step(engine, store, "thru", now_us, 1020.0);  // +4%: fine
  EXPECT_EQ(engine.active_count(), 0u);
  // Throughput halves in one tick — a cliff no static threshold on the
  // absolute level would see.
  const std::vector<Alert> fired = step(engine, store, "thru", now_us, 400.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].active);
}

}  // namespace
}  // namespace csdml::obs
