// Multi-resolution time-series store tests: the promotion invariant
// (downsampling loses resolution, never mass — sums, counts and extremes
// survive the tier cascade verbatim), ring wraparound, injected-clock
// gaps, the snapshot sampler's delta/rate/percentile derivations, the
// hardened CSDML_TSDB_* env parsing, and the collector in deterministic
// manual-tick mode.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace csdml::obs {
namespace {

TsdbConfig tiny_config(std::size_t capacity, std::size_t factor,
                       std::size_t tiers) {
  TsdbConfig config;
  config.capacity = capacity;
  config.downsample_factor = factor;
  config.tiers = tiers;
  return config;
}

TEST(TsSeries, PromotionConservesMassAndExtremes) {
  TsSeries series(tiny_config(16, 4, 3));
  // 16 raw samples 0..15: four tier-1 buckets, one tier-2 bucket.
  for (int i = 0; i < 16; ++i) {
    series.append(i * 100, static_cast<double>(i));
  }
  EXPECT_EQ(series.samples(), 16u);
  EXPECT_EQ(series.promotions(), 5u);  // 4 raw->tier1 + 1 tier1->tier2

  const std::vector<TsBucket> tier1 = series.buckets(1);
  ASSERT_EQ(tier1.size(), 4u);
  // First tier-1 bucket absorbed raw samples 0..3.
  EXPECT_EQ(tier1[0].count, 4u);
  EXPECT_DOUBLE_EQ(tier1[0].sum, 6.0);
  EXPECT_DOUBLE_EQ(tier1[0].min, 0.0);
  EXPECT_DOUBLE_EQ(tier1[0].max, 3.0);
  EXPECT_EQ(tier1[0].start_us, 0);
  EXPECT_EQ(tier1[0].end_us, 300);
  // Last tier-1 bucket absorbed raw samples 12..15.
  EXPECT_DOUBLE_EQ(tier1[3].min, 12.0);
  EXPECT_DOUBLE_EQ(tier1[3].max, 15.0);

  const std::vector<TsBucket> tier2 = series.buckets(2);
  ASSERT_EQ(tier2.size(), 1u);
  EXPECT_EQ(tier2[0].count, 16u);
  EXPECT_DOUBLE_EQ(tier2[0].sum, 120.0);
  EXPECT_DOUBLE_EQ(tier2[0].min, 0.0);
  EXPECT_DOUBLE_EQ(tier2[0].max, 15.0);
  EXPECT_EQ(tier2[0].start_us, 0);
  EXPECT_EQ(tier2[0].end_us, 1500);

  // Mass conservation across the whole cascade: aggregating any tier
  // yields the same sum/count/extremes while the raw ring still holds
  // everything.
  const TsBucket raw = series.aggregate(0);
  const TsBucket t2 = series.aggregate(2);
  EXPECT_EQ(raw.count, t2.count);
  EXPECT_DOUBLE_EQ(raw.sum, t2.sum);
  EXPECT_DOUBLE_EQ(raw.min, t2.min);
  EXPECT_DOUBLE_EQ(raw.max, t2.max);
}

TEST(TsSeries, RawRingWrapsOldestOut) {
  TsSeries series(tiny_config(4, 8, 1));
  for (int i = 0; i < 10; ++i) {
    series.append(i, static_cast<double>(i));
  }
  EXPECT_EQ(series.samples(), 10u);
  EXPECT_EQ(series.promotions(), 0u);  // single tier: nothing to promote to
  const std::vector<TsBucket> raw = series.buckets(0);
  ASSERT_EQ(raw.size(), 4u);  // capacity, not sample count
  // Oldest-first and the oldest six evicted.
  EXPECT_DOUBLE_EQ(raw[0].sum, 6.0);
  EXPECT_DOUBLE_EQ(raw[3].sum, 9.0);
  EXPECT_DOUBLE_EQ(series.last(), 9.0);
  EXPECT_EQ(series.last_t_us(), 9);
}

TEST(TsSeries, DownsampledTierOutlivesRawWraparound) {
  // Tier 1 covers factor x capacity raw samples — history the raw ring
  // has long evicted must still be queryable one tier up.
  TsSeries series(tiny_config(4, 2, 2));
  for (int i = 0; i < 12; ++i) {
    series.append(i, static_cast<double>(i));
  }
  const std::vector<TsBucket> tier1 = series.buckets(1);
  ASSERT_EQ(tier1.size(), 4u);
  // Retained tier-1 window: raw samples 4..11 (pairs 4+5 .. 10+11); the
  // raw ring itself only holds 8..11 by now.
  EXPECT_DOUBLE_EQ(tier1[0].min, 4.0);
  EXPECT_DOUBLE_EQ(tier1[0].sum, 9.0);
  EXPECT_DOUBLE_EQ(tier1[3].max, 11.0);
  EXPECT_EQ(series.buckets(0).size(), 4u);
  EXPECT_DOUBLE_EQ(series.buckets(0)[0].sum, 8.0);
}

TEST(TsSeries, ClockGapsStayInBucketTimestamps) {
  // A collector stall (gap in the injected timeline) must not corrupt
  // bucket time ranges: buckets carry the timestamps they absorbed, and
  // a promoted bucket spans the gap honestly.
  TsSeries series(tiny_config(8, 4, 2));
  series.append(0, 1.0);
  series.append(100, 2.0);
  series.append(60'000'000, 3.0);  // a minute-long stall
  series.append(60'000'100, 4.0);
  const std::vector<TsBucket> tier1 = series.buckets(1);
  ASSERT_EQ(tier1.size(), 1u);
  EXPECT_EQ(tier1[0].start_us, 0);
  EXPECT_EQ(tier1[0].end_us, 60'000'100);
  EXPECT_EQ(tier1[0].count, 4u);
  EXPECT_DOUBLE_EQ(tier1[0].sum, 10.0);
}

TEST(TsSeries, PartialAccumulationSurfacesOnlyOncePromoted) {
  TsSeries series(tiny_config(8, 4, 2));
  for (int i = 0; i < 6; ++i) {
    series.append(i, 1.0);
  }
  // Six raw samples: one full promotion (4) plus two pending — the
  // pending pair is not visible in tier 1 yet.
  ASSERT_EQ(series.buckets(1).size(), 1u);
  EXPECT_EQ(series.buckets(1)[0].count, 4u);
  series.append(6, 1.0);
  series.append(7, 1.0);
  ASSERT_EQ(series.buckets(1).size(), 2u);
}

TEST(TimeSeriesStore, ImplicitCreationAndLookups) {
  registry().reset();
  TimeSeriesStore store(tiny_config(16, 4, 2));
  store.record("a.p99", 100, 5.0);
  store.record("a.p99", 200, 7.0);
  store.record("b.shed", 200, 1.0);

  EXPECT_TRUE(store.has("a.p99"));
  EXPECT_FALSE(store.has("missing"));
  EXPECT_EQ(store.names(), (std::vector<std::string>{"a.p99", "b.shed"}));
  EXPECT_EQ(store.samples("a.p99"), 2u);
  EXPECT_DOUBLE_EQ(store.last("a.p99"), 7.0);
  EXPECT_DOUBLE_EQ(store.last("missing"), 0.0);
  EXPECT_TRUE(store.buckets("missing").empty());
  EXPECT_TRUE(store.buckets("a.p99", 99).empty());

  const TimeSeriesStore::Totals totals = store.totals();
  EXPECT_EQ(totals.series, 2u);
  EXPECT_EQ(totals.samples, 3u);
  // The store is itself observable: every record bumps tsdb.samples.
  EXPECT_EQ(registry().counter_value("tsdb.samples"), 3u);
  store.publish_gauges();
  const MetricsSnapshot snap = registry().snapshot();
  double series_gauge = -1.0;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "tsdb.series") series_gauge = value;
  }
  EXPECT_DOUBLE_EQ(series_gauge, 2.0);
}

TEST(SnapshotSampler, DerivesDeltasRatesAndPercentiles) {
  MetricsRegistry reg;
  reg.add_counter("served", 100);
  reg.set_gauge("depth", 3.5);
  for (int i = 1; i <= 100; ++i) reg.observe("lat_us", static_cast<double>(i));

  SnapshotSampler sampler({
      {"served.delta", SampleSpec::Kind::CounterDelta, "served"},
      {"served.rate", SampleSpec::Kind::CounterRate, "served"},
      {"depth", SampleSpec::Kind::Gauge, "depth"},
      {"lat.p99", SampleSpec::Kind::HistP99, "lat_us"},
      {"lat.count", SampleSpec::Kind::HistCount, "lat_us"},
      {"ghost.delta", SampleSpec::Kind::CounterDelta, "ghost"},
  });
  TimeSeriesStore store(tiny_config(16, 4, 1));

  // First tick: deltas measure against zero, rates have no elapsed time.
  auto frame = sampler.sample(1'000'000, reg.snapshot(), &store);
  EXPECT_DOUBLE_EQ(frame["served.delta"], 100.0);
  EXPECT_DOUBLE_EQ(frame["served.rate"], 0.0);
  EXPECT_DOUBLE_EQ(frame["depth"], 3.5);
  EXPECT_GE(frame["lat.p99"], 95.0);
  EXPECT_DOUBLE_EQ(frame["lat.count"], 100.0);
  EXPECT_DOUBLE_EQ(frame["ghost.delta"], 0.0);  // absent metric reads 0

  // Second tick two seconds later: 50 more served -> delta 50, rate 25/s.
  reg.add_counter("served", 50);
  frame = sampler.sample(3'000'000, reg.snapshot(), &store);
  EXPECT_DOUBLE_EQ(frame["served.delta"], 50.0);
  EXPECT_DOUBLE_EQ(frame["served.rate"], 25.0);

  // Every spec landed in the store, one sample per tick.
  EXPECT_EQ(store.samples("served.delta"), 2u);
  EXPECT_EQ(store.samples("ghost.delta"), 2u);
  EXPECT_DOUBLE_EQ(store.last("served.rate"), 25.0);

  // A registry reset (counter going backwards) must not produce a
  // gigantic unsigned-wrap delta.
  MetricsRegistry fresh;
  fresh.add_counter("served", 10);
  frame = sampler.sample(4'000'000, fresh.snapshot(), nullptr);
  EXPECT_DOUBLE_EQ(frame["served.delta"], 0.0);
}

TEST(BoardSampleSpecs, CoverTheServingSurface) {
  const std::vector<SampleSpec> specs = board_sample_specs("fleet.b0");
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].series, "fleet.b0.verdicts.delta");
  EXPECT_EQ(specs[0].metric, "fleet.b0.verdicts");
  EXPECT_EQ(specs[1].kind, SampleSpec::Kind::CounterRate);
  EXPECT_EQ(specs[5].series, "fleet.b0.p99_us");
  EXPECT_EQ(specs[5].metric, "fleet.b0.ingest_to_verdict_us");
}

class TsdbEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* name : {"CSDML_TSDB_CAPACITY", "CSDML_TSDB_FACTOR",
                             "CSDML_TSDB_TIERS", "CSDML_TSDB_INTERVAL_MS"}) {
      ::unsetenv(name);
    }
  }
};

TEST_F(TsdbEnvTest, ValidOverridesApply) {
  ::setenv("CSDML_TSDB_CAPACITY", "64", 1);
  ::setenv("CSDML_TSDB_FACTOR", "4", 1);
  ::setenv("CSDML_TSDB_TIERS", "2", 1);
  ::setenv("CSDML_TSDB_INTERVAL_MS", "250", 1);
  const TsdbConfig config = TsdbConfig::from_env();
  EXPECT_EQ(config.capacity, 64u);
  EXPECT_EQ(config.downsample_factor, 4u);
  EXPECT_EQ(config.tiers, 2u);
  EXPECT_EQ(config.interval_us, 250'000u);
}

TEST_F(TsdbEnvTest, InvalidValuesFallBackWithoutClamping) {
  const TsdbConfig defaults;
  // Non-numeric, trailing garbage, negative, out-of-range: each knob is
  // ignored as a whole — never clamped to the nearest bound.
  ::setenv("CSDML_TSDB_CAPACITY", "1O24", 1);  // letter O, not zero
  ::setenv("CSDML_TSDB_FACTOR", "100", 1);     // above max 64
  ::setenv("CSDML_TSDB_TIERS", "-3", 1);
  ::setenv("CSDML_TSDB_INTERVAL_MS", "250ms", 1);
  const TsdbConfig config = TsdbConfig::from_env();
  EXPECT_EQ(config.capacity, defaults.capacity);
  EXPECT_EQ(config.downsample_factor, defaults.downsample_factor);
  EXPECT_EQ(config.tiers, defaults.tiers);
  EXPECT_EQ(config.interval_us, defaults.interval_us);
}

TEST(TelemetryCollector, ManualTicksOnInjectedClock) {
  registry().reset();
  registry().add_counter("col.events", 7);

  std::int64_t sim_us = 0;
  CollectorConfig config;
  config.tsdb = tiny_config(16, 4, 2);
  config.clock = [&sim_us] { return sim_us; };
  config.start_thread = false;  // deterministic: owner drives every tick
  TelemetryCollector collector(
      config, {{"col.delta", SampleSpec::Kind::CounterDelta, "col.events"}});

  collector.tick();
  sim_us += 1'000'000;
  registry().add_counter("col.events", 3);
  collector.tick();

  EXPECT_EQ(collector.ticks(), 2u);
  EXPECT_EQ(collector.store().samples("col.delta"), 2u);
  EXPECT_DOUBLE_EQ(collector.store().last("col.delta"), 3.0);
  const std::vector<TsBucket> raw = collector.store().buckets("col.delta");
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[0].start_us, 0);
  EXPECT_EQ(raw[1].start_us, 1'000'000);
  collector.stop();
  collector.stop();  // idempotent
}

}  // namespace
}  // namespace csdml::obs
