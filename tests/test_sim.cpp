#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace csdml::sim {
namespace {

TEST(Simulation, ExecutesInTimestampOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(TimePoint{30}, [&] { order.push_back(3); });
  sim.schedule_at(TimePoint{10}, [&] { order.push_back(1); });
  sim.schedule_at(TimePoint{20}, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().picos, 30);
}

TEST(Simulation, FifoTieBreakAtEqualTimestamps) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  std::vector<std::int64_t> times;
  sim.schedule_after(Duration::picoseconds(10), [&] {
    times.push_back(sim.now().picos);
    sim.schedule_after(Duration::picoseconds(5),
                       [&] { times.push_back(sim.now().picos); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 15}));
}

TEST(Simulation, RejectsPastEventsAndNegativeDelays) {
  Simulation sim;
  sim.schedule_at(TimePoint{10}, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint{5}, [] {}), PreconditionError);
  EXPECT_THROW(sim.schedule_after(Duration::picoseconds(-1), [] {}),
               PreconditionError);
}

TEST(Simulation, RunUntilLeavesLaterEventsQueued) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(TimePoint{10}, [&] { ++fired; });
  sim.schedule_at(TimePoint{50}, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(TimePoint{20}), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().picos, 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsMayScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(Duration::picoseconds(1), chain);
  };
  sim.schedule_at(TimePoint{0}, chain);
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_EQ(depth, 10);
}

TEST(SerialResource, GrantsImmediatelyWhenFree) {
  SerialResource res;
  const TimePoint grant = res.acquire(TimePoint{100}, Duration::picoseconds(50));
  EXPECT_EQ(grant.picos, 100);
  EXPECT_EQ(res.free_at().picos, 150);
}

TEST(SerialResource, SerialisesOverlappingRequests) {
  SerialResource res;
  res.acquire(TimePoint{0}, Duration::picoseconds(100));
  const TimePoint second = res.acquire(TimePoint{30}, Duration::picoseconds(10));
  EXPECT_EQ(second.picos, 100);  // waits for the first to finish
  const TimePoint third = res.acquire(TimePoint{200}, Duration::picoseconds(10));
  EXPECT_EQ(third.picos, 200);  // idle gap, no queueing
}

TEST(SerialResource, TracksBusyTime) {
  SerialResource res;
  res.acquire(TimePoint{0}, Duration::picoseconds(40));
  res.acquire(TimePoint{0}, Duration::picoseconds(60));
  EXPECT_EQ(res.busy_time().picos, 100);
  EXPECT_THROW(res.acquire(TimePoint{0}, Duration::picoseconds(-1)),
               PreconditionError);
}

}  // namespace
}  // namespace csdml::sim
