#include "ransomware/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"

namespace csdml::ransomware {
namespace {

TraceRecord sample_record() {
  const auto& vocab = ApiVocabulary::instance();
  TraceRecord record;
  record.sample = "Ryuk/variant-0";
  record.label = 1;
  record.calls = {vocab.require("CreateFileW"), vocab.require("ReadFile"),
                  vocab.require("CryptEncrypt"), vocab.require("WriteFile"),
                  vocab.require("MoveFileExW")};
  return record;
}

TEST(TraceIo, RoundTrip) {
  std::vector<TraceRecord> records{sample_record()};
  TraceRecord benign;
  benign.sample = "7-Zip/session-0";
  benign.label = 0;
  benign.calls = {ApiVocabulary::instance().require("GetCommandLineW")};
  records.push_back(benign);

  std::stringstream buffer;
  write_traces_jsonl(buffer, records);
  const std::vector<TraceRecord> loaded = read_traces_jsonl(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].sample, "Ryuk/variant-0");
  EXPECT_EQ(loaded[0].label, 1);
  EXPECT_EQ(loaded[0].calls, records[0].calls);
  EXPECT_EQ(loaded[1].sample, "7-Zip/session-0");
  EXPECT_EQ(loaded[1].label, 0);
}

TEST(TraceIo, WritesReadableNames) {
  std::stringstream buffer;
  write_traces_jsonl(buffer, {sample_record()});
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"CryptEncrypt\""), std::string::npos);
  EXPECT_NE(text.find("\"label\":1"), std::string::npos);
  EXPECT_EQ(text.find("\"calls\":[]"), std::string::npos);
}

TEST(TraceIo, EscapesSpecialCharacters) {
  TraceRecord record;
  record.sample = "weird\"name\\with\nescapes";
  record.label = 0;
  record.calls = {ApiVocabulary::instance().require("Sleep")};
  std::stringstream buffer;
  write_traces_jsonl(buffer, {record});
  const auto loaded = read_traces_jsonl(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].sample, record.sample);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream buffer;
  buffer << "\n  \n";
  write_traces_jsonl(buffer, {sample_record()});
  buffer << "\n";
  EXPECT_EQ(read_traces_jsonl(buffer).size(), 1u);
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream in("not json\n");
    EXPECT_THROW(read_traces_jsonl(in), ParseError);
  }
  {
    std::stringstream in(R"({"sample":"x","label":3,"calls":[]})");
    EXPECT_THROW(read_traces_jsonl(in), ParseError);
  }
  {
    std::stringstream in(R"({"sample":"x","label":1,"calls":["NotAnApi"]})");
    EXPECT_THROW(read_traces_jsonl(in), ParseError);
  }
  {
    std::stringstream in(R"({"sample":"x","unknown":1})");
    EXPECT_THROW(read_traces_jsonl(in), ParseError);
  }
  {
    std::stringstream in(R"({"sample":"x","label":1,"calls":["Sleep"]} extra)");
    EXPECT_THROW(read_traces_jsonl(in), ParseError);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csdml_traces.jsonl";
  write_traces_jsonl_file(path, {sample_record()});
  const auto loaded = read_traces_jsonl_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].calls.size(), 5u);
  std::remove(path.c_str());
  EXPECT_THROW(read_traces_jsonl_file("/no/such/file.jsonl"), ParseError);
}

TEST(TraceIo, CorpusExportCoversEverySample) {
  const auto records = export_corpus_traces(7, 400);
  // 76 ransomware variants + 36 benign profiles.
  EXPECT_EQ(records.size(), 76u + 36u);
  std::size_t ransomware_count = 0;
  for (const auto& record : records) {
    EXPECT_GE(record.calls.size(), 400u);
    ransomware_count += record.label == 1;
    EXPECT_NE(record.sample.find('/'), std::string::npos);
  }
  EXPECT_EQ(ransomware_count, 76u);
}

TEST(TraceIo, CorpusExportRoundTripsThroughJson) {
  const auto records = export_corpus_traces(7, 200);
  std::stringstream buffer;
  write_traces_jsonl(buffer, records);
  const auto loaded = read_traces_jsonl(buffer);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].calls, records[i].calls);
  }
}

/// Fuzz: random records of random lengths survive the JSON round trip.
class TraceIoFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(GetParam());
  const auto& vocab = ApiVocabulary::instance();
  std::vector<TraceRecord> records;
  const auto record_count = static_cast<std::size_t>(rng.uniform_int(1, 12));
  for (std::size_t r = 0; r < record_count; ++r) {
    TraceRecord record;
    // Names with JSON-hostile characters.
    record.sample = "s" + std::to_string(r) + "\"quote\\slash\nnl";
    record.label = rng.chance(0.5) ? 1 : 0;
    const auto calls = static_cast<std::size_t>(rng.uniform_int(0, 200));
    for (std::size_t c = 0; c < calls; ++c) {
      record.calls.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, static_cast<std::int64_t>(vocab.size()) - 1)));
    }
    records.push_back(std::move(record));
  }
  std::stringstream buffer;
  write_traces_jsonl(buffer, records);
  const auto loaded = read_traces_jsonl(buffer);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t r = 0; r < records.size(); ++r) {
    EXPECT_EQ(loaded[r].sample, records[r].sample);
    EXPECT_EQ(loaded[r].label, records[r].label);
    EXPECT_EQ(loaded[r].calls, records[r].calls);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace csdml::ransomware
