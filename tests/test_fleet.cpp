// BoardFleet unit tests: consistent-hash placement (deterministic,
// sticky, minimal disruption), latch- and SLO-driven failover with the
// extended conservation law, canary-gated weight rollout, re-admission
// probes, and the per-board observability surface.
#include "serve/fleet.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "detect/detector.hpp"
#include "detect/token_ring.hpp"
#include "kernels/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace csdml::serve {
namespace {

nn::LstmConfig tiny_model() {
  return nn::LstmConfig{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
}

FleetConfig tiny_fleet_config(std::size_t boards) {
  FleetConfig config;
  config.boards = boards;
  config.health_check_interval = 0;  // sweeps are explicit in these tests
  config.serve.detector = detect::DetectorConfig{
      .window_length = 20, .hop = 5, .consecutive_alerts = 2};
  config.engine =
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint};
  // Tests drive failover deterministically (latch or synthetic burn);
  // real queueing latency must never trip the SLO path underneath them.
  config.slo.latency_slo_us = 1e7;
  return config;
}

std::vector<nn::TokenId> random_stream(std::uint64_t seed, std::size_t calls,
                                       std::int32_t vocab) {
  Rng rng(seed);
  std::vector<nn::TokenId> stream;
  stream.reserve(calls);
  for (std::size_t i = 0; i < calls; ++i) {
    stream.push_back(static_cast<nn::TokenId>(rng.uniform_int(0, vocab - 1)));
  }
  return stream;
}

struct LoggedVerdict {
  std::uint64_t call_index{0};
  double probability{0.0};
  bool alert{false};
};
using VerdictLog = std::map<detect::ProcessId, std::vector<LoggedVerdict>>;

/// Thread-safe collecting sink shared by every fleet under test.
struct Collector {
  std::mutex mutex;
  VerdictLog log;

  VerdictSink sink() {
    return [this](const Verdict& verdict) {
      std::lock_guard<std::mutex> lock(mutex);
      log[verdict.process].push_back(
          {verdict.call_index, verdict.probability, verdict.alert});
    };
  }
};

using Streams = std::map<detect::ProcessId, std::vector<nn::TokenId>>;

Streams make_streams(std::size_t processes, std::size_t calls,
                     std::int32_t vocab) {
  Streams streams;
  for (std::size_t p = 0; p < processes; ++p) {
    streams[static_cast<detect::ProcessId>(p + 1)] =
        random_stream(1000 + p, calls, vocab);
  }
  return streams;
}

/// Feeds calls [begin, end) of every stream, single-threaded.
void feed(BoardFleet& fleet, const Streams& streams, std::size_t begin,
          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    for (const auto& [pid, stream] : streams) {
      if (i < stream.size()) fleet.ingest(pid, stream[i]);
    }
  }
}

/// Keeps feeding hop-sized slices until the victim's engine latches
/// unhealthy (its next due batch exhausts retries against the kill plan).
std::size_t feed_until_latched(BoardFleet& fleet, const Streams& streams,
                               std::size_t from, std::size_t victim) {
  std::size_t cursor = from;
  const std::size_t limit = streams.begin()->second.size();
  while (fleet.engine(victim).healthy() && cursor < limit) {
    feed(fleet, streams, cursor, cursor + 5);
    cursor += 5;
    fleet.flush();
  }
  EXPECT_FALSE(fleet.engine(victim).healthy());
  return cursor;
}

/// The synchronous oracle from test_serving, over one shared engine: the
/// fleet's board-local windows must reproduce it bit-exactly.
VerdictLog sync_replay(kernels::CsdLstmEngine& engine,
                       const detect::DetectorConfig& config,
                       const Streams& streams) {
  VerdictLog log;
  for (const auto& [pid, stream] : streams) {
    detect::TokenRing window(config.window_length);
    std::uint64_t calls_seen = 0;
    std::uint64_t since_eval = 0;
    std::size_t streak = 0;
    for (const nn::TokenId token : stream) {
      window.push(token);
      ++calls_seen;
      ++since_eval;
      if (!window.full()) continue;
      const bool first_full = calls_seen == config.window_length;
      if (!first_full && since_eval < config.hop) continue;
      since_eval = 0;
      const kernels::InferenceResult result = engine.infer(window.view());
      if (result.probability >= config.threshold) {
        ++streak;
      } else {
        streak = 0;
      }
      log[pid].push_back({calls_seen, result.probability,
                          streak >= config.consecutive_alerts});
    }
  }
  return log;
}

TEST(Fleet, PlacementDeterministicAndSticky) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  obs::registry().reset();

  Collector sink_a;
  BoardFleet fleet_a(model, params, tiny_fleet_config(4), sink_a.sink());
  Collector sink_b;
  BoardFleet fleet_b(model, params, tiny_fleet_config(4), sink_b.sink());

  // Same seed, same ring: identical placement for any pid, before and
  // after the pid is actually seen.
  std::map<detect::ProcessId, std::size_t> placed;
  for (detect::ProcessId pid = 1; pid <= 64; ++pid) {
    EXPECT_EQ(fleet_a.board_of(pid), fleet_b.board_of(pid));
    placed[pid] = fleet_a.board_of(pid);
  }
  const Streams streams = make_streams(16, 30, model.vocab_size);
  feed(fleet_a, streams, 0, 30);
  fleet_a.flush();
  for (const auto& [pid, stream] : streams) {
    EXPECT_EQ(fleet_a.board_of(pid), placed[pid]) << "pid " << pid;
  }
  // Every board takes a share of 64 pids (hash quality smoke).
  std::vector<std::size_t> counts(4, 0);
  for (const auto& [pid, board] : placed) ++counts[board];
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(counts[k], 0u) << "board " << k << " owns no pids";
  }
}

TEST(Fleet, VerdictsMatchSyncOracleAcrossBoards) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(8, 60, model.vocab_size);
  const detect::DetectorConfig detector = tiny_fleet_config(1).serve.detector;

  obs::registry().reset();
  VerdictLog oracle;
  {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(
        device, model, params,
        kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
    oracle = sync_replay(engine, detector, streams);
  }

  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(3), collector.sink());
  feed(fleet, streams, 0, 60);
  fleet.flush();
  fleet.stop();

  // Board-local windows: scattering pids across boards must not change a
  // single classification (probability, call index, alert) — bit-exact.
  ASSERT_EQ(collector.log.size(), oracle.size());
  for (const auto& [pid, expected] : oracle) {
    const auto it = collector.log.find(pid);
    ASSERT_NE(it, collector.log.end());
    ASSERT_EQ(it->second.size(), expected.size()) << "pid " << pid;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(it->second[i].call_index, expected[i].call_index);
      EXPECT_EQ(it->second[i].probability, expected[i].probability);
      EXPECT_EQ(it->second[i].alert, expected[i].alert);
    }
  }
  EXPECT_TRUE(fleet.stats().conservation_ok());
}

TEST(Fleet, FailoverRemapsOnlyVictimPidsAndConserves) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(16, 120, model.vocab_size);
  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(4), collector.sink());

  feed(fleet, streams, 0, 40);
  fleet.flush();
  std::map<detect::ProcessId, std::size_t> before;
  for (const auto& [pid, stream] : streams) before[pid] = fleet.board_of(pid);
  const std::size_t victim = fleet.board_of(1);

  fleet.kill_board(victim);
  const std::size_t cursor = feed_until_latched(fleet, streams, 40, victim);
  fleet.check_health();

  // Only the victim's pids moved; every survivor-owned pid kept its board.
  EXPECT_FALSE(fleet.board_healthy(victim));
  EXPECT_EQ(fleet.boards_admitted(), 3u);
  for (const auto& [pid, board] : before) {
    if (board == victim) {
      EXPECT_NE(fleet.board_of(pid), victim) << "pid " << pid << " not moved";
    } else {
      EXPECT_EQ(fleet.board_of(pid), board) << "pid " << pid << " disrupted";
    }
  }

  // Extended conservation law: finish the streams, every carried deferral
  // must resolve on its destination board.
  feed(fleet, streams, cursor, streams.begin()->second.size());
  fleet.flush();
  fleet.stop();
  const BoardFleet::Stats stats = fleet.stats();
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.migrated_pending, 0u);  // the kill left deferrals owed
  EXPECT_TRUE(stats.conservation_ok());
  EXPECT_TRUE(stats.failover_resolved());
  EXPECT_EQ(stats.totals.migrated_resolved, stats.migrated_pending);
}

TEST(Fleet, SloBurnDrainsBoardAndProbeReadmits) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(12, 25, model.vocab_size);
  obs::registry().reset();
  Collector collector;
  FleetConfig config = tiny_fleet_config(3);
  config.slo.latency_slo_us = 5'000.0;  // this test trips the burn path
  BoardFleet fleet(model, params, config, collector.sink());
  feed(fleet, streams, 0, 25);
  fleet.flush();

  // Synthesize a collapsed latency tail on board 0's own series: every
  // sample far past the budget, well over min_samples.
  for (int i = 0; i < 64; ++i) {
    obs::registry().observe("fleet.b0.ingest_to_verdict_us", 1e9);
  }
  fleet.check_health();
  EXPECT_FALSE(fleet.board_healthy(0));  // drained by burn, engine healthy
  EXPECT_TRUE(fleet.engine(0).healthy());
  EXPECT_EQ(fleet.boards_admitted(), 2u);
  EXPECT_EQ(fleet.stats().failovers, 1u);
  // Nothing was deferred — the board was healthy, just slow.
  EXPECT_EQ(fleet.stats().migrated_pending, 0u);
  EXPECT_TRUE(fleet.stats().conservation_ok());

  // The next sweep's recovery probe re-admits it (the engine serves the
  // golden window fine).
  fleet.check_health();
  EXPECT_TRUE(fleet.board_healthy(0));
  EXPECT_EQ(fleet.stats().readmissions, 1u);
  fleet.stop();
}

TEST(Fleet, RolloutCanaryGatedWithVersionStamp) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(3), collector.sink());
  EXPECT_EQ(fleet.weight_version(), 1u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(fleet.engine(k).weight_updates(), 1u);
  }

  Rng next_rng(8);
  const nn::LstmParams next = nn::LstmParams::glorot(model, next_rng);
  const RolloutReport report = fleet.update_weights(next);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.canary_ok);
  EXPECT_EQ(report.version, 2u);
  EXPECT_EQ(fleet.weight_version(), 2u);
  ASSERT_EQ(report.per_board_us.size(), 3u);
  EXPECT_GT(report.canary_us, 0.0);
  EXPECT_GE(report.total_us, report.canary_us);
  // Every board flipped exactly once (construction + rollout).
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(fleet.engine(k).weight_updates(), 2u);
  }
  fleet.stop();
}

TEST(Fleet, RolloutRejectedWhenCanaryUnhealthy) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(12, 120, model.vocab_size);
  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(2), collector.sink());

  // Latch board 0 — the rollout's canary (first admitted board) — but do
  // NOT sweep: it is still in the ring when the rollout is attempted.
  fleet.kill_board(0);
  feed_until_latched(fleet, streams, 0, 0);

  Rng next_rng(8);
  const nn::LstmParams next = nn::LstmParams::glorot(model, next_rng);
  const RolloutReport report = fleet.update_weights(next);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.canary_ok);
  EXPECT_EQ(fleet.weight_version(), 1u);
  // The gate held: board 1 never flipped; the canary was rolled back
  // (flip + rollback = 2 extra stagings on board 0 only).
  EXPECT_EQ(fleet.engine(1).weight_updates(), 1u);
  EXPECT_EQ(fleet.engine(0).weight_updates(), 3u);
  fleet.stop();
}

TEST(Fleet, ReadmissionCatchesUpOnWeightVersion) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(12, 120, model.vocab_size);
  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(3), collector.sink());

  const std::size_t victim = fleet.board_of(1);
  feed(fleet, streams, 0, 25);
  fleet.flush();
  fleet.kill_board(victim);
  const std::size_t cursor = feed_until_latched(fleet, streams, 25, victim);
  fleet.check_health();
  ASSERT_FALSE(fleet.board_healthy(victim));

  // Roll out new weights while the victim is out of the ring: only the
  // two admitted boards flip.
  Rng next_rng(8);
  const RolloutReport report =
      fleet.update_weights(nn::LstmParams::glorot(model, next_rng));
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.per_board_us.size(), 2u);
  EXPECT_EQ(fleet.engine(victim).weight_updates(), 1u);

  // Revive: the probe re-admits the board and pushes the current version
  // first, so it never serves stale weights.
  fleet.revive_board(victim);
  fleet.check_health();
  EXPECT_TRUE(fleet.board_healthy(victim));
  EXPECT_EQ(fleet.engine(victim).weight_updates(), 2u);
  EXPECT_EQ(fleet.stats().readmissions, 1u);

  feed(fleet, streams, cursor, 120);
  fleet.flush();
  fleet.stop();
  EXPECT_TRUE(fleet.stats().conservation_ok());
  EXPECT_TRUE(fleet.stats().failover_resolved());
}

TEST(Fleet, SingleBoardKillRidesDeferralPath) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(4, 80, model.vocab_size);
  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(1), collector.sink());

  feed(fleet, streams, 0, 30);
  fleet.flush();
  fleet.kill_board(0);
  const std::size_t cursor = feed_until_latched(fleet, streams, 30, 0);
  fleet.check_health();
  // No survivor: the board stays in the ring, deferring instead of
  // migrating — the never-drop contract without a failover target.
  EXPECT_EQ(fleet.stats().failovers, 0u);
  EXPECT_EQ(fleet.boards_admitted(), 1u);

  feed(fleet, streams, cursor, 80);
  fleet.flush();
  fleet.stop();
  const BoardFleet::Stats stats = fleet.stats();
  EXPECT_GT(stats.totals.deferred, 0u);
  EXPECT_TRUE(stats.conservation_ok());
}

TEST(Fleet, PerBoardMetricsAndPrometheusSeries) {
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);
  const Streams streams = make_streams(12, 40, model.vocab_size);
  obs::registry().reset();
  Collector collector;
  BoardFleet fleet(model, params, tiny_fleet_config(2), collector.sink());
  feed(fleet, streams, 0, 40);
  fleet.flush();
  fleet.stop();

  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  std::uint64_t verdicts_by_board = 0;
  bool saw_b0 = false;
  bool saw_b1 = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "fleet.b0.verdicts") {
      saw_b0 = true;
      verdicts_by_board += value;
    }
    if (name == "fleet.b1.verdicts") {
      saw_b1 = true;
      verdicts_by_board += value;
    }
  }
  EXPECT_TRUE(saw_b0);
  EXPECT_TRUE(saw_b1);
  EXPECT_EQ(verdicts_by_board, fleet.stats().totals.verdicts);

  // The per-board series surface as csdml_fleet_* in the exposition
  // format, plus the fleet-level gauges.
  const std::string text = obs::to_prometheus_text(snapshot);
  EXPECT_NE(text.find("csdml_fleet_b0_verdicts"), std::string::npos);
  EXPECT_NE(text.find("csdml_fleet_b1_verdicts"), std::string::npos);
  EXPECT_NE(text.find("csdml_fleet_boards_admitted"), std::string::npos);
  EXPECT_NE(text.find("csdml_fleet_weight_version"), std::string::npos);
}

TEST(Fleet, AlertLatchDrainsBoardAndHoldsReadmission) {
  // A latched critical alert naming a board must drain it at the next
  // health sweep even though its SLO verdict is green, and readmission
  // must wait for the alert's clear hysteresis — all on an injected
  // clock with manual collector ticks.
  obs::registry().reset();
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);

  std::int64_t sim_us = 0;
  FleetConfig config = tiny_fleet_config(2);
  config.telemetry.collector_thread = false;
  config.telemetry.clock = [&sim_us] { return sim_us; };
  // Fires whenever board 0 produced any verdict in the last tick — a
  // condition the test can assert and then deterministically un-assert
  // by simply not feeding the board.
  obs::AlertRule rule;
  rule.id = "b0.saturated";
  rule.series = "fleet.b0.verdicts.delta";
  rule.kind = obs::AlertRuleKind::AboveThreshold;
  rule.threshold = 0.5;
  rule.min_samples = 1;
  rule.fire_for = 1;
  rule.clear_for = 2;
  rule.severity = obs::AlertSeverity::Critical;
  rule.board = 0;
  config.telemetry.rules = {rule};

  Collector sink;
  BoardFleet fleet(model, params, config, sink.sink());
  obs::TelemetryCollector& collector = *fleet.telemetry();
  const obs::AlertEngine& alerts = *fleet.alert_engine();
  const auto tick = [&] {
    sim_us += 100'000;
    collector.tick();
  };

  detect::ProcessId victim = 0;
  for (detect::ProcessId pid = 1; pid <= 64 && victim == 0; ++pid) {
    if (fleet.board_of(pid) == 0) victim = pid;
  }
  ASSERT_NE(victim, detect::ProcessId{0});

  const std::vector<nn::TokenId> stream = random_stream(42, 60, 32);
  for (const nn::TokenId token : stream) fleet.ingest(victim, token);
  fleet.flush();
  tick();  // verdicts.delta > 0 -> latch (fire_for = 1)
  EXPECT_TRUE(alerts.board_alerted(0));
  EXPECT_FALSE(alerts.board_alerted(1));

  EXPECT_EQ(fleet.boards_admitted(), 2u);
  fleet.check_health();
  EXPECT_FALSE(fleet.board_healthy(0)) << "alert gate should have drained b0";
  EXPECT_EQ(fleet.boards_admitted(), 1u);
  EXPECT_GE(obs::registry().counter_value("fleet.alert_drains"), 1u);

  // One quiet tick: delta back to 0, but clear_for = 2 keeps the latch —
  // the sweep must hold readmission, not bounce the board back in.
  tick();
  EXPECT_TRUE(alerts.board_alerted(0));
  fleet.check_health();
  EXPECT_FALSE(fleet.board_healthy(0));
  EXPECT_GE(obs::registry().counter_value("fleet.readmit_held_by_alert"), 1u);

  // Second quiet tick clears the alert; the next sweep probes and
  // readmits the board.
  tick();
  EXPECT_FALSE(alerts.board_alerted(0));
  fleet.check_health();
  EXPECT_TRUE(fleet.board_healthy(0));
  EXPECT_EQ(fleet.boards_admitted(), 2u);

  const BoardFleet::Stats stats = fleet.stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_GE(stats.readmissions, 1u);
  EXPECT_TRUE(stats.conservation_ok());
  fleet.stop();
}

TEST(Fleet, TelemetryCollectorSamplesBoardSeries) {
  // The fleet-owned collector derives the documented per-board series
  // from the registry; without explicit rules nothing ever alerts and
  // health sweeps behave exactly as an alert-free fleet (the golden
  // digests depend on this default).
  obs::registry().reset();
  const nn::LstmConfig model = tiny_model();
  Rng rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(model, rng);

  std::int64_t sim_us = 0;
  FleetConfig config = tiny_fleet_config(2);
  config.telemetry.collector_thread = false;
  config.telemetry.clock = [&sim_us] { return sim_us; };

  Collector sink;
  BoardFleet fleet(model, params, config, sink.sink());
  ASSERT_NE(fleet.telemetry(), nullptr);
  ASSERT_NE(fleet.alert_engine(), nullptr);

  const Streams streams = make_streams(4, 40, 32);
  feed(fleet, streams, 0, 40);
  fleet.flush();
  sim_us += 100'000;
  fleet.telemetry()->tick();

  const obs::TimeSeriesStore& store = fleet.telemetry()->store();
  for (std::size_t k = 0; k < 2; ++k) {
    const std::string prefix = "fleet.b" + std::to_string(k);
    EXPECT_TRUE(store.has(prefix + ".verdicts.delta")) << prefix;
    EXPECT_TRUE(store.has(prefix + ".throughput")) << prefix;
    EXPECT_TRUE(store.has(prefix + ".p99_us")) << prefix;
  }
  const double total_delta = store.last("fleet.b0.verdicts.delta") +
                             store.last("fleet.b1.verdicts.delta");
  EXPECT_DOUBLE_EQ(total_delta,
                   static_cast<double>(fleet.stats().totals.verdicts));

  fleet.check_health();  // no rules: the sweep must not drain anything
  EXPECT_EQ(fleet.boards_admitted(), 2u);
  EXPECT_EQ(fleet.alert_engine()->active_count(), 0u);
  fleet.stop();
}

}  // namespace
}  // namespace csdml::serve
