#include "host/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace csdml::host {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return CliRun{code, out.str(), err.str()};
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Cli, HelpAndUnknownCommands) {
  EXPECT_EQ(run({"help"}).code, 0);
  EXPECT_NE(run({"help"}).out.find("gen-dataset"), std::string::npos);
  EXPECT_EQ(run({}).code, 2);
  const CliRun unknown = run({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UsageErrorsReturnTwo) {
  EXPECT_EQ(run({"gen-dataset"}).code, 2);  // missing --out
  EXPECT_EQ(run({"train", "--dataset"}).code, 2);  // missing value
  EXPECT_EQ(run({"timings", "--level", "quantum"}).code, 2);
  EXPECT_EQ(run({"gen-dataset", "stray"}).code, 2);
  // Non-numeric values for numeric flags are usage errors, not crashes.
  EXPECT_EQ(run({"timings", "--cus", "many"}).code, 2);
  EXPECT_EQ(run({"gen-dataset", "--out", "/tmp/x.csv", "--seed", "abc"}).code, 2);
}

TEST(Cli, TimingsMatchesPaperTotal) {
  const CliRun result = run({"timings", "--level", "fixed-point"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("kernel_gates"), std::string::npos);
  EXPECT_NE(result.out.find("2.153"), std::string::npos);  // ~2.15133 us
}

TEST(Cli, TimingsStreamSwitch) {
  const CliRun axi = run({"timings"});
  const CliRun stream = run({"timings", "--stream"});
  EXPECT_EQ(stream.code, 0);
  EXPECT_NE(axi.out, stream.out);
}

TEST(Cli, ReportsRenderAllLevels) {
  const CliRun result = run({"reports"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("lstm_vanilla"), std::string::npos);
  EXPECT_NE(result.out.find("lstm_fixed-point"), std::string::npos);
  EXPECT_NE(result.out.find("Synthesis report: kernel_hidden_state"),
            std::string::npos);
}

TEST(Cli, EndToEndPipeline) {
  const std::string dataset = temp_path("csdml_cli_dataset.csv");
  const std::string weights = temp_path("csdml_cli_weights.txt");

  const CliRun gen = run({"gen-dataset", "--out", dataset, "--ransomware",
                          "120", "--benign", "141", "--seed", "5"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("261 windows"), std::string::npos);

  const CliRun train = run({"train", "--dataset", dataset, "--weights",
                            weights, "--epochs", "3"});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("best accuracy"), std::string::npos);

  const CliRun classify =
      run({"classify", "--weights", weights, "--dataset", dataset});
  ASSERT_EQ(classify.code, 0) << classify.err;
  EXPECT_NE(classify.out.find("accuracy"), std::string::npos);
  EXPECT_NE(classify.out.find("roc auc"), std::string::npos);
  EXPECT_NE(classify.out.find("us/window"), std::string::npos);

  const CliRun attribute = run({"attribute", "--weights", weights, "--dataset",
                                dataset, "--row", "0", "--top", "3"});
  ASSERT_EQ(attribute.code, 0) << attribute.err;
  EXPECT_NE(attribute.out.find("p(ransomware)"), std::string::npos);
  EXPECT_NE(attribute.out.find("api_call"), std::string::npos);
  EXPECT_EQ(run({"attribute", "--weights", weights, "--dataset", dataset,
                 "--row", "999999"}).code, 2);

  std::remove(dataset.c_str());
  std::remove(weights.c_str());
}

TEST(Cli, GenTracesWritesJsonl) {
  const std::string path = temp_path("csdml_cli_traces.jsonl");
  const CliRun result =
      run({"gen-traces", "--out", path, "--length", "300"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("112 sample traces"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(path));
  std::remove(path.c_str());
}

TEST(Cli, StatsRendersTelemetry) {
  const std::string trace = temp_path("csdml_cli_stats_trace.json");
  const CliRun result =
      run({"stats", "--calls", "300", "--trace-out", trace});
  ASSERT_EQ(result.code, 0) << result.err;
  // The metrics tables carry the percentile columns and the kernel lanes.
  EXPECT_NE(result.out.find("p50"), std::string::npos);
  EXPECT_NE(result.out.find("p95"), std::string::npos);
  EXPECT_NE(result.out.find("p99"), std::string::npos);
  EXPECT_NE(result.out.find("engine.kernel.gates_us"), std::string::npos);
  EXPECT_NE(result.out.find("detector.classifications"), std::string::npos);
  // The chrome trace names all three pipeline kernels.
  ASSERT_TRUE(std::filesystem::exists(trace));
  std::ifstream in(trace);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("kernel_preprocess"), std::string::npos);
  EXPECT_NE(json.find("kernel_gates"), std::string::npos);
  EXPECT_NE(json.find("kernel_hidden_state"), std::string::npos);
  std::remove(trace.c_str());

  const CliRun json_mode = run({"stats", "--calls", "300", "--json"});
  ASSERT_EQ(json_mode.code, 0) << json_mode.err;
  EXPECT_EQ(json_mode.out.front(), '{');
  EXPECT_NE(json_mode.out.find("\"histograms\""), std::string::npos);

  EXPECT_EQ(run({"stats", "--calls", "10"}).code, 2);  // below minimum
  EXPECT_EQ(run({"stats", "--level", "quantum"}).code, 2);
}

TEST(Cli, StatsRendersRequestSpansAndHealth) {
  const CliRun result = run({"stats", "--calls", "300", "--health"});
  ASSERT_EQ(result.code, 0) << result.err;
  // The request-span attribution table sits next to the device trace.
  EXPECT_NE(result.out.find("request spans:"), std::string::npos);
  EXPECT_NE(result.out.find("detector.classify"), std::string::npos);
  EXPECT_NE(result.out.find("engine.infer"), std::string::npos);
  EXPECT_NE(result.out.find("health: ok"), std::string::npos);

  const CliRun json = run({"stats", "--calls", "300", "--json", "--health"});
  ASSERT_EQ(json.code, 0) << json.err;
  EXPECT_NE(json.out.find("\"health\""), std::string::npos);
  EXPECT_NE(json.out.find("\"verdict\":\"ok\""), std::string::npos);
}

TEST(Cli, StatsPrometheusExposition) {
  const CliRun result = run({"stats", "--calls", "300", "--prometheus"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("# TYPE csdml_detector_classifications_total"),
            std::string::npos);
  EXPECT_NE(result.out.find("csdml_detector_inference_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_EQ(result.out.back(), '\n');
}

TEST(Cli, StatsTraceCarriesRequestSpans) {
  const std::string trace = temp_path("csdml_cli_span_trace.json");
  const CliRun result = run({"stats", "--calls", "300", "--fault-rate", "0.2",
                             "--seed", "7", "--trace-out", trace});
  ASSERT_EQ(result.code, 0) << result.err;
  std::ifstream in(trace);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("detector.classify"), std::string::npos);
  EXPECT_NE(json.find("engine.infer"), std::string::npos);
  EXPECT_NE(json.find("trace_id"), std::string::npos);
  std::remove(trace.c_str());
}

TEST(Cli, UnwritableTraceOutFailsBeforeTheRun) {
  const CliRun stats = run({"stats", "--calls", "300", "--trace-out",
                            "/nonexistent-dir/trace.json"});
  EXPECT_EQ(stats.code, 1);
  EXPECT_NE(stats.err.find("trace"), std::string::npos);
  // The probe runs before the (expensive) sample campaign, so failure is
  // immediate: no metrics tables reach stdout.
  EXPECT_EQ(stats.out.find("request spans:"), std::string::npos);
}

TEST(Cli, WatchPrintsRoundDeltasAndHealthColumn) {
  const CliRun result = run({"watch", "--rounds", "2", "--interval-calls",
                             "150"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("watch: 3 processes, 2 rounds x 150 calls"),
            std::string::npos);
  EXPECT_NE(result.out.find("round"), std::string::npos);
  EXPECT_NE(result.out.find("health"), std::string::npos);
  EXPECT_NE(result.out.find("ok"), std::string::npos);

  EXPECT_EQ(run({"watch", "--rounds", "0"}).code, 2);
  EXPECT_EQ(run({"watch", "--interval-calls", "10"}).code, 2);
  EXPECT_EQ(run({"watch", "--fault-rate", "1.5"}).code, 2);
}

TEST(Cli, StatsFaultRateValidation) {
  EXPECT_EQ(run({"stats", "--calls", "300", "--fault-rate", "1.0"}).code, 2);
  EXPECT_EQ(run({"stats", "--calls", "300", "--fault-rate", "-0.1"}).code, 2);
}

TEST(Cli, MissingFilesReturnOne) {
  EXPECT_EQ(run({"classify", "--weights", "/no/w.txt", "--dataset",
                 "/no/d.csv"}).code, 1);
  EXPECT_EQ(run({"train", "--dataset", "/no/d.csv", "--weights",
                 temp_path("w.txt")}).code, 1);
}

}  // namespace
}  // namespace csdml::host
