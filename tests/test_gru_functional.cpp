#include "kernels/gru_functional.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/train.hpp"

namespace csdml::kernels {
namespace {

struct Fixture {
  nn::GruConfig config;
  nn::GruParams params;
  Fixture() {
    Rng rng(91);
    params = nn::GruParams::glorot(config, rng);
    for (auto& w : params.dense_w) w *= 30.0;  // confident outputs
  }
  nn::Sequence sequence(std::uint64_t seed, int length = 60) const {
    Rng rng(seed);
    nn::Sequence seq;
    for (int i = 0; i < length; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          rng.uniform_int(0, config.vocab_size - 1)));
    }
    return seq;
  }
};

TEST(FixedGru, TracksFloatModel) {
  const Fixture f;
  const nn::GruClassifier reference(f.config, f.params);
  const FixedGruDatapath fixed(f.config, f.params);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const nn::Sequence seq = f.sequence(seed);
    // Bounded by the PLAN sigmoid's approximation error, as for the LSTM.
    EXPECT_NEAR(fixed.infer(seq), reference.forward(seq, nullptr), 0.1) << seed;
  }
}

TEST(FixedGru, DecisionsAgreeOnConfidentInputs) {
  const Fixture f;
  const nn::GruClassifier reference(f.config, f.params);
  const FixedGruDatapath fixed(f.config, f.params);
  int checked = 0;
  int agreed = 0;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    const nn::Sequence seq = f.sequence(seed);
    const double p = reference.forward(seq, nullptr);
    if (std::abs(p - 0.5) < 0.1) continue;
    ++checked;
    agreed += (p >= 0.5) == (fixed.infer(seq) >= 0.5);
  }
  ASSERT_GT(checked, 40);
  EXPECT_GE(static_cast<double>(agreed) / checked, 0.97);
}

TEST(FixedGru, OutputBoundedAndDeterministic) {
  const Fixture f;
  const FixedGruDatapath fixed(f.config, f.params);
  const nn::Sequence seq = f.sequence(7, 200);
  const double p = fixed.infer(seq);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_DOUBLE_EQ(p, fixed.infer(seq));
}

TEST(FixedGru, CoarserScaleIsLessFaithful) {
  const Fixture f;
  const nn::GruClassifier reference(f.config, f.params);
  const FixedGruDatapath fine(f.config, f.params, 1'000'000);
  const FixedGruDatapath coarse(f.config, f.params, 1'000);
  double fine_err = 0.0;
  double coarse_err = 0.0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const nn::Sequence seq = f.sequence(seed, 40);
    const double p = reference.forward(seq, nullptr);
    fine_err += std::abs(fine.infer(seq) - p);
    coarse_err += std::abs(coarse.infer(seq) - p);
  }
  EXPECT_LT(fine_err, coarse_err);
}

TEST(FixedGru, Guards) {
  const Fixture f;
  const FixedGruDatapath fixed(f.config, f.params);
  EXPECT_THROW(fixed.infer({}), PreconditionError);
  EXPECT_THROW(fixed.infer(nn::Sequence{-1}), PreconditionError);
  EXPECT_THROW(FixedGruDatapath(f.config, f.params, 0), PreconditionError);
}

}  // namespace
}  // namespace csdml::kernels
