#include "fixed/activations.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace csdml::fixedpt {
namespace {

TEST(Activations, SigmoidBoundsAndSymmetry) {
  for (double x = -20.0; x <= 20.0; x += 0.1) {
    const double s = sigmoid(x);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
    EXPECT_NEAR(sigmoid(-x), 1.0 - s, 1e-12);
  }
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
}

TEST(Activations, SoftsignBoundsOddnessMonotonicity) {
  double prev = -1.0;
  for (double x = -50.0; x <= 50.0; x += 0.25) {
    const double s = softsign(x);
    EXPECT_GT(s, -1.0);
    EXPECT_LT(s, 1.0);
    EXPECT_NEAR(softsign(-x), -s, 1e-12);  // odd function, like tanh
    EXPECT_GT(s, prev);                    // strictly increasing
    prev = s;
  }
  EXPECT_DOUBLE_EQ(softsign(0.0), 0.0);
  EXPECT_DOUBLE_EQ(softsign(1.0), 0.5);
}

TEST(Activations, SoftsignSharesTanhShape) {
  // Same sign, same asymptotes, ordering |softsign| <= |tanh| near 0.
  for (double x = 0.1; x <= 10.0; x += 0.1) {
    EXPECT_GT(softsign(x), 0.0);
    EXPECT_LT(softsign(x), std::tanh(x) + 1e-12);
  }
  EXPECT_NEAR(softsign(1000.0), 1.0, 1e-3);
  EXPECT_NEAR(std::tanh(1000.0), 1.0, 1e-12);
}

TEST(Activations, SoftsignDerivativeIsCorrect) {
  for (double x = -5.0; x <= 5.0; x += 0.01) {
    const double h = 1e-6;
    const double numeric = (softsign(x + h) - softsign(x - h)) / (2 * h);
    EXPECT_NEAR(softsign_derivative(x), numeric, 1e-6);
    EXPECT_GT(softsign_derivative(x), 0.0);  // smooth, non-vanishing gradient
  }
}

TEST(Activations, SigmoidDerivativeIsCorrect) {
  for (double x = -5.0; x <= 5.0; x += 0.05) {
    const double h = 1e-6;
    const double numeric = (sigmoid(x + h) - sigmoid(x - h)) / (2 * h);
    EXPECT_NEAR(sigmoid_derivative(x), numeric, 1e-6);
  }
}

TEST(Activations, SoftsignFixedMatchesFloat) {
  for (double x = -30.0; x <= 30.0; x += 0.0137) {
    const auto fx = ScaledFixed::from_double(x);
    EXPECT_NEAR(softsign_fixed(fx).to_double(), softsign(x), 2e-6) << x;
  }
}

TEST(Activations, SoftsignFixedStaysInOpenUnitInterval) {
  for (double x : {-1e6, -1000.0, -1.0, 0.0, 1.0, 1000.0, 1e6}) {
    const double s = softsign_fixed(ScaledFixed::from_double(x)).to_double();
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Activations, SigmoidPlanWithinPublishedError) {
  // PLAN approximation max error is 0.0189 (Amin et al. 1997).
  double worst = 0.0;
  for (double x = -8.0; x <= 8.0; x += 0.001) {
    worst = std::max(worst, std::abs(sigmoid_plan(x) - sigmoid(x)));
  }
  EXPECT_LT(worst, 0.0190);
  EXPECT_GT(worst, 0.010);  // it is an approximation, not exact
}

TEST(Activations, SigmoidFixedMatchesPlanFloat) {
  for (double x = -8.0; x <= 8.0; x += 0.0119) {
    const auto fx = ScaledFixed::from_double(x);
    // The integer coefficients 19s/8, 27s/32 etc. are exact at scale 1e6.
    EXPECT_NEAR(sigmoid_fixed(fx).to_double(), sigmoid_plan(x), 3e-6) << x;
  }
}

TEST(Activations, SigmoidFixedComplementSymmetry) {
  for (double x = -6.0; x <= 6.0; x += 0.1) {
    const double pos = sigmoid_fixed(ScaledFixed::from_double(x)).to_double();
    const double neg = sigmoid_fixed(ScaledFixed::from_double(-x)).to_double();
    EXPECT_NEAR(pos + neg, 1.0, 3e-6);
  }
}

TEST(Activations, SigmoidFixedSaturates) {
  EXPECT_DOUBLE_EQ(sigmoid_fixed(ScaledFixed::from_double(5.0)).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(sigmoid_fixed(ScaledFixed::from_double(100.0)).to_double(), 1.0);
  EXPECT_DOUBLE_EQ(sigmoid_fixed(ScaledFixed::from_double(-5.0)).to_double(), 0.0);
}

TEST(Activations, SoftsignTanhGapIsBoundedOnTypicalRange) {
  // The substitution argument: similar S-curve and asymptotes. The max
  // |softsign - tanh| gap is ~0.306 (near |x| = 2) and shrinks toward both
  // x = 0 and |x| -> inf.
  const double gap = softsign_tanh_max_gap(4.0, 4000);
  EXPECT_GT(gap, 0.25);
  EXPECT_LT(gap, 0.32);
  EXPECT_LT(softsign_tanh_max_gap(0.2, 400), 0.05);  // small around 0
  // Far out both saturate to the same asymptote.
  EXPECT_NEAR(softsign(50.0), std::tanh(50.0), 0.02);
}

}  // namespace
}  // namespace csdml::fixedpt
