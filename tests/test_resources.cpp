#include "hls/resources.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::hls {
namespace {

TEST(FpgaPart, KnownParts) {
  const FpgaPart ku15p = FpgaPart::ku15p();
  const FpgaPart u200 = FpgaPart::alveo_u200();
  EXPECT_EQ(ku15p.name, "xcku15p");
  EXPECT_EQ(u200.name, "alveo-u200");
  // The U200 is the larger device in every resource class.
  EXPECT_GT(u200.luts, ku15p.luts);
  EXPECT_GT(u200.dsp, ku15p.dsp);
  EXPECT_GT(u200.bram36, ku15p.bram36);
  EXPECT_EQ(u200.ddr_banks, 4u);  // the paper notes u200/u250 have four
}

TEST(ResourceEstimate, ArithmeticAndFit) {
  ResourceEstimate a{.luts = 100, .flip_flops = 200, .bram36 = 2, .dsp = 4};
  ResourceEstimate b{.luts = 50, .flip_flops = 100, .bram36 = 1, .dsp = 2};
  a += b;
  EXPECT_EQ(a.luts, 150u);
  EXPECT_EQ(a.dsp, 6u);
  const ResourceEstimate scaled = b * 4;
  EXPECT_EQ(scaled.luts, 200u);
  EXPECT_EQ(scaled.dsp, 8u);

  const FpgaPart part = FpgaPart::ku15p();
  EXPECT_TRUE(a.fits(part));
  ResourceEstimate huge{.luts = part.luts + 1};
  EXPECT_FALSE(huge.fits(part));
}

TEST(ResourceEstimate, UtilizationIsWorstClass) {
  const FpgaPart part = FpgaPart::ku15p();
  ResourceEstimate est;
  est.dsp = part.dsp / 2;
  est.luts = part.luts / 10;
  EXPECT_NEAR(est.utilization(part), 0.5, 1e-9);
}

TEST(EstimateResources, CountsDspForMultiplies) {
  KernelSpec kernel;
  kernel.name = "mac";
  LoopSpec loop;
  loop.name = "l";
  loop.trip_count = 8;
  loop.body_ops = {LoopOp{OpKind::IntMul, 10}};
  loop.pragmas.pipeline = true;
  kernel.loops.push_back(loop);
  const ResourceEstimate est = estimate_resources(kernel);
  EXPECT_GE(est.dsp, 20u);  // 10 muls x 2 DSP each
  EXPECT_GT(est.luts, 4'000u);  // shell + op glue
}

TEST(EstimateResources, UnrollMultipliesOperatorInstances) {
  KernelSpec kernel;
  kernel.name = "mac";
  LoopSpec loop;
  loop.name = "l";
  loop.trip_count = 8;
  loop.body_ops = {LoopOp{OpKind::IntMul, 4}};
  loop.pragmas.pipeline = true;
  loop.pragmas.unroll = 1;
  kernel.loops.push_back(loop);
  const auto base = estimate_resources(kernel).dsp;
  kernel.loops[0].pragmas.unroll = 4;
  const auto unrolled = estimate_resources(kernel).dsp;
  EXPECT_EQ(unrolled, base * 4);
}

TEST(EstimateResources, SequentialLoopsShareOperators) {
  KernelSpec kernel;
  kernel.name = "seq";
  LoopSpec loop;
  loop.name = "l";
  loop.trip_count = 8;
  loop.body_ops = {LoopOp{OpKind::IntMul, 16}};
  // No pipeline, no unroll: one shared multiplier instance per op count...
  kernel.loops.push_back(loop);
  const auto sequential = estimate_resources(kernel).dsp;
  kernel.loops[0].pragmas.pipeline = true;
  const auto pipelined = estimate_resources(kernel).dsp;
  EXPECT_LE(sequential, pipelined);
}

TEST(EstimateResources, BuffersMapToBramOrRegisters) {
  KernelSpec kernel;
  kernel.name = "buf";
  kernel.buffers.push_back(
      LocalBufferSpec{"weights", Bytes::kib(9), BufferBinding::Bram});
  const ResourceEstimate bram_est = estimate_resources(kernel);
  EXPECT_GE(bram_est.bram36, 2u + 2u);  // shell 2 + ceil(9 KiB / 4.5 KiB)

  KernelSpec reg_kernel;
  reg_kernel.name = "buf";
  reg_kernel.buffers.push_back(
      LocalBufferSpec{"weights", Bytes{128}, BufferBinding::Registers});
  const ResourceEstimate reg_est = estimate_resources(reg_kernel);
  EXPECT_GE(reg_est.flip_flops, 128u * 8u);
}

TEST(ResourceEstimate, UtilizationGuards) {
  ResourceEstimate est;
  FpgaPart broken;
  EXPECT_THROW(est.utilization(broken), PreconditionError);
}

}  // namespace
}  // namespace csdml::hls
