// Randomized differential test of the SSD against a trivial byte-array
// reference model: any sequence of writes and reads must return exactly
// what a flat address space would.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "csd/ssd.hpp"

namespace csdml::csd {
namespace {

class SsdFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsdFuzzTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  SsdController ssd(SsdConfig{});
  const std::uint64_t block = ssd.config().logical_block.count;

  // Reference: logical byte address -> value (unwritten space is anything,
  // so we only check bytes the test wrote).
  std::map<std::uint64_t, std::uint8_t> reference;
  TimePoint now{};

  for (int op = 0; op < 120; ++op) {
    const std::uint64_t lba = static_cast<std::uint64_t>(rng.uniform_int(0, 499));
    if (rng.chance(0.55)) {
      // Write 1..5 blocks of patterned data.
      const auto blocks = static_cast<std::size_t>(rng.uniform_int(1, 5));
      std::vector<std::uint8_t> payload(blocks * block);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      now = ssd.write(lba, payload, now);
      for (std::size_t i = 0; i < payload.size(); ++i) {
        reference[lba * block + i] = payload[i];
      }
    } else {
      const auto blocks = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
      const IoResult result = ssd.read(lba, blocks, now);
      now = result.done;
      ASSERT_EQ(result.data.size(), blocks * block);
      for (std::size_t i = 0; i < result.data.size(); ++i) {
        const auto it = reference.find(lba * block + i);
        if (it != reference.end()) {
          ASSERT_EQ(result.data[i], it->second)
              << "op " << op << " lba " << lba << " byte " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsdFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 99u, 1234u));

TEST(SsdFuzz, TimeIsMonotonicAcrossMixedOps) {
  Rng rng(7);
  SsdController ssd(SsdConfig{});
  TimePoint now{};
  for (int op = 0; op < 60; ++op) {
    const std::uint64_t lba = static_cast<std::uint64_t>(rng.uniform_int(0, 63));
    TimePoint next;
    if (rng.chance(0.5)) {
      next = ssd.write(lba, std::vector<std::uint8_t>(4096, 0x3C), now);
    } else {
      next = ssd.read(lba, 1, now).done;
    }
    EXPECT_GT(next.picos, now.picos);
    now = next;
  }
}

}  // namespace
}  // namespace csdml::csd
