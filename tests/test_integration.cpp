// End-to-end integration: synthesize dataset -> train offline -> export the
// weight text file -> host program loads it and deploys to the simulated
// SmartSSD -> the in-storage classifier and guard behave like the offline
// model. This is the paper's whole pipeline in one test.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "detect/mitigation.hpp"
#include "nn/train.hpp"
#include "nn/weights_io.hpp"
#include "ransomware/dataset_builder.hpp"

namespace csdml {
namespace {

struct Pipeline {
  ransomware::BuiltDataset built;
  nn::TrainTestSplit split;
  nn::LstmConfig config;
  std::unique_ptr<nn::LstmClassifier> model;
  nn::TrainResult train_result;

  Pipeline() {
    ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
    spec.ransomware_windows = 500;
    spec.benign_windows = 588;  // keeps the 46% ratio
    built = ransomware::build_dataset(spec);
    Rng rng(41);
    split = nn::split_dataset(built.data, 0.2, rng);
    model = std::make_unique<nn::LstmClassifier>(config, rng);
    nn::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 32;
    train_result = nn::train(*model, split.train, split.test, tc);
  }
};

Pipeline& pipeline() {
  static Pipeline p;  // train once, share across the integration tests
  return p;
}

TEST(Integration, OfflineTrainingReachesHighAccuracy) {
  EXPECT_GE(pipeline().train_result.best_test_accuracy, 0.93);
  const auto& cm = pipeline().train_result.best_confusion;
  EXPECT_GE(cm.precision(), 0.90);
  EXPECT_GE(cm.recall(), 0.90);
  EXPECT_GE(cm.f1(), 0.90);
}

TEST(Integration, WeightFileDeploymentPreservesAccuracy) {
  Pipeline& p = pipeline();
  // Export / import through the text format, as the host program would.
  std::stringstream weight_file;
  nn::save_weights(weight_file, p.config, p.model->params());
  const nn::ModelSnapshot snapshot = nn::load_weights(weight_file);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, snapshot,
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});

  // The fixed-point in-storage classifier matches the float model on the
  // overwhelming majority of test windows.
  std::size_t agree = 0;
  std::size_t correct = 0;
  const std::size_t n = std::min<std::size_t>(p.split.test.size(), 250);
  for (std::size_t i = 0; i < n; ++i) {
    const int device_label = engine.infer(p.split.test.sequences[i]).label;
    agree += device_label == p.model->predict(p.split.test.sequences[i]);
    correct += device_label == p.split.test.labels[i];
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(n), 0.98);
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(n), 0.90);
}

TEST(Integration, GuardStopsARansomwareTraceEarly) {
  Pipeline& p = pipeline();
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, p.config, p.model->params(),
                                kernels::EngineConfig{});
  detect::CsdGuard guard(
      engine,
      detect::DetectorConfig{.window_length = 100, .hop = 25,
                             .consecutive_alerts = 3},
      detect::MitigationPolicy{.quarantine_threshold = 0.9});

  // Replay a full Lockbit sandbox trace as a live process.
  const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
  const auto trace =
      sandbox.ransomware_trace(ransomware::ransomware_families()[1], 3, 3'000);
  std::size_t quarantined_after = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    guard.on_api_call(1234, trace[i]);
    if (guard.is_quarantined(1234)) {
      quarantined_after = i + 1;
      break;
    }
  }
  ASSERT_GT(quarantined_after, 0u) << "ransomware ran to completion";
  // Near-instantaneous mitigation: well before the trace ends, so most of
  // the encryption sweep is blocked at the drive.
  EXPECT_LT(quarantined_after, trace.size() / 2);
  EXPECT_FALSE(guard.allow_write(1234));
}

TEST(Integration, GuardLeavesBenignWorkloadsAlone) {
  Pipeline& p = pipeline();
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, p.config, p.model->params(),
                                kernels::EngineConfig{});
  detect::CsdGuard guard(
      engine,
      detect::DetectorConfig{.window_length = 100, .hop = 25,
                             .consecutive_alerts = 3},
      detect::MitigationPolicy{.quarantine_threshold = 0.9});

  const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
  std::size_t quarantined_profiles = 0;
  std::uint32_t pid = 1;
  for (const auto& profile : ransomware::benign_profiles()) {
    const auto trace = sandbox.benign_trace(profile, 1, 1'000);
    for (const auto token : trace) guard.on_api_call(pid, token);
    quarantined_profiles += guard.is_quarantined(pid);
    ++pid;
  }
  // At most the odd hard-negative profile trips the guard.
  EXPECT_LE(quarantined_profiles, 2u);
}

TEST(Integration, SsdResidentSequencesClassifyViaP2p) {
  Pipeline& p = pipeline();
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, p.config, p.model->params(),
                                kernels::EngineConfig{});
  const auto& seq = p.split.test.sequences.front();
  const auto result = engine.infer_from_ssd(4096, 1, seq, /*p2p=*/true);
  EXPECT_EQ(result.inference.label, engine.infer(seq).label);
  EXPECT_GT(result.transfer_time.picos, 0);
}

TEST(Integration, DatasetCsvIsConsumableByTheTrainer) {
  Pipeline& p = pipeline();
  const std::string path = ::testing::TempDir() + "/csdml_integration.csv";
  nn::SequenceDataset subset;
  for (std::size_t i = 0; i < 50; ++i) {
    subset.sequences.push_back(p.built.data.sequences[i]);
    subset.labels.push_back(p.built.data.labels[i]);
  }
  nn::write_dataset_csv(subset, path);
  const nn::SequenceDataset loaded = nn::read_dataset_csv(path);
  EXPECT_EQ(loaded.sequences, subset.sequences);
  EXPECT_EQ(loaded.labels, subset.labels);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csdml
