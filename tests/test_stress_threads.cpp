// Concurrency stress tests, written to run under -DCSDML_SANITIZE=thread.
//
// TSan only reports races the execution actually exercises, so these tests
// hammer the shared structures from multiple threads: the ThreadPool's
// work distribution, the metrics registry, and — the regression that
// motivated the suite — infer_batch racing update_weights hot swaps (the
// engine's swap_mutex_ must serialise the datapath rebuild against
// in-flight batches). Kept deliberately small so the TSan job stays fast.
#include "kernels/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace csdml::kernels {
namespace {

TEST(StressThreads, ThreadPoolDistributesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kIndices = 10'000;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<std::uint32_t>> hits(kIndices);
    pool.parallel_for(kIndices, [&](std::size_t, std::size_t index) {
      hits[index].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kIndices; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
    }
  }
}

TEST(StressThreads, MetricsRegistryHandlesConcurrentWriters) {
  obs::MetricsRegistry& metrics = obs::registry();
  const std::uint64_t before = metrics.counter_value("stress.counter");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kIncrements; ++i) {
        metrics.add_counter("stress.counter");
        metrics.observe("stress.histogram", static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(metrics.counter_value("stress.counter") - before,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(StressThreads, InferBatchRacesUpdateWeightsSafely) {
  // One serving thread (infer_batch itself fans out over the engine's
  // internal pool; concurrent *external* infer callers are not part of the
  // engine's contract because the simulated device clock is shared) racing
  // one hot-swap thread. Pre-TSan this raced on the live datapath swap.
  nn::LstmConfig model_config{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(21);
  const nn::LstmParams params_a = nn::LstmParams::glorot(model_config, rng);
  const nn::LstmParams params_b = nn::LstmParams::glorot(model_config, rng);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  CsdLstmEngine engine(device, model_config, params_a,
                       EngineConfig{.batch_threads = 4});

  std::vector<nn::Sequence> batch;
  Rng token_rng(5);
  for (int s = 0; s < 16; ++s) {
    nn::Sequence sequence;
    for (int i = 0; i < 24; ++i) {
      sequence.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, model_config.vocab_size - 1)));
    }
    batch.push_back(std::move(sequence));
  }

  const FixedDatapath oracle_a(model_config, params_a);
  const FixedDatapath oracle_b(model_config, params_b);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop.load(std::memory_order_relaxed)) {
      engine.update_weights(use_b ? params_b : params_a);
      use_b = !use_b;
      swaps.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::uint64_t checked = 0;
  for (int round = 0; round < 60; ++round) {
    const CsdLstmEngine::BatchResult result = engine.infer_batch(batch);
    ASSERT_EQ(result.probabilities.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Every result must come from one coherent weight set — never a
      // half-swapped datapath.
      const double p = result.probabilities[i];
      ASSERT_TRUE(p == oracle_a.infer(batch[i]) || p == oracle_b.infer(batch[i]))
          << "torn datapath on sequence " << i;
      ++checked;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  EXPECT_EQ(checked, 60u * batch.size());
  EXPECT_GT(swaps.load(), 0u);
}

}  // namespace
}  // namespace csdml::kernels
