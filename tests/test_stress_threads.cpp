// Concurrency stress tests, written to run under -DCSDML_SANITIZE=thread.
//
// TSan only reports races the execution actually exercises, so these tests
// hammer the shared structures from multiple threads: the ThreadPool's
// work distribution, the metrics registry, and — the regression that
// motivated the suite — infer_batch racing update_weights hot swaps (the
// engine's epoch-based two-slot swap must publish only fully built
// datapaths, and EpochPin must never let a reader dereference the slot a
// rebuild is writing). Kept deliberately small so the TSan job stays fast.
#include "kernels/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baselines/host_baseline.hpp"
#include "common/thread_pool.hpp"
#include "detect/token_ring.hpp"
#include "faults/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "serve/serving.hpp"

namespace csdml::kernels {
namespace {

TEST(StressThreads, ThreadPoolDistributesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kIndices = 10'000;
  for (int round = 0; round < 20; ++round) {
    std::vector<std::atomic<std::uint32_t>> hits(kIndices);
    pool.parallel_for(kIndices, [&](std::size_t, std::size_t index) {
      hits[index].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kIndices; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;
    }
  }
}

TEST(StressThreads, MetricsRegistryHandlesConcurrentWriters) {
  obs::MetricsRegistry& metrics = obs::registry();
  const std::uint64_t before = metrics.counter_value("stress.counter");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kIncrements; ++i) {
        metrics.add_counter("stress.counter");
        metrics.observe("stress.histogram", static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(metrics.counter_value("stress.counter") - before,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(StressThreads, InferBatchRacesUpdateWeightsSafely) {
  // One serving thread (infer_batch itself fans out over the engine's
  // internal pool; concurrent *external* infer callers are not part of the
  // engine's contract because the simulated device clock is shared) racing
  // one hot-swap thread. Pre-TSan this raced on the live datapath swap.
  nn::LstmConfig model_config{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(21);
  const nn::LstmParams params_a = nn::LstmParams::glorot(model_config, rng);
  const nn::LstmParams params_b = nn::LstmParams::glorot(model_config, rng);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  CsdLstmEngine engine(device, model_config, params_a,
                       EngineConfig{.batch_threads = 4});

  std::vector<nn::Sequence> batch;
  Rng token_rng(5);
  for (int s = 0; s < 16; ++s) {
    nn::Sequence sequence;
    for (int i = 0; i < 24; ++i) {
      sequence.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, model_config.vocab_size - 1)));
    }
    batch.push_back(std::move(sequence));
  }

  const FixedDatapath oracle_a(model_config, params_a);
  const FixedDatapath oracle_b(model_config, params_b);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> swaps{0};
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop.load(std::memory_order_relaxed)) {
      engine.update_weights(use_b ? params_b : params_a);
      use_b = !use_b;
      swaps.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::uint64_t checked = 0;
  for (int round = 0; round < 60; ++round) {
    const CsdLstmEngine::BatchResult result = engine.infer_batch(batch);
    ASSERT_EQ(result.probabilities.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      // Every result must come from one coherent weight set — never a
      // half-swapped datapath.
      const double p = result.probabilities[i];
      ASSERT_TRUE(p == oracle_a.infer(batch[i]) || p == oracle_b.infer(batch[i]))
          << "torn datapath on sequence " << i;
      ++checked;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
  EXPECT_EQ(checked, 60u * batch.size());
  EXPECT_GT(swaps.load(), 0u);
}

TEST(StressThreads, ServingParityUnderEightThreadIngest) {
  // Eight ingestion threads, one process per thread, racing through the
  // sharded rings into the single coalescer. Per-process verdicts must be
  // bit-identical to a single-threaded synchronous replay.
  nn::LstmConfig model_config{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(31);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);
  const detect::DetectorConfig detector{.window_length = 16, .hop = 8,
                                        .consecutive_alerts = 2};
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kCalls = 200;

  std::map<detect::ProcessId, std::vector<nn::TokenId>> streams;
  for (std::size_t t = 0; t < kThreads; ++t) {
    Rng token_rng(100 + t);
    std::vector<nn::TokenId>& stream = streams[t + 1];
    for (std::size_t i = 0; i < kCalls; ++i) {
      stream.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, model_config.vocab_size - 1)));
    }
  }

  // Synchronous oracle: hand-rolled window/hop/debounce replay.
  struct Expected {
    std::uint64_t call_index;
    double probability;
    bool alert;
  };
  std::map<detect::ProcessId, std::vector<Expected>> oracle;
  {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    CsdLstmEngine engine(device, model_config, params, {});
    for (const auto& [pid, stream] : streams) {
      detect::TokenRing window(detector.window_length);
      std::uint64_t calls_seen = 0;
      std::uint64_t since_eval = 0;
      std::size_t streak = 0;
      for (const nn::TokenId token : stream) {
        window.push(token);
        ++calls_seen;
        ++since_eval;
        if (!window.full()) continue;
        if (calls_seen != detector.window_length &&
            since_eval < detector.hop) {
          continue;
        }
        since_eval = 0;
        const InferenceResult result = engine.infer(window.view());
        streak = result.probability >= detector.threshold ? streak + 1 : 0;
        oracle[pid].push_back({calls_seen, result.probability,
                               streak >= detector.consecutive_alerts});
      }
    }
  }

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  CsdLstmEngine engine(device, model_config, params, {});
  serve::ServeConfig config;
  config.shards = 4;
  config.ring_capacity = 1024;
  config.detector = detector;
  std::mutex log_mutex;
  std::map<detect::ProcessId, std::vector<Expected>> observed;
  serve::ServingPipeline pipeline(
      engine, config, [&](const serve::Verdict& verdict) {
        std::lock_guard<std::mutex> lock(log_mutex);
        observed[verdict.process].push_back(
            {verdict.call_index, verdict.probability, verdict.alert});
      });

  std::vector<std::thread> feeders;
  feeders.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    feeders.emplace_back([&pipeline, &streams, t] {
      const detect::ProcessId pid = t + 1;
      for (const nn::TokenId token : streams[pid]) {
        pipeline.ingest(pid, token);
      }
    });
  }
  for (std::thread& feeder : feeders) feeder.join();
  pipeline.flush();
  pipeline.stop();

  const serve::ServingPipeline::Stats stats = pipeline.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.verdicts, stats.enqueued);
  ASSERT_EQ(observed.size(), oracle.size());
  for (const auto& [pid, expected] : oracle) {
    const auto& actual = observed[pid];
    ASSERT_EQ(actual.size(), expected.size()) << "pid " << pid;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].call_index, expected[i].call_index);
      ASSERT_EQ(actual[i].probability, expected[i].probability)
          << "pid " << pid << " verdict " << i;
      ASSERT_EQ(actual[i].alert, expected[i].alert);
    }
  }
}

TEST(StressThreads, ServingIngestRacesHotSwapsAndFaults) {
  // The full gauntlet: four ingestion threads, a weight-swapper thread
  // flipping between two parameter sets, and a fault plan injecting launch
  // failures that latch the engine unhealthy until a recovery probe
  // succeeds. A host fallback (pinned to params_a) keeps classifications
  // flowing while degraded. Every verdict must be explainable by exactly
  // one coherent model: params_a, params_b, or the fallback.
  nn::LstmConfig model_config{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(47);
  const nn::LstmParams params_a = nn::LstmParams::glorot(model_config, rng);
  const nn::LstmParams params_b = nn::LstmParams::glorot(model_config, rng);
  const FixedDatapath oracle_a(model_config, params_a);
  const FixedDatapath oracle_b(model_config, params_b);
  const baselines::HostBaseline fallback(
      "stress-fallback", model_config, params_a,
      baselines::HostLatencyConfig::xeon_cpu());

  faults::FaultConfig fault_config;
  fault_config.seed = 9;
  fault_config.xrt_launch_failure_probability = 0.02;
  faults::FaultPlan plan(fault_config);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  board.set_fault_plan(&plan);
  xrt::Device device{board};
  CsdLstmEngine engine(device, model_config, params_a, {});
  engine.set_fallback(&fallback);

  const detect::DetectorConfig detector{.window_length = 16, .hop = 8};
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kCalls = 160;
  std::map<detect::ProcessId, std::vector<nn::TokenId>> streams;
  for (std::size_t t = 0; t < kThreads; ++t) {
    Rng token_rng(200 + t);
    std::vector<nn::TokenId>& stream = streams[t + 1];
    for (std::size_t i = 0; i < kCalls; ++i) {
      stream.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, model_config.vocab_size - 1)));
    }
  }

  serve::ServeConfig config;
  config.shards = 2;
  config.ring_capacity = 1024;
  config.detector = detector;
  struct Seen {
    detect::ProcessId process;
    std::uint64_t call_index;
    double probability;
  };
  std::mutex log_mutex;
  std::vector<Seen> seen;
  serve::ServingPipeline pipeline(
      engine, config, [&](const serve::Verdict& verdict) {
        std::lock_guard<std::mutex> lock(log_mutex);
        seen.push_back(
            {verdict.process, verdict.call_index, verdict.probability});
      });

  std::atomic<bool> stop_swapper{false};
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop_swapper.load(std::memory_order_relaxed)) {
      engine.update_weights(use_b ? params_b : params_a);
      use_b = !use_b;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> feeders;
  feeders.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    feeders.emplace_back([&pipeline, &streams, t] {
      const detect::ProcessId pid = t + 1;
      for (const nn::TokenId token : streams[pid]) {
        pipeline.ingest(pid, token);
      }
    });
  }
  for (std::thread& feeder : feeders) feeder.join();
  pipeline.flush();
  stop_swapper.store(true, std::memory_order_relaxed);
  swapper.join();
  pipeline.stop();

  const serve::ServingPipeline::Stats stats = pipeline.stats();
  // With a fallback wired in, a degraded engine still classifies: nothing
  // defers, nothing is lost.
  EXPECT_EQ(stats.deferred, 0u);
  EXPECT_EQ(stats.verdicts, stats.enqueued);
  EXPECT_GT(stats.verdicts, 0u);

  for (const Seen& verdict : seen) {
    const std::vector<nn::TokenId>& stream = streams[verdict.process];
    ASSERT_GE(verdict.call_index, detector.window_length);
    const nn::Sequence window(
        stream.begin() +
            static_cast<std::ptrdiff_t>(verdict.call_index -
                                        detector.window_length),
        stream.begin() + static_cast<std::ptrdiff_t>(verdict.call_index));
    const double p = verdict.probability;
    ASSERT_TRUE(p == oracle_a.infer(window) || p == oracle_b.infer(window) ||
                p == fallback.infer(window))
        << "torn or unexplained verdict for pid " << verdict.process
        << " at call " << verdict.call_index;
  }
}

TEST(StressThreads, ShutdownRacesIngestBacklogWithoutDroppingWork) {
  // Repeated teardown drills: four ingestion threads slam tiny rings while
  // a deliberately slow sink keeps a backlog queued, then the pipeline is
  // destroyed with requests still in the rings and a batch in flight. The
  // destructor's stop() must deliver every enqueued request — shutdown
  // ordering may reorder nothing into a drop. Rounds vary the ring
  // occupancy at destructor entry so TSan sees many interleavings.
  nn::LstmConfig model_config{.vocab_size = 32, .embed_dim = 4, .hidden_dim = 8};
  Rng rng(59);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  CsdLstmEngine engine(device, model_config, params, {});

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kCalls = 96;
  constexpr int kRounds = 12;
  std::map<detect::ProcessId, std::vector<nn::TokenId>> streams;
  for (std::size_t t = 0; t < kThreads; ++t) {
    Rng token_rng(300 + t);
    std::vector<nn::TokenId>& stream = streams[t + 1];
    for (std::size_t i = 0; i < kCalls; ++i) {
      stream.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, model_config.vocab_size - 1)));
    }
  }

  int rounds_with_backlog = 0;
  for (int round = 0; round < kRounds; ++round) {
    serve::ServeConfig config;
    config.shards = 2;
    config.ring_capacity = 8;
    config.coalesce_max = 4;
    config.detector = detect::DetectorConfig{.window_length = 8, .hop = 1};

    std::atomic<std::uint64_t> delivered{0};
    auto pipeline = std::make_unique<serve::ServingPipeline>(
        engine, config, [&](const serve::Verdict&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
          // Slow sink: the coalescer lags ingestion, so rings stay loaded.
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        });

    std::vector<std::thread> feeders;
    feeders.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      feeders.emplace_back([&pipeline, &streams, t] {
        const detect::ProcessId pid = t + 1;
        for (const nn::TokenId token : streams[pid]) {
          pipeline->ingest(pid, token);
        }
      });
    }
    for (std::thread& feeder : feeders) feeder.join();

    // No flush, no explicit stop: tear down with whatever backlog the
    // slow sink left in the rings. `enqueued` is final once the feeders
    // join, so the destructor must bring `delivered` up to it.
    const serve::ServingPipeline::Stats pre = pipeline->stats();
    if (pre.enqueued > delivered.load(std::memory_order_relaxed)) {
      ++rounds_with_backlog;
    }
    pipeline.reset();
    EXPECT_EQ(delivered.load(std::memory_order_relaxed), pre.enqueued)
        << "round " << round << " dropped backlog at shutdown";
  }
  // The slow sink guarantees at least some rounds actually destroyed a
  // pipeline with undelivered work — otherwise this test proves nothing.
  EXPECT_GT(rounds_with_backlog, 0);
}

}  // namespace
}  // namespace csdml::kernels
