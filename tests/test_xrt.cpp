#include "xrt/runtime.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::xrt {
namespace {

hls::KernelSpec tiny_kernel(const std::string& name) {
  hls::KernelSpec spec;
  spec.name = name;
  hls::LoopSpec loop;
  loop.name = "l";
  loop.trip_count = 16;
  loop.body_ops = {hls::LoopOp{hls::OpKind::IntAdd, 1}};
  loop.buffer_accesses = 1;
  spec.loops.push_back(loop);
  return spec;
}

struct Fixture {
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  Device device{board};
};

TEST(Xrt, LoadXclbinExposesKernels) {
  Fixture f;
  Xclbin xclbin;
  xclbin.name = "bin";
  xclbin.kernels["k1"] = tiny_kernel("k1");
  xclbin.kernels["k2"] = tiny_kernel("k2");
  f.device.load_xclbin(xclbin);
  EXPECT_EQ(f.device.kernel("k1").name(), "k1");
  EXPECT_EQ(f.device.kernel("k2").name(), "k2");
  EXPECT_THROW(f.device.kernel("missing"), PreconditionError);
  EXPECT_GT(f.board.fpga().utilization(), 0.0);
}

TEST(Xrt, XclbinResourcesAreSummed) {
  Xclbin xclbin;
  xclbin.name = "bin";
  xclbin.kernels["k1"] = tiny_kernel("k1");
  const auto one = xclbin.total_resources();
  xclbin.kernels["k2"] = tiny_kernel("k2");
  const auto two = xclbin.total_resources();
  EXPECT_GT(two.luts, one.luts);
}

TEST(Xrt, KernelLaunchAdvancesTimeAndTraces) {
  Fixture f;
  Xclbin xclbin;
  xclbin.name = "bin";
  xclbin.kernels["k"] = tiny_kernel("k");
  f.device.load_xclbin(xclbin);

  Kernel kernel = f.device.kernel("k");
  const Duration latency = kernel.latency();
  EXPECT_GT(latency.picos, 0);

  const TimePoint before = f.device.now();
  const TimePoint end = kernel.launch();
  EXPECT_EQ((end - before).picos, latency.picos);
  EXPECT_EQ(f.device.now().picos, end.picos);
  EXPECT_EQ(f.board.trace().count("k"), 1u);
}

TEST(Xrt, KernelAnalyzeReportsLoops) {
  Fixture f;
  Xclbin xclbin;
  xclbin.name = "bin";
  xclbin.kernels["k"] = tiny_kernel("k");
  f.device.load_xclbin(xclbin);
  const hls::KernelReport report = f.device.kernel("k").analyze();
  ASSERT_EQ(report.loops.size(), 1u);
  EXPECT_GT(report.total.count, 0u);
}

TEST(Xrt, BufferSyncMovesDataAndTime) {
  Fixture f;
  BufferObject bo = f.device.alloc_bo(4096, 0);
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 251);
  }
  bo.write(data);
  const TimePoint before = f.device.now();
  bo.sync_to_device();
  EXPECT_GT(f.device.now().picos, before.picos);
  // The bytes are actually resident in the bank.
  EXPECT_EQ(f.board.fpga().bank(0).load(bo.device_offset(), 4096), data);

  // Round-trip back to the host view.
  BufferObject other = f.device.alloc_bo(4096, 0);
  EXPECT_NE(other.device_offset(), bo.device_offset());
  bo.sync_from_device();
  EXPECT_EQ(bo.host_view(), data);
}

TEST(Xrt, BufferAllocationIsAlignedAndBounded) {
  Fixture f;
  const BufferObject a = f.device.alloc_bo(100, 0);
  const BufferObject b = f.device.alloc_bo(100, 0);
  EXPECT_EQ(a.device_offset() % 4096, 0u);
  EXPECT_EQ(b.device_offset() % 4096, 0u);
  EXPECT_THROW(f.device.alloc_bo(0, 0), PreconditionError);
  EXPECT_THROW(f.device.alloc_bo(100, 99), PreconditionError);

  // Exhaust a bank.
  const std::uint64_t capacity =
      f.board.fpga().bank(1).config().capacity.count;
  f.device.alloc_bo(capacity - 8192, 1);
  EXPECT_THROW(f.device.alloc_bo(capacity, 1), ResourceError);
}

TEST(Xrt, WriteLargerThanBufferThrows) {
  Fixture f;
  BufferObject bo = f.device.alloc_bo(16, 0);
  EXPECT_THROW(bo.write(std::vector<std::uint8_t>(17)), PreconditionError);
}

TEST(Xrt, OverfittingXclbinRejected) {
  Fixture f;
  Xclbin xclbin;
  xclbin.name = "too-big";
  // A kernel with an enormous fully-unrolled MAC array.
  hls::KernelSpec big = tiny_kernel("big");
  big.loops[0].body_ops = {hls::LoopOp{hls::OpKind::IntMul, 2000}};
  big.loops[0].pragmas.pipeline = true;
  big.loops[0].pragmas.unroll = 4;
  xclbin.kernels["big"] = big;
  EXPECT_THROW(f.device.load_xclbin(xclbin), ResourceError);
}

}  // namespace
}  // namespace csdml::xrt
