// csdml_prom_check — CI gate for Prometheus text-exposition artefacts.
//
//   csdml_prom_check FILE [--require METRIC]...
//
// Fails (exit 1) when FILE is missing/empty, any line is neither a comment
// nor a well-formed `name{labels} value` sample, a sample appears without a
// preceding # TYPE declaration for its family, a histogram's buckets are
// not cumulative or lack the +Inf terminator, or a required metric family
// is absent. This is the scrape-side contract `csdml stats --prometheus`
// must keep.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

int fail(const std::string& message) {
  std::cerr << "csdml_prom_check: " << message << '\n';
  return 1;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' ||
        name[0] == ':')) {
    return false;
  }
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')) {
      return false;
    }
  }
  return true;
}

/// Strips the _total/_bucket/_sum/_count suffix to recover the family a
/// sample belongs to (the name the # TYPE line declares).
std::string family_of(const std::string& name) {
  for (const char* suffix : {"_total", "_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() &&
        name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return fail("usage: csdml_prom_check FILE [--require METRIC]...");
  }
  const std::string path = argv[1];
  std::vector<std::string> required;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else {
      return fail("unknown argument '" + arg + "'");
    }
  }

  std::ifstream in(path);
  if (!in) return fail("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return fail("'" + path + "' is empty");
  if (text.back() != '\n') {
    return fail("'" + path + "' lacks the trailing newline scrapers require");
  }

  std::map<std::string, std::string> declared_type;  // family -> type
  std::map<std::string, std::uint64_t> last_bucket;  // family -> cumulative
  std::map<std::string, bool> saw_inf;               // family -> +Inf seen
  std::size_t samples = 0;

  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::string where = "line " + std::to_string(line_no);
    if (line.empty()) return fail(where + ": blank line");
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, type;
      comment >> hash >> keyword >> name >> type;
      if (keyword == "TYPE") {
        if (!valid_metric_name(name)) {
          return fail(where + ": bad metric name '" + name + "'");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(where + ": unknown type '" + type + "'");
        }
        declared_type[name] = type;
      }
      continue;  // HELP and free comments pass through
    }

    // Sample: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) return fail(where + ": no value");
    std::string name;
    std::string labels;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos || close + 1 >= line.size() ||
          line[close + 1] != ' ') {
        return fail(where + ": malformed labels");
      }
      name = line.substr(0, brace);
      labels = line.substr(brace + 1, close - brace - 1);
    } else {
      name = line.substr(0, space);
    }
    if (!valid_metric_name(name)) {
      return fail(where + ": bad sample name '" + name + "'");
    }
    const std::string value_text = line.substr(line.rfind(' ') + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      return fail(where + ": bad value '" + value_text + "'");
    }

    const std::string family = family_of(name);
    if (declared_type.find(family) == declared_type.end() &&
        declared_type.find(name) == declared_type.end()) {
      return fail(where + ": sample '" + name + "' has no # TYPE declaration");
    }
    ++samples;

    if (name.size() > 7 &&
        name.compare(name.size() - 7, 7, "_bucket") == 0) {
      if (labels.find("le=") == std::string::npos) {
        return fail(where + ": bucket sample lacks an le label");
      }
      const std::uint64_t count = static_cast<std::uint64_t>(value);
      if (last_bucket.count(family) && count < last_bucket[family]) {
        return fail(where + ": buckets of '" + family + "' are not cumulative");
      }
      last_bucket[family] = count;
      if (labels.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf[family] = true;
      }
    }
  }

  for (const auto& [family, type] : declared_type) {
    if (type == "histogram" && !saw_inf[family]) {
      return fail("histogram '" + family + "' has no +Inf bucket");
    }
  }
  for (const std::string& metric : required) {
    // Counters declare themselves with the _total suffix; accept the bare
    // family name either way.
    bool found = declared_type.count(metric) > 0;
    for (auto it = declared_type.begin(); !found && it != declared_type.end();
         ++it) {
      found = family_of(it->first) == metric;
    }
    if (!found) {
      return fail("'" + path + "' is missing required metric '" + metric + "'");
    }
  }
  if (samples == 0) return fail("'" + path + "' has no samples");
  std::cout << "csdml_prom_check: '" << path << "' OK (" << samples
            << " samples, " << declared_type.size() << " families)\n";
  return 0;
}
