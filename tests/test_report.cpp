#include "hls/report.hpp"

#include <gtest/gtest.h>

#include "kernels/specs.hpp"

namespace csdml::hls {
namespace {

const HlsCostModel& model() {
  static const HlsCostModel m = HlsCostModel::ultrascale_default();
  return m;
}

TEST(Report, ContainsAllSections) {
  const nn::LstmConfig config;
  const KernelSpec gates = kernels::make_gates_spec(
      config, kernels::OptimizationLevel::Vanilla);
  const std::string report = synthesis_report(gates, model(), FpgaPart::ku15p());

  EXPECT_NE(report.find("kernel_gates"), std::string::npos);
  EXPECT_NE(report.find("xcku15p"), std::string::npos);
  EXPECT_NE(report.find("DATAFLOW"), std::string::npos);
  EXPECT_NE(report.find("gate_outputs"), std::string::npos);  // loop table
  EXPECT_NE(report.find("gate_out"), std::string::npos);      // axi table
  EXPECT_NE(report.find("DSP"), std::string::npos);           // utilization
  EXPECT_NE(report.find("timing:"), std::string::npos);
}

TEST(Report, ShowsPragmasWhenPresent) {
  const nn::LstmConfig config;
  const KernelSpec fp = kernels::make_gates_spec(
      config, kernels::OptimizationLevel::FixedPoint);
  const std::string report = synthesis_report(fp, model(), FpgaPart::ku15p());
  EXPECT_NE(report.find("PIPELINE II=1"), std::string::npos);
  EXPECT_NE(report.find("UNROLL=2"), std::string::npos);
  EXPECT_NE(report.find("ARRAY_PARTITION"), std::string::npos);
}

TEST(Report, SequentialLoopShowsNoIi) {
  const nn::LstmConfig config;
  const KernelSpec hidden = kernels::make_hidden_state_spec(
      config, kernels::OptimizationLevel::Vanilla, 4);
  const std::string report =
      synthesis_report(hidden, model(), FpgaPart::alveo_u200());
  EXPECT_NE(report.find("cell_update"), std::string::npos);
  EXPECT_NE(report.find("alveo-u200"), std::string::npos);
}

TEST(Report, SummaryLineIsCompact) {
  const nn::LstmConfig config;
  const KernelSpec gates = kernels::make_gates_spec(
      config, kernels::OptimizationLevel::Vanilla);
  const std::string line = summary_line(gates, model());
  EXPECT_NE(line.find("kernel_gates:"), std::string::npos);
  EXPECT_NE(line.find("cycles"), std::string::npos);
  EXPECT_NE(line.find("II="), std::string::npos);
  EXPECT_NE(line.find("DSP"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(Report, UtilizationPercentagesAreFinite) {
  const nn::LstmConfig config;
  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    const std::string report = synthesis_report(
        kernels::make_gates_spec(config, level), model(), FpgaPart::ku15p());
    EXPECT_EQ(report.find("nan"), std::string::npos);
    EXPECT_EQ(report.find("inf"), std::string::npos);
  }
}

}  // namespace
}  // namespace csdml::hls
