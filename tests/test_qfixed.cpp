#include "fixed/qfixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace csdml::fixedpt {
namespace {

TEST(QFixed, ResolutionMatchesFracBits) {
  EXPECT_DOUBLE_EQ(Q16::resolution(), 1.0 / 65536.0);
  EXPECT_DOUBLE_EQ(Q20::resolution(), 1.0 / 1048576.0);
  EXPECT_DOUBLE_EQ(Q24::resolution(), 1.0 / 16777216.0);
}

TEST(QFixed, RoundTripWithinHalfLsb) {
  Rng rng(3);
  for (int i = 0; i < 5'000; ++i) {
    const double x = rng.uniform(-1000.0, 1000.0);
    EXPECT_LE(std::abs(Q20::from_double(x).to_double() - x),
              Q20::resolution() / 2 + 1e-15);
  }
}

TEST(QFixed, ArithmeticMatchesReal) {
  const auto a = Q20::from_double(1.5);
  const auto b = Q20::from_double(-2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), -0.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a * b).to_double(), -3.375);  // exact in binary
  EXPECT_NEAR((a / b).to_double(), 1.5 / -2.25, Q20::resolution() * 2);
  EXPECT_THROW(a / Q20::from_double(0.0), PreconditionError);
}

TEST(QFixed, MultiplicationRoundsToNearest) {
  Rng rng(9);
  for (int i = 0; i < 5'000; ++i) {
    const double x = rng.uniform(-8.0, 8.0);
    const double y = rng.uniform(-8.0, 8.0);
    const double got = (Q20::from_double(x) * Q20::from_double(y)).to_double();
    const double budget = (std::abs(x) + std::abs(y) + 1.0) * Q20::resolution();
    EXPECT_NEAR(got, x * y, budget);
  }
}

TEST(QFixed, FinerFormatIsMoreAccurate) {
  const double x = 0.123456789;
  EXPECT_LT(std::abs(Q24::from_double(x).to_double() - x),
            std::abs(Q16::from_double(x).to_double() - x));
}

TEST(QFixed, ComparisonsAndNegation) {
  EXPECT_LT(Q16::from_double(1.0), Q16::from_double(2.0));
  EXPECT_EQ((-Q16::from_double(3.0)).to_double(), -3.0);
  auto acc = Q16::from_double(0.0);
  acc += Q16::from_double(0.5);
  acc += Q16::from_double(0.25);
  EXPECT_DOUBLE_EQ(acc.to_double(), 0.75);
}

TEST(QFixed, RawAccessors) {
  EXPECT_EQ(Q16::from_double(1.0).raw(), Q16::kOne);
  EXPECT_EQ(Q16::from_raw(Q16::kOne / 2).to_double(), 0.5);
}

TEST(QFixed, RejectsOverflow) {
  EXPECT_THROW(Q24::from_double(1e15), PreconditionError);
}

}  // namespace
}  // namespace csdml::fixedpt
