#include "detect/cti.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/train.hpp"

namespace csdml::detect {
namespace {

const ransomware::FamilyProfile& lockbit() {
  return ransomware::ransomware_families()[1];
}

TEST(Cti, EmergingStrainIsStealthy) {
  const ransomware::FamilyProfile strain = make_emerging_strain(lockbit(), 1);
  EXPECT_EQ(strain.name, "Lockbit-Nova1");
  EXPECT_TRUE(strain.encrypts);
  EXPECT_FALSE(strain.self_propagates);
  for (const auto& phase : strain.script) {
    // None of the loud tells survive.
    EXPECT_NE(phase.motif, ransomware::MotifKind::EncryptionLoop);
    EXPECT_NE(phase.motif, ransomware::MotifKind::ShadowCopyWipe);
    EXPECT_NE(phase.motif, ransomware::MotifKind::SmbPropagation);
    EXPECT_NE(phase.motif, ransomware::MotifKind::RansomNote);
    EXPECT_NE(phase.motif, ransomware::MotifKind::DropperStartup);
  }
  // But it still encrypts (through the container path) and phones home.
  bool encrypts = false;
  bool beacons = false;
  for (const auto& phase : strain.script) {
    encrypts |= phase.motif == ransomware::MotifKind::VolumeEncryptionLoop;
    beacons |= phase.motif == ransomware::MotifKind::C2Beacon;
  }
  EXPECT_TRUE(encrypts);
  EXPECT_TRUE(beacons);
}

TEST(Cti, StrainIdsProduceDistinctStrains) {
  const auto a = make_emerging_strain(lockbit(), 1);
  const auto b = make_emerging_strain(lockbit(), 2);
  EXPECT_NE(a.name, b.name);
  EXPECT_NE(a.script.size(), b.script.size());
}

TEST(Cti, WindowsFromStrainAreWellFormed) {
  const auto strain = make_emerging_strain(lockbit(), 1);
  const nn::SequenceDataset windows = windows_from_strain(strain, 50, 100, 25, 7);
  EXPECT_EQ(windows.size(), 50u);
  for (const auto& seq : windows.sequences) EXPECT_EQ(seq.size(), 100u);
  for (const int label : windows.labels) EXPECT_EQ(label, 1);
  // Deterministic for a seed, distinct across seeds.
  const nn::SequenceDataset again = windows_from_strain(strain, 50, 100, 25, 7);
  EXPECT_EQ(windows.sequences, again.sequences);
  const nn::SequenceDataset other = windows_from_strain(strain, 50, 100, 25, 8);
  EXPECT_NE(windows.sequences, other.sequences);
}

TEST(Cti, IncorporateStrainImprovesRecallAndBumpsWeights) {
  // A model trained on two token languages stands in for the stock model;
  // the "strain" dataset shifts the positive distribution.
  nn::LstmConfig config{.vocab_size = 278, .embed_dim = 8, .hidden_dim = 32};
  Rng rng(9);
  nn::LstmClassifier model(config, rng);

  // Stock corpus: a very small slice of the real generator output.
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 150;
  spec.benign_windows = 176;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  nn::train(model, built.data, built.data, tc);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, config, model.params(),
                                kernels::EngineConfig{});
  EXPECT_EQ(engine.weight_updates(), 1u);

  const auto strain = make_emerging_strain(lockbit(), 1);
  nn::TrainConfig fine_tune = tc;
  fine_tune.epochs = 6;
  fine_tune.learning_rate = 0.005;
  const CtiUpdateReport report =
      incorporate_strain(model, engine, strain, built.data, fine_tune);

  EXPECT_GE(report.strain_recall_after, report.strain_recall_before);
  EXPECT_GE(report.strain_recall_after, 0.85);
  // This fixture's replay buffer is deliberately tiny (326 windows); the
  // realistic-scale run in bench_cti_update retains ~0.97.
  EXPECT_GE(report.replay_accuracy_after, 0.85);
  EXPECT_EQ(report.engine_weight_version, 2u);
  EXPECT_EQ(engine.weight_updates(), 2u);
  EXPECT_EQ(report.windows_added, 200u);

  // The engine now runs the updated model.
  const nn::SequenceDataset eval = windows_from_strain(strain, 10, 100, 37, 123);
  std::size_t device_hits = 0;
  for (const auto& seq : eval.sequences) {
    device_hits += engine.infer(seq).label == 1;
  }
  EXPECT_GE(device_hits, 8u);
}

TEST(Cti, GuardsAgainstBadInput) {
  const auto strain = make_emerging_strain(lockbit(), 1);
  EXPECT_THROW(windows_from_strain(strain, 0, 100, 25, 1), PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
