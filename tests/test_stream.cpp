// Tests for the AXI-stream kernel-link mode (Section III-C's "streaming
// can be easily ported ... for additional acceleration").
#include <gtest/gtest.h>

#include "hls/cost_model.hpp"
#include "kernels/engine.hpp"
#include "kernels/specs.hpp"

namespace csdml::kernels {
namespace {

const nn::LstmConfig kConfig;

double total_us(OptimizationLevel level, KernelLink link) {
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const Frequency clock = model.clock();
  double total = clock
                     .duration_of(model.analyze(
                                       make_preprocess_spec(kConfig, level, 4, link))
                                      .total)
                     .as_microseconds();
  const auto gates = model.analyze(make_gates_spec(kConfig, level, link));
  total += gates_reports_amortized_ii(level)
               ? clock.duration_of(Cycles{gates.loops.front().achieved_ii})
                     .as_microseconds()
               : clock.duration_of(gates.total).as_microseconds();
  total += clock
               .duration_of(model.analyze(
                                 make_hidden_state_spec(kConfig, level, 4, link))
                                .total)
               .as_microseconds();
  return total;
}

class StreamLevelTest : public ::testing::TestWithParam<OptimizationLevel> {};

TEST_P(StreamLevelTest, StreamingIsFasterAtEveryLevel) {
  EXPECT_LT(total_us(GetParam(), KernelLink::Stream),
            total_us(GetParam(), KernelLink::AxiMemory));
}

TEST_P(StreamLevelTest, StreamSpecsDropInterKernelTransfers) {
  const auto level = GetParam();
  const auto pre = make_preprocess_spec(kConfig, level, 4, KernelLink::Stream);
  // Only the off-chip item fetch remains.
  ASSERT_EQ(pre.transfers.size(), 1u);
  EXPECT_EQ(pre.transfers.front().name, "item_fetch");

  const auto gates = make_gates_spec(kConfig, level, KernelLink::Stream);
  EXPECT_TRUE(gates.transfers.empty());

  const auto hidden = make_hidden_state_spec(kConfig, level, 4, KernelLink::Stream);
  ASSERT_EQ(hidden.transfers.size(), 1u);
  EXPECT_EQ(hidden.transfers.front().name, "prediction_out");
}

INSTANTIATE_TEST_SUITE_P(Levels, StreamLevelTest,
                         ::testing::Values(OptimizationLevel::Vanilla,
                                           OptimizationLevel::II,
                                           OptimizationLevel::FixedPoint),
                         [](const auto& info) {
                           std::string name = optimization_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Stream, EngineResultsUnchangedByLink) {
  nn::LstmConfig config;
  Rng rng(61);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  Rng token_rng(7);
  nn::Sequence seq;
  for (int i = 0; i < 80; ++i) {
    seq.push_back(static_cast<nn::TokenId>(rng.uniform_int(0, 277)));
  }

  csd::SmartSsd board_a{csd::SmartSsdConfig{}};
  xrt::Device device_a{board_a};
  CsdLstmEngine axi(device_a, config, params,
                    EngineConfig{.link = KernelLink::AxiMemory});
  csd::SmartSsd board_b{csd::SmartSsdConfig{}};
  xrt::Device device_b{board_b};
  CsdLstmEngine stream(device_b, config, params,
                       EngineConfig{.link = KernelLink::Stream});

  const auto axi_result = axi.infer(seq);
  const auto stream_result = stream.infer(seq);
  EXPECT_DOUBLE_EQ(axi_result.probability, stream_result.probability);
  EXPECT_LT(stream_result.device_time.picos, axi_result.device_time.picos);
}

TEST(Stream, FixedPointStreamTotalNearOneMicrosecond) {
  // The streamed fixed-point build roughly halves the 2.15 us per item.
  const double us = total_us(OptimizationLevel::FixedPoint, KernelLink::Stream);
  EXPECT_LT(us, 1.5);
  EXPECT_GT(us, 0.5);
}

}  // namespace
}  // namespace csdml::kernels
