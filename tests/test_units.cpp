#include "common/units.hpp"

#include <gtest/gtest.h>

namespace csdml {
namespace {

TEST(Units, CyclesArithmetic) {
  EXPECT_EQ((Cycles{3} + Cycles{4}).count, 7u);
  EXPECT_EQ((Cycles{3} * 5).count, 15u);
  EXPECT_EQ((5 * Cycles{3}).count, 15u);
  Cycles c{1};
  c += Cycles{9};
  EXPECT_EQ(c.count, 10u);
  EXPECT_LT(Cycles{2}, Cycles{3});
}

TEST(Units, DurationConversions) {
  const Duration us = Duration::microseconds(2.5);
  EXPECT_EQ(us.picos, 2'500'000);
  EXPECT_DOUBLE_EQ(us.as_microseconds(), 2.5);
  EXPECT_DOUBLE_EQ(us.as_nanoseconds(), 2500.0);
  EXPECT_DOUBLE_EQ(us.as_milliseconds(), 0.0025);
  EXPECT_EQ(Duration::nanoseconds(1.5).picos, 1500);
  EXPECT_EQ(Duration::zero().picos, 0);
}

TEST(Units, DurationArithmetic) {
  const Duration a = Duration::microseconds(3);
  const Duration b = Duration::microseconds(1);
  EXPECT_EQ((a + b).as_microseconds(), 4.0);
  EXPECT_EQ((a - b).as_microseconds(), 2.0);
  EXPECT_EQ((b * 5).as_microseconds(), 5.0);
  Duration c = b;
  c += a;
  EXPECT_EQ(c.as_microseconds(), 4.0);
  EXPECT_LT(b, a);
}

TEST(Units, TimePointArithmetic) {
  const TimePoint t0{};
  const TimePoint t1 = t0 + Duration::microseconds(7);
  EXPECT_EQ((t1 - t0).as_microseconds(), 7.0);
  EXPECT_GT(t1, t0);
}

TEST(Units, FrequencyPeriodAt300MHz) {
  const Frequency clock = Frequency::megahertz(300.0);
  EXPECT_EQ(clock.period().picos, 3333);
  EXPECT_DOUBLE_EQ(clock.mhz(), 300.0);
}

TEST(Units, FrequencyDurationOfCycles) {
  const Frequency clock = Frequency::megahertz(300.0);
  // One cycle at 300 MHz is the paper's 0.00333 us fixed-point gates bar.
  EXPECT_NEAR(clock.duration_of(Cycles{1}).as_microseconds(), 0.00333, 5e-5);
  EXPECT_NEAR(clock.duration_of(Cycles{300}).as_microseconds(), 1.0, 1e-3);
}

TEST(Units, FrequencyCyclesForRoundsUp) {
  const Frequency clock = Frequency::megahertz(100.0);  // 10 ns period
  EXPECT_EQ(clock.cycles_for(Duration::nanoseconds(25)).count, 3u);
  EXPECT_EQ(clock.cycles_for(Duration::nanoseconds(30)).count, 3u);
  EXPECT_EQ(clock.cycles_for(Duration::zero()).count, 0u);
  EXPECT_EQ(clock.cycles_for(Duration::picoseconds(-5)).count, 0u);
}

TEST(Units, BytesHelpers) {
  EXPECT_EQ(Bytes::kib(4).count, 4096u);
  EXPECT_EQ(Bytes::mib(2).count, 2u * 1024 * 1024);
  EXPECT_EQ(Bytes::gib(1).count, 1024ull * 1024 * 1024);
  EXPECT_EQ((Bytes{10} + Bytes{5}).count, 15u);
}

TEST(Units, BandwidthTransferTime) {
  const Bandwidth bw = Bandwidth::gb_per_s(1.0);  // 1e9 B/s
  EXPECT_NEAR(bw.transfer_time(Bytes{1'000'000}).as_microseconds(), 1000.0, 1e-6);
  const Bandwidth gib = Bandwidth::gib_per_s(1.0);
  EXPECT_NEAR(gib.transfer_time(Bytes::gib(1)).as_milliseconds(), 1000.0, 1e-6);
}

TEST(Units, BandwidthRejectsZeroRate) {
  const Bandwidth none;
  EXPECT_THROW(none.transfer_time(Bytes{1}), PreconditionError);
}

}  // namespace
}  // namespace csdml
