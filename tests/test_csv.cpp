#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace csdml {
namespace {

TEST(Csv, ParsesSimpleRows) {
  const CsvDocument doc = parse_csv("a,b,c\n1,2,3\n4,5,6\n", true);
  ASSERT_EQ(doc.header.size(), 3u);
  EXPECT_EQ(doc.header[0], "a");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc.rows[1][2], "6");
}

TEST(Csv, HeaderlessMode) {
  const CsvDocument doc = parse_csv("1,2\n3,4\n", false);
  EXPECT_TRUE(doc.header.empty());
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(Csv, QuotedFieldsWithCommasAndQuotes) {
  const CsvDocument doc =
      parse_csv("name,notes\nWannacry,\"spreads, fast\"\nRyuk,\"says \"\"pay\"\"\"\n",
                true);
  EXPECT_EQ(doc.rows[0][1], "spreads, fast");
  EXPECT_EQ(doc.rows[1][1], "says \"pay\"");
}

TEST(Csv, QuotedNewlineInsideField) {
  const CsvDocument doc = parse_csv("a\n\"line1\nline2\"\n", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(Csv, CrLfLineEndings) {
  const CsvDocument doc = parse_csv("a,b\r\n1,2\r\n", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, SkipsBlankLines) {
  const CsvDocument doc = parse_csv("a\n\n1\n\n2\n", true);
  EXPECT_EQ(doc.rows.size(), 2u);
}

TEST(Csv, MissingFinalNewline) {
  const CsvDocument doc = parse_csv("a,b\n1,2", true);
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "2");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n", true), ParseError);
}

TEST(Csv, EscapeRoundTrip) {
  for (const std::string& field :
       {std::string("plain"), std::string("with,comma"), std::string("with\"quote"),
        std::string("with\nnewline"), std::string("")}) {
    std::ostringstream out;
    CsvWriter writer(out);
    writer.write_row({field, "tail"});
    const CsvDocument doc = parse_csv(out.str(), false);
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.rows[0][0], field);
    EXPECT_EQ(doc.rows[0][1], "tail");
  }
}

TEST(Csv, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csdml_csv_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    CsvWriter writer(out);
    writer.write_row({"x", "y"});
    writer.write_row({"1", "2"});
  }
  const CsvDocument doc = read_csv_file(path, true);
  EXPECT_EQ(doc.header[1], "y");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
  std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/no.csv", true), ParseError);
}

}  // namespace
}  // namespace csdml
