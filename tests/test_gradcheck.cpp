// Finite-difference verification of the full BPTT gradient — the
// make-or-break invariant of the offline trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/train.hpp"

namespace csdml::nn {
namespace {

struct GradCheckCase {
  CellActivation activation;
  std::size_t sequence_length;
};

class GradCheckTest : public ::testing::TestWithParam<GradCheckCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const GradCheckCase param = GetParam();
  LstmConfig config{.vocab_size = 7, .embed_dim = 3, .hidden_dim = 4,
                    .activation = param.activation};
  Rng rng(31);
  LstmClassifier model(config, rng);

  Sequence seq;
  Rng token_rng(5);
  for (std::size_t i = 0; i < param.sequence_length; ++i) {
    seq.push_back(static_cast<TokenId>(token_rng.uniform_int(0, 6)));
  }
  const int label = 1;

  LstmGradients grads = LstmParams::zeros(config);
  backward(model, seq, label, grads);

  const std::vector<double*> params = model.mutable_params().parameter_pointers();
  const std::vector<double*> analytic = grads.parameter_pointers();

  // Check a deterministic sample of parameters (every k-th) to keep the
  // test fast while covering embedding, every gate, and the dense head.
  const std::size_t stride = std::max<std::size_t>(params.size() / 60, 1);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += stride) {
    const double original = *params[i];
    *params[i] = original + eps;
    const double loss_plus = bce_loss(model.forward(seq, nullptr), label);
    *params[i] = original - eps;
    const double loss_minus = bce_loss(model.forward(seq, nullptr), label);
    *params[i] = original;
    const double numeric = (loss_plus - loss_minus) / (2 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(*analytic[i]), 1e-4});
    EXPECT_LT(std::abs(numeric - *analytic[i]) / denom, 2e-3)
        << "param " << i << ": analytic " << *analytic[i] << " numeric "
        << numeric;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Activations, GradCheckTest,
    ::testing::Values(GradCheckCase{CellActivation::Softsign, 1},
                      GradCheckCase{CellActivation::Softsign, 6},
                      GradCheckCase{CellActivation::Softsign, 15},
                      GradCheckCase{CellActivation::Tanh, 6},
                      GradCheckCase{CellActivation::Tanh, 15}));

TEST(GradCheck, NegativeLabelGradientsAlsoCorrect) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(17);
  LstmClassifier model(config, rng);
  const Sequence seq{0, 3, 1, 4};

  LstmGradients grads = LstmParams::zeros(config);
  backward(model, seq, 0, grads);

  const std::vector<double*> params = model.mutable_params().parameter_pointers();
  const std::vector<double*> analytic = grads.parameter_pointers();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 7) {
    const double original = *params[i];
    *params[i] = original + eps;
    const double lp = bce_loss(model.forward(seq, nullptr), 0);
    *params[i] = original - eps;
    const double lm = bce_loss(model.forward(seq, nullptr), 0);
    *params[i] = original;
    const double numeric = (lp - lm) / (2 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(*analytic[i]), 1e-4});
    EXPECT_LT(std::abs(numeric - *analytic[i]) / denom, 2e-3) << "param " << i;
  }
}

TEST(GradCheck, GradientsAccumulateAcrossSamples) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(19);
  LstmClassifier model(config, rng);

  LstmGradients combined = LstmParams::zeros(config);
  backward(model, {1, 2, 3}, 1, combined);
  backward(model, {4, 0, 2}, 0, combined);

  LstmGradients first = LstmParams::zeros(config);
  backward(model, {1, 2, 3}, 1, first);
  LstmGradients second = LstmParams::zeros(config);
  backward(model, {4, 0, 2}, 0, second);

  const auto c = combined.parameter_pointers();
  const auto f = first.parameter_pointers();
  const auto s = second.parameter_pointers();
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(*c[i], *f[i] + *s[i], 1e-12);
  }
}

TEST(GradCheck, BackwardReturnsForwardLoss) {
  LstmConfig config{.vocab_size = 5, .embed_dim = 2, .hidden_dim = 3};
  Rng rng(23);
  LstmClassifier model(config, rng);
  LstmGradients grads = LstmParams::zeros(config);
  const Sequence seq{0, 1, 2, 3, 4};
  const double loss = backward(model, seq, 1, grads);
  EXPECT_NEAR(loss, bce_loss(model.forward(seq, nullptr), 1), 1e-12);
}

}  // namespace
}  // namespace csdml::nn
