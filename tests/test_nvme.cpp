#include "csd/nvme.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace csdml::csd {
namespace {

struct NvmeFixture {
  SmartSsd board{SmartSsdConfig{}};
  NvmeQueue queue{board, NvmeQueueConfig{}};
};

TEST(Nvme, WriteThenReadRoundTrips) {
  NvmeFixture f;
  std::vector<std::uint8_t> payload(8192);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  NvmeCommand write;
  write.opcode = NvmeOpcode::Write;
  write.command_id = 1;
  write.lba = 100;
  write.payload = payload;
  f.queue.submit(write, TimePoint{});
  const NvmeCompletion write_done = f.queue.wait_oldest();
  EXPECT_TRUE(write_done.success);
  EXPECT_EQ(write_done.command_id, 1);

  NvmeCommand read;
  read.opcode = NvmeOpcode::Read;
  read.command_id = 2;
  read.lba = 100;
  read.block_count = 2;
  f.queue.submit(read, write_done.completed_at);
  const NvmeCompletion read_done = f.queue.wait_oldest();
  EXPECT_EQ(read_done.command_id, 2);
  ASSERT_EQ(read_done.data.size(), payload.size());
  EXPECT_EQ(read_done.data, payload);
  EXPECT_GT(read_done.completed_at.picos, write_done.completed_at.picos);
}

TEST(Nvme, CompletionIncludesDoorbellAndInterruptLatency) {
  NvmeFixture f;
  NvmeCommand flush;
  flush.opcode = NvmeOpcode::Flush;
  f.queue.submit(flush, TimePoint{});
  const NvmeCompletion done = f.queue.wait_oldest();
  const NvmeQueueConfig config;
  const Duration floor = config.doorbell_latency + Duration::microseconds(50) +
                         config.completion_latency;
  EXPECT_EQ((done.completed_at - TimePoint{}).picos, floor.picos);
}

TEST(Nvme, QueueDepthEnforced) {
  SmartSsd board{SmartSsdConfig{}};
  NvmeQueueConfig config;
  config.queue_depth = 2;
  NvmeQueue queue(board, config);
  NvmeCommand flush;
  flush.opcode = NvmeOpcode::Flush;
  queue.submit(flush, TimePoint{});
  queue.submit(flush, TimePoint{});
  EXPECT_EQ(queue.outstanding(), 2u);
  EXPECT_THROW(queue.submit(flush, TimePoint{}), ResourceError);
  queue.wait_oldest();
  queue.submit(flush, TimePoint{});  // room again
  EXPECT_EQ(queue.completed_count(), 1u);
}

TEST(Nvme, ReapOnlyReturnsFinishedCommands) {
  NvmeFixture f;
  NvmeCommand read;
  read.opcode = NvmeOpcode::Read;
  read.block_count = 1;
  f.queue.submit(read, TimePoint{});
  // NAND reads take ~70 us; nothing is ready after 1 us.
  EXPECT_FALSE(f.queue.reap(TimePoint{} + Duration::microseconds(1)).has_value());
  EXPECT_TRUE(
      f.queue.reap(TimePoint{} + Duration::microseconds(10'000)).has_value());
  EXPECT_FALSE(
      f.queue.reap(TimePoint{} + Duration::microseconds(10'000)).has_value());
}

TEST(Nvme, FpgaDmaCommandsMoveData) {
  NvmeFixture f;
  NvmeCommand dma_write;
  dma_write.opcode = NvmeOpcode::FpgaDmaWrite;
  dma_write.bank = 1;
  dma_write.bank_offset = 512;
  dma_write.payload = {5, 6, 7, 8};
  f.queue.submit(dma_write, TimePoint{});
  const NvmeCompletion write_done = f.queue.wait_oldest();

  NvmeCommand dma_read;
  dma_read.opcode = NvmeOpcode::FpgaDmaRead;
  dma_read.bank = 1;
  dma_read.bank_offset = 512;
  dma_read.read_size = 4;
  f.queue.submit(dma_read, write_done.completed_at);
  const NvmeCompletion read_done = f.queue.wait_oldest();
  EXPECT_EQ(read_done.data, (std::vector<std::uint8_t>{5, 6, 7, 8}));
}

TEST(Nvme, P2pLoadLandsInFpgaDram) {
  NvmeFixture f;
  const std::vector<std::uint8_t> payload(4096, 0x77);
  f.board.ssd().write(50, payload, TimePoint{});

  NvmeCommand p2p;
  p2p.opcode = NvmeOpcode::FpgaP2pLoad;
  p2p.lba = 50;
  p2p.block_count = 1;
  p2p.bank = 0;
  p2p.bank_offset = 0;
  f.queue.submit(p2p, TimePoint{} + Duration::microseconds(1'000));
  f.queue.wait_oldest();
  EXPECT_EQ(f.board.fpga().bank(0).load(0, 4096), payload);
  // P2P never crossed the host link.
  EXPECT_EQ(f.board.pcie().upstream().bytes_moved().count, 0u);
}

TEST(Nvme, ComputeCommandChargesModelTime) {
  NvmeFixture f;
  NvmeCommand compute;
  compute.opcode = NvmeOpcode::FpgaCompute;
  compute.compute_time = Duration::microseconds(215);
  f.queue.submit(compute, TimePoint{});
  const NvmeCompletion done = f.queue.wait_oldest();
  EXPECT_GE((done.completed_at - TimePoint{}).as_microseconds(), 215.0);
  EXPECT_EQ(f.board.trace().count("nvme_compute"), 1u);
}

TEST(Nvme, CommandValidation) {
  NvmeFixture f;
  NvmeCommand bad_read;
  bad_read.opcode = NvmeOpcode::Read;  // block_count 0
  EXPECT_THROW(f.queue.submit(bad_read, TimePoint{}), PreconditionError);
  NvmeCommand bad_compute;
  bad_compute.opcode = NvmeOpcode::FpgaCompute;  // no duration
  EXPECT_THROW(f.queue.submit(bad_compute, TimePoint{}), PreconditionError);
  EXPECT_THROW(f.queue.wait_oldest(), PreconditionError);
  EXPECT_THROW(NvmeQueue(f.board, NvmeQueueConfig{.queue_depth = 0}),
               PreconditionError);
}

}  // namespace
}  // namespace csdml::csd
