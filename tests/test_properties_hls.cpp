// Property sweeps over the HLS cost model: the monotonicity and bounding
// laws any credible scheduler model must satisfy, checked across a grid of
// loop shapes.
#include <gtest/gtest.h>

#include "hls/cost_model.hpp"

namespace csdml::hls {
namespace {

HlsCostModel model() { return HlsCostModel::ultrascale_default(); }

struct LoopShape {
  std::uint64_t trips;
  std::uint32_t accesses;
  int unroll;
  bool pipeline;
};

class LoopShapeTest : public ::testing::TestWithParam<LoopShape> {
 protected:
  LoopSpec make(const LoopShape& shape) const {
    LoopSpec loop;
    loop.name = "sweep";
    loop.trip_count = shape.trips;
    loop.body_ops = {LoopOp{OpKind::IntMul, 4}, LoopOp{OpKind::IntAdd, 4}};
    loop.buffer_accesses = shape.accesses;
    loop.memory_ports = 2;
    loop.pragmas.unroll = shape.unroll;
    loop.pragmas.pipeline = shape.pipeline;
    return loop;
  }
};

TEST_P(LoopShapeTest, CyclesGrowWithTripCount) {
  LoopSpec loop = make(GetParam());
  const auto base = model().analyze_loop(loop).cycles.count;
  loop.trip_count *= 2;
  EXPECT_GE(model().analyze_loop(loop).cycles.count, base);
}

TEST_P(LoopShapeTest, MorePortsNeverHurt) {
  LoopSpec loop = make(GetParam());
  const auto narrow = model().analyze_loop(loop).cycles.count;
  loop.memory_ports = 16;
  EXPECT_LE(model().analyze_loop(loop).cycles.count, narrow);
}

TEST_P(LoopShapeTest, PartitioningNeverHurts) {
  LoopSpec loop = make(GetParam());
  const auto base = model().analyze_loop(loop).cycles.count;
  loop.pragmas.array_partition_complete = true;
  EXPECT_LE(model().analyze_loop(loop).cycles.count, base);
}

TEST_P(LoopShapeTest, PipeliningNeverHurtsAtSameUnroll) {
  LoopSpec loop = make(GetParam());
  loop.pragmas.pipeline = false;
  const auto sequential = model().analyze_loop(loop).cycles.count;
  loop.pragmas.pipeline = true;
  EXPECT_LE(model().analyze_loop(loop).cycles.count, sequential);
}

TEST_P(LoopShapeTest, AchievedIiRespectsTarget) {
  LoopSpec loop = make(GetParam());
  if (!loop.pragmas.pipeline) return;
  const LoopReport report = model().analyze_loop(loop);
  EXPECT_GE(report.achieved_ii,
            static_cast<std::uint64_t>(loop.pragmas.target_ii));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LoopShapeTest,
    ::testing::Values(LoopShape{8, 2, 1, false}, LoopShape{8, 2, 1, true},
                      LoopShape{32, 8, 1, true}, LoopShape{32, 8, 2, true},
                      LoopShape{100, 16, 4, true}, LoopShape{100, 0, 1, true},
                      LoopShape{1, 4, 1, false}, LoopShape{1000, 6, 8, true}));

TEST(CostModelProperties, TransferCyclesMonotonicInBytes) {
  std::uint64_t previous = 0;
  for (std::uint64_t bytes = 1; bytes <= (1u << 20); bytes *= 4) {
    const auto cycles =
        model().analyze_transfer({"t", Bytes{bytes}, 1.0}).count;
    EXPECT_GE(cycles, previous);
    previous = cycles;
  }
}

TEST(CostModelProperties, ContentionScalesBeatsLinearly) {
  const auto base = model().analyze_transfer({"t", Bytes{6400}, 1.0}).count;
  const auto doubled = model().analyze_transfer({"t", Bytes{6400}, 2.0}).count;
  const AxiConfig axi;
  EXPECT_EQ(doubled - axi.setup_latency.count,
            2 * (base - axi.setup_latency.count));
}

TEST(CostModelProperties, DataflowNeverSlowerThanSequentialKernel) {
  for (const std::uint64_t trips : {4ull, 64ull, 512ull}) {
    KernelSpec kernel;
    kernel.name = "k";
    LoopSpec a;
    a.name = "a";
    a.trip_count = trips;
    a.body_ops = {LoopOp{OpKind::IntAdd, 2}};
    a.buffer_accesses = 2;
    LoopSpec b = a;
    b.name = "b";
    b.trip_count = trips * 2;
    kernel.loops = {a, b};
    kernel.transfers = {{"io", Bytes{256}, 1.0}};
    const auto sequential = model().analyze(kernel).total.count;
    kernel.dataflow = true;
    EXPECT_LE(model().analyze(kernel).total.count, sequential);
  }
}

TEST(CostModelProperties, DependenceNeverLowersIi) {
  for (const auto dep : {OpKind::IntAdd, OpKind::IntMul, OpKind::FloatAdd,
                         OpKind::FloatDiv}) {
    LoopSpec loop;
    loop.name = "dep";
    loop.trip_count = 64;
    loop.body_ops = {LoopOp{dep, 1}};
    loop.buffer_accesses = 1;
    loop.pragmas.pipeline = true;
    const auto free_ii = model().analyze_loop(loop).achieved_ii;
    loop.carried_dependency = dep;
    const auto bound_ii = model().analyze_loop(loop).achieved_ii;
    EXPECT_GE(bound_ii, free_ii);
    EXPECT_GE(bound_ii, model().ops().latency(dep).count);
  }
}

}  // namespace
}  // namespace csdml::hls
