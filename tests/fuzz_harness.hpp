// Differential fuzz harness for the CSD stack under fault injection.
//
// A FuzzStack is one complete simulated deployment — SmartSSD, XRT device,
// CsdLstmEngine, StreamingDetector, NVMe queue — with a seeded FaultPlan
// attached, plus three independent oracles (fused-layout float and fixed
// datapaths built from the same parameters, and a HostBaseline). run()
// replays a seeded stream of randomized events (API calls, process
// forgets, SSD/NVMe traffic) and checks, on every classification the
// detector emits:
//
//   * parity: the served probability is bit-identical to the matching
//     oracle recomputed on a shadow copy of the process window — fused vs
//     infer_reference vs host-baseline, depending on which path served;
//   * no silent drops: whenever the shadow model says a classification is
//     due, the detector either ran it or deferred it (degraded counter),
//     never neither;
//   * determinism: the injected-fault log digest and an FNV digest over
//     all detector outcomes are bit-identical for equal seeds.
//
// Iteration counts come from fuzz_iterations(): CI runs the deterministic
// short campaign; CSDML_FUZZ_ITERS raises it for long local runs.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/host_baseline.hpp"
#include "common/env.hpp"
#include "csd/nvme.hpp"
#include "detect/detector.hpp"
#include "faults/fault_plan.hpp"
#include "kernels/engine.hpp"
#include "kernels/functional.hpp"
#include "nn/lstm.hpp"

namespace csdml::testing {

/// Iterations for a fuzz loop: `CSDML_FUZZ_ITERS` when set (so `ctest -L
/// fuzz` can run long campaigns locally), else `fallback` (the CI budget).
/// Invalid values (non-numeric, zero, overflow) warn and use the fallback.
inline std::size_t fuzz_iterations(std::size_t fallback) {
  return static_cast<std::size_t>(
      env_u64("CSDML_FUZZ_ITERS", fallback, 1, 1ull << 32));
}

struct FuzzConfig {
  std::uint64_t seed{1};
  kernels::OptimizationLevel level{kernels::OptimizationLevel::FixedPoint};
  faults::FaultConfig faults{};
  std::size_t window_length{24};
  std::size_t hop{6};
  std::size_t process_count{5};
  /// When false the engine has no host fallback: unhealthy stretches
  /// surface as deferred classifications instead of degraded serves.
  bool with_fallback{true};
};

struct FuzzOutcome {
  std::uint64_t events{0};
  std::uint64_t classifications{0};
  std::uint64_t detections{0};
  std::uint64_t degraded_serves{0};     ///< served by the host fallback
  std::uint64_t deferred{0};            ///< due but CSD unavailable
  std::uint64_t parity_mismatches{0};
  std::uint64_t accounting_mismatches{0};
  std::uint64_t faults_injected{0};
  std::uint64_t fault_digest{0};
  std::uint64_t outcome_digest{0};
};

class FuzzStack {
 public:
  explicit FuzzStack(FuzzConfig config)
      : config_(config),
        model_config_{.vocab_size = 48, .embed_dim = 4, .hidden_dim = 8},
        plan_(config.faults),
        board_(csd::SmartSsdConfig{}),
        device_(board_),
        queue_(board_, csd::NvmeQueueConfig{}) {
    Rng rng(config_.seed);
    params_ = nn::LstmParams::glorot(model_config_, rng);
    float_oracle_ = std::make_unique<kernels::FloatDatapath>(model_config_, params_);
    fixed_oracle_ = std::make_unique<kernels::FixedDatapath>(model_config_, params_);
    host_oracle_ = std::make_unique<baselines::HostBaseline>(
        "fuzz-host", model_config_, params_, baselines::HostLatencyConfig{});

    engine_ = std::make_unique<kernels::CsdLstmEngine>(
        device_, model_config_, params_,
        kernels::EngineConfig{.level = config_.level, .batch_threads = 1});
    if (config_.with_fallback) engine_->set_fallback(host_oracle_.get());
    // Attach the plan only after construction so weight staging is clean:
    // campaigns target the serving path, not initialisation.
    board_.set_fault_plan(&plan_);

    // threshold 0 + no debounce: every classification surfaces as a
    // Detection, so parity is checked on all of them.
    detector_ = std::make_unique<detect::StreamingDetector>(
        *engine_, detect::DetectorConfig{.window_length = config_.window_length,
                                         .hop = config_.hop,
                                         .threshold = 0.0,
                                         .consecutive_alerts = 1});
  }

  faults::FaultPlan& plan() { return plan_; }
  detect::StreamingDetector& detector() { return *detector_; }
  kernels::CsdLstmEngine& engine() { return *engine_; }

  /// Replays `events` randomized events and returns the campaign outcome.
  FuzzOutcome run(std::size_t events) {
    Rng rng = Rng(config_.seed).fork("fuzz-events");
    FuzzOutcome outcome;
    for (std::size_t i = 0; i < events; ++i) {
      const double roll = rng.uniform();
      if (roll < 0.85) {
        api_call_event(rng, outcome);
      } else if (roll < 0.89) {
        forget_known_event(rng);
      } else if (roll < 0.92) {
        // Unknown pid forget must be a no-op (regression: used to be
        // indistinguishable from a dropped teardown).
        detector_->forget(kUnknownPidBase + static_cast<detect::ProcessId>(
                                                rng.uniform_int(0, 999)));
      } else if (roll < 0.97) {
        ssd_traffic_event(rng);
      } else {
        nvme_traffic_event(rng);
      }
      ++outcome.events;
    }
    outcome.classifications = detector_->classifications_run();
    outcome.deferred = detector_->degraded_classifications();
    outcome.faults_injected = plan_.injected();
    outcome.fault_digest = plan_.digest();
    outcome.outcome_digest = outcome_digest_;
    return outcome;
  }

 private:
  static constexpr detect::ProcessId kUnknownPidBase = 1u << 20;
  static constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

  struct ShadowProcess {
    std::deque<nn::TokenId> window;
    std::uint64_t calls_seen{0};
    std::uint64_t calls_since_eval{0};
  };

  void digest_word(std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      outcome_digest_ ^= (word >> (byte * 8)) & 0xffULL;
      outcome_digest_ *= kFnvPrime;
    }
  }

  /// Mirrors StreamingDetector's scheduling: true when this call triggers
  /// a classification attempt for the shadow process.
  static bool classification_due(const ShadowProcess& shadow,
                                 const FuzzConfig& config) {
    if (shadow.window.size() < config.window_length) return false;
    if (shadow.calls_seen == config.window_length) return true;
    return shadow.calls_since_eval >= config.hop;
  }

  double oracle_probability(const std::vector<nn::TokenId>& window,
                            bool degraded) const {
    if (degraded) return host_oracle_->infer(window);
    if (config_.level == kernels::OptimizationLevel::FixedPoint) {
      return fixed_oracle_->infer(window);
    }
    return float_oracle_->infer(window);
  }

  bool oracle_self_consistent(const std::vector<nn::TokenId>& window) const {
    // Fused vs stage-by-stage reference of the active datapath, plus the
    // host baseline against the float fused path (identical math).
    if (config_.level == kernels::OptimizationLevel::FixedPoint) {
      if (fixed_oracle_->infer(window) != fixed_oracle_->infer_reference(window)) {
        return false;
      }
    } else if (float_oracle_->infer(window) != float_oracle_->infer_reference(window)) {
      return false;
    }
    return float_oracle_->infer(window) == host_oracle_->infer(window);
  }

  void api_call_event(Rng& rng, FuzzOutcome& outcome) {
    const auto pid = static_cast<detect::ProcessId>(
        rng.uniform_int(1, static_cast<std::int64_t>(config_.process_count)));
    const auto token = static_cast<nn::TokenId>(
        rng.uniform_int(0, model_config_.vocab_size - 1));

    ShadowProcess& shadow = shadows_[pid];
    shadow.window.push_back(token);
    if (shadow.window.size() > config_.window_length) shadow.window.pop_front();
    ++shadow.calls_seen;
    ++shadow.calls_since_eval;
    const bool due = classification_due(shadow, config_);

    const std::uint64_t classified_before = detector_->classifications_run();
    const std::uint64_t deferred_before = detector_->degraded_classifications();
    const std::optional<detect::Detection> detection =
        detector_->on_api_call(pid, token);
    const std::uint64_t classified = detector_->classifications_run() - classified_before;
    const std::uint64_t deferred = detector_->degraded_classifications() - deferred_before;

    // No-drop accounting: a due classification either ran or was deferred
    // (and a not-due call did neither).
    if (due ? classified + deferred != 1 : classified + deferred != 0) {
      ++outcome.accounting_mismatches;
    }
    if (due) {
      // Keep the shadow scheduler in lockstep with the detector's deferred
      // retry: a deferred classification re-arms the hop counter.
      shadow.calls_since_eval = deferred != 0 ? config_.hop : 0;
    }

    if (!detection.has_value()) {
      if (classified != 0) ++outcome.accounting_mismatches;  // threshold 0 ⇒ detect
      return;
    }
    ++outcome.detections;
    if (detection->degraded) ++outcome.degraded_serves;

    const std::vector<nn::TokenId> window(shadow.window.begin(),
                                          shadow.window.end());
    const double expected = oracle_probability(window, detection->degraded);
    if (detection->probability != expected || !oracle_self_consistent(window)) {
      ++outcome.parity_mismatches;
    }
    digest_word(pid);
    digest_word(detection->call_index);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(detection->probability));
    std::memcpy(&bits, &detection->probability, sizeof(bits));
    digest_word(bits);
    digest_word(detection->degraded ? 1 : 0);
  }

  void forget_known_event(Rng& rng) {
    const auto pid = static_cast<detect::ProcessId>(
        rng.uniform_int(1, static_cast<std::int64_t>(config_.process_count)));
    detector_->forget(pid);
    shadows_.erase(pid);
  }

  void ssd_traffic_event(Rng& rng) {
    // Round-trip through NAND + the PCIe switch so NandReadDisturb and
    // PcieCorruption sites fire under detector load.
    const auto lba = static_cast<std::uint64_t>(rng.uniform_int(0, 63));
    std::vector<std::uint8_t> payload(128);
    for (auto& byte : payload) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const TimePoint now = device_.now();
    board_.ssd().write(lba, payload, now);
    if (rng.chance(0.5)) {
      board_.p2p_read_to_fpga(lba, 1, 0, 0, device_.now());
    } else {
      board_.host_read_to_fpga(lba, 1, 0, 0, device_.now());
    }
  }

  void nvme_traffic_event(Rng& rng) {
    csd::NvmeCommand command;
    command.command_id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    command.opcode = csd::NvmeOpcode::Read;
    command.lba = static_cast<std::uint64_t>(rng.uniform_int(0, 63));
    command.block_count = 1;
    queue_.submit(command, device_.now());
    queue_.wait_oldest();
  }

  FuzzConfig config_;
  nn::LstmConfig model_config_;
  nn::LstmParams params_;
  faults::FaultPlan plan_;
  csd::SmartSsd board_;
  xrt::Device device_;
  csd::NvmeQueue queue_;
  std::unique_ptr<kernels::FloatDatapath> float_oracle_;
  std::unique_ptr<kernels::FixedDatapath> fixed_oracle_;
  std::unique_ptr<baselines::HostBaseline> host_oracle_;
  std::unique_ptr<kernels::CsdLstmEngine> engine_;
  std::unique_ptr<detect::StreamingDetector> detector_;
  std::unordered_map<detect::ProcessId, ShadowProcess> shadows_;
  std::uint64_t outcome_digest_{kFnvOffset};
};

}  // namespace csdml::testing
