#include "detect/token_ring.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace csdml::detect {
namespace {

std::vector<nn::TokenId> materialize(nn::TokenSpan view) {
  return {view.begin(), view.end()};
}

TEST(TokenRing, FillsThenSlides) {
  TokenRing ring(3);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 3u);

  ring.push(10);
  EXPECT_EQ(materialize(ring.view()), (std::vector<nn::TokenId>{10}));
  ring.push(11);
  ring.push(12);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(materialize(ring.view()), (std::vector<nn::TokenId>{10, 11, 12}));

  // Wrap: oldest evicted, order preserved, still contiguous.
  ring.push(13);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(materialize(ring.view()), (std::vector<nn::TokenId>{11, 12, 13}));
  ring.push(14);
  EXPECT_EQ(materialize(ring.view()), (std::vector<nn::TokenId>{12, 13, 14}));
}

TEST(TokenRing, MatchesDequeModelAcrossManyWraps) {
  TokenRing ring(7);
  std::deque<nn::TokenId> model;
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    const auto token = static_cast<nn::TokenId>(rng.uniform_int(0, 300));
    ring.push(token);
    model.push_back(token);
    if (model.size() > 7) model.pop_front();
    ASSERT_EQ(materialize(ring.view()),
              std::vector<nn::TokenId>(model.begin(), model.end()))
        << "after push " << i;
  }
}

TEST(TokenRing, ViewIsContiguousMemory) {
  TokenRing ring(4);
  for (nn::TokenId t = 0; t < 11; ++t) ring.push(t);
  const nn::TokenSpan view = ring.view();
  ASSERT_EQ(view.size(), 4u);
  // span guarantees contiguity by construction; check the values line up
  // with raw pointer walks to make sure the mirror slots are in sync.
  const nn::TokenId* data = view.data();
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(data[i], static_cast<nn::TokenId>(7 + i));
  }
}

TEST(TokenRing, ClearResets) {
  TokenRing ring(3);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  ring.push(4);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.view().size(), 0u);
  ring.push(9);
  EXPECT_EQ(materialize(ring.view()), (std::vector<nn::TokenId>{9}));
}

TEST(TokenRing, RejectsZeroCapacityAndDefaultPush) {
  EXPECT_THROW(TokenRing(0), PreconditionError);
  TokenRing unsized;
  EXPECT_THROW(unsized.push(1), PreconditionError);
}

}  // namespace
}  // namespace csdml::detect
