// Prometheus text exposition: name sanitisation, the counter/_total and
// histogram cumulative-bucket conventions, and document shape.
#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

namespace csdml::obs {
namespace {

TEST(Prometheus, NamesArePrefixedAndSanitised) {
  EXPECT_EQ(prometheus_name("engine.kernel.gates_us"),
            "csdml_engine_kernel_gates_us");
  EXPECT_EQ(prometheus_name("detector.alerts"), "csdml_detector_alerts");
  EXPECT_EQ(prometheus_name("weird name-with/chars"),
            "csdml_weird_name_with_chars");
  EXPECT_EQ(prometheus_name("9starts_with_digit"), "csdml_9starts_with_digit");
}

TEST(Prometheus, CountersGainTotalSuffixAndTypeLine) {
  MetricsRegistry reg;
  reg.add_counter("detector.alerts", 3);
  const std::string text = to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE csdml_detector_alerts_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("csdml_detector_alerts_total 3\n"), std::string::npos);
}

TEST(Prometheus, GaugesRenderAsIs) {
  MetricsRegistry reg;
  reg.set_gauge("nand.occupancy", 0.0625);
  const std::string text = to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE csdml_nand_occupancy gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("csdml_nand_occupancy 0.0625\n"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndEndAtInf) {
  MetricsRegistry reg;
  const std::vector<double> bounds{1.0, 2.0};
  reg.observe("lat", 0.5, bounds);
  reg.observe("lat", 1.5, bounds);
  reg.observe("lat", 5.0, bounds);
  const std::string text = to_prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE csdml_lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("csdml_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("csdml_lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("csdml_lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("csdml_lat_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("csdml_lat_count 3\n"), std::string::npos);
  // +Inf is the last bucket line, as histogram_quantile expects.
  EXPECT_GT(text.find("le=\"+Inf\""), text.find("le=\"2\""));
}

TEST(Prometheus, DocumentEndsWithNewline) {
  MetricsRegistry reg;
  reg.add_counter("c");
  reg.set_gauge("g", 1.0);
  reg.observe("h", 1.0);
  const std::string text = to_prometheus_text(reg.snapshot());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  // Exactly one sample or comment per line, no blank lines.
  EXPECT_EQ(text.find("\n\n"), std::string::npos);
}

TEST(Prometheus, EmptySnapshotRendersEmptyDocument) {
  MetricsRegistry reg;
  EXPECT_TRUE(to_prometheus_text(reg.snapshot()).empty());
}

}  // namespace
}  // namespace csdml::obs
