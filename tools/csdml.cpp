// The csdml command-line tool. All logic lives in src/host/cli.cpp so the
// test suite exercises it in-process; this translation unit is only the
// entry point.
#include <iostream>
#include <string>
#include <vector>

#include "host/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return csdml::host::run_cli(args, std::cout, std::cerr);
}
