// Detection-path resilience under injected faults: how much classification
// throughput survives as the XRT launch-failure rate climbs, and what the
// retry / fallback / recovery machinery costs.
//
// For each fault rate the bench streams API-call windows through a
// StreamingDetector backed by a fault-injected engine with a host
// fallback, and reports classifications, degraded serves, retries,
// recoveries and wall-clock windows/sec. Emits BENCH_fault_resilience.json
// (into CSDML_METRICS_OUT when set). `--tiny` shrinks the stream for CI.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/host_baseline.hpp"
#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "detect/detector.hpp"
#include "faults/fault_plan.hpp"
#include "kernels/engine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct CampaignRow {
  double fault_rate{0.0};
  std::uint64_t classifications{0};
  std::uint64_t degraded_serves{0};
  std::uint64_t deferred{0};
  std::uint64_t retries{0};
  std::uint64_t recoveries{0};
  std::uint64_t faults_injected{0};
  double windows_per_sec{0.0};
  csdml::obs::HealthReport health;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace csdml;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  // Post-mortem coverage: if a campaign crashes the process, the flight
  // recorder still ships its last events as JSON before the re-raise.
  obs::FlightRecorder::install_crash_handler();

  nn::LstmConfig config;  // seed defaults: fit the xcku15p at every level
  const std::size_t window = tiny ? 12 : 100;
  const std::size_t calls = tiny ? 2'000 : 50'000;

  Rng rng(17);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  const baselines::HostBaseline host("xeon-fallback", config, params,
                                     baselines::HostLatencyConfig::xeon_cpu());

  bench::print_header("Fault resilience (detection path under injection)");
  std::cout << "vocab=" << config.vocab_size << " hidden=" << config.hidden_dim
            << " window=" << window << " calls=" << calls
            << (tiny ? "  [tiny smoke]" : "") << "\n";

  // 0.25 is the storm rate: 3 consecutive launch failures per window are
  // likely enough that the unhealthy latch (and its flight-recorder dump)
  // fires deterministically even in the tiny CI campaign.
  const std::vector<double> fault_rates{0.0, 0.005, 0.02, 0.05, 0.25};
  std::vector<CampaignRow> rows;
  TextTable table({"fault_rate", "classified", "degraded", "deferred",
                   "retries", "recoveries", "windows_per_s", "health"});
  for (const double rate : fault_rates) {
    // Fresh registry per campaign so the health verdict judges this
    // campaign's tail, not the accumulated history of previous rates.
    obs::registry().reset();
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(
        device, config, params,
        kernels::EngineConfig{.batch_threads = 1,
                              .retry = {.max_attempts = 3,
                                        .recovery_probe_interval = 8}});
    engine.set_fallback(&host);

    faults::FaultConfig fault_config;
    fault_config.seed = 404;
    fault_config.xrt_launch_failure_probability = rate;
    faults::FaultPlan plan(fault_config);
    board.set_fault_plan(&plan);

    detect::StreamingDetector detector(
        engine, detect::DetectorConfig{.window_length = window,
                                       .hop = window / 4,
                                       .threshold = 2.0});  // count, don't alert

    obs::MetricsRegistry& metrics = obs::registry();
    const std::uint64_t retries_before = metrics.counter_value("engine.retries");
    const std::uint64_t recoveries_before =
        metrics.counter_value("engine.recoveries");
    const std::uint64_t fallback_before =
        metrics.counter_value("engine.fallback_inferences");

    Rng token_rng(5 + static_cast<std::uint64_t>(rate * 1000));
    const auto start = Clock::now();
    for (std::size_t i = 0; i < calls; ++i) {
      detector.on_api_call(1, static_cast<nn::TokenId>(token_rng.uniform_int(
                                  0, config.vocab_size - 1)));
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    CampaignRow row;
    row.fault_rate = rate;
    row.classifications = detector.classifications_run();
    row.deferred = detector.degraded_classifications();
    row.degraded_serves =
        metrics.counter_value("engine.fallback_inferences") - fallback_before;
    row.retries = metrics.counter_value("engine.retries") - retries_before;
    row.recoveries =
        metrics.counter_value("engine.recoveries") - recoveries_before;
    row.faults_injected = plan.injected();
    row.windows_per_sec =
        elapsed > 0.0 ? static_cast<double>(row.classifications) / elapsed : 0.0;
    row.health = obs::evaluate_health(metrics.snapshot(), engine.healthy());
    rows.push_back(row);
    table.add_row({TextTable::num(rate, 3),
                   std::to_string(row.classifications),
                   std::to_string(row.degraded_serves),
                   std::to_string(row.deferred),
                   std::to_string(row.retries),
                   std::to_string(row.recoveries),
                   TextTable::num(row.windows_per_sec, 0),
                   obs::health_verdict_name(row.health.verdict)});
  }
  table.print(std::cout);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "fault_resilience");
  json.key("config");
  json.begin_object();
  json.field("vocab_size", static_cast<std::int64_t>(config.vocab_size));
  json.field("hidden_dim", config.hidden_dim);
  json.field("window", window);
  json.field("calls", calls);
  json.field("tiny", tiny);
  json.end_object();
  json.key("campaigns");
  json.begin_array();
  for (const CampaignRow& row : rows) {
    json.begin_object();
    json.field("fault_rate", row.fault_rate);
    json.field("classifications", row.classifications);
    json.field("degraded_serves", row.degraded_serves);
    json.field("deferred", row.deferred);
    json.field("retries", row.retries);
    json.field("recoveries", row.recoveries);
    json.field("faults_injected", row.faults_injected);
    json.field("windows_per_sec", row.windows_per_sec);
    json.field("health_verdict", obs::health_verdict_name(row.health.verdict));
    json.field("slo_burn", row.health.slo_burn);
    json.field("within_slo", row.health.within_slo);
    json.field("unhealthy_latches", row.health.unhealthy_latches);
    json.end_object();
  }
  json.end_array();
  json.field("final_health_verdict",
             obs::health_verdict_name(rows.back().health.verdict));
  json.field("flight_events_recorded",
             obs::FlightRecorder::instance().recorded());
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_fault_resilience.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\nfault resilience -> " << json_path << "\n";
  bench::dump_metrics_json("bench_fault_resilience");
  return 0;
}
