// Reproduces Fig. 4: convergence of LSTM training on the ransomware
// API-call dataset. The paper trains ~4 K TensorFlow epochs to a peak test
// accuracy of 0.9833; our from-scratch trainer reaches the same plateau in
// far fewer epochs on the synthetic corpus, so the bench reports the
// accuracy-vs-epoch series (the figure's curve) and the converged value.
#include <iostream>

#include "bench_util.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace csdml;
  const bool full = argc > 1 && std::string(argv[1]) == "--paper-size";
  bench::print_header("Fig. 4 — convergence of LSTM training (test accuracy)");

  ransomware::DatasetSpec spec =
      full ? ransomware::DatasetSpec::paper() : ransomware::DatasetSpec::small();
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(7);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);

  const nn::LstmConfig config;  // 7,472 parameters, as in the paper
  nn::LstmClassifier model(config, rng);
  std::cout << "model parameters: "
            << model.params().embedding_parameter_count() << " embedding + "
            << model.params().lstm_parameter_count() << " LSTM = "
            << model.params().embedding_parameter_count() +
                   model.params().lstm_parameter_count()
            << " (paper: 2,224 + 5,248 = 7,472), plus "
            << model.params().dense_parameter_count() << " dense\n";
  std::cout << "train " << split.train.size() << " / test " << split.test.size()
            << " sequences of length " << spec.window_length << "\n\n";

  nn::TrainConfig tc;
  tc.epochs = full ? 20 : 12;
  tc.batch_size = 32;
  tc.learning_rate = 0.01;

  TextTable curve({"epoch", "train_loss", "test_accuracy"});
  const nn::TrainResult result = nn::train(
      model, split.train, split.test, tc, [&](const nn::EpochRecord& record) {
        curve.add_row({std::to_string(record.epoch),
                       TextTable::num(record.mean_train_loss, 4),
                       TextTable::num(record.test_accuracy, 4)});
      });
  curve.print(std::cout);

  std::cout << "\npeak test accuracy: " << TextTable::num(result.best_test_accuracy, 4)
            << " at epoch " << result.best_epoch << "   (paper: 0.9833 at ~4K"
            << " TF epochs, " << bench::deviation(result.best_test_accuracy, 0.9833)
            << ")\n";
  std::cout << "note: epoch counts are not comparable across frameworks; the\n"
               "reproduced quantity is the converged plateau of the curve.\n";
  return 0;
}
