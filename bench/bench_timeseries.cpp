// Telemetry collector cost + alert-detection latency.
//
// Two questions gate the time-series subsystem:
//
//  1. What does the collector cost the serving hot path? Measured two
//     ways. The duty cycle — one tick's wall cost over the sampling
//     interval — is the honest steady-state number and the gated one
//     (< 1%): the collector thread sleeps between ticks, so the tax on
//     serving is (tick_us / interval_us). The interleaved wall-clock
//     delta (serving blocks with the collector thread off vs on) is
//     reported too, but it is noise-dominated on a loaded 1-core runner
//     and informational only.
//
//  2. How fast does an injected p99 latency regression latch an alert?
//     Run on a fully deterministic injected clock/series: a baseline
//     stretch of ticks, then a stepped regression; the latency is
//     (ticks-to-latch x interval). No wall clock anywhere, so the number
//     is exact and reproducible.
//
// Emits BENCH_timeseries.json (into CSDML_METRICS_OUT when set); exit is
// nonzero only when the duty-cycle gate fails or the injected regression
// never latches.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "obs/anomaly.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeseries.hpp"
#include "ransomware/families.hpp"
#include "ransomware/sandbox.hpp"
#include "serve/fleet.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csdml;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  const std::size_t calls = tiny ? 600 : 3'000;
  const std::size_t boards = 2;
  const std::uint64_t seed = 2024;

  bench::print_header("Telemetry collector overhead + alert latency");
  std::cout << "boards=" << boards << " calls=" << calls
            << (tiny ? "  [tiny smoke]" : "") << "\n";

  obs::registry().reset();
  nn::LstmConfig model_config;
  Rng rng(seed);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);

  const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
  const auto& families = ransomware::ransomware_families();
  const auto& benign = ransomware::benign_profiles();
  const std::vector<std::vector<nn::TokenId>> streams = {
      sandbox.ransomware_trace(families.front(), 0, calls),
      sandbox.benign_trace(benign[0], 1, calls),
      sandbox.benign_trace(benign[1], 2, calls),
  };

  serve::FleetConfig fleet_config;
  fleet_config.boards = boards;
  fleet_config.seed = seed;
  fleet_config.engine = kernels::EngineConfig{};
  fleet_config.serve.detector = detect::DetectorConfig{
      .window_length = 100, .hop = 25, .consecutive_alerts = 2};
  fleet_config.slo.latency_slo_us = 10'000'000.0;
  fleet_config.telemetry.collector_thread = false;  // ticked by hand below

  serve::BoardFleet fleet(model_config, params, fleet_config,
                          [](const serve::Verdict&) {});
  obs::TelemetryCollector& collector = *fleet.telemetry();

  // --- 1a: interleaved serving blocks, collector quiet vs ticking -------
  // Alternating blocks charge machine-load drift to both sides equally.
  const std::size_t block = 50;
  double quiet_s = 0.0;
  double ticking_s = 0.0;
  bool ticking = false;
  for (std::size_t base = 0; base < calls; base += block) {
    const std::size_t end = std::min(base + block, calls);
    const auto start = Clock::now();
    for (std::size_t i = base; i < end; ++i) {
      for (std::size_t p = 0; p < streams.size(); ++p) {
        fleet.ingest(static_cast<detect::ProcessId>(p + 1), streams[p][i]);
      }
      // In ticking blocks, sample at the configured cadence relative to
      // the ingest stream (every ~25 ingests approximates a 100 ms
      // interval against this workload's pace).
      if (ticking && i % 25 == 0) collector.tick();
    }
    fleet.flush();
    (ticking ? ticking_s : quiet_s) += elapsed_s(start);
    ticking = !ticking;
  }
  const double overhead_pct =
      quiet_s > 0.0 ? (ticking_s - quiet_s) / quiet_s * 100.0 : 0.0;

  // --- 1b: duty cycle — the gated number ---------------------------------
  // Cost of one tick in isolation (registry snapshot + sampling + alert
  // evaluation) against the interval the collector thread would sleep.
  const std::size_t tick_iters = tiny ? 200 : 1'000;
  const auto tick_start = Clock::now();
  for (std::size_t i = 0; i < tick_iters; ++i) collector.tick();
  const double tick_us =
      elapsed_s(tick_start) / static_cast<double>(tick_iters) * 1e6;
  const double interval_us =
      static_cast<double>(fleet_config.telemetry.tsdb.interval_us);
  const double duty_cycle_pct = tick_us / interval_us * 100.0;
  const bool overhead_ok = duty_cycle_pct < 1.0;

  fleet.stop();
  const serve::BoardFleet::Stats stats = fleet.stats();

  // --- 2: deterministic alert-detection latency --------------------------
  // Injected clock and injected series: baseline p99 ~120 us for 32 ticks,
  // then a 6x step regression. Latency = ticks from the first regressed
  // sample to the latch, times the sampling interval.
  obs::FlightRecorder recorder(256);
  obs::TimeSeriesStore store;
  obs::AlertEngine engine(&recorder);
  obs::AlertRule rule;
  rule.id = "bench.p99.regression";
  rule.series = "bench.p99_us";
  rule.kind = obs::AlertRuleKind::EwmaZScore;
  rule.threshold = 6.0;
  rule.min_samples = 8;
  rule.fire_for = 2;
  rule.clear_for = 3;
  rule.severity = obs::AlertSeverity::Warning;
  engine.add_rule(rule);

  std::int64_t now_us = 0;
  const std::int64_t step_us = 100'000;  // collector default interval
  Rng jitter(7);
  for (std::size_t i = 0; i < 32; ++i) {
    now_us += step_us;
    store.record(rule.series, now_us,
                 120.0 + static_cast<double>(jitter.uniform_int(0, 8)));
    engine.evaluate(store, now_us);
  }
  std::uint64_t ticks_to_latch = 0;
  bool fired = false;
  for (std::size_t i = 0; i < 16 && !fired; ++i) {
    now_us += step_us;
    ++ticks_to_latch;
    store.record(rule.series, now_us,
                 720.0 + static_cast<double>(jitter.uniform_int(0, 8)));
    for (const obs::Alert& alert : engine.evaluate(store, now_us)) {
      fired = fired || alert.active;
    }
  }
  const double detection_latency_us =
      static_cast<double>(ticks_to_latch * step_us);

  TextTable table({"measure", "value"});
  table.add_row({"serving quiet (s)", TextTable::num(quiet_s, 3)});
  table.add_row({"serving ticking (s)", TextTable::num(ticking_s, 3)});
  table.add_row({"interleaved overhead (%)", TextTable::num(overhead_pct, 2)});
  table.add_row({"tick cost (us)", TextTable::num(tick_us, 1)});
  table.add_row({"duty cycle (%)", TextTable::num(duty_cycle_pct, 3)});
  table.add_row({"ticks to latch", std::to_string(ticks_to_latch)});
  table.add_row(
      {"detection latency (us)", TextTable::num(detection_latency_us, 0)});
  table.print(std::cout);
  std::cout << "duty-cycle gate (<1%) " << (overhead_ok ? "ok" : "FAILED")
            << ", regression latch " << (fired ? "ok" : "MISSED")
            << ", conservation "
            << (stats.conservation_ok() ? "ok" : "VIOLATED") << "\n";

  JsonWriter json;
  json.begin_object();
  json.field("bench", "timeseries");
  json.key("config");
  json.begin_object();
  json.field("boards", static_cast<std::uint64_t>(boards));
  json.field("calls", static_cast<std::uint64_t>(calls));
  json.field("interval_us", interval_us);
  json.field("tiny", tiny);
  json.end_object();
  json.key("collector");
  json.begin_object();
  json.field("serving_quiet_s", quiet_s);
  json.field("serving_ticking_s", ticking_s);
  json.field("overhead_pct", overhead_pct);
  json.field("tick_us", tick_us);
  json.field("duty_cycle_pct", duty_cycle_pct);
  json.field("samples", collector.store().totals().samples);
  json.end_object();
  json.key("alert_detection");
  json.begin_object();
  json.field("fired", fired);
  json.field("ticks_to_latch", ticks_to_latch);
  json.field("latency_us", detection_latency_us);
  json.end_object();
  json.field("conservation_ok", stats.conservation_ok());
  json.field("pass", overhead_ok && fired && stats.conservation_ok());
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_timeseries.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\ntimeseries -> " << json_path << "\n";
  bench::dump_metrics_json("bench_timeseries");
  return overhead_ok && fired && stats.conservation_ok() ? 0 : 1;
}
