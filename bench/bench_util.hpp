// Shared helpers for the bench harness: every binary prints the paper's
// rows next to the values this reproduction measures.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "obs/metrics.hpp"

namespace csdml::bench {

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Dumps the global metrics registry as JSON next to the bench output.
/// Opt-in: only writes when CSDML_METRICS_OUT names a directory; the file
/// becomes `<dir>/<bench_name>.metrics.json`.
inline void dump_metrics_json(const std::string& bench_name) {
  const char* dir = std::getenv("CSDML_METRICS_OUT");
  if (dir == nullptr || *dir == '\0') return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  const std::string path =
      std::string(dir) + "/" + bench_name + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write metrics to " << path << "\n";
    return;
  }
  out << obs::registry().snapshot().to_json() << '\n';
  std::cout << "metrics -> " << path << "\n";
}

/// Relative deviation as a percentage string, e.g. "+4.2%".
inline std::string deviation(double measured, double paper) {
  if (paper == 0.0) return "n/a";
  const double pct = (measured - paper) / paper * 100.0;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", pct);
  return buffer;
}

}  // namespace csdml::bench
