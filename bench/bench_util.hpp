// Shared helpers for the bench harness: every binary prints the paper's
// rows next to the values this reproduction measures.
#pragma once

#include <iostream>
#include <string>

#include "common/table.hpp"

namespace csdml::bench {

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

/// Relative deviation as a percentage string, e.g. "+4.2%".
inline std::string deviation(double measured, double paper) {
  if (paper == 0.0) return "n/a";
  const double pct = (measured - paper) / paper * 100.0;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.1f%%", pct);
  return buffer;
}

}  // namespace csdml::bench
