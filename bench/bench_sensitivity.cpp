// Robustness of the reproduction: the Fig. 3 / Table I conclusions should
// not hinge on the exact calibration constants of the HLS cost model.
// This bench perturbs every operator latency and the AXI setup cost by
// ±30% (one factor at a time and jointly) and checks that the paper's
// qualitative claims survive each perturbation:
//   (1) fixed-point beats vanilla by ~3x or more,
//   (2) preprocess stays roughly flat across optimization levels,
//   (3) the FPGA stays >100x faster per item than the GPU's mean.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "hls/cost_model.hpp"
#include "kernels/specs.hpp"

namespace {

using namespace csdml;

struct Totals {
  double vanilla;
  double fixed;
  double pre_vanilla;
  double pre_fixed;
};

Totals totals_under(const hls::HlsCostModel& model) {
  const nn::LstmConfig config;
  const Frequency clock = model.clock();
  const auto level_total = [&](kernels::OptimizationLevel level) {
    double total = clock.duration_of(
                            model.analyze(kernels::make_preprocess_spec(
                                              config, level, 4))
                                .total)
                       .as_microseconds();
    const auto gates =
        model.analyze(kernels::make_gates_spec(config, level));
    total += kernels::gates_reports_amortized_ii(level)
                 ? clock.duration_of(Cycles{gates.loops.front().achieved_ii})
                       .as_microseconds()
                 : clock.duration_of(gates.total).as_microseconds();
    total += clock.duration_of(
                      model.analyze(kernels::make_hidden_state_spec(
                                        config, level, 4))
                          .total)
                 .as_microseconds();
    return total;
  };
  Totals t{};
  t.vanilla = level_total(kernels::OptimizationLevel::Vanilla);
  t.fixed = level_total(kernels::OptimizationLevel::FixedPoint);
  t.pre_vanilla =
      clock.duration_of(model.analyze(kernels::make_preprocess_spec(
                                          config,
                                          kernels::OptimizationLevel::Vanilla, 4))
                            .total)
          .as_microseconds();
  t.pre_fixed =
      clock.duration_of(
               model.analyze(kernels::make_preprocess_spec(
                                 config, kernels::OptimizationLevel::FixedPoint, 4))
                   .total)
          .as_microseconds();
  return t;
}

hls::HlsCostModel perturbed(double op_scale, double axi_scale) {
  hls::OpLatencyTable ops = hls::OpLatencyTable::vitis_ultrascale_300mhz();
  for (std::size_t k = 0; k < static_cast<std::size_t>(hls::OpKind::kCount); ++k) {
    const auto kind = static_cast<hls::OpKind>(k);
    const auto scaled = static_cast<std::uint64_t>(
        std::max(1.0, static_cast<double>(ops.latency(kind).count) * op_scale));
    ops.set_latency(kind, Cycles{scaled});
  }
  hls::AxiConfig axi;
  axi.setup_latency = Cycles{static_cast<std::uint64_t>(
      std::max(1.0, static_cast<double>(axi.setup_latency.count) * axi_scale))};
  return hls::HlsCostModel(ops, axi, Frequency::megahertz(300.0));
}

}  // namespace

int main() {
  bench::print_header(
      "Sensitivity — do the paper's conclusions survive cost-model error?");

  struct Case {
    const char* name;
    double op_scale;
    double axi_scale;
  };
  const std::vector<Case> cases = {
      {"calibrated", 1.0, 1.0},       {"ops -30%", 0.7, 1.0},
      {"ops +30%", 1.3, 1.0},         {"axi -30%", 1.0, 0.7},
      {"axi +30%", 1.0, 1.3},         {"both -30%", 0.7, 0.7},
      {"both +30%", 1.3, 1.3},
  };

  const double gpu_mean_us = 741.35336;  // Table I
  TextTable table({"perturbation", "vanilla_us", "fixed_us", "speedup",
                   "pre_flat?", "gpu/fpga"});
  bool all_hold = true;
  for (const Case& c : cases) {
    const Totals t = totals_under(perturbed(c.op_scale, c.axi_scale));
    const double speedup = t.vanilla / t.fixed;
    const double pre_drift = std::abs(t.pre_vanilla - t.pre_fixed) /
                             t.pre_vanilla;
    const double vs_gpu = gpu_mean_us / t.fixed;
    const bool holds = speedup > 2.0 && pre_drift < 0.2 && vs_gpu > 100.0;
    all_hold &= holds;
    table.add_row({c.name, TextTable::num(t.vanilla, 3),
                   TextTable::num(t.fixed, 3),
                   TextTable::num(speedup, 2) + "x",
                   pre_drift < 0.2 ? "yes" : "NO",
                   TextTable::num(vs_gpu, 0) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nAll qualitative claims "
            << (all_hold ? "hold" : "DO NOT hold")
            << " across +/-30% perturbations of every operator latency and\n"
               "the AXI setup cost: the reproduction's shape does not depend\n"
               "on the exact calibration constants.\n";
  bench::dump_metrics_json("bench_sensitivity");
  return all_hold ? 0 : 1;
}
