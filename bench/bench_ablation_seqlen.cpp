// Ablation: sliding-window length. The paper's appendix fixes windows of
// 100 API calls "beginning with the first API call made to promote early
// detection". Shorter windows classify sooner and cost fewer cycles per
// decision; longer windows see more context. This bench sweeps the length
// and reports both the on-CSD latency per classification and the detection
// accuracy of a model trained at that length.
#include <iostream>

#include "bench_util.hpp"
#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — sliding-window (sequence) length");

  TextTable table({"window", "sequence_infer_us", "test_accuracy", "f1"});
  for (const std::size_t window : {25ul, 50ul, 100ul, 200ul}) {
    ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
    spec.window_length = window;
    spec.ransomware_windows = 600;
    spec.benign_windows = 705;  // keep 46%
    const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
    Rng rng(19);
    const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);

    nn::LstmConfig config;
    nn::LstmClassifier model(config, rng);
    nn::TrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 32;
    const nn::TrainResult result = nn::train(model, split.train, split.test, tc);

    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(
        device, config, model.params(),
        kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
    const double infer_us =
        engine.infer(split.test.sequences.front()).device_time.as_microseconds();

    table.add_row({std::to_string(window), TextTable::num(infer_us, 2),
                   TextTable::num(result.best_test_accuracy, 4),
                   TextTable::num(result.best_confusion.f1(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nLatency is linear in window length (steady-state pipeline);\n"
               "accuracy saturates around the paper's choice of 100 calls.\n";
  return 0;
}
