// Throughput of the software datapaths: fused table-driven kernels vs the
// seed's stage-by-stage reference, float vs fixed, and batch scaling
// across thread counts. Unlike the Fig. 2/3 benches, which report the
// *simulated FPGA* cost model, this one measures real wall-clock of the
// functional forward passes — the quantity the fused layouts, the
// token→gate-preactivation table and the batch thread pool exist to move.
//
// Emits BENCH_throughput.json (into CSDML_METRICS_OUT when set, else the
// working directory). `--tiny` shrinks dims and repetitions for CI smoke.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "csd/smartssd.hpp"
#include "kernels/engine.hpp"
#include "kernels/functional.hpp"
#include "xrt/runtime.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SingleStreamRow {
  std::string datapath;  // "float" | "fixed"
  std::string variant;   // "reference" | "fused"
  double tokens_per_sec{0.0};
  double us_per_window{0.0};
};

/// Runs `fn` (one window classification) `reps` times and returns the
/// result of the last call through `probability` plus the timing row.
template <typename Fn>
SingleStreamRow time_single_stream(const std::string& datapath,
                                   const std::string& variant, std::size_t reps,
                                   std::size_t window, double& probability,
                                   Fn&& fn) {
  probability = fn();  // warm-up (sizes scratch, faults pages)
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) probability = fn();
  const double elapsed = seconds_since(start);
  SingleStreamRow row;
  row.datapath = datapath;
  row.variant = variant;
  row.tokens_per_sec =
      static_cast<double>(reps) * static_cast<double>(window) / elapsed;
  row.us_per_window = elapsed * 1e6 / static_cast<double>(reps);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csdml;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  // Paper dims (Section III): 307-call vocabulary, 32-wide embeddings,
  // 128 hidden units, 100-call windows.
  nn::LstmConfig config;
  config.vocab_size = tiny ? 41 : 307;
  config.embed_dim = tiny ? 8 : 32;
  config.hidden_dim = tiny ? 16 : 128;
  const std::size_t window = tiny ? 12 : 100;
  const std::size_t reps = tiny ? 4 : 30;
  const std::size_t batch_windows = tiny ? 12 : 512;

  bench::print_header("Datapath throughput (wall-clock)");
  std::cout << "vocab=" << config.vocab_size << " embed=" << config.embed_dim
            << " hidden=" << config.hidden_dim << " window=" << window
            << (tiny ? "  [tiny smoke]" : "") << "\n";

  Rng rng(17);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  Rng token_rng(5);
  nn::Sequence sequence;
  for (std::size_t i = 0; i < window; ++i) {
    sequence.push_back(
        static_cast<nn::TokenId>(token_rng.uniform_int(0, config.vocab_size - 1)));
  }

  const kernels::FloatDatapath float_path(config, params);
  const kernels::FixedDatapath fixed_path(config, params);
  kernels::FloatScratch float_scratch;
  kernels::FixedScratch fixed_scratch;

  // --- single stream: tokens/sec, fused vs reference -----------------
  std::vector<SingleStreamRow> single;
  double p_float_ref = 0.0, p_float_fused = 0.0;
  double p_fixed_ref = 0.0, p_fixed_fused = 0.0;
  single.push_back(time_single_stream(
      "float", "reference", reps, window, p_float_ref,
      [&] { return float_path.infer_reference(sequence); }));
  single.push_back(time_single_stream(
      "float", "fused", reps, window, p_float_fused,
      [&] { return float_path.infer(sequence, float_scratch); }));
  single.push_back(time_single_stream(
      "fixed", "reference", reps, window, p_fixed_ref,
      [&] { return fixed_path.infer_reference(sequence); }));
  single.push_back(time_single_stream(
      "fixed", "fused", reps, window, p_fixed_fused,
      [&] { return fixed_path.infer(sequence, fixed_scratch); }));

  // The whole point of the fused path is that it changes nothing — bail
  // loudly if it drifts from the oracle.
  if (p_float_ref != p_float_fused || p_fixed_ref != p_fixed_fused) {
    std::cerr << "FUSED/REFERENCE MISMATCH: float " << p_float_ref << " vs "
              << p_float_fused << ", fixed " << p_fixed_ref << " vs "
              << p_fixed_fused << "\n";
    return 1;
  }

  const double float_speedup =
      single[1].tokens_per_sec / single[0].tokens_per_sec;
  const double fixed_speedup =
      single[3].tokens_per_sec / single[2].tokens_per_sec;

  TextTable table({"datapath", "variant", "tokens_per_s", "us_per_window",
                   "speedup"});
  for (std::size_t i = 0; i < single.size(); ++i) {
    const bool fused = single[i].variant == "fused";
    const double speedup = i < 2 ? float_speedup : fixed_speedup;
    table.add_row({single[i].datapath, single[i].variant,
                   TextTable::num(single[i].tokens_per_sec, 0),
                   TextTable::num(single[i].us_per_window, 1),
                   fused ? TextTable::num(speedup, 2) + "x" : "1.00x"});
  }
  table.print(std::cout);

  // --- batched: windows/sec vs thread count --------------------------
  // The engine path stages weights onto the simulated FPGA, so the model
  // must pass placement: use the deployed model's dims (the seed default,
  // which matches the paper's Table I resource budget) — the big
  // single-stream config above does not fit the xcku15p at any level.
  nn::LstmConfig batch_config;
  if (tiny) {
    batch_config.vocab_size = config.vocab_size;
    batch_config.embed_dim = config.embed_dim;
    batch_config.hidden_dim = config.hidden_dim;
  }
  Rng batch_rng(23);
  const nn::LstmParams batch_params =
      nn::LstmParams::glorot(batch_config, batch_rng);
  bench::print_header("Batched inference (wall-clock windows / second)");
  std::cout << "engine model: vocab=" << batch_config.vocab_size
            << " embed=" << batch_config.embed_dim
            << " hidden=" << batch_config.hidden_dim << " window=" << window
            << "\n";
  std::vector<nn::Sequence> windows;
  for (std::size_t w = 0; w < batch_windows; ++w) {
    nn::Sequence seq;
    for (std::size_t i = 0; i < window; ++i) {
      seq.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, batch_config.vocab_size - 1)));
    }
    windows.push_back(std::move(seq));
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::uint32_t> thread_counts{1};
  if (hw >= 2) thread_counts.push_back(2);
  if (hw > 2) thread_counts.push_back(hw);

  struct BatchRow {
    std::string level;
    std::uint32_t threads{1};
    double windows_per_sec{0.0};
    double scaling_vs_one{1.0};
  };
  std::vector<BatchRow> batch_rows;
  const nn::ModelSnapshot snapshot{batch_config, batch_params};
  TextTable batch_table({"level", "threads", "windows_per_s", "scaling"});
  for (const char* level : {"float", "fixed"}) {
    double one_thread = 0.0;
    for (const std::uint32_t threads : thread_counts) {
      csd::SmartSsd board{csd::SmartSsdConfig{}};
      xrt::Device device{board};
      kernels::EngineConfig engine_config;
      engine_config.level = std::strcmp(level, "fixed") == 0
                                ? kernels::OptimizationLevel::FixedPoint
                                : kernels::OptimizationLevel::Vanilla;
      engine_config.batch_threads = threads;
      kernels::CsdLstmEngine engine(device, snapshot, engine_config);
      engine.infer_batch(windows);  // warm-up (spawns pool, sizes scratch)
      const auto start = Clock::now();
      const auto result = engine.infer_batch(windows);
      const double elapsed = seconds_since(start);
      (void)result;
      BatchRow row;
      row.level = level;
      row.threads = threads;
      row.windows_per_sec = static_cast<double>(batch_windows) / elapsed;
      if (threads == 1) one_thread = row.windows_per_sec;
      row.scaling_vs_one =
          one_thread > 0.0 ? row.windows_per_sec / one_thread : 1.0;
      batch_table.add_row({row.level, std::to_string(row.threads),
                           TextTable::num(row.windows_per_sec, 0),
                           TextTable::num(row.scaling_vs_one, 2) + "x"});
      batch_rows.push_back(row);
    }
  }
  batch_table.print(std::cout);

  // --- BENCH_throughput.json -----------------------------------------
  JsonWriter json;
  json.begin_object();
  json.field("bench", "throughput");
  json.key("config");
  json.begin_object();
  json.field("vocab_size", static_cast<std::int64_t>(config.vocab_size));
  json.field("embed_dim", config.embed_dim);
  json.field("hidden_dim", config.hidden_dim);
  json.field("window", window);
  json.field("repetitions", reps);
  json.field("batch_windows", batch_windows);
  json.field("batch_hidden_dim", batch_config.hidden_dim);
  json.field("tiny", tiny);
  json.end_object();
  json.key("single_stream");
  json.begin_array();
  for (const SingleStreamRow& row : single) {
    json.begin_object();
    json.field("datapath", row.datapath);
    json.field("variant", row.variant);
    json.field("tokens_per_sec", row.tokens_per_sec);
    json.field("us_per_window", row.us_per_window);
    json.end_object();
  }
  json.end_array();
  json.field("float_fused_speedup", float_speedup);
  json.field("fixed_fused_speedup", fixed_speedup);
  json.key("batched");
  json.begin_array();
  for (const BatchRow& row : batch_rows) {
    json.begin_object();
    json.field("level", row.level);
    json.field("threads", static_cast<std::int64_t>(row.threads));
    json.field("windows_per_sec", row.windows_per_sec);
    json.field("scaling_vs_one_thread", row.scaling_vs_one);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_throughput.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\nthroughput -> " << json_path << "\n";
  bench::dump_metrics_json("bench_throughput");
  return 0;
}
