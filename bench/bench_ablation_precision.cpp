// Ablation: mixed precision (the paper's future-work direction). Compares
// uniform narrow, uniform wide and the mixed Q16-gates/Q24-state datapaths
// against the float reference and the paper's decimal 10^6 scheme, in both
// fidelity and DSP cost per MAC.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "kernels/functional.hpp"
#include "kernels/mixed.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — mixed-precision datapaths (paper future work)");

  nn::LstmConfig config;
  Rng rng(29);
  nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  for (auto& w : params.dense_w) w *= 30.0;  // spread decisions

  const kernels::FloatDatapath float_path(config, params);
  const int kSequences = 120;
  std::vector<nn::Sequence> inputs;
  std::vector<double> reference;
  Rng token_rng(31);
  for (int i = 0; i < kSequences; ++i) {
    nn::Sequence seq;
    for (int j = 0; j < 60; ++j) {
      seq.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, config.vocab_size - 1)));
    }
    reference.push_back(float_path.infer(seq));
    inputs.push_back(std::move(seq));
  }

  const auto evaluate = [&](const auto& infer_fn) {
    double sum_err = 0.0;
    int agree = 0;
    for (int i = 0; i < kSequences; ++i) {
      const double p = infer_fn(inputs[static_cast<std::size_t>(i)]);
      sum_err += std::abs(p - reference[static_cast<std::size_t>(i)]);
      agree += (p >= 0.5) == (reference[static_cast<std::size_t>(i)] >= 0.5);
    }
    return std::pair<double, double>{sum_err / kSequences,
                                     static_cast<double>(agree) / kSequences};
  };

  TextTable table({"datapath", "dsp/MAC", "mean_abs_prob_err", "agreement"});
  // The paper's deployed decimal scheme as the anchor.
  const kernels::FixedDatapath decimal(config, params);
  const auto [dec_err, dec_agree] =
      evaluate([&](const nn::Sequence& s) { return decimal.infer(s); });
  table.add_row({"decimal 10^6 (paper)", "2", TextTable::num(dec_err, 5),
                 TextTable::num(dec_agree, 3)});

  for (const auto preset :
       {kernels::PrecisionPreset::UniformQ10, kernels::PrecisionPreset::UniformQ16,
        kernels::PrecisionPreset::UniformQ24,
        kernels::PrecisionPreset::GatesQ16StateQ24}) {
    const auto path = kernels::make_mixed_datapath(config, params, preset);
    const auto [err, agree] =
        evaluate([&](const nn::Sequence& s) { return path->infer(s); });
    table.add_row({path->describe(),
                   std::to_string(kernels::dsp_per_gate_mac(preset)),
                   TextTable::num(err, 5), TextTable::num(agree, 3)});
  }
  table.print(std::cout);
  std::cout << "\nAt this model scale the PLAN sigmoid's ~0.019 approximation\n"
               "error dominates every arithmetic format — even Q10 tracks the\n"
               "float reference as well as Q24 does. That headroom is exactly\n"
               "what the mixed scheme banks: Q16 gate MACs halve the DSP cost\n"
               "per MAC relative to the paper's int32/10^6 decimal operands\n"
               "with zero fidelity loss, keeping Q24 only on the recurrent\n"
               "cell state where rounding compounds across 100 timesteps —\n"
               "the trade the paper's Limitations section proposes exploring.\n";
  return 0;
}
