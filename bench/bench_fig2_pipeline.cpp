// Renders Fig. 2's kernel pipeline as a text Gantt chart from the
// event-driven simulation: preprocess running one item ahead of the four
// parallel gate CUs and the hidden-state kernel. Makes the Section III-C
// parallelization strategy visible span by span.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "kernels/pipeline_sim.hpp"

namespace {

using namespace csdml;

void render(kernels::OptimizationLevel level, std::size_t items) {
  const nn::LstmConfig config;
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const kernels::PipelineSimConfig pipeline{level, 4,
                                            kernels::KernelLink::AxiMemory};
  const kernels::PipelineSimResult sim =
      kernels::simulate_pipeline(model, config, pipeline, items);

  bench::print_header(std::string("Fig. 2 pipeline — ") +
                      kernels::optimization_name(level) + " build, " +
                      std::to_string(items) + " items (" +
                      TextTable::num(sim.total.as_microseconds(), 2) + " us)");

  constexpr int kColumns = 100;
  const double scale =
      static_cast<double>(kColumns) / static_cast<double>(sim.total.picos);
  // One lane per stage, spans tagged by item index.
  std::map<std::string, std::string> lanes;
  for (const char* name : {"preprocess", "gates", "hidden_state"}) {
    lanes[name] = std::string(kColumns, '.');
  }
  std::map<std::string, int> item_counter;
  for (const auto& span : sim.trace.spans()) {
    const int item = item_counter[span.name]++;
    auto& lane = lanes[span.name];
    const int begin = static_cast<int>(static_cast<double>(span.start.picos) * scale);
    int end = static_cast<int>(static_cast<double>(span.end.picos) * scale);
    end = std::min(end, kColumns - 1);
    const char glyph = static_cast<char>('0' + item % 10);
    for (int c = begin; c <= end; ++c) lane[static_cast<std::size_t>(c)] = glyph;
  }
  for (const char* name : {"preprocess", "gates", "hidden_state"}) {
    std::cout << "  " << name << std::string(14 - std::string(name).size(), ' ')
              << "|" << lanes[name] << "|\n";
  }
  std::cout << "  (digits = item index mod 10; preprocess of item t+1 runs\n"
               "   under gates/hidden of item t — the Section III-C lookahead)\n";
}

}  // namespace

int main() {
  render(kernels::OptimizationLevel::Vanilla, 6);
  render(kernels::OptimizationLevel::FixedPoint, 6);
  bench::dump_metrics_json("bench_fig2_pipeline");
  return 0;
}
