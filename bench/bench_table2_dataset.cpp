// Reproduces Table II (ransomware dataset overview) and the appendix's
// dataset statistics: 10 families / 76 tabulated variants, all encrypting,
// four self-propagating; 13,340 ransomware + 15,660 benign length-100
// windows (29 K total, 46% ransomware) from 30 applications + manual
// interaction.
#include <iostream>

#include "bench_util.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Table II — ransomware dataset overview");

  // Family roster straight from the profiles (structure of Table II).
  TextTable table({"family", "instances", "encryption", "self-propagation"});
  for (const auto& family : ransomware::ransomware_families()) {
    table.add_row({family.name, std::to_string(family.variants) + " variants",
                   family.encrypts ? "yes" : "no",
                   family.self_propagates ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\ntotal variants: " << ransomware::total_variant_count()
            << "  (paper Table II sums to 76; its text says 78 — see "
               "EXPERIMENTS.md)\n";

  // Build a 1/10-scale dataset by default so the bench runs in seconds;
  // pass --paper-size for the full 29 K windows.
  bench::print_header("Appendix — dataset statistics");
  const ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);

  TextTable stats({"metric", "measured", "paper", "note"});
  stats.add_row({"window length",
                 std::to_string(built.data.sequences.front().size()), "100", ""});
  stats.add_row({"ransomware windows", std::to_string(built.data.positives()),
                 "13,340", "1/10 scale by default"});
  stats.add_row({"benign windows",
                 std::to_string(built.data.size() - built.data.positives()),
                 "15,660", "1/10 scale by default"});
  stats.add_row({"total windows", std::to_string(built.data.size()), "29,000",
                 "1/10 scale by default"});
  stats.add_row({"ransomware fraction",
                 TextTable::num(built.data.positive_fraction(), 3), "0.460", ""});
  stats.add_row({"benign sources", std::to_string(built.benign_sources),
                 "30 apps + manual", ""});
  stats.add_row({"API vocabulary", std::to_string(built.data.vocabulary_size()),
                 "278 (=> 2,224 embed params)", ""});
  stats.print(std::cout);

  bench::print_header("Per-family window distribution (this reproduction)");
  TextTable dist({"family", "variants", "windows"});
  for (const auto& fs : built.family_stats) {
    dist.add_row({fs.family, std::to_string(fs.variants),
                  std::to_string(fs.windows)});
  }
  dist.print(std::cout);
  return 0;
}
