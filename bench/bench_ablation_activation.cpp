// Ablation: softsign vs tanh (Section III-D). The paper replaces tanh with
// softsign(x) = x/(|x|+1) to avoid exp() on the FPGA. This bench measures
// both sides of that trade:
//   (1) hardware: cycles of the hidden-state cell-activation loop with a
//       softsign datapath (one divide) vs a true tanh datapath (two exps,
//       one divide),
//   (2) model quality: test accuracy when training the classifier with
//       each activation.
#include <iostream>

#include "bench_util.hpp"
#include "hls/cost_model.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

namespace {

using namespace csdml;

hls::LoopSpec cell_activation_loop(bool tanh_version) {
  hls::LoopSpec loop;
  loop.name = tanh_version ? "cell_update_tanh" : "cell_update_softsign";
  loop.trip_count = 32;  // hidden dim
  if (tanh_version) {
    // tanh(x) = (e^x - e^-x) / (e^x + e^-x): 2 exps, 2 adds, 1 divide.
    loop.body_ops = {{hls::OpKind::FloatMul, 3}, {hls::OpKind::FloatAdd, 4},
                     {hls::OpKind::FloatExp, 2}, {hls::OpKind::FloatDiv, 1}};
  } else {
    loop.body_ops = {{hls::OpKind::FloatMul, 3}, {hls::OpKind::FloatAdd, 2},
                     {hls::OpKind::FloatDiv, 1}};
  }
  loop.buffer_accesses = 7;
  loop.memory_ports = 2;
  return loop;
}

double train_with(nn::CellActivation activation,
                  const nn::TrainTestSplit& split) {
  nn::LstmConfig config;
  config.activation = activation;
  Rng rng(5);
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;
  return nn::train(model, split.train, split.test, tc).best_test_accuracy;
}

}  // namespace

int main() {
  bench::print_header("Ablation — softsign vs tanh");

  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();

  TextTable hw({"activation", "schedule", "loop_cycles", "loop_us"});
  for (const bool tanh_version : {false, true}) {
    for (const bool pipelined : {false, true}) {
      hls::LoopSpec loop = cell_activation_loop(tanh_version);
      loop.pragmas.pipeline = pipelined;
      const hls::LoopReport report = model.analyze_loop(loop);
      hw.add_row({tanh_version ? "tanh" : "softsign",
                  pipelined ? "pipelined" : "sequential",
                  std::to_string(report.cycles.count),
                  TextTable::num(model.clock().duration_of(report.cycles)
                                     .as_microseconds())});
    }
  }
  hw.print(std::cout);

  bench::print_header("Model quality with each activation (1/20-scale dataset)");
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows /= 2;
  spec.benign_windows /= 2;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(9);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);

  TextTable quality({"activation", "best_test_accuracy"});
  quality.add_row({"softsign (deployed)",
                   TextTable::num(train_with(nn::CellActivation::Softsign, split), 4)});
  quality.add_row({"tanh (reference)",
                   TextTable::num(train_with(nn::CellActivation::Tanh, split), 4)});
  quality.print(std::cout);
  std::cout << "\nThe substitution costs hardware nothing it needs (no exp\n"
               "cores) while accuracy stays at the same plateau — the paper's\n"
               "claim that softsign is 'a sufficient replacement'.\n";
  return 0;
}
