// Extension experiment: the paper's CTI update loop in action. A novel,
// evasive strain (container-style encryption, no rename sweep, no shadow
// wipe) appears; the deployed model under-detects it; the operator
// retrains on the CTI-sourced windows and hot-swaps the weight image into
// the CSD — "the FPGA-based model is compiled once and can be updated at
// the operator's discretion".
#include <iostream>

#include "bench_util.hpp"
#include "detect/cti.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;
  bench::print_header("CTI-driven model update (paper Section III-A deployment)");

  // Baseline deployment: model trained on the stock corpus.
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 500;
  spec.benign_windows = 588;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(41);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 32;
  nn::train(model, split.train, split.test, tc);
  const double stock_accuracy = nn::evaluate(model, split.test).accuracy();

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, model.params(),
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});

  // A new strain surfaces in the CTI feed.
  const auto& lockbit = ransomware::ransomware_families()[1];
  const ransomware::FamilyProfile strain = detect::make_emerging_strain(lockbit, 1);

  nn::TrainConfig fine_tune = tc;
  fine_tune.epochs = 8;
  fine_tune.learning_rate = 0.005;
  const detect::CtiUpdateReport report = detect::incorporate_strain(
      model, engine, strain, split.train, fine_tune);

  TextTable table({"quantity", "value"});
  table.add_row({"strain", strain.name});
  table.add_row({"stock-corpus accuracy before", TextTable::num(stock_accuracy, 4)});
  table.add_row({"strain recall BEFORE update",
                 TextTable::num(report.strain_recall_before, 4)});
  table.add_row({"strain recall AFTER update",
                 TextTable::num(report.strain_recall_after, 4)});
  table.add_row({"replay accuracy after update",
                 TextTable::num(report.replay_accuracy_after, 4)});
  table.add_row({"CTI windows added", std::to_string(report.windows_added)});
  table.add_row({"engine weight image version",
                 "v" + std::to_string(report.engine_weight_version) +
                     " (same xclbin, no recompilation)"});
  table.print(std::cout);

  std::cout << "\nheld-out stock accuracy after update: "
            << TextTable::num(nn::evaluate(model, split.test).accuracy(), 4)
            << " (replay buffer prevents forgetting)\n";
  return 0;
}
