// Ablation: the decimal scaling factor (Section III-D). The paper picks
// 10^6 to "place more emphasis on maintaining the mantissa" of the small
// weights. This bench sweeps the factor and reports how faithfully the
// fixed-point datapath tracks the float model.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "kernels/functional.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — fixed-point scaling factor");

  nn::LstmConfig config;
  Rng rng(13);
  nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  // Spread the logits so decisions are meaningful on random inputs.
  for (auto& w : params.dense_w) w *= 30.0;

  const kernels::FloatDatapath float_path(config, params);

  // Two references: the float model (total error, PLAN sigmoid included)
  // and a very fine fixed datapath (isolates pure quantisation error).
  const std::int64_t kFineScale = 100'000'000;
  const kernels::FixedDatapath fine_path(config, params, kFineScale);

  const int kSequences = 150;
  std::vector<nn::Sequence> inputs;
  std::vector<double> float_reference;
  std::vector<double> fine_reference;
  Rng token_rng(17);
  for (int i = 0; i < kSequences; ++i) {
    nn::Sequence seq;
    for (int j = 0; j < 60; ++j) {
      seq.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, config.vocab_size - 1)));
    }
    float_reference.push_back(float_path.infer(seq));
    fine_reference.push_back(fine_path.infer(seq));
    inputs.push_back(std::move(seq));
  }

  TextTable table({"scale", "weight_quant_rmse", "quant_prob_err",
                   "total_prob_err(vs float)"});
  for (const std::int64_t scale :
       {std::int64_t{1'000}, std::int64_t{10'000}, std::int64_t{100'000},
        std::int64_t{1'000'000}, std::int64_t{10'000'000}}) {
    // Weight quantisation RMSE at this scale.
    double sq = 0.0;
    std::size_t count = 0;
    auto probe = params;
    for (const double* w : probe.parameter_pointers()) {
      const double q = fixedpt::ScaledFixed::from_double(*w, scale).to_double();
      sq += (q - *w) * (q - *w);
      ++count;
    }
    const double rmse = std::sqrt(sq / static_cast<double>(count));

    const kernels::FixedDatapath fixed_path(config, params, scale);
    double quant_err = 0.0;
    double total_err = 0.0;
    for (int i = 0; i < kSequences; ++i) {
      const double p = fixed_path.infer(inputs[static_cast<std::size_t>(i)]);
      quant_err += std::abs(p - fine_reference[static_cast<std::size_t>(i)]);
      total_err += std::abs(p - float_reference[static_cast<std::size_t>(i)]);
    }
    table.add_row({std::to_string(scale), TextTable::num(rmse, 9),
                   TextTable::num(quant_err / kSequences, 6),
                   TextTable::num(total_err / kSequences, 6)});
  }
  table.print(std::cout);
  std::cout << "\nQuantisation error falls ~10x per decade of scale and is\n"
               "already negligible at the paper's 10^6 — beyond it, the PLAN\n"
               "sigmoid's ~0.019 approximation error dominates the total,\n"
               "which is why the paper stops at 10^6 rather than chasing\n"
               "finer scales (wider DSP operands for no accuracy gain).\n";
  return 0;
}
