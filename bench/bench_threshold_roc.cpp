// Extension experiment: the detector's operating curve. The paper reports
// one operating point (threshold 0.5 -> accuracy/precision/recall/F1);
// a deployed guard exposes the threshold as policy (alert vs quarantine
// tiers in detect::MitigationPolicy), so this bench sweeps it and reports
// the ROC AUC of the trained model, for both the float and the deployed
// fixed-point datapaths.
#include <iostream>

#include "bench_util.hpp"
#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Detector operating curve (threshold sweep + ROC AUC)");

  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 600;
  spec.benign_windows = 705;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(7);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;
  nn::train(model, split.train, split.test, tc);

  // Scores from the float model and the deployed fixed-point engine.
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, model.params(),
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  std::vector<double> float_scores;
  std::vector<double> fixed_scores;
  for (const auto& window : split.test.sequences) {
    float_scores.push_back(model.forward(window, nullptr));
    fixed_scores.push_back(engine.infer(window).probability);
  }

  TextTable table({"threshold", "precision", "recall", "f1", "fpr"});
  for (const double threshold : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const nn::ConfusionMatrix cm =
        nn::confusion_at_threshold(fixed_scores, split.test.labels, threshold);
    const double fpr =
        cm.false_positive + cm.true_negative > 0
            ? static_cast<double>(cm.false_positive) /
                  static_cast<double>(cm.false_positive + cm.true_negative)
            : 0.0;
    table.add_row({TextTable::num(threshold, 2), TextTable::num(cm.precision(), 4),
                   TextTable::num(cm.recall(), 4), TextTable::num(cm.f1(), 4),
                   TextTable::num(fpr, 4)});
  }
  table.print(std::cout);

  std::cout << "\nROC AUC: float " << TextTable::num(
                   nn::roc_auc(float_scores, split.test.labels), 4)
            << "   on-CSD fixed-point "
            << TextTable::num(nn::roc_auc(fixed_scores, split.test.labels), 4)
            << "\n";
  std::cout << "The guard's two-tier policy (alert at 0.5, quarantine at 0.9)\n"
               "picks two points on this curve: a sensitive alert tier and a\n"
               "near-zero-FPR automatic-mitigation tier.\n";
  return 0;
}
