// Reproduces Fig. 3: per-kernel forward-pass time for one sequence item
// under the three optimization levels (Vanilla, +II, +Fixed-point).
//
// Paper values (us): vanilla total ~7.153, fully optimized 2.15133, with
// preprocess ~flat, kernel_hidden_state collapsing under II and
// kernel_gates collapsing to one clock cycle under fixed point.
#include <iostream>

#include "bench_util.hpp"
#include "hls/cost_model.hpp"
#include "kernels/specs.hpp"

namespace {

using namespace csdml;

struct PaperRow {
  kernels::OptimizationLevel level;
  double preprocess;
  double gates;
  double hidden;
};

// Bar values from the paper's Fig. 3 (assignment per DESIGN.md §4).
constexpr PaperRow kPaper[] = {
    {kernels::OptimizationLevel::Vanilla, 0.800, 1.277, 5.076},
    {kernels::OptimizationLevel::II, 0.743, 2.001, 1.651},
    {kernels::OptimizationLevel::FixedPoint, 0.740, 0.00333, 1.408},
};

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3 — FPGA-based LSTM inference time per item (microseconds)");

  const nn::LstmConfig config;  // the paper's 7,472-parameter model
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const Frequency clock = model.clock();

  TextTable table({"optimization", "kernel", "measured_us", "paper_us", "delta"});
  double totals_measured[3] = {};
  double totals_paper[3] = {};
  int row_index = 0;
  for (const PaperRow& paper : kPaper) {
    const double pre =
        clock.duration_of(
                 model.analyze(kernels::make_preprocess_spec(config, paper.level, 4))
                     .total)
            .as_microseconds();
    const hls::KernelReport gates_report =
        model.analyze(kernels::make_gates_spec(config, paper.level));
    const double gates =
        kernels::gates_reports_amortized_ii(paper.level)
            ? clock.duration_of(Cycles{gates_report.loops.front().achieved_ii})
                  .as_microseconds()
            : clock.duration_of(gates_report.total).as_microseconds();
    const double hidden =
        clock.duration_of(
                 model.analyze(
                          kernels::make_hidden_state_spec(config, paper.level, 4))
                     .total)
            .as_microseconds();

    const char* name = kernels::optimization_name(paper.level);
    table.add_row({name, "preprocess", TextTable::num(pre),
                   TextTable::num(paper.preprocess),
                   bench::deviation(pre, paper.preprocess)});
    table.add_row({name, "gates (max of 4 CUs)", TextTable::num(gates),
                   TextTable::num(paper.gates),
                   bench::deviation(gates, paper.gates)});
    table.add_row({name, "hidden_state", TextTable::num(hidden),
                   TextTable::num(paper.hidden),
                   bench::deviation(hidden, paper.hidden)});
    totals_measured[row_index] = pre + gates + hidden;
    totals_paper[row_index] = paper.preprocess + paper.gates + paper.hidden;
    ++row_index;
  }
  table.print(std::cout);

  std::cout << '\n';
  TextTable totals({"optimization", "total_us", "paper_us", "delta"});
  for (int i = 0; i < 3; ++i) {
    totals.add_row({kernels::optimization_name(kPaper[i].level),
                    TextTable::num(totals_measured[i]),
                    TextTable::num(totals_paper[i]),
                    bench::deviation(totals_measured[i], totals_paper[i])});
  }
  totals.print(std::cout);
  std::cout << "\nNote: the II-level gates bar is a documented divergence — the\n"
               "paper's measured 2.001 us exceeds its own vanilla bar; our cost\n"
               "model predicts the pragma helps (see EXPERIMENTS.md).\n";
  bench::dump_metrics_json("bench_fig3_optimizations");
  return 0;
}
