// Reproduces the in-text detection results of Section IV: accuracy 0.9833,
// precision 0.9789, recall 0.9890, F1 0.9840 — measured both for the
// offline float model and for the deployed fixed-point CSD engine (the
// configuration that actually runs in storage).
#include <iostream>

#include "bench_util.hpp"
#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace csdml;
  const bool full = argc > 1 && std::string(argv[1]) == "--paper-size";
  bench::print_header("Section IV — ransomware detection metrics");

  ransomware::DatasetSpec spec =
      full ? ransomware::DatasetSpec::paper() : ransomware::DatasetSpec::small();
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(7);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);

  const nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = full ? 20 : 12;
  tc.batch_size = 32;
  const nn::TrainResult result = nn::train(model, split.train, split.test, tc);
  const nn::ConfusionMatrix& offline = result.best_confusion;

  // Deploy the trained weights to the simulated SmartSSD (fixed point) and
  // re-evaluate on the same test set.
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, model.params(),
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  nn::ConfusionMatrix on_device;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    on_device.add(split.test.labels[i],
                  engine.infer(split.test.sequences[i]).label);
  }

  TextTable table({"metric", "offline (float)", "on-CSD (fixed)", "paper"});
  table.add_row({"accuracy", TextTable::num(offline.accuracy(), 4),
                 TextTable::num(on_device.accuracy(), 4), "0.9833"});
  table.add_row({"precision", TextTable::num(offline.precision(), 4),
                 TextTable::num(on_device.precision(), 4), "0.9789"});
  table.add_row({"recall", TextTable::num(offline.recall(), 4),
                 TextTable::num(on_device.recall(), 4), "0.9890"});
  table.add_row({"f1", TextTable::num(offline.f1(), 4),
                 TextTable::num(on_device.f1(), 4), "0.9840"});
  table.print(std::cout);

  std::cout << "\ntest windows: " << split.test.size() << " ("
            << (full ? "paper-size dataset" : "1/10-scale dataset; pass "
                                              "--paper-size for 29K windows")
            << ")\n";
  std::cout << "confusion (on-CSD): TP " << on_device.true_positive << "  FP "
            << on_device.false_positive << "  FN " << on_device.false_negative
            << "  TN " << on_device.true_negative << "\n";
  bench::dump_metrics_json("bench_detection_metrics");
  return 0;
}
