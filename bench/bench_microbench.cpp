// google-benchmark microbenchmarks of the hot software paths: the
// functional datapaths (what the simulator actually executes per
// inference), fixed-point primitives, and training steps. These measure
// *host* wall-clock of the simulator itself, complementing the modelled
// device times the other benches report.
#include <benchmark/benchmark.h>

#include "fixed/activations.hpp"
#include "kernels/functional.hpp"
#include "nn/train.hpp"

namespace {

using namespace csdml;

struct Shared {
  nn::LstmConfig config;
  nn::LstmParams params;
  nn::Sequence sequence;

  Shared() {
    Rng rng(3);
    params = nn::LstmParams::glorot(config, rng);
    Rng token_rng(5);
    for (int i = 0; i < 100; ++i) {
      sequence.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, config.vocab_size - 1)));
    }
  }
};

const Shared& shared() {
  static const Shared s;
  return s;
}

void BM_FloatDatapathInfer(benchmark::State& state) {
  const kernels::FloatDatapath path(shared().config, shared().params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.infer(shared().sequence));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shared().sequence.size()));
}
BENCHMARK(BM_FloatDatapathInfer);

void BM_FixedDatapathInfer(benchmark::State& state) {
  const kernels::FixedDatapath path(shared().config, shared().params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path.infer(shared().sequence));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(shared().sequence.size()));
}
BENCHMARK(BM_FixedDatapathInfer);

void BM_ClassifierForward(benchmark::State& state) {
  const nn::LstmClassifier model(shared().config, shared().params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(shared().sequence, nullptr));
  }
}
BENCHMARK(BM_ClassifierForward);

void BM_BackwardPass(benchmark::State& state) {
  const nn::LstmClassifier model(shared().config, shared().params);
  nn::LstmGradients grads = nn::LstmParams::zeros(shared().config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backward(model, shared().sequence, 1, grads));
  }
}
BENCHMARK(BM_BackwardPass);

void BM_ScaledFixedMultiply(benchmark::State& state) {
  const auto a = fixedpt::ScaledFixed::from_double(0.1234);
  const auto b = fixedpt::ScaledFixed::from_double(-0.5678);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_ScaledFixedMultiply);

void BM_SigmoidFixed(benchmark::State& state) {
  const auto x = fixedpt::ScaledFixed::from_double(1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixedpt::sigmoid_fixed(x));
  }
}
BENCHMARK(BM_SigmoidFixed);

void BM_SoftsignFixed(benchmark::State& state) {
  const auto x = fixedpt::ScaledFixed::from_double(-2.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixedpt::softsign_fixed(x));
  }
}
BENCHMARK(BM_SoftsignFixed);

}  // namespace

BENCHMARK_MAIN();
