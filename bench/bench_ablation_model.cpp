// Ablation: model selection (paper Section III-A). The paper argues for a
// sequential model — "non-sequential models ... might only analyze static
// snapshots of data" — and picks the LSTM. This bench trains four arms on
// the same corpus and stress-tests them with a dilution evasion (benign
// background calls injected between the malicious ones: call ORDER is
// preserved, call FREQUENCIES shift toward benign):
//
//   LSTM (paper's model)         LSTM + dilution-augmented training
//   GRU (lighter sequential)     bag-of-calls MLP (order-blind)
#include <iostream>

#include "bench_util.hpp"
#include "kernels/gru_specs.hpp"
#include "nn/gru.hpp"
#include "nn/mlp.hpp"
#include "nn/train.hpp"
#include "ransomware/api_vocab.hpp"
#include "ransomware/dataset_builder.hpp"

namespace {

using namespace csdml;

nn::Sequence dilute(const nn::Sequence& window, double rate, Rng& rng,
                    const std::vector<nn::TokenId>& noise) {
  nn::Sequence out;
  out.reserve(window.size());
  for (const nn::TokenId token : window) {
    while (rng.chance(rate)) out.push_back(rng.pick(noise));
    out.push_back(token);
  }
  out.resize(window.size());  // keep the fixed window length
  return out;
}

const std::vector<nn::TokenId>& noise_tokens() {
  static const std::vector<nn::TokenId> tokens = [] {
    const auto& vocab = ransomware::ApiVocabulary::instance();
    return std::vector<nn::TokenId>{
        vocab.require("HeapAlloc"),       vocab.require("HeapFree"),
        vocab.require("GetTickCount"),    vocab.require("Sleep"),
        vocab.require("EnterCriticalSection"),
        vocab.require("LeaveCriticalSection")};
  }();
  return tokens;
}

/// Recall on ransomware test windows diluted at `rate`.
template <typename PredictFn>
double diluted_recall(const nn::TrainTestSplit& split, double rate,
                      PredictFn&& predict) {
  Rng rng(99);
  std::size_t n = 0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    if (split.test.labels[i] != 1) continue;
    ++n;
    hits += predict(dilute(split.test.sequences[i], rate, rng,
                           noise_tokens())) == 1;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — model selection + dilution-evasion robustness");

  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 600;
  spec.benign_windows = 705;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(7);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);

  // Augmented training set: one diluted copy of every window.
  nn::SequenceDataset augmented = split.train;
  Rng aug_rng(5);
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    augmented.sequences.push_back(dilute(
        split.train.sequences[i], aug_rng.uniform(0.2, 1.0), aug_rng,
        noise_tokens()));
    augmented.labels.push_back(split.train.labels[i]);
  }

  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 32;

  TextTable table({"model", "params", "clean_acc", "recall@dil=0.5",
                   "recall@dil=0.9"});
  const auto add_row = [&](const char* name, std::size_t params,
                           double accuracy, const auto& predict) {
    table.add_row({name, std::to_string(params), TextTable::num(accuracy, 4),
                   TextTable::num(diluted_recall(split, 0.5, predict), 3),
                   TextTable::num(diluted_recall(split, 0.9, predict), 3)});
  };

  {
    nn::LstmConfig config;
    nn::LstmClassifier model(config, rng);
    const auto result = nn::train(model, split.train, split.test, tc);
    add_row("LSTM (paper)", model.params().total_parameter_count(),
            result.best_test_accuracy,
            [&](const nn::Sequence& w) { return model.predict(w); });
  }
  {
    nn::LstmConfig config;
    nn::LstmClassifier model(config, rng);
    const auto result = nn::train(model, augmented, split.test, tc);
    add_row("LSTM + dilution augmentation",
            model.params().total_parameter_count(), result.best_test_accuracy,
            [&](const nn::Sequence& w) { return model.predict(w); });
  }
  {
    nn::GruConfig config;
    nn::GruClassifier model(config, rng);
    const auto result = nn::train_gru(model, split.train, split.test, tc);
    add_row("GRU", model.params().total_parameter_count(),
            result.best_test_accuracy,
            [&](const nn::Sequence& w) { return model.predict(w); });
  }
  {
    nn::MlpConfig config;  // hidden 24 -> ~6.7K params, comparable budget
    nn::MlpClassifier model(config, rng);
    const auto result = nn::train_mlp(model, split.train, split.test, tc);
    add_row("bag-of-calls MLP", model.params().total_parameter_count(),
            result.best_test_accuracy,
            [&](const nn::Sequence& w) { return model.predict(w); });
  }
  table.print(std::cout);

  // Deployment cost of the two sequential candidates on the SmartSSD.
  bench::print_header("On-CSD deployment cost (fixed-point build, KU15P)");
  const hls::HlsCostModel cost_model = hls::HlsCostModel::ultrascale_default();
  TextTable deploy({"design", "gate CUs", "per_item_us", "DSP", "BRAM36"});
  {
    const nn::LstmConfig config;
    hls::ResourceEstimate lstm;
    lstm += hls::estimate_resources(kernels::make_preprocess_spec(
        config, kernels::OptimizationLevel::FixedPoint, 4));
    lstm += hls::estimate_resources(kernels::make_gates_spec(
                config, kernels::OptimizationLevel::FixedPoint)) *
            4;
    lstm += hls::estimate_resources(kernels::make_hidden_state_spec(
        config, kernels::OptimizationLevel::FixedPoint, 4));
    deploy.add_row({"LSTM (paper)", "4", "2.15312", std::to_string(lstm.dsp),
                    std::to_string(lstm.bram36)});
  }
  {
    const nn::GruConfig config;
    const kernels::GruCsdEstimate gru = kernels::estimate_gru_csd(
        cost_model, config, kernels::OptimizationLevel::FixedPoint);
    deploy.add_row({"GRU port", "3",
                    TextTable::num(gru.total().as_microseconds()),
                    std::to_string(gru.resources.dsp),
                    std::to_string(gru.resources.bram36)});
  }
  deploy.print(std::cout);

  std::cout <<
      "\nHonest findings on this synthetic corpus:\n"
      " * Clean windows: all four reach the high-90s — window-level call\n"
      "   frequencies alone are highly discriminative here, so the order-\n"
      "   blind MLP is competitive (it cannot, however, separate order-only\n"
      "   classes at all: see test_mlp.cpp's pure-ordering task, chance\n"
      "   level — the paper's structural argument for sequential models).\n"
      " * Dilution evasion: the stock sequential models are brittle (they\n"
      "   learned background-call density as a benign cue), the histogram\n"
      "   model degrades gracefully — robustness must be trained, not\n"
      "   assumed. One diluted copy of each training window restores the\n"
      "   LSTM across the sweep and even improves its clean accuracy.\n"
      " * The GRU matches the LSTM with 3,936 vs 5,248 recurrent weights\n"
      "   and would need one fewer gate CU on the FPGA.\n";
  return 0;
}
