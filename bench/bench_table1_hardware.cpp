// Reproduces Table I: per-item forward-pass latency on the CSD FPGA vs an
// Intel Xeon CPU and an NVIDIA A100 GPU, with 95% confidence intervals.
//
// Paper values:
//   FPGA 2.15133 us (no CI: hardware-emulation measurement)
//   CPU  991.57750 us, CI [217.46576, 1765.68923]
//   GPU  741.35336 us, CI [394.45317, 1088.25355]   -> FPGA wins by 344.6x
#include <iostream>

#include "baselines/host_baseline.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "kernels/engine.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Table I — traditional DL hardware comparison (per item)");

  const nn::LstmConfig config;
  Rng param_rng(7);
  const nn::LstmParams params = nn::LstmParams::glorot(config, param_rng);
  Rng rng(1023);  // latency sampling stream

  // FPGA: the fully optimized engine's per-item time (deterministic).
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, params,
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  const double fpga_us = engine.per_item_timings().total().as_microseconds();

  // CPU / GPU: the paper's measurement procedure — repeated per-item runs,
  // Student-t 95% CI. The paper's CI widths imply a small sample; use 10.
  const std::size_t kSamples = 10;
  baselines::HostBaseline cpu("cpu", config, params,
                              baselines::HostLatencyConfig::xeon_cpu());
  baselines::HostBaseline gpu("gpu", config, params,
                              baselines::HostLatencyConfig::a100_gpu());
  Rng cpu_rng = rng.fork("cpu-latency");
  Rng gpu_rng = rng.fork("gpu-latency");
  const ConfidenceInterval cpu_ci =
      confidence_interval(cpu.measure_item_latencies(kSamples, cpu_rng));
  const ConfidenceInterval gpu_ci =
      confidence_interval(gpu.measure_item_latencies(kSamples, gpu_rng));

  TextTable table({"platform", "exec_time_us", "95% CI", "paper_us", "delta"});
  table.add_row({"FPGA (this work)", TextTable::num(fpga_us), "N/A",
                 "2.15133", bench::deviation(fpga_us, 2.15133)});
  table.add_row({"CPU (Xeon)", TextTable::num(cpu_ci.mean),
                 TextTable::num(cpu_ci.lower) + " - " + TextTable::num(cpu_ci.upper),
                 "991.57750", bench::deviation(cpu_ci.mean, 991.5775)});
  table.add_row({"GPU (A100)", TextTable::num(gpu_ci.mean),
                 TextTable::num(gpu_ci.lower) + " - " + TextTable::num(gpu_ci.upper),
                 "741.35336", bench::deviation(gpu_ci.mean, 741.35336)});
  table.print(std::cout);

  const double speedup = gpu_ci.mean / fpga_us;
  std::cout << "\nGPU/FPGA speedup: " << TextTable::num(speedup, 1)
            << "x   (paper: 344.6x, " << bench::deviation(speedup, 344.6)
            << ")\n";
  std::cout << "CPU/FPGA speedup: " << TextTable::num(cpu_ci.mean / fpga_us, 1)
            << "x\n";

  // Long-run means (the latency models' calibration check). Note the
  // 10-sample CI above is itself a random draw — like the paper's — so its
  // mean wanders; these 20k-sample means are the stable calibration.
  Rng big_rng = rng.fork("long-run");
  RunningStats cpu_long;
  for (const double s : cpu.measure_item_latencies(20'000, big_rng)) {
    cpu_long.add(s);
  }
  RunningStats gpu_long;
  for (const double s : gpu.measure_item_latencies(20'000, big_rng)) {
    gpu_long.add(s);
  }
  std::cout << "\nLong-run means over 20k samples: CPU "
            << TextTable::num(cpu_long.mean(), 1) << " us, GPU "
            << TextTable::num(gpu_long.mean(), 1) << " us\n";
  bench::dump_metrics_json("bench_table1_hardware");
  return 0;
}
