// Serving-pipeline benchmark: synchronous per-call classification vs the
// sharded asynchronous pipeline (lock-free rings + micro-batch coalescing)
// across ingestion thread counts.
//
// Three measurements per thread count:
//   sync     one thread drives engine.infer per due window — also the
//            parity oracle (every classification captured bit-exactly)
//   sync-mt  N ingestion threads each classify their own processes
//            synchronously; the engine's device lock serialises them —
//            the pre-pipeline concurrency story
//   async    N ingestion threads feed the ServingPipeline; the coalescer
//            batches due windows into infer_batch
//
// Every async run is checked for bit-identical verdicts (probability,
// alert, call index, per-process order) against the sync oracle, and a
// deliberately starved run (tiny rings + slow sink) checks the
// backpressure contract: shed > 0, nothing lost.
//
// Emits BENCH_serving.json (into CSDML_METRICS_OUT when set, else the
// working directory). `--tiny` shrinks everything for CI smoke.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "csd/smartssd.hpp"
#include "detect/token_ring.hpp"
#include "kernels/engine.hpp"
#include "serve/serving.hpp"
#include "xrt/runtime.hpp"

namespace {

using namespace csdml;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Workload {
  nn::LstmConfig model;
  detect::DetectorConfig detector;
  std::size_t calls_per_process{0};
  std::vector<std::vector<nn::TokenId>> streams;  ///< index p → pid p + 1
};

detect::ProcessId pid_of(std::size_t process_index) {
  return static_cast<detect::ProcessId>(process_index + 1);
}

struct ReplayVerdict {
  std::uint64_t call_index{0};
  double probability{0.0};
  bool alert{false};
};
/// Per-process verdict streams, in call order.
using VerdictLog = std::map<detect::ProcessId, std::vector<ReplayVerdict>>;

/// Replays the detector's window/hop/debounce logic inline against
/// engine.infer, capturing every classification. The `processes` list
/// names which stream indices this replay owns (so sync-mt threads can
/// partition the workload without sharing state).
VerdictLog sync_replay(kernels::CsdLstmEngine& engine, const Workload& work,
                       const std::vector<std::size_t>& processes) {
  struct State {
    detect::TokenRing window;
    std::uint64_t calls_seen{0};
    std::uint64_t calls_since_eval{0};
    std::size_t alert_streak{0};
  };
  std::vector<State> states(processes.size());
  for (State& state : states) {
    state.window = detect::TokenRing(work.detector.window_length);
  }
  VerdictLog log;
  for (std::size_t i = 0; i < work.calls_per_process; ++i) {
    for (std::size_t p = 0; p < processes.size(); ++p) {
      const std::vector<nn::TokenId>& stream = work.streams[processes[p]];
      if (i >= stream.size()) continue;
      State& state = states[p];
      state.window.push(stream[i]);
      ++state.calls_seen;
      ++state.calls_since_eval;
      if (!state.window.full()) continue;
      const bool first_full =
          state.calls_seen == work.detector.window_length;
      if (!first_full && state.calls_since_eval < work.detector.hop) continue;
      state.calls_since_eval = 0;
      const kernels::InferenceResult result =
          engine.infer(state.window.view());
      if (result.probability >= work.detector.threshold) {
        ++state.alert_streak;
      } else {
        state.alert_streak = 0;
      }
      ReplayVerdict verdict;
      verdict.call_index = state.calls_seen;
      verdict.probability = result.probability;
      verdict.alert =
          state.alert_streak >= work.detector.consecutive_alerts;
      log[pid_of(processes[p])].push_back(verdict);
    }
  }
  return log;
}

std::vector<std::vector<std::size_t>> partition(std::size_t processes,
                                                std::size_t threads) {
  std::vector<std::vector<std::size_t>> parts(threads);
  for (std::size_t p = 0; p < processes; ++p) parts[p % threads].push_back(p);
  return parts;
}

bool logs_match(const VerdictLog& oracle, const VerdictLog& observed) {
  if (oracle.size() != observed.size()) return false;
  for (const auto& [pid, expected] : oracle) {
    const auto it = observed.find(pid);
    if (it == observed.end() || it->second.size() != expected.size()) {
      return false;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const ReplayVerdict& a = expected[i];
      const ReplayVerdict& b = it->second[i];
      // Bit-identical: same datapath, same weights, no tolerance.
      if (a.call_index != b.call_index || a.probability != b.probability ||
          a.alert != b.alert) {
        return false;
      }
    }
  }
  return true;
}

double histogram_p99(const std::string& name) {
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  for (const obs::HistogramSnapshot& histogram : snapshot.histograms) {
    if (histogram.name == name) return histogram.percentile(0.99);
  }
  return 0.0;
}

struct AsyncRun {
  std::size_t threads{0};
  double elapsed_s{0.0};
  double calls_per_sec{0.0};
  double p99_ingest_to_verdict_us{0.0};
  bool parity_ok{false};
  serve::ServingPipeline::Stats stats;
};

AsyncRun run_async(const Workload& work, const nn::LstmParams& params,
                   std::size_t threads, const VerdictLog& oracle) {
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, work.model, params,
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  obs::registry().reset();

  serve::ServeConfig config;
  config.detector = work.detector;
  std::mutex log_mutex;
  VerdictLog observed;
  serve::ServingPipeline pipeline(
      engine, config, [&](const serve::Verdict& verdict) {
        // Single coalescer thread delivers, but lock anyway — the sink
        // contract only promises "outside shard locks".
        std::lock_guard<std::mutex> lock(log_mutex);
        ReplayVerdict entry;
        entry.call_index = verdict.call_index;
        entry.probability = verdict.probability;
        entry.alert = verdict.alert;
        observed[verdict.process].push_back(entry);
      });

  const auto parts = partition(work.streams.size(), threads);
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&pipeline, &work, &part = parts[t]] {
      for (std::size_t i = 0; i < work.calls_per_process; ++i) {
        for (const std::size_t p : part) {
          if (i < work.streams[p].size()) {
            pipeline.ingest(pid_of(p), work.streams[p][i]);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  pipeline.flush();
  const double elapsed = seconds_since(start);
  pipeline.stop();

  AsyncRun run;
  run.threads = threads;
  run.elapsed_s = elapsed;
  run.calls_per_sec =
      static_cast<double>(work.streams.size() * work.calls_per_process) /
      elapsed;
  run.p99_ingest_to_verdict_us = histogram_p99("serve.ingest_to_verdict_us");
  run.parity_ok = logs_match(oracle, observed);
  run.stats = pipeline.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  Workload work;
  if (tiny) {
    work.model.vocab_size = 41;
    work.model.embed_dim = 8;
    work.model.hidden_dim = 16;
    work.detector = detect::DetectorConfig{.window_length = 20, .hop = 5,
                                           .consecutive_alerts = 2};
    work.calls_per_process = 60;
  } else {
    work.detector = detect::DetectorConfig{.window_length = 100, .hop = 25,
                                           .consecutive_alerts = 2};
    work.calls_per_process = 1'000;
  }
  const std::size_t processes = tiny ? 4 : 16;
  Rng token_rng(99);
  for (std::size_t p = 0; p < processes; ++p) {
    std::vector<nn::TokenId> stream;
    stream.reserve(work.calls_per_process);
    for (std::size_t i = 0; i < work.calls_per_process; ++i) {
      stream.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, work.model.vocab_size - 1)));
    }
    work.streams.push_back(std::move(stream));
  }

  Rng rng(31);
  const nn::LstmParams params = nn::LstmParams::glorot(work.model, rng);
  const std::size_t total_calls = processes * work.calls_per_process;

  bench::print_header("Serving pipeline (sync vs sharded async)");
  std::cout << "processes=" << processes << " calls=" << work.calls_per_process
            << " window=" << work.detector.window_length
            << " hop=" << work.detector.hop
            << " hw_threads=" << std::thread::hardware_concurrency()
            << (tiny ? "  [tiny smoke]" : "") << "\n";

  // --- sync oracle (single thread, also the parity reference) ----------
  std::vector<std::size_t> all_processes(processes);
  for (std::size_t p = 0; p < processes; ++p) all_processes[p] = p;
  VerdictLog oracle;
  double sync_elapsed = 0.0;
  {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(
        device, work.model, params,
        kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
    const auto start = Clock::now();
    oracle = sync_replay(engine, work, all_processes);
    sync_elapsed = seconds_since(start);
  }
  const double sync_calls_per_sec =
      static_cast<double>(total_calls) / sync_elapsed;
  std::size_t oracle_verdicts = 0;
  for (const auto& [pid, verdicts] : oracle) oracle_verdicts += verdicts.size();

  // --- per thread count: sync-mt vs async ------------------------------
  std::vector<std::size_t> thread_counts = tiny
                                               ? std::vector<std::size_t>{1, 2}
                                               : std::vector<std::size_t>{
                                                     1, 2, 4, 8, 16};
  struct Row {
    std::size_t threads{0};
    double sync_mt_calls_per_sec{0.0};
    AsyncRun async;
    double speedup{0.0};
  };
  std::vector<Row> rows;
  bool parity_all = true;
  for (const std::size_t threads : thread_counts) {
    Row row;
    row.threads = threads;
    {
      // sync-mt: each thread replays its own processes; every infer
      // serialises on the engine's device lock.
      csd::SmartSsd board{csd::SmartSsdConfig{}};
      xrt::Device device{board};
      kernels::CsdLstmEngine engine(
          device, work.model, params,
          kernels::EngineConfig{.level =
                                    kernels::OptimizationLevel::FixedPoint});
      const auto parts = partition(processes, threads);
      const auto start = Clock::now();
      std::vector<std::thread> workers;
      for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&engine, &work, &part = parts[t]] {
          sync_replay(engine, work, part);
        });
      }
      for (std::thread& worker : workers) worker.join();
      row.sync_mt_calls_per_sec =
          static_cast<double>(total_calls) / seconds_since(start);
    }
    row.async = run_async(work, params, threads, oracle);
    row.speedup = row.async.calls_per_sec / row.sync_mt_calls_per_sec;
    parity_all = parity_all && row.async.parity_ok;
    rows.push_back(std::move(row));
  }

  TextTable table({"threads", "sync_mt_calls_s", "async_calls_s", "speedup",
                   "p99_ingest_to_verdict_us", "parity"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.threads),
                   TextTable::num(row.sync_mt_calls_per_sec, 0),
                   TextTable::num(row.async.calls_per_sec, 0),
                   TextTable::num(row.speedup, 2) + "x",
                   TextTable::num(row.async.p99_ingest_to_verdict_us, 1),
                   row.async.parity_ok ? "ok" : "MISMATCH"});
  }
  table.print(std::cout);
  std::cout << "sync (1 thread, oracle): "
            << TextTable::num(sync_calls_per_sec, 0) << " calls/s, "
            << oracle_verdicts << " classifications\n";

  // Bit-identical verdicts are the contract that makes the async numbers
  // comparable at all — bail loudly if any run drifted.
  if (!parity_all) {
    std::cerr << "ASYNC/SYNC VERDICT MISMATCH (see table)\n";
    return 1;
  }

  // --- backpressure: starved rings + slow sink, nothing may be lost ----
  serve::ServingPipeline::Stats backpressure;
  {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(
        device, work.model, params,
        kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
    obs::registry().reset();
    serve::ServeConfig config;
    config.detector = work.detector;
    config.ring_capacity = 4;
    config.coalesce_max = 4;
    serve::ServingPipeline pipeline(
        engine, config, [](const serve::Verdict&) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        });
    const auto parts = partition(processes, 2);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < parts.size(); ++t) {
      workers.emplace_back([&pipeline, &work, &part = parts[t]] {
        for (std::size_t i = 0; i < work.calls_per_process; ++i) {
          for (const std::size_t p : part) {
            pipeline.ingest(pid_of(p), work.streams[p][i]);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    pipeline.flush();
    pipeline.stop();
    backpressure = pipeline.stats();
  }
  const std::uint64_t lost =
      backpressure.enqueued - backpressure.verdicts - backpressure.deferred;
  std::cout << "backpressure: shed=" << backpressure.shed
            << " enqueued=" << backpressure.enqueued
            << " verdicts=" << backpressure.verdicts << " lost=" << lost
            << "\n";
  if (lost != 0) {
    std::cerr << "BACKPRESSURE LOST CLASSIFICATIONS: " << lost << "\n";
    return 1;
  }

  // --- BENCH_serving.json ----------------------------------------------
  JsonWriter json;
  json.begin_object();
  json.field("bench", "serving");
  json.key("config");
  json.begin_object();
  json.field("processes", processes);
  json.field("calls_per_process", work.calls_per_process);
  json.field("window", work.detector.window_length);
  json.field("hop", work.detector.hop);
  json.field("hidden_dim", work.model.hidden_dim);
  json.field("hw_threads",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.field("tiny", tiny);
  json.end_object();
  json.key("sync");
  json.begin_object();
  json.field("calls_per_sec", sync_calls_per_sec);
  json.field("classifications", oracle_verdicts);
  json.end_object();
  json.key("async");
  json.begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.field("threads", static_cast<std::int64_t>(row.threads));
    json.field("sync_mt_calls_per_sec", row.sync_mt_calls_per_sec);
    json.field("async_calls_per_sec", row.async.calls_per_sec);
    json.field("speedup_vs_sync_mt", row.speedup);
    json.field("p99_ingest_to_verdict_us", row.async.p99_ingest_to_verdict_us);
    json.field("batches", row.async.stats.batches);
    json.field("parity_ok", row.async.parity_ok);
    json.end_object();
  }
  json.end_array();
  json.key("parity");
  json.begin_object();
  json.field("checked", true);
  json.field("matched", parity_all);
  json.end_object();
  json.key("backpressure");
  json.begin_object();
  json.field("shed", backpressure.shed);
  json.field("enqueued", backpressure.enqueued);
  json.field("verdicts", backpressure.verdicts);
  json.field("deferred", backpressure.deferred);
  json.field("lost", lost);
  json.end_object();
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_serving.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\nserving -> " << json_path << "\n";
  bench::dump_metrics_json("bench_serving");
  return 0;
}
