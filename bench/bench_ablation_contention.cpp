// Ablation: the inference path under host I/O pressure. The deployed
// guard runs "continuously in the background" while the drive serves its
// normal workload; this bench measures how much a burst of host reads
// delays the P2P sequence load, and what the host-mediated path would have
// suffered (it additionally queues behind the same upstream PCIe link the
// burst's completions use).
#include <iostream>

#include "bench_util.hpp"
#include "csd/smartssd.hpp"

namespace {

using namespace csdml;

/// Measures the inference-path transfer after `host_reads` concurrent
/// 64 KiB host reads were issued at the same instant.
double transfer_us(bool p2p, int host_reads) {
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  const std::vector<std::uint8_t> window(4096, 0xAA);
  board.ssd().write(0, window, TimePoint{});
  // Host workload data lives elsewhere on the drive.
  const std::vector<std::uint8_t> bulk(64 * 1024, 0x55);
  for (int i = 0; i < host_reads; ++i) {
    board.ssd().write(10'000 + static_cast<std::uint64_t>(i) * 64, bulk,
                      TimePoint{});
  }
  const TimePoint start = TimePoint{} + Duration::microseconds(50'000);
  for (int i = 0; i < host_reads; ++i) {
    const csd::IoResult io =
        board.ssd().read(10'000 + static_cast<std::uint64_t>(i) * 64, 16, start);
    board.pcie().to_host(Bytes{io.data.size()}, io.done);  // completions DMA up
  }
  const csd::TransferResult result =
      p2p ? board.p2p_read_to_fpga(0, 1, 0, 0, start)
          : board.host_read_to_fpga(0, 1, 0, 0, start);
  return (result.done - start).as_microseconds();
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — inference-path transfer under host I/O bursts");

  TextTable table({"concurrent_host_reads", "p2p_us", "host_path_us",
                   "p2p_slowdown", "host_slowdown"});
  const double p2p_idle = transfer_us(true, 0);
  const double host_idle = transfer_us(false, 0);
  for (const int burst : {0, 4, 16, 64}) {
    const double p2p = transfer_us(true, burst);
    const double host = transfer_us(false, burst);
    table.add_row({std::to_string(burst), TextTable::num(p2p, 1),
                   TextTable::num(host, 1),
                   TextTable::num(p2p / p2p_idle, 2) + "x",
                   TextTable::num(host / host_idle, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nBoth paths queue behind the busy NAND channels, but only the\n"
               "host-mediated path also queues behind the upstream PCIe link\n"
               "the burst's completions occupy — the P2P path's internal\n"
               "switch port stays clear, which is the Section II claim that\n"
               "P2P 'drastically reduces PCIe traffic'.\n";
  return 0;
}
