// Ablation: the P2P data path. The SmartSSD's switch lets the SSD feed the
// FPGA DRAM directly; the traditional flow hairpins through host DRAM over
// the same upstream PCIe link twice. This bench sweeps transfer sizes and
// reports both paths (paper Section II: P2P "drastically reduces PCIe
// traffic and CPU overhead").
#include <iostream>

#include "bench_util.hpp"
#include "csd/smartssd.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — P2P vs host-mediated SSD->FPGA transfers");

  TextTable table({"size", "p2p_us", "host_us", "host/p2p",
                   "upstream_pcie_bytes(host path)"});
  for (const std::uint64_t kib : {4ull, 64ull, 512ull, 4096ull}) {
    // Fresh boards per size so link/DDR serialisation doesn't accumulate.
    csd::SmartSsd p2p_board{csd::SmartSsdConfig{}};
    csd::SmartSsd host_board{csd::SmartSsdConfig{}};
    const std::vector<std::uint8_t> payload(kib * 1024, 0xC3);
    p2p_board.ssd().write(0, payload, TimePoint{});
    host_board.ssd().write(0, payload, TimePoint{});
    const auto blocks = static_cast<std::uint32_t>(kib / 4);
    const TimePoint start = TimePoint{} + Duration::microseconds(20'000);

    const csd::TransferResult p2p =
        p2p_board.p2p_read_to_fpga(0, blocks, 0, 0, start);
    const csd::TransferResult host =
        host_board.host_read_to_fpga(0, blocks, 0, 0, start);
    const double p2p_us = (p2p.done - start).as_microseconds();
    const double host_us = (host.done - start).as_microseconds();
    table.add_row({std::to_string(kib) + " KiB", TextTable::num(p2p_us, 2),
                   TextTable::num(host_us, 2),
                   TextTable::num(host_us / p2p_us, 2) + "x",
                   std::to_string(host_board.pcie().upstream().bytes_moved().count)});
  }
  table.print(std::cout);
  std::cout << "\nThe P2P path never crosses the host root complex (0 upstream\n"
               "bytes), so its advantage grows with transfer size while the\n"
               "host path pays the link twice plus a staging copy.\n";
  return 0;
}
