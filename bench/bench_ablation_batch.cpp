// Ablation: latency vs throughput. Table I is a *latency* claim — one
// item through the pipeline. GPUs amortize their launch overhead over
// large batches and win raw bulk throughput; the CSD wins every
// per-decision latency and needs no batch to do it. This bench shows both
// regimes side by side (and where a 4-drive node lands).
#include <iostream>

#include "baselines/host_baseline.hpp"
#include "bench_util.hpp"
#include "host/node.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — per-decision latency vs bulk throughput");

  nn::LstmConfig config;
  Rng rng(91);
  const nn::ModelSnapshot snapshot{config,
                                   nn::LstmParams::glorot(config, rng)};
  const baselines::HostBaseline gpu("gpu", config, snapshot.params,
                                    baselines::HostLatencyConfig::a100_gpu());
  const baselines::HostBaseline cpu("cpu", config, snapshot.params,
                                    baselines::HostLatencyConfig::xeon_cpu());

  // One window of 100 items, per platform.
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, snapshot, kernels::EngineConfig{});
  Rng token_rng(3);
  std::vector<nn::Sequence> windows;
  for (int i = 0; i < 64; ++i) {
    nn::Sequence seq;
    for (int j = 0; j < 100; ++j) {
      seq.push_back(
          static_cast<nn::TokenId>(token_rng.uniform_int(0, 277)));
    }
    windows.push_back(std::move(seq));
  }
  const double fpga_window_us =
      engine.infer(windows.front()).device_time.as_microseconds();

  bench::print_header("Per-decision latency (one 100-call window)");
  TextTable latency({"platform", "window_latency_us"});
  latency.add_row({"FPGA (CSD)", TextTable::num(fpga_window_us, 1)});
  latency.add_row(
      {"GPU batch=1", TextTable::num(gpu.batch_window_latency(1, 100)
                                         .as_microseconds(), 1)});
  latency.add_row(
      {"CPU batch=1", TextTable::num(cpu.batch_window_latency(1, 100)
                                         .as_microseconds(), 1)});
  latency.print(std::cout);

  bench::print_header("Bulk throughput (windows / second)");
  TextTable throughput({"platform", "batch", "windows_per_s"});
  const double fpga_tp = engine.infer_batch(windows).windows_per_second;
  throughput.add_row({"FPGA (one CSD)", "streamed", TextTable::num(fpga_tp, 0)});
  host::StorageNode node(snapshot, host::NodeConfig{.drive_count = 4});
  const host::ScanReport scan = node.scan(windows);
  const double node_tp = static_cast<double>(scan.scanned) /
                         (static_cast<double>(scan.makespan.picos) * 1e-12);
  throughput.add_row({"FPGA (4-drive node)", "streamed",
                      TextTable::num(node_tp, 0)});
  for (const std::size_t batch : {1ul, 64ul, 1024ul, 4096ul}) {
    const double us = gpu.batch_window_latency(batch, 100).as_microseconds();
    throughput.add_row({"GPU (A100)", std::to_string(batch),
                        TextTable::num(static_cast<double>(batch) / (us * 1e-6), 0)});
  }
  throughput.print(std::cout);
  std::cout << "\nThe GPU needs thousands of concurrent windows to beat one\n"
               "drive's throughput — useless for the paper's use case, where\n"
               "each process's window must be classified the moment it fills\n"
               "so encryption can be blocked before it proceeds. Drives also\n"
               "scale linearly per node, next to the data they protect.\n";
  return 0;
}
