// Energy per inference — the quantified version of the paper's efficiency
// motivation ("the lower-power processing capability of CSDs ... decreases
// energy consumption under heavy workloads"). The FPGA side uses the power
// model over the actually-placed resources; the host sides use the
// baselines' package/board power at their measured mean latencies.
#include <iostream>

#include "baselines/host_baseline.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hls/power.hpp"
#include "kernels/engine.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Energy per item inference (extension experiment)");

  const nn::LstmConfig config;
  Rng rng(5);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);

  // FPGA: placed design power x per-item time.
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, params,
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  const hls::PowerModel power;
  const double fpga_watts = power.estimate_watts(board.fpga().placed());
  const Duration fpga_item = engine.per_item_timings().total();
  const double fpga_uj = hls::microjoules(fpga_watts, fpga_item);

  // Hosts: package power x long-run mean latency.
  const auto cpu_cfg = baselines::HostLatencyConfig::xeon_cpu();
  const auto gpu_cfg = baselines::HostLatencyConfig::a100_gpu();
  baselines::HostBaseline cpu("cpu", config, params, cpu_cfg);
  baselines::HostBaseline gpu("gpu", config, params, gpu_cfg);
  Rng sample_rng(17);
  RunningStats cpu_stats;
  for (const double s : cpu.measure_item_latencies(20'000, sample_rng)) {
    cpu_stats.add(s);
  }
  RunningStats gpu_stats;
  for (const double s : gpu.measure_item_latencies(20'000, sample_rng)) {
    gpu_stats.add(s);
  }
  const double cpu_uj =
      hls::microjoules(cpu_cfg.active_watts,
                       Duration::microseconds(cpu_stats.mean()));
  const double gpu_uj =
      hls::microjoules(gpu_cfg.active_watts,
                       Duration::microseconds(gpu_stats.mean()));

  TextTable table({"platform", "power_w", "item_latency_us", "energy_uJ",
                   "vs FPGA"});
  table.add_row({"FPGA (CSD)", TextTable::num(fpga_watts, 2),
                 TextTable::num(fpga_item.as_microseconds(), 3),
                 TextTable::num(fpga_uj, 3), "1.0x"});
  table.add_row({"CPU (Xeon)", TextTable::num(cpu_cfg.active_watts, 1),
                 TextTable::num(cpu_stats.mean(), 1),
                 TextTable::num(cpu_uj, 1),
                 TextTable::num(cpu_uj / fpga_uj, 0) + "x"});
  table.add_row({"GPU (A100)", TextTable::num(gpu_cfg.active_watts, 1),
                 TextTable::num(gpu_stats.mean(), 1),
                 TextTable::num(gpu_uj, 1),
                 TextTable::num(gpu_uj / fpga_uj, 0) + "x"});
  table.print(std::cout);
  std::cout << "\nContinuous background scanning (the paper's deployment) at\n"
               "1000 classifications/s of 100-item windows:\n";
  const double windows_per_s = 1000.0;
  std::cout << "  FPGA: " << TextTable::num(fpga_uj * 100 * windows_per_s / 1e6, 2)
            << " W equivalent  |  CPU: "
            << TextTable::num(cpu_uj * 100 * windows_per_s / 1e6, 1)
            << " W  |  GPU: "
            << TextTable::num(gpu_uj * 100 * windows_per_s / 1e6, 1) << " W\n";
  return 0;
}
