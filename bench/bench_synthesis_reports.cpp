// Prints Vitis-style synthesis reports for every kernel at every
// optimization level — the artefacts a developer of the real system would
// tune against (loop IIs, limiting factors, per-kernel resources).
#include <iostream>

#include "bench_util.hpp"
#include "hls/report.hpp"
#include "kernels/specs.hpp"

int main() {
  using namespace csdml;
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const hls::FpgaPart part = hls::FpgaPart::ku15p();  // the SmartSSD's FPGA
  const nn::LstmConfig config;

  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    bench::print_header(std::string("xclbin lstm_") +
                        kernels::optimization_name(level));
    std::cout << hls::synthesis_report(
                     kernels::make_preprocess_spec(config, level, 4), model, part)
              << '\n';
    std::cout << hls::synthesis_report(kernels::make_gates_spec(config, level),
                                       model, part)
              << "\n(x4 compute units)\n\n";
    std::cout << hls::synthesis_report(
                     kernels::make_hidden_state_spec(config, level, 4), model,
                     part)
              << '\n';
  }
  return 0;
}
