// Ablation: AXI-stream kernel links. Section III-C: "streaming can be
// easily ported to the kernel implementation for additional acceleration
// if the FPGA supports it." Stream links replace the DDR round-trips of
// the x_t copies, gate vectors and h_t copies with direct FIFOs.
#include <iostream>

#include "bench_util.hpp"
#include "kernels/engine.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — memory-mapped AXI vs AXI-stream kernel links");

  const nn::LstmConfig config;
  Rng rng(23);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);

  TextTable table({"optimization", "link", "preprocess", "gates", "hidden",
                   "total_us"});
  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    for (const auto link :
         {kernels::KernelLink::AxiMemory, kernels::KernelLink::Stream}) {
      csd::SmartSsd board{csd::SmartSsdConfig{}};
      xrt::Device device{board};
      kernels::CsdLstmEngine engine(
          device, config, params,
          kernels::EngineConfig{.level = level, .link = link});
      const kernels::KernelTimings t = engine.per_item_timings();
      table.add_row(
          {kernels::optimization_name(level),
           link == kernels::KernelLink::Stream ? "stream" : "axi-mm",
           TextTable::num(t.preprocess.as_microseconds()),
           TextTable::num(t.gates.as_microseconds()),
           TextTable::num(t.hidden_state.as_microseconds()),
           TextTable::num(t.total().as_microseconds())});
    }
  }
  table.print(std::cout);
  std::cout << "\nStreaming removes the per-item DDR hand-offs (the dominant\n"
               "cost of the fixed-point hidden_state kernel), delivering the\n"
               "'additional acceleration' the paper predicts for stream-capable\n"
               "fabrics.\n";
  return 0;
}
