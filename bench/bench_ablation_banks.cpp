// Ablation: DDR bank count. The paper uses "a conservative two DDR banks
// of global memory" and notes Alveo u200/u250 cards support four. Banks
// serve the kernels' AXI traffic; this bench issues the steady-state
// weight/state streams of the four gate CUs concurrently and measures the
// makespan as the banks vary.
#include <iostream>

#include "bench_util.hpp"
#include "csd/fpga_device.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — FPGA DDR bank count");

  // Each of 8 concurrent masters (4 gate CUs x in/out streams) moves 256 KiB.
  const int kMasters = 8;
  const Bytes kChunk = Bytes::kib(256);

  TextTable table({"banks", "makespan_us", "speedup_vs_1"});
  double baseline = 0.0;
  for (const std::uint32_t banks : {1u, 2u, 4u}) {
    csd::FpgaConfig config;
    config.ddr_banks = banks;
    csd::FpgaDevice fpga(config);
    TimePoint makespan{};
    for (int m = 0; m < kMasters; ++m) {
      const std::uint32_t bank = static_cast<std::uint32_t>(m) % banks;
      const TimePoint done = fpga.bank(bank).access(kChunk, TimePoint{});
      makespan = std::max(makespan, done);
    }
    const double us = (makespan - TimePoint{}).as_microseconds();
    if (banks == 1) baseline = us;
    table.add_row({std::to_string(banks), TextTable::num(us, 3),
                   TextTable::num(baseline / us, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nTwo banks already double the aggregate stream bandwidth;\n"
               "the design's working set is small enough that the paper's\n"
               "'conservative two banks' leaves headroom on a u200's four.\n";
  return 0;
}
