// Scenario corpus benchmark: detection quality under adversarial
// campaigns, as a trackable artefact.
//
// Replays every builtin scenario (benign + ransomware traces through the
// board fleet, with mid-run kills/revives/rollouts) and reports, per
// scenario, the detection-latency p50/p95 across its attack pids, the
// benign false-positive rate, and the files encrypted before the verdict
// landed — the three quality axes the paper's evaluation argues over —
// plus the outcome digest and wall time. Exits non-zero when any
// scenario's quality gates fail, so a model or serving regression fails
// the bench run itself, not just a later analysis step.
//
// Emits BENCH_scenarios.json (into CSDML_METRICS_OUT when set, else the
// working directory). `--tiny` serves the smoke model for CI lanes;
// golden digests are full-model only, so the JSON records which model
// produced the numbers.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "scenario/corpus.hpp"
#include "scenario/runner.hpp"
#include "scenario/scorer.hpp"

namespace {

using namespace csdml;

/// Nearest-rank percentile over an ascending vector; 0 when empty.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else {
      std::cerr << "usage: bench_scenarios [--tiny]\n";
      return 2;
    }
  }

  bench::print_header("Adversarial scenario corpus: detection quality");

  scenario::RunOptions options;
  options.tiny = tiny;
  std::vector<scenario::RunResult> results;
  for (const scenario::Scenario& spec : scenario::builtin_corpus()) {
    results.push_back(scenario::run_scenario(spec, options));
  }

  std::vector<std::uint64_t> all_latencies;
  bool gates_ok = true;
  TextTable table({"scenario", "lat_p50", "lat_p95", "fpr", "files_lost",
                   "deferred", "wall_ms", "pass"});
  for (const scenario::RunResult& result : results) {
    const scenario::ScoreSummary& s = result.summary;
    all_latencies.insert(all_latencies.end(), s.latencies.begin(),
                         s.latencies.end());
    table.add_row({result.scenario.name,
                   s.latencies.empty()
                       ? "-"
                       : std::to_string(percentile(s.latencies, 0.50)),
                   s.latencies.empty()
                       ? "-"
                       : std::to_string(percentile(s.latencies, 0.95)),
                   TextTable::num(s.fpr, 3), std::to_string(s.files_lost),
                   std::to_string(s.fleet.totals.deferred),
                   TextTable::num(result.wall_ms, 1),
                   result.gates.pass() ? "yes" : "NO"});
    gates_ok = gates_ok && result.gates.pass();
  }
  table.print(std::cout);
  std::sort(all_latencies.begin(), all_latencies.end());
  std::cout << "corpus: " << results.size() << " scenarios, latency p50 "
            << percentile(all_latencies, 0.50) << " / p95 "
            << percentile(all_latencies, 0.95) << " calls ("
            << (tiny ? "tiny" : "full") << " model)\n";

  // --- BENCH_scenarios.json ----------------------------------------------
  JsonWriter json;
  json.begin_object();
  json.field("bench", "scenarios");
  json.key("config");
  json.begin_object();
  json.field("tiny", tiny);
  json.field("scenarios", static_cast<std::uint64_t>(results.size()));
  json.field("model_test_accuracy",
             results.empty() ? 0.0 : results.front().model_test_accuracy);
  json.end_object();
  json.field("latency_p50", percentile(all_latencies, 0.50));
  json.field("latency_p95", percentile(all_latencies, 0.95));
  json.key("scenarios");
  json.begin_array();
  for (const scenario::RunResult& result : results) {
    const scenario::ScoreSummary& s = result.summary;
    json.begin_object();
    json.field("name", result.scenario.name);
    json.field("digest", scenario::format_digest(result.digest));
    json.field("attacks", s.attacks);
    json.field("detected", s.detected);
    json.field("latency_p50", percentile(s.latencies, 0.50));
    json.field("latency_p95", percentile(s.latencies, 0.95));
    json.field("fpr", s.fpr);
    json.field("files_lost", s.files_lost);
    json.field("false_positives", s.false_positives);
    json.field("deferred", s.fleet.totals.deferred);
    json.field("failovers", s.fleet.failovers);
    json.field("rollouts", s.fleet.rollouts);
    json.field("conservation_ok", s.fleet.conservation_ok());
    json.field("pass", result.gates.pass());
    json.field("wall_ms", result.wall_ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_scenarios.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\nscenarios -> " << json_path << "\n";
  bench::dump_metrics_json("bench_scenarios");

  if (!gates_ok) {
    std::cerr << "SCENARIO QUALITY GATES FAILED\n";
    return 1;
  }
  return 0;
}
