// Ablation: number of parallel kernel_gates compute units (the paper fixes
// four, one per LSTM gate, and copies x_t / h_{t-1} so "each CU has its
// own copies"). With fewer CUs the four gate vectors are computed in
// ceil(4/count) serialized rounds.
#include <iostream>

#include "bench_util.hpp"
#include "kernels/engine.hpp"

int main() {
  using namespace csdml;
  bench::print_header("Ablation — gate compute-unit count (per-item time, us)");

  const nn::LstmConfig config;
  Rng rng(11);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);

  TextTable table({"optimization", "CUs", "preprocess", "gates", "hidden",
                   "total_us", "fpga_util"});
  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    for (const std::uint32_t cus : {1u, 2u, 4u}) {
      csd::SmartSsd board{csd::SmartSsdConfig{}};
      xrt::Device device{board};
      kernels::CsdLstmEngine engine(
          device, config, params,
          kernels::EngineConfig{.level = level, .gate_cu_count = cus});
      const kernels::KernelTimings t = engine.per_item_timings();
      table.add_row({kernels::optimization_name(level), std::to_string(cus),
                     TextTable::num(t.preprocess.as_microseconds()),
                     TextTable::num(t.gates.as_microseconds()),
                     TextTable::num(t.hidden_state.as_microseconds()),
                     TextTable::num(t.total().as_microseconds()),
                     TextTable::num(engine.fpga_utilization(), 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe paper's configuration is 4 CUs: gate time equals the\n"
               "slowest single CU instead of 4 serialized gate evaluations.\n"
               "CU parallelism pays off for the float pipelines (vanilla: 9.9\n"
               "-> 7.5 us). In the fully optimized fixed-point design the\n"
               "gates are so cheap that the x_t/h_t fan-out copies dominate —\n"
               "an AXI-pressure effect the paper itself flags in Section III-C.\n";
  return 0;
}
