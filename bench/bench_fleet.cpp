// Fleet benchmark: the multi-board serving layer under scale-out,
// failover, and coordinated weight rollout.
//
// Three measurement groups, one BENCH_fleet.json:
//   scaling   the same workload through fleets of 1/2/4/8 boards —
//             aggregate ingest rate plus the per-run conservation check.
//             On a small host the boards' coalescer threads share cores,
//             so the curve is about *capacity isolation*, not linear
//             speedup; hw_threads is recorded so readers can judge.
//   failover  kill the board that owns a known-busy pid, measure the
//             kill→unhealthy-latch lag, the drain-and-rehash pause, the
//             kill→every-migrated-deferral-resolved recovery time, and
//             the revive→readmission probe time.
//   rollout   canary-gated weight flip across the fleet (total pause,
//             canary share, slowest single-board flip) plus the gate
//             drill: a rollout attempted while the canary board is dead
//             must be rejected with the fleet version unchanged.
//
// Emits BENCH_fleet.json (into CSDML_METRICS_OUT when set, else the
// working directory). `--tiny` shrinks everything for CI smoke.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "serve/fleet.hpp"

namespace {

using namespace csdml;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct Workload {
  nn::LstmConfig model;
  detect::DetectorConfig detector;
  std::size_t calls_per_process{0};
  std::size_t tail{64};  ///< extra tokens for post-failover resolution laps
  std::vector<std::vector<nn::TokenId>> streams;  ///< index p → pid p + 1
};

detect::ProcessId pid_of(std::size_t process_index) {
  return static_cast<detect::ProcessId>(process_index + 1);
}

serve::FleetConfig fleet_config_for(const Workload& work, std::size_t boards) {
  serve::FleetConfig config;
  config.boards = boards;
  config.health_check_interval = 0;  // sweeps are explicit: the bench paces them
  config.serve.detector = work.detector;
  config.engine =
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint};
  // The bench blasts tokens with no pacing, so queueing delay dominates
  // ingest-to-verdict latency; a generous budget keeps every failover in
  // this bench latch-driven (deterministic), never SLO-burn-driven.
  config.slo.latency_slo_us = 10'000'000.0;
  return config;
}

/// Feeds calls [begin, end) of every stream round-robin across two
/// ingestion threads.
void feed(serve::BoardFleet& fleet, const Workload& work, std::size_t begin,
          std::size_t end) {
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 2; ++t) {
    workers.emplace_back([&fleet, &work, begin, end, t] {
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t p = t; p < work.streams.size(); p += 2) {
          fleet.ingest(pid_of(p), work.streams[p][i]);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

struct ScaleRun {
  std::size_t boards{0};
  double elapsed_s{0.0};
  double calls_per_sec{0.0};
  serve::BoardFleet::Stats stats;
};

ScaleRun run_scale(const Workload& work, const nn::LstmParams& params,
                   std::size_t boards) {
  obs::registry().reset();
  serve::BoardFleet fleet(work.model, params, fleet_config_for(work, boards),
                          [](const serve::Verdict&) {});
  const auto start = Clock::now();
  feed(fleet, work, 0, work.calls_per_process);
  fleet.flush();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();
  fleet.stop();

  ScaleRun run;
  run.boards = boards;
  run.elapsed_s = elapsed;
  run.calls_per_sec =
      static_cast<double>(work.streams.size() * work.calls_per_process) /
      elapsed;
  run.stats = fleet.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  Workload work;
  if (tiny) {
    work.model.vocab_size = 41;
    work.model.embed_dim = 8;
    work.model.hidden_dim = 16;
    work.detector = detect::DetectorConfig{.window_length = 20, .hop = 5,
                                           .consecutive_alerts = 2};
    work.calls_per_process = 80;
  } else {
    work.detector = detect::DetectorConfig{.window_length = 100, .hop = 25,
                                           .consecutive_alerts = 2};
    work.calls_per_process = 400;
  }
  const std::size_t processes = tiny ? 8 : 24;
  Rng token_rng(99);
  for (std::size_t p = 0; p < processes; ++p) {
    std::vector<nn::TokenId> stream;
    stream.reserve(work.calls_per_process + work.tail);
    for (std::size_t i = 0; i < work.calls_per_process + work.tail; ++i) {
      stream.push_back(static_cast<nn::TokenId>(
          token_rng.uniform_int(0, work.model.vocab_size - 1)));
    }
    work.streams.push_back(std::move(stream));
  }
  Rng rng(31);
  const nn::LstmParams params = nn::LstmParams::glorot(work.model, rng);

  bench::print_header("Board fleet (placement, failover, rollout)");
  std::cout << "processes=" << processes << " calls=" << work.calls_per_process
            << " window=" << work.detector.window_length
            << " hop=" << work.detector.hop
            << " hw_threads=" << std::thread::hardware_concurrency()
            << (tiny ? "  [tiny smoke]" : "") << "\n";

  // --- scaling over board counts ---------------------------------------
  const std::vector<std::size_t> board_counts = {1, 2, 4, 8};
  std::vector<ScaleRun> scale_runs;
  bool conservation_all = true;
  for (const std::size_t boards : board_counts) {
    scale_runs.push_back(run_scale(work, params, boards));
    conservation_all =
        conservation_all && scale_runs.back().stats.conservation_ok();
  }
  TextTable scale_table(
      {"boards", "calls_s", "verdicts", "batches", "conservation"});
  for (const ScaleRun& run : scale_runs) {
    scale_table.add_row({std::to_string(run.boards),
                         TextTable::num(run.calls_per_sec, 0),
                         std::to_string(run.stats.totals.verdicts),
                         std::to_string(run.stats.totals.batches),
                         run.stats.conservation_ok() ? "ok" : "VIOLATED"});
  }
  scale_table.print(std::cout);
  if (!conservation_all) {
    std::cerr << "SCALING CONSERVATION VIOLATED (see table)\n";
    return 1;
  }

  // --- failover recovery -----------------------------------------------
  obs::registry().reset();
  serve::BoardFleet fleet(work.model, params, fleet_config_for(work, 4),
                          [](const serve::Verdict&) {});
  const std::size_t half = work.calls_per_process / 2;
  feed(fleet, work, 0, half);
  fleet.flush();

  // Kill the board that owns pid 1 — a stream we know keeps flowing.
  const std::size_t victim = fleet.board_of(pid_of(0));
  const auto kill_at = Clock::now();
  fleet.kill_board(victim);
  // Latch lag: traffic keeps flowing until the victim's next batch
  // exhausts its retries.
  std::size_t fed = half;
  while (fed < work.calls_per_process && fleet.engine(victim).healthy()) {
    feed(fleet, work, fed, fed + work.detector.hop);
    fed += work.detector.hop;
    fleet.flush();
  }
  const double kill_to_latch_us = us_since(kill_at);
  const bool latched = !fleet.engine(victim).healthy();

  // The drain: one sweep flushes the victim, exports its processes, and
  // rehashes them onto the survivors. This is the ingest-visible pause.
  const auto drain_at = Clock::now();
  fleet.check_health();
  const double drain_us = us_since(drain_at);

  // Recovery: feed until every migrated deferral has its re-served
  // verdict on the destination board.
  double kill_to_resolved_us = us_since(kill_at);
  for (std::size_t i = fed; i < work.calls_per_process + work.tail; ++i) {
    serve::BoardFleet::Stats stats = fleet.stats();
    if (stats.failover_resolved()) break;
    feed(fleet, work, i, i + 1);
    fleet.flush();
    kill_to_resolved_us = us_since(kill_at);
  }
  serve::BoardFleet::Stats failover_stats = fleet.stats();

  // Re-admission: detach the kill plan; the next sweep's recovery probe
  // brings the board back into the ring.
  fleet.revive_board(victim);
  const auto revive_at = Clock::now();
  // Two sweeps cover both shapes: if the victim is still in the ring with
  // its latch set (it never drained), the first sweep drains it; the next
  // sweep's recovery probe then re-admits it.
  fleet.check_health();
  if (!fleet.board_healthy(victim)) fleet.check_health();
  const double readmit_us = us_since(revive_at);
  const bool readmitted = fleet.board_healthy(victim);
  fleet.stop();

  std::cout << "failover: victim=board" << victim
            << " latch=" << TextTable::num(kill_to_latch_us, 0) << "us"
            << " drain=" << TextTable::num(drain_us, 0) << "us"
            << " resolved=" << TextTable::num(kill_to_resolved_us, 0) << "us"
            << " readmit=" << TextTable::num(readmit_us, 0) << "us"
            << " migrations=" << failover_stats.migrations
            << " migrated_pending=" << failover_stats.migrated_pending
            << " resolved=" << failover_stats.totals.migrated_resolved << "\n";
  if (!latched || failover_stats.failovers == 0 ||
      !failover_stats.conservation_ok() || !failover_stats.failover_resolved() ||
      !readmitted) {
    std::cerr << "FAILOVER DRILL FAILED (latched=" << latched
              << " failovers=" << failover_stats.failovers
              << " conservation=" << failover_stats.conservation_ok()
              << " resolved=" << failover_stats.failover_resolved()
              << " readmitted=" << readmitted << ")\n";
    return 1;
  }

  // --- coordinated rollout ----------------------------------------------
  obs::registry().reset();
  serve::BoardFleet rollout_fleet(work.model, params,
                                  fleet_config_for(work, 4),
                                  [](const serve::Verdict&) {});
  feed(rollout_fleet, work, 0, work.detector.window_length + work.detector.hop);
  rollout_fleet.flush();
  Rng rollout_rng(32);
  const nn::LstmParams next_params =
      nn::LstmParams::glorot(work.model, rollout_rng);
  const serve::RolloutReport rollout = rollout_fleet.update_weights(next_params);
  double max_board_us = 0.0;
  for (const double us : rollout.per_board_us) {
    max_board_us = std::max(max_board_us, us);
  }

  // Gate drill: kill the canary board, attempt another rollout — it must
  // be rejected (canary cannot vouch) and the version must not move.
  const std::uint64_t version_before = rollout_fleet.weight_version();
  rollout_fleet.kill_board(0);
  std::size_t gate_fed = 0;
  while (gate_fed < work.calls_per_process &&
         rollout_fleet.engine(0).healthy()) {
    feed(rollout_fleet, work, gate_fed, gate_fed + work.detector.hop);
    gate_fed += work.detector.hop;
    rollout_fleet.flush();
  }
  Rng gate_rng(33);
  const serve::RolloutReport gate =
      rollout_fleet.update_weights(nn::LstmParams::glorot(work.model, gate_rng));
  const bool gate_held = !gate.ok && !gate.canary_ok &&
                         rollout_fleet.weight_version() == version_before;
  rollout_fleet.stop();

  std::cout << "rollout: ok=" << rollout.ok << " version=" << rollout.version
            << " total=" << TextTable::num(rollout.total_us, 0) << "us"
            << " canary=" << TextTable::num(rollout.canary_us, 0) << "us"
            << " max_board=" << TextTable::num(max_board_us, 0) << "us"
            << "  canary-gate " << (gate_held ? "held" : "LEAKED") << "\n";
  if (!rollout.ok || !rollout.canary_ok || !gate_held) {
    std::cerr << "ROLLOUT DRILL FAILED\n";
    return 1;
  }

  // --- BENCH_fleet.json --------------------------------------------------
  JsonWriter json;
  json.begin_object();
  json.field("bench", "fleet");
  json.key("config");
  json.begin_object();
  json.field("processes", processes);
  json.field("calls_per_process", work.calls_per_process);
  json.field("window", work.detector.window_length);
  json.field("hop", work.detector.hop);
  json.field("hidden_dim", work.model.hidden_dim);
  json.field("hw_threads",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  json.field("tiny", tiny);
  json.end_object();
  json.key("scaling");
  json.begin_array();
  for (const ScaleRun& run : scale_runs) {
    json.begin_object();
    json.field("boards", static_cast<std::int64_t>(run.boards));
    json.field("calls_per_sec", run.calls_per_sec);
    json.field("verdicts", run.stats.totals.verdicts);
    json.field("batches", run.stats.totals.batches);
    json.field("conservation_ok", run.stats.conservation_ok());
    json.end_object();
  }
  json.end_array();
  json.key("failover");
  json.begin_object();
  json.field("victim_board", static_cast<std::int64_t>(victim));
  json.field("kill_to_latch_us", kill_to_latch_us);
  json.field("drain_and_rehash_us", drain_us);
  json.field("kill_to_resolved_us", kill_to_resolved_us);
  json.field("readmit_us", readmit_us);
  json.field("migrations", failover_stats.migrations);
  json.field("migrated_pending", failover_stats.migrated_pending);
  json.field("migrated_resolved", failover_stats.totals.migrated_resolved);
  json.field("conservation_ok", failover_stats.conservation_ok());
  json.field("readmitted", readmitted);
  json.end_object();
  json.key("rollout");
  json.begin_object();
  json.field("boards", static_cast<std::int64_t>(std::size_t{4}));
  json.field("ok", rollout.ok);
  json.field("canary_ok", rollout.canary_ok);
  json.field("version", rollout.version);
  json.field("total_us", rollout.total_us);
  json.field("canary_us", rollout.canary_us);
  json.field("max_board_us", max_board_us);
  json.field("canary_gate_held", gate_held);
  json.end_object();
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_fleet.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\nfleet -> " << json_path << "\n";
  bench::dump_metrics_json("bench_fleet");
  return 0;
}
