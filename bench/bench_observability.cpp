// Observability overhead: what request-scoped tracing and the flight
// recorder cost on the inference hot path.
//
// Runs the same engine.infer stream twice — spans disabled, then enabled
// (each classification then opens a trace with ~6 spans and string names)
// — and reports the wall-clock delta. Also measures the per-event cost of
// FlightRecorder::record, which hot paths call unconditionally. Emits
// BENCH_observability.json (into CSDML_METRICS_OUT when set); `--tiny`
// shrinks the stream for CI. The acceptance bar: tracing must stay a
// single-digit-percent tax, since it is on by default in every campaign.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "kernels/engine.hpp"
#include "obs/flight_recorder.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Run {
  double wall_seconds{0.0};
  double inferences_per_sec{0.0};
  std::size_t spans_recorded{0};
};

/// Interleaves the two modes in alternating blocks so slow drift in machine
/// load (noisy-neighbour CI runners) charges both sides equally instead of
/// whichever mode ran second.
void run_interleaved(csdml::kernels::CsdLstmEngine& engine,
                     const std::vector<csdml::nn::Sequence>& windows, Run& off,
                     Run& on) {
  using namespace csdml;
  obs::SpanTrace& spans = engine.span_trace();
  // Warmup: fault-free steady state, datapath tables hot.
  for (std::size_t i = 0; i < 16 && i < windows.size(); ++i) {
    (void)engine.infer(windows[i]);
  }
  spans.clear();

  const std::size_t block = 50;
  std::size_t inferences = 0;
  for (std::size_t base = 0; base < windows.size(); base += block) {
    const std::size_t end = std::min(base + block, windows.size());
    for (const bool spans_on : {false, true}) {
      spans.set_enabled(spans_on);
      const auto start = Clock::now();
      for (std::size_t i = base; i < end; ++i) {
        (void)engine.infer(windows[i]);
      }
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      (spans_on ? on : off).wall_seconds += elapsed;
    }
    inferences += end - base;
  }
  for (Run* run : {&off, &on}) {
    run->inferences_per_sec =
        run->wall_seconds > 0.0
            ? static_cast<double>(inferences) / run->wall_seconds
            : 0.0;
  }
  on.spans_recorded = spans.spans().size();
  spans.set_enabled(true);  // leave the board in its default state
}

}  // namespace

int main(int argc, char** argv) {
  using namespace csdml;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  nn::LstmConfig config;
  const std::size_t window = 100;
  const std::size_t iters = tiny ? 1'000 : 10'000;

  Rng rng(29);
  const nn::LstmParams params = nn::LstmParams::glorot(config, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, config, params,
                                kernels::EngineConfig{.batch_threads = 1});
  // Keep the retained-span buffer well under the iteration count so the
  // enabled run also pays the amortized trim, like a real campaign.
  engine.span_trace().set_retention(1u << 12);

  std::vector<nn::Sequence> windows(iters);
  Rng token_rng(31);
  for (nn::Sequence& sequence : windows) {
    sequence.resize(window);
    for (nn::TokenId& token : sequence) {
      token = static_cast<nn::TokenId>(
          token_rng.uniform_int(0, config.vocab_size - 1));
    }
  }

  bench::print_header("Observability overhead (request spans + flight recorder)");
  std::cout << "vocab=" << config.vocab_size << " hidden=" << config.hidden_dim
            << " window=" << window << " iters=" << iters
            << (tiny ? "  [tiny smoke]" : "") << "\n";

  Run off, on;
  run_interleaved(engine, windows, off, on);
  const double overhead_pct =
      off.wall_seconds > 0.0
          ? (on.wall_seconds - off.wall_seconds) / off.wall_seconds * 100.0
          : 0.0;

  // Flight-recorder append cost, measured alone: hot paths record into the
  // ring unconditionally, so this must stay in the tens of nanoseconds.
  obs::FlightRecorder recorder(1u << 10);
  const std::size_t flight_iters = tiny ? 200'000 : 2'000'000;
  const auto flight_start = Clock::now();
  for (std::size_t i = 0; i < flight_iters; ++i) {
    recorder.record(obs::FlightEventKind::Fault, "bench", "event",
                    TimePoint{static_cast<std::int64_t>(i)}, i, i);
  }
  const double flight_elapsed =
      std::chrono::duration<double>(Clock::now() - flight_start).count();
  const double flight_ns =
      flight_elapsed / static_cast<double>(flight_iters) * 1e9;

  TextTable table({"mode", "wall_s", "inferences_per_s", "spans_retained"});
  table.add_row({"spans off", TextTable::num(off.wall_seconds, 3),
                 TextTable::num(off.inferences_per_sec, 0),
                 std::to_string(off.spans_recorded)});
  table.add_row({"spans on", TextTable::num(on.wall_seconds, 3),
                 TextTable::num(on.inferences_per_sec, 0),
                 std::to_string(on.spans_recorded)});
  table.print(std::cout);
  std::cout << "tracing overhead " << TextTable::num(overhead_pct, 2)
            << "%  flight record " << TextTable::num(flight_ns, 1)
            << " ns/event\n";

  JsonWriter json;
  json.begin_object();
  json.field("bench", "observability");
  json.key("config");
  json.begin_object();
  json.field("vocab_size", static_cast<std::int64_t>(config.vocab_size));
  json.field("hidden_dim", config.hidden_dim);
  json.field("window", window);
  json.field("iters", iters);
  json.field("tiny", tiny);
  json.end_object();
  json.key("spans_off");
  json.begin_object();
  json.field("wall_seconds", off.wall_seconds);
  json.field("inferences_per_sec", off.inferences_per_sec);
  json.end_object();
  json.key("spans_on");
  json.begin_object();
  json.field("wall_seconds", on.wall_seconds);
  json.field("inferences_per_sec", on.inferences_per_sec);
  json.field("spans_retained", on.spans_recorded);
  json.end_object();
  json.field("tracing_overhead_pct", overhead_pct);
  json.field("flight_record_ns", flight_ns);
  json.end_object();

  const char* out_dir = std::getenv("CSDML_METRICS_OUT");
  if (out_dir != nullptr && *out_dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);  // best effort
  }
  const std::string json_path =
      (out_dir != nullptr && *out_dir != '\0' ? std::string(out_dir) + "/"
                                              : std::string()) +
      "BENCH_observability.json";
  {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << '\n';
  }
  std::cout << "\nobservability -> " << json_path << "\n";
  bench::dump_metrics_json("bench_observability");
  return 0;
}
