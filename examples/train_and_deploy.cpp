// train_and_deploy: the paper's full offline-to-in-storage pipeline with
// every artefact made explicit:
//
//   CSV dataset (n+1 columns) -> trained LSTM -> weight text file ->
//   host program ingests the file -> FPGA binary choice (vanilla / II /
//   fixed-point) -> P2P inference from data resident on the SSD.
//
//   $ ./build/examples/train_and_deploy [workdir]
#include <filesystem>
#include <iostream>

#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "nn/weights_io.hpp"
#include "ransomware/dataset_builder.hpp"

int main(int argc, char** argv) {
  using namespace csdml;
  const std::filesystem::path workdir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "csdml_demo";
  std::filesystem::create_directories(workdir);

  // --- dataset as CSV, the trainer's interchange format -----------------
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 500;
  spec.benign_windows = 588;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  const std::string csv_path = (workdir / "api_sequences.csv").string();
  nn::write_dataset_csv(built.data, csv_path);
  const nn::SequenceDataset dataset = nn::read_dataset_csv(csv_path);
  std::cout << "wrote + reloaded " << csv_path << " (" << dataset.size()
            << " rows of " << dataset.sequences.front().size() + 1
            << " columns)\n";

  // --- offline training --------------------------------------------------
  Rng rng(11);
  const nn::TrainTestSplit split = nn::split_dataset(dataset, 0.2, rng);
  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 32;
  const nn::TrainResult result = nn::train(model, split.train, split.test, tc);
  std::cout << "trained " << model.params().total_parameter_count()
            << "-parameter model to accuracy " << result.best_test_accuracy
            << "\n";

  // --- weight text file (the deployment artefact) ------------------------
  const std::string weights_path = (workdir / "lstm_weights.txt").string();
  nn::save_weights_file(weights_path, config, model.params());
  const nn::ModelSnapshot snapshot = nn::load_weights_file(weights_path);
  std::cout << "exported weights to " << weights_path << "\n\n";

  // --- deploy each optimization level and compare ------------------------
  const nn::Sequence& sample = split.test.sequences.front();
  std::cout << "per-item timings by FPGA build (same weights, same device "
               "family):\n";
  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    csd::SmartSsd board{csd::SmartSsdConfig{}};
    xrt::Device device{board};
    kernels::CsdLstmEngine engine(device, snapshot,
                                  kernels::EngineConfig{.level = level});
    const kernels::KernelTimings t = engine.per_item_timings();
    std::cout << "  " << kernels::optimization_name(level) << ": "
              << t.total().as_microseconds() << " us/item\n";
    if (level == kernels::OptimizationLevel::FixedPoint) {
      // The in-storage path: the window lives on the SSD and moves to the
      // FPGA peer-to-peer, never touching the host.
      const auto ssd_result = engine.infer_from_ssd(8192, 1, sample, true);
      std::cout << "  fixed-point P2P inference from SSD: transfer "
                << ssd_result.transfer_time.as_microseconds()
                << " us + sequence "
                << ssd_result.inference.device_time.as_microseconds()
                << " us -> p(ransomware) = "
                << ssd_result.inference.probability << '\n';
    }
  }
  return 0;
}
