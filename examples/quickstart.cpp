// Quickstart: train a small ransomware classifier, deploy it to the
// simulated SmartSSD, and classify API-call windows in storage.
//
//   $ ./build/examples/quickstart
//
// Walks the paper's whole loop in under a minute: synthetic Cuckoo-style
// dataset -> offline LSTM training -> fixed-point CSD engine -> inference.
#include <iostream>

#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;

  // 1. Build a small synthetic dataset (the paper's layout: length-100
  //    API-call windows, 46% ransomware).
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 400;
  spec.benign_windows = 470;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(1);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  std::cout << "dataset: " << built.data.size() << " windows, "
            << built.data.positive_fraction() * 100 << "% ransomware\n";

  // 2. Train the paper's 7,472-parameter LSTM offline.
  nn::LstmConfig config;  // vocab 278, embed 8, hidden 32, softsign
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  const nn::TrainResult result = nn::train(
      model, split.train, split.test, tc, [](const nn::EpochRecord& r) {
        std::cout << "  epoch " << r.epoch << ": test accuracy "
                  << r.test_accuracy << '\n';
      });
  std::cout << "trained to " << result.best_test_accuracy << " accuracy\n\n";

  // 3. Deploy to the CSD: simulated SmartSSD + XRT-style runtime + the
  //    fully optimized (fixed-point) kernel pipeline.
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, model.params(),
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  const kernels::KernelTimings timings = engine.per_item_timings();
  std::cout << "deployed on " << board.fpga().config().part.name
            << " at utilization " << engine.fpga_utilization() << "\n";
  std::cout << "per-item forward pass: " << timings.total().as_microseconds()
            << " us  (paper: 2.15133 us)\n\n";

  // 4. Classify one window of each class directly in storage.
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    static bool shown[2] = {false, false};
    const int label = split.test.labels[i];
    if (shown[label]) continue;
    shown[label] = true;
    const kernels::InferenceResult inference =
        engine.infer(split.test.sequences[i]);
    std::cout << (label == 1 ? "ransomware window" : "benign window    ")
              << " -> p(ransomware) = " << inference.probability
              << ", device time " << inference.device_time.as_microseconds()
              << " us\n";
    if (shown[0] && shown[1]) break;
  }
  return 0;
}
