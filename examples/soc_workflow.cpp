// soc_workflow: day-2 operations end to end.
//
//   1. Deploy the trained classifier across a 4-drive storage node.
//   2. A DriftMonitor watches live traffic against the training
//      distribution; a stealth strain (unknown to the model) appears and
//      the monitor raises a drift alarm.
//   3. The operator answers with the CTI loop: retrain on detonations of
//      the new strain + replay buffer, then hot-update every drive.
//   4. Verify: the strain is now caught, the stock workload still scans
//      clean, and every alert comes with an occlusion attribution.
//
//   $ ./build/examples/soc_workflow
#include <iostream>

#include "detect/attribution.hpp"
#include "detect/cti.hpp"
#include "detect/drift.hpp"
#include "host/node.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;

  // --- 1. offline training + fleet deployment ---------------------------
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 500;
  spec.benign_windows = 588;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(3);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 32;
  nn::train(model, split.train, split.test, tc);

  host::StorageNode node(nn::ModelSnapshot{config, model.params()},
                         host::NodeConfig{.drive_count = 4});
  std::cout << "deployed weight image v" << node.weight_version() << " to "
            << node.drive_count() << " drives; stock test accuracy "
            << nn::evaluate(model, split.test).accuracy() << "\n\n";

  // --- 2. drift monitoring over live traffic ----------------------------
  detect::DriftMonitor monitor(
      detect::category_distribution(built.data),
      detect::DriftConfig{.window_tokens = 2'000, .psi_threshold = 0.25,
                          .consecutive_windows = 2});

  const auto strain = detect::make_emerging_strain(
      ransomware::ransomware_families()[1], 7);
  const nn::SequenceDataset strain_traffic =
      detect::windows_from_strain(strain, 120, 100, 25, 11);

  std::size_t drift_at_window = 0;
  for (std::size_t w = 0; w < strain_traffic.size() && drift_at_window == 0;
       ++w) {
    for (const nn::TokenId token : strain_traffic.sequences[w]) {
      if (monitor.observe(token)) drift_at_window = w + 1;
    }
  }
  std::cout << "drift alarm after " << drift_at_window
            << " traffic windows (PSI " << monitor.last_psi()
            << " vs threshold 0.25)\n";

  const nn::SequenceDataset strain_eval =
      detect::windows_from_strain(strain, 60, 100, 37, 13);
  std::size_t caught_before = 0;
  for (const auto& w : strain_eval.sequences) {
    caught_before += model.predict(w) == 1;
  }
  std::cout << "strain recall before update: "
            << static_cast<double>(caught_before) / strain_eval.size() << "\n\n";

  // --- 3. CTI retraining + fleet hot update ------------------------------
  nn::TrainConfig fine_tune = tc;
  fine_tune.epochs = 8;
  fine_tune.learning_rate = 0.005;
  const detect::CtiUpdateReport report = detect::incorporate_strain(
      model, node.engine(0), strain, split.train, fine_tune);
  // Drive 0 was updated by incorporate_strain; roll the rest of the fleet.
  for (std::size_t d = 1; d < node.drive_count(); ++d) {
    node.engine(d).update_weights(model.params());
  }
  monitor.reset();
  std::cout << "CTI update applied: strain recall "
            << report.strain_recall_before << " -> "
            << report.strain_recall_after << ", replay accuracy "
            << report.replay_accuracy_after << ", fleet at weight image v"
            << node.weight_version() << "\n\n";

  // --- 4. verification + attribution -------------------------------------
  const host::ScanReport scan = node.scan(strain_eval.sequences);
  std::cout << "fleet re-scan of strain traffic: " << scan.flagged << "/"
            << scan.scanned << " flagged across " << node.drive_count()
            << " drives (makespan " << scan.makespan.as_microseconds()
            << " us)\n";

  for (std::size_t i = 0; i < strain_eval.size(); ++i) {
    if (scan.labels[i] == 1) {
      const detect::AttributionReport why = detect::attribute_window(
          model, strain_eval.sequences[i], {.top_k = 4});
      std::cout << "\nsample alert attribution (p=" << why.probability << "):\n";
      for (const auto& call : why.top_calls) {
        std::cout << "  [" << call.position << "] " << call.api_name << "  (+"
                  << call.contribution << ")\n";
      }
      break;
    }
  }
  return 0;
}
