// fleet_monitor: several SmartSSDs in one storage node (the paper:
// "allowing for the installation of multiple devices within a single
// node"), each running the classifier over the API-call archives stored
// on its own flash — in parallel, without touching the host CPU.
//
//   $ ./build/examples/fleet_monitor
#include <iomanip>
#include <iostream>
#include <vector>

#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

int main() {
  using namespace csdml;

  // Train once; the same weight snapshot deploys to every drive.
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 400;
  spec.benign_windows = 470;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(21);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  nn::train(model, split.train, split.test, tc);

  constexpr int kDrives = 4;
  struct Drive {
    std::unique_ptr<csd::SmartSsd> board;
    std::unique_ptr<xrt::Device> device;
    std::unique_ptr<kernels::CsdLstmEngine> engine;
    std::size_t scanned{0};
    std::size_t flagged{0};
    Duration busy{};
  };
  std::vector<Drive> fleet(kDrives);
  for (auto& drive : fleet) {
    drive.board = std::make_unique<csd::SmartSsd>(csd::SmartSsdConfig{});
    drive.device = std::make_unique<xrt::Device>(*drive.board);
    drive.engine = std::make_unique<kernels::CsdLstmEngine>(
        *drive.device, config, model.params(),
        kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  }

  // Shard the archive across the drives and scan in place via P2P.
  const std::size_t n = std::min<std::size_t>(split.test.size(), 200);
  for (std::size_t i = 0; i < n; ++i) {
    Drive& drive = fleet[i % kDrives];
    const auto result = drive.engine->infer_from_ssd(
        1024 + 64 * (i / kDrives), 1, split.test.sequences[i], /*p2p=*/true);
    ++drive.scanned;
    drive.flagged += result.inference.label == 1;
    drive.busy += result.transfer_time + result.inference.device_time;
  }

  std::cout << "fleet scan of " << n << " stored windows across " << kDrives
            << " SmartSSDs (P2P, zero host involvement):\n\n";
  std::cout << std::fixed << std::setprecision(1);
  Duration makespan{};
  for (int d = 0; d < kDrives; ++d) {
    const Drive& drive = fleet[static_cast<std::size_t>(d)];
    std::cout << "  drive " << d << ": scanned " << drive.scanned
              << ", flagged " << drive.flagged << ", busy "
              << drive.busy.as_microseconds() << " us\n";
    makespan = std::max(makespan, drive.busy);
  }
  // Each drive works independently, so node latency = slowest drive.
  Duration serial{};
  for (const auto& drive : fleet) serial += drive.busy;
  std::cout << "\nnode makespan " << makespan.as_microseconds()
            << " us vs single-drive serial scan " << serial.as_microseconds()
            << " us -> " << serial.as_microseconds() / makespan.as_microseconds()
            << "x from scale-out\n";
  return 0;
}
