// ransomware_guard: the paper's use case end-to-end — a CSD that watches
// the API calls of live processes and quarantines ransomware at the drive,
// blocking its encryption writes "near-instantaneously".
//
//   $ ./build/examples/ransomware_guard
//
// Replays a Wannacry sandbox trace and a handful of benign application
// traces as concurrent processes against a CsdGuard.
#include <iomanip>
#include <iostream>
#include <set>

#include "common/log.hpp"
#include "detect/attribution.hpp"
#include "detect/guarded_ssd.hpp"
#include "detect/mitigation.hpp"
#include "nn/train.hpp"
#include "ransomware/api_vocab.hpp"
#include "ransomware/dataset_builder.hpp"

namespace {

using namespace csdml;

const ransomware::FamilyProfile& family(const std::string& name) {
  for (const auto& f : ransomware::ransomware_families()) {
    if (f.name == name) return f;
  }
  throw Error("unknown family " + name);
}

}  // namespace

int main() {
  set_log_level(LogLevel::Info);

  // Offline phase: train the classifier on the synthetic corpus.
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = 500;
  spec.benign_windows = 588;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(3);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 32;
  const nn::TrainResult trained = nn::train(model, split.train, split.test, tc);
  std::cout << "offline model: accuracy " << trained.best_test_accuracy
            << " on held-out windows\n\n";

  // Deploy: SmartSSD + engine + guard (debounced quarantine policy).
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, model.params(),
      kernels::EngineConfig{.level = kernels::OptimizationLevel::FixedPoint});
  detect::CsdGuard guard(
      engine,
      detect::DetectorConfig{.window_length = 100, .hop = 25,
                             .consecutive_alerts = 3},
      detect::MitigationPolicy{.quarantine_threshold = 0.9,
                               .alert_threshold = 0.5});

  // The drive-side write path with copy-on-write pre-images: whatever the
  // malware encrypts before detection is rolled back on quarantine.
  detect::GuardedSsd guarded(board, guard);

  // Victim files on the drive before the attack.
  TimePoint now{};
  constexpr std::uint64_t kVictimLba = 5'000;
  constexpr int kVictimBlocks = 16;
  for (int b = 0; b < kVictimBlocks; ++b) {
    now = board.ssd().write(kVictimLba + static_cast<std::uint64_t>(b),
                            std::vector<std::uint8_t>(4'096, 0x11), now);
  }

  // Live phase: interleave a Wannacry process with benign workloads; every
  // WriteFile call becomes an encrypted overwrite of the next victim block.
  const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
  const auto malicious = sandbox.ransomware_trace(family("Wannacry"), 4, 2'500);
  const auto& benign_apps = ransomware::benign_profiles();
  std::vector<std::vector<nn::TokenId>> benign_traces;
  for (int i = 0; i < 3; ++i) {
    benign_traces.push_back(sandbox.benign_trace(benign_apps[static_cast<std::size_t>(i)], 7, 2'500));
  }

  const detect::ProcessId kMalware = 666;
  const auto& vocab = ransomware::ApiVocabulary::instance();
  const std::set<nn::TokenId> write_tokens = {
      vocab.require("WriteFile"), vocab.require("NtWriteFile"),
      vocab.require("CopyFileW"), vocab.require("MoveFileExW")};

  std::size_t quarantine_call = 0;
  std::size_t encrypted_before = 0;
  std::size_t writes_blocked = 0;
  for (std::size_t i = 0; i < malicious.size(); ++i) {
    // Malware stream (the guarded drive restores pre-images on quarantine).
    guarded.on_api_call(kMalware, malicious[i], now);
    if (write_tokens.contains(malicious[i])) {
      const auto result = guarded.write(
          kMalware, kVictimLba + encrypted_before % kVictimBlocks,
          std::vector<std::uint8_t>(4'096, 0xEE), now);
      if (result.accepted) {
        now = result.done;
        ++encrypted_before;
      } else {
        ++writes_blocked;
      }
    }
    if (quarantine_call == 0 && guard.is_quarantined(kMalware)) {
      quarantine_call = i + 1;
    }
    // Benign streams advance in lockstep.
    for (std::size_t b = 0; b < benign_traces.size(); ++b) {
      if (i < benign_traces[b].size()) {
        guarded.on_api_call(static_cast<detect::ProcessId>(b + 1),
                            benign_traces[b][i], now);
      }
    }
  }

  // How many victim blocks still hold their original data?
  std::size_t intact = 0;
  for (int b = 0; b < kVictimBlocks; ++b) {
    intact += board.ssd()
                  .read(kVictimLba + static_cast<std::uint64_t>(b), 1, now)
                  .data.front() == 0x11;
  }

  std::cout << "\n--- outcome ---\n";
  std::cout << "Wannacry quarantined after " << quarantine_call << " of "
            << malicious.size() << " API calls\n";
  std::cout << "blocks encrypted before quarantine: " << encrypted_before
            << ", writes blocked afterwards: " << writes_blocked << '\n';
  std::cout << "victim blocks intact after rollback: " << intact << "/"
            << kVictimBlocks << "  (pre-images restored: "
            << guarded.stats().blocks_restored << ")\n";
  for (std::size_t b = 0; b < benign_traces.size(); ++b) {
    std::cout << benign_apps[b].name << ": "
              << (guard.is_quarantined(static_cast<detect::ProcessId>(b + 1))
                      ? "QUARANTINED (false positive)"
                      : "running normally")
              << '\n';
  }
  // SOC triage: why was this process quarantined? Occlusion attribution
  // over the window that completed at the quarantine point.
  if (quarantine_call >= 100) {
    const nn::Sequence window(
        malicious.begin() + static_cast<std::ptrdiff_t>(quarantine_call - 100),
        malicious.begin() + static_cast<std::ptrdiff_t>(quarantine_call));
    const detect::AttributionReport why =
        detect::attribute_window(model, window, {.top_k = 5});
    std::cout << "\ntop contributing API calls (occlusion attribution, p="
              << why.probability << "):\n";
    for (const auto& call : why.top_calls) {
      std::cout << "  [" << call.position << "] " << call.api_name << "  (+"
                << call.contribution << ")\n";
    }
  }

  const detect::GuardStats& stats = guard.stats();
  std::cout << "\nguard stats: " << stats.calls_observed << " calls observed, "
            << guard.detector().classifications_run() << " classifications, "
            << stats.detections << " detections, " << stats.quarantines
            << " quarantines\n";
  std::cout << "device time spent classifying: " << std::fixed
            << std::setprecision(1)
            << guard.detector().device_time_spent().as_microseconds()
            << " us total\n";
  return 0;
}
