// Binary-classification metrics reported by the paper:
// accuracy 0.9833, precision 0.9789, recall 0.9890, F1 0.9840.
#pragma once

#include <cstddef>
#include <vector>

namespace csdml::nn {

struct ConfusionMatrix {
  std::size_t true_positive{0};
  std::size_t true_negative{0};
  std::size_t false_positive{0};
  std::size_t false_negative{0};

  void add(int actual, int predicted);
  std::size_t total() const;

  double accuracy() const;
  double precision() const;  ///< TP / (TP + FP); 0 when undefined
  double recall() const;     ///< TP / (TP + FN); 0 when undefined
  double f1() const;         ///< harmonic mean; 0 when undefined
};

/// Builds the confusion matrix from aligned label/prediction vectors.
ConfusionMatrix evaluate_predictions(const std::vector<int>& actual,
                                     const std::vector<int>& predicted);

/// One operating point of the detector.
struct RocPoint {
  double threshold{0.5};
  double true_positive_rate{0.0};   ///< recall
  double false_positive_rate{0.0};
};

/// ROC operating points at every distinct score (plus the endpoints),
/// sorted by descending threshold. Scores are P(positive).
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels);

/// Area under the ROC curve via the rank statistic (Mann–Whitney U),
/// with the standard tie correction. Requires both classes present.
double roc_auc(const std::vector<double>& scores, const std::vector<int>& labels);

/// Confusion matrix at an explicit decision threshold.
ConfusionMatrix confusion_at_threshold(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       double threshold);

}  // namespace csdml::nn
