#include "nn/weights_io.hpp"

#include <array>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace csdml::nn {
namespace {

constexpr const char* kMagic = "csdml-weights";
constexpr const char* kVersion = "v1";

void write_values(std::ostream& out, const double* values, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    out << (i ? " " : "") << values[i];
  }
  out << '\n';
}

std::string expect_token(std::istream& in, const char* what) {
  std::string token;
  if (!(in >> token)) throw ParseError(std::string("weight file truncated at ") + what);
  return token;
}

void expect_keyword(std::istream& in, const std::string& keyword) {
  const std::string token = expect_token(in, keyword.c_str());
  if (token != keyword) {
    throw ParseError("weight file: expected '" + keyword + "', got '" + token + "'");
  }
}

double read_value(std::istream& in, const char* what) {
  double value = 0.0;
  if (!(in >> value)) throw ParseError(std::string("weight file: bad number in ") + what);
  return value;
}

void read_values(std::istream& in, double* values, std::size_t count,
                 const char* what) {
  for (std::size_t i = 0; i < count; ++i) values[i] = read_value(in, what);
}

}  // namespace

void save_weights(std::ostream& out, const LstmConfig& config,
                  const LstmParams& params) {
  out << std::setprecision(17);
  out << kMagic << ' ' << kVersion << '\n';
  out << "activation "
      << (config.activation == CellActivation::Softsign ? "softsign" : "tanh")
      << '\n';
  out << "vocab " << config.vocab_size << '\n';
  out << "embed " << config.embed_dim << '\n';
  out << "hidden " << config.hidden_dim << '\n';

  out << "embedding\n";
  write_values(out, params.embedding.data(), params.embedding.size());
  for (std::size_t g = 0; g < kNumGates; ++g) {
    out << "kernel " << kGateNames[g] << '\n';
    write_values(out, params.w_x[g].data(), params.w_x[g].size());
    out << "recurrent " << kGateNames[g] << '\n';
    write_values(out, params.w_h[g].data(), params.w_h[g].size());
    out << "bias " << kGateNames[g] << '\n';
    write_values(out, params.bias[g].data(), params.bias[g].size());
  }
  out << "dense\n";
  write_values(out, params.dense_w.data(), params.dense_w.size());
  out << "dense_bias\n" << params.dense_b << '\n';
}

void save_weights_file(const std::string& path, const LstmConfig& config,
                       const LstmParams& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open weight file for writing: " + path);
  save_weights(out, config, params);
}

ModelSnapshot load_weights(std::istream& in) {
  expect_keyword(in, kMagic);
  const std::string version = expect_token(in, "version");
  if (version != kVersion) throw ParseError("unsupported weight file version " + version);

  LstmConfig config;
  expect_keyword(in, "activation");
  const std::string act = expect_token(in, "activation value");
  if (act == "softsign") config.activation = CellActivation::Softsign;
  else if (act == "tanh") config.activation = CellActivation::Tanh;
  else throw ParseError("unknown activation '" + act + "'");

  expect_keyword(in, "vocab");
  config.vocab_size = static_cast<TokenId>(read_value(in, "vocab"));
  expect_keyword(in, "embed");
  config.embed_dim = static_cast<std::size_t>(read_value(in, "embed"));
  expect_keyword(in, "hidden");
  config.hidden_dim = static_cast<std::size_t>(read_value(in, "hidden"));
  CSDML_REQUIRE(config.vocab_size > 0 && config.embed_dim > 0 && config.hidden_dim > 0,
                "weight file: invalid dimensions");

  LstmParams params = LstmParams::zeros(config);
  expect_keyword(in, "embedding");
  read_values(in, params.embedding.data(), params.embedding.size(), "embedding");
  for (std::size_t g = 0; g < kNumGates; ++g) {
    expect_keyword(in, "kernel");
    expect_keyword(in, kGateNames[g]);
    read_values(in, params.w_x[g].data(), params.w_x[g].size(), "kernel");
    expect_keyword(in, "recurrent");
    expect_keyword(in, kGateNames[g]);
    read_values(in, params.w_h[g].data(), params.w_h[g].size(), "recurrent");
    expect_keyword(in, "bias");
    expect_keyword(in, kGateNames[g]);
    read_values(in, params.bias[g].data(), params.bias[g].size(), "bias");
  }
  expect_keyword(in, "dense");
  read_values(in, params.dense_w.data(), params.dense_w.size(), "dense");
  expect_keyword(in, "dense_bias");
  params.dense_b = read_value(in, "dense_bias");

  return ModelSnapshot{config, std::move(params)};
}

ModelSnapshot load_weights_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open weight file: " + path);
  return load_weights(in);
}

namespace {
constexpr const char* kGruMagic = "csdml-gru-weights";
constexpr std::array<const char*, kNumGruGates> kGruGateNames{
    "update", "reset", "candidate"};
}  // namespace

void save_gru_weights(std::ostream& out, const GruConfig& config,
                      const GruParams& params) {
  out << std::setprecision(17);
  out << kGruMagic << ' ' << kVersion << '\n';
  out << "activation "
      << (config.activation == CellActivation::Softsign ? "softsign" : "tanh")
      << '\n';
  out << "vocab " << config.vocab_size << '\n';
  out << "embed " << config.embed_dim << '\n';
  out << "hidden " << config.hidden_dim << '\n';
  out << "embedding\n";
  write_values(out, params.embedding.data(), params.embedding.size());
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    out << "kernel " << kGruGateNames[g] << '\n';
    write_values(out, params.w_x[g].data(), params.w_x[g].size());
    out << "recurrent " << kGruGateNames[g] << '\n';
    write_values(out, params.w_h[g].data(), params.w_h[g].size());
    out << "bias " << kGruGateNames[g] << '\n';
    write_values(out, params.bias[g].data(), params.bias[g].size());
  }
  out << "dense\n";
  write_values(out, params.dense_w.data(), params.dense_w.size());
  out << "dense_bias\n" << params.dense_b << '\n';
}

void save_gru_weights_file(const std::string& path, const GruConfig& config,
                           const GruParams& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open weight file for writing: " + path);
  save_gru_weights(out, config, params);
}

GruModelSnapshot load_gru_weights(std::istream& in) {
  expect_keyword(in, kGruMagic);
  const std::string version = expect_token(in, "version");
  if (version != kVersion) throw ParseError("unsupported weight file version " + version);

  GruConfig config;
  expect_keyword(in, "activation");
  const std::string act = expect_token(in, "activation value");
  if (act == "softsign") config.activation = CellActivation::Softsign;
  else if (act == "tanh") config.activation = CellActivation::Tanh;
  else throw ParseError("unknown activation '" + act + "'");

  expect_keyword(in, "vocab");
  config.vocab_size = static_cast<TokenId>(read_value(in, "vocab"));
  expect_keyword(in, "embed");
  config.embed_dim = static_cast<std::size_t>(read_value(in, "embed"));
  expect_keyword(in, "hidden");
  config.hidden_dim = static_cast<std::size_t>(read_value(in, "hidden"));
  CSDML_REQUIRE(config.vocab_size > 0 && config.embed_dim > 0 && config.hidden_dim > 0,
                "weight file: invalid dimensions");

  GruParams params = GruParams::zeros(config);
  expect_keyword(in, "embedding");
  read_values(in, params.embedding.data(), params.embedding.size(), "embedding");
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    expect_keyword(in, "kernel");
    expect_keyword(in, kGruGateNames[g]);
    read_values(in, params.w_x[g].data(), params.w_x[g].size(), "kernel");
    expect_keyword(in, "recurrent");
    expect_keyword(in, kGruGateNames[g]);
    read_values(in, params.w_h[g].data(), params.w_h[g].size(), "recurrent");
    expect_keyword(in, "bias");
    expect_keyword(in, kGruGateNames[g]);
    read_values(in, params.bias[g].data(), params.bias[g].size(), "bias");
  }
  expect_keyword(in, "dense");
  read_values(in, params.dense_w.data(), params.dense_w.size(), "dense");
  expect_keyword(in, "dense_bias");
  params.dense_b = read_value(in, "dense_bias");
  return GruModelSnapshot{config, std::move(params)};
}

GruModelSnapshot load_gru_weights_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("cannot open weight file: " + path);
  return load_gru_weights(in);
}

}  // namespace csdml::nn
