#include "nn/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace csdml::nn {

void ConfusionMatrix::add(int actual, int predicted) {
  CSDML_REQUIRE((actual == 0 || actual == 1) && (predicted == 0 || predicted == 1),
                "labels must be binary");
  if (actual == 1) {
    if (predicted == 1) ++true_positive;
    else ++false_negative;
  } else {
    if (predicted == 1) ++false_positive;
    else ++true_negative;
  }
}

std::size_t ConfusionMatrix::total() const {
  return true_positive + true_negative + false_positive + false_negative;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  CSDML_REQUIRE(n > 0, "accuracy of empty confusion matrix");
  return static_cast<double>(true_positive + true_negative) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const std::size_t denom = true_positive + false_positive;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const std::size_t denom = true_positive + false_negative;
  if (denom == 0) return 0.0;
  return static_cast<double>(true_positive) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

ConfusionMatrix evaluate_predictions(const std::vector<int>& actual,
                                     const std::vector<int>& predicted) {
  CSDML_REQUIRE(actual.size() == predicted.size(),
                "actual/predicted size mismatch");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < actual.size(); ++i) cm.add(actual[i], predicted[i]);
  return cm;
}

namespace {

void validate_scored(const std::vector<double>& scores,
                     const std::vector<int>& labels) {
  CSDML_REQUIRE(scores.size() == labels.size(), "scores/labels size mismatch");
  CSDML_REQUIRE(!scores.empty(), "empty score set");
  bool has_positive = false;
  bool has_negative = false;
  for (const int label : labels) {
    CSDML_REQUIRE(label == 0 || label == 1, "labels must be binary");
    (label == 1 ? has_positive : has_negative) = true;
  }
  CSDML_REQUIRE(has_positive && has_negative,
                "ROC needs both classes present");
}

}  // namespace

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels) {
  validate_scored(scores, labels);
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  const auto positives = static_cast<double>(
      std::count(labels.begin(), labels.end(), 1));
  const double negatives = static_cast<double>(labels.size()) - positives;

  std::vector<RocPoint> curve;
  curve.push_back(RocPoint{std::numeric_limits<double>::infinity(), 0.0, 0.0});
  double tp = 0.0;
  double fp = 0.0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    (labels[order[k]] == 1 ? tp : fp) += 1.0;
    // Emit a point only after the last sample of a tied score group.
    const bool last_of_group =
        k + 1 == order.size() || scores[order[k + 1]] != scores[order[k]];
    if (last_of_group) {
      curve.push_back(
          RocPoint{scores[order[k]], tp / positives, fp / negatives});
    }
  }
  return curve;
}

double roc_auc(const std::vector<double>& scores, const std::vector<int>& labels) {
  validate_scored(scores, labels);
  // Rank-sum with average ranks for ties.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double average_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                                    2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = average_rank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  double positives = 0.0;
  for (std::size_t k = 0; k < labels.size(); ++k) {
    if (labels[k] == 1) {
      positive_rank_sum += rank[k];
      positives += 1.0;
    }
  }
  const double negatives = static_cast<double>(labels.size()) - positives;
  const double u = positive_rank_sum - positives * (positives + 1.0) / 2.0;
  return u / (positives * negatives);
}

ConfusionMatrix confusion_at_threshold(const std::vector<double>& scores,
                                       const std::vector<int>& labels,
                                       double threshold) {
  CSDML_REQUIRE(scores.size() == labels.size(), "scores/labels size mismatch");
  ConfusionMatrix cm;
  for (std::size_t k = 0; k < scores.size(); ++k) {
    cm.add(labels[k], scores[k] >= threshold ? 1 : 0);
  }
  return cm;
}

}  // namespace csdml::nn
