#include "nn/lstm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "fixed/activations.hpp"

namespace csdml::nn {

double apply_cell_activation(CellActivation activation, double x) {
  switch (activation) {
    case CellActivation::Tanh: return std::tanh(x);
    case CellActivation::Softsign: return fixedpt::softsign(x);
  }
  throw PreconditionError("unknown activation");
}

double cell_activation_derivative(CellActivation activation, double x) {
  switch (activation) {
    case CellActivation::Tanh: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
    case CellActivation::Softsign: return fixedpt::softsign_derivative(x);
  }
  throw PreconditionError("unknown activation");
}

LstmParams LstmParams::zeros(const LstmConfig& config) {
  CSDML_REQUIRE(config.vocab_size > 0, "vocab_size must be positive");
  CSDML_REQUIRE(config.embed_dim > 0 && config.hidden_dim > 0,
                "embed/hidden dims must be positive");
  LstmParams p;
  p.embedding = Matrix(static_cast<std::size_t>(config.vocab_size), config.embed_dim);
  for (std::size_t g = 0; g < kNumGates; ++g) {
    p.w_x[g] = Matrix(config.embed_dim, config.hidden_dim);
    p.w_h[g] = Matrix(config.hidden_dim, config.hidden_dim);
    p.bias[g] = Vector(config.hidden_dim, 0.0);
  }
  p.dense_w = Vector(config.hidden_dim, 0.0);
  p.dense_b = 0.0;
  return p;
}

LstmParams LstmParams::glorot(const LstmConfig& config, Rng& rng) {
  LstmParams p = zeros(config);
  p.embedding.glorot_init(rng);
  for (std::size_t g = 0; g < kNumGates; ++g) {
    p.w_x[g].glorot_init(rng);
    p.w_h[g].glorot_init(rng);
  }
  // Forget-gate bias at 1.0 is the standard LSTM trainability trick
  // (Jozefowicz et al., 2015); others stay zero.
  for (auto& b : p.bias[kForget]) b = 1.0;
  const double limit = std::sqrt(6.0 / static_cast<double>(config.hidden_dim + 1));
  for (auto& w : p.dense_w) w = rng.uniform(-limit, limit);
  return p;
}

std::vector<double*> LstmParams::parameter_pointers() {
  std::vector<double*> out;
  out.reserve(total_parameter_count());
  for (std::size_t i = 0; i < embedding.size(); ++i) out.push_back(embedding.data() + i);
  for (std::size_t g = 0; g < kNumGates; ++g) {
    for (std::size_t i = 0; i < w_x[g].size(); ++i) out.push_back(w_x[g].data() + i);
    for (std::size_t i = 0; i < w_h[g].size(); ++i) out.push_back(w_h[g].data() + i);
    for (auto& b : bias[g]) out.push_back(&b);
  }
  for (auto& w : dense_w) out.push_back(&w);
  out.push_back(&dense_b);
  return out;
}

std::size_t LstmParams::lstm_parameter_count() const {
  std::size_t count = 0;
  for (std::size_t g = 0; g < kNumGates; ++g) {
    count += w_x[g].size() + w_h[g].size() + bias[g].size();
  }
  return count;
}

std::size_t LstmParams::total_parameter_count() const {
  return embedding_parameter_count() + lstm_parameter_count() +
         dense_parameter_count();
}

LstmClassifier::LstmClassifier(LstmConfig config, Rng& rng)
    : config_(config), params_(LstmParams::glorot(config, rng)) {}

LstmClassifier::LstmClassifier(LstmConfig config, LstmParams params)
    : config_(config), params_(std::move(params)) {
  CSDML_REQUIRE(params_.embedding.rows() ==
                        static_cast<std::size_t>(config_.vocab_size) &&
                    params_.embedding.cols() == config_.embed_dim,
                "embedding shape does not match config");
  CSDML_REQUIRE(params_.dense_w.size() == config_.hidden_dim,
                "dense shape does not match config");
}

Vector LstmClassifier::embed(TokenId token) const {
  CSDML_REQUIRE(token >= 0 && token < config_.vocab_size,
                "token id outside vocabulary");
  const auto row = static_cast<std::size_t>(token);
  Vector x(config_.embed_dim);
  const double* src = params_.embedding.row(row);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = src[i];
  return x;
}

void LstmClassifier::step(const Vector& x, Vector& h, Vector& c,
                          StepCache* cache) const {
  const std::size_t hidden = config_.hidden_dim;
  CSDML_REQUIRE(x.size() == config_.embed_dim, "step: wrong input size");
  CSDML_REQUIRE(h.size() == hidden && c.size() == hidden, "step: wrong state size");

  std::array<Vector, kNumGates> preact;
  std::array<Vector, kNumGates> act;
  for (std::size_t g = 0; g < kNumGates; ++g) {
    preact[g] = params_.bias[g];  // start from the bias
    accumulate_vec_mat(x, params_.w_x[g], preact[g]);
    accumulate_vec_mat(h, params_.w_h[g], preact[g]);
    act[g].resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      act[g][j] = g == kCandidate
                      ? apply_cell_activation(config_.activation, preact[g][j])
                      : fixedpt::sigmoid(preact[g][j]);
    }
  }

  Vector new_c(hidden);
  Vector c_act(hidden);
  Vector new_h(hidden);
  for (std::size_t j = 0; j < hidden; ++j) {
    new_c[j] = act[kForget][j] * c[j] + act[kInput][j] * act[kCandidate][j];
    c_act[j] = apply_cell_activation(config_.activation, new_c[j]);
    new_h[j] = act[kOutput][j] * c_act[j];
  }

  if (cache != nullptr) {
    cache->x = x;
    cache->preact = preact;
    cache->act = act;
    cache->c = new_c;
    cache->h = new_h;
    cache->c_act = c_act;
  }
  c = std::move(new_c);
  h = std::move(new_h);
}

double LstmClassifier::forward(TokenSpan sequence, ForwardCache* cache) const {
  CSDML_REQUIRE(!sequence.empty(), "forward pass over empty sequence");
  const std::size_t hidden = config_.hidden_dim;
  Vector h(hidden, 0.0);
  Vector c(hidden, 0.0);
  if (cache != nullptr) {
    cache->steps.clear();
    cache->steps.reserve(sequence.size());
  }
  for (const TokenId token : sequence) {
    const Vector x = embed(token);
    if (cache != nullptr) {
      cache->steps.emplace_back();
      step(x, h, c, &cache->steps.back());
    } else {
      step(x, h, c, nullptr);
    }
  }
  const double logit = dot(params_.dense_w, h) + params_.dense_b;
  const double probability = fixedpt::sigmoid(logit);
  if (cache != nullptr) {
    cache->logit = logit;
    cache->probability = probability;
  }
  return probability;
}

int LstmClassifier::predict(TokenSpan sequence) const {
  return forward(sequence, nullptr) >= 0.5 ? 1 : 0;
}

}  // namespace csdml::nn
