// The paper's classifier: embedding lookup -> single LSTM layer -> dense
// head with sigmoid output, trained offline and then ported to the CSD.
//
// With the paper's configuration (vocabulary 278, embedding 8, hidden 32)
// the parameter counts match the paper exactly: 2,224 embedding
// parameters, 5,248 LSTM parameters (7,472 total) plus a 32-weight + 1-bias
// fully-connected layer.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/tensor.hpp"

namespace csdml::nn {

/// Activation applied to the candidate vector and the cell state. The
/// paper replaces tanh with softsign on the FPGA; training with the same
/// activation keeps the offline and in-storage models identical.
enum class CellActivation { Tanh, Softsign };

double apply_cell_activation(CellActivation activation, double x);
/// Derivative with respect to the pre-activation input.
double cell_activation_derivative(CellActivation activation, double x);

struct LstmConfig {
  TokenId vocab_size{278};
  std::size_t embed_dim{8};
  std::size_t hidden_dim{32};
  CellActivation activation{CellActivation::Softsign};
};

/// Gate indices; order fixed across weight files and kernels.
enum Gate : std::size_t { kInput = 0, kForget = 1, kCandidate = 2, kOutput = 3 };
inline constexpr std::size_t kNumGates = 4;
inline constexpr std::array<const char*, kNumGates> kGateNames{"input", "forget",
                                                               "candidate", "output"};

struct LstmParams {
  Matrix embedding;                       // vocab × embed
  std::array<Matrix, kNumGates> w_x;      // embed × hidden, per gate
  std::array<Matrix, kNumGates> w_h;      // hidden × hidden, per gate
  std::array<Vector, kNumGates> bias;     // hidden, per gate
  Vector dense_w;                         // hidden
  double dense_b{0.0};

  static LstmParams zeros(const LstmConfig& config);
  static LstmParams glorot(const LstmConfig& config, Rng& rng);

  /// Pointers to every scalar parameter in a stable, documented order
  /// (embedding row-major, then per-gate w_x, w_h, bias in Gate order,
  /// then dense weights, then dense bias). Optimisers iterate this.
  std::vector<double*> parameter_pointers();

  std::size_t embedding_parameter_count() const { return embedding.size(); }
  std::size_t lstm_parameter_count() const;
  std::size_t dense_parameter_count() const { return dense_w.size() + 1; }
  std::size_t total_parameter_count() const;
};

/// Per-timestep forward activations cached for BPTT.
struct StepCache {
  Vector x;                                // embedding of the consumed token
  std::array<Vector, kNumGates> preact;    // z = W_x x + W_h h_prev + b
  std::array<Vector, kNumGates> act;       // gate activations
  Vector c;                                // cell state after the step
  Vector h;                                // hidden state after the step
  Vector c_act;                            // cell activation of c
};

struct ForwardCache {
  std::vector<StepCache> steps;
  double logit{0.0};
  double probability{0.5};
};

class LstmClassifier {
 public:
  LstmClassifier(LstmConfig config, Rng& rng);
  LstmClassifier(LstmConfig config, LstmParams params);

  const LstmConfig& config() const { return config_; }
  const LstmParams& params() const { return params_; }
  LstmParams& mutable_params() { return params_; }

  /// Embedding lookup for one token (bounds-checked).
  Vector embed(TokenId token) const;

  /// One LSTM step. h/c are updated in place; returns the gate cache when
  /// `cache` is non-null.
  void step(const Vector& x, Vector& h, Vector& c, StepCache* cache) const;

  /// Full forward pass over a token window -> ransomware probability.
  /// Accepts any contiguous token view (e.g. a detect::TokenRing window)
  /// without copying. When `cache` is non-null every intermediate needed
  /// by BPTT is stored.
  double forward(TokenSpan sequence, ForwardCache* cache) const;

  /// Hard decision at threshold 0.5.
  int predict(TokenSpan sequence) const;

 private:
  LstmConfig config_;
  LstmParams params_;
};

}  // namespace csdml::nn
