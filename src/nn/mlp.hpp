// Bag-of-calls MLP — the non-sequential baseline.
//
// The paper's model-selection argument: non-sequential models "only
// analyze static snapshots of data", missing ordering and temporal
// dynamics. This classifier deliberately throws ordering away (a window
// becomes a normalised histogram of API-call frequencies) and feeds a
// one-hidden-layer network, so the model-selection ablation can measure
// exactly how much the ordering is worth on the ransomware task.
#pragma once

#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/tensor.hpp"
#include "nn/train.hpp"

namespace csdml::nn {

struct MlpConfig {
  TokenId vocab_size{278};
  std::size_t hidden_dim{24};  ///< sized to ~the LSTM's parameter budget
};

struct MlpParams {
  Matrix w1;        // vocab × hidden
  Vector b1;        // hidden
  Vector w2;        // hidden
  double b2{0.0};

  static MlpParams zeros(const MlpConfig& config);
  static MlpParams glorot(const MlpConfig& config, Rng& rng);
  std::vector<double*> parameter_pointers();
  std::size_t total_parameter_count() const;
};

class MlpClassifier {
 public:
  MlpClassifier(MlpConfig config, Rng& rng);

  const MlpConfig& config() const { return config_; }
  const MlpParams& params() const { return params_; }
  MlpParams& mutable_params() { return params_; }

  /// Normalised call-frequency histogram of a window.
  Vector featurize(const Sequence& sequence) const;

  double forward(const Sequence& sequence) const;
  int predict(const Sequence& sequence) const;

  /// BCE backward; accumulates into `grads`, returns loss.
  double backward(const Sequence& sequence, int label, MlpParams& grads) const;

 private:
  MlpConfig config_;
  MlpParams params_;
};

/// Same loop/optimizer/metrics as the LSTM trainer, over the MLP.
TrainResult train_mlp(MlpClassifier& model, const SequenceDataset& train_set,
                      const SequenceDataset& test_set, const TrainConfig& config);

}  // namespace csdml::nn
