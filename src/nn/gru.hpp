// GRU classifier — the sequential alternative to the paper's LSTM.
//
// The paper's model-selection section picks the LSTM for its long-term
// dependency handling and FPGA-friendly fixed cell parameters; a GRU has
// the same properties with 3 gates instead of 4 (25% fewer recurrent
// parameters and one fewer gate CU). This implementation exists so the
// model-selection ablation can measure what that trade is worth on the
// ransomware task.
#pragma once

#include <array>

#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/lstm.hpp"  // CellActivation, shared helpers
#include "nn/tensor.hpp"
#include "nn/train.hpp"

namespace csdml::nn {

struct GruConfig {
  TokenId vocab_size{278};
  std::size_t embed_dim{8};
  std::size_t hidden_dim{32};
  CellActivation activation{CellActivation::Softsign};
};

/// Gate order fixed across the implementation.
enum GruGate : std::size_t { kUpdate = 0, kReset = 1, kCandidateGate = 2 };
inline constexpr std::size_t kNumGruGates = 3;

struct GruParams {
  Matrix embedding;                          // vocab × embed
  std::array<Matrix, kNumGruGates> w_x;      // embed × hidden
  std::array<Matrix, kNumGruGates> w_h;      // hidden × hidden
  std::array<Vector, kNumGruGates> bias;     // hidden
  Vector dense_w;
  double dense_b{0.0};

  static GruParams zeros(const GruConfig& config);
  static GruParams glorot(const GruConfig& config, Rng& rng);

  std::vector<double*> parameter_pointers();
  std::size_t total_parameter_count() const;
  std::size_t recurrent_parameter_count() const;
};

/// Per-step cache for BPTT.
struct GruStepCache {
  Vector x;
  std::array<Vector, kNumGruGates> preact;
  std::array<Vector, kNumGruGates> act;  // z, r, candidate
  Vector reset_h;                        // r ⊙ h_prev
  Vector h;                              // state after the step
};

class GruClassifier {
 public:
  GruClassifier(GruConfig config, Rng& rng);
  GruClassifier(GruConfig config, GruParams params);

  const GruConfig& config() const { return config_; }
  const GruParams& params() const { return params_; }
  GruParams& mutable_params() { return params_; }

  Vector embed(TokenId token) const;
  void step(const Vector& x, Vector& h, GruStepCache* cache) const;
  double forward(const Sequence& sequence,
                 std::vector<GruStepCache>* cache) const;
  int predict(const Sequence& sequence) const;

 private:
  GruConfig config_;
  GruParams params_;
};

using GruGradients = GruParams;

/// BCE backward pass; accumulates into `grads`, returns the loss.
double gru_backward(const GruClassifier& model, const Sequence& sequence,
                    int label, GruGradients& grads);

/// Same loop/optimizer/metrics as the LSTM trainer, over the GRU.
TrainResult train_gru(GruClassifier& model, const SequenceDataset& train_set,
                      const SequenceDataset& test_set, const TrainConfig& config);

}  // namespace csdml::nn
