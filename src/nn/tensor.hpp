// Dense row-major matrix / vector math for the nn module.
//
// Sizes in this project are tiny (the paper's model is 7,472 parameters),
// so clarity beats blocking tricks; the hot loops are still written
// contiguously so the compiler can vectorise them.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace csdml::nn {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// He-style scaled uniform init in [-limit, limit], limit = sqrt(6/(fan_in+fan_out)).
  void glorot_init(Rng& rng);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double k);

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// out = M^T has no place here; we only ever need y = W^T x style products
/// expressed explicitly:

/// y[j] += sum_i x[i] * W(i, j)  — accumulate x through W (input on rows).
void accumulate_vec_mat(const Vector& x, const Matrix& w, Vector& y);

/// grad_W(i, j) += x[i] * dy[j]
void accumulate_outer(const Vector& x, const Vector& dy, Matrix& grad_w);

/// dx[i] += sum_j dy[j] * W(i, j)
void accumulate_mat_vec(const Matrix& w, const Vector& dy, Vector& dx);

/// Elementwise helpers.
void add_in_place(Vector& a, const Vector& b);
double dot(const Vector& a, const Vector& b);

}  // namespace csdml::nn
