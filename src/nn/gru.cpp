#include "nn/gru.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "fixed/activations.hpp"

namespace csdml::nn {

GruParams GruParams::zeros(const GruConfig& config) {
  CSDML_REQUIRE(config.vocab_size > 0 && config.embed_dim > 0 &&
                    config.hidden_dim > 0,
                "invalid GRU dimensions");
  GruParams p;
  p.embedding = Matrix(static_cast<std::size_t>(config.vocab_size), config.embed_dim);
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    p.w_x[g] = Matrix(config.embed_dim, config.hidden_dim);
    p.w_h[g] = Matrix(config.hidden_dim, config.hidden_dim);
    p.bias[g] = Vector(config.hidden_dim, 0.0);
  }
  p.dense_w = Vector(config.hidden_dim, 0.0);
  return p;
}

GruParams GruParams::glorot(const GruConfig& config, Rng& rng) {
  GruParams p = zeros(config);
  p.embedding.glorot_init(rng);
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    p.w_x[g].glorot_init(rng);
    p.w_h[g].glorot_init(rng);
  }
  // Update-gate bias at -1 biases toward carrying state (the GRU analogue
  // of the LSTM's forget-bias trick: h' = (1-z) h + z g, small z keeps h).
  for (auto& b : p.bias[kUpdate]) b = -1.0;
  const double limit = std::sqrt(6.0 / static_cast<double>(config.hidden_dim + 1));
  for (auto& w : p.dense_w) w = rng.uniform(-limit, limit);
  return p;
}

std::vector<double*> GruParams::parameter_pointers() {
  std::vector<double*> out;
  out.reserve(total_parameter_count());
  for (std::size_t i = 0; i < embedding.size(); ++i) out.push_back(embedding.data() + i);
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    for (std::size_t i = 0; i < w_x[g].size(); ++i) out.push_back(w_x[g].data() + i);
    for (std::size_t i = 0; i < w_h[g].size(); ++i) out.push_back(w_h[g].data() + i);
    for (auto& b : bias[g]) out.push_back(&b);
  }
  for (auto& w : dense_w) out.push_back(&w);
  out.push_back(&dense_b);
  return out;
}

std::size_t GruParams::recurrent_parameter_count() const {
  std::size_t count = 0;
  for (std::size_t g = 0; g < kNumGruGates; ++g) {
    count += w_x[g].size() + w_h[g].size() + bias[g].size();
  }
  return count;
}

std::size_t GruParams::total_parameter_count() const {
  return embedding.size() + recurrent_parameter_count() + dense_w.size() + 1;
}

GruClassifier::GruClassifier(GruConfig config, Rng& rng)
    : config_(config), params_(GruParams::glorot(config, rng)) {}

GruClassifier::GruClassifier(GruConfig config, GruParams params)
    : config_(config), params_(std::move(params)) {
  CSDML_REQUIRE(params_.embedding.rows() ==
                        static_cast<std::size_t>(config_.vocab_size) &&
                    params_.dense_w.size() == config_.hidden_dim,
                "params do not match config");
}

Vector GruClassifier::embed(TokenId token) const {
  CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token out of range");
  Vector x(config_.embed_dim);
  const double* row = params_.embedding.row(static_cast<std::size_t>(token));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = row[i];
  return x;
}

void GruClassifier::step(const Vector& x, Vector& h, GruStepCache* cache) const {
  const std::size_t hidden = config_.hidden_dim;
  CSDML_REQUIRE(x.size() == config_.embed_dim && h.size() == hidden,
                "step: wrong sizes");

  // z and r see (x, h_prev); the candidate sees (x, r ⊙ h_prev).
  std::array<Vector, kNumGruGates> preact;
  std::array<Vector, kNumGruGates> act;
  for (const std::size_t g : {kUpdate, kReset}) {
    preact[g] = params_.bias[g];
    accumulate_vec_mat(x, params_.w_x[g], preact[g]);
    accumulate_vec_mat(h, params_.w_h[g], preact[g]);
    act[g].resize(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      act[g][j] = fixedpt::sigmoid(preact[g][j]);
    }
  }
  Vector reset_h(hidden);
  for (std::size_t j = 0; j < hidden; ++j) reset_h[j] = act[kReset][j] * h[j];

  preact[kCandidateGate] = params_.bias[kCandidateGate];
  accumulate_vec_mat(x, params_.w_x[kCandidateGate], preact[kCandidateGate]);
  accumulate_vec_mat(reset_h, params_.w_h[kCandidateGate], preact[kCandidateGate]);
  act[kCandidateGate].resize(hidden);
  for (std::size_t j = 0; j < hidden; ++j) {
    act[kCandidateGate][j] =
        apply_cell_activation(config_.activation, preact[kCandidateGate][j]);
  }

  Vector new_h(hidden);
  for (std::size_t j = 0; j < hidden; ++j) {
    const double z = act[kUpdate][j];
    new_h[j] = (1.0 - z) * h[j] + z * act[kCandidateGate][j];
  }

  if (cache != nullptr) {
    cache->x = x;
    cache->preact = preact;
    cache->act = act;
    cache->reset_h = reset_h;
    cache->h = new_h;
  }
  h = std::move(new_h);
}

double GruClassifier::forward(const Sequence& sequence,
                              std::vector<GruStepCache>* cache) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  Vector h(config_.hidden_dim, 0.0);
  if (cache != nullptr) {
    cache->clear();
    cache->reserve(sequence.size());
  }
  for (const TokenId token : sequence) {
    const Vector x = embed(token);
    if (cache != nullptr) {
      cache->emplace_back();
      step(x, h, &cache->back());
    } else {
      step(x, h, nullptr);
    }
  }
  return fixedpt::sigmoid(dot(params_.dense_w, h) + params_.dense_b);
}

int GruClassifier::predict(const Sequence& sequence) const {
  return forward(sequence, nullptr) >= 0.5 ? 1 : 0;
}

double gru_backward(const GruClassifier& model, const Sequence& sequence,
                    int label, GruGradients& grads) {
  const GruConfig& config = model.config();
  const GruParams& params = model.params();
  const std::size_t hidden = config.hidden_dim;

  std::vector<GruStepCache> cache;
  const double probability = model.forward(sequence, &cache);
  const double loss = bce_loss(probability, label);
  const double dlogit = probability - static_cast<double>(label);

  const Vector& h_final = cache.back().h;
  for (std::size_t j = 0; j < hidden; ++j) grads.dense_w[j] += h_final[j] * dlogit;
  grads.dense_b += dlogit;

  Vector dh(hidden, 0.0);
  for (std::size_t j = 0; j < hidden; ++j) dh[j] = params.dense_w[j] * dlogit;

  Vector daz(hidden);
  Vector dar(hidden);
  Vector dag(hidden);
  for (std::size_t t = cache.size(); t-- > 0;) {
    const GruStepCache& step = cache[t];
    const Vector* h_prev_ptr = t > 0 ? &cache[t - 1].h : nullptr;
    Vector zero(hidden, 0.0);
    const Vector& h_prev = h_prev_ptr != nullptr ? *h_prev_ptr : zero;

    Vector dh_prev(hidden, 0.0);
    // h = (1-z) h_prev + z g
    for (std::size_t j = 0; j < hidden; ++j) {
      const double z = step.act[kUpdate][j];
      const double g = step.act[kCandidateGate][j];
      const double dz = dh[j] * (g - h_prev[j]);
      daz[j] = dz * z * (1.0 - z);
      const double dg = dh[j] * z;
      dag[j] = dg * cell_activation_derivative(config.activation,
                                               step.preact[kCandidateGate][j]);
      dh_prev[j] += dh[j] * (1.0 - z);
    }

    // Candidate path: ag = Wg x + Ug (r ⊙ h_prev) + bg.
    Vector d_reset_h(hidden, 0.0);
    accumulate_mat_vec(params.w_h[kCandidateGate], dag, d_reset_h);
    for (std::size_t j = 0; j < hidden; ++j) {
      const double r = step.act[kReset][j];
      dar[j] = d_reset_h[j] * h_prev[j] * r * (1.0 - r);
      dh_prev[j] += d_reset_h[j] * r;
    }

    // Gate weight gradients + recurrent flow.
    Vector dx(config.embed_dim, 0.0);
    accumulate_outer(step.x, daz, grads.w_x[kUpdate]);
    accumulate_outer(step.x, dar, grads.w_x[kReset]);
    accumulate_outer(step.x, dag, grads.w_x[kCandidateGate]);
    if (h_prev_ptr != nullptr) {
      accumulate_outer(h_prev, daz, grads.w_h[kUpdate]);
      accumulate_outer(h_prev, dar, grads.w_h[kReset]);
    }
    accumulate_outer(step.reset_h, dag, grads.w_h[kCandidateGate]);
    add_in_place(grads.bias[kUpdate], daz);
    add_in_place(grads.bias[kReset], dar);
    add_in_place(grads.bias[kCandidateGate], dag);
    accumulate_mat_vec(params.w_x[kUpdate], daz, dx);
    accumulate_mat_vec(params.w_x[kReset], dar, dx);
    accumulate_mat_vec(params.w_x[kCandidateGate], dag, dx);
    accumulate_mat_vec(params.w_h[kUpdate], daz, dh_prev);
    accumulate_mat_vec(params.w_h[kReset], dar, dh_prev);

    const auto token_row = static_cast<std::size_t>(sequence[t]);
    double* emb_grad = grads.embedding.row(token_row);
    for (std::size_t i = 0; i < dx.size(); ++i) emb_grad[i] += dx[i];

    dh = std::move(dh_prev);
  }
  return loss;
}

TrainResult train_gru(GruClassifier& model, const SequenceDataset& train_set,
                      const SequenceDataset& test_set, const TrainConfig& config) {
  CSDML_REQUIRE(!train_set.empty() && !test_set.empty(), "empty datasets");
  CSDML_REQUIRE(config.epochs > 0 && config.batch_size > 0,
                "epochs/batch_size must be positive");

  AdamOptimizer optimizer({.learning_rate = config.learning_rate},
                          model.params().total_parameter_count());
  const std::vector<double*> param_ptrs = model.mutable_params().parameter_pointers();
  GruGradients grads = GruParams::zeros(model.config());
  const std::vector<double*> grad_ptrs = grads.parameter_pointers();

  Rng shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  const auto evaluate_model = [&]() {
    ConfusionMatrix cm;
    for (std::size_t i = 0; i < test_set.size(); ++i) {
      cm.add(test_set.labels[i], model.predict(test_set.sequences[i]));
    }
    return cm;
  };

  TrainResult result;
  for (std::size_t epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batch_fill = 0;
    const auto flush = [&]() {
      if (batch_fill == 0) return;
      optimizer.step(param_ptrs, grad_ptrs, static_cast<double>(batch_fill));
      for (double* g : grad_ptrs) *g = 0.0;
      batch_fill = 0;
    };
    for (const std::size_t idx : order) {
      epoch_loss +=
          gru_backward(model, train_set.sequences[idx], train_set.labels[idx], grads);
      if (++batch_fill == config.batch_size) flush();
    }
    flush();

    if (epoch % config.evaluate_every == 0 || epoch == config.epochs) {
      EpochRecord record;
      record.epoch = epoch;
      record.mean_train_loss = epoch_loss / static_cast<double>(train_set.size());
      record.test_confusion = evaluate_model();
      record.test_accuracy = record.test_confusion.accuracy();
      result.history.push_back(record);
      if (record.test_accuracy > result.best_test_accuracy) {
        result.best_test_accuracy = record.test_accuracy;
        result.best_epoch = epoch;
        result.best_confusion = record.test_confusion;
      }
    }
  }
  return result;
}

}  // namespace csdml::nn
