#include "nn/tensor.hpp"

#include <cmath>

namespace csdml::nn {

void Matrix::glorot_init(Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& v : data_) v = rng.uniform(-limit, limit);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CSDML_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double k) {
  for (auto& v : data_) v *= k;
  return *this;
}

void accumulate_vec_mat(const Vector& x, const Matrix& w, Vector& y) {
  CSDML_REQUIRE(x.size() == w.rows(), "accumulate_vec_mat: x/W mismatch");
  CSDML_REQUIRE(y.size() == w.cols(), "accumulate_vec_mat: y/W mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* wrow = w.row(i);
    for (std::size_t j = 0; j < y.size(); ++j) y[j] += xi * wrow[j];
  }
}

void accumulate_outer(const Vector& x, const Vector& dy, Matrix& grad_w) {
  CSDML_REQUIRE(x.size() == grad_w.rows() && dy.size() == grad_w.cols(),
                "accumulate_outer: shape mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    double* grow = grad_w.row(i);
    for (std::size_t j = 0; j < dy.size(); ++j) grow[j] += xi * dy[j];
  }
}

void accumulate_mat_vec(const Matrix& w, const Vector& dy, Vector& dx) {
  CSDML_REQUIRE(dx.size() == w.rows() && dy.size() == w.cols(),
                "accumulate_mat_vec: shape mismatch");
  for (std::size_t i = 0; i < dx.size(); ++i) {
    const double* wrow = w.row(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < dy.size(); ++j) sum += wrow[j] * dy[j];
    dx[i] += sum;
  }
}

void add_in_place(Vector& a, const Vector& b) {
  CSDML_REQUIRE(a.size() == b.size(), "vector size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

double dot(const Vector& a, const Vector& b) {
  CSDML_REQUIRE(a.size() == b.size(), "vector size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace csdml::nn
