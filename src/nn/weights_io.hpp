// Text-file weight exchange between the offline trainer and the CSD host
// program.
//
// The paper: "Once the embeddings and LSTM have been trained until
// convergence, the associated weights and biases are extracted and written
// to a text file ... the host program ... ingests this text file amid
// initializing the FPGA." This module defines that file. The format keeps
// TensorFlow get_weights()'s decomposition — the input-to-hidden kernel,
// the recurrent kernel and the bias terms are stored as separate arrays —
// plus the embedding matrix and the dense head.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/gru.hpp"
#include "nn/lstm.hpp"

namespace csdml::nn {

struct ModelSnapshot {
  LstmConfig config;
  LstmParams params;
};

/// Serialises config + parameters (full double precision).
void save_weights(std::ostream& out, const LstmConfig& config,
                  const LstmParams& params);
void save_weights_file(const std::string& path, const LstmConfig& config,
                       const LstmParams& params);

/// Parses a weight file; throws ParseError on malformed input.
ModelSnapshot load_weights(std::istream& in);
ModelSnapshot load_weights_file(const std::string& path);

// --- GRU variant (same format family, "csdml-gru-weights" magic) --------

struct GruModelSnapshot {
  GruConfig config;
  GruParams params;
};

void save_gru_weights(std::ostream& out, const GruConfig& config,
                      const GruParams& params);
void save_gru_weights_file(const std::string& path, const GruConfig& config,
                           const GruParams& params);
GruModelSnapshot load_gru_weights(std::istream& in);
GruModelSnapshot load_gru_weights_file(const std::string& path);

}  // namespace csdml::nn
