// Token-sequence dataset container + the paper's CSV layout.
//
// "It consumes a CSV dataset consisting of n+1 columns and N rows for
// sequences of n items plus a label and N samples" — rows are
// item_1,...,item_n,label with integer token ids and a {0,1} label.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace csdml::nn {

using TokenId = std::int32_t;
using Sequence = std::vector<TokenId>;
/// Borrowed contiguous view of a token window — what the inference hot
/// paths take, so ring-buffer windows classify without a copy.
using TokenSpan = std::span<const TokenId>;

struct SequenceDataset {
  std::vector<Sequence> sequences;
  std::vector<int> labels;  // 0 = negative (benign), 1 = positive (ransomware)

  std::size_t size() const { return sequences.size(); }
  bool empty() const { return sequences.empty(); }

  /// Number of positive-labelled samples.
  std::size_t positives() const;

  /// Fraction of positive samples; requires non-empty.
  double positive_fraction() const;

  /// Largest token id + 1 across all sequences (0 when empty).
  TokenId vocabulary_size() const;

  /// In-place deterministic shuffle keeping sequences/labels aligned.
  void shuffle(Rng& rng);

  /// Appends all samples of `other`.
  void append(const SequenceDataset& other);
};

struct TrainTestSplit {
  SequenceDataset train;
  SequenceDataset test;
};

/// Splits after an internal shuffle; `test_fraction` in (0, 1).
TrainTestSplit split_dataset(const SequenceDataset& dataset, double test_fraction,
                             Rng& rng);

/// Writes the paper's n+1-column CSV (header: item_0..item_{n-1},label).
/// Requires all sequences to share one length.
void write_dataset_csv(const SequenceDataset& dataset, const std::string& path);

/// Reads the same layout back. Accepts files with or without the header.
SequenceDataset read_dataset_csv(const std::string& path);

}  // namespace csdml::nn
