#include "nn/dataset.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <numeric>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace csdml::nn {

std::size_t SequenceDataset::positives() const {
  return static_cast<std::size_t>(std::count(labels.begin(), labels.end(), 1));
}

double SequenceDataset::positive_fraction() const {
  CSDML_REQUIRE(!empty(), "positive_fraction of empty dataset");
  return static_cast<double>(positives()) / static_cast<double>(size());
}

TokenId SequenceDataset::vocabulary_size() const {
  TokenId max_id = -1;
  for (const auto& seq : sequences) {
    for (const TokenId t : seq) max_id = std::max(max_id, t);
  }
  return max_id + 1;
}

void SequenceDataset::shuffle(Rng& rng) {
  CSDML_REQUIRE(sequences.size() == labels.size(), "dataset misaligned");
  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<Sequence> new_sequences(sequences.size());
  std::vector<int> new_labels(labels.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    new_sequences[i] = std::move(sequences[order[i]]);
    new_labels[i] = labels[order[i]];
  }
  sequences = std::move(new_sequences);
  labels = std::move(new_labels);
}

void SequenceDataset::append(const SequenceDataset& other) {
  sequences.insert(sequences.end(), other.sequences.begin(), other.sequences.end());
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

TrainTestSplit split_dataset(const SequenceDataset& dataset, double test_fraction,
                             Rng& rng) {
  CSDML_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
                "test_fraction must be in (0, 1)");
  CSDML_REQUIRE(dataset.size() >= 2, "need at least two samples to split");
  SequenceDataset shuffled = dataset;
  shuffled.shuffle(rng);
  auto n_test = static_cast<std::size_t>(
      static_cast<double>(shuffled.size()) * test_fraction);
  n_test = std::clamp<std::size_t>(n_test, 1, shuffled.size() - 1);

  TrainTestSplit split;
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    auto& target = i < n_test ? split.test : split.train;
    target.sequences.push_back(std::move(shuffled.sequences[i]));
    target.labels.push_back(shuffled.labels[i]);
  }
  return split;
}

void write_dataset_csv(const SequenceDataset& dataset, const std::string& path) {
  CSDML_REQUIRE(!dataset.empty(), "refusing to write empty dataset");
  const std::size_t len = dataset.sequences.front().size();
  for (const auto& seq : dataset.sequences) {
    CSDML_REQUIRE(seq.size() == len, "CSV layout needs equal-length sequences");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("cannot open for writing: " + path);
  CsvWriter writer(out);
  std::vector<std::string> row;
  row.reserve(len + 1);
  for (std::size_t i = 0; i < len; ++i) row.push_back("item_" + std::to_string(i));
  row.push_back("label");
  writer.write_row(row);
  for (std::size_t r = 0; r < dataset.size(); ++r) {
    row.clear();
    for (const TokenId t : dataset.sequences[r]) row.push_back(std::to_string(t));
    row.push_back(std::to_string(dataset.labels[r]));
    writer.write_row(row);
  }
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i])) == 0) return false;
  }
  return true;
}

TokenId parse_token(const std::string& field, const std::string& path) {
  if (!looks_numeric(field)) {
    throw ParseError("non-integer field '" + field + "' in " + path);
  }
  return static_cast<TokenId>(std::stol(field));
}

}  // namespace

SequenceDataset read_dataset_csv(const std::string& path) {
  // Parse headerless first; if the first row is non-numeric, treat it as
  // the header and drop it.
  CsvDocument doc = read_csv_file(path, /*has_header=*/false);
  SequenceDataset dataset;
  std::size_t start = 0;
  if (!doc.rows.empty() && !looks_numeric(doc.rows.front().front())) start = 1;
  for (std::size_t r = start; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    if (row.size() < 2) throw ParseError("CSV row needs >= 2 columns in " + path);
    Sequence seq;
    seq.reserve(row.size() - 1);
    for (std::size_t c = 0; c + 1 < row.size(); ++c) {
      seq.push_back(parse_token(row[c], path));
    }
    const TokenId label = parse_token(row.back(), path);
    CSDML_REQUIRE(label == 0 || label == 1, "label must be 0 or 1");
    dataset.sequences.push_back(std::move(seq));
    dataset.labels.push_back(static_cast<int>(label));
  }
  return dataset;
}

}  // namespace csdml::nn
