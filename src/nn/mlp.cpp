#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "fixed/activations.hpp"

namespace csdml::nn {

MlpParams MlpParams::zeros(const MlpConfig& config) {
  CSDML_REQUIRE(config.vocab_size > 0 && config.hidden_dim > 0,
                "invalid MLP dimensions");
  MlpParams p;
  p.w1 = Matrix(static_cast<std::size_t>(config.vocab_size), config.hidden_dim);
  p.b1 = Vector(config.hidden_dim, 0.0);
  p.w2 = Vector(config.hidden_dim, 0.0);
  return p;
}

MlpParams MlpParams::glorot(const MlpConfig& config, Rng& rng) {
  MlpParams p = zeros(config);
  p.w1.glorot_init(rng);
  const double limit = std::sqrt(6.0 / static_cast<double>(config.hidden_dim + 1));
  for (auto& w : p.w2) w = rng.uniform(-limit, limit);
  return p;
}

std::vector<double*> MlpParams::parameter_pointers() {
  std::vector<double*> out;
  out.reserve(total_parameter_count());
  for (std::size_t i = 0; i < w1.size(); ++i) out.push_back(w1.data() + i);
  for (auto& b : b1) out.push_back(&b);
  for (auto& w : w2) out.push_back(&w);
  out.push_back(&b2);
  return out;
}

std::size_t MlpParams::total_parameter_count() const {
  return w1.size() + b1.size() + w2.size() + 1;
}

MlpClassifier::MlpClassifier(MlpConfig config, Rng& rng)
    : config_(config), params_(MlpParams::glorot(config, rng)) {}

Vector MlpClassifier::featurize(const Sequence& sequence) const {
  CSDML_REQUIRE(!sequence.empty(), "empty sequence");
  Vector histogram(static_cast<std::size_t>(config_.vocab_size), 0.0);
  for (const TokenId token : sequence) {
    CSDML_REQUIRE(token >= 0 && token < config_.vocab_size, "token range");
    histogram[static_cast<std::size_t>(token)] += 1.0;
  }
  const double n = static_cast<double>(sequence.size());
  for (double& v : histogram) v /= n;
  return histogram;
}

namespace {
double relu(double x) { return x > 0.0 ? x : 0.0; }
}  // namespace

double MlpClassifier::forward(const Sequence& sequence) const {
  const Vector features = featurize(sequence);
  Vector hidden = params_.b1;
  accumulate_vec_mat(features, params_.w1, hidden);
  double logit = params_.b2;
  for (std::size_t j = 0; j < hidden.size(); ++j) {
    logit += params_.w2[j] * relu(hidden[j]);
  }
  return fixedpt::sigmoid(logit);
}

int MlpClassifier::predict(const Sequence& sequence) const {
  return forward(sequence) >= 0.5 ? 1 : 0;
}

double MlpClassifier::backward(const Sequence& sequence, int label,
                               MlpParams& grads) const {
  const Vector features = featurize(sequence);
  Vector pre = params_.b1;
  accumulate_vec_mat(features, params_.w1, pre);
  Vector hidden(pre.size());
  for (std::size_t j = 0; j < pre.size(); ++j) hidden[j] = relu(pre[j]);
  double logit = params_.b2;
  for (std::size_t j = 0; j < hidden.size(); ++j) {
    logit += params_.w2[j] * hidden[j];
  }
  const double probability = fixedpt::sigmoid(logit);
  const double loss = bce_loss(probability, label);
  const double dlogit = probability - static_cast<double>(label);

  grads.b2 += dlogit;
  Vector dpre(pre.size());
  for (std::size_t j = 0; j < hidden.size(); ++j) {
    grads.w2[j] += hidden[j] * dlogit;
    dpre[j] = params_.w2[j] * dlogit * (pre[j] > 0.0 ? 1.0 : 0.0);
  }
  add_in_place(grads.b1, dpre);
  accumulate_outer(features, dpre, grads.w1);
  return loss;
}

TrainResult train_mlp(MlpClassifier& model, const SequenceDataset& train_set,
                      const SequenceDataset& test_set, const TrainConfig& config) {
  CSDML_REQUIRE(!train_set.empty() && !test_set.empty(), "empty datasets");
  AdamOptimizer optimizer({.learning_rate = config.learning_rate},
                          model.params().total_parameter_count());
  const std::vector<double*> param_ptrs = model.mutable_params().parameter_pointers();
  MlpParams grads = MlpParams::zeros(model.config());
  const std::vector<double*> grad_ptrs = grads.parameter_pointers();

  Rng shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (std::size_t epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batch_fill = 0;
    const auto flush = [&]() {
      if (batch_fill == 0) return;
      optimizer.step(param_ptrs, grad_ptrs, static_cast<double>(batch_fill));
      for (double* g : grad_ptrs) *g = 0.0;
      batch_fill = 0;
    };
    for (const std::size_t idx : order) {
      epoch_loss +=
          model.backward(train_set.sequences[idx], train_set.labels[idx], grads);
      if (++batch_fill == config.batch_size) flush();
    }
    flush();

    if (epoch % config.evaluate_every == 0 || epoch == config.epochs) {
      EpochRecord record;
      record.epoch = epoch;
      record.mean_train_loss = epoch_loss / static_cast<double>(train_set.size());
      ConfusionMatrix cm;
      for (std::size_t i = 0; i < test_set.size(); ++i) {
        cm.add(test_set.labels[i], model.predict(test_set.sequences[i]));
      }
      record.test_confusion = cm;
      record.test_accuracy = cm.accuracy();
      result.history.push_back(record);
      if (record.test_accuracy > result.best_test_accuracy) {
        result.best_test_accuracy = record.test_accuracy;
        result.best_epoch = epoch;
        result.best_confusion = record.test_confusion;
      }
    }
  }
  return result;
}

}  // namespace csdml::nn
