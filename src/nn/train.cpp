#include "nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "fixed/activations.hpp"

namespace csdml::nn {

double bce_loss(double probability, int label) {
  CSDML_REQUIRE(label == 0 || label == 1, "label must be binary");
  const double p = std::clamp(probability, 1e-12, 1.0 - 1e-12);
  return label == 1 ? -std::log(p) : -std::log(1.0 - p);
}

double backward(const LstmClassifier& model, const Sequence& sequence, int label,
                LstmGradients& grads) {
  const LstmConfig& config = model.config();
  const LstmParams& params = model.params();
  const std::size_t hidden = config.hidden_dim;

  ForwardCache cache;
  const double probability = model.forward(sequence, &cache);
  const double loss = bce_loss(probability, label);

  // d loss / d logit for sigmoid + BCE.
  const double dlogit = probability - static_cast<double>(label);

  const Vector& h_final = cache.steps.back().h;
  for (std::size_t j = 0; j < hidden; ++j) grads.dense_w[j] += h_final[j] * dlogit;
  grads.dense_b += dlogit;

  Vector dh(hidden, 0.0);
  for (std::size_t j = 0; j < hidden; ++j) dh[j] = params.dense_w[j] * dlogit;
  Vector dc(hidden, 0.0);

  std::array<Vector, kNumGates> dz;
  for (auto& v : dz) v.resize(hidden);

  for (std::size_t t = cache.steps.size(); t-- > 0;) {
    const StepCache& step = cache.steps[t];
    const Vector* c_prev = t > 0 ? &cache.steps[t - 1].c : nullptr;
    const Vector* h_prev = t > 0 ? &cache.steps[t - 1].h : nullptr;

    for (std::size_t j = 0; j < hidden; ++j) {
      const double i_gate = step.act[kInput][j];
      const double f_gate = step.act[kForget][j];
      const double g_cand = step.act[kCandidate][j];
      const double o_gate = step.act[kOutput][j];
      const double cp = c_prev != nullptr ? (*c_prev)[j] : 0.0;

      // Output gate sees act(c); cell path sees dh through o * act'(c).
      const double d_o = dh[j] * step.c_act[j];
      const double dc_total =
          dc[j] + dh[j] * o_gate *
                      cell_activation_derivative(config.activation, step.c[j]);

      const double d_i = dc_total * g_cand;
      const double d_f = dc_total * cp;
      const double d_g = dc_total * i_gate;

      dz[kInput][j] = d_i * i_gate * (1.0 - i_gate);
      dz[kForget][j] = d_f * f_gate * (1.0 - f_gate);
      dz[kOutput][j] = d_o * o_gate * (1.0 - o_gate);
      dz[kCandidate][j] =
          d_g * cell_activation_derivative(config.activation, step.preact[kCandidate][j]);

      dc[j] = dc_total * f_gate;  // flows to the previous timestep
    }

    Vector dx(config.embed_dim, 0.0);
    Vector dh_prev(hidden, 0.0);
    for (std::size_t g = 0; g < kNumGates; ++g) {
      accumulate_outer(step.x, dz[g], grads.w_x[g]);
      if (h_prev != nullptr) accumulate_outer(*h_prev, dz[g], grads.w_h[g]);
      add_in_place(grads.bias[g], dz[g]);
      accumulate_mat_vec(params.w_x[g], dz[g], dx);
      accumulate_mat_vec(params.w_h[g], dz[g], dh_prev);
    }

    const auto token_row = static_cast<std::size_t>(sequence[t]);
    double* emb_grad = grads.embedding.row(token_row);
    for (std::size_t i = 0; i < dx.size(); ++i) emb_grad[i] += dx[i];

    dh = std::move(dh_prev);
  }
  return loss;
}

AdamOptimizer::AdamOptimizer(Config config, std::size_t parameter_count)
    : config_(config), m_(parameter_count, 0.0), v_(parameter_count, 0.0) {
  CSDML_REQUIRE(parameter_count > 0, "optimizer over zero parameters");
}

void AdamOptimizer::step(const std::vector<double*>& params,
                         const std::vector<double*>& grads, double scale) {
  CSDML_REQUIRE(params.size() == m_.size() && grads.size() == m_.size(),
                "optimizer parameter count mismatch");
  CSDML_REQUIRE(scale > 0.0, "scale must be positive");
  ++t_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const double g = *grads[i] / scale;
    m_[i] = config_.beta1 * m_[i] + (1.0 - config_.beta1) * g;
    v_[i] = config_.beta2 * v_[i] + (1.0 - config_.beta2) * g * g;
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    *params[i] -= config_.learning_rate * m_hat / (std::sqrt(v_hat) + config_.epsilon);
  }
}

ConfusionMatrix evaluate(const LstmClassifier& model, const SequenceDataset& dataset) {
  CSDML_REQUIRE(!dataset.empty(), "evaluating on empty dataset");
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    cm.add(dataset.labels[i], model.predict(dataset.sequences[i]));
  }
  return cm;
}

namespace {

/// Global-norm gradient clipping over the raw (un-averaged) batch grads.
void clip_gradients(const std::vector<double*>& grads, double max_norm,
                    double batch_scale) {
  if (max_norm <= 0.0) return;
  double sum_sq = 0.0;
  for (const double* g : grads) {
    const double value = *g / batch_scale;
    sum_sq += value * value;
  }
  const double norm = std::sqrt(sum_sq);
  if (norm <= max_norm) return;
  const double shrink = max_norm / norm;
  for (double* g : grads) *g *= shrink;
}

}  // namespace

TrainResult train(LstmClassifier& model, const SequenceDataset& train_set,
                  const SequenceDataset& test_set, const TrainConfig& config,
                  const std::function<void(const EpochRecord&)>& progress) {
  CSDML_REQUIRE(!train_set.empty() && !test_set.empty(),
                "train/test sets must be non-empty");
  CSDML_REQUIRE(config.epochs > 0 && config.batch_size > 0,
                "epochs/batch_size must be positive");

  const std::size_t param_count = model.params().total_parameter_count();
  AdamOptimizer optimizer({.learning_rate = config.learning_rate}, param_count);
  const std::vector<double*> param_ptrs = model.mutable_params().parameter_pointers();

  LstmGradients grads = LstmParams::zeros(model.config());
  const std::vector<double*> grad_ptrs = grads.parameter_pointers();

  Rng shuffle_rng(config.shuffle_seed);
  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0);

  TrainResult result;
  for (std::size_t epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batch_fill = 0;

    const auto flush_batch = [&]() {
      if (batch_fill == 0) return;
      const auto scale = static_cast<double>(batch_fill);
      clip_gradients(grad_ptrs, config.gradient_clip_norm, scale);
      optimizer.step(param_ptrs, grad_ptrs, scale);
      for (double* g : grad_ptrs) *g = 0.0;
      batch_fill = 0;
    };

    for (const std::size_t idx : order) {
      epoch_loss +=
          backward(model, train_set.sequences[idx], train_set.labels[idx], grads);
      if (++batch_fill == config.batch_size) flush_batch();
    }
    flush_batch();

    if (epoch % config.evaluate_every == 0 || epoch == config.epochs) {
      EpochRecord record;
      record.epoch = epoch;
      record.mean_train_loss = epoch_loss / static_cast<double>(train_set.size());
      record.test_confusion = evaluate(model, test_set);
      record.test_accuracy = record.test_confusion.accuracy();
      result.history.push_back(record);
      if (record.test_accuracy > result.best_test_accuracy) {
        result.best_test_accuracy = record.test_accuracy;
        result.best_epoch = epoch;
        result.best_confusion = record.test_confusion;
      }
      if (progress) progress(record);
    }
  }
  return result;
}

}  // namespace csdml::nn
