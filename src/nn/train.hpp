// Offline training of the paper's classifier: full backpropagation through
// time with Adam, binary cross-entropy loss, and the per-epoch accuracy
// history that Fig. 4 of the paper plots.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/lstm.hpp"
#include "nn/metrics.hpp"

namespace csdml::nn {

/// Gradients share the parameter layout.
using LstmGradients = LstmParams;

/// Computes BCE loss for one sample and accumulates its gradients into
/// `grads` (which must have the model's shape). Returns the loss.
double backward(const LstmClassifier& model, const Sequence& sequence, int label,
                LstmGradients& grads);

/// Binary cross-entropy with probability clamping for numerical safety.
double bce_loss(double probability, int label);

class AdamOptimizer {
 public:
  struct Config {
    double learning_rate{0.01};
    double beta1{0.9};
    double beta2{0.999};
    double epsilon{1e-8};
  };

  AdamOptimizer(Config config, std::size_t parameter_count);

  /// Applies one update from gradient values aligned with the parameter
  /// pointer order. `scale` divides the gradients (batch averaging).
  void step(const std::vector<double*>& params, const std::vector<double*>& grads,
            double scale);

  std::size_t updates_applied() const { return t_; }

 private:
  Config config_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t t_{0};
};

struct TrainConfig {
  std::size_t epochs{60};
  std::size_t batch_size{32};
  double learning_rate{0.01};
  double gradient_clip_norm{5.0};  ///< global-norm clip; <= 0 disables
  std::size_t evaluate_every{1};   ///< epochs between test evaluations
  std::uint64_t shuffle_seed{17};
};

struct EpochRecord {
  std::size_t epoch{0};
  double mean_train_loss{0.0};
  double test_accuracy{0.0};
  ConfusionMatrix test_confusion;
};

struct TrainResult {
  std::vector<EpochRecord> history;   ///< one per evaluated epoch (Fig. 4 data)
  double best_test_accuracy{0.0};
  std::size_t best_epoch{0};
  ConfusionMatrix best_confusion;     ///< metrics at the best epoch
};

/// Evaluates the model over a dataset at threshold 0.5.
ConfusionMatrix evaluate(const LstmClassifier& model, const SequenceDataset& dataset);

/// Runs the full training loop, evaluating on `test` per the config.
/// `progress` (optional) is invoked after every evaluated epoch.
TrainResult train(LstmClassifier& model, const SequenceDataset& train_set,
                  const SequenceDataset& test_set, const TrainConfig& config,
                  const std::function<void(const EpochRecord&)>& progress = {});

}  // namespace csdml::nn
