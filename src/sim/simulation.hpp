// Discrete-event simulation core.
//
// The SmartSSD model (src/csd) is built from components that exchange
// timed events through this engine: NAND reads complete after a latency,
// DMA transfers occupy a link for a bandwidth-derived duration, kernels
// finish after a cycle count. The engine is deliberately single-threaded
// and deterministic: identical schedules replay identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace csdml::sim {

using EventCallback = std::function<void()>;

class Simulation {
 public:
  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedules `callback` at absolute time `when` (>= now()).
  void schedule_at(TimePoint when, EventCallback callback);

  /// Schedules `callback` `delay` after the current time.
  void schedule_after(Duration delay, EventCallback callback);

  /// Runs events until the queue drains. Returns the number executed.
  std::size_t run();

  /// Runs events with timestamp <= deadline; leaves later events queued.
  /// The clock advances to min(deadline, last executed event time).
  std::size_t run_until(TimePoint deadline);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t sequence;  // FIFO tie-break for equal timestamps
    EventCallback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  TimePoint now_{};
  std::uint64_t next_sequence_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A single-owner resource (bus, flash channel, DMA engine) that serialises
/// requests: each acquire() returns the time at which the requester may
/// proceed, busy-ing the resource for `hold`.
class SerialResource {
 public:
  /// Requests the resource at `at` for `hold`; returns the grant time
  /// (>= at) at which exclusive use begins.
  TimePoint acquire(TimePoint at, Duration hold);

  /// Time at which the resource next becomes free.
  TimePoint free_at() const { return free_at_; }

  /// Total time the resource has spent occupied.
  Duration busy_time() const { return busy_; }

 private:
  TimePoint free_at_{};
  Duration busy_{};
};

}  // namespace csdml::sim
