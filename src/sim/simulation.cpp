#include "sim/simulation.hpp"

#include "common/error.hpp"

namespace csdml::sim {

void Simulation::schedule_at(TimePoint when, EventCallback callback) {
  CSDML_REQUIRE(when >= now_, "cannot schedule an event in the past");
  queue_.push(Event{when, next_sequence_++, std::move(callback)});
}

void Simulation::schedule_after(Duration delay, EventCallback callback) {
  CSDML_REQUIRE(delay.picos >= 0, "negative delay");
  schedule_at(now_ + delay, std::move(callback));
}

std::size_t Simulation::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.callback();
    ++executed;
  }
  return executed;
}

std::size_t Simulation::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    event.callback();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

TimePoint SerialResource::acquire(TimePoint at, Duration hold) {
  CSDML_REQUIRE(hold.picos >= 0, "negative hold time");
  const TimePoint grant = at < free_at_ ? free_at_ : at;
  free_at_ = grant + hold;
  busy_ += hold;
  return grant;
}

}  // namespace csdml::sim
