#include "sim/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace csdml::sim {

void Trace::record(std::string name, TimePoint start, TimePoint end) {
  CSDML_REQUIRE(end >= start, "span ends before it starts");
  spans_.push_back(Span{std::move(name), start, end});
}

void Trace::merge(const Trace& other) {
  // Self-merge duplicates the spans; iterate by index so reallocation
  // during push_back cannot invalidate the source.
  const std::size_t n = other.spans_.size();
  spans_.reserve(spans_.size() + n);
  for (std::size_t i = 0; i < n; ++i) spans_.push_back(other.spans_[i]);
}

void Trace::merge(const Trace& other, const std::string& name_prefix) {
  spans_.reserve(spans_.size() + other.spans_.size());
  for (const Span& span : other.spans_) {
    spans_.push_back(Span{name_prefix + span.name, span.start, span.end});
  }
}

Trace Trace::filter_prefix(const std::string& name_prefix) const {
  Trace out;
  for (const Span& span : spans_) {
    if (span.name.rfind(name_prefix, 0) == 0) out.spans_.push_back(span);
  }
  return out;
}

Duration Trace::total(const std::string& name) const {
  Duration sum{};
  for (const auto& span : spans_) {
    if (span.name == name) sum += span.duration();
  }
  return sum;
}

std::size_t Trace::count(const std::string& name) const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [&](const Span& s) { return s.name == name; }));
}

Duration Trace::max(const std::string& name) const {
  Duration best{};
  for (const auto& span : spans_) {
    if (span.name == name && span.duration() > best) best = span.duration();
  }
  return best;
}

std::vector<std::string> Trace::names() const {
  std::vector<std::string> out;
  for (const auto& span : spans_) {
    if (std::find(out.begin(), out.end(), span.name) == out.end()) {
      out.push_back(span.name);
    }
  }
  return out;
}

}  // namespace csdml::sim
