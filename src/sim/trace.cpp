#include "sim/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace csdml::sim {

void Trace::record(std::string name, TimePoint start, TimePoint end) {
  CSDML_REQUIRE(end >= start, "span ends before it starts");
  spans_.push_back(Span{std::move(name), start, end});
}

Duration Trace::total(const std::string& name) const {
  Duration sum{};
  for (const auto& span : spans_) {
    if (span.name == name) sum += span.duration();
  }
  return sum;
}

std::size_t Trace::count(const std::string& name) const {
  return static_cast<std::size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [&](const Span& s) { return s.name == name; }));
}

Duration Trace::max(const std::string& name) const {
  Duration best{};
  for (const auto& span : spans_) {
    if (span.name == name && span.duration() > best) best = span.duration();
  }
  return best;
}

std::vector<std::string> Trace::names() const {
  std::vector<std::string> out;
  for (const auto& span : spans_) {
    if (std::find(out.begin(), out.end(), span.name) == out.end()) {
      out.push_back(span.name);
    }
  }
  return out;
}

}  // namespace csdml::sim
