// Span tracing for simulated executions.
//
// Components record named spans (kernel executions, DMA transfers, flash
// reads); benches aggregate them into the per-kernel timings that Fig. 3
// reports.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace csdml::sim {

struct Span {
  std::string name;
  TimePoint start;
  TimePoint end;

  Duration duration() const { return end - start; }
};

class Trace {
 public:
  void record(std::string name, TimePoint start, TimePoint end);

  const std::vector<Span>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  /// Appends every span of `other` (detector-level traces absorb the
  /// per-inference engine traces this way).
  void merge(const Trace& other);
  /// Same, but each absorbed span name gains `name_prefix` (e.g.
  /// "engine/" to namespace a sub-component's spans).
  void merge(const Trace& other, const std::string& name_prefix);
  /// Copy of the spans whose name starts with `name_prefix`.
  Trace filter_prefix(const std::string& name_prefix) const;

  /// Sum of durations of spans whose name matches exactly.
  Duration total(const std::string& name) const;
  /// Number of spans with the given name.
  std::size_t count(const std::string& name) const;
  /// Longest single span with the given name (zero if none).
  Duration max(const std::string& name) const;
  /// Distinct span names in first-seen order.
  std::vector<std::string> names() const;

 private:
  std::vector<Span> spans_;
};

}  // namespace csdml::sim
