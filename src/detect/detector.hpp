// Streaming ransomware detection over live API-call streams.
//
// The deployed model watches the API calls of every process on the host
// that houses the CSD; once a process has emitted a full window of calls
// the engine classifies it, and re-classifies on a configurable hop as the
// window slides — the paper's "classify API call sequences associated with
// ransomware on the system housing the CSD".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "detect/token_ring.hpp"
#include "kernels/engine.hpp"
#include "nn/dataset.hpp"

namespace csdml::detect {

using ProcessId = std::uint32_t;

struct DetectorConfig {
  std::size_t window_length{100};
  /// Calls between consecutive classifications of one process once its
  /// window is full (1 = classify on every call).
  std::size_t hop{25};
  double threshold{0.5};
  /// Consecutive over-threshold classifications required before alerting
  /// (debounce against one-off false positives).
  std::size_t consecutive_alerts{1};
};

struct Detection {
  ProcessId process{0};
  double probability{0.0};
  /// Index (per process) of the API call that completed the window.
  std::uint64_t call_index{0};
  /// Simulated device time charged for the classification.
  Duration inference_time;
  /// True when the classification was served by the host fallback while
  /// the CSD was unhealthy (same alert semantics, different datapath).
  bool degraded{false};
  /// Request trace id assigned at ingress (0 when tracing is disabled).
  /// Joins the alert to its span tree in exported traces.
  obs::TraceId trace_id{0};
};

class StreamingDetector {
 public:
  StreamingDetector(kernels::CsdLstmEngine& engine, DetectorConfig config);

  /// Feeds one API call of one process. Returns a Detection when this call
  /// triggered a classification that crossed the alert threshold (with
  /// debouncing applied). Out-of-vocabulary tokens are rejected at
  /// ingestion (PreconditionError) rather than poisoning the window.
  ///
  /// If the CSD is unhealthy and no fallback is configured, the due
  /// classification is deferred — never dropped: the next call for the
  /// same process retries it (see degraded_classifications()).
  std::optional<Detection> on_api_call(ProcessId process, nn::TokenId token);

  /// Forgets a terminated process. Unknown ids are a well-defined no-op
  /// (counted in `detector.forget_unknown`), so races between process
  /// exit notification and stream teardown are harmless.
  void forget(ProcessId process);

  std::uint64_t classifications_run() const { return classifications_; }
  Duration device_time_spent() const { return device_time_; }
  /// Classifications that came due but could not run because the CSD was
  /// unavailable; each is retried on the process's next call.
  std::uint64_t degraded_classifications() const { return degraded_; }

  kernels::CsdLstmEngine& engine() { return engine_; }
  /// Health of the underlying CSD engine (false while serving degraded).
  bool csd_healthy() const { return engine_.healthy(); }

 private:
  struct ProcessState {
    /// Fixed-capacity ring: each hop classification reads the window as a
    /// contiguous span, with no per-classification allocation or copy.
    TokenRing window;
    std::uint64_t calls_seen{0};
    std::uint64_t calls_since_eval{0};
    std::size_t alert_streak{0};
    /// A due classification was deferred (CSD unavailable, no fallback)
    /// and has not run yet. forget() of such a process drops a pending
    /// deferral, which operators want to see (`detector.forget_pending`).
    bool deferred_pending{false};
  };

  kernels::CsdLstmEngine& engine_;
  DetectorConfig config_;
  std::unordered_map<ProcessId, ProcessState> processes_;
  std::uint64_t classifications_{0};
  std::uint64_t degraded_{0};
  Duration device_time_{};
};

}  // namespace csdml::detect
