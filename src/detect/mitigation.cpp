#include "detect/mitigation.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace csdml::detect {

CsdGuard::CsdGuard(kernels::CsdLstmEngine& engine, DetectorConfig detector_config,
                   MitigationPolicy policy)
    : detector_(engine, detector_config), policy_(policy) {
  CSDML_REQUIRE(policy_.alert_threshold <= policy_.quarantine_threshold,
                "alert threshold must not exceed quarantine threshold");
}

MitigationAction CsdGuard::on_api_call(ProcessId process, nn::TokenId token) {
  ++stats_.calls_observed;
  const std::optional<Detection> detection = detector_.on_api_call(process, token);
  if (!detection.has_value()) return MitigationAction::None;

  ++stats_.detections;
  if (detection->probability >= policy_.quarantine_threshold) {
    if (quarantined_.insert(process).second) {
      ++stats_.quarantines;
      CSDML_LOG_INFO("guard") << "quarantined process " << process
                              << " (p=" << detection->probability << " after "
                              << detection->call_index << " calls)";
    }
    return MitigationAction::QuarantineProcess;
  }
  return MitigationAction::AlertOnly;
}

bool CsdGuard::allow_write(ProcessId process) {
  if (quarantined_.contains(process)) {
    ++stats_.writes_blocked;
    return false;
  }
  ++stats_.writes_allowed;
  return true;
}

bool CsdGuard::is_quarantined(ProcessId process) const {
  return quarantined_.contains(process);
}

void CsdGuard::release(ProcessId process) { quarantined_.erase(process); }

}  // namespace csdml::detect
