#include "detect/attribution.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ransomware/api_vocab.hpp"

namespace csdml::detect {

AttributionReport attribute_window(const nn::LstmClassifier& model,
                                   const nn::Sequence& window,
                                   const AttributionConfig& config) {
  CSDML_REQUIRE(!window.empty(), "empty window");
  CSDML_REQUIRE(config.top_k > 0, "top_k must be positive");

  const auto& vocab = ransomware::ApiVocabulary::instance();
  nn::TokenId mask = config.mask_token;
  if (mask < 0) mask = vocab.require("HeapAlloc");
  CSDML_REQUIRE(mask < model.config().vocab_size, "mask token out of range");

  AttributionReport report;
  report.probability = model.forward(window, nullptr);

  std::vector<CallAttribution> all;
  all.reserve(window.size());
  nn::Sequence masked = window;
  for (std::size_t i = 0; i < window.size(); ++i) {
    if (window[i] == mask) continue;  // masking a mask is a no-op
    masked[i] = mask;
    const double p = model.forward(masked, nullptr);
    masked[i] = window[i];

    CallAttribution attribution;
    attribution.position = i;
    attribution.token = window[i];
    attribution.api_name =
        static_cast<std::size_t>(window[i]) < vocab.size()
            ? std::string(vocab.call(window[i]).name)
            : "token#" + std::to_string(window[i]);
    attribution.contribution = report.probability - p;
    all.push_back(std::move(attribution));
  }

  std::sort(all.begin(), all.end(),
            [](const CallAttribution& a, const CallAttribution& b) {
              return a.contribution > b.contribution;
            });
  if (all.size() > config.top_k) all.resize(config.top_k);
  report.top_calls = std::move(all);
  return report;
}

}  // namespace csdml::detect
