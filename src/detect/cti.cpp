#include "detect/cti.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"

namespace csdml::detect {

ransomware::FamilyProfile make_emerging_strain(
    const ransomware::FamilyProfile& base, std::uint32_t strain_id) {
  using ransomware::MotifKind;
  using ransomware::Phase;
  ransomware::FamilyProfile strain;
  strain.name = base.name + "-Nova" + std::to_string(strain_id);
  strain.variants = 1;
  strain.encrypts = true;
  strain.self_propagates = false;

  // A slow-and-low, living-off-the-land rewrite of the family:
  //  * loads like an ordinary application (no packed-dropper burst),
  //  * encrypts through in-place container writes (no rename sweep),
  //  * throttles — every couple of encrypted files it browses and idles,
  //    so no window shows the dense CryptEncrypt stream the deployed
  //    model keys on; the density matches benign disk-encryption tools,
  //  * keeps a light C2 heartbeat (extortion moves off-host) and re-keys
  //    periodically — the residual signals retraining must learn.
  strain.script = {Phase{MotifKind::AppStartup, 1, 1},
                   Phase{MotifKind::ConfigLoad, 1, 2},
                   Phase{MotifKind::UiIdle, 1, 2},
                   Phase{MotifKind::KeyGeneration, 1, 1}};
  // Enough throttled cycles that even long sandbox detonations never fall
  // back to the generator's dense filler phase.
  for (int cycle = 0; cycle < 40 + static_cast<int>(strain_id % 3); ++cycle) {
    strain.script.push_back(Phase{MotifKind::FileBrowse, 1, 1});
    strain.script.push_back(Phase{MotifKind::VolumeEncryptionLoop, 2, 3});
    strain.script.push_back(Phase{MotifKind::UiIdle, 1, 2});
    if (cycle % 3 == 0) {
      strain.script.push_back(Phase{MotifKind::C2Beacon, 1, 1});
      strain.script.push_back(Phase{MotifKind::KeyGeneration, 0, 1});
    }
  }
  return strain;
}

nn::SequenceDataset windows_from_strain(const ransomware::FamilyProfile& strain,
                                        std::size_t window_count,
                                        std::size_t window_length,
                                        std::size_t stride, std::uint64_t seed) {
  CSDML_REQUIRE(window_count > 0, "need at least one window");
  ransomware::SandboxConfig sandbox_config;
  sandbox_config.seed = seed;
  const ransomware::SandboxTraceGenerator sandbox(sandbox_config);
  const std::size_t length = window_length + stride * (window_count - 1);
  // The strain's filler differs from stock families: extend with its own
  // dominant phase by re-running the script generator at full length.
  const auto trace = sandbox.ransomware_trace(strain, 0, length);
  auto windows = ransomware::sliding_windows(trace, window_length, stride);
  if (windows.size() > window_count) windows.resize(window_count);

  nn::SequenceDataset dataset;
  for (auto& window : windows) {
    dataset.sequences.push_back(std::move(window));
    dataset.labels.push_back(1);
  }
  return dataset;
}

namespace {

double recall_on(const nn::LstmClassifier& model, const nn::SequenceDataset& set) {
  CSDML_REQUIRE(!set.empty(), "empty evaluation set");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    hits += model.predict(set.sequences[i]) == 1;
  }
  return static_cast<double>(hits) / static_cast<double>(set.size());
}

}  // namespace

CtiUpdateReport incorporate_strain(nn::LstmClassifier& model,
                                   kernels::CsdLstmEngine& engine,
                                   const ransomware::FamilyProfile& strain,
                                   const nn::SequenceDataset& replay,
                                   const nn::TrainConfig& fine_tune_config,
                                   std::uint64_t seed) {
  CSDML_REQUIRE(!replay.empty(), "replay buffer must be non-empty");
  const std::size_t window = replay.sequences.front().size();

  // Fresh detonations: disjoint train/eval windows of the new strain.
  nn::SequenceDataset strain_train =
      windows_from_strain(strain, 200, window, 25, seed);
  const nn::SequenceDataset strain_eval =
      windows_from_strain(strain, 60, window, 37, seed + 1);

  CtiUpdateReport report;
  report.strain_recall_before = recall_on(model, strain_eval);

  // Fine-tune on new windows + replay buffer so old behaviour is retained.
  nn::SequenceDataset combined = strain_train;
  combined.append(replay);
  Rng shuffle_rng = Rng(seed).fork("cti-finetune");
  combined.shuffle(shuffle_rng);
  nn::train(model, combined, strain_eval, fine_tune_config);

  report.strain_recall_after = recall_on(model, strain_eval);
  nn::ConfusionMatrix replay_cm = nn::evaluate(model, replay);
  report.replay_accuracy_after = replay_cm.accuracy();
  report.windows_added = strain_train.size();

  // Hot-swap into the drive: same xclbin, new weight image.
  engine.update_weights(model.params());
  report.engine_weight_version = engine.weight_updates();

  CSDML_LOG_INFO("cti") << strain.name << ": recall "
                        << report.strain_recall_before << " -> "
                        << report.strain_recall_after << ", engine at v"
                        << report.engine_weight_version;
  return report;
}

}  // namespace csdml::detect
