// Alert attribution: which API calls in a detected window drove the
// classification.
//
// A SOC operator receiving "process 4711 quarantined" needs to see *why*.
// This module produces occlusion-based attributions: each position of the
// window is masked (replaced with an innocuous background call) and the
// probability drop measures that call's contribution. Runs of adjacent
// high-contribution calls are then grouped into the spans an analyst reads
// ("ReadFile CryptEncrypt WriteFile MoveFileExW ...").
#pragma once

#include <string>
#include <vector>

#include "nn/lstm.hpp"

namespace csdml::detect {

struct CallAttribution {
  std::size_t position{0};     ///< index within the window
  nn::TokenId token{0};
  std::string api_name;        ///< resolved against the API vocabulary
  double contribution{0.0};    ///< probability drop when this call is masked
};

struct AttributionReport {
  double probability{0.0};                  ///< unmasked model output
  std::vector<CallAttribution> top_calls;   ///< sorted by contribution, desc
};

struct AttributionConfig {
  std::size_t top_k{10};
  /// Token used to occlude positions; defaults to a neutral background
  /// call (HeapAlloc) when negative.
  nn::TokenId mask_token{-1};
};

/// Computes occlusion attributions for one window under `model`.
/// Cost: one forward pass per window position.
AttributionReport attribute_window(const nn::LstmClassifier& model,
                                   const nn::Sequence& window,
                                   const AttributionConfig& config = {});

}  // namespace csdml::detect
