// Workload drift monitoring — the trigger side of the CTI update loop.
//
// The deployed model should be retrained "once new ransomware strains are
// uncovered" (paper Section III-A); in practice the first signal is often
// not a CTI feed but the drive's own traffic drifting away from what the
// model was trained on. The monitor keeps a reference API-category
// distribution (from the training corpus) and computes the Population
// Stability Index of recent traffic against it; sustained PSI above
// threshold raises a drift alarm that an operator (or the SOC workflow
// example) answers with a retraining cycle.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "nn/dataset.hpp"
#include "ransomware/api_vocab.hpp"

namespace csdml::detect {

inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(ransomware::ApiCategory::Misc) + 1;

using CategoryDistribution = std::array<double, kCategoryCount>;

/// Normalised API-category histogram of a token stream.
CategoryDistribution category_distribution(const std::vector<nn::TokenId>& tokens);
CategoryDistribution category_distribution(const nn::SequenceDataset& dataset);

/// Population Stability Index between two distributions (smoothed; 0 =
/// identical). Common operating bands: < 0.10 stable, 0.10-0.25 moderate
/// shift, > 0.25 major shift.
double population_stability_index(const CategoryDistribution& reference,
                                  const CategoryDistribution& observed);

struct DriftConfig {
  std::size_t window_tokens{2'000};   ///< tokens per observation window
  double psi_threshold{0.25};
  std::size_t consecutive_windows{2}; ///< debounce
};

class DriftMonitor {
 public:
  DriftMonitor(CategoryDistribution reference, DriftConfig config);

  /// Feeds one observed API call; returns true when this call completed a
  /// window that pushed the monitor into the drifted state.
  bool observe(nn::TokenId token);

  bool drifted() const { return drifted_; }
  /// PSI of the last completed window (0 before the first).
  double last_psi() const { return last_psi_; }
  std::uint64_t windows_evaluated() const { return windows_; }

  /// Operator acknowledged (e.g. after retraining): reset the alarm.
  void reset();

 private:
  CategoryDistribution reference_;
  DriftConfig config_;
  std::array<std::uint64_t, kCategoryCount> counts_{};
  std::size_t tokens_in_window_{0};
  std::size_t over_threshold_streak_{0};
  bool drifted_{false};
  double last_psi_{0.0};
  std::uint64_t windows_{0};
};

}  // namespace csdml::detect
