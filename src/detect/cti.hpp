// Cyber-Threat-Intelligence-driven model updates.
//
// The paper: "it is advisable to update the FPGA-based model with a
// version that has been retrained on new ransomware strains once they are
// uncovered in Cyber Threat Intelligence (CTI) feeds" — possible because
// the FPGA binary is compiled once and only the weight image changes.
//
// This module provides that loop end-to-end:
//   * make_emerging_strain() synthesizes a novel, evasive variant of a
//     known family (container-style encryption without the rename sweep,
//     no shadow-copy wipe — the behaviours the deployed model keyed on),
//   * windows_from_strain() turns its sandbox detonation into labelled
//     training windows,
//   * incorporate_strain() fine-tunes the offline model on the new
//     windows plus a replay buffer of the old corpus (so nothing is
//     forgotten) and hot-swaps the weights into the CSD engine.
#pragma once

#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

namespace csdml::detect {

/// A previously unseen strain derived from `base`: keeps the family's
/// masquerade and C2 habits but encrypts through seek-in-place container
/// writes (no MoveFile rename sweep) and skips the noisy shadow-copy wipe.
ransomware::FamilyProfile make_emerging_strain(
    const ransomware::FamilyProfile& base, std::uint32_t strain_id);

/// Sandbox-detonates the profile and windows the trace (label 1).
nn::SequenceDataset windows_from_strain(const ransomware::FamilyProfile& strain,
                                        std::size_t window_count,
                                        std::size_t window_length,
                                        std::size_t stride, std::uint64_t seed);

struct CtiUpdateReport {
  double strain_recall_before{0.0};  ///< on held-out strain windows
  double strain_recall_after{0.0};
  double replay_accuracy_after{0.0}; ///< no catastrophic forgetting
  std::size_t windows_added{0};
  std::uint32_t engine_weight_version{0};
};

/// Fine-tunes `model` on strain windows + `replay`, evaluates before/after,
/// and pushes the new weights into `engine` (no recompile).
CtiUpdateReport incorporate_strain(nn::LstmClassifier& model,
                                   kernels::CsdLstmEngine& engine,
                                   const ransomware::FamilyProfile& strain,
                                   const nn::SequenceDataset& replay,
                                   const nn::TrainConfig& fine_tune_config,
                                   std::uint64_t seed = 99);

}  // namespace csdml::detect
