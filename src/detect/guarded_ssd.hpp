// GuardedSsd — the drive-side write path with pre-image snapshots.
//
// The paper's mitigation stops *subsequent* encryption once ransomware is
// detected; whatever the malware wrote during the detection window (the
// first ~100+ calls) is already encrypted. Because the guard lives in the
// drive, it can do better: while a process is unresolved (observed but not
// yet cleared or quarantined), the drive preserves the pre-image of every
// block that process overwrites. On quarantine the pre-images roll back —
// the victim loses nothing. Pre-images of processes that prove benign are
// discarded.
//
// This is the storage-level analogue of the "near-instantaneous
// mitigation" argument: only a computational storage device sees both the
// verdict and the blocks.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detect/mitigation.hpp"

namespace csdml::detect {

struct GuardedWriteResult {
  bool accepted{false};     ///< false: quarantined process, write rejected
  bool snapshotted{false};  ///< pre-images preserved for this write
  TimePoint done{};
};

struct SnapshotStats {
  std::uint64_t blocks_preserved{0};
  std::uint64_t blocks_restored{0};
  std::uint64_t blocks_discarded{0};
  Bytes shadow_bytes{};
};

/// Wraps a SmartSSD's write path with guard consultation + copy-on-write
/// pre-image tracking per process.
class GuardedSsd {
 public:
  GuardedSsd(csd::SmartSsd& board, CsdGuard& guard);

  /// One API call observed for `process` (feeds the guard/detector). If
  /// this call quarantines the process, its pre-images are restored
  /// immediately and the restore time is charged to the drive.
  MitigationAction on_api_call(ProcessId process, nn::TokenId token,
                               TimePoint at);

  /// A write issued by `process`. While the process is unresolved the old
  /// block contents are preserved before being overwritten.
  GuardedWriteResult write(ProcessId process, std::uint64_t lba,
                           const std::vector<std::uint8_t>& data, TimePoint at);

  /// Marks a process as resolved-benign (e.g. it exited cleanly): its
  /// pre-images are discarded. While the CSD is unhealthy (classifications
  /// deferred or served degraded) the discard itself is deferred — the
  /// verdict might be overturned once the backlog drains — and flushed on
  /// the first call after the CSD recovers.
  void resolve_benign(ProcessId process);

  /// Benign discards currently parked awaiting CSD recovery.
  std::size_t deferred_discards() const { return deferred_benign_.size(); }

  /// Blocks currently preserved for a process.
  std::size_t preserved_blocks(ProcessId process) const;
  const SnapshotStats& stats() const { return stats_; }

 private:
  /// Restores every preserved pre-image of `process`; returns completion.
  TimePoint restore(ProcessId process, TimePoint at);
  /// Unconditionally drops a process's shadow blocks.
  void discard(ProcessId process);
  /// Applies parked benign discards once the CSD is healthy again.
  void flush_deferred();

  csd::SmartSsd& board_;
  CsdGuard& guard_;
  /// process -> (lba -> pre-image block). std::map keeps restores ordered.
  std::unordered_map<ProcessId, std::map<std::uint64_t, std::vector<std::uint8_t>>>
      shadows_;
  std::unordered_set<ProcessId> deferred_benign_;
  SnapshotStats stats_;
};

}  // namespace csdml::detect
