// In-CSD mitigation: what happens after a detection.
//
// Because the classifier "resides next to the data that it is protecting",
// mitigation is immediate: the guard quarantines the offending process and
// the drive rejects its writes from that point on — the paper's
// "near-instantaneous mitigation ... thwarting any subsequent encryption".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "detect/detector.hpp"

namespace csdml::detect {

enum class MitigationAction {
  None,
  AlertOnly,          ///< below the hard threshold: notify operators
  QuarantineProcess,  ///< reject all further writes from the process
};

struct MitigationPolicy {
  /// probability >= quarantine_threshold -> QuarantineProcess.
  double quarantine_threshold{0.90};
  /// probability >= alert_threshold -> AlertOnly.
  double alert_threshold{0.50};
};

struct GuardStats {
  std::uint64_t calls_observed{0};
  std::uint64_t detections{0};
  std::uint64_t quarantines{0};
  std::uint64_t writes_allowed{0};
  std::uint64_t writes_blocked{0};
};

/// The complete in-storage defence: streaming detection + write gating.
class CsdGuard {
 public:
  CsdGuard(kernels::CsdLstmEngine& engine, DetectorConfig detector_config,
           MitigationPolicy policy);

  /// Observes one API call. Returns the action taken for this call.
  MitigationAction on_api_call(ProcessId process, nn::TokenId token);

  /// The SSD write path asks the guard before servicing a write.
  /// Returns false (and counts a blocked write) for quarantined processes.
  bool allow_write(ProcessId process);

  bool is_quarantined(ProcessId process) const;
  void release(ProcessId process);

  const GuardStats& stats() const { return stats_; }
  const StreamingDetector& detector() const { return detector_; }
  StreamingDetector& detector() { return detector_; }

  /// False while the CSD engine is marked unhealthy; GuardedSsd consults
  /// this before making irreversible snapshot decisions.
  bool csd_healthy() const { return detector_.csd_healthy(); }

 private:
  StreamingDetector detector_;
  MitigationPolicy policy_;
  std::unordered_set<ProcessId> quarantined_;
  GuardStats stats_;
};

}  // namespace csdml::detect
