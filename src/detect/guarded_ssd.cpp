#include "detect/guarded_ssd.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace csdml::detect {

GuardedSsd::GuardedSsd(csd::SmartSsd& board, CsdGuard& guard)
    : board_(board), guard_(guard) {}

MitigationAction GuardedSsd::on_api_call(ProcessId process, nn::TokenId token,
                                         TimePoint at) {
  flush_deferred();
  if (!guard_.csd_healthy()) {
    obs::registry().add_counter("guarded_ssd.degraded_calls");
  }
  const bool was_quarantined = guard_.is_quarantined(process);
  const MitigationAction action = guard_.on_api_call(process, token);
  // Roll back exactly once, on the quarantine transition.
  if (action == MitigationAction::QuarantineProcess && !was_quarantined) {
    const std::uint64_t before = stats_.blocks_restored;
    restore(process, at);
    obs::registry().add_counter("guarded_ssd.quarantine_rollbacks");
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::Rollback, "guarded_ssd", "quarantine_rollback",
        at, board_.span_trace().current_trace(),
        stats_.blocks_restored - before);
    CSDML_LOG_INFO("guarded-ssd")
        << "process quarantined" << kv("process", process)
        << kv("blocks_rolled_back", stats_.blocks_restored - before);
  }
  return action;
}

GuardedWriteResult GuardedSsd::write(ProcessId process, std::uint64_t lba,
                                     const std::vector<std::uint8_t>& data,
                                     TimePoint at) {
  CSDML_REQUIRE(!data.empty(), "empty write");
  flush_deferred();
  GuardedWriteResult result;
  if (!guard_.allow_write(process)) {
    obs::registry().add_counter("guarded_ssd.writes_rejected");
    return result;  // rejected at the drive
  }

  const std::uint64_t block_bytes = board_.ssd().config().logical_block.count;
  const auto block_count = static_cast<std::uint32_t>(
      (data.size() + block_bytes - 1) / block_bytes);

  // Copy-on-write: preserve pre-images of blocks this process has not
  // touched before. (A quarantined process never reaches this point, and a
  // resolved-benign one has an empty shadow map that simply regrows.)
  auto& shadow = shadows_[process];
  const std::uint64_t preserved_before = stats_.blocks_preserved;
  csd::IoResult pre = board_.ssd().read(lba, block_count, at);
  TimePoint cursor = pre.done;
  bool snapshotted = false;
  for (std::uint32_t b = 0; b < block_count; ++b) {
    const std::uint64_t block_lba = lba + b;
    if (shadow.contains(block_lba)) continue;  // first pre-image wins
    const auto begin =
        pre.data.begin() + static_cast<std::ptrdiff_t>(b * block_bytes);
    shadow.emplace(block_lba,
                   std::vector<std::uint8_t>(begin, begin + static_cast<std::ptrdiff_t>(block_bytes)));
    ++stats_.blocks_preserved;
    stats_.shadow_bytes = stats_.shadow_bytes + Bytes{block_bytes};
    snapshotted = true;
  }

  result.done = board_.ssd().write(lba, data, cursor);
  result.accepted = true;
  result.snapshotted = snapshotted;
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("guarded_ssd.writes_accepted");
  metrics.add_counter("guarded_ssd.write_blocks", block_count);
  if (snapshotted) {
    metrics.add_counter("guarded_ssd.snapshotted_writes");
    metrics.add_counter("guarded_ssd.blocks_preserved",
                        stats_.blocks_preserved - preserved_before);
  }
  return result;
}

TimePoint GuardedSsd::restore(ProcessId process, TimePoint at) {
  const auto it = shadows_.find(process);
  if (it == shadows_.end()) return at;
  TimePoint cursor = at;
  for (const auto& [lba, pre_image] : it->second) {
    cursor = board_.ssd().write(lba, pre_image, cursor);
    ++stats_.blocks_restored;
  }
  obs::registry().add_counter("guarded_ssd.blocks_restored", it->second.size());
  shadows_.erase(it);
  return cursor;
}

void GuardedSsd::discard(ProcessId process) {
  const auto it = shadows_.find(process);
  if (it == shadows_.end()) return;
  stats_.blocks_discarded += it->second.size();
  shadows_.erase(it);
}

void GuardedSsd::flush_deferred() {
  if (deferred_benign_.empty() || !guard_.csd_healthy()) return;
  for (const ProcessId process : deferred_benign_) {
    discard(process);
  }
  obs::registry().add_counter("guarded_ssd.deferred_discards_flushed",
                              deferred_benign_.size());
  deferred_benign_.clear();
}

void GuardedSsd::resolve_benign(ProcessId process) {
  if (!guard_.csd_healthy()) {
    // The benign verdict may predate deferred classifications; keep the
    // pre-images (rollback capital) until the CSD can re-examine.
    if (shadows_.contains(process) && deferred_benign_.insert(process).second) {
      obs::registry().add_counter("guarded_ssd.deferred_discards");
    }
    return;
  }
  discard(process);
}

std::size_t GuardedSsd::preserved_blocks(ProcessId process) const {
  const auto it = shadows_.find(process);
  return it == shadows_.end() ? 0 : it->second.size();
}

}  // namespace csdml::detect
