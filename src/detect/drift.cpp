#include "detect/drift.hpp"

#include <cmath>

#include "common/error.hpp"

namespace csdml::detect {

namespace {
constexpr double kSmoothing = 1e-4;  // avoids log(0) on empty categories
}

CategoryDistribution category_distribution(const std::vector<nn::TokenId>& tokens) {
  CSDML_REQUIRE(!tokens.empty(), "empty token stream");
  const auto& vocab = ransomware::ApiVocabulary::instance();
  CategoryDistribution dist{};
  for (const nn::TokenId token : tokens) {
    dist[static_cast<std::size_t>(vocab.call(token).category)] += 1.0;
  }
  for (double& v : dist) v /= static_cast<double>(tokens.size());
  return dist;
}

CategoryDistribution category_distribution(const nn::SequenceDataset& dataset) {
  CSDML_REQUIRE(!dataset.empty(), "empty dataset");
  std::vector<nn::TokenId> all;
  for (const auto& seq : dataset.sequences) {
    all.insert(all.end(), seq.begin(), seq.end());
  }
  return category_distribution(all);
}

double population_stability_index(const CategoryDistribution& reference,
                                  const CategoryDistribution& observed) {
  double psi = 0.0;
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    const double r = reference[c] + kSmoothing;
    const double o = observed[c] + kSmoothing;
    psi += (o - r) * std::log(o / r);
  }
  return psi;
}

DriftMonitor::DriftMonitor(CategoryDistribution reference, DriftConfig config)
    : reference_(reference), config_(config) {
  CSDML_REQUIRE(config_.window_tokens > 0, "window must be positive");
  CSDML_REQUIRE(config_.consecutive_windows > 0,
                "consecutive_windows must be positive");
  CSDML_REQUIRE(config_.psi_threshold > 0.0, "threshold must be positive");
}

bool DriftMonitor::observe(nn::TokenId token) {
  const auto& vocab = ransomware::ApiVocabulary::instance();
  counts_[static_cast<std::size_t>(vocab.call(token).category)] += 1;
  if (++tokens_in_window_ < config_.window_tokens) return false;

  // Window complete: evaluate and reset the accumulator.
  CategoryDistribution observed{};
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    observed[c] = static_cast<double>(counts_[c]) /
                  static_cast<double>(config_.window_tokens);
  }
  counts_.fill(0);
  tokens_in_window_ = 0;
  ++windows_;

  last_psi_ = population_stability_index(reference_, observed);
  if (last_psi_ >= config_.psi_threshold) {
    ++over_threshold_streak_;
  } else {
    over_threshold_streak_ = 0;
  }
  if (!drifted_ && over_threshold_streak_ >= config_.consecutive_windows) {
    drifted_ = true;
    return true;
  }
  return false;
}

void DriftMonitor::reset() {
  drifted_ = false;
  over_threshold_streak_ = 0;
}

}  // namespace csdml::detect
