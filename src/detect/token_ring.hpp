// Fixed-capacity sliding token window with a contiguous zero-copy view.
//
// The streaming detector used to keep a std::deque per process and copy it
// into a fresh nn::Sequence for every hop classification — O(window)
// allocation + copy on the hottest path. This ring mirrors every token
// into a doubled backing store, so the logical window [oldest, newest] is
// always one contiguous run and view() is a pointer + length, never a
// copy. Cost: 2× window storage (800 bytes at the paper's window of 100).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "nn/dataset.hpp"

namespace csdml::detect {

class TokenRing {
 public:
  TokenRing() = default;
  explicit TokenRing(std::size_t capacity)
      : capacity_(capacity), data_(2 * capacity, 0) {
    CSDML_REQUIRE(capacity > 0, "ring capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends a token, evicting the oldest once the window is full. The
  /// token is written to its slot and the slot's mirror, keeping every
  /// window position readable without wraparound.
  void push(nn::TokenId token) {
    CSDML_REQUIRE(capacity_ > 0, "push on default-constructed ring");
    data_[write_] = token;
    data_[write_ + capacity_] = token;
    write_ = write_ + 1 == capacity_ ? 0 : write_ + 1;
    if (size_ < capacity_) ++size_;
  }

  /// Contiguous oldest→newest view; valid until the next push.
  nn::TokenSpan view() const {
    // While filling, the oldest token sits at slot 0; once full, the slot
    // about to be overwritten holds the oldest and the mirror makes the
    // run contiguous past the physical end.
    const std::size_t start = full() ? write_ : 0;
    return nn::TokenSpan(data_.data() + start, size_);
  }

  void clear() {
    write_ = 0;
    size_ = 0;
  }

  /// Rebuilds the window from a snapshot (oldest→newest) — e.g. when a
  /// process migrates between fleet boards and its window must re-warm on
  /// the destination so no classification context is lost. Snapshots
  /// longer than the capacity keep only the newest `capacity` tokens,
  /// exactly as if they had been pushed one by one.
  void warm(nn::TokenSpan tokens) {
    clear();
    for (const nn::TokenId token : tokens) push(token);
  }

 private:
  std::size_t capacity_{0};
  std::size_t write_{0};  ///< next physical slot in [0, capacity)
  std::size_t size_{0};
  std::vector<nn::TokenId> data_;  ///< 2 × capacity, mirrored halves
};

}  // namespace csdml::detect
