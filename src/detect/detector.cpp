#include "detect/detector.hpp"

#include "common/error.hpp"

namespace csdml::detect {

StreamingDetector::StreamingDetector(kernels::CsdLstmEngine& engine,
                                     DetectorConfig config)
    : engine_(engine), config_(config) {
  CSDML_REQUIRE(config_.window_length > 0, "window must be positive");
  CSDML_REQUIRE(config_.hop > 0, "hop must be positive");
  CSDML_REQUIRE(config_.consecutive_alerts > 0,
                "consecutive_alerts must be positive");
}

std::optional<Detection> StreamingDetector::on_api_call(ProcessId process,
                                                        nn::TokenId token) {
  ProcessState& state = processes_[process];
  state.window.push_back(token);
  if (state.window.size() > config_.window_length) state.window.pop_front();
  ++state.calls_seen;
  ++state.calls_since_eval;

  if (state.window.size() < config_.window_length) return std::nullopt;
  const bool first_full_window = state.calls_seen == config_.window_length;
  if (!first_full_window && state.calls_since_eval < config_.hop) {
    return std::nullopt;
  }
  state.calls_since_eval = 0;

  const nn::Sequence sequence(state.window.begin(), state.window.end());
  const kernels::InferenceResult result = engine_.infer(sequence);
  ++classifications_;
  device_time_ += result.device_time;

  if (result.probability >= config_.threshold) {
    ++state.alert_streak;
  } else {
    state.alert_streak = 0;
  }
  if (state.alert_streak < config_.consecutive_alerts) return std::nullopt;

  Detection detection;
  detection.process = process;
  detection.probability = result.probability;
  detection.call_index = state.calls_seen;
  detection.inference_time = result.device_time;
  return detection;
}

void StreamingDetector::forget(ProcessId process) { processes_.erase(process); }

}  // namespace csdml::detect
