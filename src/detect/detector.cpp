#include "detect/detector.hpp"

#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace csdml::detect {

namespace {

/// Deciles of window fill — occupancy is a fraction in [0, 1].
const std::vector<double>& occupancy_bounds() {
  static const std::vector<double> bounds{0.1, 0.2, 0.3, 0.4, 0.5,
                                          0.6, 0.7, 0.8, 0.9, 1.0};
  return bounds;
}

}  // namespace

StreamingDetector::StreamingDetector(kernels::CsdLstmEngine& engine,
                                     DetectorConfig config)
    : engine_(engine), config_(config) {
  CSDML_REQUIRE(config_.window_length > 0, "window must be positive");
  CSDML_REQUIRE(config_.hop > 0, "hop must be positive");
  CSDML_REQUIRE(config_.consecutive_alerts > 0,
                "consecutive_alerts must be positive");
}

std::optional<Detection> StreamingDetector::on_api_call(ProcessId process,
                                                        nn::TokenId token) {
  CSDML_REQUIRE(token >= 0 && token < engine_.model_config().vocab_size,
                "API-call token outside model vocabulary");
  obs::MetricsRegistry& metrics = obs::registry();
  const bool new_process = !processes_.contains(process);
  ProcessState& state = processes_[process];
  if (new_process) {
    state.window = TokenRing(config_.window_length);
    metrics.set_gauge("detector.tracked_processes",
                      static_cast<double>(processes_.size()));
  }
  state.window.push(token);
  ++state.calls_seen;
  ++state.calls_since_eval;

  if (!state.window.full()) return std::nullopt;
  // A classification is due on the call that first fills the window, then
  // every `hop` calls — including hop > window_length, where consecutive
  // windows simply skip hop - window_length calls entirely.
  const bool first_full_window = state.calls_seen == config_.window_length;
  if (!first_full_window && state.calls_since_eval < config_.hop) {
    return std::nullopt;
  }
  state.calls_since_eval = 0;

  // Request ingress: one trace per classification. Everything the engine,
  // transfers and kernels record until end_trace lands in this tree.
  obs::SpanTrace& spans = engine_.span_trace();
  const bool tracing = spans.enabled();
  obs::TraceId trace_id = 0;
  obs::SpanId root = 0;
  if (tracing) {
    trace_id = spans.begin_trace();
    root = spans.begin_span("detector.classify", engine_.device_now());
    spans.tag(root, "process", std::to_string(process));
    spans.tag(root, "call_index", std::to_string(state.calls_seen));
  }

  // Zero-copy: the ring's doubled backing store makes the window one
  // contiguous run, so classification needs no per-call Sequence copy.
  kernels::InferenceResult result;
  try {
    result = engine_.infer(state.window.view());
  } catch (const faults::CsdUnavailableError&) {
    // The due classification is deferred, not dropped: prime the hop
    // counter so the very next call for this process retries it (the
    // first-full-window condition can never re-trigger).
    state.calls_since_eval = config_.hop;
    state.deferred_pending = true;
    ++degraded_;
    metrics.add_counter("detector.degraded_classifications");
    if (tracing) {
      spans.tag(root, "deferred", "1");
      spans.end_span(root, engine_.device_now());
      spans.end_trace();
    }
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::Deferred, "detector", "csd_unavailable",
        engine_.device_now(), trace_id, process);
    return std::nullopt;
  }
  if (result.degraded) {
    metrics.add_counter("detector.fallback_classifications");
    if (tracing) spans.tag(root, "degraded", "1");
  }
  state.deferred_pending = false;
  ++classifications_;
  device_time_ += result.device_time;
  metrics.add_counter("detector.classifications");
  metrics.observe("detector.inference_us",
                  result.device_time.as_microseconds());

  if (result.probability >= config_.threshold) {
    ++state.alert_streak;
  } else {
    state.alert_streak = 0;
  }
  const bool alert = state.alert_streak >= config_.consecutive_alerts;
  if (!alert && state.alert_streak > 0) {
    // Over threshold but still inside the debounce window.
    metrics.add_counter("detector.debounce_suppressions");
    if (tracing) spans.tag(root, "debounced", "1");
  }
  if (tracing) {
    if (alert) spans.tag(root, "alert", "1");
    spans.end_span(root, engine_.device_now());
    spans.end_trace();
  }
  if (!alert) return std::nullopt;
  metrics.add_counter("detector.alerts");
  obs::FlightRecorder::instance().record(
      obs::FlightEventKind::Alert, "detector", "ransomware_alert",
      engine_.device_now(), trace_id, process);
  obs::FlightRecorder::instance().auto_dump("alert");

  Detection detection;
  detection.process = process;
  detection.probability = result.probability;
  detection.call_index = state.calls_seen;
  detection.inference_time = result.device_time;
  detection.degraded = result.degraded;
  detection.trace_id = trace_id;
  return detection;
}

void StreamingDetector::forget(ProcessId process) {
  const auto it = processes_.find(process);
  if (it == processes_.end()) {
    // Unknown id: process exit raced stream teardown, or it never made a
    // call. Count it; every other detector invariant is untouched.
    obs::registry().add_counter("detector.forget_unknown");
    return;
  }
  // Flush the per-process state into aggregate counters before erasing so
  // long-running fleets don't silently leak stats with process churn.
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("detector.processes_forgotten");
  if (it->second.deferred_pending) {
    // The process died with a deferred classification still owed: the
    // retry-on-next-call guarantee can no longer fire, so the deferral is
    // dropped here — the one place "never dropped" has an asterisk, and
    // it gets its own counter.
    metrics.add_counter("detector.forget_pending");
  }
  if (it->second.alert_streak > 0) {
    metrics.add_counter("detector.pending_alert_streaks_flushed",
                        it->second.alert_streak);
  }
  metrics.observe("detector.window_occupancy",
                  static_cast<double>(it->second.window.size()) /
                      static_cast<double>(config_.window_length),
                  occupancy_bounds());
  processes_.erase(it);
  metrics.set_gauge("detector.tracked_processes",
                    static_cast<double>(processes_.size()));
}

}  // namespace csdml::detect
