#include "fixed/activations.hpp"

#include <algorithm>
#include <cmath>

namespace csdml::fixedpt {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

double tanh_ref(double x) { return std::tanh(x); }

double softsign(double x) { return x / (std::abs(x) + 1.0); }

double softsign_derivative(double x) {
  const double d = std::abs(x) + 1.0;
  return 1.0 / (d * d);
}

double sigmoid_derivative(double x) {
  const double s = sigmoid(x);
  return s * (1.0 - s);
}

ScaledFixed softsign_fixed(ScaledFixed x) {
  // x/(|x|+1) at scale s: result_raw = raw * s / (|raw| + s), rounded.
  const std::int64_t s = x.scale();
  const std::int64_t raw = x.raw();
  const std::int64_t mag = raw < 0 ? -raw : raw;
  const __int128 numerator = static_cast<__int128>(raw) * s;
  const __int128 denominator = static_cast<__int128>(mag) + s;
  const __int128 half = denominator / 2;
  const __int128 adjusted = numerator >= 0 ? numerator + half : numerator - half;
  return ScaledFixed::from_raw(static_cast<std::int64_t>(adjusted / denominator), s);
}

namespace {

/// PLAN on the non-negative half-line, in doubles (exact mirror of the
/// integer version below up to rounding of the scaled coefficients).
double plan_positive(double ax) {
  if (ax >= 5.0) return 1.0;
  if (ax >= 2.375) return 0.03125 * ax + 0.84375;
  if (ax >= 1.0) return 0.125 * ax + 0.625;
  return 0.25 * ax + 0.5;
}

}  // namespace

double sigmoid_plan(double x) {
  const double ax = std::abs(x);
  const double half = plan_positive(ax);
  return x >= 0.0 ? half : 1.0 - half;
}

ScaledFixed sigmoid_fixed(ScaledFixed x) {
  const std::int64_t s = x.scale();
  const std::int64_t raw = x.raw();
  const std::int64_t mag = raw < 0 ? -raw : raw;

  // Segment boundaries and coefficients, scaled to the working scale.
  // All multiplications by the PLAN slopes are power-of-two divisions,
  // mirroring the shift-only datapath the scheme was designed for.
  const std::int64_t five = 5 * s;
  const std::int64_t two_375 = (19 * s) / 8;  // 2.375
  std::int64_t half_raw;                      // PLAN(|x|), scaled
  if (mag >= five) {
    half_raw = s;
  } else if (mag >= two_375) {
    half_raw = mag / 32 + (27 * s) / 32;  // 0.03125|x| + 0.84375
  } else if (mag >= s) {
    half_raw = mag / 8 + (5 * s) / 8;     // 0.125|x| + 0.625
  } else {
    half_raw = mag / 4 + s / 2;           // 0.25|x| + 0.5
  }
  const std::int64_t result = raw >= 0 ? half_raw : s - half_raw;
  return ScaledFixed::from_raw(result, s);
}

double softsign_tanh_max_gap(double radius, int samples) {
  double worst = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double x = -radius + 2.0 * radius * static_cast<double>(i) /
                                  static_cast<double>(samples);
    worst = std::max(worst, std::abs(softsign(x) - std::tanh(x)));
  }
  return worst;
}

}  // namespace csdml::fixedpt
