// Decimal scaled fixed-point arithmetic, as used by the paper's FPGA port.
//
// The paper multiplies weights, biases and embeddings by a decimal scaling
// factor of 10^6 ("placing more emphasis on maintaining the mantissa"),
// rounds to the nearest integer, and performs all kernel arithmetic on the
// resulting integers so that multiplies map onto DSP slices. Each product
// of two scaled values carries a factor of 10^12 and is corrected back to
// the working scale. This class reproduces that scheme exactly, with a
// 128-bit intermediate so products of the magnitudes that occur in the
// LSTM (|x| ≲ 10^3) never overflow.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace csdml::fixedpt {

/// The paper's scaling factor.
inline constexpr std::int64_t kPaperScale = 1'000'000;

class ScaledFixed {
 public:
  /// Zero at the paper's default scale.
  constexpr ScaledFixed() = default;

  /// Converts a real value, rounding to the nearest representable number
  /// (ties away from zero, matching std::llround).
  static ScaledFixed from_double(double value, std::int64_t scale = kPaperScale) {
    CSDML_REQUIRE(scale > 0, "scale must be positive");
    const double scaled = value * static_cast<double>(scale);
    CSDML_REQUIRE(std::abs(scaled) <
                      static_cast<double>(std::numeric_limits<std::int64_t>::max()),
                  "value out of range for this scale");
    return ScaledFixed(std::llround(scaled), scale);
  }

  /// Adopts an already-scaled raw integer.
  static constexpr ScaledFixed from_raw(std::int64_t raw,
                                        std::int64_t scale = kPaperScale) {
    return ScaledFixed(raw, scale);
  }

  constexpr std::int64_t raw() const { return raw_; }
  constexpr std::int64_t scale() const { return scale_; }

  double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(scale_);
  }

  /// Addition: both operands must share a scale (enforced).
  friend ScaledFixed operator+(ScaledFixed a, ScaledFixed b) {
    CSDML_REQUIRE(a.scale_ == b.scale_, "mixed-scale addition");
    return ScaledFixed(a.raw_ + b.raw_, a.scale_);
  }
  friend ScaledFixed operator-(ScaledFixed a, ScaledFixed b) {
    CSDML_REQUIRE(a.scale_ == b.scale_, "mixed-scale subtraction");
    return ScaledFixed(a.raw_ - b.raw_, a.scale_);
  }
  friend constexpr ScaledFixed operator-(ScaledFixed a) {
    return ScaledFixed(-a.raw_, a.scale_);
  }

  /// Multiplication with the paper's post-product correction: the raw
  /// product carries scale^2 and is divided back down to scale, with
  /// round-to-nearest to "minimize errors from finite precision".
  friend ScaledFixed operator*(ScaledFixed a, ScaledFixed b) {
    CSDML_REQUIRE(a.scale_ == b.scale_, "mixed-scale multiplication");
    const __int128 product = static_cast<__int128>(a.raw_) * b.raw_;
    return ScaledFixed(round_div(product, a.scale_), a.scale_);
  }

  /// Division, rounded to nearest.
  friend ScaledFixed operator/(ScaledFixed a, ScaledFixed b) {
    CSDML_REQUIRE(a.scale_ == b.scale_, "mixed-scale division");
    CSDML_REQUIRE(b.raw_ != 0, "division by zero");
    const __int128 numerator = static_cast<__int128>(a.raw_) * a.scale_;
    return ScaledFixed(round_div(numerator, b.raw_), a.scale_);
  }

  ScaledFixed& operator+=(ScaledFixed other) { return *this = *this + other; }
  ScaledFixed& operator-=(ScaledFixed other) { return *this = *this - other; }
  ScaledFixed& operator*=(ScaledFixed other) { return *this = *this * other; }

  friend constexpr bool operator==(ScaledFixed a, ScaledFixed b) {
    return a.raw_ == b.raw_ && a.scale_ == b.scale_;
  }
  friend bool operator<(ScaledFixed a, ScaledFixed b) {
    CSDML_REQUIRE(a.scale_ == b.scale_, "mixed-scale comparison");
    return a.raw_ < b.raw_;
  }

  ScaledFixed abs() const { return ScaledFixed(raw_ < 0 ? -raw_ : raw_, scale_); }

  /// Raw-domain product with the paper's post-product correction —
  /// bit-identical to `from_raw(a) * from_raw(b)` at the same scale. The
  /// fused datapaths keep whole tensors at one known scale and use this to
  /// skip the per-operand scale bookkeeping in their inner loops.
  static std::int64_t mul_raw(std::int64_t a, std::int64_t b,
                              std::int64_t scale) {
    return round_div(static_cast<__int128>(a) * b, scale);
  }

  /// Largest representable magnitude error of a conversion: 0.5 / scale.
  double quantum() const { return 0.5 / static_cast<double>(scale_); }

 private:
  constexpr ScaledFixed(std::int64_t raw, std::int64_t scale)
      : raw_(raw), scale_(scale) {}

  /// Round-to-nearest signed integer division (ties away from zero).
  static std::int64_t round_div(__int128 numerator, std::int64_t denominator) {
    const __int128 den = denominator;
    const __int128 half = den / 2;
    const __int128 adjusted = numerator >= 0 ? numerator + half : numerator - half;
    const __int128 q = adjusted / den;
    CSDML_REQUIRE(q <= std::numeric_limits<std::int64_t>::max() &&
                      q >= std::numeric_limits<std::int64_t>::min(),
                  "fixed-point overflow");
    return static_cast<std::int64_t>(q);
  }

  std::int64_t raw_{0};
  std::int64_t scale_{kPaperScale};
};

/// Invariant-divisor companion to `ScaledFixed::mul_raw` for fused inner
/// loops. A datapath's scale never changes after construction, so the
/// post-product correction — a 128-bit division in `round_div`, the single
/// most expensive operation in the fixed hot loops — can be replaced by a
/// double-precision reciprocal estimate repaired to the exact integer
/// quotient. `mul(a, b)` is bit-identical to `mul_raw(a, b, scale())` for
/// all inputs: the repair loops establish `0 <= r < scale` without
/// assuming anything about the estimate's rounding, and products too big
/// for the double-exact window fall back to the wide path.
class InvariantScale {
 public:
  explicit InvariantScale(std::int64_t scale)
      : scale_(scale),
        half_(scale / 2),
        inv_(1.0 / static_cast<double>(scale)) {
    CSDML_REQUIRE(scale > 0, "scale must be positive");
  }

  std::int64_t scale() const { return scale_; }

  std::int64_t mul(std::int64_t a, std::int64_t b) const {
    const __int128 wide = static_cast<__int128>(a) * b;
    // Need |product| + scale/2 exactly representable as a double (< 2^53);
    // LSTM-range operands never leave this window.
    constexpr std::int64_t kExact = std::int64_t{1} << 52;
    if (wide >= kExact || wide <= -kExact) {
      return ScaledFixed::mul_raw(a, b, scale_);
    }
    const std::int64_t narrow = static_cast<std::int64_t>(wide);
    const std::int64_t mag = narrow < 0 ? -narrow : narrow;
    // round_div's ties-away rounding on the signed product is floor
    // division of |product| + scale/2 with the sign re-applied.
    const std::int64_t nh = mag + half_;
    std::int64_t q = static_cast<std::int64_t>(static_cast<double>(nh) * inv_);
    std::int64_t r = nh - q * scale_;
    while (r < 0) {
      --q;
      r += scale_;
    }
    while (r >= scale_) {
      ++q;
      r -= scale_;
    }
    return narrow < 0 ? -q : q;
  }

 private:
  std::int64_t scale_;
  std::int64_t half_;
  double inv_;
};

}  // namespace csdml::fixedpt
