// Generic binary Q-format fixed point (Qm.n), the representation HLS's
// ap_fixed<> provides on real Vitis toolchains. Offered alongside the
// paper's decimal scheme so the ablation benches can compare binary
// against decimal scaling, and to support the mixed-precision direction
// the paper lists as future work.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/error.hpp"

namespace csdml::fixedpt {

/// Qm.n two's-complement fixed point in an int64 container.
/// `FracBits` = n; integer bits are implicitly 63 - n.
template <int FracBits>
class QFixed {
  static_assert(FracBits > 0 && FracBits < 63, "FracBits must be in (0, 63)");

 public:
  static constexpr int kFracBits = FracBits;
  static constexpr std::int64_t kOne = std::int64_t{1} << FracBits;

  constexpr QFixed() = default;

  static QFixed from_double(double value) {
    const double scaled = value * static_cast<double>(kOne);
    CSDML_REQUIRE(std::abs(scaled) <
                      static_cast<double>(std::numeric_limits<std::int64_t>::max()),
                  "value out of range for Q format");
    return QFixed(std::llround(scaled));
  }
  static constexpr QFixed from_raw(std::int64_t raw) { return QFixed(raw); }

  constexpr std::int64_t raw() const { return raw_; }
  double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  friend constexpr QFixed operator+(QFixed a, QFixed b) { return QFixed(a.raw_ + b.raw_); }
  friend constexpr QFixed operator-(QFixed a, QFixed b) { return QFixed(a.raw_ - b.raw_); }
  friend constexpr QFixed operator-(QFixed a) { return QFixed(-a.raw_); }

  friend QFixed operator*(QFixed a, QFixed b) {
    const __int128 p = static_cast<__int128>(a.raw_) * b.raw_;
    // Round to nearest by adding half an LSB before the arithmetic shift.
    const __int128 rounded = p + (__int128{1} << (FracBits - 1));
    return QFixed(static_cast<std::int64_t>(rounded >> FracBits));
  }

  friend QFixed operator/(QFixed a, QFixed b) {
    CSDML_REQUIRE(b.raw_ != 0, "division by zero");
    const __int128 n = static_cast<__int128>(a.raw_) << FracBits;
    return QFixed(static_cast<std::int64_t>(n / b.raw_));
  }

  QFixed& operator+=(QFixed other) { raw_ += other.raw_; return *this; }
  friend constexpr auto operator<=>(QFixed, QFixed) = default;

  static constexpr double resolution() { return 1.0 / static_cast<double>(kOne); }

 private:
  constexpr explicit QFixed(std::int64_t raw) : raw_(raw) {}
  std::int64_t raw_{0};
};

using Q16 = QFixed<16>;  ///< ~1.5e-5 resolution; comparable to the 1e6 decimal scale... one bit coarser
using Q20 = QFixed<20>;  ///< ~9.5e-7 resolution; matches the paper's 1e-6 quantum
using Q24 = QFixed<24>;  ///< ~6e-8 resolution; the "higher precision" arm of mixed precision

}  // namespace csdml::fixedpt
