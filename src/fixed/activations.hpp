// Activation functions in float and in the paper's decimal fixed point.
//
// The paper replaces every tanh in the LSTM with softsign(x) = x/(|x|+1)
// because softsign shares tanh's S-shape and asymptotes while avoiding
// exp() on the FPGA. The fixed-point sigmoid uses a piecewise-linear
// approximation (the standard PLAN scheme) so that, like softsign, it
// needs no exponentials — only shifts, adds and one bounded division.
#pragma once

#include "fixed/scaled_fixed.hpp"

namespace csdml::fixedpt {

// --- float reference implementations -----------------------------------

double sigmoid(double x);
double tanh_ref(double x);
double softsign(double x);
/// d/dx softsign = 1 / (|x|+1)^2 — used by the trainer when the model is
/// trained with the same activation it will run with on the CSD.
double softsign_derivative(double x);
double sigmoid_derivative(double x);

// --- fixed-point implementations ----------------------------------------

/// softsign on scaled integers: raw / (|raw|/scale + 1) stays exact in
/// integer arithmetic — x/(|x|+1) == raw / ((|raw| + scale) / scale).
ScaledFixed softsign_fixed(ScaledFixed x);

/// PLAN piecewise-linear sigmoid (Amin, Curtis & Hayes-Gill, 1997):
///   |x| >= 5        -> 1
///   2.375 <= |x| < 5 -> 0.03125*|x| + 0.84375
///   1 <= |x| < 2.375 -> 0.125*|x| + 0.625
///   0 <= |x| < 1     -> 0.25*|x| + 0.5
/// with sigmoid(-x) = 1 - sigmoid(x). Max abs error ≈ 0.0189.
ScaledFixed sigmoid_fixed(ScaledFixed x);

/// Float mirror of sigmoid_fixed for error analysis in tests/benches.
double sigmoid_plan(double x);

/// Max abs deviation |softsign - tanh| on [-r, r] sampled at `samples`
/// points; used by the activation ablation bench.
double softsign_tanh_max_gap(double radius, int samples);

}  // namespace csdml::fixedpt
