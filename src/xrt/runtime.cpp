#include "xrt/runtime.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "faults/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span_trace.hpp"

namespace csdml::xrt {

hls::ResourceEstimate Xclbin::total_resources() const {
  hls::ResourceEstimate total;
  for (const auto& [name, spec] : kernels) {
    total += hls::estimate_resources(spec);
  }
  return total;
}

void BufferObject::write(const std::vector<std::uint8_t>& data) {
  CSDML_REQUIRE(data.size() <= size_, "write exceeds buffer size");
  std::copy(data.begin(), data.end(), host_.begin());
}

void BufferObject::sync_to_device() {
  const TimePoint start = device_->now_;
  obs::SpanTrace& spans = device_->board_.span_trace();
  const bool traced = spans.enabled() && spans.in_trace();
  const obs::SpanId span =
      traced ? spans.begin_span("xrt.sync_to_device", start) : 0;
  const csd::TransferResult result = device_->board_.host_write_to_fpga(
      host_, bank_, offset_, start);
  device_->advance_to(result.done);
  if (traced) spans.end_span(span, result.done);
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("xrt.bo_syncs_to_device");
  metrics.add_counter("xrt.pcie_to_device_bytes", size_);
}

void BufferObject::sync_from_device() {
  const TimePoint start = device_->now_;
  obs::SpanTrace& spans = device_->board_.span_trace();
  const bool traced = spans.enabled() && spans.in_trace();
  const obs::SpanId span =
      traced ? spans.begin_span("xrt.sync_from_device", start) : 0;
  const csd::IoResult result = device_->board_.host_read_from_fpga(
      bank_, offset_, size_, start);
  host_ = result.data;
  device_->advance_to(result.done);
  if (traced) spans.end_span(span, result.done);
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("xrt.bo_syncs_from_device");
  metrics.add_counter("xrt.pcie_from_device_bytes", size_);
}

Duration Kernel::latency() const {
  return analyze().duration(device_->model_.clock());
}

hls::KernelReport Kernel::analyze() const { return device_->model_.analyze(spec_); }

TimePoint Kernel::launch(TimePoint at) {
  CSDML_REQUIRE(at >= TimePoint{}, "launch before simulation start");
  obs::SpanTrace& spans = device_->board_.span_trace();
  faults::FaultPlan* plan = device_->board_.fault_plan();
  if (plan != nullptr &&
      plan->should_inject(faults::FaultKind::XrtLaunchFailure)) {
    obs::registry().add_counter("xrt.kernel_launch_faults");
    // Zero-length span marks the failed attempt in the request tree.
    if (spans.enabled() && spans.in_trace()) {
      const obs::SpanId span = spans.begin_span(spec_.name, at);
      spans.tag(span, "fault", "xrt_launch_injected");
      spans.end_span(span, at);
    }
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::Fault, "xrt", spec_.name.c_str(), at,
        spans.current_trace());
    throw faults::FaultInjectedError("kernel '" + spec_.name +
                                     "' launch failed (injected)");
  }
  const Duration latency = this->latency();
  const TimePoint end = at + latency;
  device_->board_.trace().record(spec_.name, at, end);
  obs::record_span(spans, spec_.name, at, end);
  device_->advance_to(end);
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("xrt.kernel_launches");
  metrics.observe("xrt.kernel_launch_us", latency.as_microseconds());
  return end;
}

TimePoint Kernel::launch() { return launch(device_->now_); }

Device::Device(csd::SmartSsd& board, hls::HlsCostModel model)
    : board_(board), model_(model),
      bank_cursor_(board.fpga().bank_count(), 0) {}

void Device::advance_to(TimePoint t) {
  if (t > now_) now_ = t;
}

void Device::load_xclbin(const Xclbin& xclbin) {
  board_.fpga().place(xclbin.name, xclbin.total_resources());
  for (const auto& [name, spec] : xclbin.kernels) {
    const auto [it, inserted] = kernels_.insert_or_assign(name, spec);
    (void)it;
    if (!inserted) {
      CSDML_LOG_WARN("xrt") << "kernel '" << name << "' replaced by " << xclbin.name;
    }
  }
  CSDML_LOG_INFO("xrt") << "loaded xclbin '" << xclbin.name << "', fpga utilization "
                        << board_.fpga().utilization();
}

BufferObject Device::alloc_bo(std::size_t size, std::uint32_t bank) {
  CSDML_REQUIRE(size > 0, "zero-size buffer object");
  CSDML_REQUIRE(bank < bank_cursor_.size(), "bank index out of range");
  const std::uint64_t capacity = board_.fpga().bank(bank).config().capacity.count;
  // 4 KiB-aligned bump allocation, mirroring XRT's page-aligned BOs.
  const std::uint64_t aligned = (bank_cursor_[bank] + 4095) & ~std::uint64_t{4095};
  if (aligned + size > capacity) {
    throw ResourceError("DDR bank " + std::to_string(bank) + " exhausted");
  }
  bank_cursor_[bank] = aligned + size;
  return BufferObject(this, size, bank, aligned);
}

Kernel Device::kernel(const std::string& name) const {
  const auto it = kernels_.find(name);
  if (it == kernels_.end()) {
    throw PreconditionError("kernel '" + name + "' not in any loaded xclbin");
  }
  return Kernel(const_cast<Device*>(this), it->second);
}

}  // namespace csdml::xrt
