// A miniature Xilinx-Runtime-shaped host API over the simulated SmartSSD.
//
// The paper's host program follows the standard XRT flow: open the device,
// load the .xclbin, allocate buffer objects on DDR banks, sync them, and
// launch kernels. This module reproduces that flow (device / xclbin /
// buffer / kernel / run) with simulated time instead of real hardware, so
// host code written against it reads like real XRT host code.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "csd/smartssd.hpp"
#include "hls/cost_model.hpp"
#include "hls/kernel_spec.hpp"
#include "hls/resources.hpp"

namespace csdml::xrt {

/// A compiled FPGA binary: named kernels plus their synthesized footprint.
struct Xclbin {
  std::string name;
  std::map<std::string, hls::KernelSpec> kernels;

  hls::ResourceEstimate total_resources() const;
};

class Device;

/// Device-resident buffer: functional bytes live in the chosen DDR bank;
/// sync operations charge PCIe + DDR time.
class BufferObject {
 public:
  std::size_t size() const { return size_; }
  std::uint32_t bank() const { return bank_; }
  std::uint64_t device_offset() const { return offset_; }

  /// Host-side staging write (no simulated time; host memory is free).
  void write(const std::vector<std::uint8_t>& data);
  /// Host-side staging read of the last synced-from-device content.
  const std::vector<std::uint8_t>& host_view() const { return host_; }

  /// XCL_BO_SYNC_BO_TO_DEVICE: host -> PCIe -> bank.
  void sync_to_device();
  /// XCL_BO_SYNC_BO_FROM_DEVICE: bank -> PCIe -> host.
  void sync_from_device();

 private:
  friend class Device;
  BufferObject(Device* device, std::size_t size, std::uint32_t bank,
               std::uint64_t offset)
      : device_(device), size_(size), bank_(bank), offset_(offset),
        host_(size, 0) {}

  Device* device_;
  std::size_t size_;
  std::uint32_t bank_;
  std::uint64_t offset_;
  std::vector<std::uint8_t> host_;
};

/// Handle to one loaded kernel; launching charges its modelled latency.
class Kernel {
 public:
  const std::string& name() const { return spec_.name; }
  const hls::KernelSpec& spec() const { return spec_; }
  hls::KernelSpec& mutable_spec() { return spec_; }

  /// Latency of one invocation under the device's cost model.
  Duration latency() const;
  /// Full analysis (per-loop cycles, AXI split).
  hls::KernelReport analyze() const;

  /// Launches at `at` (defaults to device-now); returns completion time
  /// and records a trace span named after the kernel.
  TimePoint launch(TimePoint at);
  TimePoint launch();

 private:
  friend class Device;
  Kernel(Device* device, hls::KernelSpec spec)
      : device_(device), spec_(std::move(spec)) {}

  Device* device_;
  hls::KernelSpec spec_;
};

/// The opened SmartSSD seen through the runtime.
class Device {
 public:
  explicit Device(csd::SmartSsd& board,
                  hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default());

  csd::SmartSsd& board() { return board_; }
  const hls::HlsCostModel& cost_model() const { return model_; }

  /// Host-visible logical time cursor.
  TimePoint now() const { return now_; }
  void advance_to(TimePoint t);

  /// Loads an xclbin: places its resources on the FPGA (throws
  /// ResourceError if it does not fit) and makes its kernels available.
  void load_xclbin(const Xclbin& xclbin);

  /// Allocates a buffer object on `bank` (bump allocation).
  BufferObject alloc_bo(std::size_t size, std::uint32_t bank);

  /// Looks up a kernel by name from the loaded xclbin.
  Kernel kernel(const std::string& name) const;

 private:
  friend class BufferObject;
  friend class Kernel;

  csd::SmartSsd& board_;
  hls::HlsCostModel model_;
  TimePoint now_{};
  std::map<std::string, hls::KernelSpec> kernels_;
  std::vector<std::uint64_t> bank_cursor_;
};

}  // namespace csdml::xrt
