#include "csd/smartssd.hpp"

#include "faults/fault_plan.hpp"

namespace csdml::csd {

SmartSsd::SmartSsd(SmartSsdConfig config)
    : config_(config),
      ssd_(config.ssd),
      fpga_(config.fpga),
      switch_(config.upstream, config.internal) {}

void SmartSsd::set_fault_plan(faults::FaultPlan* plan) {
  fault_plan_ = plan;
  ssd_.set_fault_plan(plan);
}

void SmartSsd::maybe_corrupt(std::vector<std::uint8_t>& data) {
  if (fault_plan_ == nullptr || data.empty()) return;
  if (!fault_plan_->should_inject(faults::FaultKind::PcieCorruption)) return;
  const std::uint64_t bit = fault_plan_->draw_detail(data.size() * 8);
  data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

TransferResult SmartSsd::p2p_read_to_fpga(std::uint64_t lba,
                                          std::uint32_t block_count,
                                          std::uint32_t bank,
                                          std::uint64_t bank_offset, TimePoint at) {
  IoResult io = ssd_.read(lba, block_count, at);
  maybe_corrupt(io.data);
  const Bytes bytes{io.data.size()};
  const TimePoint switched = switch_.peer_to_peer(bytes, io.done);
  const TimePoint landed = fpga_.bank(bank).access(bytes, switched);
  fpga_.bank(bank).store(bank_offset, io.data);
  trace_.record("p2p_read", at, landed);
  obs::record_span(span_trace_, "p2p_read", at, landed);
  return TransferResult{landed, bytes};
}

TransferResult SmartSsd::host_read_to_fpga(std::uint64_t lba,
                                           std::uint32_t block_count,
                                           std::uint32_t bank,
                                           std::uint64_t bank_offset, TimePoint at) {
  IoResult io = ssd_.read(lba, block_count, at);
  maybe_corrupt(io.data);
  const Bytes bytes{io.data.size()};
  // Leg 1: device -> host root complex.
  const TimePoint at_host = switch_.to_host(bytes, io.done);
  // Host staging: page-cache/bounce-buffer management.
  const TimePoint staged = at_host + config_.host_stage_copy_overhead;
  // Leg 2: host -> FPGA DDR through the same upstream link, then the bank.
  const TimePoint back_down = switch_.from_host(bytes, staged);
  const TimePoint landed = fpga_.bank(bank).access(bytes, back_down);
  fpga_.bank(bank).store(bank_offset, io.data);
  trace_.record("host_read", at, landed);
  obs::record_span(span_trace_, "host_read", at, landed);
  return TransferResult{landed, bytes};
}

TransferResult SmartSsd::host_write_to_fpga(const std::vector<std::uint8_t>& data,
                                            std::uint32_t bank,
                                            std::uint64_t bank_offset, TimePoint at) {
  const Bytes bytes{data.size()};
  const TimePoint arrived = switch_.from_host(bytes, at);
  const TimePoint landed = fpga_.bank(bank).access(bytes, arrived);
  if (fault_plan_ != nullptr) {
    std::vector<std::uint8_t> staged = data;
    maybe_corrupt(staged);
    fpga_.bank(bank).store(bank_offset, staged);
  } else {
    fpga_.bank(bank).store(bank_offset, data);
  }
  trace_.record("host_write_fpga", at, landed);
  obs::record_span(span_trace_, "host_write_fpga", at, landed);
  return TransferResult{landed, bytes};
}

IoResult SmartSsd::host_read_from_fpga(std::uint32_t bank, std::uint64_t bank_offset,
                                       std::size_t size, TimePoint at) {
  IoResult result;
  result.data = fpga_.bank(bank).load(bank_offset, size);
  maybe_corrupt(result.data);
  const Bytes bytes{size};
  const TimePoint fetched = fpga_.bank(bank).access(bytes, at);
  result.done = switch_.to_host(bytes, fetched);
  trace_.record("host_read_fpga", at, result.done);
  obs::record_span(span_trace_, "host_read_fpga", at, result.done);
  return result;
}

}  // namespace csdml::csd
