#include "csd/nand.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"

namespace csdml::csd {

NandArray::NandArray(NandConfig config)
    : config_(config),
      channel_bus_(config.channels),
      die_(static_cast<std::size_t>(config.channels) * config.dies_per_channel),
      reliability_rng_(Rng(config.reliability_seed).fork("nand-ber")) {
  CSDML_REQUIRE(config_.channels > 0 && config_.dies_per_channel > 0,
                "NAND needs at least one channel and die");
  CSDML_REQUIRE(config_.page_size.count > 0, "page size must be positive");
  CSDML_REQUIRE(config_.raw_bit_error_rate >= 0.0 &&
                    config_.raw_bit_error_rate < 1.0,
                "bit error rate must be in [0, 1)");
  CSDML_REQUIRE(config_.ecc_codeword.count > 0, "codeword must be positive");
}

void NandArray::validate(const PageAddress& addr) const {
  CSDML_REQUIRE(addr.channel < config_.channels, "channel out of range");
  CSDML_REQUIRE(addr.die < config_.dies_per_channel, "die out of range");
}

std::uint64_t NandArray::die_index(const PageAddress& addr) const {
  return static_cast<std::uint64_t>(addr.channel) * config_.dies_per_channel +
         addr.die;
}

std::uint64_t NandArray::page_key(const PageAddress& addr) const {
  // 8 bits channel | 8 bits die | 48 bits page.
  return (static_cast<std::uint64_t>(addr.channel) << 56) |
         (static_cast<std::uint64_t>(addr.die) << 48) | addr.page;
}

NandArray::ReadResult NandArray::read_page(const PageAddress& addr, TimePoint at,
                                            std::vector<std::uint8_t>* out) {
  validate(addr);
  // The die is busy for tR; the channel bus then moves the page out.
  const TimePoint sense_start =
      die_[die_index(addr)].acquire(at, config_.read_latency);
  const TimePoint sense_done = sense_start + config_.read_latency;
  const Duration transfer = config_.channel_bandwidth.transfer_time(config_.page_size);
  const TimePoint bus_start = channel_bus_[addr.channel].acquire(sense_done, transfer);
  TimePoint done = bus_start + transfer;

  ReadResult result;
  // Planned read-disturb faults trump natural BER sampling: an injected
  // disturb always exceeds the LDPC budget, and skipping the natural draw
  // keeps the reliability stream's schedule independent of the plan.
  if (fault_plan_ != nullptr &&
      fault_plan_->should_inject(faults::FaultKind::NandReadDisturb)) {
    const std::uint64_t codewords =
        (config_.page_size.count + config_.ecc_codeword.count - 1) /
        config_.ecc_codeword.count;
    fault_plan_->draw_detail(codewords);  // which codeword blew the budget
    result.raw_bit_errors = config_.ecc_correctable_bits + 1;
    result.uncorrectable = true;
    ++uncorrectable_reads_;
  } else if (config_.raw_bit_error_rate > 0.0) {
    const double bits = static_cast<double>(config_.page_size.count) * 8.0;
    const double lambda = bits * config_.raw_bit_error_rate;
    // Poisson via thinning of expected count (exact for small lambda; the
    // normal approximation takes over above 64).
    std::uint32_t errors = 0;
    if (lambda < 64.0) {
      double threshold = std::exp(-lambda);
      double p = 1.0;
      while (true) {
        p *= reliability_rng_.uniform();
        if (p <= threshold) break;
        ++errors;
      }
    } else {
      errors = static_cast<std::uint32_t>(std::max(
          0.0, reliability_rng_.normal(lambda, std::sqrt(lambda))));
    }
    result.raw_bit_errors = errors;
    if (errors > 0) {
      const std::uint64_t codewords =
          (config_.page_size.count + config_.ecc_codeword.count - 1) /
          config_.ecc_codeword.count;
      // Worst-loaded codeword: distribute errors over codewords randomly.
      std::vector<std::uint32_t> per_codeword(codewords, 0);
      for (std::uint32_t e = 0; e < errors; ++e) {
        ++per_codeword[static_cast<std::size_t>(reliability_rng_.uniform_int(
            0, static_cast<std::int64_t>(codewords) - 1))];
      }
      for (const std::uint32_t load : per_codeword) {
        if (load > config_.ecc_correctable_bits) {
          result.uncorrectable = true;
          break;
        }
      }
      if (result.uncorrectable) {
        ++uncorrectable_reads_;
      } else {
        ++corrected_reads_;
        done = done + config_.ecc_correction_latency;
      }
    }
  }

  if (out != nullptr) {
    const auto it = pages_.find(page_key(addr));
    if (it != pages_.end()) {
      *out = it->second;
    } else {
      out->assign(config_.page_size.count, 0xFF);  // erased flash reads 1s
    }
  }
  result.done = done;
  return result;
}

TimePoint NandArray::program_page(const PageAddress& addr, TimePoint at,
                                  const std::vector<std::uint8_t>& data) {
  validate(addr);
  CSDML_REQUIRE(data.size() <= config_.page_size.count,
                "program data exceeds page size");
  const Duration transfer = config_.channel_bandwidth.transfer_time(config_.page_size);
  const TimePoint bus_start = channel_bus_[addr.channel].acquire(at, transfer);
  const TimePoint in_register = bus_start + transfer;
  const TimePoint prog_start =
      die_[die_index(addr)].acquire(in_register, config_.program_latency);
  pages_[page_key(addr)] = data;
  ++pages_programmed_;
  return prog_start + config_.program_latency;
}

TimePoint NandArray::erase_block(const PageAddress& addr, TimePoint at) {
  validate(addr);
  const std::uint64_t block_base =
      addr.page / config_.pages_per_block * config_.pages_per_block;
  for (std::uint64_t p = 0; p < config_.pages_per_block; ++p) {
    PageAddress victim = addr;
    victim.page = block_base + p;
    pages_.erase(page_key(victim));
  }
  const TimePoint start = die_[die_index(addr)].acquire(at, config_.erase_latency);
  ++blocks_erased_;
  return start + config_.erase_latency;
}

Duration NandArray::total_channel_busy() const {
  Duration total{};
  for (const auto& bus : channel_bus_) total += bus.busy_time();
  return total;
}

}  // namespace csdml::csd
