// PCIe link and the SmartSSD's onboard switch.
//
// The switch is what makes the device interesting: it gives the SSD and
// the FPGA a peer-to-peer (P2P) path through FPGA DRAM that never crosses
// the host root complex, "drastically reducing PCIe traffic and CPU
// overhead" (paper, Section II).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace csdml::csd {

struct PcieLinkConfig {
  /// Effective data rate after encoding/protocol overhead.
  Bandwidth bandwidth{Bandwidth::gb_per_s(3.2)};  ///< Gen3 x4 effective
  Duration per_transfer_overhead{Duration::nanoseconds(700)};  ///< DMA setup + TLP
};

/// A single full-duplex-simplified PCIe link modelled as a serial resource.
class PcieLink {
 public:
  explicit PcieLink(PcieLinkConfig config) : config_(config) {}

  const PcieLinkConfig& config() const { return config_; }

  /// Schedules a transfer of `bytes` starting no earlier than `at`;
  /// returns the completion time.
  TimePoint transfer(Bytes bytes, TimePoint at);

  Duration busy_time() const { return link_.busy_time(); }
  Bytes bytes_moved() const { return moved_; }

 private:
  PcieLinkConfig config_;
  sim::SerialResource link_;
  Bytes moved_{};
};

/// The SmartSSD's PCIe topology: one upstream link to the host and an
/// internal switch port between SSD and FPGA for P2P.
class PcieSwitch {
 public:
  PcieSwitch(PcieLinkConfig upstream, PcieLinkConfig internal)
      : upstream_(upstream), internal_(internal) {}

  /// Device <-> host traffic (crosses the host root complex).
  TimePoint to_host(Bytes bytes, TimePoint at) { return upstream_.transfer(bytes, at); }
  TimePoint from_host(Bytes bytes, TimePoint at) {
    return upstream_.transfer(bytes, at);
  }

  /// SSD <-> FPGA DRAM traffic staying inside the device (P2P).
  TimePoint peer_to_peer(Bytes bytes, TimePoint at) {
    return internal_.transfer(bytes, at);
  }

  const PcieLink& upstream() const { return upstream_; }
  const PcieLink& internal() const { return internal_; }

 private:
  PcieLink upstream_;
  PcieLink internal_;
};

}  // namespace csdml::csd
