#include "csd/fpga_device.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace csdml::csd {

DdrBank::DdrBank(DdrBankConfig config) : config_(config) {
  CSDML_REQUIRE(config_.capacity.count > 0, "bank needs capacity");
}

TimePoint DdrBank::access(Bytes bytes, TimePoint at) {
  CSDML_REQUIRE(bytes.count > 0, "zero-byte DDR access");
  const Duration hold =
      config_.access_latency + config_.bandwidth.transfer_time(bytes);
  const TimePoint start = port_.acquire(at, hold);
  return start + hold;
}

void DdrBank::store(std::uint64_t offset, const std::vector<std::uint8_t>& data) {
  CSDML_REQUIRE(offset + data.size() <= config_.capacity.count,
                "DDR store out of range");
  if (memory_.size() < offset + data.size()) memory_.resize(offset + data.size());
  std::copy(data.begin(), data.end(),
            memory_.begin() + static_cast<std::ptrdiff_t>(offset));
}

std::vector<std::uint8_t> DdrBank::load(std::uint64_t offset, std::size_t size) const {
  CSDML_REQUIRE(offset + size <= config_.capacity.count, "DDR load out of range");
  std::vector<std::uint8_t> out(size, 0);
  if (offset < memory_.size()) {
    const std::size_t available =
        std::min<std::size_t>(size, memory_.size() - offset);
    std::copy_n(memory_.begin() + static_cast<std::ptrdiff_t>(offset), available,
                out.begin());
  }
  return out;
}

FpgaDevice::FpgaDevice(FpgaConfig config) : config_(config) {
  CSDML_REQUIRE(config_.ddr_banks > 0, "FPGA needs at least one DDR bank");
  banks_.reserve(config_.ddr_banks);
  for (std::uint32_t i = 0; i < config_.ddr_banks; ++i) {
    banks_.emplace_back(config_.bank);
  }
}

DdrBank& FpgaDevice::bank(std::uint32_t index) {
  CSDML_REQUIRE(index < banks_.size(), "bank index out of range");
  return banks_[index];
}

const DdrBank& FpgaDevice::bank(std::uint32_t index) const {
  CSDML_REQUIRE(index < banks_.size(), "bank index out of range");
  return banks_[index];
}

void FpgaDevice::place(const std::string& label,
                       const hls::ResourceEstimate& estimate) {
  hls::ResourceEstimate next = placed_;
  next += estimate;
  if (!next.fits(config_.part)) {
    throw ResourceError("design '" + label + "' does not fit " +
                        config_.part.name);
  }
  placed_ = next;
  CSDML_LOG_DEBUG("fpga") << "placed " << label << ", utilization now "
                          << utilization();
}

}  // namespace csdml::csd
