// The FPGA half of the SmartSSD: DDR banks with functional storage, a
// kernel clock, and the part description used for placement checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "hls/resources.hpp"
#include "sim/simulation.hpp"

namespace csdml::csd {

struct DdrBankConfig {
  Bytes capacity{Bytes::gib(1)};
  Bandwidth bandwidth{Bandwidth::gb_per_s(15.0)};  ///< DDR4-2400 effective
  Duration access_latency{Duration::nanoseconds(100)};
};

/// One DDR bank: serialised timed access plus functional byte storage.
class DdrBank {
 public:
  explicit DdrBank(DdrBankConfig config);

  const DdrBankConfig& config() const { return config_; }

  /// Timed bulk access of `bytes` (read or write); returns completion.
  TimePoint access(Bytes bytes, TimePoint at);

  /// Functional storage.
  void store(std::uint64_t offset, const std::vector<std::uint8_t>& data);
  std::vector<std::uint8_t> load(std::uint64_t offset, std::size_t size) const;

  Duration busy_time() const { return port_.busy_time(); }

 private:
  DdrBankConfig config_;
  sim::SerialResource port_;
  std::vector<std::uint8_t> memory_;
};

struct FpgaConfig {
  hls::FpgaPart part{hls::FpgaPart::ku15p()};
  Frequency kernel_clock{Frequency::megahertz(300.0)};
  std::uint32_t ddr_banks{2};  ///< the paper's "conservative two banks"
  DdrBankConfig bank{};
};

class FpgaDevice {
 public:
  explicit FpgaDevice(FpgaConfig config);

  const FpgaConfig& config() const { return config_; }
  Frequency clock() const { return config_.kernel_clock; }
  std::uint32_t bank_count() const { return static_cast<std::uint32_t>(banks_.size()); }

  DdrBank& bank(std::uint32_t index);
  const DdrBank& bank(std::uint32_t index) const;

  /// Registers resource usage (one "xclbin load"); throws ResourceError if
  /// the accumulated design no longer fits the part.
  void place(const std::string& label, const hls::ResourceEstimate& estimate);
  const hls::ResourceEstimate& placed() const { return placed_; }
  double utilization() const { return placed_.utilization(config_.part); }

 private:
  FpgaConfig config_;
  std::vector<DdrBank> banks_;
  hls::ResourceEstimate placed_{};
};

}  // namespace csdml::csd
