#include "csd/nvme.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace csdml::csd {

namespace {

const char* opcode_name(NvmeOpcode opcode) {
  switch (opcode) {
    case NvmeOpcode::Read: return "read";
    case NvmeOpcode::Write: return "write";
    case NvmeOpcode::Flush: return "flush";
    case NvmeOpcode::FpgaDmaWrite: return "fpga_dma_write";
    case NvmeOpcode::FpgaDmaRead: return "fpga_dma_read";
    case NvmeOpcode::FpgaP2pLoad: return "fpga_p2p_load";
    case NvmeOpcode::FpgaCompute: return "fpga_compute";
  }
  return "unknown";
}

}  // namespace

const char* nvme_status_name(NvmeStatus status) {
  switch (status) {
    case NvmeStatus::Ok: return "ok";
    case NvmeStatus::TimedOut: return "timed_out";
    case NvmeStatus::CompletionLost: return "completion_lost";
  }
  return "unknown";
}

NvmeQueue::NvmeQueue(SmartSsd& device, NvmeQueueConfig config)
    : device_(device), config_(config) {
  CSDML_REQUIRE(config_.queue_depth > 0, "queue depth must be positive");
}

void NvmeQueue::submit(NvmeCommand command, TimePoint at) {
  if (inflight_.size() >= config_.queue_depth) {
    throw ResourceError("NVMe submission queue full (depth " +
                        std::to_string(config_.queue_depth) + ")");
  }
  const TimePoint start = at + config_.doorbell_latency;
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("nvme.commands_submitted");
  metrics.add_counter(std::string("nvme.opcode.") + opcode_name(command.opcode));
  if (command.opcode == NvmeOpcode::Read ||
      command.opcode == NvmeOpcode::FpgaP2pLoad) {
    metrics.add_counter("nvme.read_blocks", command.block_count);
  } else if (command.opcode == NvmeOpcode::Write) {
    metrics.add_counter("nvme.write_bytes", command.payload.size());
  }

  obs::SpanTrace& spans = device_.span_trace();
  const bool traced = spans.enabled() && spans.in_trace();
  const std::string span_name =
      std::string("nvme.") + opcode_name(command.opcode);

  faults::FaultPlan* plan = device_.fault_plan();
  if (plan != nullptr &&
      plan->should_inject(faults::FaultKind::NvmeTimeout)) {
    // The command never makes progress; the host notices only once its
    // timeout expires. No device work is modelled.
    plan->note_detail(command.command_id);
    NvmeCompletion timed_out;
    timed_out.command_id = command.command_id;
    timed_out.success = false;
    timed_out.status = NvmeStatus::TimedOut;
    timed_out.completed_at = start + config_.command_timeout;
    if (traced) {
      const obs::SpanId span = spans.begin_span(span_name, start);
      spans.tag(span, "fault", "nvme_timeout");
      spans.tag(span, "status", nvme_status_name(timed_out.status));
      spans.end_span(span, timed_out.completed_at);
    }
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::Fault, "nvme", "timeout", start,
        spans.current_trace(), command.command_id);
    inflight_.push_back(std::move(timed_out));
    return;
  }
  const obs::SpanId span = traced ? spans.begin_span(span_name, start) : 0;
  NvmeCompletion completion = execute(command, start);
  if (plan != nullptr &&
      plan->should_inject(faults::FaultKind::NvmeDroppedCompletion)) {
    // Device work happened (time already advanced inside execute), but
    // the CQE is lost: the host sees a failure after its timeout.
    plan->note_detail(command.command_id);
    completion.success = false;
    completion.status = NvmeStatus::CompletionLost;
    completion.data.clear();
    completion.completed_at = completion.completed_at + config_.command_timeout;
    if (traced) {
      spans.tag(span, "fault", "nvme_dropped_completion");
      spans.tag(span, "status", nvme_status_name(completion.status));
    }
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::Fault, "nvme", "dropped_completion", start,
        spans.current_trace(), command.command_id);
  }
  if (traced) spans.end_span(span, completion.completed_at);
  inflight_.push_back(std::move(completion));
}

NvmeCompletion NvmeQueue::execute(const NvmeCommand& command, TimePoint start) {
  NvmeCompletion completion;
  completion.command_id = command.command_id;
  TimePoint done = start;
  switch (command.opcode) {
    case NvmeOpcode::Read: {
      CSDML_REQUIRE(command.block_count > 0, "read needs blocks");
      IoResult io = device_.ssd().read(command.lba, command.block_count, start);
      completion.data = std::move(io.data);
      done = io.done;
      break;
    }
    case NvmeOpcode::Write: {
      CSDML_REQUIRE(!command.payload.empty(), "write needs payload");
      done = device_.ssd().write(command.lba, command.payload, start);
      break;
    }
    case NvmeOpcode::Flush:
      done = start + Duration::microseconds(50);  // firmware cache flush
      break;
    case NvmeOpcode::FpgaDmaWrite: {
      CSDML_REQUIRE(!command.payload.empty(), "DMA write needs payload");
      const TransferResult result = device_.host_write_to_fpga(
          command.payload, command.bank, command.bank_offset, start);
      done = result.done;
      break;
    }
    case NvmeOpcode::FpgaDmaRead: {
      CSDML_REQUIRE(command.read_size > 0, "DMA read needs size");
      IoResult io = device_.host_read_from_fpga(command.bank, command.bank_offset,
                                                command.read_size, start);
      completion.data = std::move(io.data);
      done = io.done;
      break;
    }
    case NvmeOpcode::FpgaP2pLoad: {
      CSDML_REQUIRE(command.block_count > 0, "P2P load needs blocks");
      const TransferResult result = device_.p2p_read_to_fpga(
          command.lba, command.block_count, command.bank, command.bank_offset,
          start);
      done = result.done;
      break;
    }
    case NvmeOpcode::FpgaCompute: {
      CSDML_REQUIRE(command.compute_time.picos > 0, "compute needs a duration");
      done = start + command.compute_time;
      device_.trace().record("nvme_compute", start, done);
      break;
    }
  }
  completion.completed_at = done + config_.completion_latency;
  return completion;
}

void NvmeQueue::account(const NvmeCompletion& completion) {
  ++completed_count_;
  obs::MetricsRegistry& metrics = obs::registry();
  metrics.add_counter("nvme.commands_completed");
  if (!completion.success) {
    ++failed_count_;
    metrics.add_counter("nvme.commands_failed");
    metrics.add_counter(std::string("nvme.failed.") +
                        nvme_status_name(completion.status));
  }
}

std::optional<NvmeCompletion> NvmeQueue::reap(TimePoint now) {
  if (inflight_.empty() || inflight_.front().completed_at > now) {
    return std::nullopt;
  }
  NvmeCompletion completion = std::move(inflight_.front());
  inflight_.pop_front();
  account(completion);
  return completion;
}

NvmeCompletion NvmeQueue::wait_oldest() {
  CSDML_REQUIRE(!inflight_.empty(), "nothing outstanding");
  NvmeCompletion completion = std::move(inflight_.front());
  inflight_.pop_front();
  account(completion);
  return completion;
}

}  // namespace csdml::csd
