#include "csd/pcie.hpp"

#include "common/error.hpp"

namespace csdml::csd {

TimePoint PcieLink::transfer(Bytes bytes, TimePoint at) {
  CSDML_REQUIRE(bytes.count > 0, "zero-byte PCIe transfer");
  const Duration hold =
      config_.per_transfer_overhead + config_.bandwidth.transfer_time(bytes);
  const TimePoint start = link_.acquire(at, hold);
  moved_ = moved_ + bytes;
  return start + hold;
}

}  // namespace csdml::csd
