#include "csd/ssd.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace csdml::csd {

SsdController::SsdController(SsdConfig config)
    : config_(config), nand_(config.nand) {
  CSDML_REQUIRE(config_.logical_block.count > 0, "logical block must be positive");
  CSDML_REQUIRE(config_.nand.page_size.count % config_.logical_block.count == 0,
                "page size must be a multiple of the logical block");
}

std::uint32_t SsdController::blocks_per_page() const {
  return static_cast<std::uint32_t>(config_.nand.page_size.count /
                                    config_.logical_block.count);
}

PageAddress SsdController::map_block(std::uint64_t lba) const {
  const std::uint64_t page_index = lba / blocks_per_page();
  PageAddress addr;
  addr.channel = static_cast<std::uint32_t>(page_index % config_.nand.channels);
  const std::uint64_t per_channel = page_index / config_.nand.channels;
  addr.die =
      static_cast<std::uint32_t>(per_channel % config_.nand.dies_per_channel);
  addr.page = per_channel / config_.nand.dies_per_channel;
  return addr;
}

IoResult SsdController::read(std::uint64_t lba, std::uint32_t count, TimePoint at) {
  CSDML_REQUIRE(count > 0, "zero-length read");
  const TimePoint issued = firmware_.acquire(at, config_.command_overhead) +
                           config_.command_overhead;

  IoResult result;
  result.data.resize(static_cast<std::size_t>(count) * config_.logical_block.count);
  TimePoint latest = issued;

  const std::uint32_t bpp = blocks_per_page();
  std::uint64_t block = lba;
  std::size_t cursor = 0;
  while (block < lba + count) {
    const PageAddress addr = map_block(block);
    std::vector<std::uint8_t> page;
    NandArray::ReadResult nand_read = nand_.read_page(addr, issued, &page);
    if (nand_read.uncorrectable) {
      // Read-retry with a shifted reference voltage: one more array read.
      nand_read = nand_.read_page(addr, nand_read.done, &page);
      if (nand_read.uncorrectable) result.uncorrectable = true;
    }
    latest = std::max(latest, nand_read.done);
    // Copy the blocks of this page that the request covers.
    const std::uint64_t first_in_page = block % bpp;
    for (std::uint64_t b = first_in_page; b < bpp && block < lba + count;
         ++b, ++block) {
      const std::size_t offset =
          static_cast<std::size_t>(b) * config_.logical_block.count;
      const std::size_t n = config_.logical_block.count;
      std::copy_n(page.begin() + static_cast<std::ptrdiff_t>(offset), n,
                  result.data.begin() + static_cast<std::ptrdiff_t>(cursor));
      cursor += n;
    }
  }
  result.done = latest;
  bytes_read_ = bytes_read_ + Bytes{result.data.size()};
  return result;
}

TimePoint SsdController::write(std::uint64_t lba,
                               const std::vector<std::uint8_t>& data, TimePoint at) {
  CSDML_REQUIRE(!data.empty(), "zero-length write");
  const TimePoint issued = firmware_.acquire(at, config_.command_overhead) +
                           config_.command_overhead;

  const std::uint32_t bpp = blocks_per_page();
  const std::uint64_t block_count =
      (data.size() + config_.logical_block.count - 1) / config_.logical_block.count;

  TimePoint latest = issued;
  std::uint64_t block = lba;
  std::size_t cursor = 0;
  while (block < lba + block_count) {
    const PageAddress addr = map_block(block);
    // Read-modify-write the page image (functional content only; timing
    // charges the program, as the mapping layer absorbs merges in DRAM).
    std::vector<std::uint8_t> page;
    (void)nand_.read_page(addr, issued, &page);  // content fetch, timing ignored
    const std::uint64_t first_in_page = block % bpp;
    for (std::uint64_t b = first_in_page; b < bpp && block < lba + block_count;
         ++b, ++block) {
      const std::size_t offset =
          static_cast<std::size_t>(b) * config_.logical_block.count;
      const std::size_t n =
          std::min<std::size_t>(config_.logical_block.count, data.size() - cursor);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(cursor), n,
                  page.begin() + static_cast<std::ptrdiff_t>(offset));
      cursor += n;
      if (cursor >= data.size()) {
        block = lba + block_count;  // done copying; exit outer loop too
        break;
      }
    }
    const TimePoint done = nand_.program_page(addr, issued, page);
    latest = std::max(latest, done);
  }
  bytes_written_ = bytes_written_ + Bytes{data.size()};
  return latest;
}

SsdController::SmartHealth SsdController::smart() const {
  SmartHealth health;
  health.host_bytes_read = bytes_read_;
  health.host_bytes_written = bytes_written_;
  health.pages_programmed = nand_.pages_programmed();
  health.blocks_erased = nand_.blocks_erased();
  health.corrected_reads = nand_.corrected_reads();
  health.uncorrectable_reads = nand_.uncorrectable_reads();
  const double total_pages =
      static_cast<double>(config_.modelled_capacity.count) /
      static_cast<double>(config_.nand.page_size.count);
  const double lifetime_programs =
      total_pages * static_cast<double>(config_.rated_pe_cycles);
  health.media_wear_percent =
      lifetime_programs > 0.0
          ? 100.0 * static_cast<double>(health.pages_programmed) /
                lifetime_programs
          : 0.0;
  return health;
}

}  // namespace csdml::csd
