// NAND flash array model: channels × dies of pages with realistic read /
// program / erase timing, plus functional page storage so data actually
// round-trips through the simulated drive.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/simulation.hpp"

namespace csdml::faults {
class FaultPlan;
}

namespace csdml::csd {

struct NandConfig {
  std::uint32_t channels{8};
  std::uint32_t dies_per_channel{4};
  Bytes page_size{Bytes::kib(16)};
  std::uint32_t pages_per_block{256};
  Duration read_latency{Duration::microseconds(60)};     ///< tR (TLC)
  Duration program_latency{Duration::microseconds(350)}; ///< tPROG
  Duration erase_latency{Duration::microseconds(2000)};  ///< tBERS
  Bandwidth channel_bandwidth{Bandwidth::gb_per_s(1.2)}; ///< ONFI transfer
  // --- reliability (failure injection) ---
  /// Raw NAND bit-error rate per read. TLC mid-life is ~1e-6..1e-4 raw;
  /// the controller's ECC absorbs it.
  double raw_bit_error_rate{1e-9};
  /// Bits the LDPC engine can correct per codeword.
  std::uint32_t ecc_correctable_bits{40};
  Bytes ecc_codeword{Bytes{2048}};
  /// Extra decode latency when a codeword needed correction.
  Duration ecc_correction_latency{Duration::nanoseconds(800)};
  std::uint64_t reliability_seed{7};
};

/// Physical page address.
struct PageAddress {
  std::uint32_t channel{0};
  std::uint32_t die{0};
  std::uint64_t page{0};

  friend constexpr bool operator==(const PageAddress&, const PageAddress&) = default;
};

class NandArray {
 public:
  explicit NandArray(NandConfig config);

  const NandConfig& config() const { return config_; }

  struct ReadResult {
    TimePoint done;
    /// Raw bit errors sampled for this read (before ECC).
    std::uint32_t raw_bit_errors{0};
    /// True when some codeword exceeded the ECC correction budget; the
    /// data returned is then unreliable and the controller must handle it.
    bool uncorrectable{false};
  };

  /// Issues a page read at `at`; data (if previously programmed) is copied
  /// into `out`. Returns the completion time — die tR, then the channel
  /// transfer (channels serialise transfers, dies overlap tR), plus ECC
  /// decode latency when raw bit errors were corrected.
  ReadResult read_page(const PageAddress& addr, TimePoint at,
                       std::vector<std::uint8_t>* out);

  /// Reads corrected / uncorrectable counters (reliability accounting).
  std::uint64_t corrected_reads() const { return corrected_reads_; }
  std::uint64_t uncorrectable_reads() const { return uncorrectable_reads_; }

  /// Endurance accounting.
  std::uint64_t pages_programmed() const { return pages_programmed_; }
  std::uint64_t blocks_erased() const { return blocks_erased_; }

  /// Programs a page; returns completion time.
  TimePoint program_page(const PageAddress& addr, TimePoint at,
                         const std::vector<std::uint8_t>& data);

  /// Erases the block containing `page` on the given die.
  TimePoint erase_block(const PageAddress& addr, TimePoint at);

  /// Aggregate busy time of all channel buses (utilisation accounting).
  Duration total_channel_busy() const;

  /// Attaches a fault plan consulted on every page read for injected
  /// read-disturb errors (nullptr detaches). Not owned.
  void set_fault_plan(faults::FaultPlan* plan) { fault_plan_ = plan; }

 private:
  std::uint64_t die_index(const PageAddress& addr) const;
  std::uint64_t page_key(const PageAddress& addr) const;
  void validate(const PageAddress& addr) const;

  NandConfig config_;
  std::vector<sim::SerialResource> channel_bus_;   // ONFI bus per channel
  std::vector<sim::SerialResource> die_;           // die busy (tR/tPROG)
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
  faults::FaultPlan* fault_plan_{nullptr};
  Rng reliability_rng_;
  std::uint64_t corrected_reads_{0};
  std::uint64_t uncorrectable_reads_{0};
  std::uint64_t pages_programmed_{0};
  std::uint64_t blocks_erased_{0};
};

}  // namespace csdml::csd
