// NVMe-style command interface to the SmartSSD.
//
// The paper's host "dispatches standard SSD read/write commands along with
// specialized FPGA computation and FPGA DRAM read/write requests" (Fig. 1).
// This layer models that command path explicitly: a submission/completion
// queue pair with doorbell and completion latencies, standard I/O opcodes,
// and the vendor-specific compute opcodes a computational-storage drive
// adds. Higher layers (xrt, examples) may use SmartSsd directly; this
// queue model exists for host-integration realism and for studying queue
// effects (depth, batching) on the in-storage inference path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "csd/smartssd.hpp"

namespace csdml::csd {

enum class NvmeOpcode : std::uint8_t {
  Read = 0x02,
  Write = 0x01,
  Flush = 0x00,
  // Vendor-specific computational-storage commands:
  FpgaDmaWrite = 0xD0,  ///< host buffer -> FPGA DDR
  FpgaDmaRead = 0xD1,   ///< FPGA DDR -> host buffer
  FpgaP2pLoad = 0xD2,   ///< NAND -> FPGA DDR, peer-to-peer
  FpgaCompute = 0xD3,   ///< run a loaded kernel pipeline over a DDR region
};

struct NvmeCommand {
  NvmeOpcode opcode{NvmeOpcode::Flush};
  std::uint16_t command_id{0};
  std::uint64_t lba{0};            ///< Read/Write/FpgaP2pLoad
  std::uint32_t block_count{0};    ///< Read/Write/FpgaP2pLoad
  std::uint32_t bank{0};           ///< Fpga* commands
  std::uint64_t bank_offset{0};    ///< Fpga* commands
  std::vector<std::uint8_t> payload;  ///< Write / FpgaDmaWrite data
  std::size_t read_size{0};        ///< FpgaDmaRead bytes
  /// FpgaCompute: device time the loaded pipeline takes (provided by the
  /// engine's cost model for the submitted region).
  Duration compute_time{};
};

/// Why a command did not succeed. Fault injection produces the non-Ok
/// states; on the happy path every completion is Ok.
enum class NvmeStatus : std::uint8_t {
  Ok = 0,
  TimedOut,        ///< no response within command_timeout; data unusable
  CompletionLost,  ///< device work done but the CQE never arrived
};

const char* nvme_status_name(NvmeStatus status);

struct NvmeCompletion {
  std::uint16_t command_id{0};
  bool success{true};
  NvmeStatus status{NvmeStatus::Ok};
  TimePoint completed_at{};
  std::vector<std::uint8_t> data;  ///< Read / FpgaDmaRead results
};

struct NvmeQueueConfig {
  std::uint32_t queue_depth{64};
  Duration doorbell_latency{Duration::nanoseconds(300)};  ///< MMIO write
  Duration completion_latency{Duration::nanoseconds(500)};///< CQE + interrupt
  /// Host-side deadline: a timed-out (or lost-completion) command is
  /// surfaced to the reaper only after this much waiting.
  Duration command_timeout{Duration::microseconds(10'000)};
};

/// One submission/completion queue pair bound to a SmartSSD.
class NvmeQueue {
 public:
  NvmeQueue(SmartSsd& device, NvmeQueueConfig config);

  /// Submits a command at host time `at`. Throws ResourceError when the
  /// queue is full (caller must reap completions first).
  void submit(NvmeCommand command, TimePoint at);

  /// Number of commands in flight.
  std::size_t outstanding() const { return inflight_.size(); }
  std::uint32_t depth() const { return config_.queue_depth; }

  /// Pops the oldest completion whose device work has finished by `now`;
  /// nullopt when none is ready.
  std::optional<NvmeCompletion> reap(TimePoint now);

  /// Blocks (advances time) until the oldest command completes; returns
  /// its completion. Requires outstanding() > 0.
  NvmeCompletion wait_oldest();

  /// Total commands completed since construction.
  std::uint64_t completed_count() const { return completed_count_; }
  /// Commands that completed unsuccessfully (timeout / lost completion).
  std::uint64_t failed_count() const { return failed_count_; }

 private:
  NvmeCompletion execute(const NvmeCommand& command, TimePoint start);
  void account(const NvmeCompletion& completion);

  SmartSsd& device_;
  NvmeQueueConfig config_;
  std::deque<NvmeCompletion> inflight_;  ///< completions in submission order
  std::uint64_t completed_count_{0};
  std::uint64_t failed_count_{0};
};

}  // namespace csdml::csd
