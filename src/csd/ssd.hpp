// SSD controller + FTL over the NAND array: the PM1733 half of the
// SmartSSD. Exposes a logical-block read/write interface with command
// processing overhead, page-level striping across channels, and functional
// data storage (what you write is what you later read).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "csd/nand.hpp"

namespace csdml::csd {

struct SsdConfig {
  NandConfig nand{};
  Bytes logical_block{Bytes::kib(4)};
  Duration command_overhead{Duration::microseconds(5)};  ///< firmware + NVMe
  std::uint32_t queue_depth{64};
  /// Rated program/erase cycles per cell (TLC-class endurance), used by
  /// the SMART media-wear estimate.
  std::uint64_t rated_pe_cycles{3'000};
  /// Modelled physical capacity for the wear estimate (the PM1733 is 4 TB;
  /// a smaller default keeps wear percentages visible in simulations).
  Bytes modelled_capacity{Bytes::gib(4)};
};

/// Result of a logical I/O: completion time plus (for reads) the bytes.
struct IoResult {
  TimePoint done;
  std::vector<std::uint8_t> data;
  /// True when NAND ECC failed even after read-retry; data is suspect.
  bool uncorrectable{false};
};

class SsdController {
 public:
  explicit SsdController(SsdConfig config);

  const SsdConfig& config() const { return config_; }

  /// Reads `count` logical blocks starting at `lba`, issued at `at`.
  IoResult read(std::uint64_t lba, std::uint32_t count, TimePoint at);

  /// Writes the data (padded to whole blocks) starting at `lba`.
  TimePoint write(std::uint64_t lba, const std::vector<std::uint8_t>& data,
                  TimePoint at);

  /// Total logical bytes read/written (accounting).
  Bytes bytes_read() const { return bytes_read_; }
  Bytes bytes_written() const { return bytes_written_; }

  /// Reliability counters from the NAND layer.
  const NandArray& nand() const { return nand_; }

  /// Forwards a fault plan to the NAND layer (read-disturb injection).
  void set_fault_plan(faults::FaultPlan* plan) { nand_.set_fault_plan(plan); }

  /// SMART-style health snapshot.
  struct SmartHealth {
    Bytes host_bytes_read{};
    Bytes host_bytes_written{};
    std::uint64_t pages_programmed{0};
    std::uint64_t blocks_erased{0};
    std::uint64_t corrected_reads{0};
    std::uint64_t uncorrectable_reads{0};
    /// Programs consumed / (pages x rated cycles), as a percentage.
    double media_wear_percent{0.0};
  };
  SmartHealth smart() const;

 private:
  /// Static FTL: logical block -> physical page slice, striped across
  /// channels then dies for parallelism.
  PageAddress map_block(std::uint64_t lba) const;
  std::uint32_t blocks_per_page() const;

  SsdConfig config_;
  NandArray nand_;
  sim::SerialResource firmware_;  // command processing serialisation
  Bytes bytes_read_{};
  Bytes bytes_written_{};
};

}  // namespace csdml::csd
