// The assembled SmartSSD (paper Fig. 1): PM1733-class SSD + KU15P-class
// FPGA joined by an onboard PCIe switch. The two data paths the paper
// contrasts are both first-class:
//
//   * P2P:  SSD --switch--> FPGA DRAM            (never touches the host)
//   * host: SSD --switch--> host RC --switch--> FPGA DRAM (twice the PCIe
//           crossings plus a host DRAM staging copy)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "csd/fpga_device.hpp"
#include "csd/pcie.hpp"
#include "csd/ssd.hpp"
#include "obs/span_trace.hpp"
#include "sim/trace.hpp"

namespace csdml::faults {
class FaultPlan;
}

namespace csdml::csd {

struct SmartSsdConfig {
  SsdConfig ssd{};
  FpgaConfig fpga{};
  PcieLinkConfig upstream{};   ///< device <-> host
  PcieLinkConfig internal{};   ///< SSD <-> FPGA through the switch
  Duration host_stage_copy_overhead{Duration::microseconds(2)};  ///< kernel buffer mgmt
  /// Board identity in a multi-board fleet (e.g. "board2"); empty for the
  /// single-board deployments, where nothing needs disambiguating.
  std::string label{};
};

struct TransferResult {
  TimePoint done;
  Bytes bytes;
};

class SmartSsd {
 public:
  explicit SmartSsd(SmartSsdConfig config);

  const std::string& label() const { return config_.label; }
  SsdController& ssd() { return ssd_; }
  FpgaDevice& fpga() { return fpga_; }
  const FpgaDevice& fpga() const { return fpga_; }
  PcieSwitch& pcie() { return switch_; }
  sim::Trace& trace() { return trace_; }
  /// Request-scoped causal spans for everything that flows through this
  /// board (detector -> engine -> transfers -> kernels). Transfers record
  /// into it only while a trace is open, so init-time staging stays out.
  obs::SpanTrace& span_trace() { return span_trace_; }

  /// P2P read: NAND -> switch -> FPGA DDR `bank` at `bank_offset`.
  TransferResult p2p_read_to_fpga(std::uint64_t lba, std::uint32_t block_count,
                                  std::uint32_t bank, std::uint64_t bank_offset,
                                  TimePoint at);

  /// Host-mediated read: NAND -> host DRAM -> FPGA DDR. Models the
  /// traditional accelerator flow the paper's P2P path avoids.
  TransferResult host_read_to_fpga(std::uint64_t lba, std::uint32_t block_count,
                                   std::uint32_t bank, std::uint64_t bank_offset,
                                   TimePoint at);

  /// Host writes raw bytes (weights, sequences) straight into FPGA DDR.
  TransferResult host_write_to_fpga(const std::vector<std::uint8_t>& data,
                                    std::uint32_t bank, std::uint64_t bank_offset,
                                    TimePoint at);

  /// Host reads back a region of FPGA DDR (e.g. predictions).
  IoResult host_read_from_fpga(std::uint32_t bank, std::uint64_t bank_offset,
                               std::size_t size, TimePoint at);

  /// Attaches a fault plan to the whole board: NAND read disturbs plus
  /// single-bit corruption on every PCIe payload crossing the switch.
  /// The plan is not owned and must outlive the board (or be detached
  /// with nullptr).
  void set_fault_plan(faults::FaultPlan* plan);
  faults::FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  /// Consults the plan for a PCIe corruption and, when injected, flips
  /// one plan-chosen bit of `data` in place.
  void maybe_corrupt(std::vector<std::uint8_t>& data);

  faults::FaultPlan* fault_plan_{nullptr};
  SmartSsdConfig config_;
  SsdController ssd_;
  FpgaDevice fpga_;
  PcieSwitch switch_;
  sim::Trace trace_;
  obs::SpanTrace span_trace_;
};

}  // namespace csdml::csd
