// The `csdml` command-line tool's implementation (kept in the library so
// the test suite can drive it without spawning processes).
//
// Subcommands:
//   gen-dataset  --out PATH [--ransomware N] [--benign N] [--window N]
//                [--stride N] [--seed N] [--paper-size]
//   gen-traces   --out PATH [--seed N] [--length N]
//   train        --dataset PATH --weights PATH [--epochs N] [--lr X]
//                [--batch N] [--test-fraction F] [--seed N]
//   classify     --weights PATH --dataset PATH [--level vanilla|ii|fixed-point]
//   timings      [--level L] [--cus N] [--stream]
//   reports
//   help
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace csdml::host {

/// Runs one CLI invocation; `args` excludes the program name. Writes
/// human-readable output to `out` and diagnostics to `err`. Returns the
/// process exit code (0 on success, 2 on usage errors, 1 on failures).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace csdml::host
