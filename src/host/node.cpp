#include "host/node.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace csdml::host {

StorageNode::StorageNode(const nn::ModelSnapshot& snapshot, NodeConfig config) {
  CSDML_REQUIRE(config.drive_count > 0, "node needs at least one drive");
  drives_.reserve(config.drive_count);
  for (std::size_t i = 0; i < config.drive_count; ++i) {
    Drive drive;
    drive.board = std::make_unique<csd::SmartSsd>(config.drive);
    drive.device = std::make_unique<xrt::Device>(*drive.board);
    drive.engine = std::make_unique<kernels::CsdLstmEngine>(
        *drive.device, snapshot, config.engine);
    drives_.push_back(std::move(drive));
  }
}

kernels::CsdLstmEngine& StorageNode::engine(std::size_t drive) {
  CSDML_REQUIRE(drive < drives_.size(), "drive index out of range");
  return *drives_[drive].engine;
}

const csd::SmartSsd& StorageNode::board(std::size_t drive) const {
  CSDML_REQUIRE(drive < drives_.size(), "drive index out of range");
  return *drives_[drive].board;
}

ScanReport StorageNode::scan(const std::vector<nn::Sequence>& sequences) {
  CSDML_REQUIRE(!sequences.empty(), "nothing to scan");
  ScanReport report;
  report.per_drive.resize(drives_.size());
  report.labels.resize(sequences.size());

  // Shard round-robin, then run each shard as one batch per drive.
  std::vector<std::vector<nn::Sequence>> shards(drives_.size());
  std::vector<std::vector<std::size_t>> shard_indices(drives_.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    shards[i % drives_.size()].push_back(sequences[i]);
    shard_indices[i % drives_.size()].push_back(i);
  }
  for (std::size_t d = 0; d < drives_.size(); ++d) {
    if (shards[d].empty()) continue;
    const kernels::CsdLstmEngine::BatchResult batch =
        drives_[d].engine->infer_batch(shards[d]);
    DriveStats& stats = report.per_drive[d];
    stats.scanned = shards[d].size();
    stats.busy = batch.device_time;
    for (std::size_t k = 0; k < batch.labels.size(); ++k) {
      report.labels[shard_indices[d][k]] = batch.labels[k];
      stats.flagged += batch.labels[k] == 1;
    }
    report.scanned += stats.scanned;
    report.flagged += stats.flagged;
    report.serial_time += stats.busy;
    report.makespan = std::max(report.makespan, stats.busy);
  }
  return report;
}

void StorageNode::update_all_weights(const nn::LstmParams& params) {
  for (Drive& drive : drives_) drive.engine->update_weights(params);
}

std::uint32_t StorageNode::weight_version() const {
  CSDML_REQUIRE(!drives_.empty(), "empty node");
  const std::uint32_t version = drives_.front().engine->weight_updates();
  for (const Drive& drive : drives_) {
    CSDML_REQUIRE(drive.engine->weight_updates() == version,
                  "fleet weight versions diverged");
  }
  return version;
}

}  // namespace csdml::host
