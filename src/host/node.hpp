// A storage node with several SmartSSDs — the scale-out deployment the
// paper's CSD primer highlights ("a scalable solution ... allowing for the
// installation of multiple devices within a single node").
//
// StorageNode owns the drives, deploys one weight snapshot to every
// engine, shards scan work round-robin, and pushes fleet-wide weight
// updates (the CTI loop, drive by drive, no recompilation anywhere).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "kernels/engine.hpp"
#include "nn/weights_io.hpp"

namespace csdml::host {

struct NodeConfig {
  std::size_t drive_count{4};
  csd::SmartSsdConfig drive{};
  kernels::EngineConfig engine{};
};

struct DriveStats {
  std::size_t scanned{0};
  std::size_t flagged{0};
  Duration busy{};
};

struct ScanReport {
  std::vector<DriveStats> per_drive;
  std::size_t scanned{0};
  std::size_t flagged{0};
  /// Slowest drive's busy time — node-level completion latency.
  Duration makespan{};
  /// Sum of drive busy times — what one drive alone would have taken.
  Duration serial_time{};
  /// Labels aligned with the scanned sequences.
  std::vector<int> labels;

  double scale_out_speedup() const {
    return makespan.picos > 0
               ? static_cast<double>(serial_time.picos) /
                     static_cast<double>(makespan.picos)
               : 0.0;
  }
};

class StorageNode {
 public:
  StorageNode(const nn::ModelSnapshot& snapshot, NodeConfig config);

  std::size_t drive_count() const { return drives_.size(); }
  kernels::CsdLstmEngine& engine(std::size_t drive);
  const csd::SmartSsd& board(std::size_t drive) const;

  /// Classifies every sequence, sharding round-robin across drives (each
  /// drive works independently; node latency is the slowest shard).
  ScanReport scan(const std::vector<nn::Sequence>& sequences);

  /// Fleet-wide hot weight update (same xclbin everywhere).
  void update_all_weights(const nn::LstmParams& params);

  /// Weight image version common to all drives.
  std::uint32_t weight_version() const;

 private:
  struct Drive {
    std::unique_ptr<csd::SmartSsd> board;
    std::unique_ptr<xrt::Device> device;
    std::unique_ptr<kernels::CsdLstmEngine> engine;
  };
  std::vector<Drive> drives_;
};

}  // namespace csdml::host
