#include "host/cli.hpp"

#include <map>
#include <optional>
#include <ostream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "detect/attribution.hpp"
#include "detect/detector.hpp"
#include "hls/report.hpp"
#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "nn/weights_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "ransomware/dataset_builder.hpp"
#include "ransomware/families.hpp"
#include "ransomware/sandbox.hpp"
#include "ransomware/trace_io.hpp"

namespace csdml::host {

namespace {

constexpr const char* kUsage = R"(csdml — CSD-based ransomware-detection toolkit

usage: csdml <command> [options]

commands:
  gen-dataset  --out PATH [--ransomware N] [--benign N] [--window N]
               [--stride N] [--seed N] [--paper-size]
               synthesize the sliding-window training corpus as CSV
  gen-traces   --out PATH [--seed N] [--length N]
               detonate every family variant + benign profile, write JSONL
  train        --dataset PATH --weights PATH [--epochs N] [--lr X]
               [--batch N] [--test-fraction F] [--seed N]
               train the 7,472-parameter LSTM, export the weight text file
  classify     --weights PATH --dataset PATH [--level vanilla|ii|fixed-point]
               [--trace-out PATH] [--stats]
               deploy on the simulated SmartSSD and report metrics + AUC;
               --trace-out writes the device trace as Chrome-trace JSON,
               --stats appends the telemetry registry tables
  stats        [--level L] [--calls N] [--seed N] [--json] [--trace-out PATH]
               run a sample streaming detection and print the telemetry
               registry (counters, gauges, p50/p95/p99 histograms) plus a
               span summary; --json emits machine-readable metrics instead
  attribute    --weights PATH --dataset PATH --row N [--top K]
               explain one window: occlusion attribution of its API calls
  timings      [--level L] [--cus N] [--stream]
               per-item kernel timings under the HLS cost model
  reports      Vitis-style synthesis reports for every kernel/level
  help         this text
)";

/// Tiny flag parser: --key value pairs plus boolean switches.
class Flags {
 public:
  Flags(const std::vector<std::string>& args, std::size_t start,
        const std::vector<std::string>& switches) {
    for (std::size_t i = start; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) != 0) {
        throw PreconditionError("unexpected positional argument: " + arg);
      }
      const std::string key = arg.substr(2);
      if (std::find(switches.begin(), switches.end(), key) != switches.end()) {
        values_[key] = "true";
      } else {
        if (i + 1 >= args.size()) {
          throw PreconditionError("missing value for --" + key);
        }
        values_[key] = args[++i];
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value.has_value()) throw PreconditionError("missing required --" + key);
    return *value;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto value = get(key);
    return value.has_value() ? std::stol(*value) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto value = get(key);
    return value.has_value() ? std::stod(*value) : fallback;
  }
  bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

kernels::OptimizationLevel parse_level(const std::string& name) {
  if (name == "vanilla") return kernels::OptimizationLevel::Vanilla;
  if (name == "ii") return kernels::OptimizationLevel::II;
  if (name == "fixed-point") return kernels::OptimizationLevel::FixedPoint;
  throw PreconditionError("unknown level '" + name +
                          "' (vanilla | ii | fixed-point)");
}

int cmd_gen_dataset(const Flags& flags, std::ostream& out) {
  ransomware::DatasetSpec spec = flags.has("paper-size")
                                     ? ransomware::DatasetSpec::paper()
                                     : ransomware::DatasetSpec::small();
  spec.ransomware_windows = static_cast<std::size_t>(
      flags.get_long("ransomware", static_cast<long>(spec.ransomware_windows)));
  spec.benign_windows = static_cast<std::size_t>(
      flags.get_long("benign", static_cast<long>(spec.benign_windows)));
  spec.window_length =
      static_cast<std::size_t>(flags.get_long("window", 100));
  spec.stride = static_cast<std::size_t>(flags.get_long("stride", 25));
  spec.seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));

  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  const std::string path = flags.require("out");
  nn::write_dataset_csv(built.data, path);
  out << "wrote " << built.data.size() << " windows (" << built.data.positives()
      << " ransomware, " << built.data.size() - built.data.positives()
      << " benign) of length " << spec.window_length << " to " << path << "\n";
  return 0;
}

int cmd_gen_traces(const Flags& flags, std::ostream& out) {
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  const auto length = static_cast<std::size_t>(flags.get_long("length", 1'000));
  const auto records = ransomware::export_corpus_traces(seed, length);
  const std::string path = flags.require("out");
  ransomware::write_traces_jsonl_file(path, records);
  out << "wrote " << records.size() << " sample traces to " << path << "\n";
  return 0;
}

int cmd_train(const Flags& flags, std::ostream& out) {
  const nn::SequenceDataset dataset =
      nn::read_dataset_csv(flags.require("dataset"));
  Rng rng(static_cast<std::uint64_t>(flags.get_long("seed", 7)));
  const double test_fraction = flags.get_double("test-fraction", 0.2);
  const nn::TrainTestSplit split = nn::split_dataset(dataset, test_fraction, rng);

  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = static_cast<std::size_t>(flags.get_long("epochs", 10));
  tc.batch_size = static_cast<std::size_t>(flags.get_long("batch", 32));
  tc.learning_rate = flags.get_double("lr", 0.01);

  const nn::TrainResult result =
      nn::train(model, split.train, split.test, tc, [&](const nn::EpochRecord& r) {
        out << "epoch " << r.epoch << ": loss "
            << TextTable::num(r.mean_train_loss, 4) << ", test accuracy "
            << TextTable::num(r.test_accuracy, 4) << "\n";
      });
  const std::string weights = flags.require("weights");
  nn::save_weights_file(weights, config, model.params());
  out << "best accuracy " << TextTable::num(result.best_test_accuracy, 4)
      << " (epoch " << result.best_epoch << "); weights -> " << weights << "\n";
  return 0;
}

int cmd_classify(const Flags& flags, std::ostream& out) {
  const nn::ModelSnapshot snapshot =
      nn::load_weights_file(flags.require("weights"));
  const nn::SequenceDataset dataset =
      nn::read_dataset_csv(flags.require("dataset"));
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, snapshot,
                                kernels::EngineConfig{.level = level});

  std::vector<double> scores;
  nn::ConfusionMatrix cm;
  Duration device_time{};
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const kernels::InferenceResult result = engine.infer(dataset.sequences[i]);
    scores.push_back(result.probability);
    cm.add(dataset.labels[i], result.label);
    device_time += result.device_time;
  }
  out << "classified " << dataset.size() << " windows on the CSD ("
      << kernels::optimization_name(level) << " build)\n";
  out << "accuracy " << TextTable::num(cm.accuracy(), 4) << "  precision "
      << TextTable::num(cm.precision(), 4) << "  recall "
      << TextTable::num(cm.recall(), 4) << "  f1 " << TextTable::num(cm.f1(), 4)
      << "\n";
  if (cm.true_positive + cm.false_negative > 0 &&
      cm.true_negative + cm.false_positive > 0) {
    out << "roc auc " << TextTable::num(nn::roc_auc(scores, dataset.labels), 4)
        << "\n";
  }
  out << "device time " << TextTable::num(device_time.as_milliseconds(), 2)
      << " ms total, "
      << TextTable::num(device_time.as_microseconds() /
                            static_cast<double>(dataset.size()), 1)
      << " us/window\n";
  if (const auto trace_out = flags.get("trace-out"); trace_out.has_value()) {
    obs::write_chrome_trace_file(*trace_out, board.trace());
    out << "trace -> " << *trace_out << "\n";
  }
  if (flags.has("stats")) {
    out << "\n" << obs::trace_summary(board.trace()) << "\n"
        << obs::registry().snapshot().to_text();
  }
  return 0;
}

int cmd_stats(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto calls = static_cast<std::size_t>(flags.get_long("calls", 1'200));
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  CSDML_REQUIRE(calls >= 200, "--calls must be at least 200");

  // Sample workload: one ransomware process interleaved with two benign
  // ones through the streaming detector, so every instrumented layer
  // (engine kernels, detector, xrt syncs) populates the registry.
  obs::registry().reset();
  nn::LstmConfig config;
  Rng rng(seed);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, config,
                                nn::LstmParams::glorot(config, rng),
                                kernels::EngineConfig{.level = level});
  detect::StreamingDetector detector(
      engine, detect::DetectorConfig{.window_length = 100, .hop = 25,
                                     .consecutive_alerts = 2});

  const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
  const auto& families = ransomware::ransomware_families();
  const auto& benign = ransomware::benign_profiles();
  CSDML_REQUIRE(!families.empty() && benign.size() >= 2,
                "corpus profiles unavailable");
  const auto variant =
      static_cast<std::uint32_t>(seed % families.front().variants);
  const std::vector<std::vector<nn::TokenId>> streams = {
      sandbox.ransomware_trace(families.front(), variant, calls),
      sandbox.benign_trace(benign[0], variant + 1, calls),
      sandbox.benign_trace(benign[1], variant + 2, calls),
  };
  for (std::size_t i = 0; i < calls; ++i) {
    for (std::size_t p = 0; p < streams.size(); ++p) {
      if (i < streams[p].size()) {
        detector.on_api_call(static_cast<detect::ProcessId>(p + 1),
                             streams[p][i]);
      }
    }
  }
  // Processes terminate: their pending debounce state flushes into the
  // aggregate counters instead of leaking.
  for (std::size_t p = 0; p < streams.size(); ++p) {
    detector.forget(static_cast<detect::ProcessId>(p + 1));
  }

  if (const auto trace_out = flags.get("trace-out"); trace_out.has_value()) {
    obs::write_chrome_trace_file(*trace_out, board.trace());
  }
  if (flags.has("json")) {
    out << obs::registry().snapshot().to_json() << "\n";
    return 0;
  }
  out << "sample detection: " << streams.size() << " processes x " << calls
      << " API calls (" << kernels::optimization_name(level) << " build)\n\n";
  out << obs::trace_summary(board.trace()) << "\n";
  out << obs::registry().snapshot().to_text();
  if (const auto trace_out = flags.get("trace-out"); trace_out.has_value()) {
    out << "\ntrace -> " << *trace_out
        << "  (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

int cmd_attribute(const Flags& flags, std::ostream& out) {
  const nn::ModelSnapshot snapshot =
      nn::load_weights_file(flags.require("weights"));
  const nn::SequenceDataset dataset =
      nn::read_dataset_csv(flags.require("dataset"));
  const auto row = static_cast<std::size_t>(std::stol(flags.require("row")));
  CSDML_REQUIRE(row < dataset.size(), "--row out of range");
  const auto top_k = static_cast<std::size_t>(flags.get_long("top", 8));

  const nn::LstmClassifier model(snapshot.config, snapshot.params);
  const detect::AttributionReport report = detect::attribute_window(
      model, dataset.sequences[row], {.top_k = top_k});
  out << "window " << row << ": label " << dataset.labels[row]
      << ", p(ransomware) = " << TextTable::num(report.probability, 4) << "\n";
  TextTable table({"pos", "api_call", "contribution"});
  for (const auto& call : report.top_calls) {
    table.add_row({std::to_string(call.position), call.api_name,
                   TextTable::num(call.contribution, 6)});
  }
  table.print(out);
  return 0;
}

int cmd_timings(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto cus = static_cast<std::uint32_t>(flags.get_long("cus", 4));
  const kernels::KernelLink link = flags.has("stream")
                                       ? kernels::KernelLink::Stream
                                       : kernels::KernelLink::AxiMemory;
  nn::LstmConfig config;
  Rng rng(1);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, nn::LstmParams::glorot(config, rng),
      kernels::EngineConfig{.level = level, .gate_cu_count = cus, .link = link});
  const kernels::KernelTimings t = engine.per_item_timings();

  TextTable table({"kernel", "us_per_item"});
  table.add_row({"kernel_preprocess", TextTable::num(t.preprocess.as_microseconds())});
  table.add_row({"kernel_gates (max of CUs)", TextTable::num(t.gates.as_microseconds())});
  table.add_row({"kernel_hidden_state", TextTable::num(t.hidden_state.as_microseconds())});
  table.add_row({"total", TextTable::num(t.total().as_microseconds())});
  table.print(out);
  out << "fpga utilization " << TextTable::num(engine.fpga_utilization(), 3)
      << " (" << board.fpga().config().part.name << ")\n";
  return 0;
}

int cmd_reports(std::ostream& out) {
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const hls::FpgaPart part = hls::FpgaPart::ku15p();
  const nn::LstmConfig config;
  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    out << "### xclbin lstm_" << kernels::optimization_name(level) << "\n\n";
    out << hls::synthesis_report(
               kernels::make_preprocess_spec(config, level, 4), model, part)
        << "\n";
    out << hls::synthesis_report(kernels::make_gates_spec(config, level), model,
                                 part)
        << "\n";
    out << hls::synthesis_report(
               kernels::make_hidden_state_spec(config, level, 4), model, part)
        << "\n";
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  try {
    if (command == "gen-dataset") {
      return cmd_gen_dataset(Flags(args, 1, {"paper-size"}), out);
    }
    if (command == "gen-traces") {
      return cmd_gen_traces(Flags(args, 1, {}), out);
    }
    if (command == "train") {
      return cmd_train(Flags(args, 1, {}), out);
    }
    if (command == "classify") {
      return cmd_classify(Flags(args, 1, {"stats"}), out);
    }
    if (command == "stats") {
      return cmd_stats(Flags(args, 1, {"json"}), out);
    }
    if (command == "attribute") {
      return cmd_attribute(Flags(args, 1, {}), out);
    }
    if (command == "timings") {
      return cmd_timings(Flags(args, 1, {"stream"}), out);
    }
    if (command == "reports") {
      return cmd_reports(out);
    }
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const PreconditionError& e) {
    err << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {  // e.g. std::stol on "--epochs abc"
    err << "usage error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace csdml::host
