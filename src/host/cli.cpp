#include "host/cli.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>

#include "baselines/host_baseline.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "detect/attribution.hpp"
#include "detect/detector.hpp"
#include "faults/fault_plan.hpp"
#include "hls/report.hpp"
#include "kernels/engine.hpp"
#include "nn/train.hpp"
#include "nn/weights_io.hpp"
#include "obs/anomaly.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_export.hpp"
#include "ransomware/dataset_builder.hpp"
#include "ransomware/families.hpp"
#include "ransomware/sandbox.hpp"
#include "ransomware/trace_io.hpp"
#include "scenario/corpus.hpp"
#include "scenario/runner.hpp"
#include "scenario/scorer.hpp"
#include "serve/fleet.hpp"
#include "serve/serving.hpp"

#include "common/json_writer.hpp"

#include <thread>

namespace csdml::host {

namespace {

constexpr const char* kUsage = R"(csdml — CSD-based ransomware-detection toolkit

usage: csdml <command> [options]

commands:
  gen-dataset  --out PATH [--ransomware N] [--benign N] [--window N]
               [--stride N] [--seed N] [--paper-size]
               synthesize the sliding-window training corpus as CSV
  gen-traces   --out PATH [--seed N] [--length N]
               detonate every family variant + benign profile, write JSONL
  train        --dataset PATH --weights PATH [--epochs N] [--lr X]
               [--batch N] [--test-fraction F] [--seed N]
               train the 7,472-parameter LSTM, export the weight text file
  classify     --weights PATH --dataset PATH [--level vanilla|ii|fixed-point]
               [--trace-out PATH] [--stats]
               deploy on the simulated SmartSSD and report metrics + AUC;
               --trace-out writes the device trace as Chrome-trace JSON,
               --stats appends the telemetry registry tables
  stats        [--level L] [--calls N] [--seed N] [--fault-rate F] [--json]
               [--health] [--prometheus] [--trace-out PATH]
               run a sample streaming detection and print the telemetry
               registry (counters, gauges, p50/p95/p99 histograms) plus the
               device and request-span summaries, the time-series store
               totals and the alert-engine state; --json emits machine-
               readable metrics, --health the SLO verdict (JSON with
               --json), --prometheus the text exposition format (including
               csdml_tsdb_* / csdml_alerts_active)
  watch        [--level L] [--rounds N] [--interval-calls N] [--seed N]
               [--fault-rate F] [--health]
               run the sample stream in rounds and print per-round deltas
               sampled through the time-series store (classifications,
               alerts, deferrals, fallback serves, p99, health verdict);
               exits 1 if the final verdict is unhealthy
  top          [--level L] [--boards N] [--rounds N] [--interval-calls N]
               [--seed N] [--fault-rate F] [--once] [--json]
               live per-board fleet console over the telemetry time-series:
               throughput, p95/p99, shed/deferred, health verdict, latched
               alerts and a p99 sparkline per board, plus a fleet summary
               row with merged cross-board percentiles; --once prints a
               single final frame, --json emits the machine-readable frame
               (exit 1 on a latched critical alert or conservation
               violation)
  serve        [--level L] [--calls N] [--seed N] [--ingest-threads N]
               [--serve-shards N] [--coalesce-max N]
               [--coalesce-deadline-us N] [--boards N] [--kill-board K@CALL]
               run the sample streams through the sharded asynchronous
               serving pipeline (lock-free rings + micro-batch coalescing)
               and print the pipeline stats and latency percentiles;
               --boards scales out across a consistent-hashed CSD fleet,
               --kill-board injects a lethal fault on board K after CALL
               ingests to drill drain-and-rehash failover (exit 0 only if
               the extended conservation law holds: nothing enqueued was
               lost, and every migrated deferral resolved)
  attribute    --weights PATH --dataset PATH --row N [--top K]
               explain one window: occlusion attribution of its API calls
  scenario     list | run | show [--all] [--name NAME] [--file PATH] [--seed N]
               [--tiny] [--json] [--golden PATH] [--update-golden]
               replay named end-to-end attack campaigns (benign + family
               traces through the board fleet, with mid-run kills/revives/
               rollouts) and grade them: detection latency per attack pid,
               files encrypted before the verdict, benign FPR, conservation
               laws. Each run prints a canonical outcome digest — same
               seed, same digest, byte for byte. --golden compares digests
               against a golden file (exit 1 on drift), --update-golden
               rewrites it, --tiny serves a smaller model for smoke lanes,
               --seed overrides every scenario's seed; exit 0 only when all
               quality gates (and the golden comparison) pass
  timings      [--level L] [--cus N] [--stream]
               per-item kernel timings under the HLS cost model
  reports      Vitis-style synthesis reports for every kernel/level
  help         this text
)";

/// Tiny flag parser: --key value pairs plus boolean switches.
class Flags {
 public:
  Flags(const std::vector<std::string>& args, std::size_t start,
        const std::vector<std::string>& switches) {
    for (std::size_t i = start; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg.rfind("--", 0) != 0) {
        throw PreconditionError("unexpected positional argument: " + arg);
      }
      const std::string key = arg.substr(2);
      if (std::find(switches.begin(), switches.end(), key) != switches.end()) {
        values_[key] = "true";
      } else {
        if (i + 1 >= args.size()) {
          throw PreconditionError("missing value for --" + key);
        }
        values_[key] = args[++i];
      }
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value.has_value()) throw PreconditionError("missing required --" + key);
    return *value;
  }
  long get_long(const std::string& key, long fallback) const {
    const auto value = get(key);
    return value.has_value() ? std::stol(*value) : fallback;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto value = get(key);
    return value.has_value() ? std::stod(*value) : fallback;
  }
  bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

/// Fails fast — before minutes of workload run behind it — when the trace
/// destination cannot be opened for writing. Append mode probes without
/// clobbering whatever is already there.
void require_writable(const std::string& path) {
  std::ofstream probe(path, std::ios::app);
  if (!probe) throw Error("cannot open trace output file: " + path);
}

std::uint64_t snapshot_counter(const obs::MetricsSnapshot& snapshot,
                               const std::string& name) {
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) return value;
  }
  return 0;
}

/// The sample workload `stats` and `watch` share: one ransomware process
/// interleaved with two benign ones through the streaming detector, so
/// every instrumented layer (engine kernels, detector, xrt syncs) feeds
/// the registry, the device trace and the request-span tree. A nonzero
/// fault rate attaches an XRT launch-failure plan plus a host fallback so
/// the degraded-mode machinery shows up in the deltas.
class SampleRig {
 public:
  SampleRig(kernels::OptimizationLevel level, std::uint64_t seed,
            std::size_t calls, double fault_rate)
      : rng_(seed), params_(nn::LstmParams::glorot(config_, rng_)),
        board_{csd::SmartSsdConfig{}}, device_{board_},
        engine_(device_, config_, params_,
                kernels::EngineConfig{.level = level}),
        detector_(engine_, detect::DetectorConfig{.window_length = 100,
                                                  .hop = 25,
                                                  .consecutive_alerts = 2}) {
    if (fault_rate > 0.0) {
      faults::FaultConfig fault_config;
      fault_config.seed = seed + 404;
      fault_config.xrt_launch_failure_probability = fault_rate;
      plan_.emplace(fault_config);
      board_.set_fault_plan(&*plan_);
      fallback_ = std::make_unique<baselines::HostBaseline>(
          "host-fallback", config_, params_,
          baselines::HostLatencyConfig::xeon_cpu());
      engine_.set_fallback(fallback_.get());
    }
    const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
    const auto& families = ransomware::ransomware_families();
    const auto& benign = ransomware::benign_profiles();
    CSDML_REQUIRE(!families.empty() && benign.size() >= 2,
                  "corpus profiles unavailable");
    const auto variant =
        static_cast<std::uint32_t>(seed % families.front().variants);
    streams_ = {
        sandbox.ransomware_trace(families.front(), variant, calls),
        sandbox.benign_trace(benign[0], variant + 1, calls),
        sandbox.benign_trace(benign[1], variant + 2, calls),
    };
  }

  /// Feeds calls [begin, end) of every stream round-robin; returns the
  /// number of alerts fired.
  std::size_t run(std::size_t begin, std::size_t end) {
    std::size_t alerts = 0;
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t p = 0; p < streams_.size(); ++p) {
        if (i >= streams_[p].size()) continue;
        if (detector_
                .on_api_call(static_cast<detect::ProcessId>(p + 1),
                             streams_[p][i])
                .has_value()) {
          ++alerts;
        }
      }
    }
    return alerts;
  }

  /// Processes terminate: pending debounce state flushes into aggregate
  /// counters instead of leaking.
  void forget_all() {
    for (std::size_t p = 0; p < streams_.size(); ++p) {
      detector_.forget(static_cast<detect::ProcessId>(p + 1));
    }
  }

  csd::SmartSsd& board() { return board_; }
  detect::StreamingDetector& detector() { return detector_; }
  std::size_t stream_count() const { return streams_.size(); }

 private:
  nn::LstmConfig config_;
  Rng rng_;
  nn::LstmParams params_;
  csd::SmartSsd board_;
  xrt::Device device_;
  kernels::CsdLstmEngine engine_;
  detect::StreamingDetector detector_;
  std::optional<faults::FaultPlan> plan_;
  std::unique_ptr<baselines::HostBaseline> fallback_;
  std::vector<std::vector<nn::TokenId>> streams_;
};

kernels::OptimizationLevel parse_level(const std::string& name) {
  if (name == "vanilla") return kernels::OptimizationLevel::Vanilla;
  if (name == "ii") return kernels::OptimizationLevel::II;
  if (name == "fixed-point") return kernels::OptimizationLevel::FixedPoint;
  throw PreconditionError("unknown level '" + name +
                          "' (vanilla | ii | fixed-point)");
}

int cmd_gen_dataset(const Flags& flags, std::ostream& out) {
  ransomware::DatasetSpec spec = flags.has("paper-size")
                                     ? ransomware::DatasetSpec::paper()
                                     : ransomware::DatasetSpec::small();
  spec.ransomware_windows = static_cast<std::size_t>(
      flags.get_long("ransomware", static_cast<long>(spec.ransomware_windows)));
  spec.benign_windows = static_cast<std::size_t>(
      flags.get_long("benign", static_cast<long>(spec.benign_windows)));
  spec.window_length =
      static_cast<std::size_t>(flags.get_long("window", 100));
  spec.stride = static_cast<std::size_t>(flags.get_long("stride", 25));
  spec.seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));

  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  const std::string path = flags.require("out");
  nn::write_dataset_csv(built.data, path);
  out << "wrote " << built.data.size() << " windows (" << built.data.positives()
      << " ransomware, " << built.data.size() - built.data.positives()
      << " benign) of length " << spec.window_length << " to " << path << "\n";
  return 0;
}

int cmd_gen_traces(const Flags& flags, std::ostream& out) {
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  const auto length = static_cast<std::size_t>(flags.get_long("length", 1'000));
  const auto records = ransomware::export_corpus_traces(seed, length);
  const std::string path = flags.require("out");
  ransomware::write_traces_jsonl_file(path, records);
  out << "wrote " << records.size() << " sample traces to " << path << "\n";
  return 0;
}

int cmd_train(const Flags& flags, std::ostream& out) {
  const nn::SequenceDataset dataset =
      nn::read_dataset_csv(flags.require("dataset"));
  Rng rng(static_cast<std::uint64_t>(flags.get_long("seed", 7)));
  const double test_fraction = flags.get_double("test-fraction", 0.2);
  const nn::TrainTestSplit split = nn::split_dataset(dataset, test_fraction, rng);

  nn::LstmConfig config;
  nn::LstmClassifier model(config, rng);
  nn::TrainConfig tc;
  tc.epochs = static_cast<std::size_t>(flags.get_long("epochs", 10));
  tc.batch_size = static_cast<std::size_t>(flags.get_long("batch", 32));
  tc.learning_rate = flags.get_double("lr", 0.01);

  const nn::TrainResult result =
      nn::train(model, split.train, split.test, tc, [&](const nn::EpochRecord& r) {
        out << "epoch " << r.epoch << ": loss "
            << TextTable::num(r.mean_train_loss, 4) << ", test accuracy "
            << TextTable::num(r.test_accuracy, 4) << "\n";
      });
  const std::string weights = flags.require("weights");
  nn::save_weights_file(weights, config, model.params());
  out << "best accuracy " << TextTable::num(result.best_test_accuracy, 4)
      << " (epoch " << result.best_epoch << "); weights -> " << weights << "\n";
  return 0;
}

int cmd_classify(const Flags& flags, std::ostream& out) {
  const nn::ModelSnapshot snapshot =
      nn::load_weights_file(flags.require("weights"));
  const nn::SequenceDataset dataset =
      nn::read_dataset_csv(flags.require("dataset"));
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));

  const auto trace_out = flags.get("trace-out");
  if (trace_out.has_value()) require_writable(*trace_out);

  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, snapshot,
                                kernels::EngineConfig{.level = level});

  std::vector<double> scores;
  nn::ConfusionMatrix cm;
  Duration device_time{};
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const kernels::InferenceResult result = engine.infer(dataset.sequences[i]);
    scores.push_back(result.probability);
    cm.add(dataset.labels[i], result.label);
    device_time += result.device_time;
  }
  out << "classified " << dataset.size() << " windows on the CSD ("
      << kernels::optimization_name(level) << " build)\n";
  out << "accuracy " << TextTable::num(cm.accuracy(), 4) << "  precision "
      << TextTable::num(cm.precision(), 4) << "  recall "
      << TextTable::num(cm.recall(), 4) << "  f1 " << TextTable::num(cm.f1(), 4)
      << "\n";
  if (cm.true_positive + cm.false_negative > 0 &&
      cm.true_negative + cm.false_positive > 0) {
    out << "roc auc " << TextTable::num(nn::roc_auc(scores, dataset.labels), 4)
        << "\n";
  }
  out << "device time " << TextTable::num(device_time.as_milliseconds(), 2)
      << " ms total, "
      << TextTable::num(device_time.as_microseconds() /
                            static_cast<double>(dataset.size()), 1)
      << " us/window\n";
  if (trace_out.has_value()) {
    obs::write_chrome_trace_file(*trace_out, board.trace(),
                                 board.span_trace());
    out << "trace -> " << *trace_out << "\n";
  }
  if (flags.has("stats")) {
    out << "\n" << obs::trace_summary(board.trace()) << "\n"
        << board.span_trace().summary() << "\n"
        << obs::registry().snapshot().to_text();
  }
  return 0;
}

int cmd_stats(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto calls = static_cast<std::size_t>(flags.get_long("calls", 1'200));
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  const double fault_rate = flags.get_double("fault-rate", 0.0);
  CSDML_REQUIRE(calls >= 200, "--calls must be at least 200");
  CSDML_REQUIRE(fault_rate >= 0.0 && fault_rate < 1.0,
                "--fault-rate must be in [0, 1)");
  const auto trace_out = flags.get("trace-out");
  if (trace_out.has_value()) require_writable(*trace_out);

  obs::registry().reset();
  SampleRig rig(level, seed, calls, fault_rate);

  // The workload runs in slices with a sampler tick between them, so the
  // final snapshot carries populated tsdb.* / alerts.* series (the same
  // path the fleet collector thread drives; here the timeline is the
  // slice index, one synthetic second apart).
  obs::TimeSeriesStore store(obs::TsdbConfig::from_env());
  obs::SnapshotSampler sampler({
      {"stats.classified.delta", obs::SampleSpec::Kind::CounterDelta,
       "detector.classifications"},
      {"stats.deferred.delta", obs::SampleSpec::Kind::CounterDelta,
       "detector.degraded_classifications"},
      {"stats.p99_us", obs::SampleSpec::Kind::HistP99,
       "detector.inference_us"},
  });
  obs::AlertEngine alerts;
  constexpr std::size_t kSlices = 4;
  for (std::size_t slice = 0; slice < kSlices; ++slice) {
    rig.run(slice * calls / kSlices, (slice + 1) * calls / kSlices);
    const auto t_us = static_cast<std::int64_t>(slice + 1) * 1'000'000;
    sampler.sample(t_us, obs::registry().snapshot(), &store);
    alerts.evaluate(store, t_us);
  }
  rig.forget_all();
  store.publish_gauges();

  if (trace_out.has_value()) {
    obs::write_chrome_trace_file(*trace_out, rig.board().trace(),
                                 rig.board().span_trace());
  }
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  if (flags.has("prometheus")) {
    out << obs::to_prometheus_text(snapshot);
    return 0;
  }
  const obs::HealthReport health =
      obs::evaluate_health(snapshot, rig.detector().csd_healthy());
  if (flags.has("json")) {
    out << (flags.has("health") ? health.to_json() : snapshot.to_json())
        << "\n";
    return 0;
  }
  out << "sample detection: " << rig.stream_count() << " processes x " << calls
      << " API calls (" << kernels::optimization_name(level) << " build)\n\n";
  out << obs::trace_summary(rig.board().trace()) << "\n";
  out << rig.board().span_trace().summary() << "\n";
  out << snapshot.to_text();

  out << "\n";
  TextTable series_table({"series", "samples", "min", "mean", "max", "last"});
  for (const std::string& name : store.names()) {
    obs::TsBucket total;
    for (const obs::TsBucket& bucket : store.buckets(name)) {
      total.absorb(bucket);
    }
    series_table.add_row({name, std::to_string(store.samples(name)),
                          TextTable::num(total.min, 2),
                          TextTable::num(total.mean(), 2),
                          TextTable::num(total.max, 2),
                          TextTable::num(store.last(name), 2)});
  }
  series_table.print(out);
  const obs::TimeSeriesStore::Totals totals = store.totals();
  out << "time series: " << totals.series << " series, " << totals.samples
      << " samples, " << totals.promotions << " tier promotions\n";
  out << "alerts: " << alerts.active_count() << " active ("
      << alerts.rule_count() << " rules)\n";

  if (flags.has("health")) out << "\n" << health.to_text();
  if (trace_out.has_value()) {
    out << "\ntrace -> " << *trace_out
        << "  (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

int cmd_watch(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto rounds = static_cast<std::size_t>(flags.get_long("rounds", 6));
  const auto interval =
      static_cast<std::size_t>(flags.get_long("interval-calls", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  const double fault_rate = flags.get_double("fault-rate", 0.0);
  CSDML_REQUIRE(rounds > 0, "--rounds must be positive");
  CSDML_REQUIRE(interval >= 100, "--interval-calls must be at least 100");
  CSDML_REQUIRE(fault_rate >= 0.0 && fault_rate < 1.0,
                "--fault-rate must be in [0, 1)");

  obs::registry().reset();
  SampleRig rig(level, seed, rounds * interval, fault_rate);
  out << "watch: " << rig.stream_count() << " processes, " << rounds
      << " rounds x " << interval << " calls ("
      << kernels::optimization_name(level) << " build";
  if (fault_rate > 0.0) out << ", fault rate " << TextTable::num(fault_rate, 3);
  out << ")\n";

  // Each round feeds the next slice of every stream and runs one sampler
  // tick: the per-round deltas come out of the shared SnapshotSampler (the
  // same machinery behind the fleet collector and `csdml top`) instead of
  // a private prev_-counter loop, and the round history lands in a real
  // time-series store as a side effect.
  obs::TimeSeriesStore store(obs::TsdbConfig::from_env());
  obs::SnapshotSampler sampler({
      {"watch.classified", obs::SampleSpec::Kind::CounterDelta,
       "detector.classifications"},
      {"watch.deferred", obs::SampleSpec::Kind::CounterDelta,
       "detector.degraded_classifications"},
      {"watch.fallback", obs::SampleSpec::Kind::CounterDelta,
       "engine.fallback_inferences"},
      {"watch.retries", obs::SampleSpec::Kind::CounterDelta,
       "engine.retries"},
      {"watch.p99_us", obs::SampleSpec::Kind::HistP99,
       "detector.inference_us"},
  });
  TextTable table({"round", "classified", "alerts", "deferred", "fallback",
                   "retries", "p99_us", "health"});
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::size_t alerts =
        rig.run(round * interval, (round + 1) * interval);
    const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
    const obs::HealthReport health =
        obs::evaluate_health(snapshot, rig.detector().csd_healthy());
    const std::map<std::string, double> frame = sampler.sample(
        static_cast<std::int64_t>(round + 1) * 1'000'000, snapshot, &store);
    table.add_row(
        {std::to_string(round + 1),
         std::to_string(static_cast<std::uint64_t>(frame.at("watch.classified"))),
         std::to_string(alerts),
         std::to_string(static_cast<std::uint64_t>(frame.at("watch.deferred"))),
         std::to_string(static_cast<std::uint64_t>(frame.at("watch.fallback"))),
         std::to_string(static_cast<std::uint64_t>(frame.at("watch.retries"))),
         TextTable::num(frame.at("watch.p99_us"), 1),
         obs::health_verdict_name(health.verdict)});
  }
  rig.forget_all();
  table.print(out);
  const obs::HealthReport final_health = obs::evaluate_health(
      obs::registry().snapshot(), rig.detector().csd_healthy());
  if (flags.has("health")) out << "\n" << final_health.to_text();
  return final_health.verdict == obs::HealthVerdict::Unhealthy ? 1 : 0;
}

/// The serve-command workload: every ingestion thread owns three
/// processes (one ransomware, two benign). Streams carry a small tail
/// beyond `calls` so a fleet failover late in the run can still resolve
/// migrated deferrals with a few extra per-process calls.
struct ServeStreamSet {
  std::vector<detect::ProcessId> pids;
  std::vector<std::vector<nn::TokenId>> streams;
};

constexpr std::size_t kServeResolveTail = 16;

std::vector<ServeStreamSet> serve_workload(std::size_t threads,
                                           std::size_t calls,
                                           std::uint64_t seed) {
  const ransomware::SandboxTraceGenerator sandbox{ransomware::SandboxConfig{}};
  const auto& families = ransomware::ransomware_families();
  const auto& benign = ransomware::benign_profiles();
  CSDML_REQUIRE(!families.empty() && benign.size() >= 2,
                "corpus profiles unavailable");
  const std::size_t length = calls + kServeResolveTail;
  std::vector<ServeStreamSet> per_thread(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const auto variant = static_cast<std::uint32_t>((seed + t) %
                                                    families.front().variants);
    ServeStreamSet& set = per_thread[t];
    set.pids = {static_cast<detect::ProcessId>(3 * t + 1),
                static_cast<detect::ProcessId>(3 * t + 2),
                static_cast<detect::ProcessId>(3 * t + 3)};
    set.streams = {
        sandbox.ransomware_trace(families.front(), variant, length),
        sandbox.benign_trace(benign[0], variant + 1, length),
        sandbox.benign_trace(benign[1], variant + 2, length),
    };
  }
  return per_thread;
}

/// Multi-board serve: the same workload routed through a BoardFleet, with
/// an optional deterministic kill drill. Exit 0 only when the extended
/// conservation law holds after the dust settles.
int serve_fleet(const kernels::OptimizationLevel level, std::size_t boards,
                std::size_t threads, std::size_t calls, std::uint64_t seed,
                const serve::ServeConfig& serve_config,
                std::optional<std::size_t> kill_board, std::uint64_t kill_at,
                std::ostream& out) {
  obs::registry().reset();
  nn::LstmConfig model_config;
  Rng rng(seed);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);
  const std::vector<ServeStreamSet> per_thread =
      serve_workload(threads, calls, seed);

  serve::FleetConfig fleet_config;
  fleet_config.boards = boards;
  fleet_config.seed = seed;
  fleet_config.engine = kernels::EngineConfig{.level = level};
  fleet_config.serve = serve_config;
  // The demo workload blasts tokens with no pacing, so queueing delay —
  // not board health — dominates ingest-to-verdict latency. A generous
  // budget keeps the drill's failovers latch-driven (the SLO-burn path is
  // exercised, with controlled traffic, in test_fleet).
  fleet_config.slo.latency_slo_us = 10'000'000.0;
  serve::BoardFleet fleet(model_config, params, fleet_config,
                          [](const serve::Verdict&) {});

  std::atomic<std::uint64_t> fed{0};
  std::atomic<bool> kill_pending{kill_board.has_value()};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&fleet, &fed, &kill_pending, &set = per_thread[t],
                          calls, kill_board, kill_at] {
      for (std::size_t i = 0; i < calls; ++i) {
        for (std::size_t p = 0; p < set.streams.size(); ++p) {
          fleet.ingest(set.pids[p], set.streams[p][i]);
          const std::uint64_t total =
              fed.fetch_add(1, std::memory_order_relaxed) + 1;
          if (total >= kill_at &&
              kill_pending.load(std::memory_order_relaxed) &&
              kill_pending.exchange(false)) {
            fleet.kill_board(*kill_board);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  fleet.flush();
  // Final sweep: a board that latched unhealthy near the end of traffic
  // still gets drained (and its pids rehashed) before accounting.
  fleet.check_health();

  // Resolution lap: if any migrated deferral is still owed, feed the
  // stream tails so every carried window gets its re-served verdict.
  serve::BoardFleet::Stats stats = fleet.stats();
  if (stats.totals.migrated_resolved < stats.migrated_pending) {
    for (std::size_t i = calls; i < calls + kServeResolveTail; ++i) {
      for (const ServeStreamSet& set : per_thread) {
        for (std::size_t p = 0; p < set.streams.size(); ++p) {
          fleet.ingest(set.pids[p], set.streams[p][i]);
        }
      }
    }
    fleet.flush();
  }
  for (const ServeStreamSet& set : per_thread) {
    for (const detect::ProcessId pid : set.pids) fleet.forget(pid);
  }
  fleet.stop();
  stats = fleet.stats();

  out << "serve: " << threads << " ingestion threads x 3 processes x " << calls
      << " API calls across " << boards << " boards ("
      << kernels::optimization_name(level) << " build)\n";
  if (kill_board.has_value()) {
    out << "kill drill: board " << *kill_board << " after " << kill_at
        << " ingests\n";
  }
  out << "\n";
  TextTable table({"fleet", "count"});
  table.add_row({"ingested", std::to_string(stats.totals.ingested)});
  table.add_row({"enqueued", std::to_string(stats.totals.enqueued)});
  table.add_row({"shed (backpressure)", std::to_string(stats.totals.shed)});
  table.add_row({"deferred (csd down)", std::to_string(stats.totals.deferred)});
  table.add_row({"verdicts", std::to_string(stats.totals.verdicts)});
  table.add_row({"alerts", std::to_string(stats.totals.alerts)});
  table.add_row({"batches", std::to_string(stats.totals.batches)});
  table.add_row({"failovers", std::to_string(stats.failovers)});
  table.add_row({"migrations", std::to_string(stats.migrations)});
  table.add_row({"migrated pending", std::to_string(stats.migrated_pending)});
  table.add_row(
      {"migrated resolved", std::to_string(stats.totals.migrated_resolved)});
  table.add_row({"readmissions", std::to_string(stats.readmissions)});
  table.add_row({"boards admitted", std::to_string(stats.boards_admitted)});
  table.add_row({"weight version", std::to_string(stats.weight_version)});
  table.print(out);
  out << "\n" << obs::registry().snapshot().to_text();

  // Extended conservation law: nothing enqueued was lost on any board,
  // every deferral carried across a failover was re-served, and a
  // requested kill actually exercised the drain-and-rehash path.
  const bool conservation = stats.conservation_ok();
  const bool resolved = stats.failover_resolved();
  const bool drilled = !kill_board.has_value() || stats.failovers >= 1;
  out << "\nconservation "
      << (conservation ? "ok" : "VIOLATED (classifications lost)")
      << ", migrated deferrals "
      << (resolved ? "resolved" : "UNRESOLVED") << ", failover drill "
      << (drilled ? "ok" : "NOT TRIGGERED") << "\n";
  return conservation && resolved && drilled ? 0 : 1;
}

int cmd_serve(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto calls = static_cast<std::size_t>(flags.get_long("calls", 1'200));
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  const auto threads =
      static_cast<std::size_t>(flags.get_long("ingest-threads", 4));
  const auto boards = static_cast<std::size_t>(flags.get_long("boards", 1));
  CSDML_REQUIRE(calls >= 200, "--calls must be at least 200");
  CSDML_REQUIRE(threads >= 1 && threads <= 64,
                "--ingest-threads must be in [1, 64]");
  CSDML_REQUIRE(boards >= 1 && boards <= 16, "--boards must be in [1, 16]");

  std::optional<std::size_t> kill_board;
  std::uint64_t kill_at = 0;
  if (const auto spec = flags.get("kill-board")) {
    const std::size_t at = spec->find('@');
    CSDML_REQUIRE(at != std::string::npos, "--kill-board expects K@CALL");
    kill_board = static_cast<std::size_t>(std::stoul(spec->substr(0, at)));
    kill_at = static_cast<std::uint64_t>(std::stoull(spec->substr(at + 1)));
    CSDML_REQUIRE(*kill_board < boards, "--kill-board index out of range");
    CSDML_REQUIRE(boards >= 2,
                  "--kill-board needs --boards >= 2 (no failover target)");
    CSDML_REQUIRE(kill_at < calls * threads * 3,
                  "--kill-board call index is past the workload");
  }

  serve::ServeConfig serve_config;
  serve_config.shards =
      static_cast<std::size_t>(flags.get_long("serve-shards", 4));
  serve_config.coalesce_max =
      static_cast<std::size_t>(flags.get_long("coalesce-max", 32));
  serve_config.coalesce_deadline =
      std::chrono::microseconds(flags.get_long("coalesce-deadline-us", 200));
  serve_config.detector = detect::DetectorConfig{
      .window_length = 100, .hop = 25, .consecutive_alerts = 2};

  if (boards > 1 || kill_board.has_value()) {
    return serve_fleet(level, boards, threads, calls, seed, serve_config,
                       kill_board, kill_at, out);
  }

  obs::registry().reset();
  nn::LstmConfig model_config;
  Rng rng(seed);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(device, model_config, params,
                                kernels::EngineConfig{.level = level});

  // The sample workload, scaled out: every ingestion thread owns three
  // processes (one ransomware, two benign) and feeds their streams
  // round-robin, so per-process call order is preserved per thread while
  // the pipeline absorbs the aggregate concurrently.
  const std::vector<ServeStreamSet> per_thread =
      serve_workload(threads, calls, seed);

  serve::ServingPipeline pipeline(engine, serve_config,
                                  [](const serve::Verdict&) {});
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&pipeline, &set = per_thread[t], calls] {
      for (std::size_t i = 0; i < calls; ++i) {
        for (std::size_t p = 0; p < set.streams.size(); ++p) {
          pipeline.ingest(set.pids[p], set.streams[p][i]);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  pipeline.flush();
  for (const ServeStreamSet& set : per_thread) {
    for (const detect::ProcessId pid : set.pids) pipeline.forget(pid);
  }
  pipeline.stop();

  const serve::ServingPipeline::Stats stats = pipeline.stats();
  out << "serve: " << threads << " ingestion threads x 3 processes x " << calls
      << " API calls (" << kernels::optimization_name(level) << " build, "
      << serve_config.shards << " shards, coalesce<=" << serve_config.coalesce_max
      << ")\n\n";
  TextTable table({"pipeline", "count"});
  table.add_row({"ingested", std::to_string(stats.ingested)});
  table.add_row({"enqueued", std::to_string(stats.enqueued)});
  table.add_row({"shed (backpressure)", std::to_string(stats.shed)});
  table.add_row({"deferred (csd down)", std::to_string(stats.deferred)});
  table.add_row({"verdicts", std::to_string(stats.verdicts)});
  table.add_row({"alerts", std::to_string(stats.alerts)});
  table.add_row({"batches", std::to_string(stats.batches)});
  table.print(out);
  out << "\n" << obs::registry().snapshot().to_text();
  // Conservation law of the pipeline: everything enqueued came out.
  return stats.verdicts + stats.deferred == stats.enqueued ? 0 : 1;
}

/// Eight-level unicode sparkline over the retained raw buckets of one
/// series (newest up to `width` buckets, bucket means, scaled to range).
std::string sparkline(const obs::TimeSeriesStore& store,
                      const std::string& series, std::size_t width = 16) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  std::vector<obs::TsBucket> buckets = store.buckets(series);
  if (buckets.empty()) return "-";
  if (buckets.size() > width) {
    buckets.erase(buckets.begin(),
                  buckets.end() - static_cast<std::ptrdiff_t>(width));
  }
  double lo = buckets.front().mean();
  double hi = lo;
  for (const obs::TsBucket& bucket : buckets) {
    lo = std::min(lo, bucket.mean());
    hi = std::max(hi, bucket.mean());
  }
  std::string line;
  for (const obs::TsBucket& bucket : buckets) {
    const double norm = hi > lo ? (bucket.mean() - lo) / (hi - lo) : 0.0;
    line += kBlocks[std::min<std::size_t>(
        7, static_cast<std::size_t>(norm * 8.0))];
  }
  return line;
}

/// Default per-board console rules: an EWMA z-score watch on the p99 tail
/// (catches a latency regression relative to the board's own history) and
/// a deferral watch (any deferrals in a frame mean the CSD path is
/// unavailable). Warning severity: the console surfaces them without
/// feeding the fleet's critical-alert drain gate.
std::vector<obs::AlertRule> top_default_rules(std::size_t boards) {
  std::vector<obs::AlertRule> rules;
  for (std::size_t k = 0; k < boards; ++k) {
    const std::string prefix = "fleet.b" + std::to_string(k);
    obs::AlertRule p99;
    p99.id = "b" + std::to_string(k) + ".p99.regression";
    p99.series = prefix + ".p99_us";
    p99.kind = obs::AlertRuleKind::EwmaZScore;
    p99.threshold = 6.0;
    p99.min_samples = 3;
    p99.fire_for = 2;
    p99.clear_for = 3;
    p99.severity = obs::AlertSeverity::Warning;
    p99.board = static_cast<int>(k);
    rules.push_back(std::move(p99));

    obs::AlertRule deferrals;
    deferrals.id = "b" + std::to_string(k) + ".deferrals";
    deferrals.series = prefix + ".deferred.delta";
    deferrals.kind = obs::AlertRuleKind::AboveThreshold;
    deferrals.threshold = 0.0;
    deferrals.min_samples = 1;
    deferrals.fire_for = 1;
    deferrals.clear_for = 2;
    deferrals.severity = obs::AlertSeverity::Warning;
    deferrals.board = static_cast<int>(k);
    rules.push_back(std::move(deferrals));
  }
  return rules;
}

int cmd_top(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto boards = static_cast<std::size_t>(flags.get_long("boards", 2));
  const auto rounds = static_cast<std::size_t>(flags.get_long("rounds", 6));
  const auto interval =
      static_cast<std::size_t>(flags.get_long("interval-calls", 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_long("seed", 2024));
  const double fault_rate = flags.get_double("fault-rate", 0.0);
  CSDML_REQUIRE(boards >= 1 && boards <= 16, "--boards must be in [1, 16]");
  CSDML_REQUIRE(rounds > 0, "--rounds must be positive");
  CSDML_REQUIRE(interval >= 100, "--interval-calls must be at least 100");
  CSDML_REQUIRE(fault_rate >= 0.0 && fault_rate < 1.0,
                "--fault-rate must be in [0, 1)");
  const bool once = flags.has("once");
  const bool json = flags.has("json");

  obs::registry().reset();
  nn::LstmConfig model_config;
  Rng rng(seed);
  const nn::LstmParams params = nn::LstmParams::glorot(model_config, rng);
  const std::size_t calls = rounds * interval;
  // Two stream sets (six pids) spread processes over the hash ring even
  // with a couple of boards; ingest is single-threaded and paced per
  // frame, so the console run is deterministic.
  const std::vector<ServeStreamSet> workload = serve_workload(2, calls, seed);

  serve::FleetConfig fleet_config;
  fleet_config.boards = boards;
  fleet_config.seed = seed;
  fleet_config.fault_rate = fault_rate;
  fleet_config.engine = kernels::EngineConfig{.level = level};
  fleet_config.serve.detector = detect::DetectorConfig{
      .window_length = 100, .hop = 25, .consecutive_alerts = 2};
  fleet_config.slo.latency_slo_us = 10'000'000.0;  // unpaced demo workload
  // Deterministic telemetry: no collector thread — one tick per frame on
  // a synthetic timeline that advances a second per round.
  std::int64_t sim_us = 0;
  fleet_config.telemetry.collector_thread = false;
  fleet_config.telemetry.clock = [&sim_us] { return sim_us; };
  fleet_config.telemetry.rules = top_default_rules(boards);

  serve::BoardFleet fleet(model_config, params, fleet_config,
                          [](const serve::Verdict&) {});
  obs::TelemetryCollector& collector = *fleet.telemetry();
  obs::AlertEngine& alerts = *fleet.alert_engine();

  std::map<std::string, double> frame;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = round * interval; i < (round + 1) * interval; ++i) {
      for (const ServeStreamSet& set : workload) {
        for (std::size_t p = 0; p < set.streams.size(); ++p) {
          fleet.ingest(set.pids[p], set.streams[p][i]);
        }
      }
    }
    fleet.flush();
    sim_us += 1'000'000;
    collector.tick();

    if (once || json) continue;  // final frame only
    out << "\x1b[2J\x1b[H";  // live mode: clear + home between frames
    out << "csdml top — frame " << round + 1 << "/" << rounds << "\n";
    TextTable live({"board", "health", "verdicts", "thru/s", "p99_us",
                    "defer", "alerts", "trend"});
    for (std::size_t k = 0; k < boards; ++k) {
      const std::string prefix = "fleet.b" + std::to_string(k);
      const obs::TimeSeriesStore& store = collector.store();
      std::size_t active = 0;
      for (const obs::Alert& alert : alerts.active_alerts()) {
        if (alert.board == static_cast<int>(k)) ++active;
      }
      live.add_row(
          {std::to_string(k), fleet.board_healthy(k) ? "ok" : "DOWN",
           std::to_string(static_cast<std::uint64_t>(
               store.last(prefix + ".verdicts.delta"))),
           TextTable::num(store.last(prefix + ".throughput"), 1),
           TextTable::num(store.last(prefix + ".p99_us"), 1),
           std::to_string(static_cast<std::uint64_t>(
               store.last(prefix + ".deferred.delta"))),
           std::to_string(active), sparkline(store, prefix + ".p99_us")});
    }
    live.print(out);
  }

  for (const ServeStreamSet& set : workload) {
    for (const detect::ProcessId pid : set.pids) fleet.forget(pid);
  }
  fleet.flush();
  collector.tick();
  const serve::BoardFleet::Stats stats = fleet.stats();
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  const obs::TimeSeriesStore& store = collector.store();
  const obs::TimeSeriesStore::Totals totals = store.totals();
  const std::vector<obs::Alert> all_alerts = alerts.alerts();

  // Fleet summary percentiles: per-board latency histograms merged into
  // one (identical default bounds), not an average of percentiles.
  obs::HistogramSnapshot fleet_latency;
  for (const obs::HistogramSnapshot& histogram : snapshot.histograms) {
    if (histogram.name.rfind("fleet.b", 0) == 0 &&
        histogram.name.find(".ingest_to_verdict_us") != std::string::npos) {
      fleet_latency.merge(histogram);
    }
  }

  bool critical_latched = false;
  for (const obs::Alert& alert : all_alerts) {
    if (alert.active && alert.severity == obs::AlertSeverity::Critical) {
      critical_latched = true;
    }
  }

  if (json) {
    JsonWriter writer;
    writer.begin_object();
    writer.field("tool", "top");
    writer.field("rounds", static_cast<std::uint64_t>(rounds));
    writer.field("interval_calls", static_cast<std::uint64_t>(interval));
    writer.key("boards");
    writer.begin_array();
    for (std::size_t k = 0; k < boards; ++k) {
      const std::string prefix = "fleet.b" + std::to_string(k);
      const serve::ServingPipeline::Stats board = fleet.board_stats(k);
      writer.begin_object();
      writer.field("board", static_cast<std::uint64_t>(k));
      writer.field("healthy", fleet.board_healthy(k));
      writer.field("verdicts", board.verdicts);
      writer.field("shed", board.shed);
      writer.field("deferred", board.deferred);
      obs::TsBucket rate;
      for (const obs::TsBucket& bucket :
           store.buckets(prefix + ".throughput")) {
        rate.absorb(bucket);
      }
      writer.field("throughput", rate.mean());
      writer.field("p95_us", store.last(prefix + ".p95_us"));
      writer.field("p99_us", store.last(prefix + ".p99_us"));
      writer.end_object();
    }
    writer.end_array();
    writer.key("fleet");
    writer.begin_object();
    writer.field("verdicts", stats.totals.verdicts);
    writer.field("deferred", stats.totals.deferred);
    writer.field("shed", stats.totals.shed);
    writer.field("boards_admitted",
                 static_cast<std::uint64_t>(stats.boards_admitted));
    writer.field("p95_us", fleet_latency.percentile(0.95));
    writer.field("p99_us", fleet_latency.percentile(0.99));
    writer.field("conservation_ok", stats.conservation_ok());
    writer.end_object();
    writer.key("alerts");
    writer.begin_array();
    for (const obs::Alert& alert : all_alerts) {
      writer.begin_object();
      writer.field("rule", alert.rule_id);
      writer.field("severity", obs::alert_severity_name(alert.severity));
      writer.field("board", static_cast<std::int64_t>(alert.board));
      writer.field("active", alert.active);
      writer.field("fire_count", alert.fire_count);
      writer.end_object();
    }
    writer.end_array();
    writer.key("tsdb");
    writer.begin_object();
    writer.field("series", static_cast<std::uint64_t>(totals.series));
    writer.field("samples", totals.samples);
    writer.field("promotions", totals.promotions);
    writer.end_object();
    writer.end_object();
    out << writer.str() << "\n";
  } else {
    out << "csdml top — " << boards << " boards, " << rounds << " rounds x "
        << interval << " calls (" << kernels::optimization_name(level)
        << " build)\n\n";
    TextTable table({"board", "health", "verdicts", "thru/s", "p95_us",
                     "p99_us", "shed", "defer", "alerts", "trend"});
    for (std::size_t k = 0; k < boards; ++k) {
      const std::string prefix = "fleet.b" + std::to_string(k);
      const serve::ServingPipeline::Stats board = fleet.board_stats(k);
      std::size_t active = 0;
      for (const obs::Alert& alert : all_alerts) {
        if (alert.active && alert.board == static_cast<int>(k)) ++active;
      }
      // Mean rate over the retained window, not the (post-flush) last tick.
      obs::TsBucket rate;
      for (const obs::TsBucket& bucket :
           store.buckets(prefix + ".throughput")) {
        rate.absorb(bucket);
      }
      table.add_row(
          {std::to_string(k), fleet.board_healthy(k) ? "ok" : "DOWN",
           std::to_string(board.verdicts),
           TextTable::num(rate.mean(), 1),
           TextTable::num(store.last(prefix + ".p95_us"), 1),
           TextTable::num(store.last(prefix + ".p99_us"), 1),
           std::to_string(board.shed), std::to_string(board.deferred),
           std::to_string(active), sparkline(store, prefix + ".p99_us")});
    }
    table.add_row({"fleet",
                   stats.boards_admitted == boards ? "ok" : "degraded",
                   std::to_string(stats.totals.verdicts), "-",
                   TextTable::num(fleet_latency.percentile(0.95), 1),
                   TextTable::num(fleet_latency.percentile(0.99), 1),
                   std::to_string(stats.totals.shed),
                   std::to_string(stats.totals.deferred),
                   std::to_string(alerts.active_count()), "-"});
    table.print(out);
    out << "\ntime series: " << totals.series << " series, " << totals.samples
        << " samples, " << totals.promotions << " tier promotions over "
        << collector.ticks() << " ticks\n";
    for (const obs::Alert& alert : all_alerts) {
      if (alert.fire_count == 0) continue;
      out << "alert " << alert.rule_id << " ["
          << obs::alert_severity_name(alert.severity) << "] "
          << (alert.active ? "ACTIVE" : "cleared") << " (fired "
          << alert.fire_count << "x)\n";
    }
    out << "conservation "
        << (stats.conservation_ok() ? "ok" : "VIOLATED (classifications lost)")
        << "\n";
  }
  fleet.stop();
  return stats.conservation_ok() && !critical_latched ? 0 : 1;
}

int cmd_attribute(const Flags& flags, std::ostream& out) {
  const nn::ModelSnapshot snapshot =
      nn::load_weights_file(flags.require("weights"));
  const nn::SequenceDataset dataset =
      nn::read_dataset_csv(flags.require("dataset"));
  const auto row = static_cast<std::size_t>(std::stol(flags.require("row")));
  CSDML_REQUIRE(row < dataset.size(), "--row out of range");
  const auto top_k = static_cast<std::size_t>(flags.get_long("top", 8));

  const nn::LstmClassifier model(snapshot.config, snapshot.params);
  const detect::AttributionReport report = detect::attribute_window(
      model, dataset.sequences[row], {.top_k = top_k});
  out << "window " << row << ": label " << dataset.labels[row]
      << ", p(ransomware) = " << TextTable::num(report.probability, 4) << "\n";
  TextTable table({"pos", "api_call", "contribution"});
  for (const auto& call : report.top_calls) {
    table.add_row({std::to_string(call.position), call.api_name,
                   TextTable::num(call.contribution, 6)});
  }
  table.print(out);
  return 0;
}

int cmd_timings(const Flags& flags, std::ostream& out) {
  const kernels::OptimizationLevel level =
      parse_level(flags.get("level").value_or("fixed-point"));
  const auto cus = static_cast<std::uint32_t>(flags.get_long("cus", 4));
  const kernels::KernelLink link = flags.has("stream")
                                       ? kernels::KernelLink::Stream
                                       : kernels::KernelLink::AxiMemory;
  nn::LstmConfig config;
  Rng rng(1);
  csd::SmartSsd board{csd::SmartSsdConfig{}};
  xrt::Device device{board};
  kernels::CsdLstmEngine engine(
      device, config, nn::LstmParams::glorot(config, rng),
      kernels::EngineConfig{.level = level, .gate_cu_count = cus, .link = link});
  const kernels::KernelTimings t = engine.per_item_timings();

  TextTable table({"kernel", "us_per_item"});
  table.add_row({"kernel_preprocess", TextTable::num(t.preprocess.as_microseconds())});
  table.add_row({"kernel_gates (max of CUs)", TextTable::num(t.gates.as_microseconds())});
  table.add_row({"kernel_hidden_state", TextTable::num(t.hidden_state.as_microseconds())});
  table.add_row({"total", TextTable::num(t.total().as_microseconds())});
  table.print(out);
  out << "fpga utilization " << TextTable::num(engine.fpga_utilization(), 3)
      << " (" << board.fpga().config().part.name << ")\n";
  return 0;
}

/// Golden digest file: `<scenario-name> <16-hex-digest>` per line, `#`
/// comments allowed. Missing file is an Error (exit 1), not a usage
/// error — CI treats an absent golden as a broken gate, not a typo.
std::map<std::string, std::string> load_golden_digests(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("scenario: cannot open golden file `" + path + "`");
  std::map<std::string, std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string name, digest, extra;
    if (!(fields >> name)) continue;
    if (!(fields >> digest) || (fields >> extra)) {
      throw Error("scenario: malformed golden line `" + line + "` in " + path);
    }
    golden[name] = digest;
  }
  return golden;
}

void write_golden_digests(const std::string& path,
                          const std::map<std::string, std::string>& golden) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("scenario: cannot write golden file `" + path + "`");
  out << "# Golden scenario outcome digests (full model). Regenerate with\n";
  out << "#   csdml scenario run --all --golden <this file> --update-golden\n";
  for (const auto& [name, digest] : golden) {
    out << name << " " << digest << "\n";
  }
}

void emit_scenario_json(const std::vector<scenario::RunResult>& results,
                        bool tiny, std::ostream& out) {
  JsonWriter json;
  json.begin_object();
  json.field("tool", "scenario");
  json.field("tiny", tiny);
  json.field("model_test_accuracy",
             results.empty() ? 0.0 : results.front().model_test_accuracy);
  json.key("scenarios");
  json.begin_array();
  for (const scenario::RunResult& result : results) {
    const scenario::ScoreSummary& s = result.summary;
    json.begin_object();
    json.field("name", result.scenario.name);
    json.field("seed", result.scenario.seed);
    json.field("boards", static_cast<std::uint64_t>(result.scenario.boards));
    json.field("digest", scenario::format_digest(result.digest));
    json.field("attacks", s.attacks);
    json.field("detected", s.detected);
    json.field("false_positives", s.false_positives);
    json.field("fpr", s.fpr);
    json.field("files_lost", s.files_lost);
    json.key("detection_latency");
    json.begin_array();
    for (const std::uint64_t latency : s.latencies) json.value(latency);
    json.end_array();
    json.key("processes");
    json.begin_array();
    for (const scenario::ProcessOutcome& p : s.processes) {
      const auto spec = std::find_if(
          result.scenario.processes.begin(), result.scenario.processes.end(),
          [&p](const scenario::ProcessSpec& candidate) {
            return candidate.pid == p.pid;
          });
      json.begin_object();
      json.field("pid", static_cast<std::uint64_t>(p.pid));
      json.field("attack", p.attack);
      if (spec != result.scenario.processes.end()) {
        json.field("profile", spec->profile);
        json.field("variant", static_cast<std::uint64_t>(spec->variant));
      }
      json.field("verdicts", p.verdicts);
      json.field("alerts", p.alerts);
      if (p.first_alert_call != scenario::kNever) {
        json.field("first_alert_call", p.first_alert_call);
        json.field("detection_latency", p.detection_latency);
      }
      json.field("files_lost", p.files_lost);
      json.field("boards_seen", static_cast<std::uint64_t>(p.boards_seen));
      json.end_object();
    }
    json.end_array();
    json.field("verdicts", s.fleet.totals.verdicts);
    json.field("deferred", s.fleet.totals.deferred);
    json.field("shed", s.fleet.totals.shed);
    json.field("failovers", s.fleet.failovers);
    json.field("rollouts", s.fleet.rollouts);
    json.field("conservation_ok", s.fleet.conservation_ok());
    json.field("failover_resolved", s.fleet.failover_resolved());
    json.field("pass", result.gates.pass());
    json.field("wall_ms", result.wall_ms);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << json.str() << "\n";
}

int cmd_scenario(const std::vector<std::string>& args, std::ostream& out) {
  if (args.size() < 2) {
    throw PreconditionError(
        "scenario: expected a subcommand (list | run | show)");
  }
  const std::string& sub = args[1];

  if (sub == "list") {
    Flags flags(args, 2, {});
    (void)flags;
    TextTable table({"scenario", "boards", "processes", "attacks", "events",
                     "horizon", "latency-budget", "files-budget"});
    for (const scenario::Scenario& s : scenario::builtin_corpus()) {
      std::size_t attacks = 0;
      for (const auto& p : s.processes) attacks += p.attack ? 1 : 0;
      table.add_row({s.name, std::to_string(s.boards),
                     std::to_string(s.processes.size()),
                     std::to_string(attacks), std::to_string(s.events.size()),
                     std::to_string(s.horizon()),
                     std::to_string(s.budget.detection_latency),
                     std::to_string(s.budget.files_lost)});
    }
    table.print(out);
    return 0;
  }

  if (sub == "show") {
    const Flags flags(args, 2, {});
    const std::string name = flags.require("name");
    const scenario::Scenario* found = scenario::find_scenario(name);
    if (found == nullptr) {
      throw PreconditionError("scenario: `" + name +
                              "` is not in the corpus (see `scenario list`)");
    }
    out << scenario::serialize_scenario(*found);
    return 0;
  }

  if (sub != "run") {
    throw PreconditionError("scenario: unknown subcommand `" + sub +
                            "` (list | run | show)");
  }
  const Flags flags(args, 2, {"all", "json", "tiny", "update-golden"});

  std::vector<scenario::Scenario> selected;
  if (const auto name = flags.get("name")) {
    const scenario::Scenario* found = scenario::find_scenario(*name);
    if (found == nullptr) {
      throw PreconditionError("scenario: `" + *name +
                              "` is not in the corpus (see `scenario list`)");
    }
    selected.push_back(*found);
  }
  if (const auto file = flags.get("file")) {
    selected.push_back(scenario::load_scenario_file(*file));
  }
  if (selected.empty() || flags.has("all")) {
    // Default (and --all): the whole builtin corpus, plus any explicit
    // picks above.
    for (const scenario::Scenario& s : scenario::builtin_corpus()) {
      const bool already =
          std::any_of(selected.begin(), selected.end(),
                      [&s](const scenario::Scenario& have) {
                        return have.name == s.name;
                      });
      if (!already) selected.push_back(s);
    }
  }

  scenario::RunOptions options;
  options.tiny = flags.has("tiny");
  if (flags.has("seed")) {
    options.seed = static_cast<std::uint64_t>(flags.get_long("seed", 0));
  }
  if (flags.has("update-golden") && !flags.has("golden")) {
    throw PreconditionError("scenario: --update-golden requires --golden PATH");
  }

  std::vector<scenario::RunResult> results;
  results.reserve(selected.size());
  for (const scenario::Scenario& s : selected) {
    results.push_back(scenario::run_scenario(s, options));
  }

  bool gates_ok = true;
  if (flags.has("json")) {
    emit_scenario_json(results, options.tiny, out);
    for (const scenario::RunResult& result : results) {
      gates_ok = gates_ok && result.gates.pass();
    }
  } else {
    TextTable table({"scenario", "digest", "attacks", "detected",
                     "latency(max)", "files-lost", "fpr", "deferred", "pass"});
    for (const scenario::RunResult& result : results) {
      const scenario::ScoreSummary& s = result.summary;
      const std::uint64_t worst =
          s.latencies.empty() ? 0 : s.latencies.back();
      table.add_row(
          {result.scenario.name, scenario::format_digest(result.digest),
           std::to_string(s.attacks), std::to_string(s.detected),
           s.detected > 0 ? std::to_string(worst) : "-",
           std::to_string(s.files_lost), TextTable::num(s.fpr, 3),
           std::to_string(s.fleet.totals.deferred),
           result.gates.pass() ? "yes" : "NO"});
      gates_ok = gates_ok && result.gates.pass();
    }
    table.print(out);
    for (const scenario::RunResult& result : results) {
      if (result.gates.pass()) continue;
      const scenario::GateReport& g = result.gates;
      out << result.scenario.name << " FAILED:";
      if (!g.attacks_detected) out << " attacks-undetected";
      if (!g.latency_within_budget) out << " latency-over-budget";
      if (!g.files_within_budget) out << " files-lost-over-budget";
      if (!g.fpr_within_budget) out << " fpr-over-budget";
      if (!g.conservation) out << " conservation-violated";
      if (!g.failover_resolved) out << " migrated-deferral-unresolved";
      if (!g.nothing_shed) out << " backpressure-shed";
      out << "\n";
    }
  }

  bool golden_ok = true;
  if (const auto golden_path = flags.get("golden")) {
    if (flags.has("update-golden")) {
      std::map<std::string, std::string> golden;
      {
        std::ifstream probe(*golden_path);
        if (probe.good()) golden = load_golden_digests(*golden_path);
      }
      for (const scenario::RunResult& result : results) {
        golden[result.scenario.name] = scenario::format_digest(result.digest);
      }
      write_golden_digests(*golden_path, golden);
      out << "golden: updated " << *golden_path << " (" << results.size()
          << " scenarios)\n";
    } else {
      const std::map<std::string, std::string> golden =
          load_golden_digests(*golden_path);
      for (const scenario::RunResult& result : results) {
        const auto it = golden.find(result.scenario.name);
        const std::string got = scenario::format_digest(result.digest);
        if (it == golden.end()) {
          out << "golden: " << result.scenario.name << " has no entry in "
              << *golden_path << "\n";
          golden_ok = false;
        } else if (it->second != got) {
          out << "golden: " << result.scenario.name << " drifted (expected "
              << it->second << ", got " << got << ")\n";
          golden_ok = false;
        }
      }
      if (golden_ok) {
        out << "golden: " << results.size() << " digests match\n";
      }
    }
  }

  return gates_ok && golden_ok ? 0 : 1;
}

int cmd_reports(std::ostream& out) {
  const hls::HlsCostModel model = hls::HlsCostModel::ultrascale_default();
  const hls::FpgaPart part = hls::FpgaPart::ku15p();
  const nn::LstmConfig config;
  for (const auto level :
       {kernels::OptimizationLevel::Vanilla, kernels::OptimizationLevel::II,
        kernels::OptimizationLevel::FixedPoint}) {
    out << "### xclbin lstm_" << kernels::optimization_name(level) << "\n\n";
    out << hls::synthesis_report(
               kernels::make_preprocess_spec(config, level, 4), model, part)
        << "\n";
    out << hls::synthesis_report(kernels::make_gates_spec(config, level), model,
                                 part)
        << "\n";
    out << hls::synthesis_report(
               kernels::make_hidden_state_spec(config, level, 4), model, part)
        << "\n";
  }
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  try {
    if (command == "gen-dataset") {
      return cmd_gen_dataset(Flags(args, 1, {"paper-size"}), out);
    }
    if (command == "gen-traces") {
      return cmd_gen_traces(Flags(args, 1, {}), out);
    }
    if (command == "train") {
      return cmd_train(Flags(args, 1, {}), out);
    }
    if (command == "classify") {
      return cmd_classify(Flags(args, 1, {"stats"}), out);
    }
    if (command == "stats") {
      return cmd_stats(Flags(args, 1, {"json", "health", "prometheus"}), out);
    }
    if (command == "watch") {
      return cmd_watch(Flags(args, 1, {"health"}), out);
    }
    if (command == "top") {
      return cmd_top(Flags(args, 1, {"once", "json"}), out);
    }
    if (command == "serve") {
      return cmd_serve(Flags(args, 1, {}), out);
    }
    if (command == "attribute") {
      return cmd_attribute(Flags(args, 1, {}), out);
    }
    if (command == "timings") {
      return cmd_timings(Flags(args, 1, {"stream"}), out);
    }
    if (command == "scenario") {
      return cmd_scenario(args, out);
    }
    if (command == "reports") {
      return cmd_reports(out);
    }
    err << "unknown command '" << command << "'\n" << kUsage;
    return 2;
  } catch (const PreconditionError& e) {
    err << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {  // e.g. std::stol on "--epochs abc"
    err << "usage error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace csdml::host
