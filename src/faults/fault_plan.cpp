#include "faults/fault_plan.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace csdml::faults {

namespace {

// Stream names double as metric suffixes; keep them stable — they are
// part of the determinism contract (Rng::fork hashes the name).
constexpr std::array<const char*, kFaultKindCount> kKindNames = {
    "nvme_timeout",
    "nvme_dropped_completion",
    "pcie_corruption",
    "nand_read_disturb",
    "xrt_launch_failure",
};

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

FaultPlan::FaultPlan(FaultConfig config) : config_(config) { reseed(); }

void FaultPlan::reseed() {
  const Rng root(config_.seed);
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    streams_[i] = root.fork(kKindNames[i]);
  }
  detail_stream_ = root.fork("fault_detail");
}

double FaultPlan::probability_for(FaultKind kind) const {
  switch (kind) {
    case FaultKind::NvmeTimeout: return config_.nvme_timeout_probability;
    case FaultKind::NvmeDroppedCompletion: return config_.nvme_drop_probability;
    case FaultKind::PcieCorruption: return config_.pcie_corruption_probability;
    case FaultKind::NandReadDisturb: return config_.nand_read_disturb_probability;
    case FaultKind::XrtLaunchFailure: return config_.xrt_launch_failure_probability;
  }
  return 0.0;
}

bool FaultPlan::should_inject(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t sequence = clock_.tick();
  const double probability = probability_for(kind);
  // Zero-probability kinds never advance their stream: a campaign that
  // only enables (say) NAND disturbs gets the same NAND schedule no
  // matter which other sites are wired up.
  if (probability <= 0.0) return false;
  const std::size_t idx = static_cast<std::size_t>(kind);
  if (!streams_[idx].chance(probability)) return false;
  if (injected_total() >= config_.max_faults) return false;
  log_.push_back(FaultRecord{sequence, kind, 0});
  ++injected_counts_[idx];
  obs::registry().add_counter(std::string("faults.injected.") + kKindNames[idx]);
  return true;
}

std::uint64_t FaultPlan::draw_detail(std::uint64_t bound) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t value = 0;
  if (bound > 1) {
    value = static_cast<std::uint64_t>(detail_stream_.uniform_int(
        0, static_cast<std::int64_t>(bound - 1)));
  }
  if (!log_.empty()) log_.back().detail = value;
  return value;
}

void FaultPlan::note_detail(std::uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!log_.empty()) log_.back().detail = value;
}

std::uint64_t FaultPlan::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_.now();
}

std::uint64_t FaultPlan::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_total();
}

std::uint64_t FaultPlan::injected(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_counts_[static_cast<std::size_t>(kind)];
}

std::vector<FaultRecord> FaultPlan::log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

std::uint64_t FaultPlan::digest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t hash = kFnvOffset;
  for (const FaultRecord& record : log_) {
    hash = fnv1a(hash, record.sequence);
    hash = fnv1a(hash, static_cast<std::uint64_t>(record.kind));
    hash = fnv1a(hash, record.detail);
  }
  return hash;
}

void FaultPlan::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_.reset();
  log_.clear();
  injected_counts_.fill(0);
  reseed();
}

std::uint64_t FaultPlan::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected_counts_) total += count;
  return total;
}

}  // namespace csdml::faults
