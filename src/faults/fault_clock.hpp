// Logical clock for fault-injection decisions.
//
// Every consultation of the fault plan — inject or not — advances this
// clock by one tick, and the tick value is stamped onto any fault the plan
// injects. Because injection sites consult the plan in a fixed order for a
// given workload, the (tick, kind, detail) triples of a campaign form a
// schedule that is bit-identical across runs with the same seed: the
// reproducibility contract the campaign tests assert via FaultPlan::digest.
#pragma once

#include <cstdint>

namespace csdml::faults {

class FaultClock {
 public:
  /// Consumes and returns the next decision index.
  std::uint64_t tick() { return next_++; }

  /// Decisions taken so far (the index the next tick will return).
  std::uint64_t now() const { return next_; }

  void reset() { next_ = 0; }

 private:
  std::uint64_t next_{0};
};

}  // namespace csdml::faults
