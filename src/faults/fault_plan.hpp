// Deterministic fault-injection plan for the simulated CSD stack.
//
// The paper's detector lives *inside* the storage device it protects, so
// it must keep classifying while that device degrades under ransomware
// I/O pressure. The device layers (csd::NandArray, csd::NvmeQueue,
// csd::SmartSsd's PCIe paths, xrt::Kernel) each consult an attached
// FaultPlan at their injection site; the plan decides — from seeded,
// per-kind xoshiro streams — whether that operation fails, and records
// every injected fault in an append-only log.
//
// Determinism contract: decisions depend only on (seed, per-kind query
// order). Each fault kind draws from its own forked stream, so adding
// queries of one kind never perturbs another kind's schedule, and the
// FaultClock stamps a global sequence number on every decision. Two runs
// of the same workload with the same seed therefore produce bit-identical
// logs — compare with digest().
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "faults/fault_clock.hpp"

namespace csdml::faults {

enum class FaultKind : std::uint8_t {
  NvmeTimeout = 0,          ///< command exceeds the host's timeout window
  NvmeDroppedCompletion,    ///< device work done, CQE never arrives
  PcieCorruption,           ///< single bit flip in a transiting payload
  NandReadDisturb,          ///< page read pushed past the LDPC budget
  XrtLaunchFailure,         ///< kernel launch fails (engine retries)
};

inline constexpr std::size_t kFaultKindCount = 5;

const char* fault_kind_name(FaultKind kind);

/// Per-kind injection probabilities plus a global budget. All default to
/// zero: an attached plan with a default config injects nothing.
struct FaultConfig {
  std::uint64_t seed{0};
  double nvme_timeout_probability{0.0};
  double nvme_drop_probability{0.0};
  double pcie_corruption_probability{0.0};
  double nand_read_disturb_probability{0.0};
  double xrt_launch_failure_probability{0.0};
  /// Total faults the plan may inject before going quiet; bounded
  /// campaigns use this to model a fault burst that subsides (and lets
  /// the engine's recovery probes succeed again).
  std::uint64_t max_faults{UINT64_MAX};
};

/// A kill switch for one board: every kernel launch fails, so the engine
/// exhausts its retries, latches unhealthy, and (without a fallback)
/// defers classifications until the plan is detached. The fleet uses this
/// for deterministic failover drills (`csdml serve --kill-board K@CALL`).
inline FaultConfig lethal_launch_config(std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.xrt_launch_failure_probability = 1.0;
  return config;
}

/// One injected fault: where in the decision sequence, what kind, and a
/// kind-specific detail (e.g. the bit index a PCIe corruption flipped).
struct FaultRecord {
  std::uint64_t sequence{0};  ///< FaultClock tick of the decision
  FaultKind kind{FaultKind::NvmeTimeout};
  std::uint64_t detail{0};

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// Thrown by xrt::Kernel::launch when the plan fails the launch.
class FaultInjectedError : public Error {
 public:
  explicit FaultInjectedError(const std::string& what) : Error(what) {}
};

/// Thrown by the engine when the CSD is marked unhealthy (retries
/// exhausted) and no host fallback is configured. Callers must either
/// retry the classification later or surface the degradation — never
/// drop it silently.
class CsdUnavailableError : public Error {
 public:
  explicit CsdUnavailableError(const std::string& what) : Error(what) {}
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// One injection decision. Advances the clock, draws from `kind`'s
  /// stream, and on injection appends to the log, bumps the per-kind
  /// count and the `faults.injected.<kind>` counter in obs::registry().
  /// Thread-safe, but determinism additionally requires the *call order*
  /// to be deterministic — consult only from simulated-time (single-
  /// threaded) code, never from inside a thread-pool worker.
  bool should_inject(FaultKind kind);

  /// Deterministic kind-agnostic detail draw in [0, bound); stored into
  /// the most recent log record. Injection sites use it to pick e.g.
  /// which bit of a payload to flip.
  std::uint64_t draw_detail(std::uint64_t bound);

  /// Stamps a caller-provided detail (e.g. the failing NVMe command id)
  /// onto the most recent log record without consuming the detail stream.
  void note_detail(std::uint64_t value);

  /// Total injection decisions taken (injected or not).
  std::uint64_t decisions() const;
  /// Faults injected, in total and per kind.
  std::uint64_t injected() const;
  std::uint64_t injected(FaultKind kind) const;

  /// Append-only log of every injected fault, in decision order.
  std::vector<FaultRecord> log() const;

  /// FNV-1a digest of the full log. Equal-seed runs of the same workload
  /// must produce equal digests — the reproducibility assertion.
  std::uint64_t digest() const;

  /// Rewinds the plan to its post-construction state: streams re-derived
  /// from the seed, log and clock cleared.
  void reset();

 private:
  double probability_for(FaultKind kind) const;
  void reseed();
  std::uint64_t injected_total() const;  // caller holds mutex_

  FaultConfig config_;
  FaultClock clock_;
  std::array<Rng, kFaultKindCount> streams_;
  Rng detail_stream_;
  std::vector<FaultRecord> log_;
  std::array<std::uint64_t, kFaultKindCount> injected_counts_{};
  mutable std::mutex mutex_;
};

}  // namespace csdml::faults
