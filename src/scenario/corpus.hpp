// The starter scenario corpus — the named campaigns CI gates on.
//
// Each entry exercises one operational story from the paper's deployment
// pitch: detection under clean load, under hard-negative benign traffic,
// mid-failover, mid-rollout, and through fault-induced deferral storms.
// The text files under tests/scenarios/ are the serialized form of these
// specs (a test asserts they stay in sync), and the golden digest file
// records each one's expected outcome under the full model.
#pragma once

#include <string>
#include <vector>

#include "scenario/scenario.hpp"

namespace csdml::scenario {

const std::vector<Scenario>& builtin_corpus();

/// nullptr when the name is not in the corpus.
const Scenario* find_scenario(const std::string& name);

}  // namespace csdml::scenario
