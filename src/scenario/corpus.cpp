#include "scenario/corpus.hpp"

namespace csdml::scenario {

namespace {

std::vector<Scenario> build_corpus() {
  std::vector<Scenario> corpus;

  // Benign-only baseline: six ordinary desktop sessions, staggered
  // arrivals. The FPR budget is zero — any alert here is a regression.
  corpus.push_back(ScenarioBuilder("clean-benign")
                       .seed(1101)
                       .boards(1)
                       .detector(100, 25, 4, 0.9)
                       .benign(11, "Notepad++", 0, 0, 500)
                       .benign(12, "7-Zip", 0, 40, 500)
                       .benign(13, "VLC", 1, 80, 500)
                       .benign(14, "FirefoxPortable", 0, 120, 500)
                       .benign(15, "KeePass", 2, 160, 500)
                       .benign(16, "manual-desktop-1", 0, 200, 500)
                       .budget(0, 0, 0.0)
                       .build());

  // The canonical attack: one Lockbit variant bursts into a quiet mix.
  corpus.push_back(ScenarioBuilder("single-family-burst")
                       .seed(1102)
                       .boards(1)
                       .detector(100, 25, 4, 0.9)
                       .benign(21, "SumatraPDF", 0, 0, 700)
                       .benign(22, "ChromePortable", 0, 30, 700)
                       .benign(23, "Everything", 2, 60, 700)
                       .attack(29, "Lockbit", 2, 150, 600)
                       .budget(150, 60, 0.0)
                       .build());

  // Slow-roll: heavy OS background noise dilutes the encryption motifs,
  // stretching the calls-to-verdict tail the latency budget must cover.
  corpus.push_back(ScenarioBuilder("slow-roll-encryptor")
                       .seed(1103)
                       .boards(1)
                       .detector(100, 25, 4, 0.9)
                       .benign(31, "LibreOfficePortable", 0, 0, 900)
                       .benign(32, "Thunderbird", 0, 50, 900)
                       .attack(39, "Teslacrypt", 4, 100, 900, 0.55)
                       .budget(500, 80, 0.0)
                       .build());

  // Fleet-wide storm: four families land on a four-board fleet at once.
  corpus.push_back(ScenarioBuilder("multi-family-storm")
                       .seed(1104)
                       .boards(4)
                       .detector(100, 25, 4, 0.9)
                       .benign(41, "VLC", 0, 0, 700)
                       .benign(42, "IrfanView", 0, 25, 700)
                       .benign(43, "FileZilla", 0, 50, 700)
                       .benign(44, "PuTTY", 0, 75, 700)
                       .benign(45, "MusicBee", 0, 100, 700)
                       .benign(46, "manual-desktop-3", 0, 125, 700)
                       .attack(51, "Ryuk", 1, 150, 650)
                       .attack(52, "Cerber", 3, 170, 650)
                       .attack(53, "Wannacry", 0, 190, 650)
                       .attack(54, "BadRabbit", 2, 210, 650)
                       .budget(200, 220, 0.0)
                       .build());

  // Mid-attack failover: the board owning the attack pid is killed while
  // the encryptor is running; the pid must survive the rehash and still
  // be caught on the surviving board.
  corpus.push_back(ScenarioBuilder("attack-during-failover")
                       .seed(1105)
                       .boards(2)
                       .detector(100, 25, 4, 0.9)
                       .benign(61, "OBSPortable", 0, 0, 800)
                       .benign(62, "Inkscape", 0, 40, 800)
                       .benign(63, "CalibrePortable", 0, 80, 800)
                       .attack(69, "Cryptowall", 5, 120, 700)
                       .kill_owner(69, 260)
                       .revive_board(0, 500)
                       .revive_board(1, 500)
                       .budget(350, 90, 0.0)
                       .build());

  // Mid-attack rollout: a canary-gated weight rollout lands while the
  // attack stream is live; detection must not wobble across the flip and
  // the version stamp must advance cleanly.
  corpus.push_back(ScenarioBuilder("attack-during-canary-rollout")
                       .seed(1106)
                       .boards(2)
                       .detector(100, 25, 4, 0.9)
                       .benign(71, "ShareX", 0, 0, 700)
                       .benign(72, "Blender", 0, 35, 700)
                       .attack(79, "Locky", 1, 100, 650)
                       .rollout(300)
                       .budget(200, 70, 0.0)
                       .build());

  // Fault storm on a single board: the lone board latches, every due
  // window rides the deferral path, then the fault clears and the board
  // recovers in place — the attack must still be caught afterwards.
  corpus.push_back(ScenarioBuilder("fault-storm-deferrals")
                       .seed(1107)
                       .boards(1)
                       .detector(100, 25, 4, 0.9)
                       .benign(81, "GIMPPortable", 0, 0, 900)
                       .attack(89, "Chimera", 6, 80, 850)
                       // Killed before the attack's first window completes,
                       // so the whole early attack rides the deferral path.
                       .kill_board(0, 150)
                       .revive_board(0, 420)
                       .budget(550, 110, 0.0)
                       .build());

  // The hardest negatives in the benign corpus: archivers, disk tools,
  // and VeraCrypt's volume-encryption loop, which shares real API motifs
  // with the attack families. Zero false positives allowed.
  corpus.push_back(ScenarioBuilder("benign-hard-negatives")
                       .seed(1108)
                       .boards(1)
                       .detector(100, 25, 4, 0.9)
                       .benign(91, "VeraCryptPortable", 0, 0, 800)
                       .benign(92, "7-Zip", 1, 40, 800)
                       .benign(93, "Rufus", 0, 80, 800)
                       .benign(94, "WinDirStat", 0, 120, 800)
                       .benign(95, "Recuva", 0, 160, 800)
                       .budget(0, 0, 0.0)
                       .build());

  // Saturation: a two-board fleet carries twelve tenants; two attacks
  // arrive late, buried in the benign crowd.
  corpus.push_back(ScenarioBuilder("multi-tenant-saturation")
                       .seed(1109)
                       .boards(2)
                       .detector(100, 25, 4, 0.9)
                       .benign(101, "Notepad++", 1, 0, 800)
                       .benign(102, "VLC", 2, 20, 800)
                       .benign(103, "KeePass", 0, 40, 800)
                       .benign(104, "Audacity", 0, 60, 800)
                       .benign(105, "FoxitReader", 0, 80, 800)
                       .benign(106, "qBittorrent", 0, 100, 800)
                       .benign(107, "CPU-Z", 0, 120, 800)
                       .benign(108, "PaintDotNetPortable", 0, 140, 800)
                       .benign(109, "manual-desktop-2", 0, 160, 800)
                       .benign(110, "manual-desktop-5", 1, 180, 800)
                       .attack(111, "Virlock", 7, 300, 600)
                       .attack(112, "Cryptowall", 1, 340, 600)
                       .budget(250, 110, 0.0)
                       .build());

  // Recovery wave: board 0 is killed and drained early, a rollout lands
  // while it is out (so readmission must catch the version up), it is
  // revived, and only then does the attack arrive — the fleet must be
  // whole again when it matters.
  corpus.push_back(ScenarioBuilder("attack-wave-after-recovery")
                       .seed(1110)
                       .boards(2)
                       .detector(100, 25, 4, 0.9)
                       .benign(121, "TeamViewerPortable", 0, 0, 900)
                       .benign(122, "Blender", 1, 30, 900)
                       .benign(123, "Everything", 2, 60, 900)
                       .kill_board(0, 150)
                       .rollout(250)
                       .revive_board(0, 350)
                       .attack(129, "Wannacry", 4, 450, 500)
                       .budget(200, 60, 0.0)
                       .build());

  return corpus;
}

}  // namespace

const std::vector<Scenario>& builtin_corpus() {
  static const std::vector<Scenario> corpus = build_corpus();
  return corpus;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& scenario : builtin_corpus()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

}  // namespace csdml::scenario
