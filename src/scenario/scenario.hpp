// Scenario specs — named, replayable end-to-end attack campaigns.
//
// The paper's claim is operational: the in-storage LSTM must catch
// ransomware *mid-attack*, before the encryption loop has eaten the
// victim's files. A Scenario is the executable form of that claim: a
// cast of processes (benign sandbox sessions interleaved with family
// attack traces), a fleet topology, and a schedule of mid-run control
// events (board kills, revives, weight rollouts), plus the quality
// budget the outcome is graded against.
//
// Specs exist in two equivalent forms — a builder API for tests and the
// builtin corpus, and a small line-oriented text format stored under
// tests/scenarios/ — and `serialize_scenario`/`parse_scenario` round-trip
// between them. Everything downstream (runner, scorer, digest) consumes
// only the validated Scenario struct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "detect/detector.hpp"

namespace csdml::scenario {

/// Default sandbox background-noise rate (mirrors SandboxConfig).
inline constexpr double kDefaultNoiseRate = 0.18;

/// One process in the campaign: a benign application session or a
/// numbered variant of a ransomware family, entering at round `start`
/// and feeding `calls` API calls from its sandbox trace.
struct ProcessSpec {
  detect::ProcessId pid{0};
  bool attack{false};
  /// FamilyProfile::name (attack) or BenignProfile::name (benign).
  std::string profile;
  /// Family variant index (attack) or benign session id.
  std::uint32_t variant{0};
  /// Round (global ingest step) the stream enters the fleet.
  std::uint64_t start{0};
  /// API calls ingested from the trace.
  std::uint64_t calls{0};
  /// Sandbox background-noise rate; raising it dilutes the attack motifs
  /// between OS chatter (the "slow-roll" knob).
  double noise{kDefaultNoiseRate};

  friend bool operator==(const ProcessSpec&, const ProcessSpec&) = default;
};

/// A mid-run control event, applied at a quiescent point (fleet flushed)
/// immediately before round `at` is ingested.
struct EventSpec {
  enum class Kind {
    KillBoard,    ///< attach the lethal launch plan to `board`
    ReviveBoard,  ///< detach it again
    KillOwner,    ///< kill whichever board currently owns `pid`
    Rollout,      ///< coordinated canary-gated weight rollout
  };
  Kind kind{Kind::KillBoard};
  std::uint64_t at{0};
  std::size_t board{0};      ///< KillBoard / ReviveBoard target
  detect::ProcessId pid{0};  ///< KillOwner target

  friend bool operator==(const EventSpec&, const EventSpec&) = default;
};

/// The quality budget a run is graded against (see GateReport).
struct Budget {
  /// Max detection latency per attack pid, in API calls past the first
  /// full window (first_alert_call - window_length).
  std::uint64_t detection_latency{100};
  /// Max files encrypted (completed encrypt→rename motifs) across all
  /// attack pids before their first alert.
  std::uint64_t files_lost{50};
  /// Max benign false-positive rate (alerting benign pids / benign pids).
  double fpr{0.0};

  friend bool operator==(const Budget&, const Budget&) = default;
};

struct Scenario {
  std::string name;
  std::uint64_t seed{2024};
  std::size_t boards{1};
  /// Detector geometry, identical semantics to detect::DetectorConfig.
  std::size_t window{100};
  std::size_t hop{25};
  std::size_t debounce{2};
  double threshold{0.5};
  std::vector<ProcessSpec> processes;
  std::vector<EventSpec> events;  ///< sorted by `at` (stable)
  Budget budget;

  friend bool operator==(const Scenario&, const Scenario&) = default;

  /// Rounds until the last process's last scheduled call.
  std::uint64_t horizon() const;
  bool has_attack() const;
};

/// Fluent construction for tests and the builtin corpus. `build()`
/// validates (throws PreconditionError on a malformed spec).
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name);

  ScenarioBuilder& seed(std::uint64_t value);
  ScenarioBuilder& boards(std::size_t count);
  ScenarioBuilder& detector(std::size_t window, std::size_t hop,
                            std::size_t debounce, double threshold);
  ScenarioBuilder& benign(detect::ProcessId pid, std::string profile,
                          std::uint32_t session, std::uint64_t start,
                          std::uint64_t calls,
                          double noise = kDefaultNoiseRate);
  ScenarioBuilder& attack(detect::ProcessId pid, std::string family,
                          std::uint32_t variant, std::uint64_t start,
                          std::uint64_t calls,
                          double noise = kDefaultNoiseRate);
  ScenarioBuilder& kill_board(std::size_t board, std::uint64_t at);
  ScenarioBuilder& revive_board(std::size_t board, std::uint64_t at);
  ScenarioBuilder& kill_owner(detect::ProcessId pid, std::uint64_t at);
  ScenarioBuilder& rollout(std::uint64_t at);
  ScenarioBuilder& budget(std::uint64_t detection_latency,
                          std::uint64_t files_lost, double fpr);

  Scenario build() const;

 private:
  Scenario scenario_;
};

/// Throws common::PreconditionError describing the first problem: bad
/// geometry, duplicate/zero pids, unknown family or benign profile,
/// event targets out of range, out-of-order budget values.
void validate_scenario(const Scenario& scenario);

const char* event_kind_name(EventSpec::Kind kind);

/// Canonical text form (what tests/scenarios/*.scn store). Stable: the
/// output of serialize is byte-identical across runs for equal specs,
/// and parse(serialize(s)) == s.
std::string serialize_scenario(const Scenario& scenario);

/// Parses the text format; `origin` labels error messages (file name).
/// Throws ParseError on any malformed line or unknown key; the result is
/// then validated (PreconditionError).
Scenario parse_scenario(const std::string& text,
                        const std::string& origin = "<string>");

/// Reads and parses one .scn file.
Scenario load_scenario_file(const std::string& path);

}  // namespace csdml::scenario
