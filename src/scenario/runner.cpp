#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/error.hpp"
#include "obs/health.hpp"
#include "ransomware/families.hpp"
#include "ransomware/sandbox.hpp"

namespace csdml::scenario {

namespace {

/// Extra trace margin generated beyond the scheduled calls, and the cap
/// on post-horizon rounds fed to resolve migrated deferrals (a deferral
/// only retries on its process's next call, so a failover near the end of
/// a stream needs a little more traffic to settle the conservation law).
constexpr std::uint64_t kResolveTailRounds = 64;

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const ransomware::FamilyProfile& family_named(const std::string& name) {
  for (const ransomware::FamilyProfile& family :
       ransomware::ransomware_families()) {
    if (family.name == name) return family;
  }
  throw PreconditionError("scenario: unknown family `" + name + "`");
}

const ransomware::BenignProfile& benign_named(const std::string& name) {
  for (const ransomware::BenignProfile& profile :
       ransomware::benign_profiles()) {
    if (profile.name == name) return profile;
  }
  throw PreconditionError("scenario: unknown benign profile `" + name + "`");
}

}  // namespace

RunResult run_scenario(const Scenario& input, const RunOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  Scenario scenario = input;
  if (options.seed) scenario.seed = *options.seed;
  // The spec threshold is an operating point calibrated for the full
  // model. The tiny smoke model is deliberately under-trained and never
  // reaches the same confidence, so tiny runs re-calibrate to the model's
  // own operating point instead of silently missing every attack.
  if (options.tiny) scenario.threshold = std::min(scenario.threshold, 0.5);
  validate_scenario(scenario);

  const ScenarioModel& model = scenario_model(options.tiny);

  // Traces: one per process, seeded by (scenario seed, pid) so two casts
  // of the same profile/variant still emit distinct executions. Generated
  // long enough to cover the resolution tail.
  std::unordered_map<detect::ProcessId, std::vector<nn::TokenId>> traces;
  for (const ProcessSpec& spec : scenario.processes) {
    ransomware::SandboxConfig sandbox;
    sandbox.seed = splitmix(scenario.seed ^ (spec.pid * 0x100000001b3ULL));
    sandbox.background_noise_rate = spec.noise;
    const ransomware::SandboxTraceGenerator generator(sandbox);
    const std::size_t need =
        static_cast<std::size_t>(spec.calls + kResolveTailRounds);
    std::vector<nn::TokenId> trace =
        spec.attack
            ? generator.ransomware_trace(family_named(spec.profile),
                                         spec.variant, need)
            : generator.benign_trace(benign_named(spec.profile), spec.variant,
                                     need);
    CSDML_REQUIRE(trace.size() >= need, "scenario: trace shorter than asked");
    traces.emplace(spec.pid, std::move(trace));
  }

  serve::FleetConfig fleet_config;
  fleet_config.boards = scenario.boards;
  fleet_config.vnodes = 32;
  fleet_config.health_check_interval = 0;  // explicit sweeps only
  fleet_config.seed = scenario.seed;
  fleet_config.fault_rate = 0.0;  // only deterministic kill plans
  fleet_config.canary_windows = 2;
  fleet_config.serve.shards = 4;
  // Worst case between flushes: every process has one due window per hop
  // rounds, plus one deferral retry per call while a board is latched —
  // bounded by cast size * hop. 1024 per shard leaves an order of
  // magnitude of headroom, so shedding (timing-dependent) cannot happen.
  fleet_config.serve.ring_capacity = 1024;
  fleet_config.serve.coalesce_max = 32;
  fleet_config.serve.coalesce_deadline = std::chrono::microseconds(200);
  fleet_config.serve.detector.window_length = scenario.window;
  fleet_config.serve.detector.hop = scenario.hop;
  fleet_config.serve.detector.consecutive_alerts = scenario.debounce;
  fleet_config.serve.detector.threshold = scenario.threshold;
  // Wall-clock latency must never influence a health verdict: the only
  // unhealthy path left is the engine latch, which is deterministic.
  fleet_config.slo.latency_slo_us = 1e9;
  fleet_config.slo.unhealthy_burn = 1e9;
  fleet_config.slo.degraded_serve_budget = 1.0;

  RunResult result;
  std::mutex verdict_mutex;
  serve::BoardFleet fleet(
      model.config, model.params, fleet_config,
      [&result, &verdict_mutex](const serve::Verdict& verdict) {
        const std::lock_guard<std::mutex> lock(verdict_mutex);
        result.verdicts.push_back(verdict);
      });

  const auto quiesce = [&fleet] {
    fleet.flush();
    fleet.check_health();
    fleet.flush();  // a failover's re-imports may owe verdicts already
  };

  const auto apply_event = [&](const EventSpec& event) {
    fleet.flush();
    switch (event.kind) {
      case EventSpec::Kind::KillBoard:
        fleet.kill_board(event.board);
        break;
      case EventSpec::Kind::ReviveBoard:
        fleet.revive_board(event.board);
        break;
      case EventSpec::Kind::KillOwner:
        fleet.kill_board(fleet.board_of(event.pid));
        break;
      case EventSpec::Kind::Rollout:
        // Re-rolls the weights the fleet is already serving: exercises
        // the canary gate, version stamping, and readmission catch-up
        // without perturbing detection quality mid-scenario.
        fleet.update_weights(model.params);
        break;
    }
  };

  const std::uint64_t horizon = scenario.horizon();
  std::size_t next_event = 0;
  for (std::uint64_t round = 0; round < horizon; ++round) {
    while (next_event < scenario.events.size() &&
           scenario.events[next_event].at <= round) {
      apply_event(scenario.events[next_event]);
      ++next_event;
    }
    for (const ProcessSpec& spec : scenario.processes) {
      if (round < spec.start || round - spec.start >= spec.calls) continue;
      const std::vector<nn::TokenId>& trace = traces.at(spec.pid);
      fleet.ingest(spec.pid, trace[static_cast<std::size_t>(round - spec.start)]);
    }
    if ((round + 1) % scenario.hop == 0) quiesce();
  }
  // Late events (at >= horizon) still fire.
  while (next_event < scenario.events.size()) {
    apply_event(scenario.events[next_event]);
    ++next_event;
  }
  quiesce();

  // Resolution tail: a deferral carried across a failover is only
  // re-served on its process's next call, so if the streams ended first,
  // feed a bounded trickle until the migrated ledger balances. Evaluated
  // at quiescent points, so the tail length is deterministic too.
  std::uint64_t tail = 0;
  while (tail < kResolveTailRounds) {
    // The ledger is only consulted at quiescent points (we just flushed),
    // so the tail length itself is deterministic.
    const serve::BoardFleet::Stats ledger = fleet.stats();
    if (ledger.totals.migrated_resolved >= ledger.migrated_pending) break;
    const std::uint64_t chunk =
        std::min<std::uint64_t>(scenario.hop, kResolveTailRounds - tail);
    for (std::uint64_t i = 0; i < chunk; ++i, ++tail) {
      for (const ProcessSpec& spec : scenario.processes) {
        const std::vector<nn::TokenId>& trace = traces.at(spec.pid);
        fleet.ingest(spec.pid,
                     trace[static_cast<std::size_t>(spec.calls + tail)]);
      }
    }
    quiesce();
  }
  fleet.flush();

  const serve::BoardFleet::Stats stats = fleet.stats();
  fleet.stop();

  std::sort(result.verdicts.begin(), result.verdicts.end(),
            [](const serve::Verdict& a, const serve::Verdict& b) {
              if (a.process != b.process) return a.process < b.process;
              return a.call_index < b.call_index;
            });

  result.scenario = scenario;
  result.summary = score_scenario(scenario, result.verdicts, traces, stats);
  result.gates = evaluate_gates(scenario, result.summary);
  result.digest =
      outcome_digest(scenario, result.verdicts, result.summary, result.gates);
  result.model_test_accuracy = model.test_accuracy;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
  return result;
}

}  // namespace csdml::scenario
