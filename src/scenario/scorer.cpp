#include "scenario/scorer.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/error.hpp"
#include "ransomware/sandbox.hpp"

namespace csdml::scenario {

void OutcomeHash::byte(unsigned char b) {
  hash_ ^= b;
  hash_ *= 1099511628211ULL;
}

void OutcomeHash::u64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    byte(static_cast<unsigned char>(value >> (8 * i)));
  }
}

void OutcomeHash::u32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    byte(static_cast<unsigned char>(value >> (8 * i)));
  }
}

void OutcomeHash::boolean(bool value) { byte(value ? 1 : 0); }

void OutcomeHash::str(const std::string& value) {
  u64(value.size());
  for (const char c : value) byte(static_cast<unsigned char>(c));
}

std::string format_digest(std::uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

ScoreSummary score_scenario(
    const Scenario& scenario, const std::vector<serve::Verdict>& verdicts,
    const std::unordered_map<detect::ProcessId, std::vector<nn::TokenId>>&
        traces,
    const serve::BoardFleet::Stats& fleet) {
  ScoreSummary summary;
  summary.fleet = fleet;

  std::vector<ProcessSpec> cast = scenario.processes;
  std::sort(cast.begin(), cast.end(),
            [](const ProcessSpec& a, const ProcessSpec& b) {
              return a.pid < b.pid;
            });

  // Verdicts arrive sorted by (pid, call_index): one linear pass, with a
  // cursor per process.
  std::size_t cursor = 0;
  for (const ProcessSpec& spec : cast) {
    ProcessOutcome outcome;
    outcome.pid = spec.pid;
    outcome.attack = spec.attack;
    std::set<std::uint32_t> boards;
    while (cursor < verdicts.size() && verdicts[cursor].process < spec.pid) {
      ++cursor;  // verdicts for pids outside the cast (none in practice)
    }
    while (cursor < verdicts.size() && verdicts[cursor].process == spec.pid) {
      const serve::Verdict& verdict = verdicts[cursor];
      ++outcome.verdicts;
      boards.insert(verdict.board);
      if (verdict.alert) {
        ++outcome.alerts;
        if (outcome.first_alert_call == kNever) {
          outcome.first_alert_call = verdict.call_index;
        }
      }
      ++cursor;
    }
    outcome.boards_seen = static_cast<std::uint32_t>(boards.size());

    if (outcome.first_alert_call != kNever) {
      // call_index is the 1-based count of calls seen when the window
      // completed, so the first classifiable point is call window_length.
      outcome.detection_latency =
          outcome.first_alert_call >= scenario.window
              ? outcome.first_alert_call - scenario.window
              : 0;
    }

    if (spec.attack) {
      ++summary.attacks;
      const auto trace_it = traces.find(spec.pid);
      CSDML_REQUIRE(trace_it != traces.end(),
                    "scorer: missing trace for attack pid " +
                        std::to_string(spec.pid));
      // Exposure: every call the detector let through before the first
      // alert — the whole scheduled stream if it never alerted.
      const std::uint64_t exposure =
          outcome.first_alert_call != kNever
              ? std::min<std::uint64_t>(outcome.first_alert_call, spec.calls)
              : spec.calls;
      const std::vector<nn::TokenId>& trace = trace_it->second;
      const std::size_t prefix = static_cast<std::size_t>(
          std::min<std::uint64_t>(exposure, trace.size()));
      outcome.files_lost =
          ransomware::count_files_encrypted(nn::TokenSpan(trace.data(), prefix));
      summary.files_lost += outcome.files_lost;
      if (outcome.first_alert_call != kNever) {
        ++summary.detected;
        summary.latencies.push_back(outcome.detection_latency);
      }
    } else {
      ++summary.benign;
      if (outcome.alerts > 0) ++summary.false_positives;
    }
    summary.processes.push_back(outcome);
  }

  std::sort(summary.latencies.begin(), summary.latencies.end());
  if (summary.benign > 0) {
    summary.fpr = static_cast<double>(summary.false_positives) /
                  static_cast<double>(summary.benign);
  }
  return summary;
}

GateReport evaluate_gates(const Scenario& scenario,
                          const ScoreSummary& summary) {
  GateReport gates;
  gates.attacks_detected = summary.detected == summary.attacks;
  for (const ProcessOutcome& outcome : summary.processes) {
    if (outcome.attack && outcome.detection_latency != kNever &&
        outcome.detection_latency > scenario.budget.detection_latency) {
      gates.latency_within_budget = false;
    }
  }
  // An undetected attack blows the latency gate too: its exposure was the
  // whole stream.
  if (!gates.attacks_detected) gates.latency_within_budget = false;
  gates.files_within_budget = summary.files_lost <= scenario.budget.files_lost;
  gates.fpr_within_budget = summary.fpr <= scenario.budget.fpr;
  gates.conservation = summary.fleet.conservation_ok();
  gates.failover_resolved = summary.fleet.failover_resolved();
  gates.nothing_shed = summary.fleet.totals.shed == 0;
  return gates;
}

std::uint64_t outcome_digest(const Scenario& scenario,
                             const std::vector<serve::Verdict>& verdicts,
                             const ScoreSummary& summary,
                             const GateReport& gates) {
  OutcomeHash hash;
  hash.str("csdml-scenario-outcome-v1");
  hash.str(scenario.name);
  hash.u64(scenario.seed);
  hash.u64(scenario.boards);
  hash.u64(scenario.window);
  hash.u64(scenario.hop);
  hash.u64(scenario.debounce);

  hash.u64(verdicts.size());
  for (const serve::Verdict& verdict : verdicts) {
    hash.u32(verdict.process);
    hash.u64(verdict.call_index);
    hash.boolean(verdict.alert);
    hash.boolean(verdict.degraded);
    hash.u32(verdict.board);
  }

  hash.u64(summary.processes.size());
  for (const ProcessOutcome& outcome : summary.processes) {
    hash.u32(outcome.pid);
    hash.boolean(outcome.attack);
    hash.u64(outcome.verdicts);
    hash.u64(outcome.alerts);
    hash.u64(outcome.first_alert_call);
    hash.u64(outcome.detection_latency);
    hash.u64(outcome.files_lost);
    hash.u32(outcome.boards_seen);
  }
  hash.u64(summary.detected);
  hash.u64(summary.false_positives);
  hash.u64(summary.files_lost);

  // Fleet accounting — everything deterministic under the runner's
  // quiescent-point discipline. `batches` is deliberately absent: batch
  // composition is timing-dependent even when every per-window outcome
  // is not.
  const serve::BoardFleet::Stats& fleet = summary.fleet;
  hash.u64(fleet.totals.ingested);
  hash.u64(fleet.totals.enqueued);
  hash.u64(fleet.totals.shed);
  hash.u64(fleet.totals.deferred);
  hash.u64(fleet.totals.verdicts);
  hash.u64(fleet.totals.alerts);
  hash.u64(fleet.totals.migrated_in);
  hash.u64(fleet.totals.migrated_resolved);
  hash.u64(fleet.failovers);
  hash.u64(fleet.migrations);
  hash.u64(fleet.migrated_pending);
  hash.u64(fleet.readmissions);
  hash.u64(fleet.rollouts);
  hash.u64(fleet.weight_version);

  hash.boolean(gates.attacks_detected);
  hash.boolean(gates.latency_within_budget);
  hash.boolean(gates.files_within_budget);
  hash.boolean(gates.fpr_within_budget);
  hash.boolean(gates.conservation);
  hash.boolean(gates.failover_resolved);
  hash.boolean(gates.nothing_shed);
  return hash.value();
}

}  // namespace csdml::scenario
