// Scenario runner — replays one campaign through a real BoardFleet.
//
// Determinism contract (what makes golden digests possible):
//   * One ingest thread, round-robin over the cast: round r feeds each
//     active process its r-th trace token, in pid order.
//   * The fleet is flushed (fully quiescent) before every control event,
//     at every hop boundary, and before every health sweep — so sweep
//     decisions, failovers, and rollouts always observe the same state.
//   * Health sweeps run only at those explicit points
//     (health_check_interval = 0) and the latency SLO is set unreachably
//     high, so the only path to an unhealthy verdict is the engine latch —
//     wall-clock timing can never change an outcome.
//   * Ring capacity exceeds the worst-case due-window burst between
//     flushes, so backpressure shedding never triggers (asserted by the
//     nothing_shed gate).
//   * Fault injection is restricted to the lethal kill plans (p = 1):
//     probabilistic mid-run storms would couple the fault-stream draw
//     order to batch-composition timing.
//   * Verdict arrival order (coalescer threads) is not deterministic —
//     the verdict *set* is — so the stream is sorted by (pid, call_index)
//     before scoring and digesting.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "scenario/model.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scorer.hpp"
#include "serve/fleet.hpp"

namespace csdml::scenario {

struct RunOptions {
  /// Replaces the scenario's seed (trace generation + fleet hashing).
  std::optional<std::uint64_t> seed;
  /// Serve with the tiny model (smoke lanes). Digests differ from the
  /// full model's — golden files record full-model outcomes.
  bool tiny{false};
};

struct RunResult {
  Scenario scenario;  ///< as run (seed override applied)
  /// Sorted by (pid, call_index).
  std::vector<serve::Verdict> verdicts;
  ScoreSummary summary;
  GateReport gates;
  std::uint64_t digest{0};
  double model_test_accuracy{0.0};
  double wall_ms{0.0};  ///< informational only; never digested
};

/// Runs one scenario to completion. Same scenario + same options ⇒
/// identical verdicts, summary, gates, and digest, every time.
RunResult run_scenario(const Scenario& scenario, const RunOptions& options = {});

}  // namespace csdml::scenario
