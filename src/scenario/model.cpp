#include "scenario/model.hpp"

#include <memory>

#include "nn/dataset.hpp"
#include "nn/train.hpp"
#include "ransomware/dataset_builder.hpp"

namespace csdml::scenario {

namespace {

ScenarioModel train_model(bool tiny) {
  // The full recipe is the integration test's (tests/test_integration.cpp):
  // DatasetSpec::small scaled to 500/588 windows (the paper's 46%
  // ransomware ratio), Rng(41) init, six epochs — lands >= 0.93 test
  // accuracy. Tiny halves the dataset and epochs for smoke lanes.
  ransomware::DatasetSpec spec = ransomware::DatasetSpec::small();
  spec.ransomware_windows = tiny ? 250 : 500;
  spec.benign_windows = tiny ? 294 : 588;
  const ransomware::BuiltDataset built = ransomware::build_dataset(spec);
  Rng rng(41);
  const nn::TrainTestSplit split = nn::split_dataset(built.data, 0.2, rng);
  ScenarioModel model;
  nn::LstmClassifier classifier(model.config, rng);
  nn::TrainConfig train_config;
  train_config.epochs = tiny ? 4 : 6;
  train_config.batch_size = 32;
  const nn::TrainResult result =
      nn::train(classifier, split.train, split.test, train_config);
  model.params = classifier.params();
  model.test_accuracy = result.best_test_accuracy;
  return model;
}

}  // namespace

const ScenarioModel& scenario_model(bool tiny) {
  // Separate statics so asking for one mode never pays for the other.
  if (tiny) {
    static const ScenarioModel model = train_model(true);
    return model;
  }
  static const ScenarioModel model = train_model(false);
  return model;
}

}  // namespace csdml::scenario
