// The detector weights every scenario run serves with.
//
// Scenario outcomes are only comparable (and only golden-digestable) if
// every run classifies with the *same* weights, so the model is trained
// once per process — deterministically, from a fixed dataset spec and RNG
// seed, exactly like tests/test_integration.cpp — and cached. Two modes:
// the full model (the integration-test recipe, ~5 s of training, the one
// golden digests are minted against) and a tiny model (smaller dataset,
// fewer epochs) for smoke lanes where wall clock matters more than the
// last few accuracy points.
#pragma once

#include "nn/lstm.hpp"

namespace csdml::scenario {

struct ScenarioModel {
  nn::LstmConfig config;
  nn::LstmParams params;
  double test_accuracy{0.0};
};

/// Trained on first use, then shared (function-local static; safe to call
/// from any thread). The training itself is deterministic: same binary,
/// same weights, every run.
const ScenarioModel& scenario_model(bool tiny);

}  // namespace csdml::scenario
