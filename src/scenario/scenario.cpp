#include "scenario/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "ransomware/families.hpp"

namespace csdml::scenario {

namespace {

/// Shortest decimal that round-trips the double (%.17g is exact for IEEE
/// binary64), so serialize(parse(serialize(s))) is byte-stable.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double back = 0.0;
  std::sscanf(buffer, "%lf", &back);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    std::sscanf(shorter, "%lf", &back);
    if (back == value) return shorter;
  }
  return buffer;
}

const ransomware::FamilyProfile* find_family(const std::string& name) {
  for (const ransomware::FamilyProfile& family :
       ransomware::ransomware_families()) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

bool benign_profile_exists(const std::string& name) {
  for (const ransomware::BenignProfile& profile :
       ransomware::benign_profiles()) {
    if (profile.name == name) return true;
  }
  return false;
}

[[noreturn]] void parse_fail(const std::string& origin, std::size_t line,
                             const std::string& what) {
  throw ParseError("scenario " + origin + ":" + std::to_string(line) + ": " +
                   what);
}

/// One parsed spec line: a keyword plus key=value fields.
struct Line {
  std::string keyword;
  std::unordered_map<std::string, std::string> fields;
  std::vector<std::string> order;  ///< keys, in appearance order
};

Line tokenize(const std::string& text, const std::string& origin,
              std::size_t number) {
  Line line;
  std::istringstream in(text);
  std::string token;
  in >> line.keyword;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      parse_fail(origin, number,
                 "expected key=value, got `" + token + "`");
    }
    const std::string key = token.substr(0, eq);
    if (line.fields.contains(key)) {
      parse_fail(origin, number, "duplicate key `" + key + "`");
    }
    line.fields.emplace(key, token.substr(eq + 1));
    line.order.push_back(key);
  }
  return line;
}

class FieldReader {
 public:
  FieldReader(Line line, std::string origin, std::size_t number)
      : line_(std::move(line)), origin_(std::move(origin)), number_(number) {}

  std::string str(const std::string& key) {
    const auto it = line_.fields.find(key);
    if (it == line_.fields.end()) {
      parse_fail(origin_, number_,
                 "`" + line_.keyword + "` is missing `" + key + "=`");
    }
    consumed_.insert(key);
    return it->second;
  }

  std::uint64_t u64(const std::string& key) {
    const std::string value = str(key);
    std::uint64_t out = 0;
    std::size_t used = 0;
    try {
      out = std::stoull(value, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != value.size()) {
      parse_fail(origin_, number_,
                 "`" + key + "=" + value + "` is not an unsigned integer");
    }
    return out;
  }

  double real(const std::string& key) {
    const std::string value = str(key);
    double out = 0.0;
    std::size_t used = 0;
    try {
      out = std::stod(value, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != value.size()) {
      parse_fail(origin_, number_,
                 "`" + key + "=" + value + "` is not a number");
    }
    return out;
  }

  double real_or(const std::string& key, double fallback) {
    return line_.fields.contains(key) ? real(key) : fallback;
  }

  void done() {
    for (const std::string& key : line_.order) {
      if (!consumed_.contains(key)) {
        parse_fail(origin_, number_,
                   "`" + line_.keyword + "` has unknown key `" + key + "`");
      }
    }
  }

 private:
  Line line_;
  std::string origin_;
  std::size_t number_;
  std::set<std::string> consumed_;
};

}  // namespace

std::uint64_t Scenario::horizon() const {
  std::uint64_t end = 0;
  for (const ProcessSpec& process : processes) {
    end = std::max(end, process.start + process.calls);
  }
  return end;
}

bool Scenario::has_attack() const {
  return std::any_of(processes.begin(), processes.end(),
                     [](const ProcessSpec& p) { return p.attack; });
}

ScenarioBuilder::ScenarioBuilder(std::string name) {
  scenario_.name = std::move(name);
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t value) {
  scenario_.seed = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::boards(std::size_t count) {
  scenario_.boards = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::detector(std::size_t window, std::size_t hop,
                                           std::size_t debounce,
                                           double threshold) {
  scenario_.window = window;
  scenario_.hop = hop;
  scenario_.debounce = debounce;
  scenario_.threshold = threshold;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::benign(detect::ProcessId pid,
                                         std::string profile,
                                         std::uint32_t session,
                                         std::uint64_t start,
                                         std::uint64_t calls, double noise) {
  ProcessSpec spec;
  spec.pid = pid;
  spec.attack = false;
  spec.profile = std::move(profile);
  spec.variant = session;
  spec.start = start;
  spec.calls = calls;
  spec.noise = noise;
  scenario_.processes.push_back(std::move(spec));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::attack(detect::ProcessId pid,
                                         std::string family,
                                         std::uint32_t variant,
                                         std::uint64_t start,
                                         std::uint64_t calls, double noise) {
  ProcessSpec spec;
  spec.pid = pid;
  spec.attack = true;
  spec.profile = std::move(family);
  spec.variant = variant;
  spec.start = start;
  spec.calls = calls;
  spec.noise = noise;
  scenario_.processes.push_back(std::move(spec));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::kill_board(std::size_t board,
                                             std::uint64_t at) {
  EventSpec event;
  event.kind = EventSpec::Kind::KillBoard;
  event.board = board;
  event.at = at;
  scenario_.events.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::revive_board(std::size_t board,
                                               std::uint64_t at) {
  EventSpec event;
  event.kind = EventSpec::Kind::ReviveBoard;
  event.board = board;
  event.at = at;
  scenario_.events.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::kill_owner(detect::ProcessId pid,
                                             std::uint64_t at) {
  EventSpec event;
  event.kind = EventSpec::Kind::KillOwner;
  event.pid = pid;
  event.at = at;
  scenario_.events.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::rollout(std::uint64_t at) {
  EventSpec event;
  event.kind = EventSpec::Kind::Rollout;
  event.at = at;
  scenario_.events.push_back(event);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::budget(std::uint64_t detection_latency,
                                         std::uint64_t files_lost,
                                         double fpr) {
  scenario_.budget.detection_latency = detection_latency;
  scenario_.budget.files_lost = files_lost;
  scenario_.budget.fpr = fpr;
  return *this;
}

Scenario ScenarioBuilder::build() const {
  Scenario scenario = scenario_;
  std::stable_sort(
      scenario.events.begin(), scenario.events.end(),
      [](const EventSpec& a, const EventSpec& b) { return a.at < b.at; });
  validate_scenario(scenario);
  return scenario;
}

void validate_scenario(const Scenario& scenario) {
  CSDML_REQUIRE(!scenario.name.empty(), "scenario: name required");
  CSDML_REQUIRE(scenario.name.find_first_of(" \t\n") == std::string::npos,
                "scenario: name must not contain whitespace");
  CSDML_REQUIRE(scenario.boards >= 1 && scenario.boards <= 16,
                "scenario: boards must be in [1, 16]");
  CSDML_REQUIRE(scenario.window > 0, "scenario: window must be positive");
  CSDML_REQUIRE(scenario.hop > 0 && scenario.hop <= scenario.window,
                "scenario: hop must be in [1, window]");
  CSDML_REQUIRE(scenario.debounce >= 1, "scenario: debounce must be >= 1");
  CSDML_REQUIRE(scenario.threshold > 0.0 && scenario.threshold < 1.0,
                "scenario: threshold must be in (0, 1)");
  CSDML_REQUIRE(!scenario.processes.empty(),
                "scenario: at least one process required");
  CSDML_REQUIRE(scenario.budget.fpr >= 0.0 && scenario.budget.fpr <= 1.0,
                "scenario: budget fpr must be in [0, 1]");

  std::set<detect::ProcessId> pids;
  for (const ProcessSpec& process : scenario.processes) {
    CSDML_REQUIRE(process.pid != 0, "scenario: pid 0 is reserved");
    CSDML_REQUIRE(pids.insert(process.pid).second,
                  "scenario: duplicate pid " + std::to_string(process.pid));
    CSDML_REQUIRE(process.calls > 0,
                  "scenario: process " + std::to_string(process.pid) +
                      " has zero calls");
    CSDML_REQUIRE(process.noise >= 0.0 && process.noise < 1.0,
                  "scenario: noise rate must be in [0, 1)");
    if (process.attack) {
      const ransomware::FamilyProfile* family = find_family(process.profile);
      CSDML_REQUIRE(family != nullptr,
                    "scenario: unknown ransomware family `" + process.profile +
                        "`");
      CSDML_REQUIRE(process.variant < family->variants,
                    "scenario: " + process.profile + " has only " +
                        std::to_string(family->variants) + " variants");
    } else {
      CSDML_REQUIRE(benign_profile_exists(process.profile),
                    "scenario: unknown benign profile `" + process.profile +
                        "`");
    }
  }

  for (const EventSpec& event : scenario.events) {
    switch (event.kind) {
      case EventSpec::Kind::KillBoard:
      case EventSpec::Kind::ReviveBoard:
        CSDML_REQUIRE(event.board < scenario.boards,
                      "scenario: event board out of range");
        break;
      case EventSpec::Kind::KillOwner:
        CSDML_REQUIRE(pids.contains(event.pid),
                      "scenario: kill-owner pid " + std::to_string(event.pid) +
                          " is not in the cast");
        break;
      case EventSpec::Kind::Rollout:
        break;
    }
  }
  CSDML_REQUIRE(std::is_sorted(scenario.events.begin(), scenario.events.end(),
                               [](const EventSpec& a, const EventSpec& b) {
                                 return a.at < b.at;
                               }),
                "scenario: events must be sorted by `at`");
}

const char* event_kind_name(EventSpec::Kind kind) {
  switch (kind) {
    case EventSpec::Kind::KillBoard: return "kill-board";
    case EventSpec::Kind::ReviveBoard: return "revive-board";
    case EventSpec::Kind::KillOwner: return "kill-owner";
    case EventSpec::Kind::Rollout: return "rollout";
  }
  return "unknown";
}

std::string serialize_scenario(const Scenario& scenario) {
  std::ostringstream out;
  out << "# csdml scenario v1\n";
  out << "scenario " << scenario.name << "\n";
  out << "seed " << scenario.seed << "\n";
  out << "boards " << scenario.boards << "\n";
  out << "detector window=" << scenario.window << " hop=" << scenario.hop
      << " debounce=" << scenario.debounce
      << " threshold=" << format_double(scenario.threshold) << "\n";
  for (const ProcessSpec& process : scenario.processes) {
    if (process.attack) {
      out << "attack pid=" << process.pid << " family=" << process.profile
          << " variant=" << process.variant;
    } else {
      out << "benign pid=" << process.pid << " profile=" << process.profile
          << " session=" << process.variant;
    }
    out << " start=" << process.start << " calls=" << process.calls;
    if (process.noise != kDefaultNoiseRate) {
      out << " noise=" << format_double(process.noise);
    }
    out << "\n";
  }
  for (const EventSpec& event : scenario.events) {
    out << "event " << event_kind_name(event.kind);
    switch (event.kind) {
      case EventSpec::Kind::KillBoard:
      case EventSpec::Kind::ReviveBoard:
        out << " board=" << event.board;
        break;
      case EventSpec::Kind::KillOwner:
        out << " pid=" << event.pid;
        break;
      case EventSpec::Kind::Rollout:
        break;
    }
    out << " at=" << event.at << "\n";
  }
  out << "budget latency=" << scenario.budget.detection_latency
      << " files-lost=" << scenario.budget.files_lost
      << " fpr=" << format_double(scenario.budget.fpr) << "\n";
  return out.str();
}

Scenario parse_scenario(const std::string& text, const std::string& origin) {
  Scenario scenario;
  bool named = false;
  std::istringstream in(text);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(in, raw)) {
    ++number;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::size_t begin = raw.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    raw = raw.substr(begin);

    // Positional lines (`scenario`, `seed`, `boards`, the event kind) must
    // be dispatched on the keyword alone — tokenize() rejects bare tokens,
    // so it only runs on the lines that actually carry key=value fields.
    std::string keyword;
    {
      std::istringstream keyword_in(raw);
      keyword_in >> keyword;
    }
    if (keyword == "scenario") {
      // The name is positional: `scenario <name>`.
      std::istringstream name_in(raw);
      std::string kw;
      name_in >> kw >> scenario.name;
      std::string extra;
      if (scenario.name.empty() || (name_in >> extra)) {
        parse_fail(origin, number, "expected `scenario <name>`");
      }
      named = true;
      continue;
    }
    if (keyword == "seed") {
      // `seed <u64>` is also positional.
      std::istringstream seed_in(raw);
      std::string keyword, value;
      seed_in >> keyword >> value;
      std::string extra;
      if (value.empty() || (seed_in >> extra)) {
        parse_fail(origin, number, "expected `seed <u64>`");
      }
      try {
        std::size_t used = 0;
        scenario.seed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        parse_fail(origin, number, "`" + value + "` is not a seed");
      }
    } else if (keyword == "boards") {
      std::istringstream boards_in(raw);
      std::string keyword, value;
      boards_in >> keyword >> value;
      std::string extra;
      if (value.empty() || (boards_in >> extra)) {
        parse_fail(origin, number, "expected `boards <n>`");
      }
      try {
        std::size_t used = 0;
        scenario.boards = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        parse_fail(origin, number, "`" + value + "` is not a board count");
      }
    } else if (keyword == "detector") {
      FieldReader fields(tokenize(raw, origin, number), origin, number);
      scenario.window = fields.u64("window");
      scenario.hop = fields.u64("hop");
      scenario.debounce = fields.u64("debounce");
      scenario.threshold = fields.real("threshold");
      fields.done();
    } else if (keyword == "benign" || keyword == "attack") {
      FieldReader fields(tokenize(raw, origin, number), origin, number);
      ProcessSpec process;
      process.attack = keyword == "attack";
      process.pid = static_cast<detect::ProcessId>(fields.u64("pid"));
      process.profile =
          process.attack ? fields.str("family") : fields.str("profile");
      process.variant = static_cast<std::uint32_t>(
          process.attack ? fields.u64("variant") : fields.u64("session"));
      process.start = fields.u64("start");
      process.calls = fields.u64("calls");
      process.noise = fields.real_or("noise", kDefaultNoiseRate);
      fields.done();
      scenario.processes.push_back(std::move(process));
    } else if (keyword == "event") {
      // `event <kind> ... at=N` — the kind is positional, so re-tokenize
      // from the remainder.
      std::istringstream event_in(raw);
      std::string keyword, kind;
      event_in >> keyword >> kind;
      std::string rest;
      std::getline(event_in, rest);
      FieldReader event_fields(tokenize("event " + rest, origin, number),
                               origin, number);
      EventSpec event;
      if (kind == "kill-board" || kind == "revive-board") {
        event.kind = kind == "kill-board" ? EventSpec::Kind::KillBoard
                                          : EventSpec::Kind::ReviveBoard;
        event.board = event_fields.u64("board");
      } else if (kind == "kill-owner") {
        event.kind = EventSpec::Kind::KillOwner;
        event.pid = static_cast<detect::ProcessId>(event_fields.u64("pid"));
      } else if (kind == "rollout") {
        event.kind = EventSpec::Kind::Rollout;
      } else {
        parse_fail(origin, number, "unknown event kind `" + kind + "`");
      }
      event.at = event_fields.u64("at");
      event_fields.done();
      scenario.events.push_back(event);
    } else if (keyword == "budget") {
      FieldReader fields(tokenize(raw, origin, number), origin, number);
      scenario.budget.detection_latency = fields.u64("latency");
      scenario.budget.files_lost = fields.u64("files-lost");
      scenario.budget.fpr = fields.real("fpr");
      fields.done();
    } else {
      parse_fail(origin, number, "unknown keyword `" + keyword + "`");
    }
  }
  if (!named) {
    parse_fail(origin, number, "missing `scenario <name>` line");
  }
  std::stable_sort(
      scenario.events.begin(), scenario.events.end(),
      [](const EventSpec& a, const EventSpec& b) { return a.at < b.at; });
  validate_scenario(scenario);
  return scenario;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ParseError("scenario: cannot open `" + path + "`");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario(text.str(), path);
}

}  // namespace csdml::scenario
