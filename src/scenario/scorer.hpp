// ScenarioScorer — grades a finished campaign and digests the outcome.
//
// Three questions, straight from the paper's evaluation: did the detector
// catch every attack (and how many API calls past the first classifiable
// point did it take), how many files did the encryption loop finish
// before the verdict landed, and did any benign process get flagged?
// Plus the serving-layer conservation laws, so a scenario cannot "pass"
// by silently dropping classifications.
//
// The outcome digest is FNV-1a over the *integer* outcome record — the
// sorted verdict stream (pid, call_index, alert, degraded, board), the
// per-process score rows, the fleet accounting, and the gate verdicts.
// Probabilities and wall-clock quantities are deliberately excluded:
// the digest must be byte-stable for a fixed seed so it can be a golden
// file, and floating-point text formatting / timing are the two things
// that are not.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/dataset.hpp"
#include "scenario/scenario.hpp"
#include "serve/fleet.hpp"

namespace csdml::scenario {

/// Sentinel for "never happened" call indices / latencies.
inline constexpr std::uint64_t kNever = ~std::uint64_t{0};

/// Incremental FNV-1a (64-bit) over fixed-width little-endian encodings,
/// so digests do not depend on host struct layout.
class OutcomeHash {
 public:
  void u64(std::uint64_t value);
  void u32(std::uint32_t value);
  void boolean(bool value);
  void str(const std::string& value);
  std::uint64_t value() const { return hash_; }

 private:
  void byte(unsigned char b);
  std::uint64_t hash_{1469598103934665603ULL};
};

/// Renders a digest the way golden files store it (16 hex digits).
std::string format_digest(std::uint64_t digest);

struct ProcessOutcome {
  detect::ProcessId pid{0};
  bool attack{false};
  std::uint64_t verdicts{0};
  std::uint64_t alerts{0};
  /// call_index of the first alerting verdict (kNever if none).
  std::uint64_t first_alert_call{kNever};
  /// first_alert_call - window_length: calls past the first classifiable
  /// point (kNever if never detected). 0 means caught on the very first
  /// full window.
  std::uint64_t detection_latency{kNever};
  /// Attack pids only: completed encrypt→rename motifs in the trace
  /// prefix the detector let through (capped at the spec's `calls` for
  /// undetected attacks).
  std::uint64_t files_lost{0};
  /// Distinct boards that served this pid (> 1 means it crossed a
  /// failover rehash).
  std::uint32_t boards_seen{0};
};

struct ScoreSummary {
  std::vector<ProcessOutcome> processes;  ///< pid ascending
  std::uint64_t attacks{0};
  std::uint64_t benign{0};
  std::uint64_t detected{0};
  std::uint64_t false_positives{0};
  std::uint64_t files_lost{0};     ///< summed over attack pids
  double fpr{0.0};                 ///< false_positives / benign (0 if none)
  /// Per detected-attack latencies, ascending (bench derives p50/p95).
  std::vector<std::uint64_t> latencies;
  serve::BoardFleet::Stats fleet;  ///< end-of-run accounting
};

/// Pass/fail against the scenario's Budget plus the standing invariants.
struct GateReport {
  bool attacks_detected{true};       ///< every attack pid alerted
  bool latency_within_budget{true};  ///< max latency <= budget
  bool files_within_budget{true};    ///< summed files_lost <= budget
  bool fpr_within_budget{true};
  bool conservation{true};           ///< enqueued == verdicts + deferred
  bool failover_resolved{true};      ///< migrated deferrals re-served
  bool nothing_shed{true};           ///< determinism contract: shed == 0

  bool pass() const {
    return attacks_detected && latency_within_budget && files_within_budget &&
           fpr_within_budget && conservation && failover_resolved &&
           nothing_shed;
  }
};

/// Scores one run. `verdicts` must already be sorted by (pid, call_index);
/// `traces` maps each pid to the full sandbox trace it was fed from.
ScoreSummary score_scenario(
    const Scenario& scenario, const std::vector<serve::Verdict>& verdicts,
    const std::unordered_map<detect::ProcessId, std::vector<nn::TokenId>>&
        traces,
    const serve::BoardFleet::Stats& fleet);

GateReport evaluate_gates(const Scenario& scenario,
                          const ScoreSummary& summary);

/// The canonical outcome digest (see file header for what it covers).
std::uint64_t outcome_digest(const Scenario& scenario,
                             const std::vector<serve::Verdict>& verdicts,
                             const ScoreSummary& summary,
                             const GateReport& gates);

}  // namespace csdml::scenario
